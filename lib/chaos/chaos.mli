(** Deterministic fault-injection engine.

    A {!plan} is a seeded, fully explicit list of faults; {!install} arms
    them against a running group by composing with the same hooks the
    simulator and the sanitizer use ({!Runtime.Ctx.add_hook}, the heap's
    SMR event bus, and the group's signal route).  Every trigger is keyed
    to a process' instrumented-access count — never to wall-clock or
    virtual time read mid-run — so a plan replayed against the same
    workload, machine and scheduling policy fires at exactly the same
    point in the interleaving.

    Three fault families (DESIGN.md §9):

    - {e process crashes}: the victim raises {!Runtime.Ctx.Crashed} at a
      chosen access, inside its signal handler, or right after it sends a
      neutralization signal; the runner marks it dead and reclaimers see
      [ESRCH] from then on;
    - {e signal-delivery faults}: chosen deliveries are dropped, or
      delayed until the target has performed a further fixed number of
      accesses, through {!Runtime.Group.set_signal_route}; any such fault
      also sets [signals_unreliable], switching DEBRA+ to its
      acknowledge-and-retry path;
    - {e bounded memory}: the heap's record budget is capped, so
      allocation raises {!Memory.Arena.Out_of_memory} unless the scheme's
      emergency reclamation path can free records first. *)

(** Where in its execution the victim crashes. *)
type crash_kind =
  | Anywhere  (** at the [at]-th instrumented access, wherever that lands *)
  | In_operation
      (** at the first access at or past [at] where the process is
          mid-operation (non-quiescent) — the adversarial case for
          epoch-based schemes, which [install]'s [in_op] predicate decides *)
  | In_handler
      (** on entry to the [at]-th signal-handler run {e group-wide}: that
          process dies inside its handler, before any recovery code runs.
          [pid] is ignored — which process gets neutralized, and when,
          depends on the scheme's signalling pattern *)
  | Neutralizer
      (** at the victim's first access after the [at]-th neutralization
          signal (group-wide) was sent — and the victim is whoever sent it *)

type fault =
  | Crash of { pid : int; at : int; kind : crash_kind }
      (** for [Neutralizer] the [pid] is ignored (the sender is the victim)
          and [at] counts signals, not accesses *)
  | Drop_signals of { target : int; first : int; count : int }
      (** drop deliveries [first, first+count) to [target] (0-based, in
          order of arrival at the target) *)
  | Delay_signals of { target : int; first : int; count : int; by : int }
      (** delay those deliveries until [target] has performed [by] further
          instrumented accesses *)
  | Record_budget of int
      (** bounded-memory fault: cap the heap at the given headroom of
          records above what is claimed when the engine installs (i.e.
          after any prefill) *)

type plan = { seed : int; faults : fault list }

val fault_to_string : fault -> string

(** One line per fault, plus the seed — printed by campaign runners so any
    failure can be replayed with [--chaos-seed]. *)
val plan_to_string : plan -> string

(** The fault kinds {!random_plan} can draw. *)
type kind_spec =
  [ `Crash  (** one [In_operation] crash *)
  | `Crash_in_handler
  | `Crash_neutralizer
  | `Drop
  | `Delay
  | `Oom of int  (** [Record_budget] with the given headroom *) ]

(** [random_plan ~seed ~nprocs kinds] derives one fault per requested kind
    from the seed, deterministically.  Crash victims are drawn from
    [1 .. nprocs-1] when possible so at least one process survives. *)
val random_plan : seed:int -> nprocs:int -> kind_spec list -> plan

(** [degrade plan] restricts a plan to the faults a non-deterministic
    (real-parallelism) backend can honor: crash triggers keyed only to the
    victim's own access count ([Anywhere] / [In_operation]) and
    [Record_budget].  Faults that need the simulator's global event order
    ([In_handler] and [Neutralizer] crashes, signal drop/delay windows) are
    returned separately so the driver can report them as unsupported. *)
val degrade : plan -> plan * fault list

(** What an installed engine actually did. *)
type summary = {
  crashes : int;  (** processes that crashed (all kinds) *)
  handler_crashes : int;  (** of which: inside a signal handler *)
  signals_dropped : int;
  signals_delayed : int;
  signals_delivered_late : int;  (** delayed deliveries that landed *)
}

type t

(** [install plan ~group ~heap] arms every fault.  [in_op pid] decides
    [In_operation] triggers (default: always true, degrading it to
    [Anywhere]); runners pass the reclaimer's non-quiescence test.  Call
    after any prefill and before the measured run, so access counts start
    at the workload's first access.  Faults referring to pids outside the
    group are ignored. *)
val install :
  ?in_op:(Runtime.Ctx.t -> bool) ->
  plan ->
  group:Runtime.Group.t ->
  heap:Memory.Heap.t ->
  t

(** Restore every hook, handler, route and budget the engine replaced.
    Idempotent. *)
val uninstall : t -> unit

val summary : t -> summary

(** Chronological log of fired faults, for reports. *)
val fired : t -> string list

(** Sequential FIFO oracle for queue workloads under faults.  Producers
    draw tagged values from {!next_value}; consumers report what they
    dequeued; {!check} validates the two FIFO invariants that survive
    crashes: per (consumer, producer) pair the dequeued sequence numbers
    strictly increase, and every dequeued or drained value was enqueued
    exactly once (conservation — no duplication, no invention).  Values
    still in the queue at the end are passed as [drained]. *)
module Fifo_oracle : sig
  type t

  val create : nprocs:int -> t

  (** [next_value t ~pid] mints the producer's next tagged value. *)
  val next_value : t -> pid:int -> int

  (** [dequeued t ~pid v] records that consumer [pid] dequeued [v]. *)
  val dequeued : t -> pid:int -> int -> unit

  (** [check t ~drained] returns [None] if the invariants hold, or a
      description of the first violation. *)
  val check : t -> drained:int list -> string option
end
