(** Deterministic fault-injection engine — implementation.

    Determinism argument: every trigger below is a pure function of
    per-process instrumented-access counts and of the order of
    [send_signal] calls, both of which are fixed by the simulator's
    schedule.  The engine reads no clocks and draws no randomness after
    {!random_plan}; replaying a plan under the same schedule fires every
    fault at the same point. *)

type crash_kind = Anywhere | In_operation | In_handler | Neutralizer

type fault =
  | Crash of { pid : int; at : int; kind : crash_kind }
  | Drop_signals of { target : int; first : int; count : int }
  | Delay_signals of { target : int; first : int; count : int; by : int }
  | Record_budget of int

type plan = { seed : int; faults : fault list }

let kind_to_string = function
  | Anywhere -> "anywhere"
  | In_operation -> "in-operation"
  | In_handler -> "in-handler"
  | Neutralizer -> "neutralizer"

let fault_to_string = function
  | Crash { pid; at; kind = Neutralizer } ->
      Printf.sprintf "crash(sender of signal #%d%s)" at
        (if pid >= 0 then Printf.sprintf ", pid hint %d" pid else "")
  | Crash { at; kind = In_handler; _ } ->
      Printf.sprintf "crash(handler run #%d group-wide)" at
  | Crash { pid; at; kind } ->
      Printf.sprintf "crash(pid %d, access %d, %s)" pid at (kind_to_string kind)
  | Drop_signals { target; first; count } ->
      Printf.sprintf "drop-signals(target %d, deliveries %d..%d)" target first
        (first + count - 1)
  | Delay_signals { target; first; count; by } ->
      Printf.sprintf "delay-signals(target %d, deliveries %d..%d, by %d accesses)"
        target first (first + count - 1) by
  | Record_budget b -> Printf.sprintf "record-budget(%d)" b

let plan_to_string p =
  Printf.sprintf "seed %d: [%s]" p.seed
    (String.concat "; " (List.map fault_to_string p.faults))

type kind_spec =
  [ `Crash | `Crash_in_handler | `Crash_neutralizer | `Drop | `Delay | `Oom of int ]

let random_plan ~seed ~nprocs kinds =
  let rng = Random.State.make [| seed; 0x0c4a05 |] in
  (* Victims avoid pid 0 when the group allows it, so at least one process
     survives to run the post-fault validation. *)
  let victim () = if nprocs > 1 then 1 + Random.State.int rng (nprocs - 1) else 0 in
  let faults =
    List.map
      (function
        | `Crash ->
            Crash
              {
                pid = victim ();
                at = 2_000 + Random.State.int rng 30_000;
                kind = In_operation;
              }
        | `Crash_in_handler ->
            (* Group-wide nth handler run: any given pid may be neutralized
               rarely or never, but some handler runs early in every
               contended execution. *)
            Crash { pid = -1; at = 1 + Random.State.int rng 3; kind = In_handler }
        | `Crash_neutralizer ->
            Crash
              { pid = -1; at = 1 + Random.State.int rng 20; kind = Neutralizer }
        | `Drop ->
            Drop_signals
              {
                target = victim ();
                first = Random.State.int rng 4;
                count = 1 + Random.State.int rng 8;
              }
        | `Delay ->
            Delay_signals
              {
                target = victim ();
                first = Random.State.int rng 4;
                count = 1 + Random.State.int rng 8;
                by = 200 + Random.State.int rng 2_000;
              }
        | `Oom b -> Record_budget b)
      kinds
  in
  { seed; faults }

(* Faults whose triggers are per-victim state only (its own access count,
   the heap budget) survive on a non-deterministic backend; everything
   keyed to a *global* order — handler runs group-wide, signal ordinals,
   per-target delivery windows — needs the simulator's total order of
   events and is dropped with a note. *)
let degrade plan =
  let supported, dropped =
    List.partition
      (function
        | Crash { kind = Anywhere | In_operation; _ } | Record_budget _ ->
            true
        | Crash { kind = In_handler | Neutralizer; _ }
        | Drop_signals _ | Delay_signals _ ->
            false)
      plan.faults
  in
  ({ plan with faults = supported }, dropped)

type summary = {
  crashes : int;
  handler_crashes : int;
  signals_dropped : int;
  signals_delayed : int;
  signals_delivered_late : int;
}

type t = {
  group : Runtime.Group.t;
  heap : Memory.Heap.t;
  acc : int array;  (* per-pid instrumented accesses since install *)
  (* crash triggers *)
  crash_at : (int * crash_kind) option array;  (* per pid, access-count keyed *)
  mutable handler_nth : int;  (* group-wide nth handler run; -1 = never *)
  mutable handler_runs_total : int;
  handler_runs : int array;
  armed : bool array;  (* crash at the pid's next access (Neutralizer) *)
  neutralizer_nth : int;  (* group-wide signal ordinal arming it; -1 = never *)
  mutable signals_sent_total : int;
  (* signal routing *)
  sigs_to : int array;  (* deliveries routed per target *)
  drops : (int * int * int) list;  (* target, first, count *)
  delays : (int * int * int * int) list;  (* target, first, count, by *)
  pending : int list array;  (* per target: due access counts *)
  route_installed : bool;
  (* memory *)
  saved_budget : int;
  mutable sink : Memory.Smr_event.subscription option;
  mutable restores : (unit -> unit) list;  (* hook removers *)
  saved_handlers : (Runtime.Ctx.t -> unit) array;
  mutable installed : bool;
  (* outcome *)
  mutable crashes : int;
  mutable handler_crashes : int;
  mutable dropped : int;
  mutable delayed : int;
  mutable delivered_late : int;
  mutable log : string list;  (* newest first *)
}

let note t msg = t.log <- msg :: t.log

let install ?(in_op = fun (_ : Runtime.Ctx.t) -> true) plan ~group ~heap =
  let n = Runtime.Group.nprocs group in
  let valid pid = pid >= 0 && pid < n in
  let crash_at = Array.make n None in
  let handler_nth = ref (-1) in
  let neutralizer_nth = ref (-1) in
  let drops = ref [] in
  let delays = ref [] in
  let budget = ref (-1) in
  let saved_budget = Memory.Heap.record_budget heap in
  List.iter
    (function
      | Crash { at; kind = Neutralizer; _ } -> neutralizer_nth := at
      | Crash { at; kind = In_handler; _ } -> handler_nth := at
      | Crash { pid; at; kind } when valid pid -> crash_at.(pid) <- Some (at, kind)
      | Crash _ -> ()
      | Drop_signals { target; first; count } when valid target ->
          drops := (target, first, count) :: !drops
      | Drop_signals _ -> ()
      | Delay_signals { target; first; count; by } when valid target ->
          delays := (target, first, count, by) :: !delays
      | Delay_signals _ -> ()
      | Record_budget b -> budget := b)
    plan.faults;
  let t =
    {
      group;
      heap;
      acc = Array.make n 0;
      crash_at;
      handler_nth = !handler_nth;
      handler_runs_total = 0;
      handler_runs = Array.make n 0;
      armed = Array.make n false;
      neutralizer_nth = !neutralizer_nth;
      signals_sent_total = 0;
      sigs_to = Array.make n 0;
      drops = !drops;
      delays = !delays;
      pending = Array.make n [];
      route_installed = !drops <> [] || !delays <> [];
      saved_budget;
      sink = None;
      restores = [];
      saved_handlers = Array.map (fun c -> c.Runtime.Ctx.handler) group.Runtime.Group.ctxs;
      installed = true;
      crashes = 0;
      handler_crashes = 0;
      dropped = 0;
      delayed = 0;
      delivered_late = 0;
      log = [];
    }
  in
  (* Per-access trigger: count, land due delayed signals, fire crashes.
     Raising {!Runtime.Ctx.Crashed} out of the hook unwinds the victim's
     body; the runner marks the pid crashed ([ESRCH] from then on). *)
  let hook (c : Runtime.Ctx.t) ~line:_ (_ : Runtime.Ctx.access_kind) =
    let pid = c.Runtime.Ctx.pid in
    t.acc.(pid) <- t.acc.(pid) + 1;
    (match t.pending.(pid) with
    | [] -> ()
    | l ->
        let due, later = List.partition (fun d -> t.acc.(pid) >= d) l in
        if due <> [] then begin
          t.pending.(pid) <- later;
          t.delivered_late <- t.delivered_late + List.length due;
          (* The delayed POSIX signal finally lands: the handler runs at
             the target's next access, via the normal poll path. *)
          Atomic.set c.Runtime.Ctx.sig_pending true
        end);
    if t.armed.(pid) then begin
      t.armed.(pid) <- false;
      t.crashes <- t.crashes + 1;
      note t
        (Printf.sprintf "crash: pid %d (neutralizer) at access %d" pid
           t.acc.(pid));
      raise Runtime.Ctx.Crashed
    end;
    match t.crash_at.(pid) with
    | Some (at, kind) when t.acc.(pid) >= at ->
        if kind <> In_operation || in_op c then begin
          t.crash_at.(pid) <- None;
          t.crashes <- t.crashes + 1;
          note t
            (Printf.sprintf "crash: pid %d (%s) at access %d" pid
               (kind_to_string kind) t.acc.(pid));
          raise Runtime.Ctx.Crashed
        end
    | _ -> ()
  in
  t.restores <-
    Array.to_list
      (Array.map (fun c -> Runtime.Ctx.add_hook c hook) group.Runtime.Group.ctxs);
  (* Handler-crash fault: die on entry to the nth handler invocation
     group-wide, before any recovery code (rprotect scan, Neutralized) gets
     to run.  The trigger is global because which pid gets neutralized, and
     how often, depends on the scheme's signalling pattern. *)
  Array.iter
    (fun (c : Runtime.Ctx.t) ->
      let pid = c.Runtime.Ctx.pid in
      let orig = c.Runtime.Ctx.handler in
      c.Runtime.Ctx.handler <-
        (fun c ->
          t.handler_runs.(pid) <- t.handler_runs.(pid) + 1;
          t.handler_runs_total <- t.handler_runs_total + 1;
          if t.handler_nth >= 0 && t.handler_runs_total >= t.handler_nth
          then begin
            t.handler_nth <- -1;
            t.crashes <- t.crashes + 1;
            t.handler_crashes <- t.handler_crashes + 1;
            note t
              (Printf.sprintf
                 "crash: pid %d inside signal handler (handler run %d \
                  group-wide)"
                 pid t.handler_runs_total);
            raise Runtime.Ctx.Crashed
          end;
          orig c))
    group.Runtime.Group.ctxs;
  (* Neutralizer-crash fault: watch the event bus for the nth signal sent
     group-wide and arm the sender's next access. *)
  if t.neutralizer_nth >= 0 then
    t.sink <-
      Some
        (Memory.Heap.add_sink heap (fun ctx ev ->
             match ev with
             | Memory.Smr_event.Signal_sent _ ->
                 t.signals_sent_total <- t.signals_sent_total + 1;
                 if t.signals_sent_total = t.neutralizer_nth then
                   t.armed.(ctx.Runtime.Ctx.pid) <- true
             | _ -> ()));
  (* Signal-delivery faults: interpose on the route.  Each send to a target
     gets an arrival ordinal; drop/delay windows match on it.  A delayed
     delivery is a [`Drop] here plus a later pending-flag set by the access
     hook above. *)
  if t.route_installed then begin
    Runtime.Group.set_signal_route group (fun ~from:_ ~target ->
        let ordinal = t.sigs_to.(target) in
        t.sigs_to.(target) <- ordinal + 1;
        let in_window (tg, first, count) =
          tg = target && ordinal >= first && ordinal < first + count
        in
        if List.exists in_window t.drops then begin
          t.dropped <- t.dropped + 1;
          `Drop
        end
        else
          match
            List.find_opt
              (fun (tg, first, count, _) -> in_window (tg, first, count))
              t.delays
          with
          | Some (_, _, _, by) ->
              t.delayed <- t.delayed + 1;
              t.pending.(target) <- (t.acc.(target) + by) :: t.pending.(target);
              `Drop
          | None -> `Deliver);
    group.Runtime.Group.signals_unreliable <- true
  end;
  (* The budget is headroom above what is already claimed: the engine arms
     after any prefill, so the cap binds the run under test, not setup. *)
  if !budget >= 0 then
    Memory.Heap.set_record_budget heap
      (Memory.Heap.budget_live heap + !budget);
  t

let uninstall t =
  if t.installed then begin
    t.installed <- false;
    List.iter (fun restore -> restore ()) t.restores;
    Array.iteri
      (fun pid c -> c.Runtime.Ctx.handler <- t.saved_handlers.(pid))
      t.group.Runtime.Group.ctxs;
    if t.route_installed then Runtime.Group.reset_signal_route t.group;
    Option.iter (fun s -> Memory.Heap.remove_sink t.heap s) t.sink;
    Memory.Heap.set_record_budget t.heap t.saved_budget
  end

let summary t =
  {
    crashes = t.crashes;
    handler_crashes = t.handler_crashes;
    signals_dropped = t.dropped;
    signals_delayed = t.delayed;
    signals_delivered_late = t.delivered_late;
  }

let fired t = List.rev t.log

(* ------------------------------------------------------------------ *)

module Fifo_oracle = struct
  (* Values are tagged (producer, seq): producer in the high bits, a
     per-producer sequence number starting at 1 in the low bits. *)
  let shift = 24
  let seq_mask = (1 lsl shift) - 1

  type t = {
    next_seq : int array;  (* per producer *)
    mutable deqs : (int * int) list;  (* consumer pid, value — newest first *)
  }

  let create ~nprocs = { next_seq = Array.make nprocs 1; deqs = [] }

  let next_value t ~pid =
    let seq = t.next_seq.(pid) in
    t.next_seq.(pid) <- seq + 1;
    (pid lsl shift) lor seq

  let dequeued t ~pid v = t.deqs <- (pid, v) :: t.deqs

  let producer v = v lsr shift
  let seq v = v land seq_mask

  let check t ~drained =
    let error = ref None in
    let fail msg = if !error = None then error := Some msg in
    (* Conservation: every consumed or drained value was enqueued exactly
       once.  Enqueues are exactly the minted values, so a value is valid
       iff its seq is in [1, next_seq). *)
    let seen = Hashtbl.create 4096 in
    let consume what v =
      if v = 0 then fail (Printf.sprintf "%s a zero (empty-queue) value" what)
      else begin
        let p = producer v in
        if p < 0 || p >= Array.length t.next_seq || seq v < 1
           || seq v >= t.next_seq.(p)
        then
          fail
            (Printf.sprintf "%s value %d that no producer enqueued" what v)
        else if Hashtbl.mem seen v then
          fail (Printf.sprintf "%s value %d twice (duplication)" what v)
        else Hashtbl.add seen v ()
      end
    in
    List.iter (fun (_, v) -> consume "dequeued" v) (List.rev t.deqs);
    List.iter (fun v -> consume "drained" v) drained;
    (* FIFO order: for each (consumer, producer) pair, sequence numbers
       strictly increase in dequeue order. *)
    let last = Hashtbl.create 64 in
    List.iter
      (fun (c, v) ->
        let key = (c, producer v) in
        (match Hashtbl.find_opt last key with
        | Some prev when seq v <= prev ->
            fail
              (Printf.sprintf
                 "consumer %d saw producer %d's seq %d after seq %d \
                  (FIFO inversion)"
                 c (producer v) (seq v) prev)
        | _ -> ());
        Hashtbl.replace last key (seq v))
      (List.rev t.deqs);
    !error
end
