(** The composite overload-protection layer: deadlines, retry budgets,
    circuit breakers and watermark shedding wired into one per-request
    admission pipeline.

    The service is deliberately ignorant of the KV store — each shard is
    described by a {!hooks} record of thunks (limbo gauge, pool gauge,
    wedged probe, emergency-reclaim escalator) supplied by the driver, so
    the layer composes with any sharded backend and stays deterministic
    on the simulator (all timing flows through [Runtime.Ctx.now]).

    Per-request pipeline, in order:

    + {e deadline at claim} — a request claimed after [due + deadline]
      cycles is cancelled ([Timed_out]) without touching the shard; this
      is what bounds queue drain after a burst.
    + {e watermark} — the shard's limbo gauge feeds a dual-watermark
      controller.  At {e Elevated} the service escalates (rate-limited
      emergency reclamation); at {e Brownout} it also sheds
      low-priority requests ([Shed]).
    + {e wedged probe} — a shard whose reclamation is permanently pinned
      by a corpse (and whose scheme cannot neutralize) trips the breaker
      via [force_open]; the check runs per request so the breaker stays
      open no matter how often cooldown expires ([Rejected]).
    + {e breaker admission} — open/half-open shards reject ([Rejected]).
    + {e serve with bounded retry} — retryable exceptions (the driver
      supplies the predicate; allocation pressure in the KV store) are
      retried under a per-client retry budget and full-jitter backoff,
      but never past the deadline or [max_attempts].
    + {e late completion} — a request finishing past its deadline counts
      as [Timed_out] even though the work happened; SLO credit requires
      finishing on time.

    The breaker sees [ok] for on-time service and [fail] for failures
    and late completions; shed/cancelled/rejected requests are not
    recorded (they never reached the shard, so they carry no signal
    about its health). *)

type priority = High | Low

type hooks = {
  limbo : unit -> int;  (** shard limbo population (uninstrumented read) *)
  pool : unit -> int;  (** shard pool population (uninstrumented read) *)
  wedged : unit -> bool;  (** permanently pinned and not recoverable? *)
  escalate : Runtime.Ctx.t -> int;  (** emergency reclaim; records freed *)
}

type config = {
  deadline : int;  (** cycles after [due] before a request is cancelled *)
  max_attempts : int;  (** total tries per request, first included *)
  backoff_base : int;  (** cycles *)
  backoff_cap : int;  (** cycles *)
  retry_ratio_pct : int;
  retry_burst : int;
  breaker : Breaker.config;
  elevated : int;  (** limbo watermark: escalate emergency reclaim *)
  brownout : int;  (** limbo watermark: shed low-priority requests *)
  escalate_every : int;  (** min cycles between escalations per shard *)
}

let default_config =
  {
    deadline = 300_000;
    max_attempts = 4;
    backoff_base = 1_000;
    backoff_cap = 100_000;
    retry_ratio_pct = 10;
    retry_burst = 3;
    breaker = Breaker.default_config;
    elevated = 2_000;
    brownout = 8_000;
    escalate_every = 50_000;
  }

type shard_state = {
  hooks : hooks;
  breaker : Breaker.t;
  watermark : Watermark.t;
  mutable last_escalate : int;
  mutable escalate_calls : int;
  mutable escalate_freed : int;
  mutable wedged_seen : bool;
}

type stats = {
  mutable served : int;
  mutable shed : int;
  mutable rejected : int;
  mutable cancelled : int;  (** timed out at claim, before touching a shard *)
  mutable late : int;  (** served past deadline -> Timed_out *)
  mutable failed : int;
  mutable retries : int;
}

type t = {
  config : config;
  shards : shard_state array;
  backoff : Backoff.t array;  (** per client pid *)
  budget : Retry_budget.t array;  (** per client pid *)
  stats : stats;
}

let create ?(config = default_config) ~pids ~seed hooks =
  if config.max_attempts < 1 then
    invalid_arg "Service.create: max_attempts must be >= 1";
  {
    config;
    shards =
      Array.map
        (fun hooks ->
          {
            hooks;
            breaker = Breaker.create ~config:config.breaker ();
            watermark =
              Watermark.create
                (Watermark.config ~elevated:config.elevated
                   ~brownout:config.brownout);
            (* Not min_int: [now - last_escalate] must not overflow. *)
            last_escalate = -config.escalate_every;
            escalate_calls = 0;
            escalate_freed = 0;
            wedged_seen = false;
          })
        hooks;
    backoff =
      Array.init pids (fun pid ->
          Backoff.create ~base:config.backoff_base ~cap:config.backoff_cap
            ~seed:(seed + (pid * 7919))
            ());
    budget =
      Array.init pids (fun _ ->
          Retry_budget.create ~ratio_pct:config.retry_ratio_pct
            ~burst:config.retry_burst ());
    stats =
      {
        served = 0;
        shed = 0;
        rejected = 0;
        cancelled = 0;
        late = 0;
        failed = 0;
        retries = 0;
      };
  }

let stats t = t.stats
let breaker t k = t.shards.(k).breaker
let watermark t k = t.shards.(k).watermark
let escalations t k = t.shards.(k).escalate_calls
let escalate_freed t k = t.shards.(k).escalate_freed
let wedged_seen t k = t.shards.(k).wedged_seen

let retries_denied t =
  Array.fold_left (fun acc b -> acc + Retry_budget.denied b) 0 t.budget

let trips t =
  Array.fold_left (fun acc sh -> acc + Breaker.trips sh.breaker) 0 t.shards

(* The mutable-counter reads are uninstrumented and single-writer per
   field in the sim (one scheduler step at a time), so exposing them as
   telemetry counters keeps schedules unperturbed. *)
let register t recorder =
  let s = t.stats in
  Telemetry.Recorder.add_counter recorder ~name:"resilience_served" (fun () ->
      s.served);
  Telemetry.Recorder.add_counter recorder ~name:"resilience_shed" (fun () ->
      s.shed);
  Telemetry.Recorder.add_counter recorder ~name:"resilience_rejected"
    (fun () -> s.rejected);
  Telemetry.Recorder.add_counter recorder ~name:"resilience_cancelled"
    (fun () -> s.cancelled);
  Telemetry.Recorder.add_counter recorder ~name:"resilience_late" (fun () ->
      s.late);
  Telemetry.Recorder.add_counter recorder ~name:"resilience_failed" (fun () ->
      s.failed);
  Telemetry.Recorder.add_counter recorder ~name:"resilience_retries"
    (fun () -> s.retries);
  Telemetry.Recorder.add_counter recorder ~name:"resilience_retries_denied"
    (fun () -> retries_denied t);
  Telemetry.Recorder.add_counter recorder ~name:"resilience_breaker_trips"
    (fun () -> trips t);
  Telemetry.Recorder.add_counter recorder ~name:"resilience_escalations"
    (fun () ->
      Array.fold_left (fun acc sh -> acc + sh.escalate_calls) 0 t.shards)

let maybe_escalate t sh ctx ~now =
  if now - sh.last_escalate >= t.config.escalate_every then begin
    sh.last_escalate <- now;
    sh.escalate_calls <- sh.escalate_calls + 1;
    sh.escalate_freed <- sh.escalate_freed + sh.hooks.escalate ctx
  end

let call t ctx ~pid ~shard ~priority ~due ~retryable f :
    Loadgen.outcome =
  let cfg = t.config in
  let sh = t.shards.(shard) in
  let deadline_at = due + cfg.deadline in
  let now = Runtime.Ctx.now ctx in
  if now > deadline_at then begin
    t.stats.cancelled <- t.stats.cancelled + 1;
    Timed_out
  end
  else begin
    let level = Watermark.observe sh.watermark (sh.hooks.limbo ()) in
    (match level with
    | Watermark.Normal -> ()
    | Elevated | Brownout -> maybe_escalate t sh ctx ~now);
    if level = Watermark.Brownout && priority = Low then begin
      t.stats.shed <- t.stats.shed + 1;
      Shed
    end
    else begin
      let wedged = sh.hooks.wedged () in
      if wedged then begin
        sh.wedged_seen <- true;
        Breaker.force_open sh.breaker ~now
      end;
      if wedged || not (Breaker.admit sh.breaker ~now) then begin
        t.stats.rejected <- t.stats.rejected + 1;
        Rejected
      end
      else begin
        let bo = t.backoff.(pid) in
        let budget = t.budget.(pid) in
        Retry_budget.deposit budget;
        Backoff.reset bo;
        let rec attempt n =
          match f () with
          | () ->
              let finish = Runtime.Ctx.now ctx in
              if finish <= deadline_at then begin
                t.stats.served <- t.stats.served + 1;
                Breaker.record sh.breaker ~now:finish ~ok:true;
                Loadgen.Served
              end
              else begin
                t.stats.late <- t.stats.late + 1;
                Breaker.record sh.breaker ~now:finish ~ok:false;
                Timed_out
              end
          | exception e when retryable e ->
              let now = Runtime.Ctx.now ctx in
              let delay = Backoff.next bo in
              if
                n + 1 > cfg.max_attempts
                || now + delay > deadline_at
                || not (Retry_budget.try_spend budget)
              then begin
                t.stats.failed <- t.stats.failed + 1;
                Breaker.record sh.breaker ~now ~ok:false;
                Failed
              end
              else begin
                t.stats.retries <- t.stats.retries + 1;
                maybe_escalate t sh ctx ~now;
                Runtime.Ctx.stall ctx delay;
                Runtime.Ctx.work ctx 1;
                attempt (n + 1)
              end
        in
        attempt 1
      end
    end
  end
