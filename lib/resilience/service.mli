(** Composite overload-protection layer: per-request deadlines, retry
    budgets with full-jitter backoff, per-shard circuit breakers with
    crashed-shard detection, and limbo-watermark escalation/shedding.
    Backend-polymorphic and deterministic on the simulator; the sharded
    store is abstracted behind per-shard {!hooks}.  See the
    implementation header for the exact per-request pipeline. *)

type priority = High | Low
(** [Low] (scans) is shed first in brownout; [High] (point ops) only
    fails via deadline, breaker or exhausted retries. *)

type hooks = {
  limbo : unit -> int;  (** shard limbo population (uninstrumented read) *)
  pool : unit -> int;  (** shard pool population (uninstrumented read) *)
  wedged : unit -> bool;  (** permanently pinned and not recoverable? *)
  escalate : Runtime.Ctx.t -> int;  (** emergency reclaim; returns freed *)
}

type config = {
  deadline : int;  (** cycles after [due] before a request is cancelled *)
  max_attempts : int;  (** total tries per request, first included *)
  backoff_base : int;  (** cycles *)
  backoff_cap : int;  (** cycles *)
  retry_ratio_pct : int;
  retry_burst : int;
  breaker : Breaker.config;
  elevated : int;  (** limbo watermark: escalate emergency reclaim *)
  brownout : int;  (** limbo watermark: shed low-priority requests *)
  escalate_every : int;  (** min cycles between escalations per shard *)
}

val default_config : config

type stats = {
  mutable served : int;
  mutable shed : int;
  mutable rejected : int;
  mutable cancelled : int;  (** timed out at claim, before touching a shard *)
  mutable late : int;  (** finished past deadline -> [Timed_out] *)
  mutable failed : int;
  mutable retries : int;
}

type t

val create : ?config:config -> pids:int -> seed:int -> hooks array -> t
(** One {!hooks} record per shard; [pids] client processes each get an
    independent deterministic backoff stream (derived from [seed]) and
    retry budget. *)

val call :
  t ->
  Runtime.Ctx.t ->
  pid:int ->
  shard:int ->
  priority:priority ->
  due:int ->
  retryable:(exn -> bool) ->
  (unit -> unit) ->
  Loadgen.outcome
(** Run one request through the admission pipeline.  [retryable]
    classifies exceptions worth backing off and retrying (allocation
    pressure); anything else propagates to the caller. *)

val stats : t -> stats
val breaker : t -> int -> Breaker.t
val watermark : t -> int -> Watermark.t
val escalations : t -> int -> int
val escalate_freed : t -> int -> int
val wedged_seen : t -> int -> bool
val retries_denied : t -> int
val trips : t -> int

val register : t -> Telemetry.Recorder.t -> unit
(** Expose the service's counters ([resilience_served], [_shed],
    [_rejected], [_cancelled], [_late], [_failed], [_retries],
    [_retries_denied], [_breaker_trips], [_escalations]) on a telemetry
    recorder. *)
