(** Dual-watermark admission controller with hysteresis: a pressure
    gauge crossing [elevated] triggers emergency-reclaim escalation,
    crossing [brownout] sheds low-priority work; each mode exits at 3/4
    of its entry threshold so the level cannot flap per observation. *)

type level = Normal | Elevated | Brownout

val level_name : level -> string

type config = {
  elevated_hi : int;
  elevated_lo : int;
  brownout_hi : int;
  brownout_lo : int;
}

val config : elevated:int -> brownout:int -> config
(** Entry thresholds; exits default to 3/4 of each.  Raises
    [Invalid_argument] unless [1 <= elevated < brownout]. *)

type t

val create : config -> t

val observe : t -> int -> level
(** Feed one gauge reading; returns the (possibly changed) level. *)

val level : t -> level
val escalations : t -> int
val brownouts : t -> int
