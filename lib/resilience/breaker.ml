(** Per-shard circuit breaker: the classic three-state machine, driven by
    explicit timestamps (backend cycles) so it is deterministic on the
    simulator and lock-free-ish on domains (single-writer per shard in
    practice; racy updates only smear the failure window, never corrupt
    the state machine).

    - {e Closed}: requests flow; outcomes are counted in a rolling window.
      When the window holds at least [min_requests] outcomes and the
      failure ratio reaches [failure_pct]%, the breaker trips.
    - {e Open}: requests are rejected without touching the shard.  After
      [cooldown] cycles the next admission probe flips to half-open.
    - {e Half-open}: up to [probes] requests are admitted.  A success
      closes the breaker (window reset); a failure re-opens it and
      restarts the cooldown.

    [force_open] is the crashed-shard path: when the store reports a
    shard permanently wedged (a corpse pins its reclamation and the
    scheme cannot neutralize), the driver trips the breaker directly
    instead of waiting for organic failures. *)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  window : int;  (** rolling failure-ratio window, cycles *)
  min_requests : int;  (** outcomes before the ratio is meaningful *)
  failure_pct : int;  (** trip threshold, percent of window outcomes *)
  cooldown : int;  (** open -> half-open delay, cycles *)
  probes : int;  (** admissions allowed while half-open *)
}

let default_config =
  {
    window = 3_000_000;
    min_requests = 20;
    failure_pct = 50;
    cooldown = 3_000_000;
    probes = 3;
  }

type t = {
  config : config;
  mutable state : state;
  mutable window_start : int;
  mutable ok : int;
  mutable fail : int;
  mutable opened_at : int;
  mutable probes_left : int;
  mutable trips : int;  (** Closed/Half_open -> Open transitions *)
  mutable rejected : int;  (** admissions refused *)
}

let create ?(config = default_config) () =
  if config.min_requests < 1 then
    invalid_arg "Breaker.create: min_requests must be >= 1";
  if config.failure_pct < 1 || config.failure_pct > 100 then
    invalid_arg "Breaker.create: failure_pct must be in [1, 100]";
  if config.probes < 1 then invalid_arg "Breaker.create: probes must be >= 1";
  {
    config;
    state = Closed;
    window_start = 0;
    ok = 0;
    fail = 0;
    opened_at = 0;
    probes_left = 0;
    trips = 0;
    rejected = 0;
  }

let state t = t.state
let trips t = t.trips
let rejected t = t.rejected

let trip t ~now =
  t.state <- Open;
  t.opened_at <- now;
  t.trips <- t.trips + 1;
  t.ok <- 0;
  t.fail <- 0

let force_open t ~now = if t.state <> Open then trip t ~now

let roll_window t ~now =
  if now - t.window_start >= t.config.window then begin
    t.window_start <- now;
    t.ok <- 0;
    t.fail <- 0
  end

(* Admission: the only place Open flips to Half_open, so a rejected
   stream of requests costs one timestamp comparison each. *)
let admit t ~now =
  match t.state with
  | Closed -> true
  | Half_open ->
      if t.probes_left > 0 then begin
        t.probes_left <- t.probes_left - 1;
        true
      end
      else begin
        t.rejected <- t.rejected + 1;
        false
      end
  | Open ->
      if now - t.opened_at >= t.config.cooldown then begin
        t.state <- Half_open;
        t.probes_left <- t.config.probes - 1;
        true
      end
      else begin
        t.rejected <- t.rejected + 1;
        false
      end

let record t ~now ~ok =
  match t.state with
  | Open -> ()
  | Half_open ->
      if ok then begin
        (* One healthy probe closes; the fresh window starts now. *)
        t.state <- Closed;
        t.window_start <- now;
        t.ok <- 0;
        t.fail <- 0
      end
      else trip t ~now
  | Closed ->
      roll_window t ~now;
      if ok then t.ok <- t.ok + 1 else t.fail <- t.fail + 1;
      let total = t.ok + t.fail in
      if
        total >= t.config.min_requests
        && t.fail * 100 >= t.config.failure_pct * total
      then trip t ~now
