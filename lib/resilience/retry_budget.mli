(** Per-client retry budgets: a token bucket capping retry traffic at
    [ratio_pct]% of first-attempt traffic plus a [burst] allowance, so
    failures surface instead of amplifying offered load (integer
    milli-token arithmetic; deterministic). *)

type t

val create : ?ratio_pct:int -> ?burst:int -> unit -> t
(** [ratio_pct] (default 10) retries allowed per 100 first attempts;
    [burst] (default 3) whole tokens of headroom, which the bucket starts
    holding.  Raises [Invalid_argument] out of range. *)

val deposit : t -> unit
(** Account one first attempt (earns [ratio_pct]% of a token). *)

val try_spend : t -> bool
(** Spend one token for a retry; [false] (and counted as denied) when the
    budget is exhausted. *)

val balance : t -> int
(** Whole tokens currently available. *)

val spent : t -> int
val denied : t -> int
val deposits : t -> int
