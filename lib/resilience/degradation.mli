(** Degradation report for an overload campaign cell: splits the request
    stream into pre-burst / burst / post-burst phases by scheduled
    arrival time, tallies outcomes and goodput per phase, tracks the
    maximum sampled shard limbo, and judges three machine-checked
    verdicts — limbo bound held, worst-phase goodput floor, and
    time-to-recover after the burst. *)

type phase = Pre | Burst | Post

val phase_name : phase -> string
val phases : phase list

type tally = {
  mutable demand : int;
  mutable served : int;
  mutable shed : int;
  mutable rejected : int;
  mutable timed_out : int;
  mutable failed : int;
}

type t

val create :
  burst_start:int -> burst_end:int -> end_of_schedule:int -> bucket_cycles:int -> t
(** Phase boundaries in backend cycles: the arrival process's spike
    window, plus the last scheduled arrival (the post phase's duration
    for rate computation).  [bucket_cycles] is the width of the
    recovery-rate buckets (see {!recovery_cycles}).  Raises
    [Invalid_argument] unless [0 < burst_start < burst_end] and
    [bucket_cycles >= 1]. *)

val phase_of : t -> due:int -> phase

val account : t -> due:int -> Loadgen.outcome -> unit
(** Record one request's outcome in the phase of its scheduled arrival. *)

val observe_limbo : t -> int -> unit
(** Feed one per-shard limbo-population sample. *)

val merge : t -> t -> unit
(** [merge dst src] folds a per-worker report into [dst] (domains-backend
    accumulation).  Raises [Invalid_argument] when the phase boundaries
    differ. *)

val tally : t -> phase -> tally
val max_limbo : t -> int

val served_rate : t -> phase -> float
(** Served requests per cycle — the goodput the floor verdict compares
    across phases (rate, not served/demand: an open-loop spike can
    exceed capacity many-fold; the layer's job is to keep completing
    work, not to out-serve infinite demand). *)

val recovery_cycles : t -> int
(** Cycles from burst end to the end of the last post-burst bucket whose
    non-served rate exceeds a small tolerance (2%, and at least 2
    requests); 0 when the service was back under tolerance immediately.
    A rate rather than a last-bad-request timestamp: near capacity the
    steady state has a small organic timeout rate, and one stray late
    scan must not read as "never recovered". *)

type verdict = {
  limbo_bound : int;
  limbo_ok : bool;
  goodput_floor_pct : float;
      (** worst-phase floor, % of the pre-burst served rate *)
  goodput_ok : bool;
  recovery_budget : int;
  recovery_ok : bool;
  passed : bool;
}

val judge :
  t -> limbo_bound:int -> floor_pct:float -> recovery_budget:int -> verdict

val to_json : t -> verdict -> Telemetry.Json.t
