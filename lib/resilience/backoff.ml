(** Full-jitter exponential backoff (the AWS-style retry spacing).

    Attempt [k] draws a delay uniformly from [0, min (cap, base * 2^k));
    the full-jitter draw decorrelates retries from every client that
    failed at the same instant, which is what actually prevents a retry
    storm — synchronized exponential backoff without jitter just moves
    the thundering herd to a coarser grid.

    All state is host-side and the RNG is seeded per client, so a sim
    run's backoff sequence is a pure function of [(seed, draws made)]:
    deterministic replay holds. *)

type t = {
  base : int;  (** first-attempt ceiling, cycles *)
  cap : int;  (** ceiling the exponential curve saturates at, cycles *)
  rng : Random.State.t;
  mutable attempt : int;
}

let create ?(base = 1_000) ?(cap = 1_000_000) ~seed () =
  if base < 1 then invalid_arg "Backoff.create: base must be >= 1";
  if cap < base then invalid_arg "Backoff.create: cap must be >= base";
  { base; cap; rng = Random.State.make [| seed; 0xb0ff |]; attempt = 0 }

let attempt t = t.attempt

let reset t = t.attempt <- 0

(* The ceiling doubles per attempt until it saturates at [cap]; shifting
   past 62 bits would wrap, so saturate the shift count first. *)
let ceiling t =
  let k = min t.attempt 40 in
  min t.cap (t.base lsl k)

let next t =
  let hi = ceiling t in
  t.attempt <- t.attempt + 1;
  Random.State.int t.rng (max 1 hi)
