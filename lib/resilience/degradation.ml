(** Degradation report for an overload campaign cell.

    An E-overload cell runs an open-loop workload whose arrival process
    contains a load spike ([Arrivals.Spike]); the report splits the
    request stream into three phases by {e scheduled arrival time} —
    pre-burst, burst, post-burst — and judges three things:

    - {e limbo bound}: the maximum sampled per-shard limbo population
      must stay at or below the scheme's theoretical bound (for DEBRA-
      family epochs, [3 * n * n * block_capacity]; campaign-supplied);
    - {e goodput floor}: the {e served rate} (requests completed within
      deadline per unit time) in the worst phase must be at least
      [floor_pct]% of the pre-burst served rate.  Rate, not
      served/demand: an open-loop spike can exceed raw capacity many
      times over, and the overload layer's job is to keep completing
      work near capacity while it sheds the excess — the failure mode it
      guards against is goodput {e collapse} (retry storms, a wedged
      shard, congestion on the survivors), not the arithmetic fact that
      demand outran capacity;
    - {e recovery}: after the burst ends, the non-served rate must
      return below a small tolerance within a recovery budget.  Outcomes
      are bucketed by due time; the recovery point is the end of the
      last post-burst bucket where more than [tolerance_pct]% (and at
      least [min_bad]) of its requests went unserved — a rate, not a
      last-bad-request timestamp, because a service running near
      capacity has a small steady-state timeout rate even before the
      burst, and one stray late scan must not read as "never
      recovered".  A wedged shard rejects a constant fraction forever,
      so its bad buckets run to the end of the schedule and blow any
      budget.

    Phase classification is by due time, not completion time: a request
    scheduled during the burst that drains late still belongs to the
    burst phase, so queue-drain lag shows up as slow recovery rather
    than as a polluted post-phase. *)

type phase = Pre | Burst | Post

let phase_name = function Pre -> "pre" | Burst -> "burst" | Post -> "post"
let phases = [ Pre; Burst; Post ]
let phase_index = function Pre -> 0 | Burst -> 1 | Post -> 2

type tally = {
  mutable demand : int;
  mutable served : int;  (** served within deadline *)
  mutable shed : int;
  mutable rejected : int;
  mutable timed_out : int;
  mutable failed : int;
}

let new_tally () =
  { demand = 0; served = 0; shed = 0; rejected = 0; timed_out = 0; failed = 0 }

(* Recovery-rate thresholds: a bucket is "still degraded" when more than
   [tolerance_pct]% of its requests (and at least [min_bad] in absolute
   terms, so one stray timeout in a quiet bucket is noise) went
   unserved. *)
let tolerance_pct = 2
let min_bad = 2

type t = {
  burst_start : int;  (** cycles; spike window from the arrival process *)
  burst_end : int;
  end_of_schedule : int;  (** last scheduled arrival, cycles *)
  bucket_cycles : int;  (** recovery-rate bucket width *)
  tallies : tally array;  (** indexed by {!phase_index} *)
  demand_b : int array;  (** per-bucket demand, indexed by due/bucket *)
  bad_b : int array;  (** per-bucket non-served outcomes *)
  mutable max_limbo : int;  (** max sampled per-shard limbo population *)
}

let create ~burst_start ~burst_end ~end_of_schedule ~bucket_cycles =
  if not (0 < burst_start && burst_start < burst_end) then
    invalid_arg "Degradation.create: want 0 < burst_start < burst_end";
  if bucket_cycles < 1 then
    invalid_arg "Degradation.create: bucket_cycles must be >= 1";
  let nbuckets = (end_of_schedule / bucket_cycles) + 2 in
  {
    burst_start;
    burst_end;
    end_of_schedule;
    bucket_cycles;
    tallies = Array.init 3 (fun _ -> new_tally ());
    demand_b = Array.make nbuckets 0;
    bad_b = Array.make nbuckets 0;
    max_limbo = 0;
  }

let duration t = function
  | Pre -> t.burst_start
  | Burst -> t.burst_end - t.burst_start
  | Post -> max 1 (t.end_of_schedule - t.burst_end)

let phase_of t ~due =
  if due < t.burst_start then Pre else if due < t.burst_end then Burst else Post

let account t ~due (outcome : Loadgen.outcome) =
  let tl = t.tallies.(phase_index (phase_of t ~due)) in
  tl.demand <- tl.demand + 1;
  (match outcome with
  | Served -> tl.served <- tl.served + 1
  | Shed -> tl.shed <- tl.shed + 1
  | Rejected -> tl.rejected <- tl.rejected + 1
  | Timed_out -> tl.timed_out <- tl.timed_out + 1
  | Failed -> tl.failed <- tl.failed + 1);
  let b = min (max 0 due / t.bucket_cycles) (Array.length t.demand_b - 1) in
  t.demand_b.(b) <- t.demand_b.(b) + 1;
  if outcome <> Served then t.bad_b.(b) <- t.bad_b.(b) + 1

let observe_limbo t v = if v > t.max_limbo then t.max_limbo <- v

(* Workers on the domains backend each accumulate into a private report
   (shared tallies would race); the driver folds them into one after the
   run.  Phase boundaries must match. *)
let merge dst src =
  if
    dst.burst_start <> src.burst_start
    || dst.burst_end <> src.burst_end
    || dst.bucket_cycles <> src.bucket_cycles
    || Array.length dst.demand_b <> Array.length src.demand_b
  then invalid_arg "Degradation.merge: phase boundaries differ";
  Array.iteri
    (fun i (s : tally) ->
      let d = dst.tallies.(i) in
      d.demand <- d.demand + s.demand;
      d.served <- d.served + s.served;
      d.shed <- d.shed + s.shed;
      d.rejected <- d.rejected + s.rejected;
      d.timed_out <- d.timed_out + s.timed_out;
      d.failed <- d.failed + s.failed)
    src.tallies;
  Array.iteri (fun i v -> dst.demand_b.(i) <- dst.demand_b.(i) + v) src.demand_b;
  Array.iteri (fun i v -> dst.bad_b.(i) <- dst.bad_b.(i) + v) src.bad_b;
  if src.max_limbo > dst.max_limbo then dst.max_limbo <- src.max_limbo

let tally t phase = t.tallies.(phase_index phase)
let max_limbo t = t.max_limbo

let goodput_pct tl =
  if tl.demand = 0 then 100.0
  else 100.0 *. float_of_int tl.served /. float_of_int tl.demand

(** Served requests per cycle in the phase — the goodput the floor
    verdict compares across phases. *)
let served_rate t phase =
  float_of_int (tally t phase).served /. float_of_int (duration t phase)

(** Time from burst end to the end of the last post-burst bucket whose
    non-served rate exceeds the tolerance, in cycles; 0 when the service
    was back under tolerance immediately.  [max_int] would be wrong for
    "never recovers" — a wedged shard keeps producing bad outcomes to
    the end of the run, so its last bad bucket lands at the schedule's
    end and blows any sane budget on its own. *)
let recovery_cycles t =
  let bad_bucket i =
    t.bad_b.(i) >= min_bad
    && t.bad_b.(i) * 100 > tolerance_pct * t.demand_b.(i)
  in
  let rec scan i =
    if i < 0 then 0
    else
      let bucket_start = i * t.bucket_cycles in
      if bucket_start < t.burst_end then 0
      else if bad_bucket i then ((i + 1) * t.bucket_cycles) - t.burst_end
      else scan (i - 1)
  in
  scan (Array.length t.bad_b - 1)

type verdict = {
  limbo_bound : int;
  limbo_ok : bool;
  goodput_floor_pct : float;
      (** worst-phase floor, % of the pre-burst served rate *)
  goodput_ok : bool;
  recovery_budget : int;  (** cycles *)
  recovery_ok : bool;
  passed : bool;
}

let judge t ~limbo_bound ~floor_pct ~recovery_budget =
  let pre = served_rate t Pre in
  (* Phases nothing was scheduled into carry no rate signal. *)
  let active = List.filter (fun p -> (tally t p).demand > 0) phases in
  let worst =
    List.fold_left (fun acc p -> Float.min acc (served_rate t p)) pre active
  in
  let limbo_ok = t.max_limbo <= limbo_bound in
  (* A zero pre-burst rate means the cell was broken before overload;
     fail the floor rather than divide by zero. *)
  let goodput_ok = pre > 0.0 && worst >= pre *. floor_pct /. 100.0 in
  let recovery_ok = recovery_cycles t <= recovery_budget in
  {
    limbo_bound;
    limbo_ok;
    goodput_floor_pct = floor_pct;
    goodput_ok;
    recovery_budget;
    recovery_ok;
    passed = limbo_ok && goodput_ok && recovery_ok;
  }

let tally_fields tl : (string * Telemetry.Json.t) list =
  [
    ("demand", Int tl.demand);
    ("served", Int tl.served);
    ("shed", Int tl.shed);
    ("rejected", Int tl.rejected);
    ("timed_out", Int tl.timed_out);
    ("failed", Int tl.failed);
    ("goodput_pct", Float (goodput_pct tl));
  ]

let to_json t verdict =
  Telemetry.Json.Obj
    [
      ( "phases",
        Obj
          (List.map
             (fun p ->
               ( phase_name p,
                 Telemetry.Json.Obj
                   (tally_fields (tally t p)
                   @ [
                       ( "served_per_mcycle",
                         Telemetry.Json.Float (1e6 *. served_rate t p) );
                     ]) ))
             phases) );
      ("max_limbo", Int t.max_limbo);
      ("limbo_bound", Int verdict.limbo_bound);
      ("limbo_ok", Bool verdict.limbo_ok);
      ("goodput_floor_pct", Float verdict.goodput_floor_pct);
      ("goodput_ok", Bool verdict.goodput_ok);
      ("recovery_cycles", Int (recovery_cycles t));
      ("recovery_budget", Int verdict.recovery_budget);
      ("recovery_ok", Bool verdict.recovery_ok);
      ("passed", Bool verdict.passed);
    ]
