(** Per-client retry budgets: a token bucket that caps retry traffic at a
    fixed percentage of request traffic.

    Every first attempt deposits [ratio_pct]% of a token; every retry
    spends a whole token.  When the service degrades hard, clients that
    retry without a budget multiply the offered load exactly when the
    server can least afford it (the classic retry-storm amplification);
    with the budget, retry traffic is bounded by [ratio_pct]% of the
    request rate plus the [burst] allowance, and the rest of the failures
    surface to the caller instead of echoing around the system.

    Integer milli-tokens throughout — no float drift, deterministic on
    every backend. *)

type t = {
  ratio_pct : int;  (** retries allowed per 100 first attempts *)
  cap_millis : int;  (** bucket ceiling ([burst] whole tokens) *)
  mutable balance_millis : int;
  mutable deposits : int;
  mutable spent : int;
  mutable denied : int;
}

let create ?(ratio_pct = 10) ?(burst = 3) () =
  if ratio_pct < 0 || ratio_pct > 100 then
    invalid_arg "Retry_budget.create: ratio_pct must be in [0, 100]";
  if burst < 1 then invalid_arg "Retry_budget.create: burst must be >= 1";
  let cap = burst * 1_000 in
  {
    ratio_pct;
    cap_millis = cap;
    (* Start full: a client's very first failure may retry. *)
    balance_millis = cap;
    deposits = 0;
    spent = 0;
    denied = 0;
  }

let deposit t =
  t.deposits <- t.deposits + 1;
  t.balance_millis <- min t.cap_millis (t.balance_millis + (t.ratio_pct * 10))

let try_spend t =
  if t.balance_millis >= 1_000 then begin
    t.balance_millis <- t.balance_millis - 1_000;
    t.spent <- t.spent + 1;
    true
  end
  else begin
    t.denied <- t.denied + 1;
    false
  end

let balance t = t.balance_millis / 1_000
let spent t = t.spent
let denied t = t.denied
let deposits t = t.deposits
