(** Per-shard circuit breaker (closed / open / half-open), driven by
    explicit cycle timestamps — deterministic on the simulator.  See the
    implementation header for the state machine and the crashed-shard
    [force_open] path. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type config = {
  window : int;  (** rolling failure-ratio window, cycles *)
  min_requests : int;  (** outcomes before the ratio is meaningful *)
  failure_pct : int;  (** trip threshold, percent *)
  cooldown : int;  (** open -> half-open delay, cycles *)
  probes : int;  (** admissions allowed while half-open *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on a nonsensical config. *)

val admit : t -> now:int -> bool
(** May this request proceed?  The open->half-open cooldown transition
    happens here; a refusal is counted in {!rejected}. *)

val record : t -> now:int -> ok:bool -> unit
(** Report a completed (or failed) admitted request's outcome. *)

val force_open : t -> now:int -> unit
(** Trip immediately (crashed-shard detection); no-op when already open. *)

val state : t -> state
val trips : t -> int
val rejected : t -> int
