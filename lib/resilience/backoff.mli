(** Full-jitter exponential backoff, seeded per client: attempt [k]
    draws uniformly from [0, min (cap, base * 2^k)) cycles, so retries
    decorrelate instead of re-synchronizing into a storm.  Deterministic
    given the seed and the sequence of draws. *)

type t

val create : ?base:int -> ?cap:int -> seed:int -> unit -> t
(** [base] (default 1000) is the first attempt's delay ceiling in cycles,
    [cap] (default 1_000_000) the saturation ceiling.  Raises
    [Invalid_argument] if [base < 1] or [cap < base]. *)

val next : t -> int
(** Draw the next delay (cycles) and advance the attempt counter. *)

val reset : t -> unit
(** Back to attempt 0 (call after a success). *)

val attempt : t -> int
(** Attempts drawn since the last reset. *)
