(** Dual-watermark admission controller with hysteresis.

    Tracks one scalar pressure gauge (per-shard limbo population in the
    KV service) against two watermark pairs:

    - crossing [elevated_hi] enters {e Elevated}: the service escalates —
      it invokes the shard's emergency reclamation proactively, before
      any allocation fails — and drops back to {e Normal} only below
      [elevated_lo];
    - crossing [brownout_hi] enters {e Brownout}: low-priority operations
      (scans before gets/puts) are shed outright until the gauge falls
      below [brownout_lo].

    The lo/hi split is the hysteresis: without it a gauge hovering at one
    threshold would flap the mode on every observation, shedding and
    unshedding request-by-request. *)

type level = Normal | Elevated | Brownout

let level_name = function
  | Normal -> "normal"
  | Elevated -> "elevated"
  | Brownout -> "brownout"

type config = {
  elevated_hi : int;
  elevated_lo : int;
  brownout_hi : int;
  brownout_lo : int;
}

let config ~elevated ~brownout =
  if elevated < 1 || brownout <= elevated then
    invalid_arg "Watermark.config: want 1 <= elevated < brownout";
  {
    elevated_hi = elevated;
    elevated_lo = (elevated * 3) / 4;
    brownout_hi = brownout;
    brownout_lo = (brownout * 3) / 4;
  }

type t = {
  cfg : config;
  mutable level : level;
  mutable escalations : int;  (** Normal -> Elevated transitions *)
  mutable brownouts : int;  (** Elevated -> Brownout transitions *)
}

let create cfg = { cfg = cfg; level = Normal; escalations = 0; brownouts = 0 }

let level t = t.level
let escalations t = t.escalations
let brownouts t = t.brownouts

let observe t v =
  (* A gauge can jump several thresholds between observations (a retire
     burst lands all at once), so entry is judged against the reading,
     not one level per call: Normal goes straight to Brownout when the
     reading warrants it. *)
  (match t.level with
  | Normal ->
      if v >= t.cfg.elevated_hi then begin
        t.level <- Elevated;
        t.escalations <- t.escalations + 1;
        if v >= t.cfg.brownout_hi then begin
          t.level <- Brownout;
          t.brownouts <- t.brownouts + 1
        end
      end
  | Elevated ->
      if v >= t.cfg.brownout_hi then begin
        t.level <- Brownout;
        t.brownouts <- t.brownouts + 1
      end
      else if v <= t.cfg.elevated_lo then t.level <- Normal
  | Brownout -> if v <= t.cfg.brownout_lo then t.level <- Elevated);
  t.level
