type t = { pool : Block_pool.t; mutable head : Block.t; mutable size : int }

let create pool = { pool; head = Block_pool.get pool; size = 0 }
let is_empty t = t.size = 0
let size t = t.size
let size_in_blocks t = Block.chain_length t.head

let add t x =
  if Block.is_full t.head then begin
    let b = Block_pool.get t.pool in
    b.Block.next <- t.head;
    t.head <- b
  end;
  Block.push t.head x;
  t.size <- t.size + 1

let pop t =
  if Block.is_empty t.head && not (Block.is_nil t.head.Block.next) then begin
    let old = t.head in
    t.head <- old.Block.next;
    Block_pool.put t.pool old
  end;
  if Block.is_empty t.head then None
  else begin
    t.size <- t.size - 1;
    Some (Block.pop t.head)
  end

let add_block t b =
  assert (Block.is_full b);
  b.Block.next <- t.head.Block.next;
  t.head.Block.next <- b;
  t.size <- t.size + b.Block.count

let move_all_full_blocks t ~into =
  let rec go b moved =
    if Block.is_nil b then moved
    else begin
      let next = b.Block.next in
      let n = b.Block.count in
      b.Block.next <- Block.nil;
      into b;
      go next (moved + n)
    end
  in
  let moved = go t.head.Block.next 0 in
  t.head.Block.next <- Block.nil;
  t.size <- t.size - moved;
  moved

(* Every block leaves whole — the full tail blocks and then the partial
   head; a fresh head from the pool keeps the bag usable.  [into] takes
   ownership, so unlike [pop]-draining no record is ever copied. *)
let drain_blocks t ~into =
  let moved = move_all_full_blocks t ~into in
  let head_n = t.head.Block.count in
  if head_n = 0 then moved
  else begin
    let b = t.head in
    t.head <- Block_pool.get t.pool;
    into b;
    t.size <- t.size - head_n;
    moved + head_n
  end

(* O(1) per block: full non-head blocks are spliced whole (the invariant
   says everything after either head is full, so they may sit directly
   behind [into]'s head); only the single, possibly-partial source head
   block is drained element-wise — bounded by one block's capacity. *)
let transfer src ~into =
  if src != into then begin
    ignore (move_all_full_blocks src ~into:(add_block into));
    let rec drain () =
      match pop src with
      | Some x ->
          add into x;
          drain ()
      | None -> ()
    in
    drain ()
  end

(* Physical block chain, exposed so tests can check bags share no block
   after a transfer. *)
let blocks t =
  let rec go acc b =
    if Block.is_nil b then List.rev acc else go (b :: acc) b.Block.next
  in
  go [] t.head

let iter t f =
  let rec go b =
    if not (Block.is_nil b) then begin
      for i = 0 to b.Block.count - 1 do
        f b.Block.data.(i)
      done;
      go b.Block.next
    end
  in
  go t.head

type cursor = { mutable blk : Block.t; mutable idx : int }

let skip_empty c =
  while (not (Block.is_nil c.blk)) && c.idx >= c.blk.Block.count do
    c.blk <- c.blk.Block.next;
    c.idx <- 0
  done

let cursor t =
  let c = { blk = t.head; idx = 0 } in
  skip_empty c;
  c

let at_end c = Block.is_nil c.blk

let get c =
  assert (not (at_end c));
  c.blk.Block.data.(c.idx)

let set c v =
  assert (not (at_end c));
  c.blk.Block.data.(c.idx) <- v

let advance c =
  assert (not (at_end c));
  c.idx <- c.idx + 1;
  skip_empty c

let swap c1 c2 =
  let v1 = get c1 and v2 = get c2 in
  set c1 v2;
  set c2 v1

let move_full_blocks_after t c ~into =
  if at_end c then 0
  else begin
    let rec go b moved =
      if Block.is_nil b then moved
      else begin
        let next = b.Block.next in
        let n = b.Block.count in
        b.Block.next <- Block.nil;
        into b;
        go next (moved + n)
      end
    in
    let moved = go c.blk.Block.next 0 in
    c.blk.Block.next <- Block.nil;
    t.size <- t.size - moved;
    moved
  end
