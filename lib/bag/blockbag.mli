(** A blockbag: a singly-linked list of blocks holding record pointers, with
    O(1) add/remove and O(1)-per-block bulk transfer of full blocks
    (paper §4).  Process-local; blocks are recycled through a {!Block_pool}.

    Invariant: every block after the head is full. *)

type t

val create : Block_pool.t -> t
val is_empty : t -> bool

(** Number of records, O(1). *)
val size : t -> int

val size_in_blocks : t -> int

val add : t -> int -> unit
val pop : t -> int option

(** [add_block t b] splices a full block into [t] (taking ownership). *)
val add_block : t -> Block.t -> unit

(** [move_all_full_blocks t ~into] detaches every full non-head block and
    hands each to [into]; returns the number of records moved. *)
val move_all_full_blocks : t -> into:(Block.t -> unit) -> int

(** [drain_blocks t ~into] detaches every block — the full tail blocks and
    then the single (possibly partial) head block — and hands each to
    [into], which takes ownership; [t] ends empty with a fresh head block
    from its pool, still usable.  O(1) per block plus at most one pool
    fetch; returns the number of records moved.  Empty blocks are never
    handed out. *)
val drain_blocks : t -> into:(Block.t -> unit) -> int

(** [transfer src ~into] moves every record of [src] into [into] and
    leaves [src] empty: full blocks are spliced in O(1) each, the single
    (possibly partial) source head block is drained element-wise.  The two
    bags share no block afterwards.  Both bags must draw on pools of the
    same [block_capacity].  No-op when [src == into]. *)
val transfer : t -> into:t -> unit

(** Physical block chain of the bag, head first (testing only). *)
val blocks : t -> Block.t list

val iter : t -> (int -> unit) -> unit

(** Cursors support DEBRA+'s partition step: records pointed to by hazard
    pointers are swapped to the front of the bag, then all full blocks after
    the cursor are transferred in bulk. *)

type cursor

val cursor : t -> cursor
val at_end : cursor -> bool
val get : cursor -> int
val set : cursor -> int -> unit
val advance : cursor -> unit

(** [swap c1 c2] exchanges the records at two cursor positions. *)
val swap : cursor -> cursor -> unit

(** [move_full_blocks_after t c ~into] detaches all blocks strictly after
    [c]'s block; returns the number of records moved. *)
val move_full_blocks_after : t -> cursor -> into:(Block.t -> unit) -> int
