type node = Nil | Cons of Block.t * node
type t = { head : node Runtime.Svar.t }

let create () = { head = Runtime.Svar.make Nil }

let rec push ctx t b =
  let old = Runtime.Svar.get ctx t.head in
  if not (Runtime.Svar.cas ctx t.head ~expect:old (Cons (b, old))) then
    push ctx t b

(* Single attempt, no retry loop: a failed CAS means another process took
   (or pushed) the head at this instant, and every caller has a fallback —
   the pool falls through to the allocator.  Spin-retrying here turns the
   head line into a global serialization point at high context counts:
   each failed CAS is an invalidating write that forces every other
   contender to re-read the line from memory, so with ~1000 allocating
   processes one spilled block can absorb hundreds of coherence misses
   before anyone wins (observed as a 317:1 CAS-failure ratio that
   dominated whole-trial cost at 1024 contexts). *)
let pop ctx t =
  match Runtime.Svar.get ctx t.head with
  | Nil -> None
  | Cons (b, rest) as old ->
      if Runtime.Svar.cas ctx t.head ~expect:old rest then Some b else None

let size_in_blocks t =
  let rec go n acc = match n with Nil -> acc | Cons (_, r) -> go r (acc + 1) in
  go (Runtime.Svar.peek t.head) 0
