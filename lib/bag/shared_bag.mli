(** The lock-free shared bag of full blocks (paper §4, "Object pool").

    Processes move whole blocks between their pool bags and this bag, which
    keeps synchronization costs per record negligible.  Implemented as a
    Treiber stack over immutable cons cells, so OCaml's GC rules out ABA on
    the stack spine while block ownership transfers hand-over-hand. *)

type t

val create : unit -> t

(** [push ctx t b] publishes full block [b] (takes ownership). *)
val push : Runtime.Ctx.t -> t -> Block.t -> unit

(** [pop ctx t] takes one full block, transferring ownership to the caller.
    Best-effort: returns [None] on an empty bag {e or} on a lost CAS race,
    so a contended bag never becomes a spin point — callers fall back to
    their allocator. *)
val pop : Runtime.Ctx.t -> t -> Block.t option

(** Uninstrumented size, for tests and reports (O(n)). *)
val size_in_blocks : t -> int
