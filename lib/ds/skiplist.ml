(** Lazy skip list (Herlihy-Shavit style): lock-based updates with lock-free,
    wait-free searches — the second workload of the paper's evaluation
    (key range [0, 2*10^5)).

    Memory reclamation interacts with the lock-free searches exactly as in a
    fully lock-free structure: a search may stand on a node while a remover
    unlinks and retires it, so retired nodes must not be freed under the
    reader.  Epoch schemes handle this for free.  Under an HP-style scheme
    every pred/succ kept by a traversal must stay protected (the skip list
    needs ~2*MAX_LEVEL+2 hazard pointers per process — set
    [Params.hp_slots] accordingly), with validation by re-reading the
    predecessor's next pointer, and any failed validation restarts the
    operation.

    Updates hold locks, which neutralization must respect: a neutralized
    lock holder would leave the lock taken forever.  Every lock-held window
    is therefore bracketed with {!Runtime.Ctx.mask}/[unmask] — the analogue
    of [pthread_sigmask] around a critical section — so a neutralization
    signal arriving mid-window is deferred to the unlock.  This is only
    sound under acknowledgement-based signal delivery
    ([Group.signals_unreliable]): with reliable delivery DEBRA+ counts one
    send as one neutralization, and a masked (not yet neutralized) target
    would be counted as passed — so {!create} switches the group to
    unreliable delivery whenever the scheme can neutralize.  Operations run
    under [RM.run_op] with recoveries that track the linearization point:
    an effectful completion (a successful insert's link, a successful
    delete's unlink-and-retire) happens inside a masked window, so recovery
    reports it exactly once and never re-executes it.

    Typestate tier: like the BST, the skip list uses the lifecycle half of
    {!Reclaim.Intf.RECORD_MANAGER.Typed} — typed allocation and sentinels,
    [acquire] at the HP validation sites, and the lock-held
    [publish_locked]/[unlink_locked] witnesses (its updates happen under
    locks, not CASes) feeding the witness-consuming retire — while keeping
    raw dereferences for the wait-free searches that may stand on retired
    nodes. *)

let max_level = 16

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module T = RM.Typed

  (* Node layout *)
  let c_key = 0
  let c_value = 1
  let c_top = 2
  let f_marked = 0
  let f_fully_linked = 1
  let f_lock = 2
  let f_next l = 3 + l

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    head : Memory.Ptr.t;
    tail : Memory.Ptr.t;
  }

  let create rm ~capacity =
    let env = RM.env rm in
    let arena =
      Memory.Heap.new_arena env.Reclaim.Intf.Env.heap ~name:"skiplist.node"
        ~mut_fields:(3 + max_level) ~const_fields:3 ~capacity:(capacity + 2)
    in
    let ctx = Runtime.Group.ctx env.Reclaim.Intf.Env.group 0 in
    let head = T.alloc rm ctx arena in
    let tail = T.alloc rm ctx arena in
    let tailp = T.fresh_ptr tail in
    T.init_const rm ctx arena head c_key min_int;
    T.init_const rm ctx arena head c_value 0;
    T.init_const rm ctx arena head c_top (max_level - 1);
    T.init_const rm ctx arena tail c_key max_int;
    T.init_const rm ctx arena tail c_value 0;
    T.init_const rm ctx arena tail c_top (max_level - 1);
    for l = 0 to max_level - 1 do
      T.init rm ctx arena head (f_next l) tailp;
      T.init rm ctx arena tail (f_next l) Memory.Ptr.null
    done;
    T.init rm ctx arena head f_marked 0;
    T.init rm ctx arena head f_fully_linked 1;
    T.init rm ctx arena head f_lock 0;
    T.init rm ctx arena tail f_marked 0;
    T.init rm ctx arena tail f_fully_linked 1;
    T.init rm ctx arena tail f_lock 0;
    let head = T.sentinel rm ctx head in
    let tail = T.sentinel rm ctx tail in
    (* Signal masking around lock-held windows is only sound when senders
       wait for acknowledgement instead of counting a delivered signal as a
       completed neutralization (see the header). *)
    if RM.supports_crash_recovery then
      env.Reclaim.Intf.Env.group.Runtime.Group.signals_unreliable <- true;
    { rm; arena; head; tail }

  let arena t = t.arena
  let key_of t ctx p = Memory.Arena.get_const ctx t.arena p c_key
  let top_of t ctx p = Memory.Arena.get_const ctx t.arena p c_top
  let next_of t ctx p l = Memory.Arena.read ctx t.arena p (f_next l)
  let marked t ctx p = Memory.Arena.read ctx t.arena p f_marked = 1
  let fully_linked t ctx p = Memory.Arena.read ctx t.arena p f_fully_linked = 1

  (* Spin locks on a node field; spinning polls the signal flag on every
     read, so the simulator can always make progress. *)
  let lock t ctx p =
    while not (Memory.Arena.cas ctx t.arena p f_lock ~expect:0 1) do
      Runtime.Ctx.work ctx 1
    done

  let unlock t ctx p = Memory.Arena.write ctx t.arena p f_lock 0

  (* Idempotent mask bookkeeping for one operation: exception paths (sandbox
     aborts) can then restore balance without tracking depth. *)
  let masker ctx =
    let masked = ref false in
    let mask_ () =
      if not !masked then begin
        Runtime.Ctx.mask ctx;
        masked := true
      end
    in
    let unmask_ () =
      if !masked then begin
        masked := false;
        Runtime.Ctx.unmask ctx
      end
    in
    (mask_, unmask_)

  let random_level ctx =
    let rec go l =
      if l >= max_level - 1 then l
      else if Random.State.bool ctx.Runtime.Ctx.rng then go (l + 1)
      else l
    in
    go 0

  exception Restart

  let is_sentinel t p = p = t.head || p = t.tail

  (* Release [node]'s protection unless it is still referenced by the
     preds/succs arrays (whose protections must survive until the locking
     phase). *)
  let unprotect_unless_stored t ctx preds succs node =
    if not (is_sentinel t node) then begin
      let stored = ref false in
      for l = 0 to max_level - 1 do
        if preds.(l) = node || succs.(l) = node then stored := true
      done;
      if not !stored then RM.unprotect t.rm ctx node
    end

  (* The skip-list traversal.  Fills preds/succs; returns the highest level
     at which the key was found, or -1. *)
  let find t ctx s key preds succs =
    let protect_step pred curr l =
      is_sentinel t curr
      ||
      match
        T.acquire t.rm ctx s curr ~verify:(fun () ->
            next_of t ctx pred l = curr)
      with
      | Some _ -> true
      | None -> false
    in
    let rec attempt () =
      Array.fill preds 0 max_level Memory.Ptr.null;
      Array.fill succs 0 max_level Memory.Ptr.null;
      match walk (max_level - 1) t.head (-1) with
      | lfound -> lfound
      | exception Restart ->
          RM.unprotect_all t.rm ctx;
          attempt ()
      | exception Memory.Arena.Use_after_free _ when RM.sandboxed ->
          (* Under a sandboxing scheme (StackTrack), touching reclaimed
             memory is a transaction abort: retry the traversal. *)
          RM.unprotect_all t.rm ctx;
          attempt ()
    and walk level pred lfound =
      if level < 0 then lfound
      else begin
        let curr = ref (next_of t ctx pred level) in
        if not (protect_step pred !curr level) then raise Restart;
        let pred = ref pred in
        while key_of t ctx !curr < key do
          let old = !pred in
          pred := !curr;
          curr := next_of t ctx !pred level;
          if not (protect_step !pred !curr level) then raise Restart;
          unprotect_unless_stored t ctx preds succs old
        done;
        let lfound =
          if lfound < 0 && key_of t ctx !curr = key then level else lfound
        in
        preds.(level) <- !pred;
        succs.(level) <- !curr;
        walk (level - 1) !pred lfound
      end
    in
    attempt ()

  (* Body-end quiescence (inside run_op: skipped when a recovery completes
     the operation instead, as in the other structures). *)
  let quiesce t ctx s =
    T.enter t.rm ctx s;
    T.release_all t.rm ctx

  let bump_ops _t ctx =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1

  (* Retry loop for sandboxing schemes: a use-after-free is a transaction
     abort, not an error. *)
  let rec sandbox_retry t ctx f =
    match f () with
    | v -> v
    | exception Memory.Arena.Use_after_free _ when RM.sandboxed ->
        RM.unprotect_all t.rm ctx;
        sandbox_retry t ctx f

  (* Reads have no effect to protect: a neutralized search simply restarts
     from scratch. *)
  let contains t ctx key =
    let preds = Array.make max_level Memory.Ptr.null in
    let succs = Array.make max_level Memory.Ptr.null in
    let r =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.unprotect_all t.rm ctx;
          None)
        (fun s ->
          T.leave t.rm ctx s;
          let r =
            sandbox_retry t ctx (fun () ->
                let lfound = find t ctx s key preds succs in
                lfound >= 0
                && fully_linked t ctx succs.(lfound)
                && not (marked t ctx succs.(lfound)))
          in
          quiesce t ctx s;
          r)
    in
    bump_ops t ctx;
    r

  let get t ctx key =
    let preds = Array.make max_level Memory.Ptr.null in
    let succs = Array.make max_level Memory.Ptr.null in
    let r =
      T.run_op t.rm ctx
      ~recover:(fun () ->
        RM.unprotect_all t.rm ctx;
        None)
      (fun s ->
        T.leave t.rm ctx s;
        let r =
          sandbox_retry t ctx (fun () ->
              let lfound = find t ctx s key preds succs in
              if
                lfound >= 0
                && fully_linked t ctx succs.(lfound)
                && not (marked t ctx succs.(lfound))
              then
                Some (Memory.Arena.get_const ctx t.arena succs.(lfound) c_value)
              else None)
        in
        quiesce t ctx s;
        r)
    in
    bump_ops t ctx;
    r

  let unlock_preds t ctx preds highest =
    let prev = ref Memory.Ptr.null in
    for l = 0 to highest do
      if preds.(l) <> !prev then begin
        unlock t ctx preds.(l);
        prev := preds.(l)
      end
    done

  let insert t ctx ~key ~value =
    assert (key > min_int && key < max_int);
    let top = random_level ctx in
    (* Quiescent preamble: allocate the node; its fresh witness is spent by
       [publish_locked] inside the successful attempt's masked window. *)
    let node = T.alloc t.rm ctx t.arena in
    T.init_const t.rm ctx t.arena node c_key key;
    T.init_const t.rm ctx t.arena node c_value value;
    T.init_const t.rm ctx t.arena node c_top top;
    T.init t.rm ctx t.arena node f_marked 0;
    T.init t.rm ctx t.arena node f_fully_linked 0;
    T.init t.rm ctx t.arena node f_lock 0;
    let preds = Array.make max_level Memory.Ptr.null in
    let succs = Array.make max_level Memory.Ptr.null in
    let highest_locked = ref (-1) in
    let inserted = ref false in
    let mask_, unmask_ = masker ctx in
    let rec attempt s =
      highest_locked := -1;
      match
        let lfound = find t ctx s key preds succs in
        if lfound >= 0 then begin
          let found = succs.(lfound) in
          if not (marked t ctx found) then begin
            (* Wait for a concurrent insert of the same key to finish; the
               linking window is masked, so its owner cannot be neutralized
               before setting fully_linked.  (The waiter itself can be.) *)
            while not (fully_linked t ctx found) do
              Runtime.Ctx.work ctx 1
            done;
            `Done false
          end
          else (* Marked: its removal is in progress; retry. *) `Retry
        end
        else begin
          (* Lock distinct predecessors bottom-up and validate.  Masked from
             the first acquisition attempt: no neutralization while any lock
             might be held. *)
          let valid = ref true in
          let prev = ref Memory.Ptr.null in
          let l = ref 0 in
          mask_ ();
          while !valid && !l <= top do
            let pred = preds.(!l) and succ = succs.(!l) in
            if pred <> !prev then begin
              lock t ctx pred;
              highest_locked := !l;
              prev := pred
            end;
            valid :=
              (not (marked t ctx pred))
              && (not (marked t ctx succ))
              && next_of t ctx pred !l = succ;
            incr l
          done;
          if not !valid then begin
            unlock_preds t ctx preds !highest_locked;
            unmask_ ();
            `Retry
          end
          else begin
            for l = 0 to top do
              T.init t.rm ctx t.arena node (f_next l) succs.(l)
            done;
            (* The first predecessor link makes the node reachable: spend
               the fresh witness here, under the validated locks. *)
            let nodep = T.publish_locked t.rm ctx s node in
            for l = 0 to top do
              Memory.Arena.write ctx t.arena preds.(l) (f_next l) nodep
            done;
            Memory.Arena.write ctx t.arena nodep f_fully_linked 1;
            (* Linearized (still masked): recovery must answer true from
               here on, never re-link. *)
            inserted := true;
            unlock_preds t ctx preds !highest_locked;
            unmask_ ();
            `Done true
          end
        end
      with
      | `Done r -> r
      | `Retry ->
          RM.unprotect_all t.rm ctx;
          attempt s
      | exception Memory.Arena.Use_after_free _ when RM.sandboxed ->
          (* Transaction abort: release any locks taken (locked nodes cannot
             have been freed) and retry from a clean traversal. *)
          unlock_preds t ctx preds !highest_locked;
          unmask_ ();
          RM.unprotect_all t.rm ctx;
          attempt s
    in
    let r =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.unprotect_all t.rm ctx;
          if !inserted then Some true else None)
        (fun s ->
          T.leave t.rm ctx s;
          let r = attempt s in
          quiesce t ctx s;
          r)
    in
    bump_ops t ctx;
    if not r then T.abandon t.rm ctx node;
    r

  let ok_to_delete t ctx node lfound =
    fully_linked t ctx node
    && top_of t ctx node = lfound
    && not (marked t ctx node)

  let delete t ctx key =
    let preds = Array.make max_level Memory.Ptr.null in
    let succs = Array.make max_level Memory.Ptr.null in
    let victim = ref Memory.Ptr.null in
    let is_marked = ref false in
    let top = ref (-1) in
    let highest_locked = ref (-1) in
    let deleted = ref false in
    let mask_, unmask_ = masker ctx in
    let rec attempt s =
      highest_locked := -1;
      match
        let lfound = find t ctx s key preds succs in
        if
          !is_marked
          || (lfound >= 0 && ok_to_delete t ctx succs.(lfound) lfound)
        then begin
          if not !is_marked then begin
            victim := succs.(lfound);
            top := top_of t ctx !victim;
            (* Masked from the victim lock acquisition until every lock is
               released again (possibly across `Retry re-finds, which keep
               the marked victim locked). *)
            mask_ ();
            lock t ctx !victim;
            if marked t ctx !victim then begin
              unlock t ctx !victim;
              unmask_ ();
              `Done false
            end
            else begin
              Memory.Arena.write ctx t.arena !victim f_marked 1;
              is_marked := true;
              finish_unlink s
            end
          end
          else finish_unlink s
        end
        else `Done false
      with
      | `Done r -> r
      | `Retry ->
          RM.unprotect_all t.rm ctx;
          attempt s
      | exception Memory.Arena.Use_after_free _ when RM.sandboxed ->
          (* Transaction abort; the marked-and-locked victim, if any, stays
             ours (and masked), so the retry resumes the unlink. *)
          unlock_preds t ctx preds !highest_locked;
          if not !is_marked then unmask_ ();
          RM.unprotect_all t.rm ctx;
          attempt s
    and finish_unlink s =
      let valid = ref true in
      let prev = ref Memory.Ptr.null in
      let l = ref 0 in
      while !valid && !l <= !top do
        let pred = preds.(!l) in
        if pred <> !prev then begin
          lock t ctx pred;
          highest_locked := !l;
          prev := pred
        end;
        valid := (not (marked t ctx pred)) && next_of t ctx pred !l = !victim;
        incr l
      done;
      if not !valid then begin
        unlock_preds t ctx preds !highest_locked;
        `Retry
      end
      else begin
        for l = !top downto 0 do
          Memory.Arena.write ctx t.arena preds.(l) (f_next l)
            (next_of t ctx !victim l)
        done;
        unlock t ctx !victim;
        (* The lock-held unlink above removed every link to the victim:
           mint the witness the retire consumes. *)
        let w = T.unlink_locked t.rm ctx s !victim in
        T.retire t.rm ctx w;
        unlock_preds t ctx preds !highest_locked;
        (* Linearized and retired exactly once (still masked until here):
           recovery must answer true from now on. *)
        deleted := true;
        unmask_ ();
        `Done true
      end
    in
    let r =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.unprotect_all t.rm ctx;
          if !deleted then Some true else None)
        (fun s ->
          T.leave t.rm ctx s;
          let r = attempt s in
          quiesce t ctx s;
          r)
    in
    bump_ops t ctx;
    r

  (* [remove] is [delete] returning the victim's value, read (const field)
     in the masked window between locking the victim and marking it — the
     unique marker learns the value.  A separate spelling keeps [delete]'s
     instrumented access sequence, pinned by golden schedules, unchanged. *)
  let remove t ctx key =
    let preds = Array.make max_level Memory.Ptr.null in
    let succs = Array.make max_level Memory.Ptr.null in
    let victim = ref Memory.Ptr.null in
    let is_marked = ref false in
    let top = ref (-1) in
    let highest_locked = ref (-1) in
    let removed = ref None in
    let value = ref 0 in
    let mask_, unmask_ = masker ctx in
    let rec attempt s =
      highest_locked := -1;
      match
        let lfound = find t ctx s key preds succs in
        if
          !is_marked
          || (lfound >= 0 && ok_to_delete t ctx succs.(lfound) lfound)
        then begin
          if not !is_marked then begin
            victim := succs.(lfound);
            top := top_of t ctx !victim;
            mask_ ();
            lock t ctx !victim;
            if marked t ctx !victim then begin
              unlock t ctx !victim;
              unmask_ ();
              `Done None
            end
            else begin
              value := Memory.Arena.get_const ctx t.arena !victim c_value;
              Memory.Arena.write ctx t.arena !victim f_marked 1;
              is_marked := true;
              finish_unlink s
            end
          end
          else finish_unlink s
        end
        else `Done None
      with
      | `Done r -> r
      | `Retry ->
          RM.unprotect_all t.rm ctx;
          attempt s
      | exception Memory.Arena.Use_after_free _ when RM.sandboxed ->
          unlock_preds t ctx preds !highest_locked;
          if not !is_marked then unmask_ ();
          RM.unprotect_all t.rm ctx;
          attempt s
    and finish_unlink s =
      let valid = ref true in
      let prev = ref Memory.Ptr.null in
      let l = ref 0 in
      while !valid && !l <= !top do
        let pred = preds.(!l) in
        if pred <> !prev then begin
          lock t ctx pred;
          highest_locked := !l;
          prev := pred
        end;
        valid := (not (marked t ctx pred)) && next_of t ctx pred !l = !victim;
        incr l
      done;
      if not !valid then begin
        unlock_preds t ctx preds !highest_locked;
        `Retry
      end
      else begin
        for l = !top downto 0 do
          Memory.Arena.write ctx t.arena preds.(l) (f_next l)
            (next_of t ctx !victim l)
        done;
        unlock t ctx !victim;
        let w = T.unlink_locked t.rm ctx s !victim in
        T.retire t.rm ctx w;
        unlock_preds t ctx preds !highest_locked;
        removed := Some !value;
        unmask_ ();
        `Done !removed
      end
    in
    let r =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.unprotect_all t.rm ctx;
          match !removed with Some v -> Some (Some v) | None -> None)
        (fun s ->
          T.leave t.rm ctx s;
          let r = attempt s in
          quiesce t ctx s;
          r)
    in
    bump_ops t ctx;
    r

  (* [fold_entry t ctx key ~f] finds the key and runs [f] inside the open
     session while the node is protected (it sits in [succs], so the
     traversal's protection survives): [f s ~value ~live] may acquire
     further protections through [s], with [live] — true while the node is
     not yet marked — as the acquire-time verification.  Sound for a
     hazard-style chained acquire because anything reachable from [value]
     is retired only after the node is marked. *)
  let fold_entry t ctx key ~f =
    let preds = Array.make max_level Memory.Ptr.null in
    let succs = Array.make max_level Memory.Ptr.null in
    let r =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.unprotect_all t.rm ctx;
          None)
        (fun s ->
          T.leave t.rm ctx s;
          let r =
            sandbox_retry t ctx (fun () ->
                let lfound = find t ctx s key preds succs in
                if
                  lfound >= 0
                  && fully_linked t ctx succs.(lfound)
                  && not (marked t ctx succs.(lfound))
                then begin
                  let node = succs.(lfound) in
                  let value = Memory.Arena.get_const ctx t.arena node c_value in
                  let live () = not (marked t ctx node) in
                  Some (f s ~value ~live)
                end
                else None)
          in
          quiesce t ctx s;
          r)
    in
    bump_ops t ctx;
    r

  (* Uninstrumented helpers. *)

  let to_list t =
    let rec go acc p =
      if Memory.Ptr.is_null p || p = t.tail then List.rev acc
      else
        let k = Memory.Arena.peek_const t.arena p c_key in
        let acc =
          if Memory.Arena.peek t.arena p f_marked = 1 then acc else k :: acc
        in
        go acc (Memory.Arena.peek t.arena p (f_next 0))
    in
    go [] (Memory.Arena.peek t.arena t.head (f_next 0))

  let size t = List.length (to_list t)

  exception Broken of string

  let check_invariants t =
    (* Level-0 keys strictly increasing; every level's list is a
       subsequence ordered by key; reachable nodes valid. *)
    for l = 0 to max_level - 1 do
      let rec go p last n =
        if n > Memory.Arena.capacity t.arena then
          raise (Broken "cycle suspected");
        if not (Memory.Ptr.is_null p || p = t.tail) then begin
          if not (Memory.Arena.is_valid t.arena p) then
            raise (Broken "reachable freed node");
          let k = Memory.Arena.peek_const t.arena p c_key in
          if k <= last then raise (Broken "keys not increasing");
          if Memory.Arena.peek_const t.arena p c_top < l then
            raise (Broken "node linked above its top level");
          go (Memory.Arena.peek t.arena p (f_next l)) k (n + 1)
        end
      in
      go (Memory.Arena.peek t.arena t.head (f_next l)) min_int 0
    done
end
