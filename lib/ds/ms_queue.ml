(** Michael-Scott lock-free FIFO queue over the Record Manager abstraction.

    A dummy node anchors the queue; dequeue retires the old dummy.  HP
    discipline follows Michael's original treatment: protect the observed
    head (verify it is still the head — the dummy is retired only after the
    head moves), then its successor (verify via the protected head's next
    pointer). *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  let f_next = 0
  let c_value = 0

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    head : int Runtime.Svar.t;  (* dummy node *)
    tail : int Runtime.Svar.t;
  }

  let create rm ~capacity =
    let env = RM.env rm in
    let arena =
      Memory.Heap.new_arena env.Reclaim.Intf.Env.heap ~name:"queue.node"
        ~mut_fields:1 ~const_fields:1 ~capacity:(capacity + 1)
    in
    let ctx = Runtime.Group.ctx env.Reclaim.Intf.Env.group 0 in
    let dummy = RM.alloc rm ctx arena in
    Memory.Arena.write ctx arena dummy f_next Memory.Ptr.null;
    { rm; arena; head = Runtime.Svar.make dummy; tail = Runtime.Svar.make dummy }

  let finish_op _t ctx =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1

  (* Fig. 5 recovery: the linearizing CAS (on the old tail's next pointer)
     is followed by the tail swing, so a neutralized enqueue that already
     linearized must report success — a lagging tail is repaired by other
     operations' helping. *)
  let enqueue t ctx value =
    let node = RM.alloc t.rm ctx t.arena in
    Memory.Arena.set_const ctx t.arena node c_value value;
    Memory.Arena.write ctx t.arena node f_next Memory.Ptr.null;
    let linearized = ref false in
    RM.run_op t.rm ctx
      ~recover:(fun () ->
        RM.unprotect_all t.rm ctx;
        if !linearized then Some () else None)
      (fun () ->
        RM.leave_qstate t.rm ctx;
        let rec attempt () =
      let tail = Runtime.Svar.get ctx t.tail in
      if
        not
          (RM.protect t.rm ctx tail ~verify:(fun () ->
               Runtime.Svar.get ctx t.tail = tail))
      then attempt ()
      else begin
        let next = Memory.Arena.read ctx t.arena tail f_next in
        if not (Memory.Ptr.is_null next) then begin
          (* Help swing the lagging tail. *)
          ignore (Runtime.Svar.cas ctx t.tail ~expect:tail next);
          RM.unprotect t.rm ctx tail;
          attempt ()
        end
            else if
              Memory.Arena.cas ctx t.arena tail f_next ~expect:Memory.Ptr.null
                node
            then begin
              linearized := true;
              ignore (Runtime.Svar.cas ctx t.tail ~expect:tail node);
              RM.unprotect t.rm ctx tail
            end
            else begin
              RM.unprotect t.rm ctx tail;
              attempt ()
            end
          end
        in
        attempt ();
        RM.enter_qstate t.rm ctx);
    finish_op t ctx

  (* Dequeue retires the old dummy after its linearizing CAS; as in the
     stack, the only neutralization point after the CAS precedes the limbo
     insertion, so recovery retires exactly once. *)
  let dequeue t ctx =
    let taken = ref None in
    let r =
      RM.run_op t.rm ctx
        ~recover:(fun () ->
          RM.unprotect_all t.rm ctx;
          match !taken with
          | Some (node, v) ->
              RM.retire t.rm ctx node;
              Some (Some v)
          | None -> None)
        (fun () ->
          RM.leave_qstate t.rm ctx;
          let rec attempt () =
      let head = Runtime.Svar.get ctx t.head in
      if
        not
          (RM.protect t.rm ctx head ~verify:(fun () ->
               Runtime.Svar.get ctx t.head = head))
      then attempt ()
      else begin
        let tail = Runtime.Svar.get ctx t.tail in
        let next = Memory.Arena.read ctx t.arena head f_next in
        if Memory.Ptr.is_null next then begin
          RM.unprotect t.rm ctx head;
          None (* empty *)
        end
        else if
          not
            (RM.protect t.rm ctx next ~verify:(fun () ->
                 (* Re-verify the *head*, not [head.next]: next pointers are
                    immutable once set, so [head.next = next] would still
                    hold after [next] itself was dequeued and retired.  Head
                    still being [head] proves neither record has been
                    retired (Michael's original re-check). *)
                 Runtime.Svar.get ctx t.head = head))
        then begin
          RM.unprotect t.rm ctx head;
          attempt ()
        end
        else if head = tail then begin
          (* Tail is lagging: help it forward, then retry. *)
          ignore (Runtime.Svar.cas ctx t.tail ~expect:tail next);
          RM.unprotect_all t.rm ctx;
          attempt ()
        end
        else begin
          let v = Memory.Arena.get_const ctx t.arena next c_value in
          if Runtime.Svar.cas ctx t.head ~expect:head next then begin
            taken := Some (head, v);
            RM.retire t.rm ctx head;
            RM.unprotect_all t.rm ctx;
            Some v
          end
          else begin
            RM.unprotect_all t.rm ctx;
            attempt ()
          end
        end
      end
          in
          let r = attempt () in
          RM.enter_qstate t.rm ctx;
          r)
    in
    finish_op t ctx;
    r

  (* Uninstrumented helpers. *)
  let to_list t =
    let rec go acc p =
      if Memory.Ptr.is_null p then List.rev acc
      else
        go
          (Memory.Arena.peek_const t.arena p c_value :: acc)
          (Memory.Arena.peek t.arena p f_next)
    in
    (* Skip the dummy. *)
    go [] (Memory.Arena.peek t.arena (Runtime.Svar.peek t.head) f_next)

  let size t = List.length (to_list t)
end
