(** Michael-Scott lock-free FIFO queue over the Record Manager abstraction.

    A dummy node anchors the queue; dequeue retires the old dummy.  HP
    discipline follows Michael's original treatment: protect the observed
    head (verify it is still the head — the dummy is retired only after the
    head moves), then its successor (verify via the protected head's next
    pointer).

    Like {!Hm_list}, the queue is written against the typestate surface
    ({!Reclaim.Intf.RECORD_MANAGER.Typed}): dereferences go through
    guards, the enqueue candidate remains a [fresh] witness until the
    publishing CAS spends it, and the old dummy is retired only through
    the [unlinked] witness minted by the successful head-swing CAS. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module T = RM.Typed

  let f_next = 0
  let c_value = 0

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    head : int Runtime.Svar.t;  (* dummy node *)
    tail : int Runtime.Svar.t;
  }

  let create rm ~capacity =
    let env = RM.env rm in
    let arena =
      Memory.Heap.new_arena env.Reclaim.Intf.Env.heap ~name:"queue.node"
        ~mut_fields:1 ~const_fields:1 ~capacity:(capacity + 1)
    in
    let ctx = Runtime.Group.ctx env.Reclaim.Intf.Env.group 0 in
    let dummy = T.alloc rm ctx arena in
    T.init rm ctx arena dummy f_next Memory.Ptr.null;
    let dummy = T.expose rm ctx dummy in
    { rm; arena; head = Runtime.Svar.make dummy; tail = Runtime.Svar.make dummy }

  let finish_op _t ctx =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1

  (* Fig. 5 recovery: the linearizing CAS (on the old tail's next pointer)
     is followed by the tail swing, so a neutralized enqueue that already
     linearized must report success — a lagging tail is repaired by other
     operations' helping. *)
  let enqueue t ctx value =
    let node = T.alloc t.rm ctx t.arena in
    let nodep = T.fresh_ptr node in
    T.init_const t.rm ctx t.arena node c_value value;
    T.init t.rm ctx t.arena node f_next Memory.Ptr.null;
    let linearized = ref false in
    T.run_op t.rm ctx
      ~recover:(fun () ->
        T.release_all t.rm ctx;
        if !linearized then Some () else None)
      (fun s ->
        T.leave t.rm ctx s;
        let rec attempt () =
          let tail = Runtime.Svar.get ctx t.tail in
          match
            T.acquire t.rm ctx s tail ~verify:(fun () ->
                Runtime.Svar.get ctx t.tail = tail)
          with
          | None -> attempt ()
          | Some tailg ->
              let next = T.read t.rm ctx t.arena tailg f_next in
              if not (Memory.Ptr.is_null next) then begin
                (* Help swing the lagging tail. *)
                ignore (Runtime.Svar.cas ctx t.tail ~expect:tail next);
                T.release t.rm ctx tailg;
                attempt ()
              end
              else if
                T.publish_cas t.rm ctx t.arena tailg f_next
                  ~expect:Memory.Ptr.null node
              then begin
                linearized := true;
                ignore (Runtime.Svar.cas ctx t.tail ~expect:tail nodep);
                T.release t.rm ctx tailg
              end
              else begin
                T.release t.rm ctx tailg;
                attempt ()
              end
        in
        attempt ();
        T.enter t.rm ctx s);
    finish_op t ctx

  (* Dequeue retires the old dummy after its linearizing CAS; as in the
     stack, the only neutralization point after the CAS precedes the limbo
     insertion, so recovery retires exactly once — the unlinked witness is
     consumed only when the limbo insertion completes. *)
  let dequeue t ctx =
    let taken = ref None in
    let r =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          T.release_all t.rm ctx;
          match !taken with
          | Some (w, v) ->
              T.retire t.rm ctx w;
              Some (Some v)
          | None -> None)
        (fun s ->
          T.leave t.rm ctx s;
          let rec attempt () =
            let head = Runtime.Svar.get ctx t.head in
            match
              T.acquire t.rm ctx s head ~verify:(fun () ->
                  Runtime.Svar.get ctx t.head = head)
            with
            | None -> attempt ()
            | Some headg -> (
                let tail = Runtime.Svar.get ctx t.tail in
                let next = T.read t.rm ctx t.arena headg f_next in
                if Memory.Ptr.is_null next then begin
                  T.release t.rm ctx headg;
                  None (* empty *)
                end
                else
                  match
                    T.acquire t.rm ctx s next ~verify:(fun () ->
                        (* Re-verify the *head*, not [head.next]: next
                           pointers are immutable once set, so
                           [head.next = next] would still hold after [next]
                           itself was dequeued and retired.  Head still
                           being [head] proves neither record has been
                           retired (Michael's original re-check). *)
                        Runtime.Svar.get ctx t.head = head)
                  with
                  | None ->
                      T.release t.rm ctx headg;
                      attempt ()
                  | Some nextg ->
                      if head = tail then begin
                        (* Tail is lagging: help it forward, then retry. *)
                        ignore (Runtime.Svar.cas ctx t.tail ~expect:tail next);
                        T.release_all t.rm ctx;
                        attempt ()
                      end
                      else begin
                        let v = T.get_const t.rm ctx t.arena nextg c_value in
                        match
                          T.svar_cas_unlink t.rm ctx t.head ~expect:head next
                            ~unlinks:[ head ]
                        with
                        | Some [ w ] ->
                            taken := Some (w, v);
                            T.retire t.rm ctx w;
                            T.release_all t.rm ctx;
                            Some v
                        | Some _ -> assert false
                        | None ->
                            T.release_all t.rm ctx;
                            attempt ()
                      end)
          in
          let r = attempt () in
          T.enter t.rm ctx s;
          r)
    in
    finish_op t ctx;
    r

  (* Uninstrumented helpers. *)
  let to_list t =
    let rec go acc p =
      if Memory.Ptr.is_null p then List.rev acc
      else
        go
          (Memory.Arena.peek_const t.arena p c_value :: acc)
          (Memory.Arena.peek t.arena p f_next)
    in
    (* Skip the dummy. *)
    go [] (Memory.Arena.peek t.arena (Runtime.Svar.peek t.head) f_next)

  let size t = List.length (to_list t)
end
