(** Non-blocking external binary search tree in the style of Ellen,
    Fatourou, Ruppert and van Breugel (PODC 2010) — the descriptor/flag/
    mark/help machinery used by the paper's balanced BST, without the
    rebalancing (uniform keys keep expected depth logarithmic; see
    DESIGN.md).

    Why this tree matters for the paper: searches can traverse pointers from
    retired nodes to other retired nodes, which is exactly the pattern that
    defeats plain hazard pointers (§3).  Under an HP-style reclaimer this
    implementation uses the evaluation's workaround — validate that the
    parent is unflagged and restart the whole operation on any suspicion —
    which costs HP its lock-free progress, as the paper discusses.

    Memory layout: three arenas (internal nodes, leaves, descriptors).  An
    internal node's [update] word packs (state, descriptor slot+generation)
    into one CASable integer; descriptors themselves are immutable once
    published.  Descriptors are reclaimed by retire-on-overwrite: the
    process whose CAS replaces the descriptor in an update word retires the
    old one (each word value is CASed out at most once, so each descriptor
    is retired exactly once, when the flag CAS or mark CAS that overwrites
    it succeeds).

    Each modify operation follows Fig. 5 of the paper: descriptors are
    allocated in a quiescent preamble, the body RProtects every record its
    help routine touches (then the descriptor last), and a [published] flag
    — set atomically-with-the-CAS from the signal handler's perspective —
    lets recovery decide between re-helping the published descriptor and
    restarting.

    Typestate tier: the tree uses the lifecycle half of
    {!Reclaim.Intf.RECORD_MANAGER.Typed} — typed allocation, sentinels,
    publication/unlink CASes and witness-consuming retire, plus [acquire]
    at the HP validation sites — but keeps raw dereferences: helping walks
    descriptors and possibly-retired records that no guard can witness
    (paper §3), which is precisely why this tree needs epoch-style schemes.
    The [enter_qstate] in [finish_op] likewise stays untyped: it runs after
    [run_op] returns, where no session witness is in scope. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module T = RM.Typed

  (* Internal node fields *)
  let f_left = 0
  let f_right = 1
  let f_update = 2
  let c_ikey = 0

  (* Leaf fields *)
  let c_key = 0
  let c_value = 1

  (* Descriptor (Info) fields *)
  let c_tag = 0
  let c_gp = 1
  let c_p = 2
  let c_l = 3
  let c_new = 4
  let c_pupdate = 5

  let tag_iinfo = 1
  let tag_dinfo = 2

  (* Update-word states *)
  let clean = 0
  let iflag = 1
  let dflag = 2
  let mark = 3

  let inf1 = max_int - 1
  let inf2 = max_int

  type t = {
    rm : RM.t;
    internal : Memory.Arena.t;
    leaf : Memory.Arena.t;
    info : Memory.Arena.t;
    root : Memory.Ptr.t;
  }

  (* Update words pack (state, info slot+1, info generation).  Generation
     bits make stale descriptors compare unequal, mirroring the tagged
     pointers used everywhere else. *)

  let pack_info t p =
    if Memory.Ptr.is_null p then 0
    else begin
      assert (Memory.Ptr.arena_id p = Memory.Arena.heap_id t.info);
      ((Memory.Ptr.slot p + 1) lsl Memory.Ptr.gen_bits) lor Memory.Ptr.gen p
    end

  let pack t ~state ~info = (pack_info t info lsl 2) lor state
  let state_of w = w land 3

  let info_of t w =
    let body = w lsr 2 in
    let slot1 = body lsr Memory.Ptr.gen_bits in
    if slot1 = 0 then Memory.Ptr.null
    else
      Memory.Ptr.make
        ~arena:(Memory.Arena.heap_id t.info)
        ~slot:(slot1 - 1)
        ~gen:(body land Memory.Ptr.gen_mask)

  let create rm ~capacity =
    let env = RM.env rm in
    let heap = env.Reclaim.Intf.Env.heap in
    let internal =
      Memory.Heap.new_arena heap ~name:"bst.internal" ~mut_fields:3
        ~const_fields:1 ~capacity:(capacity + 2)
    in
    let leaf =
      Memory.Heap.new_arena heap ~name:"bst.leaf" ~mut_fields:0 ~const_fields:2
        ~capacity:(capacity + 3)
    in
    let info =
      Memory.Heap.new_arena heap ~name:"bst.info" ~mut_fields:0 ~const_fields:6
        ~capacity:(capacity + 2)
    in
    let ctx = Runtime.Group.ctx env.Reclaim.Intf.Env.group 0 in
    let t = { rm; internal; leaf; info; root = Memory.Ptr.null } in
    let l1 = T.alloc rm ctx leaf in
    T.init_const rm ctx leaf l1 c_key inf1;
    T.init_const rm ctx leaf l1 c_value 0;
    let l1 = T.sentinel rm ctx l1 in
    let l2 = T.alloc rm ctx leaf in
    T.init_const rm ctx leaf l2 c_key inf2;
    T.init_const rm ctx leaf l2 c_value 0;
    let l2 = T.sentinel rm ctx l2 in
    let root = T.alloc rm ctx internal in
    T.init_const rm ctx internal root c_ikey inf2;
    T.init rm ctx internal root f_left l1;
    T.init rm ctx internal root f_right l2;
    T.init rm ctx internal root f_update 0;
    { t with root = T.sentinel rm ctx root }

  let is_leaf t p = Memory.Ptr.arena_id p = Memory.Arena.heap_id t.leaf

  let key_of t ctx p =
    if is_leaf t p then Memory.Arena.get_const ctx t.leaf p c_key
    else Memory.Arena.get_const ctx t.internal p c_ikey

  let update_of t ctx p = Memory.Arena.read ctx t.internal p f_update
  let left_of t ctx p = Memory.Arena.read ctx t.internal p f_left
  let right_of t ctx p = Memory.Arena.read ctx t.internal p f_right

  exception Restart

  (* HP-style validation for a traversal step: the child was re-read from an
     unflagged parent.  Once a node is marked its update word never changes,
     and nodes are marked before they are retired, so [Clean] at validation
     time proves the child had not been retired when our announcement became
     visible.  Anything other than Clean is "suspicious" and restarts the
     operation — the paper's workaround, which forfeits lock-freedom. *)
  let protect_child t ctx s ~parent ~child =
    match
      T.acquire t.rm ctx s child ~verify:(fun () ->
          state_of (update_of t ctx parent) = clean
          && (left_of t ctx parent = child || right_of t ctx parent = child))
    with
    | Some _ -> true
    | None -> false

  type found = {
    gp : Memory.Ptr.t;  (* null iff p is the root *)
    p : Memory.Ptr.t;
    l : Memory.Ptr.t;
    pupdate : int;
    gpupdate : int;
  }

  (* Search from the root.  Under HP, [gp], [p] and [l] are protected on
     return; epoch schemes traverse (possibly retired) nodes freely. *)
  let search t ctx s key =
    let unprotect_maybe p =
      if (not (Memory.Ptr.is_null p)) && p <> t.root then
        RM.unprotect t.rm ctx p
    in
    let rec step gp gpupdate p pupdate l =
      if is_leaf t l then { gp; p; l; pupdate; gpupdate }
      else begin
        let gp' = p and gpupdate' = pupdate in
        let p' = l in
        let pupdate' = update_of t ctx p' in
        let l' =
          if key < key_of t ctx p' then left_of t ctx p'
          else right_of t ctx p'
        in
        if not (protect_child t ctx s ~parent:p' ~child:l') then raise Restart;
        unprotect_maybe gp;
        step gp' gpupdate' p' pupdate' l'
      end
    in
    let rec from_root () =
      let pupdate = update_of t ctx t.root in
      let l =
        if key < inf2 then left_of t ctx t.root else right_of t ctx t.root
      in
      if not (protect_child t ctx s ~parent:t.root ~child:l) then begin
        RM.unprotect_all t.rm ctx;
        from_root ()
      end
      else
        match step Memory.Ptr.null 0 t.root pupdate l with
        | found -> found
        | exception Restart ->
            RM.unprotect_all t.rm ctx;
            from_root ()
    in
    from_root ()

  (* [cas_child parent old new_] replaces child [old] of [parent]; helpers
     race benignly because each transition happens at most once. *)
  let cas_child t ctx parent old new_ =
    if left_of t ctx parent = old then
      Memory.Arena.cas ctx t.internal parent f_left ~expect:old new_
    else if right_of t ctx parent = old then
      Memory.Arena.cas ctx t.internal parent f_right ~expect:old new_
    else false

  (* The descriptor displaced by a successful update-word CAS is what that
     CAS unlinks: passing it to [cas_at ~unlinks] mints the witness the
     winner's retire consumes. *)
  let displaced t ~old_word ~new_word =
    let old_info = info_of t old_word and new_info = info_of t new_word in
    if (not (Memory.Ptr.is_null old_info)) && old_info <> new_info then
      [ old_info ]
    else []

  let retire_all t ctx ws = List.iter (fun w -> T.retire t.rm ctx w) ws

  (* Help routines.  [deep] tells whether we may recursively help unrelated
     operations: true in operation bodies, false in neutralization recovery,
     where only RProtected records may be touched. *)

  let help_insert t ctx op =
    let p = Memory.Arena.get_const ctx t.info op c_p in
    let l = Memory.Arena.get_const ctx t.info op c_l in
    let new_internal = Memory.Arena.get_const ctx t.info op c_new in
    ignore (cas_child t ctx p l new_internal);
    ignore
      (Memory.Arena.cas ctx t.internal p f_update
         ~expect:(pack t ~state:iflag ~info:op)
         (pack t ~state:clean ~info:op))

  let help_marked t ctx op =
    let gp = Memory.Arena.get_const ctx t.info op c_gp in
    let p = Memory.Arena.get_const ctx t.info op c_p in
    let l = Memory.Arena.get_const ctx t.info op c_l in
    let other =
      if right_of t ctx p = l then left_of t ctx p else right_of t ctx p
    in
    let unlink_child field =
      T.cas_at t.rm ctx t.internal gp field ~expect:p other ~publishes:[]
        ~unlinks:[ p; l ]
    in
    (match
       if left_of t ctx gp = p then unlink_child f_left
       else if right_of t ctx gp = p then unlink_child f_right
       else None
     with
    | Some ws ->
        (* This process performed the removal: it retires both nodes. *)
        retire_all t ctx ws
    | None -> ());
    ignore
      (Memory.Arena.cas ctx t.internal gp f_update
         ~expect:(pack t ~state:dflag ~info:op)
         (pack t ~state:clean ~info:op))

  let rec help_delete t ctx ~deep op =
    let gp = Memory.Arena.get_const ctx t.info op c_gp in
    let p = Memory.Arena.get_const ctx t.info op c_p in
    let pupdate = Memory.Arena.get_const ctx t.info op c_pupdate in
    let markw = pack t ~state:mark ~info:op in
    let marked =
      match
        T.cas_at t.rm ctx t.internal p f_update ~expect:pupdate markw
          ~publishes:[] ~unlinks:(displaced t ~old_word:pupdate ~new_word:markw)
      with
      | Some ws ->
          retire_all t ctx ws;
          true
      | None -> false
    in
    let current = update_of t ctx p in
    if marked || current = markw then begin
      help_marked t ctx op;
      true
    end
    else begin
      if deep then help t ctx current;
      ignore
        (Memory.Arena.cas ctx t.internal gp f_update
           ~expect:(pack t ~state:dflag ~info:op)
           (pack t ~state:clean ~info:op));
      false
    end

  (* Dispatch on a flagged update word to help an unrelated operation.

     Helping dereferences the other operation's descriptor and the records
     it names — records that may already be retired.  Epoch-style schemes
     make this safe (nothing a running operation can reach is freed), which
     is why they suit this tree.  Under an HP-style scheme there is no
     sound way to protect that chain (paper §3), so [help] does nothing and
     the caller's retry loop spins until the operation's owner completes it
     — the loss of lock-freedom the paper describes for HP. *)
  and help t ctx w =
    if RM.allows_retired_traversal then begin
      let st = state_of w in
      if st <> clean then begin
        let op = info_of t w in
        if st = iflag then help_insert t ctx op
        else if st = mark then help_marked t ctx op
        else ignore (help_delete t ctx ~deep:true op)
      end
    end

  (* Operation shells (paper Fig. 5). *)

  let finish_op t ctx =
    RM.enter_qstate t.rm ctx;
    if RM.supports_crash_recovery then RM.runprotect_all t.rm ctx;
    RM.unprotect_all t.rm ctx;
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1

  let contains t ctx key =
    let r =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.runprotect_all t.rm ctx;
          RM.unprotect_all t.rm ctx;
          None)
        (fun s ->
          T.leave t.rm ctx s;
          let { l; _ } = search t ctx s key in
          key_of t ctx l = key)
    in
    finish_op t ctx;
    r

  let get t ctx key =
    let r =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.runprotect_all t.rm ctx;
          RM.unprotect_all t.rm ctx;
          None)
        (fun s ->
          T.leave t.rm ctx s;
          let { l; _ } = search t ctx s key in
          if key_of t ctx l = key then
            Some (Memory.Arena.get_const ctx t.leaf l c_value)
          else None)
    in
    finish_op t ctx;
    r

  let rprotect_for_recovery t ctx ~records ~desc =
    if RM.supports_crash_recovery then begin
      List.iter
        (fun r -> if not (Memory.Ptr.is_null r) then RM.rprotect t.rm ctx r)
        records;
      RM.rprotect t.rm ctx desc (* the descriptor last: it implies the rest *)
    end

  let insert t ctx ~key ~value =
    assert (key < inf1);
    (* Quiescent preamble: allocate the three records of an insertion.  The
       fresh witnesses stay live across retries — only the successful flag
       CAS publishes (and spends) all three at once. *)
    let new_leaf = T.alloc t.rm ctx t.leaf in
    let new_leafp = T.fresh_ptr new_leaf in
    T.init_const t.rm ctx t.leaf new_leaf c_key key;
    T.init_const t.rm ctx t.leaf new_leaf c_value value;
    let new_internal = T.alloc t.rm ctx t.internal in
    let new_internalp = T.fresh_ptr new_internal in
    let op = T.alloc t.rm ctx t.info in
    let opp = T.fresh_ptr op in
    let published = ref false in
    let result =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          if !published then begin
            (* The descriptor is in the tree: finish our own operation using
               only RProtected records, then report success. *)
            help_insert t ctx opp;
            RM.runprotect_all t.rm ctx;
            RM.unprotect_all t.rm ctx;
            Some true
          end
          else begin
            RM.runprotect_all t.rm ctx;
            RM.unprotect_all t.rm ctx;
            None
          end)
        (fun s ->
          T.leave t.rm ctx s;
          let rec attempt () =
            let { p; l; pupdate; _ } = search t ctx s key in
            if key_of t ctx l = key then false
            else if state_of pupdate <> clean then begin
              help t ctx pupdate;
              RM.unprotect_all t.rm ctx;
              attempt ()
            end
            else begin
              let lkey = key_of t ctx l in
              T.init_const t.rm ctx t.internal new_internal c_ikey
                (max key lkey);
              if key < lkey then begin
                T.init t.rm ctx t.internal new_internal f_left new_leafp;
                T.init t.rm ctx t.internal new_internal f_right l
              end
              else begin
                T.init t.rm ctx t.internal new_internal f_left l;
                T.init t.rm ctx t.internal new_internal f_right new_leafp
              end;
              T.init t.rm ctx t.internal new_internal f_update 0;
              T.init_const t.rm ctx t.info op c_tag tag_iinfo;
              T.init_const t.rm ctx t.info op c_gp Memory.Ptr.null;
              T.init_const t.rm ctx t.info op c_p p;
              T.init_const t.rm ctx t.info op c_l l;
              T.init_const t.rm ctx t.info op c_new new_internalp;
              T.init_const t.rm ctx t.info op c_pupdate pupdate;
              rprotect_for_recovery t ctx ~records:[ p; l ] ~desc:opp;
              let flagged = pack t ~state:iflag ~info:opp in
              match
                T.cas_at t.rm ctx t.internal p f_update ~expect:pupdate flagged
                  ~publishes:[ op; new_internal; new_leaf ]
                  ~unlinks:(displaced t ~old_word:pupdate ~new_word:flagged)
              with
              | Some ws ->
                  published := true;
                  retire_all t ctx ws;
                  help_insert t ctx opp;
                  true
              | None ->
                  help t ctx (update_of t ctx p);
                  if RM.supports_crash_recovery then RM.runprotect_all t.rm ctx;
                  RM.unprotect_all t.rm ctx;
                  attempt ()
            end
          in
          attempt ())
    in
    finish_op t ctx;
    (* Quiescent postamble: an unsuccessful insert never published its
       records — return them to the pool. *)
    if not result then begin
      T.abandon t.rm ctx new_leaf;
      T.abandon t.rm ctx new_internal;
      T.abandon t.rm ctx op
    end;
    result

  type delete_outcome = Deleted | NotPresent | RetryOp

  let delete t ctx key =
    let rec op_loop () =
      (* Quiescent preamble: a fresh descriptor per published attempt. *)
      let op = T.alloc t.rm ctx t.info in
      let opp = T.fresh_ptr op in
      let published = ref false in
      let outcome =
        T.run_op t.rm ctx
          ~recover:(fun () ->
            if !published then begin
              let finished = help_delete t ctx ~deep:false opp in
              RM.runprotect_all t.rm ctx;
              RM.unprotect_all t.rm ctx;
              Some (if finished then Deleted else RetryOp)
            end
            else begin
              RM.runprotect_all t.rm ctx;
              RM.unprotect_all t.rm ctx;
              None
            end)
          (fun s ->
            T.leave t.rm ctx s;
            let rec attempt () =
              let { gp; p; l; pupdate; gpupdate } = search t ctx s key in
              if key_of t ctx l <> key then NotPresent
              else if state_of gpupdate <> clean then begin
                help t ctx gpupdate;
                RM.unprotect_all t.rm ctx;
                attempt ()
              end
              else if state_of pupdate <> clean then begin
                help t ctx pupdate;
                RM.unprotect_all t.rm ctx;
                attempt ()
              end
              else begin
                T.init_const t.rm ctx t.info op c_tag tag_dinfo;
                T.init_const t.rm ctx t.info op c_gp gp;
                T.init_const t.rm ctx t.info op c_p p;
                T.init_const t.rm ctx t.info op c_l l;
                T.init_const t.rm ctx t.info op c_new Memory.Ptr.null;
                T.init_const t.rm ctx t.info op c_pupdate pupdate;
                rprotect_for_recovery t ctx ~records:[ gp; p; l ] ~desc:opp;
                let flagged = pack t ~state:dflag ~info:opp in
                match
                  T.cas_at t.rm ctx t.internal gp f_update ~expect:gpupdate
                    flagged ~publishes:[ op ]
                    ~unlinks:(displaced t ~old_word:gpupdate ~new_word:flagged)
                with
                | Some ws ->
                    published := true;
                    retire_all t ctx ws;
                    if help_delete t ctx ~deep:true opp then Deleted
                    else RetryOp
                | None ->
                    help t ctx (update_of t ctx gp);
                    if RM.supports_crash_recovery then
                      RM.runprotect_all t.rm ctx;
                    RM.unprotect_all t.rm ctx;
                    attempt ()
              end
            in
            attempt ())
      in
      finish_op t ctx;
      match outcome with
      | Deleted -> true
      | NotPresent ->
          T.abandon t.rm ctx op;
          false
      | RetryOp -> op_loop ()
    in
    op_loop ()

  (* [remove] is [delete] returning the deleted leaf's value: the process
     whose dflag CAS wins read the (const) value just before flagging, so
     the unique winner learns it.  A separate spelling keeps [delete]'s
     instrumented access sequence — pinned by golden schedules —
     unchanged. *)
  let remove t ctx key =
    let rec op_loop () =
      let op = T.alloc t.rm ctx t.info in
      let opp = T.fresh_ptr op in
      let published = ref false in
      let captured = ref 0 in
      let outcome =
        T.run_op t.rm ctx
          ~recover:(fun () ->
            if !published then begin
              let finished = help_delete t ctx ~deep:false opp in
              RM.runprotect_all t.rm ctx;
              RM.unprotect_all t.rm ctx;
              Some (if finished then Deleted else RetryOp)
            end
            else begin
              RM.runprotect_all t.rm ctx;
              RM.unprotect_all t.rm ctx;
              None
            end)
          (fun s ->
            T.leave t.rm ctx s;
            let rec attempt () =
              let { gp; p; l; pupdate; gpupdate } = search t ctx s key in
              if key_of t ctx l <> key then NotPresent
              else if state_of gpupdate <> clean then begin
                help t ctx gpupdate;
                RM.unprotect_all t.rm ctx;
                attempt ()
              end
              else if state_of pupdate <> clean then begin
                help t ctx pupdate;
                RM.unprotect_all t.rm ctx;
                attempt ()
              end
              else begin
                captured := Memory.Arena.get_const ctx t.leaf l c_value;
                T.init_const t.rm ctx t.info op c_tag tag_dinfo;
                T.init_const t.rm ctx t.info op c_gp gp;
                T.init_const t.rm ctx t.info op c_p p;
                T.init_const t.rm ctx t.info op c_l l;
                T.init_const t.rm ctx t.info op c_new Memory.Ptr.null;
                T.init_const t.rm ctx t.info op c_pupdate pupdate;
                rprotect_for_recovery t ctx ~records:[ gp; p; l ] ~desc:opp;
                let flagged = pack t ~state:dflag ~info:opp in
                match
                  T.cas_at t.rm ctx t.internal gp f_update ~expect:gpupdate
                    flagged ~publishes:[ op ]
                    ~unlinks:(displaced t ~old_word:gpupdate ~new_word:flagged)
                with
                | Some ws ->
                    published := true;
                    retire_all t ctx ws;
                    if help_delete t ctx ~deep:true opp then Deleted
                    else RetryOp
                | None ->
                    help t ctx (update_of t ctx gp);
                    if RM.supports_crash_recovery then
                      RM.runprotect_all t.rm ctx;
                    RM.unprotect_all t.rm ctx;
                    attempt ()
              end
            in
            attempt ())
      in
      finish_op t ctx;
      match outcome with
      | Deleted -> Some !captured
      | NotPresent ->
          T.abandon t.rm ctx op;
          None
      | RetryOp -> op_loop ()
    in
    op_loop ()

  (* [fold_entry t ctx key ~f] finds the leaf and runs [f] inside the open
     session while (under HP) the leaf and its parent are still protected
     by the search.  [live ()] is true while the parent's update word is
     clean and still points at the leaf: the mark CAS on the parent is the
     delete's linearization point, and anything reachable from [value] is
     retired strictly after it — "parent still points at leaf" alone would
     NOT suffice, because an external-tree unlink removes the parent from
     the grandparent while the parent keeps pointing at the leaf. *)
  let fold_entry t ctx key ~f =
    let r =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.runprotect_all t.rm ctx;
          RM.unprotect_all t.rm ctx;
          None)
        (fun s ->
          T.leave t.rm ctx s;
          let { p; l; _ } = search t ctx s key in
          if key_of t ctx l = key then begin
            let value = Memory.Arena.get_const ctx t.leaf l c_value in
            let live () =
              state_of (update_of t ctx p) = clean
              && (left_of t ctx p = l || right_of t ctx p = l)
            in
            Some (f s ~value ~live)
          end
          else None)
    in
    finish_op t ctx;
    r

  (* Uninstrumented helpers for tests. *)

  let to_list t =
    let rec go acc p =
      if is_leaf t p then
        let k = Memory.Arena.peek_const t.leaf p c_key in
        if k >= inf1 then acc else k :: acc
      else
        let acc = go acc (Memory.Arena.peek t.internal p f_left) in
        go acc (Memory.Arena.peek t.internal p f_right)
    in
    List.rev (go [] t.root)

  let size t = List.length (to_list t)

  exception Broken of string

  let check_invariants t =
    (* BST order: every leaf key within (lo, hi]; reachable nodes valid.
       The tree is unbalanced, so a path can legally be as long as the
       number of internal nodes ever allocated; anything beyond that is a
       cycle. *)
    let max_depth = Memory.Arena.capacity t.internal + 2 in
    let rec go p lo hi depth =
      if depth > max_depth then raise (Broken "path longer than the arena: cycle");
      if is_leaf t p then begin
        if not (Memory.Arena.is_valid t.leaf p) then
          raise (Broken "reachable freed leaf");
        let k = Memory.Arena.peek_const t.leaf p c_key in
        if not (k > lo && k <= hi) then raise (Broken "leaf out of range")
      end
      else begin
        if not (Memory.Arena.is_valid t.internal p) then
          raise (Broken "reachable freed internal node");
        let k = Memory.Arena.peek_const t.internal p c_ikey in
        if not (k > lo && k <= hi) then raise (Broken "internal out of range");
        go (Memory.Arena.peek t.internal p f_left) lo (k - 1) (depth + 1);
        go (Memory.Arena.peek t.internal p f_right) (k - 1) hi (depth + 1)
      end
    in
    go t.root min_int max_int 0
end
