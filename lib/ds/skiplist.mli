(** Lazy skip list: lock-based updates, lock-free wait-free searches — the
    paper's second evaluation workload (see the implementation header).

    Safe under DEBRA+: lock-held windows are bracketed with
    {!Runtime.Ctx.mask}/[unmask], so a neutralization signal is deferred
    until every lock is released (the paper instead forbids the pairing;
    see the implementation header for the masking protocol).  [create]
    switches the group to unreliable ack-based signal delivery when the
    scheme can neutralize, which that deferral requires for soundness.
    HP-style schemes need roughly [2 * max_level + 8] protection slots per
    process ([Params.hp_slots]).  Keys must lie strictly between [min_int]
    and [max_int] (the sentinel keys). *)

val max_level : int

module Make (RM : Reclaim.Intf.RECORD_MANAGER) : sig
  (** Field indices (exposed for tests and fault injection). *)

  val c_key : int
  val c_value : int
  val c_top : int
  val f_marked : int
  val f_fully_linked : int
  val f_lock : int
  val f_next : int -> int

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    head : Memory.Ptr.t;
    tail : Memory.Ptr.t;
  }

  val create : RM.t -> capacity:int -> t
  val arena : t -> Memory.Arena.t

  (** Set operations (linearizable). *)

  val contains : t -> Runtime.Ctx.t -> int -> bool
  val get : t -> Runtime.Ctx.t -> int -> int option
  val insert : t -> Runtime.Ctx.t -> key:int -> value:int -> bool
  val delete : t -> Runtime.Ctx.t -> int -> bool

  (** [remove t ctx key] is [delete] returning the victim's value — the
      unique marking process learns it; [None] if absent. *)
  val remove : t -> Runtime.Ctx.t -> int -> int option

  (** [fold_entry t ctx key ~f] runs [f session ~value ~live] while the
      found node is protected inside the operation's session; [live ()] is
      true while the node is unmarked, suitable as acquire-time
      verification for a pointer stored in [value]. *)
  val fold_entry :
    t ->
    Runtime.Ctx.t ->
    int ->
    f:(RM.Typed.session -> value:int -> live:(unit -> bool) -> 'a) ->
    'a option

  (** Uninstrumented inspection (quiescent callers only). *)

  val to_list : t -> int list
  val size : t -> int

  exception Broken of string

  (** [check_invariants t] checks every level's list is sorted, towers
      respect their heights, and no reachable node is freed. *)
  val check_invariants : t -> unit
end
