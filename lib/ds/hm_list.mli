(** Harris-Michael lock-free linked-list set over the Record Manager
    abstraction (see the implementation header for the algorithm notes).

    All operations are linearizable.  Under schemes that support
    neutralization (DEBRA+) every operation recovers per the paper's Fig. 5;
    under HP-style schemes traversals validate each protection and restart
    from the head on suspicion. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) : sig
  (** Field indices of a node record (exposed for tests and fault
      injection). *)

  val f_next : int
  val c_key : int
  val c_value : int

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    head : Memory.Ptr.t;  (** sentinel node, never retired *)
  }

  (** [create rm ~capacity] allocates the node arena (capacity + sentinel)
      in [rm]'s heap and returns an empty set. *)
  val create : RM.t -> capacity:int -> t

  (** [node_arena rm ~capacity] allocates an arena with this module's node
      layout; [create_in arena rm] builds a list inside it.  Together they
      let many lists (e.g. hash-set buckets) share one arena and one Record
      Manager. *)

  val node_arena : RM.t -> capacity:int -> Memory.Arena.t
  val create_in : Memory.Arena.t -> RM.t -> t

  val arena : t -> Memory.Arena.t

  (** Set operations.  Keys are arbitrary ints above [min_int]. *)

  val contains : t -> Runtime.Ctx.t -> int -> bool
  val get : t -> Runtime.Ctx.t -> int -> int option
  val insert : t -> Runtime.Ctx.t -> key:int -> value:int -> bool
  val delete : t -> Runtime.Ctx.t -> int -> bool

  (** [remove t ctx key] is [delete] returning the deleted node's value:
      the unique linearizing deleter learns the value, [None] if absent. *)
  val remove : t -> Runtime.Ctx.t -> int -> int option

  (** [fold_entry t ctx key ~f] runs [f session ~value ~live] while the
      found node is guarded inside the operation's session; [live ()] is
      true while the node is not yet logically deleted, suitable as an
      acquire-time verification for protecting a pointer stored in
      [value].  [None] if the key is absent. *)
  val fold_entry :
    t ->
    Runtime.Ctx.t ->
    int ->
    f:(RM.Typed.session -> value:int -> live:(unit -> bool) -> 'a) ->
    'a option

  (** Uninstrumented inspection (quiescent callers only). *)

  val to_list : t -> int list
  val size : t -> int

  exception Broken of string

  (** [check_invariants t] walks the list unsynchronized and raises
      {!Broken} on unsorted keys, cycles, or reachable freed nodes. *)
  val check_invariants : t -> unit
end
