(** Lock-free closed-addressing hash set: a fixed array of Harris-Michael
    bucket lists sharing one node arena and one Record Manager (the paper's
    §1 many-small-instances scenario). *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) : sig
  module Bucket : module type of Hm_list.Make (RM)

  type t = { buckets : Bucket.t array; mask : int }

  (** [create rm ~buckets ~capacity] makes a set with [buckets] (rounded up
      to a power of two) bucket lists over a shared arena of [capacity]
      records plus sentinels. *)
  val create : RM.t -> buckets:int -> capacity:int -> t

  val contains : t -> Runtime.Ctx.t -> int -> bool
  val get : t -> Runtime.Ctx.t -> int -> int option
  val insert : t -> Runtime.Ctx.t -> key:int -> value:int -> bool
  val delete : t -> Runtime.Ctx.t -> int -> bool

  (** Value-returning delete and guarded entry visit, delegated to the
      bucket list (see {!Hm_list.Make}). *)

  val remove : t -> Runtime.Ctx.t -> int -> int option

  val fold_entry :
    t ->
    Runtime.Ctx.t ->
    int ->
    f:(RM.Typed.session -> value:int -> live:(unit -> bool) -> 'a) ->
    'a option

  (** Uninstrumented inspection (quiescent callers only). *)

  val size : t -> int
  val to_list : t -> int list
  val check_invariants : t -> unit
end
