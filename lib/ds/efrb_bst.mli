(** Non-blocking external binary search tree (Ellen-Fatourou-Ruppert-van
    Breugel style) over the Record Manager abstraction — the reproduction's
    stand-in for the paper's balanced BST (see DESIGN.md and the
    implementation header).

    Keys must be below {!Make.inf1}; the two largest ints are sentinel
    keys.  The tree is unbalanced: uniformly random keys give expected
    logarithmic depth, sorted insertion degenerates to a list. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) : sig
  (** Field indices and update-word states (exposed for tests). *)

  val f_left : int
  val f_right : int
  val f_update : int
  val c_ikey : int
  val c_key : int
  val c_value : int

  val clean : int
  val iflag : int
  val dflag : int
  val mark : int

  val inf1 : int
  val inf2 : int

  type t = {
    rm : RM.t;
    internal : Memory.Arena.t;
    leaf : Memory.Arena.t;
    info : Memory.Arena.t;  (** operation descriptors *)
    root : Memory.Ptr.t;
  }

  (** Update-word packing: (state, descriptor slot, descriptor generation)
      in one CASable integer. *)

  val pack : t -> state:int -> info:Memory.Ptr.t -> int
  val state_of : int -> int
  val info_of : t -> int -> Memory.Ptr.t

  (** [create rm ~capacity] allocates the three arenas in [rm]'s heap and
      builds the two-sentinel initial tree. *)
  val create : RM.t -> capacity:int -> t

  val is_leaf : t -> Memory.Ptr.t -> bool

  (** Set operations (linearizable). *)

  val contains : t -> Runtime.Ctx.t -> int -> bool
  val get : t -> Runtime.Ctx.t -> int -> int option
  val insert : t -> Runtime.Ctx.t -> key:int -> value:int -> bool
  val delete : t -> Runtime.Ctx.t -> int -> bool

  (** [remove t ctx key] is [delete] returning the deleted leaf's value —
      the unique dflag winner learns it; [None] if absent. *)
  val remove : t -> Runtime.Ctx.t -> int -> int option

  (** [fold_entry t ctx key ~f] runs [f session ~value ~live] while the
      found leaf (and its parent) are protected inside the operation's
      session; [live ()] is true while the parent's update word is clean
      and still points at the leaf — suitable as acquire-time verification
      for a pointer stored in [value]. *)
  val fold_entry :
    t ->
    Runtime.Ctx.t ->
    int ->
    f:(RM.Typed.session -> value:int -> live:(unit -> bool) -> 'a) ->
    'a option

  (** Uninstrumented inspection (quiescent callers only). *)

  val to_list : t -> int list
  val size : t -> int

  exception Broken of string

  (** [check_invariants t] walks the tree unsynchronized and raises
      {!Broken} on BST-order violations, cycles, or reachable freed
      records. *)
  val check_invariants : t -> unit
end
