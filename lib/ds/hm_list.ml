(** Harris-Michael lock-free linked-list set, written once against the
    Record Manager abstraction.

    A node's [next] field carries the mark bit: a marked next pointer means
    the node is logically deleted.  The process whose CAS physically unlinks
    a node retires it with the Record Manager, which decides when it can be
    reused.

    Hazard-pointer discipline follows Michael's original algorithm: a newly
    reached node is [protect]ed and then verified by re-reading the
    predecessor's next pointer — sound here because nodes are retired only
    after being unlinked, and the traversal restarts from the head on any
    inconsistency.  Epoch-style reclaimers make [protect] free and let
    traversals walk retired nodes.

    Operations follow the paper's Fig. 5 shape: allocation in a quiescent
    preamble, the body between [leave_qstate]/[enter_qstate].  Under DEBRA+
    a neutralized operation simply restarts: every update is a single
    published CAS, so there is no partial state to repair and no descriptor
    to help.

    This structure is written entirely against the typestate surface
    ({!Reclaim.Intf.RECORD_MANAGER.Typed}): every dereference goes through
    a guard witness, the candidate node of an insert stays a [fresh]
    witness until its publishing CAS spends it, and retire only accepts
    the [unlinked] witness minted by the successful unlink CAS.  The
    wrappers delegate 1:1 to the untyped calls, so the instrumented access
    sequence — and therefore every pinned golden schedule — is unchanged. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module T = RM.Typed

  let f_next = 0 (* mutable: successor pointer; mark bit = logically deleted *)
  let c_key = 0
  let c_value = 1

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    head : Memory.Ptr.t;  (* sentinel, never retired *)
  }

  (* [create_in] builds a list whose nodes live in an existing arena, so
     many lists (e.g. the buckets of a hash set) can share one arena and
     one Record Manager. *)
  let create_in arena rm =
    let env = RM.env rm in
    let ctx = Runtime.Group.ctx env.Reclaim.Intf.Env.group 0 in
    let head = T.alloc rm ctx arena in
    T.init_const rm ctx arena head c_key min_int;
    T.init rm ctx arena head f_next Memory.Ptr.null;
    { rm; arena; head = T.sentinel rm ctx head }

  let node_arena rm ~capacity =
    let env = RM.env rm in
    Memory.Heap.new_arena env.Reclaim.Intf.Env.heap ~name:"hm_list.node"
      ~mut_fields:1 ~const_fields:2 ~capacity:(capacity + 1)

  let create rm ~capacity = create_in (node_arena rm ~capacity) rm

  let arena t = t.arena
  let key_of t ctx g = T.get_const t.rm ctx t.arena g c_key
  let next_of t ctx g = T.read t.rm ctx t.arena g f_next

  exception Restart

  (* [find t ctx s key] returns (prev, cur) with prev.next = cur, cur a
     guard on the first node of key >= [key] (or [None] at the end of the
     list), prev guarded (the permanent head needs no announcement).
     Marked nodes met along the way are unlinked and retired — the unlink
     CAS mints the witness its retire spends. *)
  let find t ctx s key =
    let rec from_head () =
      let head = T.root_guard t.rm s t.head in
      match scan head (next_of t ctx head) with
      | position -> position
      | exception Restart ->
          T.release_all t.rm ctx;
          from_head ()
    and scan prev cur =
      if Memory.Ptr.is_null cur then (prev, None)
      else begin
        let cur = Memory.Ptr.unmark cur in
        match
          T.acquire t.rm ctx s cur ~verify:(fun () -> next_of t ctx prev = cur)
        with
        | None -> raise Restart
        | Some curg -> (
            let next = next_of t ctx curg in
            if Memory.Ptr.is_marked next then begin
              (* cur is logically deleted: unlink it. *)
              let next = Memory.Ptr.unmark next in
              match
                T.cas_unlink t.rm ctx t.arena prev f_next ~expect:cur next
                  ~unlinks:[ cur ]
              with
              | Some [ w ] ->
                  T.retire t.rm ctx w;
                  T.release t.rm ctx curg;
                  scan prev next
              | Some _ -> assert false
              | None -> raise Restart
            end
            else if key_of t ctx curg >= key then (prev, Some curg)
            else begin
              if T.ptr prev <> t.head then T.release t.rm ctx prev;
              scan curg next
            end)
      end
    in
    from_head ()

  (* Preamble/body/postamble shell shared by all operations. *)
  let with_op t ctx body =
    let result =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          (* Single-CAS updates leave nothing to help: clean up and restart. *)
          RM.runprotect_all t.rm ctx;
          T.release_all t.rm ctx;
          None)
        (fun s ->
          T.leave t.rm ctx s;
          let r = body s in
          T.enter t.rm ctx s;
          r)
    in
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1;
    result

  let contains t ctx key =
    with_op t ctx (fun s ->
        match find t ctx s key with
        | _, Some cur -> key_of t ctx cur = key
        | _, None -> false)

  let get t ctx key =
    with_op t ctx (fun s ->
        match find t ctx s key with
        | _, Some cur when key_of t ctx cur = key ->
            Some (T.get_const t.rm ctx t.arena cur c_value)
        | _ -> None)

  let insert t ctx ~key ~value =
    (* Quiescent preamble: allocate and initialize the candidate node; its
       fresh witness survives restarts (only a successful publishing CAS
       spends it) and is abandoned if the key turns out present. *)
    let node = T.alloc t.rm ctx t.arena in
    T.init_const t.rm ctx t.arena node c_key key;
    T.init_const t.rm ctx t.arena node c_value value;
    let inserted =
      with_op t ctx (fun s ->
          let rec attempt () =
            let prev, cur = find t ctx s key in
            match cur with
            | Some curg when key_of t ctx curg = key -> false
            | _ ->
                let curp =
                  match cur with
                  | Some curg -> T.ptr curg
                  | None -> Memory.Ptr.null
                in
                T.init t.rm ctx t.arena node f_next curp;
                if
                  T.publish_cas t.rm ctx t.arena prev f_next ~expect:curp node
                then true
                else begin
                  T.release_all t.rm ctx;
                  attempt ()
                end
          in
          attempt ())
    in
    if not inserted then T.abandon t.rm ctx node;
    inserted

  let delete t ctx key =
    (* The mark CAS is the linearization point, but the operation keeps
       accessing shared memory afterwards (the unlink attempt), so a
       neutralization there must not restart the operation: [linearized]
       plays the role of Fig. 5's descriptor check in recovery.  It is set
       with no instrumented access (hence no neutralization point) between
       the successful CAS and the assignment. *)
    let linearized = ref false in
    let result =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.runprotect_all t.rm ctx;
          T.release_all t.rm ctx;
          if !linearized then Some true else None)
        (fun s ->
          T.leave t.rm ctx s;
          let rec attempt () =
            match find t ctx s key with
            | _, None -> false
            | prev, Some curg ->
                if key_of t ctx curg <> key then false
                else begin
                  let next = next_of t ctx curg in
                  if Memory.Ptr.is_marked next then begin
                    T.release_all t.rm ctx;
                    attempt ()
                  end
                  else if
                    T.cas t.rm ctx t.arena curg f_next ~expect:next
                      (Memory.Ptr.mark next)
                  then begin
                    linearized := true;
                    (* Logically deleted; unlink now or let a later find
                       clean up. *)
                    (match
                       T.cas_unlink t.rm ctx t.arena prev f_next
                         ~expect:(T.ptr curg) next ~unlinks:[ T.ptr curg ]
                     with
                    | Some [ w ] -> T.retire t.rm ctx w
                    | Some _ -> assert false
                    | None ->
                        T.release_all t.rm ctx;
                        ignore (find t ctx s key));
                    true
                  end
                  else begin
                    T.release_all t.rm ctx;
                    attempt ()
                  end
                end
          in
          let r = attempt () in
          T.enter t.rm ctx s;
          r)
    in
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1;
    result

  (* [remove] is [delete] returning the deleted node's value: the unique
     process whose mark CAS linearizes the delete reads [c_value] (const,
     so the read commutes with the CAS) and hands it back.  Kept as a
     separate spelling so [delete]'s instrumented access sequence — pinned
     by golden schedules — is untouched. *)
  let remove t ctx key =
    let linearized = ref None in
    let result =
      T.run_op t.rm ctx
        ~recover:(fun () ->
          RM.runprotect_all t.rm ctx;
          T.release_all t.rm ctx;
          match !linearized with Some v -> Some (Some v) | None -> None)
        (fun s ->
          T.leave t.rm ctx s;
          let rec attempt () =
            match find t ctx s key with
            | _, None -> None
            | prev, Some curg ->
                if key_of t ctx curg <> key then None
                else begin
                  let next = next_of t ctx curg in
                  if Memory.Ptr.is_marked next then begin
                    T.release_all t.rm ctx;
                    attempt ()
                  end
                  else begin
                    let value = T.get_const t.rm ctx t.arena curg c_value in
                    if
                      T.cas t.rm ctx t.arena curg f_next ~expect:next
                        (Memory.Ptr.mark next)
                    then begin
                      linearized := Some value;
                      (match
                         T.cas_unlink t.rm ctx t.arena prev f_next
                           ~expect:(T.ptr curg) next ~unlinks:[ T.ptr curg ]
                       with
                      | Some [ w ] -> T.retire t.rm ctx w
                      | Some _ -> assert false
                      | None ->
                          T.release_all t.rm ctx;
                          ignore (find t ctx s key));
                      Some value
                    end
                    else begin
                      T.release_all t.rm ctx;
                      attempt ()
                    end
                  end
                end
          in
          let r = attempt () in
          T.enter t.rm ctx s;
          r)
    in
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1;
    result

  (* [fold_entry t ctx key ~f] looks the key up and, if present, runs [f]
     inside the operation's still-open session while the node is guarded:
     [f s ~value ~live] may acquire further protections through [s] (e.g.
     on a pointer stored in [value]) using [live] — true while the node is
     not yet logically deleted — as the acquire-time verification.  A
     hazard-style scheme is sound here because the value's referent (if it
     is a record) is retired only {e after} this node's delete linearizes:
     an announcement validated by [live] therefore happens-before that
     retire's scan.  Epoch schemes need no validation — the open session
     alone keeps any record seen unmarked in-window unreclaimed. *)
  let fold_entry t ctx key ~f =
    with_op t ctx (fun s ->
        match find t ctx s key with
        | _, Some curg when key_of t ctx curg = key ->
            let value = T.get_const t.rm ctx t.arena curg c_value in
            let live () =
              not (Memory.Ptr.is_marked (next_of t ctx curg))
            in
            Some (f s ~value ~live)
        | _ -> None)

  (* Uninstrumented helpers for tests and invariant checks. *)

  let to_list t =
    let rec go acc p =
      if Memory.Ptr.is_null p then List.rev acc
      else
        let p = Memory.Ptr.unmark p in
        let key = Memory.Arena.peek_const t.arena p c_key in
        let next = Memory.Arena.peek t.arena p f_next in
        let acc = if Memory.Ptr.is_marked next then acc else key :: acc in
        go acc next
    in
    go [] (Memory.Arena.peek t.arena t.head f_next)

  let size t = List.length (to_list t)

  exception Broken of string

  let check_invariants t =
    let rec go prev_key p n =
      if n > Memory.Arena.capacity t.arena then
        raise (Broken "cycle or overlong chain");
      if not (Memory.Ptr.is_null p) then begin
        let p = Memory.Ptr.unmark p in
        if not (Memory.Arena.is_valid t.arena p) then
          raise (Broken "reachable node is freed");
        let key = Memory.Arena.peek_const t.arena p c_key in
        let next = Memory.Arena.peek t.arena p f_next in
        if not (Memory.Ptr.is_marked next) && key <= prev_key then
          raise (Broken "keys not strictly increasing");
        go (max key prev_key) next (n + 1)
      end
    in
    go min_int (Memory.Arena.peek t.arena t.head f_next) 0
end
