(** Lock-free closed-addressing hash set: a fixed array of Harris-Michael
    bucket lists sharing one node arena and one Record Manager.

    This is the paper's §1 motivating scenario made concrete — "several
    instances of a data structure used for very different purposes" — here
    taken further: hundreds of bucket lists share a single reclamation
    scheme chosen by one functor application, and the shared arena keeps
    their memory in one pool.

    Keys are hashed onto buckets (Fibonacci hashing); each bucket inherits
    all the concurrency and reclamation properties of {!Hm_list}. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module Bucket = Hm_list.Make (RM)

  type t = { buckets : Bucket.t array; mask : int }

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let create rm ~buckets ~capacity =
    let nbuckets = pow2 (max 2 buckets) 2 in
    let arena = Bucket.node_arena rm ~capacity:(capacity + nbuckets) in
    {
      buckets = Array.init nbuckets (fun _ -> Bucket.create_in arena rm);
      mask = nbuckets - 1;
    }

  let bucket t key =
    t.buckets.((key * 0x2545F4914F6CDD1D) land max_int land t.mask)

  let contains t ctx key = Bucket.contains (bucket t key) ctx key
  let get t ctx key = Bucket.get (bucket t key) ctx key
  let insert t ctx ~key ~value = Bucket.insert (bucket t key) ctx ~key ~value
  let delete t ctx key = Bucket.delete (bucket t key) ctx key
  let remove t ctx key = Bucket.remove (bucket t key) ctx key
  let fold_entry t ctx key ~f = Bucket.fold_entry (bucket t key) ctx key ~f

  (* Uninstrumented helpers. *)
  let size t = Array.fold_left (fun acc b -> acc + Bucket.size b) 0 t.buckets

  let to_list t =
    List.sort compare
      (Array.fold_left (fun acc b -> Bucket.to_list b @ acc) [] t.buckets)

  let check_invariants t = Array.iter Bucket.check_invariants t.buckets
end
