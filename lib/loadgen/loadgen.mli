(** Open-loop load generation (see the implementation header for the
    plan/dispatch design and the latency-from-scheduled-arrival rule). *)

module Dist = Dist
module Arrivals = Arrivals

type op =
  | Get of int  (** key rank *)
  | Put of int
  | Delete of int
  | Scan of int * int  (** start rank, length *)

type mix = { get : int; put : int; delete : int; scan : int }
(** Operation percentages; must sum to 100. *)

val mix_of_string : string -> mix option
(** Preset mixes: [read_heavy], [session], [write_heavy], [scan_heavy]. *)

val mix_to_string : mix -> string
val mix_names : string list

val op_kind : op -> string
(** ["get"], ["put"], ["delete"] or ["scan"] — telemetry kind names. *)

(** Server-side fate of one request.  The open-loop client claims and
    accounts every request; the server decides whether it was served,
    shed in brownout, rejected by a breaker, cancelled/late past its
    deadline, or failed outright.  Only [Served] latencies belong in the
    SLO histograms; the rest are counted against demand. *)
type outcome = Served | Shed | Rejected | Timed_out | Failed

val outcome_name : outcome -> string
(** ["served"], ["shed"], ["rejected"], ["timed_out"], ["failed"]. *)

val outcomes : outcome list
(** All outcomes, in report order. *)

val scan_length : int

type plan = {
  arrivals : int array;  (** absolute due times, backend cycles *)
  ops : op array;
  nkeys : int;
}

val generate :
  n:int ->
  nkeys:int ->
  dist:Dist.t ->
  mix:mix ->
  arrivals:Arrivals.t ->
  clock:Exec.Clock.t ->
  seed:int ->
  plan
(** A complete deterministic request plan: same arguments, same plan. *)

val length : plan -> int

val bodies :
  plan ->
  group:Runtime.Group.t ->
  record:
    (pid:int ->
    op:op ->
    shard:int ->
    outcome:outcome ->
    start:int ->
    finish:int ->
    unit) ->
  exec_op:(Runtime.Ctx.t -> due:int -> op -> int * outcome) ->
  (unit -> unit) array
(** One worker body per process: workers claim requests with a shared
    fetch-and-add, stall until each request is due, serve it via
    [exec_op] (which receives the scheduled arrival as [due] — the
    deadline anchor — and returns the shard hit plus the request's
    {!outcome}) and [record] it with the scheduled arrival as [start]. *)
