(** Open-loop load generation (see the implementation header for the
    plan/dispatch design and the latency-from-scheduled-arrival rule). *)

module Dist = Dist
module Arrivals = Arrivals

type op =
  | Get of int  (** key rank *)
  | Put of int
  | Delete of int
  | Scan of int * int  (** start rank, length *)

type mix = { get : int; put : int; delete : int; scan : int }
(** Operation percentages; must sum to 100. *)

val mix_of_string : string -> mix option
(** Preset mixes: [read_heavy], [session], [write_heavy], [scan_heavy]. *)

val mix_to_string : mix -> string
val mix_names : string list

val op_kind : op -> string
(** ["get"], ["put"], ["delete"] or ["scan"] — telemetry kind names. *)

val scan_length : int

type plan = {
  arrivals : int array;  (** absolute due times, backend cycles *)
  ops : op array;
  nkeys : int;
}

val generate :
  n:int ->
  nkeys:int ->
  dist:Dist.t ->
  mix:mix ->
  arrivals:Arrivals.t ->
  clock:Exec.Clock.t ->
  seed:int ->
  plan
(** A complete deterministic request plan: same arguments, same plan. *)

val length : plan -> int

val bodies :
  plan ->
  group:Runtime.Group.t ->
  record:
    (pid:int -> op:op -> shard:int -> start:int -> finish:int -> unit) ->
  exec_op:(Runtime.Ctx.t -> op -> int) ->
  (unit -> unit) array
(** One worker body per process: workers claim requests with a shared
    fetch-and-add, stall until each request is due, serve it via
    [exec_op] (which returns the shard hit) and [record] it with the
    scheduled arrival as [start]. *)
