(** Open-loop arrival processes (see the implementation header for why
    arrivals are scheduled in absolute time, independent of service). *)

type t =
  | Poisson of float  (** requests per second of the backend clock *)
  | Burst of { base : float; peak : float; period_s : float; duty : float }
  | Spike of { base : float; peak : float; start_s : float; len_s : float }
      (** quiet at [base], one overload window at [peak] of [len_s]
          seconds starting at [start_s], quiet again — the E-overload
          shape, with well-defined pre/burst/post phases *)

val of_spec : rate:float -> string -> t option
(** ["poisson"], ["burst"] (8x peaks), ["burst:<peak-multiplier>"],
    ["spike"] (one 8x window) or ["spike:<peak-multiplier>"], anchored at
    [rate] requests/second. *)

val to_string : t -> string
val names : string list

val spike_window : t -> clock:Exec.Clock.t -> (int * int) option
(** A [Spike]'s overload window as absolute cycles [(start, end_)];
    [None] for the periodic/homogeneous shapes. *)

val schedule : t -> clock:Exec.Clock.t -> n:int -> seed:int -> int array
(** [n] absolute arrival times in backend cycles, strictly from the seed
    (deterministic), monotone non-decreasing. *)
