(** Open-loop arrival processes (see the implementation header for why
    arrivals are scheduled in absolute time, independent of service). *)

type t =
  | Poisson of float  (** requests per second of the backend clock *)
  | Burst of { base : float; peak : float; period_s : float; duty : float }

val of_spec : rate:float -> string -> t option
(** ["poisson"], ["burst"] (8x peaks) or ["burst:<peak-multiplier>"],
    anchored at [rate] requests/second. *)

val to_string : t -> string
val names : string list

val schedule : t -> clock:Exec.Clock.t -> n:int -> seed:int -> int array
(** [n] absolute arrival times in backend cycles, strictly from the seed
    (deterministic), monotone non-decreasing. *)
