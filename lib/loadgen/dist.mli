(** Key-popularity distributions (see the implementation header). *)

type t = Uniform | Zipfian of float  (** theta, YCSB-style *)

val of_string : string -> t option
(** ["uniform"], ["zipfian"] (theta 0.99) or ["zipfian:<theta>"]. *)

val to_string : t -> string
val names : string list

val sampler : t -> nkeys:int -> Random.State.t -> int
(** Draw a key rank in [\[0, nkeys)]; rank 0 is the hottest key. *)
