(** Open-loop load generation: a deterministic request plan plus the
    worker bodies that serve it.

    {b Plan.}  [generate] materializes the whole run up front — one
    arrival time ({!Arrivals.schedule}) and one operation per request,
    both pure functions of the seed.  Operations name keys by {e rank}
    (an index in [0, nkeys), rank 0 hottest under Zipfian); the driver
    maps ranks to real keys in its [exec_op] closure, so the generator
    stays ignorant of the store's key syntax.

    {b Dispatch.}  Workers share one {!Runtime.Svar} request counter and
    claim requests with fetch-and-add: the next free worker serves the
    next request, a MPMC work queue with the queue itself implicit in the
    (precomputed) plan.  A worker that claims a request before its
    arrival time stalls until it is due; one that claims it late serves
    it immediately — and the recorded latency runs from the {e scheduled}
    arrival to completion, so queueing delay accumulated while all
    workers were busy is charged to the request.  This is the open-loop
    discipline: the {e client} never sheds — every request is claimed and
    accounted — but the {e server} may: [exec_op] returns an {!outcome},
    so a request the service sheds, rejects at a tripped breaker, or
    cancels past its deadline is recorded as that outcome rather than
    silently vanishing from the histograms, and SLO/goodput accounting
    can charge it against demand ({!Telemetry.Slo.judge_demand}). *)

module Dist = Dist
module Arrivals = Arrivals

type op =
  | Get of int
  | Put of int
  | Delete of int
  | Scan of int * int  (** start rank, length *)

type mix = { get : int; put : int; delete : int; scan : int }

let check_mix m =
  if m.get < 0 || m.put < 0 || m.delete < 0 || m.scan < 0
     || m.get + m.put + m.delete + m.scan <> 100
  then invalid_arg "Loadgen: mix percentages must be >= 0 and sum to 100"

let mix_of_string = function
  | "read_heavy" -> Some { get = 90; put = 8; delete = 2; scan = 0 }
  | "session" -> Some { get = 70; put = 20; delete = 10; scan = 0 }
  | "write_heavy" -> Some { get = 40; put = 45; delete = 15; scan = 0 }
  | "scan_heavy" -> Some { get = 40; put = 20; delete = 5; scan = 35 }
  | _ -> None

let mix_to_string m =
  Printf.sprintf "get=%d,put=%d,delete=%d,scan=%d" m.get m.put m.delete m.scan

let mix_names = [ "read_heavy"; "session"; "write_heavy"; "scan_heavy" ]

let op_kind = function
  | Get _ -> "get"
  | Put _ -> "put"
  | Delete _ -> "delete"
  | Scan _ -> "scan"

(* Server-side fate of one request.  [Served] is the only outcome whose
   latency belongs in the SLO histograms; everything else is a distinct
   form of non-service that goodput accounting must count against demand. *)
type outcome =
  | Served  (** completed within its deadline (or no deadline was set) *)
  | Shed  (** dropped by brownout admission control before service *)
  | Rejected  (** refused by an open circuit breaker *)
  | Timed_out
      (** deadline exceeded: cancelled unserved at claim time, or served
          but completed past the deadline (the response is waste either
          way) *)
  | Failed  (** service raised (allocation failure after retries, ...) *)

let outcome_name = function
  | Served -> "served"
  | Shed -> "shed"
  | Rejected -> "rejected"
  | Timed_out -> "timed_out"
  | Failed -> "failed"

let outcomes = [ Served; Shed; Rejected; Timed_out; Failed ]

let scan_length = 16

type plan = {
  arrivals : int array;  (** absolute due times, backend cycles *)
  ops : op array;
  nkeys : int;
}

let generate ~n ~nkeys ~dist ~mix ~arrivals ~clock ~seed =
  check_mix mix;
  if n < 1 then invalid_arg "Loadgen.generate: n must be >= 1";
  let sample = Dist.sampler dist ~nkeys in
  let rng = Random.State.make [| seed; 0x10ad |] in
  (* Scans walk the rank space sequentially so each one touches a fresh
     window instead of rescanning the hot head. *)
  let cursor = ref 0 in
  let ops =
    Array.init n (fun _ ->
        let r = Random.State.int rng 100 in
        if r < mix.get then Get (sample rng)
        else if r < mix.get + mix.put then Put (sample rng)
        else if r < mix.get + mix.put + mix.delete then Delete (sample rng)
        else begin
          let start = !cursor in
          cursor := (!cursor + scan_length) mod nkeys;
          Scan (start, scan_length)
        end)
  in
  { arrivals = Arrivals.schedule arrivals ~clock ~n ~seed; ops; nkeys }

let length plan = Array.length plan.arrivals

(* [bodies plan ~group ~record ~exec_op] builds one worker body per
   process in [group].  [exec_op ctx ~due op] serves a request (or sheds,
   rejects or cancels it — its business) and returns the shard it was
   routed to plus its outcome; [record] is called once per request with
   the scheduled arrival as [start]. *)
let bodies plan ~group ~record ~exec_op =
  let n = length plan in
  let next = Runtime.Svar.make 0 in
  Array.map
    (fun ctx ->
      fun () ->
        let continue_ = ref true in
        while !continue_ do
          let i = Runtime.Svar.faa ctx next 1 in
          if i >= n then continue_ := false
          else begin
            let due = plan.arrivals.(i) in
            let now = Runtime.Ctx.now ctx in
            if now < due then Runtime.Ctx.stall ctx (due - now);
            let op = plan.ops.(i) in
            let shard, outcome = exec_op ctx ~due op in
            record ~pid:ctx.Runtime.Ctx.pid ~op ~shard ~outcome ~start:due
              ~finish:(Runtime.Ctx.now ctx)
          end
        done)
    group.Runtime.Group.ctxs
