(** Key-popularity distributions for the load generator.

    [Zipfian theta] is the YCSB-style skew: key rank [r] (0-based) is
    drawn with probability proportional to [1 / (r+1)^theta].  The
    sampler precomputes the cumulative mass once and binary-searches it
    per draw, so sampling is O(log n) and allocation-free. *)

type t = Uniform | Zipfian of float

let of_string = function
  | "uniform" -> Some Uniform
  | "zipfian" | "zipf" -> Some (Zipfian 0.99)
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "zipfian" -> (
          match float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some theta when theta > 0.0 -> Some (Zipfian theta)
          | _ -> None)
      | _ -> None)

let to_string = function
  | Uniform -> "uniform"
  | Zipfian theta -> Printf.sprintf "zipfian:%.2f" theta

let names = [ "uniform"; "zipfian"; "zipfian:<theta>" ]

(* [sampler t ~nkeys] returns a rank sampler in [0, nkeys). *)
let sampler t ~nkeys =
  if nkeys < 1 then invalid_arg "Dist.sampler: nkeys must be >= 1";
  match t with
  | Uniform -> fun rng -> Random.State.int rng nkeys
  | Zipfian theta ->
      let cdf = Array.make nkeys 0.0 in
      let acc = ref 0.0 in
      for r = 0 to nkeys - 1 do
        acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) theta);
        cdf.(r) <- !acc
      done;
      let total = !acc in
      fun rng ->
        let u = Random.State.float rng total in
        (* First rank whose cumulative mass exceeds [u]. *)
        let lo = ref 0 and hi = ref (nkeys - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cdf.(mid) < u then lo := mid + 1 else hi := mid
        done;
        !lo
