(** Open-loop arrival processes.

    The schedule is materialized up front as an array of absolute arrival
    times in backend cycles: request [i] is {e due} at [schedule.(i)]
    whether or not any worker is free then.  Workers that fall behind
    serve requests late and the latency accounting (measured from the
    scheduled arrival, not the dequeue) makes the queueing delay visible —
    the whole point of open-loop generation, and the difference from the
    closed-loop trial harness where a slow scheme simply issues fewer
    requests (coordinated omission).

    Inter-arrival gaps are exponential draws at the instantaneous rate, so
    [Poisson] is a homogeneous Poisson process and [Burst] a piecewise one
    (a square wave between [base] and [peak] with the given [period_s] and
    [duty] fraction at the peak).  Everything is derived from the seed
    alone — on the deterministic simulator the schedule, and hence the
    whole run, replays exactly. *)

type t =
  | Poisson of float  (** requests per second of the backend clock *)
  | Burst of { base : float; peak : float; period_s : float; duty : float }
  | Spike of { base : float; peak : float; start_s : float; len_s : float }

let of_spec ~rate = function
  | "poisson" -> Some (Poisson rate)
  | "burst" ->
      (* Default burst shape: quiet floor at the named rate, 10 ms peaks
         at 8x, one period per 50 ms. *)
      Some (Burst { base = rate; peak = 8.0 *. rate; period_s = 0.05; duty = 0.2 })
  | "spike" ->
      (* Default spike shape: one 8x overload window, 10 ms long, after
         10 ms of quiet — the degradation-report phases (pre / burst /
         post) fall straight out of the window bounds. *)
      Some (Spike { base = rate; peak = 8.0 *. rate; start_s = 0.01; len_s = 0.01 })
  | s -> (
      match String.split_on_char ':' s with
      | [ "burst"; mult ] -> (
          match float_of_string_opt mult with
          | Some m when m >= 1.0 ->
              Some (Burst { base = rate; peak = m *. rate; period_s = 0.05; duty = 0.2 })
          | _ -> None)
      | [ "spike"; mult ] -> (
          match float_of_string_opt mult with
          | Some m when m >= 1.0 ->
              Some (Spike { base = rate; peak = m *. rate; start_s = 0.01; len_s = 0.01 })
          | _ -> None)
      | _ -> None)

let to_string = function
  | Poisson r -> Printf.sprintf "poisson(%.0f/s)" r
  | Burst { base; peak; period_s; duty } ->
      Printf.sprintf "burst(%.0f/s base, %.0f/s peak, %.0fms period, %.0f%% duty)"
        base peak (period_s *. 1e3) (duty *. 100.)
  | Spike { base; peak; start_s; len_s } ->
      Printf.sprintf "spike(%.0f/s base, %.0f/s peak, at %.0fms for %.0fms)"
        base peak (start_s *. 1e3) (len_s *. 1e3)

let names =
  [ "poisson"; "burst"; "burst:<peak-multiplier>"; "spike";
    "spike:<peak-multiplier>" ]

let rate_at t ~seconds =
  match t with
  | Poisson r -> r
  | Burst { base; peak; period_s; duty } ->
      let phase = Float.rem seconds period_s /. period_s in
      if phase < duty then peak else base
  | Spike { base; peak; start_s; len_s } ->
      if seconds >= start_s && seconds < start_s +. len_s then peak else base

(** The single overload window of a [Spike], in cycles — the phase
    boundaries a degradation report classifies requests against.  [None]
    for shapes without one well-defined window. *)
let spike_window t ~clock =
  match t with
  | Spike { start_s; len_s; _ } ->
      Some
        ( Exec.Clock.cycles_of_seconds clock start_s,
          Exec.Clock.cycles_of_seconds clock (start_s +. len_s) )
  | Poisson _ | Burst _ -> None

let schedule t ~clock ~n ~seed =
  let rng = Random.State.make [| seed; 0x0a11 |] in
  let times = Array.make n 0 in
  let now = ref 0.0 in
  for i = 0 to n - 1 do
    let rate = rate_at t ~seconds:!now in
    if rate <= 0.0 then invalid_arg "Arrivals.schedule: rate must be > 0";
    (* Exponential inter-arrival; 1-u keeps the log argument non-zero. *)
    let u = Random.State.float rng 1.0 in
    now := !now +. (-.Float.log (1.0 -. u) /. rate);
    times.(i) <- Exec.Clock.cycles_of_seconds clock !now
  done;
  times
