(** The uniform face of a set data structure, lifted out of [Trial] so the
    trial runner, the bench scheme matrix and the chaos campaign all share
    one definition (and one place to add a structure).

    [Face (RM)] fixes the Record Manager the sets are instantiated with;
    its [SET] signature is what {!Trial.Run.trial} consumes.  The adapter
    modules pin each library structure to that face — today they are plain
    re-instantiations because the structures were written against it, but
    the adapter is the seam where a non-set shape (a stack exposed as a
    key-only set, say) would be bridged. *)

module Face (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module type SET = sig
    type t

    val create : RM.t -> capacity:int -> t
    val insert : t -> Runtime.Ctx.t -> key:int -> value:int -> bool
    val delete : t -> Runtime.Ctx.t -> int -> bool
    val contains : t -> Runtime.Ctx.t -> int -> bool

    (** Map half of the face, used by the KV layer.  [get] reads the value
        stored under a key; [remove] is a value-returning delete (the
        unique linearizing deleter learns the value); [fold_entry] runs its
        callback inside the operation's still-open session while the found
        node is protected, so the callback may chain a [RM.Typed.acquire]
        on a pointer stored in [value] using [live] as the verification. *)

    val get : t -> Runtime.Ctx.t -> int -> int option
    val remove : t -> Runtime.Ctx.t -> int -> int option

    val fold_entry :
      t ->
      Runtime.Ctx.t ->
      int ->
      f:(RM.Typed.session -> value:int -> live:(unit -> bool) -> 'a) ->
      'a option

    (** Uninstrumented inspection (quiescent callers only). *)
    val size : t -> int

    (** Uninstrumented invariant walk; raises on a broken structure.  Used
        for post-fault validation after chaos trials. *)
    val check_invariants : t -> unit
  end

  module Bst = Ds.Efrb_bst.Make (RM)
  module Skiplist = Ds.Skiplist.Make (RM)
  module Hm_list = Ds.Hm_list.Make (RM)

  (* The lock-free hash set's [create] takes a bucket count; the face fixes
     the sizing policy (~64 keys per bucket) so the KV shard layer can
     select it like any other structure. *)
  module Hash_set = struct
    include Ds.Hash_set_lf.Make (RM)

    let create rm ~capacity =
      create rm ~buckets:(max 16 (capacity / 64)) ~capacity
  end

  let bst : (module SET) = (module Bst)
  let skiplist : (module SET) = (module Skiplist)
  let hm_list : (module SET) = (module Hm_list)
  let hash_set : (module SET) = (module Hash_set)

  (* Structure selector shared by the KV shard layer and benches. *)
  let by_name = function
    | "bst" -> Some bst
    | "skiplist" -> Some skiplist
    | "hm_list" | "list" -> Some hm_list
    | "hash" | "hash_set" -> Some hash_set
    | _ -> None

  let names = [ "skiplist"; "bst"; "hm_list"; "hash" ]
end
