(** The uniform face of a set data structure, lifted out of [Trial] so the
    trial runner, the bench scheme matrix and the chaos campaign all share
    one definition (and one place to add a structure).

    [Face (RM)] fixes the Record Manager the sets are instantiated with;
    its [SET] signature is what {!Trial.Run.trial} consumes.  The adapter
    modules pin each library structure to that face — today they are plain
    re-instantiations because the structures were written against it, but
    the adapter is the seam where a non-set shape (a stack exposed as a
    key-only set, say) would be bridged. *)

module Face (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module type SET = sig
    type t

    val create : RM.t -> capacity:int -> t
    val insert : t -> Runtime.Ctx.t -> key:int -> value:int -> bool
    val delete : t -> Runtime.Ctx.t -> int -> bool
    val contains : t -> Runtime.Ctx.t -> int -> bool

    (** Uninstrumented invariant walk; raises on a broken structure.  Used
        for post-fault validation after chaos trials. *)
    val check_invariants : t -> unit
  end

  module Bst = Ds.Efrb_bst.Make (RM)
  module Skiplist = Ds.Skiplist.Make (RM)
  module Hm_list = Ds.Hm_list.Make (RM)

  let bst : (module SET) = (module Bst)
  let skiplist : (module SET) = (module Skiplist)
  let hm_list : (module SET) = (module Hm_list)
end
