(** Bounded-exploration harness: small fixed workloads on each (scheme,
    structure) cell of the matrix, recorded as histories and driven through
    {!Lincheck.Explore} / {!Lincheck.Checker}.

    Unlike {!Trial}, which runs a fixed {e duration} (so the operation count
    depends on the schedule), every process here runs a fixed per-process
    operation sequence derived only from the seed — the program under test
    is identical across schedules, which is what makes systematic
    exploration meaningful and every recorded preemption schedule
    replayable.

    Exploration configs are deliberately tiny (a few processes, a handful
    of operations, a small key range) with one hardware context per process
    so the [`Systematic] chooser fully controls the interleaving: with more
    processes than contexts the round-robin quantum would preempt behind
    the explorer's back. *)

open Reclaim
module H = Lincheck.History

type config = {
  nprocs : int;
  ops_per_proc : int;
  key_range : int;
  prefill : int;  (** elements inserted (and recorded) before the run *)
  seed : int;
  capacity : int;
  params : Intf.Params.t;  (** reclamation knobs; {!explore_params} default *)
}

(* Aggressive reclamation knobs, as in the sanitizer fuzz: tiny blocks and
   thresholds of 1 so grace periods expire and scans run within a few
   operations — otherwise no schedule short enough to explore would ever
   free anything.  ThreadScan keeps its delete-buffer threshold out of
   reach: its mid-run signal-scan is unsound for traversals that cross
   retired records (paper §3), so its cell checks the no-scan protocol. *)
let explore_params =
  {
    Intf.Params.default with
    Intf.Params.block_capacity = 4;
    check_thresh = 1;
    incr_thresh = 1;
    pool_cap_blocks = 2;
    hp_slots = (2 * Ds.Skiplist.max_level) + 8;
    hp_retire_factor = 1;
    suspect_blocks = 1;
    st_segment_accesses = 4;
    ts_buffer_blocks = 1000;
  }

let default_config =
  {
    nprocs = 3;
    ops_per_proc = 5;
    key_range = 4;
    prefill = 2;
    seed = 7;
    capacity = 4096;
    params = explore_params;
  }

let ds_names = [ "list"; "bst"; "skiplist"; "queue" ]

let spec_of_ds = function
  | "queue" -> Lincheck.Spec.queue
  | "stack" -> Lincheck.Spec.stack
  | _ -> Lincheck.Spec.set

module Mk (RM : Intf.RECORD_MANAGER) = struct
  module Face = Set_adapter.Face (RM)
  module Q = Ds.Ms_queue.Make (RM)

  (* The queue face, open so tests can plug a seeded mutant in place of the
     real Michael-Scott queue and watch the checker reject it. *)
  module type QUEUE = sig
    type t

    val create : RM.t -> capacity:int -> t
    val enqueue : t -> Runtime.Ctx.t -> int -> unit
    val dequeue : t -> Runtime.Ctx.t -> int option
  end

  let fresh cfg =
    let group = Runtime.Group.create ~seed:cfg.seed cfg.nprocs in
    let heap = Memory.Heap.create () in
    let env = Intf.Env.create ~params:cfg.params group heap in
    let rm = RM.create env in
    (group, rm)

  let machine_for cfg = Machine.Config.tiny ~contexts:cfg.nprocs ()

  let record rec_ ctx op f wrap =
    let pid = ctx.Runtime.Ctx.pid in
    let tok = H.invoke rec_ ~pid ~time:(Runtime.Ctx.now ctx) op in
    let r = f () in
    H.return_ rec_ tok ~time:(Runtime.Ctx.now ctx) (wrap r)

  (* One run of the set workload under [policy]; a fresh world every call,
     as stateless exploration requires.  The prefill runs uninstrumented
     (no scheduler hooks yet) but {e is} recorded: it is part of the
     history, so the checker's spec still starts from the empty set. *)
  let run_set (module S : Face.SET) ?(unreliable = false) cfg policy =
    let group, rm = fresh cfg in
    if unreliable then group.Runtime.Group.signals_unreliable <- true;
    let s = S.create rm ~capacity:cfg.capacity in
    let rec_ = H.recorder ~nprocs:cfg.nprocs in
    let ctx0 = Runtime.Group.ctx group 0 in
    for i = 1 to cfg.prefill do
      let key = 1 + ((i * 7) mod cfg.key_range) in
      record rec_ ctx0 (H.Add key)
        (fun () -> S.insert s ctx0 ~key ~value:key)
        (fun b -> H.RBool b)
    done;
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| cfg.seed; pid; 0x11c |] in
      for _ = 1 to cfg.ops_per_proc do
        let key = 1 + Random.State.int rng cfg.key_range in
        match Random.State.int rng 3 with
        | 0 ->
            record rec_ ctx (H.Add key)
              (fun () -> S.insert s ctx ~key ~value:key)
              (fun b -> H.RBool b)
        | 1 ->
            record rec_ ctx (H.Remove key)
              (fun () -> S.delete s ctx key)
              (fun b -> H.RBool b)
        | _ ->
            record rec_ ctx (H.Mem key)
              (fun () -> S.contains s ctx key)
              (fun b -> H.RBool b)
      done
    in
    ignore
      (Sim.run ~machine:(machine_for cfg) ~max_steps:2_000_000 ~policy group
         (Array.init cfg.nprocs body));
    H.snapshot rec_

  (* Queue workload: unique values per enqueue (pid-tagged), so a duplicated
     or lost dequeue is visible to the FIFO spec. *)
  let run_queue_with (module Q : QUEUE) cfg policy =
    let group, rm = fresh cfg in
    let q = Q.create rm ~capacity:cfg.capacity in
    let rec_ = H.recorder ~nprocs:cfg.nprocs in
    let ctx0 = Runtime.Group.ctx group 0 in
    for i = 1 to cfg.prefill do
      record rec_ ctx0 (H.Enq (900 + i))
        (fun () -> Q.enqueue q ctx0 (900 + i))
        (fun () -> H.RUnit)
    done;
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| cfg.seed; pid; 0x40e |] in
      let next = ref 0 in
      for _ = 1 to cfg.ops_per_proc do
        if Random.State.int rng 5 < 3 then begin
          incr next;
          let v = (pid * 1000) + !next in
          record rec_ ctx (H.Enq v)
            (fun () -> Q.enqueue q ctx v)
            (fun () -> H.RUnit)
        end
        else
          record rec_ ctx H.Deq
            (fun () -> Q.dequeue q ctx)
            (fun r -> H.RVal r)
      done
    in
    ignore
      (Sim.run ~machine:(machine_for cfg) ~max_steps:2_000_000 ~policy group
         (Array.init cfg.nprocs body));
    H.snapshot rec_

  let run_queue cfg policy = run_queue_with (module Q) cfg policy

  (* The lazy skip list holds spin locks across its update windows; under
     DEBRA+ those windows are signal-masked, which is only sound with
     acknowledgement-based (unreliable) signal delivery — see
     lib/ds/skiplist.ml. *)
  let run ~ds cfg policy =
    match ds with
    | "list" -> run_set Face.hm_list cfg policy
    | "bst" -> run_set Face.bst cfg policy
    | "skiplist" ->
        run_set Face.skiplist ~unreliable:RM.supports_crash_recovery cfg
          policy
    | "queue" -> run_queue cfg policy
    | ds -> invalid_arg ("Lin_harness: unknown structure " ^ ds)
end

(* One pack per scheme, over the bench matrix's Record Managers (shared
   pool behind the reusing schemes, so premature frees really recycle
   memory and use-after-free has teeth). *)
type pack = {
  pname : string;
  prun : ds:string -> config -> Sim.policy -> H.t;
}

module P_none = Mk (Schemes.RM1_none)
module P_ebr = Mk (Schemes.RM2_ebr)
module P_qsbr = Mk (Schemes.RM2_qsbr)
module P_debra = Mk (Schemes.RM2_debra)
module P_debra_plus = Mk (Schemes.RM2_debra_plus)
module P_hp = Mk (Schemes.RM2_hp)
module P_rc = Mk (Schemes.RM2_rc)
module P_ts = Mk (Schemes.RM2_ts)
module P_st = Mk (Schemes.RM2_st)
module P_vbr = Mk (Schemes.RM2_vbr)
module P_hyaline = Mk (Schemes.RM2_hyaline)

let packs =
  [
    { pname = "none"; prun = P_none.run };
    { pname = "ebr"; prun = P_ebr.run };
    { pname = "qsbr"; prun = P_qsbr.run };
    { pname = "debra"; prun = P_debra.run };
    { pname = "debra+"; prun = P_debra_plus.run };
    { pname = "hp"; prun = P_hp.run };
    { pname = "rc"; prun = P_rc.run };
    { pname = "threadscan"; prun = P_ts.run };
    { pname = "stacktrack"; prun = P_st.run };
    { pname = "vbr"; prun = P_vbr.run };
    { pname = "hyaline"; prun = P_hyaline.run };
  ]

let scheme_names = List.map (fun p -> p.pname) packs

let pack_of scheme =
  match List.find_opt (fun p -> p.pname = scheme) packs with
  | Some p -> p
  | None -> invalid_arg ("Lin_harness: unknown scheme " ^ scheme)

(** One run of a matrix cell under an explicit policy — the replay path. *)
let run_once ~ds ~scheme cfg policy = (pack_of scheme).prun ~ds cfg policy

(** Bounded exploration of one matrix cell; every schedule's history is
    checked against the structure's sequential spec, and any exception the
    run raises (an arena's use-after-free / double-free trap, a wedge)
    rejects the cell with the schedule that triggered it. *)
let explore ?(budget = 2) ?(max_runs = 2000) ?(wide = false) ?log
    ?(workers = 1) ~ds ~scheme cfg =
  let p = pack_of scheme in
  let spec = spec_of_ds ds in
  Lincheck.Explore.explore ~budget ~max_runs ~wide ?log ~domains:workers
    ~run_one:(fun policy -> p.prun ~ds cfg policy)
    ~check:(fun h ->
      match Lincheck.Checker.check spec h with
      | Lincheck.Checker.Linearizable -> None
      | v -> Some (Lincheck.Checker.verdict_to_string v))
    ()

let verdict_summary = function
  | Lincheck.Explore.Pass st ->
      Printf.sprintf "pass: %d schedules, %d branch points%s"
        st.Lincheck.Explore.runs st.Lincheck.Explore.branch_points
        (if st.Lincheck.Explore.truncated then " (TRUNCATED)" else "")
  | Lincheck.Explore.Fail { stats; schedule; reason; _ } ->
      Printf.sprintf "FAIL after %d schedules\n  schedule: %s\n  reason: %s"
        stats.Lincheck.Explore.runs
        (Lincheck.Explore.schedule_to_string schedule)
        reason
