(** Trial runner: prefill a set data structure to half its key range, run a
    timed mixed workload on the simulated machine, and collect the metrics
    the paper reports (throughput, memory allocated, limbo population,
    neutralization counts).

    Mirrors the paper's §7 methodology: uniformly random keys, operation
    mixes written "xi-yd" (x% insert, y% delete, rest search), prefill to
    half the key range, fixed-duration trials. *)

(* One virtual cycle = 1/3 ns: the i7-4770 runs at ~3.4 GHz; we report
   throughput in Mops/s on that scale so numbers are comparable in magnitude
   to the paper's. *)
let cycles_per_second = 3.0e9
let cycles_per_ns = cycles_per_second /. 1.0e9

type outcome = {
  scheme : string;
  nprocs : int;
  ops : int;
  virtual_time : int;
  mops : float;  (** million operations per simulated second *)
  bytes_claimed : int;  (** total allocated for records, incl. prefill *)
  bytes_claimed_trial : int;
      (** bump-pointer movement during the timed trial only — the paper's
          Fig. 9 (right) metric *)
  bytes_peak : int;
  limbo : int;  (** records awaiting reclamation at trial end *)
  neutralized : int;
  signals_sent : int;
  allocs : int;
  frees : int;
  oom : bool;  (** the arena filled up: the scheme failed to reclaim *)
  crashed : int;  (** processes that terminated via an injected crash *)
  chaos : Chaos.summary option;
      (** fault-injection summary; [None] when the trial ran without a
          chaos plan *)
  invariant_failure : string option;
      (** post-fault structure validation: [None] = the survivors' final
          structure passed its invariant walk (or validation was off) *)
  cache : Machine.Cache.stats option;
  violations : int option;
      (** sanitizer violation count; [None] when the trial ran without the
          sanitizer (the default — see EXPERIMENTS.md: all reported numbers
          are sanitizer-off) *)
  latency : (string * (float * int) list) list;
      (** per-operation-kind latency percentiles in simulated ns, as
          [(percentile, value)] rows; empty when the trial ran without a
          telemetry recorder *)
}

let mops_of ~ops ~virtual_time =
  if virtual_time = 0 then 0.
  else
    float_of_int ops
    /. (float_of_int virtual_time /. cycles_per_second)
    /. 1.0e6

module Run (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  (* The uniform face of a set data structure instantiated with RM. *)
  module type SET = sig
    type t

    val create : RM.t -> capacity:int -> t
    val insert : t -> Runtime.Ctx.t -> key:int -> value:int -> bool
    val delete : t -> Runtime.Ctx.t -> int -> bool
    val contains : t -> Runtime.Ctx.t -> int -> bool

    (** Uninstrumented invariant walk; raises on a broken structure.  Used
        for post-fault validation after chaos trials. *)
    val check_invariants : t -> unit
  end

  (* Base scheme name ("debra+", "hp", ...) out of "debra+(pool,bump)". *)
  let base_scheme =
    match String.index_opt RM.scheme_name '(' with
    | Some i -> String.sub RM.scheme_name 0 i
    | None -> RM.scheme_name

  let trial (module S : SET) ?(machine = Machine.Config.intel_i7_4770)
      ?(params = Reclaim.Intf.Params.default) ?(duration = 2_000_000)
      ?(capacity = 0) ?(sanitize = false) ?telemetry ?stall ?chaos
      ?(budget = -1) ?max_steps ?policy ~n ~range ~ins ~del ~seed () =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create ~params group heap in
    let rm = RM.create env in
    let capacity = if capacity > 0 then capacity else range + 200_000 in
    let san =
      if sanitize then
        Some
          (Sanitizer.create
             ~config:
               (Sanitizer.Config.of_flags ~scheme:base_scheme
                  ~supports_crash_recovery:RM.supports_crash_recovery
                  ~allows_retired_traversal:RM.allows_retired_traversal
                  ~sandboxed:RM.sandboxed ())
             ~heap ~group)
      else None
    in
    let ctx0 = Runtime.Group.ctx group 0 in
    let checked f =
      match san with None -> f () | Some sa -> Sanitizer.with_checks sa f
    in
    let chaos_engine = ref None in
    let sim_result, base_claimed, limbo, invariant_failure =
      checked (fun () ->
          let s = S.create rm ~capacity in
          (* Prefill to half the key range (uninstrumented: simulator hooks
             are not yet installed, so this costs no simulated time). *)
          let rng = Random.State.make [| seed; 4242 |] in
          let target = range / 2 in
          let filled = ref 0 in
          while !filled < target do
            let key = 1 + Random.State.int rng range in
            if S.insert s ctx0 ~key ~value:key then incr filled
          done;
          Array.iter Runtime.Ctx.reset_stats group.Runtime.Group.ctxs;
          let base_claimed = Memory.Heap.bytes_claimed heap in
          (* Telemetry gauges read simulation state with uninstrumented
             peeks: sampling never costs virtual time. *)
          (match telemetry with
          | None -> ()
          | Some rec_ ->
              Telemetry.Recorder.add_gauge rec_ ~name:"limbo" (fun () ->
                  RM.limbo_per_proc rm);
              Telemetry.Recorder.add_gauge rec_ ~name:"epoch_lag" (fun () ->
                  RM.epoch_lag rm);
              Telemetry.Recorder.add_gauge rec_ ~name:"pool_population"
                (fun () -> [| RM.pool_population rm |]);
              Telemetry.Recorder.add_gauge rec_ ~name:"live_records" (fun () ->
                  [| Memory.Heap.live_records heap |]);
              Telemetry.Recorder.add_gauge rec_ ~name:"bytes_claimed"
                (fun () -> [| Memory.Heap.bytes_claimed heap |]));
          let tel_sub =
            Option.map
              (fun rec_ ->
                Memory.Heap.add_sink heap (Telemetry.Recorder.sink rec_))
              telemetry
          in
          let tick =
            Option.map
              (fun rec_ ->
                ( Telemetry.Recorder.sample_every rec_,
                  fun now -> Telemetry.Recorder.tick rec_ now ))
              telemetry
          in
          (* Stalled-process campaign (E-stall): park the victim — the
             highest pid — mid-operation at its first instrumented access
             past [at], for [cycles] of virtual time.  A signal sent to the
             parked process is handled at its next access after waking, as
             a POSIX signal interrupts a descheduled thread on resume. *)
          let restore_stall =
            match stall with
            | None -> None
            | Some (at, cycles) ->
                let victim = Runtime.Group.ctx group (n - 1) in
                let fired = ref false in
                Some
                  (Runtime.Ctx.add_hook victim (fun c ~line:_ _kind ->
                       if
                         (not !fired)
                         && Runtime.Ctx.now c >= at
                         && not (RM.is_quiescent rm c)
                       then begin
                         fired := true;
                         Runtime.Ctx.stall c cycles
                       end))
          in
          let plain_body pid () =
            let ctx = Runtime.Group.ctx group pid in
            let rng = Random.State.make [| seed; pid; 41 |] in
            while Runtime.Ctx.now ctx < duration do
              let key = 1 + Random.State.int rng range in
              let r = Random.State.int rng 100 in
              if r < ins then ignore (S.insert s ctx ~key ~value:key)
              else if r < ins + del then ignore (S.delete s ctx key)
              else ignore (S.contains s ctx key)
            done
          in
          (* Same loop with per-operation timestamping.  Kept separate so
             the telemetry-off path contains no recording code at all. *)
          let recording_body rec_ pid () =
            let ctx = Runtime.Group.ctx group pid in
            let rng = Random.State.make [| seed; pid; 41 |] in
            while Runtime.Ctx.now ctx < duration do
              let key = 1 + Random.State.int rng range in
              let r = Random.State.int rng 100 in
              let start = Runtime.Ctx.now ctx in
              let kind =
                if r < ins then begin
                  ignore (S.insert s ctx ~key ~value:key);
                  "insert"
                end
                else if r < ins + del then begin
                  ignore (S.delete s ctx key);
                  "delete"
                end
                else begin
                  ignore (S.contains s ctx key);
                  "search"
                end
              in
              Telemetry.Recorder.op rec_ ~pid ~kind ~start
                ~finish:(Runtime.Ctx.now ctx)
            done
          in
          let body =
            match telemetry with
            | None -> plain_body
            | Some rec_ -> recording_body rec_
          in
          (* Bounded-memory mode and fault injection arm after the prefill:
             the record budget and the access-count fault triggers apply to
             the measured run only.  [budget] is headroom above the records
             already claimed (the prefill's live set plus whatever inventory
             its reclamation pipeline left in limbo and pools): the trial
             may claim at most [budget] further records before allocation
             starts failing over to emergency reclamation. *)
          if budget >= 0 then
            Memory.Heap.set_record_budget heap
              (Memory.Heap.budget_live heap + budget);
          chaos_engine :=
            Option.map
              (fun plan ->
                Chaos.install plan ~group ~heap ~in_op:(fun c ->
                    not (RM.is_quiescent rm c)))
              chaos;
          let sim_result =
            match Sim.run ~machine ?max_steps ?policy ?tick group
                    (Array.init n body)
            with
            | r -> Ok r
            | exception Memory.Arena.Arena_full a -> Error a
            | exception Memory.Arena.Out_of_memory a -> Error a
          in
          Option.iter Chaos.uninstall !chaos_engine;
          Option.iter (fun restore -> restore ()) restore_stall;
          Option.iter (fun sub -> Memory.Heap.remove_sink heap sub) tel_sub;
          let limbo = RM.limbo_size rm in
          (* Post-fault validation: whatever the faults did, the structure
             the survivors left behind must still satisfy its invariants. *)
          let invariant_failure =
            match chaos with
            | None -> None
            | Some _ -> (
                try
                  S.check_invariants s;
                  None
                with e -> Some (Printexc.to_string e))
          in
          (* Under the sanitizer, shut down quiescently so the shadow leak
             ledger can be reconciled against the reclaimer's limbo.
             Crashed processes are permanently non-quiescent: they take no
             part in the shutdown protocol, and [flush] is driven by the
             lowest surviving pid (a dead ctx must not execute protocol
             steps post-mortem). *)
          (match san with
          | None -> ()
          | Some sa ->
              let alive ctx =
                not
                  (Runtime.Group.is_crashed group ctx.Runtime.Ctx.pid)
              in
              for _ = 1 to 30 do
                Array.iter
                  (fun ctx ->
                    if alive ctx then begin
                      RM.leave_qstate rm ctx;
                      RM.enter_qstate rm ctx
                    end)
                  group.Runtime.Group.ctxs
              done;
              let janitor =
                match
                  Array.find_opt alive group.Runtime.Group.ctxs
                with
                | Some ctx -> ctx
                | None -> ctx0
              in
              RM.flush rm janitor;
              Sanitizer.leak_check sa ~limbo_size:(RM.limbo_size rm);
              let r = Sanitizer.report sa in
              if r <> "" then prerr_string r);
          (sim_result, base_claimed, limbo, invariant_failure))
    in
    let stat f = Runtime.Group.sum_stats group f in
    let ops = stat (fun s -> s.Runtime.Ctx.ops) in
    let virtual_time, cache, oom =
      match sim_result with
      | Ok r -> (r.Sim.virtual_time, Some r.Sim.cache_stats, false)
      | Error _ -> (duration, None, true)
    in
    {
      scheme = RM.scheme_name;
      nprocs = n;
      ops;
      virtual_time;
      mops = (if oom then 0. else mops_of ~ops ~virtual_time);
      bytes_claimed = Memory.Heap.bytes_claimed heap;
      bytes_claimed_trial = Memory.Heap.bytes_claimed heap - base_claimed;
      bytes_peak = Memory.Heap.bytes_peak heap;
      limbo;
      neutralized = stat (fun s -> s.Runtime.Ctx.neutralized);
      signals_sent = stat (fun s -> s.Runtime.Ctx.signals_sent);
      allocs = stat (fun s -> s.Runtime.Ctx.allocs);
      frees = stat (fun s -> s.Runtime.Ctx.frees);
      oom;
      crashed =
        (let c = ref 0 in
         for pid = 0 to n - 1 do
           if Runtime.Group.is_crashed group pid then incr c
         done;
         !c);
      chaos = Option.map Chaos.summary !chaos_engine;
      invariant_failure;
      cache;
      violations = Option.map Sanitizer.violation_count san;
      latency =
        (match telemetry with
        | None -> []
        | Some rec_ -> Telemetry.Recorder.latency_percentiles rec_);
    }
end
