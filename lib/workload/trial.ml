(** Trial runner: prefill a set data structure to half its key range, run a
    timed mixed workload, and collect the metrics the paper reports
    (throughput, memory allocated, limbo population, neutralization counts).

    Mirrors the paper's §7 methodology: uniformly random keys, operation
    mixes written "xi-yd" (x% insert, y% delete, rest search), prefill to
    half the key range, fixed-duration trials.

    Pass [?history] (a {!Lincheck.History.recorder}) to log every
    operation — prefill included — as an invocation/response history for
    the linearizability checker; sound on both backends (see
    Lincheck.History on the two clocks).

    Execution is backend-polymorphic: the pipeline is written once against
    {!Exec.Intf.RUNNER} and runs on the deterministic virtual-time
    simulator (the default, and the mode every published number uses) or on
    real OCaml 5 domains ([~exec:(Exec.Domain_exec.make ())]).  Durations
    and reported times are in cycles of the backend's {!Exec.Clock}; on a
    non-deterministic backend the sim-only features degrade gracefully
    (see DESIGN.md §10): the sanitizer is disabled, chaos plans are
    restricted to {!Chaos.degrade}'s subset, and the telemetry event-bus
    sink is not attached. *)

type outcome = {
  scheme : string;
  backend : string;  (** executor that ran the trial: "sim" or "domains" *)
  nprocs : int;
  ops : int;
  virtual_time : int;
      (** elapsed time in backend-clock cycles: virtual time under the
          simulator, scaled wall-clock under domains *)
  wall_seconds : float;  (** real host time the trial took *)
  mops : float;  (** million operations per backend-clock second *)
  bytes_claimed : int;  (** total allocated for records, incl. prefill *)
  bytes_claimed_trial : int;
      (** bump-pointer movement during the timed trial only — the paper's
          Fig. 9 (right) metric *)
  bytes_peak : int;
  limbo : int;  (** records awaiting reclamation at trial end *)
  neutralized : int;
  signals_sent : int;
  allocs : int;
  frees : int;
  oom : bool;  (** the arena filled up: the scheme failed to reclaim *)
  crashed : int;  (** processes that terminated via an injected crash *)
  chaos : Chaos.summary option;
      (** fault-injection summary; [None] when the trial ran without a
          chaos plan *)
  invariant_failure : string option;
      (** post-fault structure validation: [None] = the survivors' final
          structure passed its invariant walk (or validation was off) *)
  cache : Machine.Cache.stats option;
  violations : int option;
      (** sanitizer violation count; [None] when the trial ran without the
          sanitizer (the default — see EXPERIMENTS.md: all reported numbers
          are sanitizer-off) *)
  latency : (string * (float * int) list) list;
      (** per-operation-kind latency percentiles in backend-clock ns, as
          [(percentile, value)] rows; empty when the trial ran without a
          telemetry recorder *)
}

module Run (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  (* The uniform face of a set data structure instantiated with RM, shared
     with the bench scheme matrix (see Set_adapter). *)
  module Face = Set_adapter.Face (RM)

  module type SET = Face.SET

  (* Base scheme name ("debra+", "hp", ...) out of "debra+(pool,bump)". *)
  let base_scheme =
    match String.index_opt RM.scheme_name '(' with
    | Some i -> String.sub RM.scheme_name 0 i
    | None -> RM.scheme_name

  let trial (module S : SET) ?(machine = Machine.Config.intel_i7_4770)
      ?(params = Reclaim.Intf.Params.default) ?(duration = 2_000_000)
      ?(capacity = 0) ?(sanitize = false) ?telemetry ?history ?stall ?chaos
      ?(budget = -1) ?max_steps ?policy ?exec ~n ~range ~ins ~del ~seed () =
    (* Resolve the execution backend.  The default is the simulator built
       from the per-trial knobs, which keeps every existing caller (and its
       deterministic schedule) bit-for-bit unchanged. *)
    let (module E : Exec.Intf.RUNNER) =
      match exec with
      | Some e -> e
      | None -> Exec.Sim_exec.make ~machine ?max_steps ?policy ()
    in
    (* Graceful degradation of sim-only features on a non-deterministic
       backend: the shadow-state sanitizer and the recorder's event-bus
       sink share unsynchronized state across what would now be racing
       domains, and part of the chaos trigger vocabulary needs a global
       event order. *)
    let sanitize =
      if sanitize && not E.deterministic then begin
        Printf.eprintf
          "trial: sanitizer is unavailable on the %s backend; running \
           without it\n\
           %!"
          E.name;
        false
      end
      else sanitize
    in
    let chaos =
      match chaos with
      | Some plan when not E.deterministic ->
          let plan, dropped = Chaos.degrade plan in
          List.iter
            (fun f ->
              Printf.eprintf
                "trial: chaos fault %s needs a deterministic backend; \
                 dropped on %s\n\
                 %!"
                (Chaos.fault_to_string f) E.name)
            dropped;
          Some plan
      | c -> c
    in
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create ~params group heap in
    let rm = RM.create env in
    let capacity = if capacity > 0 then capacity else range + 200_000 in
    let san =
      if sanitize then
        Some
          (Sanitizer.create
             ~config:
               (Sanitizer.Config.of_flags ~scheme:base_scheme
                  ~supports_crash_recovery:RM.supports_crash_recovery
                  ~allows_retired_traversal:RM.allows_retired_traversal
                  ~sandboxed:RM.sandboxed ())
             ~heap ~group)
      else None
    in
    let ctx0 = Runtime.Group.ctx group 0 in
    (* Optional linearizability history: log an invocation/response pair
       around an operation.  Sound on both backends — the recorder's global
       sequence counter is atomic, and each pid only touches its own slots
       (see Lincheck.History). *)
    let record_op ctx op (f : unit -> bool) =
      match history with
      | None -> f ()
      | Some rec_ ->
          let tok =
            Lincheck.History.invoke rec_ ~pid:ctx.Runtime.Ctx.pid
              ~time:(Runtime.Ctx.now ctx) op
          in
          let r = f () in
          Lincheck.History.return_ rec_ tok ~time:(Runtime.Ctx.now ctx)
            (Lincheck.History.RBool r);
          r
    in
    let checked f =
      match san with None -> f () | Some sa -> Sanitizer.with_checks sa f
    in
    let chaos_engine = ref None in
    (* Set by [recording_body] on a parallel backend: folds the per-domain
       telemetry buffers into the recorder's shared histograms, once, after
       the run. *)
    let merge_telemetry = ref (fun () -> ()) in
    let run_result, base_claimed, limbo, invariant_failure =
      checked (fun () ->
          let s = S.create rm ~capacity in
          (* Prefill to half the key range (uninstrumented: backend hooks
             are not yet installed, so this costs no measured time). *)
          let rng = Random.State.make [| seed; 4242 |] in
          let target = range / 2 in
          let filled = ref 0 in
          (* The prefill is part of the recorded history (when recording):
             the checker's sequential spec starts from the empty set. *)
          while !filled < target do
            let key = 1 + Random.State.int rng range in
            if
              record_op ctx0 (Lincheck.History.Add key) (fun () ->
                  S.insert s ctx0 ~key ~value:key)
            then incr filled
          done;
          Array.iter Runtime.Ctx.reset_stats group.Runtime.Group.ctxs;
          let base_claimed = Memory.Heap.bytes_claimed heap in
          (* Telemetry gauges read run state with uninstrumented peeks:
             sampling never costs simulated time, and on domains it runs on
             a sampler domain outside every workload domain. *)
          (match telemetry with
          | None -> ()
          | Some rec_ ->
              Telemetry.Recorder.add_gauge rec_ ~name:"limbo" (fun () ->
                  RM.limbo_per_proc rm);
              Telemetry.Recorder.add_gauge rec_ ~name:"epoch_lag" (fun () ->
                  RM.epoch_lag rm);
              Telemetry.Recorder.add_gauge rec_ ~name:"pool_population"
                (fun () -> [| RM.pool_population rm |]);
              Telemetry.Recorder.add_gauge rec_ ~name:"live_records" (fun () ->
                  [| Memory.Heap.live_records heap |]);
              Telemetry.Recorder.add_gauge rec_ ~name:"bytes_claimed"
                (fun () -> [| Memory.Heap.bytes_claimed heap |]));
          (* The event-bus sink bumps unsynchronized counters on every
             emission; only the deterministic backend may attach it. *)
          let tel_sub =
            if E.deterministic then
              Option.map
                (fun rec_ ->
                  Memory.Heap.add_sink heap (Telemetry.Recorder.sink rec_))
                telemetry
            else None
          in
          let tick =
            Option.map
              (fun rec_ ->
                ( Telemetry.Recorder.sample_every rec_,
                  fun now -> Telemetry.Recorder.tick rec_ now ))
              telemetry
          in
          (* Stalled-process campaign (E-stall): park the victim — the
             highest pid — mid-operation at its first instrumented access
             past [at], for [cycles] of backend time.  A signal sent to the
             parked process is handled at its next access after waking, as
             a POSIX signal interrupts a descheduled thread on resume. *)
          let restore_stall =
            match stall with
            | None -> None
            | Some (at, cycles) ->
                let victim = Runtime.Group.ctx group (n - 1) in
                let fired = ref false in
                Some
                  (Runtime.Ctx.add_hook victim (fun c ~line:_ _kind ->
                       if
                         (not !fired)
                         && Runtime.Ctx.now c >= at
                         && not (RM.is_quiescent rm c)
                       then begin
                         fired := true;
                         Runtime.Ctx.stall c cycles
                       end))
          in
          let plain_body pid () =
            let ctx = Runtime.Group.ctx group pid in
            let rng = Random.State.make [| seed; pid; 41 |] in
            while Runtime.Ctx.now ctx < duration do
              let key = 1 + Random.State.int rng range in
              let r = Random.State.int rng 100 in
              if r < ins then
                ignore
                  (record_op ctx (Lincheck.History.Add key) (fun () ->
                       S.insert s ctx ~key ~value:key))
              else if r < ins + del then
                ignore
                  (record_op ctx (Lincheck.History.Remove key) (fun () ->
                       S.delete s ctx key))
              else
                ignore
                  (record_op ctx (Lincheck.History.Mem key) (fun () ->
                       S.contains s ctx key))
            done
          in
          (* Same loop with per-operation timestamping.  Kept separate so
             the telemetry-off path contains no recording code at all.  On
             a non-deterministic backend each domain records into its own
             per-process buffer (no synchronization on the hot path) and
             the buffers are merged into the shared histograms after the
             run; the deterministic path records directly, exactly as
             before. *)
          let recording_body rec_ =
            let record =
              if E.deterministic then Telemetry.Recorder.op rec_
              else begin
                let locals = Telemetry.Recorder.locals rec_ in
                merge_telemetry :=
                  (fun () -> Telemetry.Recorder.merge_locals rec_ locals);
                fun ~pid ~kind ~start ~finish ->
                  Telemetry.Recorder.local_op locals.(pid) ~kind ~start
                    ~finish
              end
            in
            fun pid () ->
              let ctx = Runtime.Group.ctx group pid in
              let rng = Random.State.make [| seed; pid; 41 |] in
              while Runtime.Ctx.now ctx < duration do
                let key = 1 + Random.State.int rng range in
                let r = Random.State.int rng 100 in
                let start = Runtime.Ctx.now ctx in
                let kind =
                  if r < ins then begin
                    ignore
                      (record_op ctx (Lincheck.History.Add key) (fun () ->
                           S.insert s ctx ~key ~value:key));
                    "insert"
                  end
                  else if r < ins + del then begin
                    ignore
                      (record_op ctx (Lincheck.History.Remove key) (fun () ->
                           S.delete s ctx key));
                    "delete"
                  end
                  else begin
                    ignore
                      (record_op ctx (Lincheck.History.Mem key) (fun () ->
                           S.contains s ctx key));
                    "search"
                  end
                in
                record ~pid ~kind ~start ~finish:(Runtime.Ctx.now ctx)
              done
          in
          let body =
            match telemetry with
            | None -> plain_body
            | Some rec_ -> recording_body rec_
          in
          (* Bounded-memory mode and fault injection arm after the prefill:
             the record budget and the access-count fault triggers apply to
             the measured run only.  [budget] is headroom above the records
             already claimed (the prefill's live set plus whatever inventory
             its reclamation pipeline left in limbo and pools): the trial
             may claim at most [budget] further records before allocation
             starts failing over to emergency reclamation. *)
          if budget >= 0 then
            Memory.Heap.set_record_budget heap
              (Memory.Heap.budget_live heap + budget);
          chaos_engine :=
            Option.map
              (fun plan ->
                Chaos.install plan ~group ~heap ~in_op:(fun c ->
                    not (RM.is_quiescent rm c)))
              chaos;
          let run_result =
            match E.run ?tick group (Array.init n body) with
            | r -> Ok r
            | exception Memory.Arena.Arena_full a -> Error a
            | exception Memory.Arena.Out_of_memory a -> Error a
          in
          Option.iter Chaos.uninstall !chaos_engine;
          Option.iter (fun restore -> restore ()) restore_stall;
          Option.iter (fun sub -> Memory.Heap.remove_sink heap sub) tel_sub;
          !merge_telemetry ();
          let limbo = RM.limbo_size rm in
          (* Post-fault validation: whatever the faults did, the structure
             the survivors left behind must still satisfy its invariants. *)
          let invariant_failure =
            match chaos with
            | None -> None
            | Some _ -> (
                try
                  S.check_invariants s;
                  None
                with e -> Some (Printexc.to_string e))
          in
          (* Under the sanitizer, shut down quiescently so the shadow leak
             ledger can be reconciled against the reclaimer's limbo.
             Crashed processes are permanently non-quiescent: they take no
             part in the shutdown protocol, and [flush] is driven by the
             lowest surviving pid (a dead ctx must not execute protocol
             steps post-mortem). *)
          (match san with
          | None -> ()
          | Some sa ->
              let alive ctx =
                not
                  (Runtime.Group.is_crashed group ctx.Runtime.Ctx.pid)
              in
              for _ = 1 to 30 do
                Array.iter
                  (fun ctx ->
                    if alive ctx then begin
                      RM.leave_qstate rm ctx;
                      RM.enter_qstate rm ctx
                    end)
                  group.Runtime.Group.ctxs
              done;
              let janitor =
                match
                  Array.find_opt alive group.Runtime.Group.ctxs
                with
                | Some ctx -> ctx
                | None -> ctx0
              in
              RM.flush rm janitor;
              Sanitizer.leak_check sa ~limbo_size:(RM.limbo_size rm);
              let r = Sanitizer.report sa in
              if r <> "" then prerr_string r);
          (run_result, base_claimed, limbo, invariant_failure))
    in
    let stat f = Runtime.Group.sum_stats group f in
    let ops = stat (fun s -> s.Runtime.Ctx.ops) in
    let virtual_time, wall_seconds, cache, oom =
      match run_result with
      | Ok r ->
          (r.Exec.Intf.elapsed_cycles, r.Exec.Intf.wall_seconds,
           r.Exec.Intf.cache_stats, false)
      | Error _ -> (duration, 0., None, true)
    in
    {
      scheme = RM.scheme_name;
      backend = E.name;
      nprocs = n;
      ops;
      virtual_time;
      wall_seconds;
      mops =
        (if oom then 0.
         else Exec.Clock.mops E.clock ~ops ~cycles:virtual_time);
      bytes_claimed = Memory.Heap.bytes_claimed heap;
      bytes_claimed_trial = Memory.Heap.bytes_claimed heap - base_claimed;
      bytes_peak = Memory.Heap.bytes_peak heap;
      limbo;
      neutralized = stat (fun s -> s.Runtime.Ctx.neutralized);
      signals_sent = stat (fun s -> s.Runtime.Ctx.signals_sent);
      allocs = stat (fun s -> s.Runtime.Ctx.allocs);
      frees = stat (fun s -> s.Runtime.Ctx.frees);
      oom;
      crashed =
        (let c = ref 0 in
         for pid = 0 to n - 1 do
           if Runtime.Group.is_crashed group pid then incr c
         done;
         !c);
      chaos = Option.map Chaos.summary !chaos_engine;
      invariant_failure;
      cache;
      violations = Option.map Sanitizer.violation_count san;
      latency =
        (match telemetry with
        | None -> []
        | Some rec_ -> Telemetry.Recorder.latency_percentiles rec_);
    }
end
