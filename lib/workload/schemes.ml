(** The experiment matrix: one Record Manager instantiation per
    (allocator, pool, reclaimer) combination the paper's experiments use,
    uniform trial runners per data structure, and the panel driver that
    sweeps process counts and prints one table per figure panel.

    Numbered variants follow the paper's experiments: [RM1_*] = bump
    allocator, no pool (Experiment 1: reclamation work without reuse);
    [RM2_*] = bump allocator behind the shared pool (Experiment 2);
    [RM3_*] = malloc-style allocator behind the shared pool
    (Experiment 3). *)

open Reclaim

type cfg = {
  backend : Exec.Backend.t;
      (** execution backend: [`Sim] (deterministic virtual time, the
          default everywhere) or [`Domains] (real OCaml 5 parallelism) *)
  machine : Machine.Config.t;
  params : Intf.Params.t;
  duration : int;
  n : int;
  range : int;
  ins : int;
  del : int;
  seed : int;
  capacity : int;
  sanitize : bool;  (** run the trial under the shadow-state sanitizer *)
  telemetry : Telemetry.Recorder.t option;
      (** attach a telemetry recorder: latency histograms, gauge time
          series, optional Chrome trace *)
  stall : (int * int) option;
      (** [(at, cycles)]: park the highest-pid process mid-operation at
          virtual time [at] for [cycles] — the E-stall campaign *)
  chaos : Chaos.plan option;
      (** fault-injection plan (crashes, signal faults, memory budget);
          armed after the prefill — the E-crash / E-oom campaigns *)
  budget : int;
      (** bounded-memory mode: headroom in records the trial may claim
          beyond what the prefill left claimed; negative = unlimited *)
  max_steps : int option;
      (** scheduler step budget: livelocks and fault-induced wedges raise
          {!Sim.Stuck} instead of spinning forever *)
  history : Lincheck.History.recorder option;
      (** record every operation (prefill included) as an
          invocation/response history for the linearizability checker *)
}

type runner = { rname : string; run : cfg -> Trial.outcome }

(* Resolve a cfg's backend to a RUNNER first-class module.  The sim knobs
   (machine model, step budget) configure the simulator; the domains
   backend ignores them and runs on the wall clock. *)
let exec_of cfg =
  Exec.Backend.runner ~machine:cfg.machine ?max_steps:cfg.max_steps
    cfg.backend

(* Experiment 1: reclaimers do all their work, but records go back to the
   bump allocator, which leaks them — no reuse, no pool. *)
module RM1_none = Record_manager.Make (Alloc.Bump) (Pool.Direct) (None_reclaimer.Make)
module RM1_debra = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Debra.Make)
module RM1_debra_plus =
  Record_manager.Make (Alloc.Bump) (Pool.Direct) (Debra_plus.Make)
module RM1_hp = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Hp.Make)
module RM1_ebr = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Ebr.Make)
module RM1_ts = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Threadscan.Make)
module RM1_st = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Stacktrack.Make)

(* Experiment 2: records are actually reclaimed through the shared pool. *)
module RM2_debra = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra.Make)
module RM2_debra_plus =
  Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra_plus.Make)
module RM2_hp = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Hp.Make)
module RM2_ebr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Ebr.Make)
module RM2_ts = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Threadscan.Make)
module RM2_st = Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Stacktrack.Make)
module RM2_qsbr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Qsbr.Make)
module RM2_rc = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Rc.Make)
module RM2_hyaline = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Hyaline.Make)

(* VBR must recycle through the arena: every free bumps the slot generation,
   which is the version a stale pointer fails to re-validate (vbr.ml). *)
module RM2_vbr = Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Vbr.Make)

(* Experiment 3: malloc-style allocator behind the same pool. *)
module RM3_none =
  Record_manager.Make (Alloc.Malloc) (Pool.Direct) (None_reclaimer.Make)
module RM3_debra = Record_manager.Make (Alloc.Malloc) (Pool.Shared) (Debra.Make)
module RM3_debra_plus =
  Record_manager.Make (Alloc.Malloc) (Pool.Shared) (Debra_plus.Make)
module RM3_hp = Record_manager.Make (Alloc.Malloc) (Pool.Shared) (Hp.Make)

module Make_bst_runner (RM : Intf.RECORD_MANAGER) = struct
  module R = Trial.Run (RM)
  module T = R.Face.Bst

  let runner label =
    {
      rname = label;
      run =
        (fun cfg ->
          R.trial R.Face.bst ~machine:cfg.machine ~params:cfg.params
            ~duration:cfg.duration ~capacity:cfg.capacity
            ~sanitize:cfg.sanitize ?telemetry:cfg.telemetry ?history:cfg.history ?stall:cfg.stall
            ?chaos:cfg.chaos ~budget:cfg.budget ?max_steps:cfg.max_steps
            ~exec:(exec_of cfg) ~n:cfg.n ~range:cfg.range ~ins:cfg.ins
            ~del:cfg.del ~seed:cfg.seed ());
    }
end

module Make_skiplist_runner (RM : Intf.RECORD_MANAGER) = struct
  module R = Trial.Run (RM)
  module S = R.Face.Skiplist

  let runner label =
    {
      rname = label;
      run =
        (fun cfg ->
          (* The lazy skip list keeps up to ~2*max_level preds/succs
             protected per traversal. *)
          let params =
            {
              cfg.params with
              Intf.Params.hp_slots = (2 * Ds.Skiplist.max_level) + 8;
            }
          in
          R.trial R.Face.skiplist ~machine:cfg.machine ~params
            ~duration:cfg.duration ~capacity:cfg.capacity
            ~sanitize:cfg.sanitize ?telemetry:cfg.telemetry ?history:cfg.history ?stall:cfg.stall
            ?chaos:cfg.chaos ~budget:cfg.budget ?max_steps:cfg.max_steps
            ~exec:(exec_of cfg) ~n:cfg.n ~range:cfg.range ~ins:cfg.ins
            ~del:cfg.del ~seed:cfg.seed ());
    }
end

module Make_list_runner (RM : Intf.RECORD_MANAGER) = struct
  module R = Trial.Run (RM)
  module L = R.Face.Hm_list

  let runner label =
    {
      rname = label;
      run =
        (fun cfg ->
          R.trial R.Face.hm_list ~machine:cfg.machine ~params:cfg.params
            ~duration:cfg.duration ~capacity:cfg.capacity
            ~sanitize:cfg.sanitize ?telemetry:cfg.telemetry ?history:cfg.history ?stall:cfg.stall
            ?chaos:cfg.chaos ~budget:cfg.budget ?max_steps:cfg.max_steps
            ~exec:(exec_of cfg) ~n:cfg.n ~range:cfg.range ~ins:cfg.ins
            ~del:cfg.del ~seed:cfg.seed ());
    }
end

(* BST runners per experiment *)
module B1_none = Make_bst_runner (RM1_none)
module B1_debra = Make_bst_runner (RM1_debra)
module B1_debra_plus = Make_bst_runner (RM1_debra_plus)
module B1_hp = Make_bst_runner (RM1_hp)
module B1_ebr = Make_bst_runner (RM1_ebr)
module B2_debra = Make_bst_runner (RM2_debra)
module B2_debra_plus = Make_bst_runner (RM2_debra_plus)
module B2_hp = Make_bst_runner (RM2_hp)
module B2_ebr = Make_bst_runner (RM2_ebr)
module B2_qsbr = Make_bst_runner (RM2_qsbr)
module B2_rc = Make_bst_runner (RM2_rc)
module B2_ts = Make_bst_runner (RM2_ts)
module B2_vbr = Make_bst_runner (RM2_vbr)
module B2_hyaline = Make_bst_runner (RM2_hyaline)
module B3_none = Make_bst_runner (RM3_none)
module B3_debra = Make_bst_runner (RM3_debra)
module B3_debra_plus = Make_bst_runner (RM3_debra_plus)
module B3_hp = Make_bst_runner (RM3_hp)

(* Skip-list runners (lock-based updates: no DEBRA+, as in the paper) *)
module S1_none = Make_skiplist_runner (RM1_none)
module S1_debra = Make_skiplist_runner (RM1_debra)
module S1_hp = Make_skiplist_runner (RM1_hp)
module S1_ts = Make_skiplist_runner (RM1_ts)
module S1_st = Make_skiplist_runner (RM1_st)
module S2_debra = Make_skiplist_runner (RM2_debra)
module S2_hp = Make_skiplist_runner (RM2_hp)
module S2_ts = Make_skiplist_runner (RM2_ts)
module S2_st = Make_skiplist_runner (RM2_st)
module S3_none = Make_skiplist_runner (RM3_none)
module S3_debra = Make_skiplist_runner (RM3_debra)
module S3_hp = Make_skiplist_runner (RM3_hp)

let bst_runners_exp1 =
  [
    B1_none.runner "none";
    B1_debra.runner "debra";
    B1_debra_plus.runner "debra+";
    B1_hp.runner "hp";
  ]

let bst_runners_exp2 =
  [
    B1_none.runner "none";
    B2_debra.runner "debra";
    B2_debra_plus.runner "debra+";
    B2_hp.runner "hp";
  ]

let bst_runners_exp3 =
  [
    B3_none.runner "none";
    B3_debra.runner "debra";
    B3_debra_plus.runner "debra+";
    B3_hp.runner "hp";
  ]

let skiplist_runners_exp1 =
  [
    S1_none.runner "none";
    S1_debra.runner "debra";
    S1_hp.runner "hp";
    S1_st.runner "stacktrack";
    S1_ts.runner "threadscan";
  ]

let skiplist_runners_exp2 =
  [
    S1_none.runner "none";
    S2_debra.runner "debra";
    S2_hp.runner "hp";
    S2_st.runner "stacktrack";
    S2_ts.runner "threadscan";
  ]

let skiplist_runners_exp3 =
  [ S3_none.runner "none"; S3_debra.runner "debra"; S3_hp.runner "hp" ]

(* Panel driver: one table per (structure, range, mix); schemes as columns,
   process counts as rows; cells in Mops/s with % overhead vs the first
   (baseline) column. *)
let run_panel ?(on_outcome = fun (_ : Trial.outcome) -> ()) ~title ~runners
    ~threads ~cfg_of () =
  let header =
    "procs"
    :: List.concat_map
         (fun r ->
           if r.rname = "none" then [ r.rname ] else [ r.rname; "vs none" ])
         runners
  in
  let series = List.map (fun r -> (r.rname, ref [])) runners in
  let backend = ref "sim" in
  let wall = ref 0. in
  let rows =
    List.map
      (fun n ->
        let outcomes =
          List.map
            (fun r ->
              let o = r.run (cfg_of n) in
              backend := o.Trial.backend;
              wall := !wall +. o.Trial.wall_seconds;
              on_outcome o;
              (r, o))
            runners
        in
        let base =
          match outcomes with (_, o) :: _ -> o.Trial.mops | [] -> 0.
        in
        string_of_int n
        :: List.concat_map
             (fun ((r : runner), (o : Trial.outcome)) ->
               let pts = List.assoc r.rname series in
               pts := (n, o.Trial.mops) :: !pts;
               let cell =
                 if o.Trial.oom then "OOM" else Report.fmt_mops o.Trial.mops
               in
               let cell =
                 match o.Trial.violations with
                 | Some v when v > 0 -> cell ^ "!SAN"
                 | _ -> cell
               in
               if r.rname = "none" then [ cell ]
               else [ cell; Report.fmt_pct (Report.rel ~base o.Trial.mops) ])
             outcomes)
      threads
  in
  Report.table ~title ~header ~rows;
  Printf.printf "  backend: %s, wall-clock %.2f s\n" !backend !wall;
  Report.chart ~title:(title ^ " — figure")
    ~series:(List.map (fun (name, pts) -> (name, List.rev !pts)) series)
    ()

let mix_name ins del =
  if ins + del = 100 then Printf.sprintf "%di-%dd" ins del
  else Printf.sprintf "%di-%dd-%ds" ins del (100 - ins - del)

(* Every implemented scheme on the same BST workload: the "scheme zoo". *)
let bst_runners_zoo =
  [
    B1_none.runner "none";
    B2_ebr.runner "ebr";
    B2_qsbr.runner "qsbr";
    B2_debra.runner "debra";
    B2_debra_plus.runner "debra+";
    B2_hp.runner "hp";
    B2_rc.runner "rc";
    B2_vbr.runner "vbr";
    B2_hyaline.runner "hyaline";
  ]

(* Name-indexed lookup for command-line drivers. *)
let by_name =
  [
    (("bst", "exp1"), bst_runners_exp1);
    (("bst", "zoo"), bst_runners_zoo);
    (("bst", "exp2"), bst_runners_exp2);
    (("bst", "exp3"), bst_runners_exp3);
    (("skiplist", "exp1"), skiplist_runners_exp1);
    (("skiplist", "exp2"), skiplist_runners_exp2);
    (("skiplist", "exp3"), skiplist_runners_exp3);
    ( ("list", "exp2"),
      let module L_none = Make_list_runner (RM1_none) in
      let module L_ebr = Make_list_runner (RM2_ebr) in
      let module L_debra = Make_list_runner (RM2_debra) in
      let module L_dplus = Make_list_runner (RM2_debra_plus) in
      let module L_hp = Make_list_runner (RM2_hp) in
      let module L_vbr = Make_list_runner (RM2_vbr) in
      let module L_hyaline = Make_list_runner (RM2_hyaline) in
      [
        L_none.runner "none";
        L_ebr.runner "ebr";
        L_debra.runner "debra";
        L_dplus.runner "debra+";
        L_hp.runner "hp";
        L_vbr.runner "vbr";
        L_hyaline.runner "hyaline";
      ] );
  ]

let find_runner ~ds ~variant ~scheme =
  match List.assoc_opt (ds, variant) by_name with
  | None -> None
  | Some runners -> List.find_opt (fun r -> r.rname = scheme) runners
