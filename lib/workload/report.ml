(** Plain-text table/series rendering for the benchmark harness: one table
    per figure panel, schemes as columns, process counts as rows — the same
    series the paper plots. *)

let hline widths =
  let b = Buffer.create 80 in
  Buffer.add_char b '+';
  List.iter
    (fun w ->
      Buffer.add_string b (String.make (w + 2) '-');
      Buffer.add_char b '+')
    widths;
  Buffer.contents b

let pad w s =
  let len = String.length s in
  if len >= w then s else String.make (w - len) ' ' ^ s

let row widths cells =
  let b = Buffer.create 80 in
  Buffer.add_char b '|';
  List.iter2
    (fun w c ->
      Buffer.add_char b ' ';
      Buffer.add_string b (pad w c);
      Buffer.add_string b " |")
    widths cells;
  Buffer.contents b

(** [table ~title ~header ~rows] prints a boxed table; the first column is
    the row label. *)
let table ~title ~header ~rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left
          (fun acc r -> max acc (String.length (List.nth r i)))
          0 all)
  in
  Printf.printf "\n%s\n" title;
  print_endline (hline widths);
  print_endline (row widths header);
  print_endline (hline widths);
  List.iter (fun r -> print_endline (row widths r)) rows;
  print_endline (hline widths)

(** [chart ~title ~series] renders line series (one mark per scheme) as an
    ASCII plot — the textual rendition of a paper figure panel.  X values
    are positioned proportionally (the paper's thread axis is linear). *)
let chart ?(width = 64) ?(height = 16) ?(xlabel = "(processes)") ~title
    ~series () =
  match series with
  | [] -> ()
  | _ ->
      let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |] in
      let all_pts = List.concat_map snd series in
      let xs = List.map fst all_pts and ys = List.map snd all_pts in
      let xmin = List.fold_left min max_int xs
      and xmax = List.fold_left max min_int xs in
      let ymax = List.fold_left max 0.0 ys in
      let ymax = if ymax <= 0. then 1. else ymax in
      let grid = Array.make_matrix height width ' ' in
      let put x y c =
        if x >= 0 && x < width && y >= 0 && y < height then grid.(y).(x) <- c
      in
      List.iteri
        (fun i (_, pts) ->
          let mark = marks.(i mod Array.length marks) in
          List.iter
            (fun (x, y) ->
              let gx =
                if xmax = xmin then 0
                else (x - xmin) * (width - 1) / (xmax - xmin)
              in
              let gy =
                height - 1 - int_of_float (y /. ymax *. float_of_int (height - 1))
              in
              put gx gy mark)
            pts)
        series;
      Printf.printf "\n%s\n" title;
      Array.iteri
        (fun i row ->
          let body = String.init width (fun j -> row.(j)) in
          if i = 0 then Printf.printf "%8.2f ┤%s\n" ymax body
          else Printf.printf "         │%s\n" body)
        grid;
      Printf.printf "%8.2f └%s\n" 0. (String.make width '-');
      Printf.printf "          %-8d%*d   %s\n" xmin (width - 10) xmax xlabel;
      Printf.printf "          legend: %s\n"
        (String.concat "  "
           (List.mapi
              (fun i (name, _) ->
                Printf.sprintf "%c=%s" marks.(i mod Array.length marks) name)
              series))

let fmt_mops v = Printf.sprintf "%.2f" v
let fmt_pct v = Printf.sprintf "%+.0f%%" v

let fmt_bytes v =
  if v > 10_000_000 then Printf.sprintf "%.1fMB" (float_of_int v /. 1e6)
  else if v > 10_000 then Printf.sprintf "%.0fKB" (float_of_int v /. 1e3)
  else Printf.sprintf "%dB" v

(** Relative throughput in percent vs. a baseline column. *)
let rel ~base v = if base = 0. then 0. else (v -. base) /. base *. 100.
