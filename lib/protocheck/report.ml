(** Protocol-check results and the [PROTOCHECK_REPORT.json] writer. *)

type structure = List | Bst | Queue | Skiplist

let structure_name = function
  | List -> "hm_list"
  | Bst -> "efrb_bst"
  | Queue -> "ms_queue"
  | Skiplist -> "skiplist"

(** The first violating path of a cell: which decision indices the oracle
    answered adversarially, the decision log of that path, and the
    violations (each carrying its own event trace). *)
type counterexample = {
  deny : int list;
  decisions : string list;
  violations : Engine.violation list;
}

type cell_result = {
  structure : string;
  scheme : string;
  paths : int;  (** symbolic paths explored *)
  branch_points : int;  (** decision points on the all-grant path *)
  diverged : int;
      (** paths that exhausted their budget: the structure stopped making
          progress under adversarial decisions (lock-freedom loss, e.g. HP
          on the helping tree — paper §3); not a protocol violation *)
  crashed : int;  (** paths stopped by an arena generation trap *)
  violations : int;  (** protocol violations summed over all paths *)
  counterexample : counterexample option;
}

let clean c = c.violations = 0 && c.crashed = 0

(* --- hand-rolled JSON (no external dependencies) --- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = Printf.sprintf "\"%s\"" (escape s)

let json_list f l = "[" ^ String.concat "," (List.map f l) ^ "]"

let json_violation (v : Engine.violation) =
  Printf.sprintf
    "{\"kind\":%s,\"pid\":%d,\"seq\":%d,\"record\":%s,\"detail\":%s,\"trace\":%s}"
    (json_string (Engine.kind_name v.Engine.kind))
    v.Engine.pid v.Engine.seq
    (json_string (Memory.Ptr.to_string v.Engine.ptr))
    (json_string v.Engine.detail)
    (json_list json_string v.Engine.trace)

let json_counterexample = function
  | None -> "null"
  | Some ce ->
      Printf.sprintf "{\"deny\":%s,\"decisions\":%s,\"violations\":%s}"
        (json_list string_of_int ce.deny)
        (json_list json_string ce.decisions)
        (json_list json_violation ce.violations)

let json_cell c =
  Printf.sprintf
    "{\"structure\":%s,\"scheme\":%s,\"paths\":%d,\"branch_points\":%d,\"diverged\":%d,\"crashed\":%d,\"violations\":%d,\"clean\":%b,\"counterexample\":%s}"
    (json_string c.structure) (json_string c.scheme) c.paths c.branch_points
    c.diverged c.crashed c.violations (clean c)
    (json_counterexample c.counterexample)

let to_json cells =
  let total_paths = List.fold_left (fun a c -> a + c.paths) 0 cells in
  let dirty = List.filter (fun c -> not (clean c)) cells in
  Printf.sprintf
    "{\"cells\":%d,\"paths\":%d,\"violating_cells\":%d,\"results\":%s}\n"
    (List.length cells) total_paths (List.length dirty)
    (json_list json_cell cells)

let write ~path cells =
  let oc = open_out path in
  output_string oc (to_json cells);
  close_out oc

let summary c =
  Printf.sprintf "%-10s x %-10s %4d paths, %3d branch points, %s%s" c.structure
    c.scheme c.paths c.branch_points
    (if clean c then "clean" else Printf.sprintf "%d VIOLATIONS" c.violations)
    (if c.diverged > 0 then
       Printf.sprintf " (%d diverged: progress lost under adversary)"
         c.diverged
     else "")
