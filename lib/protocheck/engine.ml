(** The protocheck analysis engine: an abstract interpreter over the SMR
    protocol event streams.

    The engine consumes two streams at once — the {!Memory.Smr_event} hub
    (the same lifecycle/protection/quiescence stream the runtime sanitizer
    replays) and the witness-level {!Reclaim.Intf.Protocol} events emitted
    by the typed Record Manager surface — and checks every path the
    {!Oracle} drives the structure down against the protocol rules:

    - E0 [Use_after_free]/[Double_free]: no access to, and no second free
      of, a freed incarnation (skipped under [Lenient], i.e. StackTrack,
      where reading reclaimed memory is the sanctioned abort mechanism).
    - E1 [Unprotected_access]: under a hazard-class scheme, access to a
      retired record requires a protection registered before the retire;
      in [strict] mode (fully-guarded structures only) {e every} access to
      a published record requires a live protection.
    - E2 [Unquiesced_access]: no access to a shared record outside a
      session ([Leave_q]..[Enter_q]) — the Fig. 5 operation-boundary
      discipline, with the quiescent preamble/postamble exemption for a
      record still private to its allocator.
    - E3 [Premature_free]: the free-side grace/hazard rules, replayed with
      the same retire-time snapshots as the sanitizer (open sessions for
      session-based schemes, quiescent-point counters for QSBR, pre-retire
      hazards for the scan-based family, recovery announcements always).
    - R4 [Retire_without_unlink]: a retire must consume an [unlinked]
      witness — a hub [Retire] with no pending {!Protocol.Unlink} for the
      record means the structure bypassed the typed surface.
    - R5 [Skipped_validation]: an [acquire] the oracle adversarially
      failed that a hazard-class scheme granted anyway means the scheme
      skipped its post-announce validation step (the broken-hp bug).

    Violations deduplicate per (kind, record) and carry a bounded trace of
    the events leading up to them — the per-path counterexample. *)

type discipline = Lenient | Epoch | Hazard
type free_rule = Skip | Grace_session | Grace_qpoint | Hazard_scan

(* Whether quiescence is an {e interval} the process brackets with
   [Leave_q]..[Enter_q] (every scheme but QSBR) or an instantaneous
   {e point} it announces ([Enter_q] with no bracket, QSBR).  The
   operation-boundary access rule (E2) is only meaningful for intervals:
   under point quiescence a process is presumed inside a critical section
   at all times. *)
type quiescence = Interval | Point

type config = {
  scheme : string;
  access : discipline;
  free : free_rule;
  quiescence : quiescence;
  strict : bool;
      (* every access to a published record needs a live protection;
         only meaningful under [Hazard], only sound for structures whose
         every dereference is guarded (list, queue) *)
}

(* Mirror of [Sanitizer.Config.of_flags], plus the strict knob. *)
let config_of_flags ~scheme ~allows_retired_traversal ~sandboxed ~strict () =
  if sandboxed then
    {
      scheme;
      access = Lenient;
      free = Skip;
      quiescence = Interval;
      strict = false;
    }
  else
    match scheme with
    | "none" ->
        {
          scheme;
          access = Epoch;
          free = Skip;
          quiescence = Interval;
          strict = false;
        }
    | "qsbr" ->
        {
          scheme;
          access = Epoch;
          free = Grace_qpoint;
          quiescence = Point;
          strict = false;
        }
    | "threadscan" ->
        {
          scheme;
          access = Epoch;
          free = Hazard_scan;
          quiescence = Interval;
          strict = false;
        }
    | "hyaline" ->
        (* batch refcounts replay the retire-time session snapshot *)
        {
          scheme;
          access = Epoch;
          free = Grace_session;
          quiescence = Interval;
          strict = false;
        }
    | _ ->
        if allows_retired_traversal then
          {
            scheme;
            access = Epoch;
            free = Grace_session;
            quiescence = Interval;
            strict = false;
          }
        else
          {
            scheme;
            access = Hazard;
            free = Hazard_scan;
            quiescence = Interval;
            strict;
          }

type kind =
  | Use_after_free
  | Double_free
  | Unprotected_access
  | Unquiesced_access
  | Premature_free
  | Retire_without_unlink
  | Skipped_validation

let kind_name = function
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Unprotected_access -> "unprotected-access"
  | Unquiesced_access -> "unquiesced-access"
  | Premature_free -> "premature-free"
  | Retire_without_unlink -> "retire-without-unlink"
  | Skipped_validation -> "skipped-validation"

type violation = {
  kind : kind;
  pid : int;
  seq : int;
  ptr : Memory.Ptr.t;
  detail : string;
  trace : string list;  (** the events leading up to the violation *)
}

(** A path exceeded its decision or event budget: the structure stopped
    making progress under the oracle's adversarial answers (e.g. HP's loss
    of lock-freedom on the BST, paper §3).  Not a protocol violation. *)
exception Diverged of string

(* Abstract record lifecycle.  [typed] distinguishes records announced
   through the typed surface (a [Protocol.Fresh] followed the allocation)
   from raw allocations, which are conservatively promoted to [Published]
   at their owner's next operation start. *)
type rstate = Fresh | Published | Root | Retired | Freed

type rinfo = {
  mutable state : rstate;
  mutable owner : int;
  mutable typed : bool;
  mutable unlink_pending : bool;
  mutable retire_seq : int;
  mutable grace : (int * int) array;
  mutable qsnap : int array;
}

type pstate = {
  mutable in_session : bool;
  mutable session : int;
  mutable qcount : int;
  hazards : (int, int list ref) Hashtbl.t;
  rprotects : (int, int list ref) Hashtbl.t;
}

type entry = Hub of Memory.Smr_event.t | Proto of Reclaim.Intf.Protocol.event

let trace_cap = 48

type t = {
  config : config;
  records : (int, rinfo) Hashtbl.t;
  procs : pstate array;
  mutable seq : int;
  mutable viols : violation list;  (* newest first *)
  mutable nviols : int;
  seen : (kind * int, unit) Hashtbl.t;
  ring : (int * int * entry) option array;  (* (seq, pid, entry) *)
  mutable rpos : int;
  event_budget : int;
}

let create ?(event_budget = 500_000) ~config ~nprocs () =
  {
    config;
    records = Hashtbl.create 1024;
    procs =
      Array.init nprocs (fun _ ->
          {
            in_session = false;
            session = 0;
            qcount = 0;
            hazards = Hashtbl.create 16;
            rprotects = Hashtbl.create 16;
          });
    seq = 0;
    viols = [];
    nviols = 0;
    seen = Hashtbl.create 64;
    ring = Array.make trace_cap None;
    rpos = 0;
    event_budget;
  }

let describe_entry = function
  | Hub ev -> (
      let p fmt ptr = Printf.sprintf fmt (Memory.Ptr.to_string ptr) in
      match ev with
      | Memory.Smr_event.Alloc ptr -> p "alloc %s" ptr
      | Free ptr -> p "free %s" ptr
      | Access (ptr, Memory.Smr_event.Read) -> p "read %s" ptr
      | Access (ptr, Write) -> p "write %s" ptr
      | Access (ptr, Cas) -> p "cas %s" ptr
      | Pool_put ptr -> p "pool-put %s" ptr
      | Pool_take ptr -> p "pool-take %s" ptr
      | Retire ptr -> p "retire %s" ptr
      | Protect ptr -> p "protect %s" ptr
      | Unprotect ptr -> p "unprotect %s" ptr
      | Unprotect_all -> "unprotect-all"
      | Enter_q -> "enter-qstate"
      | Leave_q -> "leave-qstate"
      | Rprotect ptr -> p "rprotect %s" ptr
      | Runprotect_all -> "runprotect-all"
      | Epoch_advance e -> Printf.sprintf "epoch-advance %d" e
      | Signal_sent target -> Printf.sprintf "signal-sent %d" target
      | Sweep n -> Printf.sprintf "sweep %d" n)
  | Proto ev -> (
      let p fmt ptr = Printf.sprintf fmt (Memory.Ptr.to_string ptr) in
      match ev with
      | Reclaim.Intf.Protocol.Fresh ptr -> p "FRESH %s" ptr
      | Publish ptr -> p "PUBLISH %s" ptr
      | Abandon ptr -> p "ABANDON %s" ptr
      | Root ptr -> p "ROOT %s" ptr
      | Unlink ptr -> p "UNLINK %s" ptr
      | Acquire { p = ptr; granted; adversary } ->
          Printf.sprintf "ACQUIRE %s granted=%b adversary=%b"
            (Memory.Ptr.to_string ptr)
            granted adversary)

let snapshot_trace t =
  let out = ref [] in
  for i = trace_cap - 1 downto 0 do
    match t.ring.((t.rpos + trace_cap - 1 - i) mod trace_cap) with
    | None -> ()
    | Some (seq, pid, e) ->
        out :=
          Printf.sprintf "#%d pid%d %s" seq pid (describe_entry e) :: !out
  done;
  List.rev !out

let push_trace t pid entry =
  t.ring.(t.rpos) <- Some (t.seq, pid, entry);
  t.rpos <- (t.rpos + 1) mod trace_cap

let flag t ~pid kind ~ptr ~detail =
  let key = (kind, Memory.Ptr.unmark ptr) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.nviols <- t.nviols + 1;
    t.viols <-
      { kind; pid; seq = t.seq; ptr; detail; trace = snapshot_trace t }
      :: t.viols
  end

(* Protection multisets, as in the sanitizer. *)
let push_prot tbl key seq =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := seq :: !l
  | None -> Hashtbl.add tbl key (ref [ seq ])

let pop_prot tbl key =
  match Hashtbl.find_opt tbl key with
  | Some l -> (
      match !l with
      | [] | [ _ ] -> Hashtbl.remove tbl key
      | _ :: rest -> l := rest)
  | None -> ()

let holds_before tbl key ~retire =
  match Hashtbl.find_opt tbl key with
  | Some l -> List.exists (fun s -> s < retire) !l
  | None -> false

let holds_any tbl key = Hashtbl.mem tbl key

let fresh_rinfo ~owner ~state ~typed =
  {
    state;
    owner;
    typed;
    unlink_pending = false;
    retire_seq = -1;
    grace = [||];
    qsnap = [||];
  }

let record t key ~default =
  match Hashtbl.find_opt t.records key with
  | Some r -> r
  | None ->
      let r = fresh_rinfo ~owner:(-1) ~state:default ~typed:false in
      Hashtbl.replace t.records key r;
      r

(* E3: the free-side grace/hazard rules (sanitizer parity, minus the
   crash-awareness protocheck paths never need). *)
let check_free t ~pid r key ptr =
  (match t.config.free with
  | Skip -> ()
  | Grace_session ->
      Array.iter
        (fun (spid, session) ->
          let p = t.procs.(spid) in
          if p.in_session && p.session = session then
            flag t ~pid Premature_free ~ptr
              ~detail:
                (Printf.sprintf
                   "pid %d is still inside the session open at retire" spid))
        r.grace
  | Grace_qpoint ->
      Array.iteri
        (fun spid snap ->
          if t.procs.(spid).qcount = snap then
            flag t ~pid Premature_free ~ptr
              ~detail:
                (Printf.sprintf "pid %d passed no quiescent point since retire"
                   spid))
        r.qsnap
  | Hazard_scan ->
      Array.iteri
        (fun spid p ->
          if holds_before p.hazards key ~retire:r.retire_seq then
            flag t ~pid Premature_free ~ptr
              ~detail:
                (Printf.sprintf
                   "pid %d holds a protection registered before retire" spid))
        t.procs);
  if t.config.free <> Skip then
    Array.iteri
      (fun spid p ->
        if holds_any p.rprotects key then
          flag t ~pid Premature_free ~ptr
            ~detail:(Printf.sprintf "pid %d holds a recovery announcement" spid))
      t.procs

let on_free t ~pid key ptr ~via =
  match Hashtbl.find_opt t.records key with
  | None ->
      Hashtbl.replace t.records key
        (fresh_rinfo ~owner:(-1) ~state:Freed ~typed:false)
  | Some r -> (
      match r.state with
      | Fresh | Published | Root -> r.state <- Freed
      | Retired ->
          check_free t ~pid r key ptr;
          r.state <- Freed
      | Freed ->
          flag t ~pid Double_free ~ptr ~detail:(Printf.sprintf "second %s" via))

let check_access t ~pid key ptr =
  let ps = t.procs.(pid) in
  let r = record t key ~default:Published in
  match r.state with
  | Freed ->
      if t.config.access <> Lenient then
        flag t ~pid Use_after_free ~ptr ~detail:"access to freed record"
  | Root -> ()
  | Fresh when pid = r.owner -> ()
  | (Fresh | Published | Retired) as st ->
      if
        t.config.access <> Lenient
        && t.config.quiescence = Interval
        && not ps.in_session
      then
        flag t ~pid Unquiesced_access ~ptr
          ~detail:"access to a shared record outside a session";
      (match st with
      | Fresh -> r.state <- Published (* first non-owner access publishes *)
      | Retired ->
          if
            t.config.access = Hazard
            && not (holds_before ps.hazards key ~retire:r.retire_seq)
          then
            flag t ~pid Unprotected_access ~ptr
              ~detail:
                "access to retired record without a protection registered \
                 before retire"
      | Published ->
          if
            t.config.strict
            && t.config.access = Hazard
            && not (holds_any ps.hazards key)
          then
            flag t ~pid Unprotected_access ~ptr
              ~detail:"access to shared record without a live protection"
      | Root | Freed -> ())

let on_retire t ~pid key ptr =
  let r = record t key ~default:Published in
  if not r.unlink_pending then
    flag t ~pid Retire_without_unlink ~ptr
      ~detail:"retire without an unlink witness for this record";
  r.unlink_pending <- false;
  (match r.state with
  | Fresh | Published | Root -> ()
  | Retired | Freed -> ());
  if r.state <> Freed then begin
    r.state <- Retired;
    r.retire_seq <- t.seq;
    match t.config.free with
    | Grace_session ->
        let open_sessions = ref [] in
        Array.iteri
          (fun i p ->
            if p.in_session then open_sessions := (i, p.session) :: !open_sessions)
          t.procs;
        r.grace <- Array.of_list !open_sessions
    | Grace_qpoint -> r.qsnap <- Array.map (fun p -> p.qcount) t.procs
    | Skip | Hazard_scan -> ()
  end

let bump t =
  t.seq <- t.seq + 1;
  if t.seq > t.event_budget then
    raise
      (Diverged
         (Printf.sprintf "event budget (%d) exhausted" t.event_budget))

let on_hub t ctx (ev : Memory.Smr_event.t) =
  bump t;
  let pid = ctx.Runtime.Ctx.pid in
  push_trace t pid (Hub ev);
  let ps = t.procs.(pid) in
  match ev with
  | Alloc p | Pool_take p ->
      Hashtbl.replace t.records (Memory.Ptr.unmark p)
        (fresh_rinfo ~owner:pid ~state:Fresh ~typed:false)
  | Free p -> on_free t ~pid (Memory.Ptr.unmark p) p ~via:"arena free"
  | Pool_put p -> on_free t ~pid (Memory.Ptr.unmark p) p ~via:"pool put"
  | Access (p, _) -> check_access t ~pid (Memory.Ptr.unmark p) p
  | Retire p -> on_retire t ~pid (Memory.Ptr.unmark p) p
  | Protect p -> push_prot ps.hazards (Memory.Ptr.unmark p) t.seq
  | Unprotect p -> pop_prot ps.hazards (Memory.Ptr.unmark p)
  | Unprotect_all -> Hashtbl.reset ps.hazards
  | Rprotect p -> push_prot ps.rprotects (Memory.Ptr.unmark p) t.seq
  | Runprotect_all -> Hashtbl.reset ps.rprotects
  | Leave_q ->
      ps.session <- ps.session + 1;
      ps.in_session <- true;
      (* Raw allocations become reachable no later than their owner's next
         operation: promote them so unguarded traversals are checkable. *)
      Hashtbl.iter
        (fun _ r ->
          if r.state = Fresh && (not r.typed) && r.owner = pid then
            r.state <- Published)
        t.records
  | Enter_q ->
      ps.in_session <- false;
      ps.qcount <- ps.qcount + 1
  | Epoch_advance _ | Signal_sent _ | Sweep _ -> ()

let on_protocol t ctx (ev : Reclaim.Intf.Protocol.event) =
  bump t;
  let pid = ctx.Runtime.Ctx.pid in
  push_trace t pid (Proto ev);
  match ev with
  | Fresh p ->
      let r = record t (Memory.Ptr.unmark p) ~default:Fresh in
      r.typed <- true;
      r.owner <- pid
  | Publish p ->
      let r = record t (Memory.Ptr.unmark p) ~default:Published in
      if r.state = Fresh then r.state <- Published
  | Abandon _ -> () (* the pool/arena release event follows *)
  | Root p ->
      let r = record t (Memory.Ptr.unmark p) ~default:Root in
      r.state <- Root
  | Unlink p ->
      let r = record t (Memory.Ptr.unmark p) ~default:Published in
      r.unlink_pending <- true
  | Acquire { p; granted; adversary } ->
      if granted && adversary && t.config.access = Hazard then
        flag t ~pid Skipped_validation ~ptr:p
          ~detail:
            "protect granted although the validation was forced to fail: \
             the scheme skipped its post-announce verify"

(* Attach to a world: hub sink + typed-surface monitor.  Returns the
   detach closure. *)
let attach t (env : Reclaim.Intf.Env.t) =
  let sub =
    Memory.Heap.add_sink env.Reclaim.Intf.Env.heap (fun ctx ev ->
        on_hub t ctx ev)
  in
  env.Reclaim.Intf.Env.monitor <- Some (fun ctx ev -> on_protocol t ctx ev);
  fun () ->
    Memory.Heap.remove_sink env.Reclaim.Intf.Env.heap sub;
    env.Reclaim.Intf.Env.monitor <- None

let violations t = List.rev t.viols
let violation_count t = t.nviols
let has t kind = List.exists (fun v -> v.kind = kind) t.viols
let events_seen t = t.seq

let pp_violation fmt v =
  Format.fprintf fmt "[%s] pid %d, event #%d, record %s: %s" (kind_name v.kind)
    v.pid v.seq
    (Memory.Ptr.to_string v.ptr)
    v.detail
