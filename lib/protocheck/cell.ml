(** One matrix cell: a (structure, scheme) pair explored symbolically.

    The structure runs {e directly} — no simulator, one process — against a
    scripted workload that exercises every lifecycle edge (allocate,
    publish, duplicate-insert abandon, unlink, retire, recycle).
    Concurrency is replaced by the branching {!Oracle}: each explored path
    re-runs the whole script in a fresh world with a different set of
    guard/CAS decisions answered adversarially, so both branches of every
    guard acquisition and every lifecycle CAS reachable within the deny
    budget are visited.  The {!Engine} checks every path against the
    protocol rules; a cell is clean when no path produces a violation or a
    crash. *)

open Reclaim

(* Fresh-world parameters: tiny thresholds so retire/scan/advance paths are
   reached by a short script; enough HP slots for the skiplist's towers;
   ThreadScan buffers everything until the final flush (its signal-scan is
   genuinely unsound under concurrent traversal — moot single-process, but
   keep the sanitizer-matrix configuration). *)
let params =
  {
    Intf.Params.default with
    Intf.Params.block_capacity = 4;
    check_thresh = 1;
    incr_thresh = 1;
    pool_cap_blocks = 2;
    hp_slots = 48;
    hp_retire_factor = 1;
    suspect_blocks = 1;
    st_segment_accesses = 4;
    ts_buffer_blocks = 1000;
  }

let capacity = 512
let single_cap = 64
let pair_window = 2
let path_cap = 256

type path_result = {
  outcome : [ `Ok | `Diverged of string | `Crashed of string ];
  violations : Engine.violation list;
  decisions : int;
  decision_log : string list;
}

module Make (RM : Intf.RECORD_MANAGER) = struct
  module L = Ds.Hm_list.Make (RM)
  module B = Ds.Efrb_bst.Make (RM)
  module Q = Ds.Ms_queue.Make (RM)
  module S = Ds.Skiplist.Make (RM)

  (* Quiescent shutdown: enough operation boundaries to expire every grace
     period, then flush the remaining limbo. *)
  let drain group rm =
    for _ = 1 to 30 do
      Array.iter
        (fun ctx ->
          RM.leave_qstate rm ctx;
          RM.enter_qstate rm ctx)
        group.Runtime.Group.ctxs
    done;
    RM.flush rm (Runtime.Group.ctx group 0)

  (* Scripts hit every lifecycle edge: fresh→publish, fresh→abandon
     (duplicate insert), unlink→retire, miss paths, reuse of a freed key. *)

  let script_list group rm =
    let t = L.create rm ~capacity in
    let ctx = Runtime.Group.ctx group 0 in
    ignore (L.insert t ctx ~key:5 ~value:50);
    ignore (L.insert t ctx ~key:3 ~value:30);
    ignore (L.insert t ctx ~key:8 ~value:80);
    ignore (L.insert t ctx ~key:3 ~value:99);
    (* duplicate: abandon *)
    ignore (L.contains t ctx 3);
    ignore (L.contains t ctx 9);
    ignore (L.delete t ctx 3);
    ignore (L.get t ctx 8);
    ignore (L.delete t ctx 42);
    ignore (L.insert t ctx ~key:3 ~value:31);
    ignore (L.delete t ctx 5)

  let script_bst group rm =
    let t = B.create rm ~capacity in
    let ctx = Runtime.Group.ctx group 0 in
    ignore (B.insert t ctx ~key:5 ~value:50);
    ignore (B.insert t ctx ~key:3 ~value:30);
    ignore (B.insert t ctx ~key:8 ~value:80);
    ignore (B.insert t ctx ~key:5 ~value:99);
    (* duplicate: abandon *)
    ignore (B.contains t ctx 3);
    ignore (B.contains t ctx 9);
    ignore (B.delete t ctx 3);
    ignore (B.get t ctx 8);
    ignore (B.delete t ctx 42);
    ignore (B.insert t ctx ~key:3 ~value:31);
    ignore (B.delete t ctx 5)

  let script_queue group rm =
    let t = Q.create rm ~capacity in
    let ctx = Runtime.Group.ctx group 0 in
    Q.enqueue t ctx 10;
    Q.enqueue t ctx 20;
    Q.enqueue t ctx 30;
    ignore (Q.dequeue t ctx);
    ignore (Q.dequeue t ctx);
    Q.enqueue t ctx 40;
    ignore (Q.dequeue t ctx);
    ignore (Q.dequeue t ctx);
    ignore (Q.dequeue t ctx) (* empty *)

  let script_skiplist group rm =
    let t = S.create rm ~capacity in
    let ctx = Runtime.Group.ctx group 0 in
    ignore (S.insert t ctx ~key:5 ~value:50);
    ignore (S.insert t ctx ~key:3 ~value:30);
    ignore (S.insert t ctx ~key:8 ~value:80);
    ignore (S.insert t ctx ~key:5 ~value:99);
    (* duplicate: abandon *)
    ignore (S.contains t ctx 3);
    ignore (S.contains t ctx 9);
    ignore (S.delete t ctx 3);
    ignore (S.get t ctx 8);
    ignore (S.delete t ctx 42);
    ignore (S.insert t ctx ~key:3 ~value:31);
    ignore (S.delete t ctx 5)

  let script = function
    | Report.List -> script_list
    | Report.Bst -> script_bst
    | Report.Queue -> script_queue
    | Report.Skiplist -> script_skiplist

  (* One symbolic path: a fresh world, the engine on both event streams,
     the oracle answering [Adversary] exactly at the [deny] indices. *)
  let run_path ~config ~structure ~deny =
    let group = Runtime.Group.create ~seed:1 1 in
    let heap = Memory.Heap.create () in
    let env = Intf.Env.create ~params group heap in
    let rm = RM.create env in
    let eng = Engine.create ~config ~nprocs:1 () in
    let orc = Oracle.create ~deny () in
    let detach_engine = Engine.attach eng env in
    let detach_oracle = Oracle.attach orc env in
    let outcome =
      try
        script structure group rm;
        drain group rm;
        `Ok
      with
      | Engine.Diverged msg -> `Diverged msg
      | Memory.Arena.Use_after_free _ -> `Crashed "use-after-free trap"
      | Memory.Arena.Double_free _ -> `Crashed "double-free trap"
    in
    detach_engine ();
    detach_oracle ();
    {
      outcome;
      violations = Engine.violations eng;
      decisions = Oracle.decisions orc;
      decision_log = Oracle.log orc;
    }

  (* Fully-guarded structures opt into the strict rule (every access to a
     shared record needs a live protection) under hazard-class schemes; the
     lifecycle-tier structures (bst, skiplist) retain raw traversals by
     design and are checked against the standard retired-access rule. *)
  let strict_for = function
    | Report.List | Report.Queue -> true
    | Report.Bst | Report.Skiplist -> false

  let config_for ~scheme structure =
    Engine.config_of_flags ~scheme
      ~allows_retired_traversal:RM.allows_retired_traversal
      ~sandboxed:RM.sandboxed
      ~strict:(strict_for structure) ()

  (* Path enumeration: the all-grant path, then every single adversarial
     denial of a branch point it reached, then nearby pairs (deny budget
     2) for depth. *)
  let deny_sets n0 =
    let sets = ref [] in
    for i = n0 - 1 downto 0 do
      for w = pair_window downto 1 do
        if i + w < n0 then sets := [ i; i + w ] :: !sets
      done;
      sets := [ i ] :: !sets
    done;
    List.filteri (fun i _ -> i < path_cap) !sets

  let check ~scheme structure =
    let config = config_for ~scheme structure in
    let base = run_path ~config ~structure ~deny:[] in
    let n0 = min base.decisions single_cap in
    let paths =
      (([], base)
      :: List.map
           (fun deny -> (deny, run_path ~config ~structure ~deny))
           (deny_sets n0))
    in
    let diverged = ref 0 and crashed = ref 0 and nviols = ref 0 in
    let counterexample = ref None in
    List.iter
      (fun (deny, p) ->
        (match p.outcome with
        | `Ok -> ()
        | `Diverged _ -> incr diverged
        | `Crashed _ -> incr crashed);
        nviols := !nviols + List.length p.violations;
        if p.violations <> [] && !counterexample = None then
          counterexample :=
            Some
              {
                Report.deny;
                decisions = p.decision_log;
                violations = p.violations;
              })
      paths;
    {
      Report.structure = Report.structure_name structure;
      scheme;
      paths = List.length paths;
      branch_points = base.decisions;
      diverged = !diverged;
      crashed = !crashed;
      violations = !nviols;
      counterexample = !counterexample;
    }
end
