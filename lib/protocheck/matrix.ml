(** The full protocheck matrix: 4 structures x 11 schemes, the same
    allocator/pool pairings as the benchmark and sanitizer matrices (shared
    pool behind the epoch schemes, direct pool for the HP family, recycling
    allocator for StackTrack and VBR, whose version story lives in the
    arena generation counters). *)

open Reclaim

module RM_ebr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Ebr.Make)
module RM_qsbr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Qsbr.Make)
module RM_debra = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra.Make)
module RM_debra_plus =
  Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra_plus.Make)
module RM_hp = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Hp.Make)
module RM_rc = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Rc.Make)
module RM_ts = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Threadscan.Make)
module RM_st =
  Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Stacktrack.Make)
module RM_none =
  Record_manager.Make (Alloc.Bump) (Pool.Direct) (None_reclaimer.Make)
module RM_vbr = Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Vbr.Make)
module RM_hyaline =
  Record_manager.Make (Alloc.Bump) (Pool.Shared) (Hyaline.Make)

module C_ebr = Cell.Make (RM_ebr)
module C_qsbr = Cell.Make (RM_qsbr)
module C_debra = Cell.Make (RM_debra)
module C_debra_plus = Cell.Make (RM_debra_plus)
module C_hp = Cell.Make (RM_hp)
module C_rc = Cell.Make (RM_rc)
module C_ts = Cell.Make (RM_ts)
module C_st = Cell.Make (RM_st)
module C_none = Cell.Make (RM_none)
module C_vbr = Cell.Make (RM_vbr)
module C_hyaline = Cell.Make (RM_hyaline)

let structures = [ Report.List; Report.Bst; Report.Queue; Report.Skiplist ]

let check_structure s =
  [
    C_none.check ~scheme:"none" s;
    C_ebr.check ~scheme:"ebr" s;
    C_qsbr.check ~scheme:"qsbr" s;
    C_debra.check ~scheme:"debra" s;
    C_debra_plus.check ~scheme:"debra+" s;
    C_hp.check ~scheme:"hp" s;
    C_rc.check ~scheme:"rc" s;
    C_ts.check ~scheme:"threadscan" s;
    C_st.check ~scheme:"stacktrack" s;
    C_vbr.check ~scheme:"vbr" s;
    C_hyaline.check ~scheme:"hyaline" s;
  ]

let all () = List.concat_map check_structure structures
