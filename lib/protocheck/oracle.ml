(** The branching oracle: drives a structure down one symbolic path.

    Every [Typed.acquire] and every lifecycle CAS consults
    {!Reclaim.Intf.Env.decide}; the oracle numbers those decision points in
    program order and answers [Adversary] exactly at the indices in its
    [deny] set — simulating a failed validation or a lost CAS without any
    concurrent process.  Because an index is consumed once, a retry loop
    that re-reaches the same static site draws a fresh index and (outside
    the deny set) gets [Grant], so every path terminates unless the
    structure itself has lost lock-freedom — which the decision budget
    converts into {!Engine.Diverged} rather than a hang. *)

type t = {
  deny : int list;
  budget : int;
  mutable count : int;
  mutable log : string list;  (* newest first *)
}

let create ?(budget = 20_000) ~deny () = { deny; budget; count = 0; log = [] }

let describe_point = function
  | Reclaim.Intf.Protocol.Acquire_point p ->
      Printf.sprintf "acquire %s" (Memory.Ptr.to_string p)
  | Cas_point p -> Printf.sprintf "cas@%s" (Memory.Ptr.to_string p)

let decide t _ctx point =
  let i = t.count in
  t.count <- t.count + 1;
  if t.count > t.budget then
    raise
      (Engine.Diverged
         (Printf.sprintf "decision budget (%d) exhausted" t.budget));
  let d =
    if List.mem i t.deny then Reclaim.Intf.Protocol.Adversary
    else Reclaim.Intf.Protocol.Grant
  in
  t.log <-
    Printf.sprintf "#%d %s -> %s" i (describe_point point)
      (match d with Grant -> "grant" | Adversary -> "adversary")
    :: t.log;
  d

let attach t (env : Reclaim.Intf.Env.t) =
  env.Reclaim.Intf.Env.oracle <- Some (fun ctx point -> decide t ctx point);
  fun () -> env.Reclaim.Intf.Env.oracle <- None

let decisions t = t.count
let log t = List.rev t.log
