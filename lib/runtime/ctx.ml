type access_kind = Read | Write | Cas | Fence | Work of int

exception Neutralized
exception Crashed

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable cass : int;
  mutable fences : int;
  mutable local_work : int;
  mutable allocs : int;
  mutable frees : int;
  mutable retires : int;
  mutable ops : int;
  mutable neutralized : int;
  mutable signals_sent : int;
  mutable signals_ignored : int;
}

type t = {
  pid : int;
  nprocs : int;
  sig_pending : bool Atomic.t;
  mutable sig_mask : int;
  mutable handler : t -> unit;
  mutable hook : t -> line:int -> access_kind -> unit;
  mutable now_impl : unit -> int;
  mutable stall_impl : int -> unit;
  mutable rng : Random.State.t;
  stats : stats;
}

let fresh_stats () =
  {
    reads = 0;
    writes = 0;
    cass = 0;
    fences = 0;
    local_work = 0;
    allocs = 0;
    frees = 0;
    retires = 0;
    ops = 0;
    neutralized = 0;
    signals_sent = 0;
    signals_ignored = 0;
  }

let make ~pid ~nprocs ~seed =
  {
    pid;
    nprocs;
    sig_pending = Atomic.make false;
    sig_mask = 0;
    handler = (fun _ -> ());
    hook = (fun _ ~line:_ _ -> ());
    now_impl = (fun () -> 0);
    stall_impl = (fun _ -> ());
    rng = Random.State.make [| seed; pid |];
    stats = fresh_stats ();
  }

let poll ctx =
  if ctx.sig_mask = 0 && Atomic.get ctx.sig_pending then begin
    Atomic.set ctx.sig_pending false;
    ctx.handler ctx
  end

(* Masking defers handler delivery; the pending flag stays set, so the
   handler runs at the first access after the outermost [unmask] — the
   moral equivalent of [pthread_sigmask] around a lock-held critical
   section. *)
let mask ctx = ctx.sig_mask <- ctx.sig_mask + 1

let unmask ctx =
  assert (ctx.sig_mask > 0);
  ctx.sig_mask <- ctx.sig_mask - 1

let access ctx ~line kind =
  poll ctx;
  let s = ctx.stats in
  (match kind with
  | Read -> s.reads <- s.reads + 1
  | Write -> s.writes <- s.writes + 1
  | Cas -> s.cass <- s.cass + 1
  | Fence -> s.fences <- s.fences + 1
  | Work c -> s.local_work <- s.local_work + c);
  ctx.hook ctx ~line kind

let add_hook ctx f =
  let prev = ctx.hook in
  ctx.hook <-
    (fun c ~line kind ->
      f c ~line kind;
      prev c ~line kind);
  fun () -> ctx.hook <- prev

let work ctx cost = access ctx ~line:0 (Work cost)
let fence ctx = access ctx ~line:0 Fence
let now ctx = ctx.now_impl ()
let stall ctx cycles = ctx.stall_impl cycles
let crash _ctx = raise Crashed

let reset_stats ctx =
  let s = ctx.stats in
  s.reads <- 0;
  s.writes <- 0;
  s.cass <- 0;
  s.fences <- 0;
  s.local_work <- 0;
  s.allocs <- 0;
  s.frees <- 0;
  s.retires <- 0;
  s.ops <- 0;
  s.neutralized <- 0;
  s.signals_sent <- 0;
  s.signals_ignored <- 0

let stats_total_accesses s = s.reads + s.writes + s.cass + s.fences
