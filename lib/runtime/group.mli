(** A group of [n] process contexts sharing one data structure instance.

    The group is the unit over which reclamation schemes operate: signals are
    sent between members of a group, and announcement arrays are indexed by
    group pid.

    The group also carries the {e operating-system view} of its members that
    fault-tolerant schemes are allowed to consult: which processes have
    crashed (a signal to them fails, as [pthread_kill] fails with [ESRCH]),
    and whether signal delivery is currently reliable (fault injection can
    drop or delay signals; see lib/chaos). *)

(** Verdict of the signal router for one send: deliver now, or drop.  A
    delayed delivery is a [`Drop] here plus a later out-of-band set of the
    target's pending flag by the fault injector. *)
type route = [ `Deliver | `Drop ]

type t = {
  ctxs : Ctx.t array;
  seed : int;
  crashed : bool array;  (** per-pid: the OS knows this process is dead *)
  mutable signals_unreliable : bool;
      (** when set (by a fault injector), schemes must not assume one
          successful [send_signal] implies the handler will run; DEBRA+
          switches to its acknowledge-and-retry path *)
  mutable signal_route : from:Ctx.t -> target:int -> route;
}

val create : ?seed:int -> int -> t
val nprocs : t -> int
val ctx : t -> int -> Ctx.t

(** Crash bookkeeping.  [mark_crashed] is called by runners (the simulator)
    when a process terminates via {!Ctx.Crashed}; reclaimers may consult
    [is_crashed] the way an OS exposes process liveness. *)

val mark_crashed : t -> int -> unit
val is_crashed : t -> int -> bool
val any_crashed : t -> bool

(** Fault-injection hooks: [set_signal_route] interposes on every delivery;
    [reset_signal_route] restores reliable delivery and clears
    [signals_unreliable]. *)

val set_signal_route : t -> (from:Ctx.t -> target:int -> route) -> unit
val reset_signal_route : t -> unit

(** [send_signal t ~from ~target] delivers a simulated POSIX signal: sets
    [target]'s pending flag.  The handler runs before [target]'s next
    instrumented access (see {!Ctx}).  Returns [true] on success, mirroring
    [pthread_kill]; returns [false] when [target] has crashed (the [ESRCH]
    case) {e without} counting a sent signal.  Under an installed signal
    route the flag may be dropped or delayed even when [true] is
    returned. *)
val send_signal : t -> from:Ctx.t -> target:int -> bool

(** Sum of a per-process statistic over the group. *)
val sum_stats : t -> (Ctx.stats -> int) -> int
