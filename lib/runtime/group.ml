type route = [ `Deliver | `Drop ]

type t = {
  ctxs : Ctx.t array;
  seed : int;
  crashed : bool array;
  mutable signals_unreliable : bool;
  mutable signal_route : from:Ctx.t -> target:int -> route;
}

let create ?(seed = 42) n =
  assert (n > 0);
  {
    ctxs = Array.init n (fun pid -> Ctx.make ~pid ~nprocs:n ~seed);
    seed;
    crashed = Array.make n false;
    signals_unreliable = false;
    signal_route = (fun ~from:_ ~target:_ -> `Deliver);
  }

let nprocs t = Array.length t.ctxs
let ctx t pid = t.ctxs.(pid)
let mark_crashed t pid = t.crashed.(pid) <- true
let is_crashed t pid = t.crashed.(pid)
let any_crashed t = Array.exists (fun c -> c) t.crashed

let set_signal_route t route = t.signal_route <- route

let reset_signal_route t =
  t.signal_route <- (fun ~from:_ ~target:_ -> `Deliver);
  t.signals_unreliable <- false

let send_signal t ~from ~target =
  let open Ctx in
  if t.crashed.(target) then
    (* pthread_kill to a dead thread: ESRCH.  The sender learns the target
       is gone and must treat it as permanently stopped. *)
    false
  else begin
    from.stats.signals_sent <- from.stats.signals_sent + 1;
    (match t.signal_route ~from ~target with
    | `Deliver -> Atomic.set t.ctxs.(target).sig_pending true
    | `Drop ->
        (* Lost in flight: the sender still sees success, exactly the
           asymmetry a fault-injection campaign needs.  A delayed delivery
           is modelled by the router returning [`Drop] here and setting the
           target's flag later (see lib/chaos). *)
        ());
    true
  end

let sum_stats t f = Array.fold_left (fun acc c -> acc + f c.Ctx.stats) 0 t.ctxs
