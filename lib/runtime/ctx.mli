(** Per-process execution context.

    Every per-process operation in the library takes a [Ctx.t] explicitly,
    mirroring the [pid]-indexed pseudocode of the paper.  The context carries
    the process id, the simulated-signal state (the substitute for POSIX
    signals, see DESIGN.md), instrumentation hooks used by the machine
    simulator, and per-process statistics.

    The fundamental guarantee provided here is the one DEBRA+ requires of the
    operating system: after another process sets this process' signal flag,
    the registered handler runs before the process performs its next
    instrumented shared-memory access. *)

type access_kind =
  | Read
  | Write
  | Cas
  | Fence  (** a full memory barrier, as issued after a HP announcement *)
  | Work of int  (** uninstrumented local computation of the given cost *)

(** Raised by a signal handler to abort the interrupted operation; the moral
    equivalent of the paper's [siglongjmp] out of the signal handler.  Data
    structure operation wrappers catch it and run recovery code. *)
exception Neutralized

(** Raised by a process body to simulate a crash; runners treat the process
    as permanently stopped (it remains non-quiescent if it crashed
    mid-operation). *)
exception Crashed

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable cass : int;
  mutable fences : int;
  mutable local_work : int;  (** cycles of [Work] charged *)
  mutable allocs : int;
  mutable frees : int;
  mutable retires : int;
  mutable ops : int;  (** completed data structure operations *)
  mutable neutralized : int;  (** times this process was neutralized *)
  mutable signals_sent : int;
  mutable signals_ignored : int;  (** signals received while quiescent *)
}

type t = {
  pid : int;
  nprocs : int;
  sig_pending : bool Atomic.t;
  mutable sig_mask : int;
      (** signal-mask depth; while positive, [poll] defers handler delivery
          (the pending flag stays set).  See {!mask}/{!unmask}. *)
  mutable handler : t -> unit;
      (** signal handler; invoked at the next instrumented access after
          [sig_pending] is set.  Default: ignore. *)
  mutable hook : t -> line:int -> access_kind -> unit;
      (** instrumentation hook; the simulator charges cache-model costs and
          yields to the scheduler here.  Default: no-op. *)
  mutable now_impl : unit -> int;
      (** current time in cycles (virtual under the simulator, scaled
          wall-clock under domains). *)
  mutable stall_impl : int -> unit;
      (** park this process for the given number of cycles. *)
  mutable rng : Random.State.t;
  stats : stats;
}

val make : pid:int -> nprocs:int -> seed:int -> t

(** [poll ctx] checks the signal flag and, if set, clears it and runs the
    handler.  Called automatically by [access]; exposed so long local-only
    code paths can poll explicitly. *)
val poll : t -> unit

(** [mask ctx] / [unmask ctx] bracket a critical section during which signal
    delivery is deferred — the analogue of [pthread_sigmask(SIG_BLOCK, ...)]
    around code that must not be torn out by a neutralization [siglongjmp]
    (e.g. a lock-holding window in the lazy skip list).  Calls nest; the
    pending flag is not cleared, so a signal received while masked is
    handled at the first instrumented access after the outermost [unmask].
    A scheme relying on masked windows must treat signal delivery as
    unreliable (acknowledgement-based, see {!Group.t.signals_unreliable}):
    the sender cannot assume a signalled process was neutralized
    immediately. *)
val mask : t -> unit

val unmask : t -> unit

(** [access ctx ~line kind] records one instrumented shared-memory access:
    polls the signal flag, updates statistics, and invokes the hook. *)
val access : t -> line:int -> access_kind -> unit

(** [add_hook ctx f] composes [f] in front of the currently-installed hook
    (both run on every access, [f] first) and returns a thunk restoring the
    previous hook.  Layers that install hooks — the simulator, the sanitizer
    — must compose rather than overwrite so they can stack. *)
val add_hook : t -> (t -> line:int -> access_kind -> unit) -> unit -> unit

(** [work ctx cost] charges [cost] cycles of local computation. *)
val work : t -> int -> unit

(** [fence ctx] charges a full memory barrier. *)
val fence : t -> unit

val now : t -> int
val stall : t -> int -> unit

(** [crash ctx] simulates a process crash by raising {!Crashed}. *)
val crash : t -> 'a

val reset_stats : t -> unit
val stats_total_accesses : stats -> int
