type t = { cells : int Atomic.t array; base_line : int; padded : bool }

(* Real padding on the host heap, to match the simulated padding: an
   [Atomic.t] is a one-field heap block, and the atomic primitives act on
   field 0 regardless of the block's size, so allocating each cell as an
   oversized block keeps neighbouring cells on distinct hardware cache
   lines (the multicore-magic [copy_as_padded] idiom).  Under the domains
   backend this removes the very false sharing the [padded] flag models;
   under the simulator it is inert.  16 words = 128 bytes, one line pair
   on common prefetching hardware. *)
let pad_words = 16

let atomic_padded v : int Atomic.t =
  let b = Obj.new_block 0 pad_words in
  Obj.set_field b 0 (Obj.repr (v : int));
  (Obj.obj b : int Atomic.t)

let create ?(padded = false) n =
  let base_line =
    if padded then Addr.reserve_lines n else Addr.reserve_words n
  in
  let cell _ = if padded then atomic_padded 0 else Atomic.make 0 in
  { cells = Array.init n cell; base_line; padded }

let length t = Array.length t.cells

let line t i =
  if t.padded then t.base_line + i else Addr.line_of ~base_line:t.base_line i

let get ctx t i =
  Ctx.access ctx ~line:(line t i) Ctx.Read;
  Atomic.get t.cells.(i)

let set ctx t i v =
  Ctx.access ctx ~line:(line t i) Ctx.Write;
  Atomic.set t.cells.(i) v

let cas ctx t i ~expect v =
  Ctx.access ctx ~line:(line t i) Ctx.Cas;
  Atomic.compare_and_set t.cells.(i) expect v

let faa ctx t i d =
  Ctx.access ctx ~line:(line t i) Ctx.Cas;
  Atomic.fetch_and_add t.cells.(i) d

let peek t i = Atomic.get t.cells.(i)
let poke t i v = Atomic.set t.cells.(i) v
