(** Run a group's process bodies on real OCaml domains.

    This is the "real parallelism" execution mode: hooks stay no-ops (so an
    instrumented access costs one atomic flag poll), and [Ctx.now] reports
    scaled wall-clock time in nominal cycles.

    Under this runner the signal-delivery guarantee is approximate: a process
    that has passed its flag poll may complete one in-flight access after
    being signalled (see DESIGN.md §2); the deterministic simulator provides
    the exact guarantee. *)

type outcome = Finished | Crashed of exn

(** [run group bodies] runs [bodies.(pid)] for every pid on its own domain
    and waits for all of them.

    [cycles_per_second] is the wall-clock scale of [Ctx.now] (default 1e9,
    i.e. 1 cycle = 1 ns; [Exec.Clock.wall] is the canonical definition —
    pass its [cycles_per_second] rather than a literal).

    A body that terminates with {e any} exception is marked dead in the
    group ({!Group.mark_crashed}) from its own domain at the moment of
    death, so concurrent survivors observe ESRCH semantics immediately;
    exceptions other than [Ctx.Crashed] are then re-raised after all
    domains join.

    [?tick:(every, f)] spawns one extra sampler domain calling [f now]
    about once per [every] cycles of wall time until every body finishes —
    the telemetry hook.  Cadence and timestamps are approximate, unlike the
    simulator's exact virtual-time boundaries; [f] must only perform
    uninstrumented reads.

    Returns the wall-clock seconds elapsed and each body's outcome. *)
val run :
  ?cycles_per_second:float ->
  ?tick:int * (int -> unit) ->
  Group.t ->
  (unit -> unit) array ->
  float * outcome array
