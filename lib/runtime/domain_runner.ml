type outcome = Finished | Crashed of exn

let run ?(cycles_per_second = 1_000_000_000.) ?tick group bodies =
  let n = Group.nprocs group in
  assert (Array.length bodies = n);
  let start = Unix.gettimeofday () in
  let now () =
    int_of_float ((Unix.gettimeofday () -. start) *. cycles_per_second)
  in
  let install ctx =
    ctx.Ctx.now_impl <- now;
    (* A stalled process simply sleeps; this keeps it non-quiescent, which is
       the pathology DEBRA+ exists to neutralize. *)
    ctx.Ctx.stall_impl <-
      (fun cycles -> Unix.sleepf (float_of_int cycles /. cycles_per_second))
  in
  Array.iter install group.Group.ctxs;
  let outcomes = Array.make n Finished in
  (* The periodic sampler: a dedicated domain driving the telemetry tick at
     roughly one call per [every] cycles of wall time.  Unlike the
     simulator's exact virtual-time boundaries, cadence and timestamps here
     are approximate (scheduling jitter); the callback still only ever runs
     outside every workload domain. *)
  let sampler_stop = Atomic.make false in
  let sampler =
    Option.map
      (fun (every, f) ->
        if every <= 0 then
          invalid_arg "Domain_runner.run: tick interval must be > 0";
        let period = float_of_int every /. cycles_per_second in
        Domain.spawn (fun () ->
            while not (Atomic.get sampler_stop) do
              Unix.sleepf period;
              if not (Atomic.get sampler_stop) then f (now ())
            done))
      tick
  in
  let domains =
    Array.init n (fun pid ->
        Domain.spawn (fun () ->
            match bodies.(pid) () with
            | () -> Finished
            | exception e ->
                (* Mark the pid dead the instant it dies, not after the
                   join barrier: survivors doing fault-tolerant reclamation
                   (DEBRA+'s ESRCH path, ThreadScan's lock steal) must see
                   a dead process while the run is still in flight, or they
                   wait forever on a corpse. *)
                Group.mark_crashed group pid;
                Crashed e))
  in
  Array.iteri (fun pid d -> outcomes.(pid) <- Domain.join d) domains;
  Atomic.set sampler_stop true;
  Option.iter Domain.join sampler;
  let elapsed = Unix.gettimeofday () -. start in
  (* Re-raise real failures (but not simulated crashes). *)
  Array.iter
    (function
      | Crashed Ctx.Crashed | Finished -> ()
      | Crashed e -> raise e)
    outcomes;
  (elapsed, outcomes)
