(** Instrumented shared arrays of integers.

    Unlike {!Svar}, elements of a shared array can share cache lines (8 words
    per line) unless [~padded:true] is given, in which case each element gets
    its own line.  This is how the library models the paper's layout
    concerns: DEBRA pads per-process announcements to avoid false sharing,
    and the ablation benchmarks measure what happens without padding.

    [~padded:true] also pads for real: each cell's [Atomic.t] is allocated
    as an oversized heap block (atomic primitives act on field 0, so
    behavior is unchanged), keeping per-process announcement and epoch
    slots on distinct {e hardware} cache lines when trials run on the
    domains backend. *)

type t

val create : ?padded:bool -> int -> t
val length : t -> int
val get : Ctx.t -> t -> int -> int
val set : Ctx.t -> t -> int -> int -> unit
val cas : Ctx.t -> t -> int -> expect:int -> int -> bool
val faa : Ctx.t -> t -> int -> int -> int

(** Uninstrumented accessors for setup and assertions. *)

val peek : t -> int -> int
val poke : t -> int -> int -> unit
