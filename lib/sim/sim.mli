(** Deterministic discrete-event simulation of [n] processes on a modelled
    multiprocessor.

    Each process body runs as an effect-handler fiber.  Every instrumented
    shared-memory access (via {!Runtime.Ctx.access}) is priced by the MESI/
    NUMA cache model and yields to the scheduler, which always resumes the
    process on the hardware context with the smallest virtual time — i.e.
    accesses are globally ordered by virtual time, giving a faithful (and
    reproducible) model of parallel execution on a single real core.

    Processes are pinned to context [pid mod contexts].  When more processes
    than hardware contexts exist, contexts multiplex them with a round-robin
    quantum: a descheduled process's clock freezes, which is exactly the
    stalled-while-non-quiescent pathology that motivates DEBRA+.

    Signal delivery is exact in this mode: a signalled process runs its
    handler before its next instrumented access, and accesses are atomic in
    virtual time. *)

type result = {
  virtual_time : int;  (** max core time at termination, in cycles *)
  crashed : bool array;  (** per-pid: terminated via [Ctx.Crashed] *)
  cache_stats : Machine.Cache.stats;
  context_switches : int;
  steps : int;  (** scheduler steps (instrumented accesses) executed *)
}

(** Livelock diagnostic, one entry per process: its scheduling state, the
    virtual clock of its hardware context, how many instrumented accesses it
    performed and the cache line of the last one — enough to tell a wedge
    (everyone parked or spinning on a crashed peer's line) from a runaway
    loop (one runnable process with a huge access count). *)
type proc_state = [ `Runnable | `Parked of int | `Finished | `Crashed ]

type proc_diag = {
  d_pid : int;
  d_state : proc_state;
  d_clock : int;
  d_accesses : int;
  d_last_line : int;
}

type stuck_info = {
  s_reason : string;
  s_time : int;  (** max core clock when the scheduler gave up *)
  s_steps : int;
  s_procs : proc_diag array;
}

exception Stuck of stuck_info
  (** raised when the scheduler exceeds its step budget, indicating livelock;
      the diagnostic is also printed to stderr *)

val stuck_to_string : stuck_info -> string

(** One runnable hardware context at a [`Systematic] choice point:
    [cand_pid] is the process at the front of core [cand_core]'s run queue
    and [cand_line] the cache line of the instrumented access it will
    perform when next resumed ([-1] before its first access).  The
    simulator's hook records the line {e before} suspending the fiber, so
    pending accesses of descheduled processes are visible — the information
    a conflict-driven (DPOR/sleep-set style) explorer needs to decide where
    preemption can matter. *)
type candidate = { cand_core : int; cand_pid : int; cand_line : int }

(** Scheduling policy.  [`Min_time] (the default) always runs the hardware
    context with the smallest virtual clock — the faithful model of parallel
    execution, and the one every benchmark uses.  [`Random_walk seed] picks a
    runnable context uniformly at random at every step: virtual times lose
    their parallel meaning, but each seed explores a different {e logical}
    interleaving of the same program, which is how the test suites hunt for
    ordering bugs beyond the single min-time schedule.

    [`Systematic choose] delegates every choice point to [choose ~step
    candidates], which returns an index into [candidates]: the substrate for
    bounded-preemption exhaustive exploration (see [Lincheck.Explore]).  A
    schedule is fully determined by the sequence of choices, so recording
    them makes every explored interleaving replayable bit-for-bit.  One
    choice point occurs per scheduler step — i.e. per instrumented access —
    and the chooser may raise to abandon the run early. *)
type policy =
  [ `Min_time
  | `Random_walk of int
  | `Systematic of step:int -> candidate array -> int ]

(** [run ~machine group bodies] runs [bodies.(pid)] for each pid to
    completion and returns the outcome.  Installs simulator hooks on each
    context for the duration of the run.  Exceptions other than
    [Ctx.Crashed] escaping a body abort the simulation and are re-raised.

    [?tick:(interval, f)] fires [f now] once per [interval]-cycle boundary
    of global virtual time, in order and with the nominal boundary time —
    the telemetry sampling hook.  [f] runs in scheduler context (no fiber
    is active): it must not perform simulated accesses or effects, only
    uninstrumented reads ([peek]-style gauges).  Boundary times are only
    meaningful under [`Min_time]. *)
val run :
  ?machine:Machine.Config.t ->
  ?max_steps:int ->
  ?policy:policy ->
  ?tick:int * (int -> unit) ->
  Runtime.Group.t ->
  (unit -> unit) array ->
  result
