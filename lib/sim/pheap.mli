(** Pairing heap of (key, value) int pairs, ordered lexicographically —
    smallest key first, smallest value among equal keys.  Immutable; O(1)
    insert/merge/find-min, O(log n) amortized delete-min.

    The scheduler uses two instances with lazy deletion (stale entries are
    skipped at the top rather than removed in place): the minimum-time core
    queue keyed (core clock, core index) — the lexicographic tie-break
    reproduces the old linear scan's lowest-index-wins rule — and per-core
    wake-up queues keyed (wake time, pid). *)

type t

val empty : t
val is_empty : t -> bool
val insert : int -> int -> t -> t
val merge : t -> t -> t
val find_min : t -> (int * int) option
val delete_min : t -> t
