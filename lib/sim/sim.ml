open Effect
open Effect.Deep

type result = {
  virtual_time : int;
  crashed : bool array;
  cache_stats : Machine.Cache.stats;
  context_switches : int;
  steps : int;
}

(* Structured livelock diagnostic: enough per-process state to tell a wedge
   (everyone waiting on a crashed peer) from a runaway loop. *)
type proc_state = [ `Runnable | `Parked of int | `Finished | `Crashed ]

type proc_diag = {
  d_pid : int;
  d_state : proc_state;
  d_clock : int;  (* virtual time of the process' hardware context *)
  d_accesses : int;  (* instrumented accesses it performed *)
  d_last_line : int;  (* cache line of its last instrumented access *)
}

type stuck_info = {
  s_reason : string;
  s_time : int;  (* max core clock when the scheduler gave up *)
  s_steps : int;
  s_procs : proc_diag array;
}

exception Stuck of stuck_info

let state_name = function
  | `Runnable -> "runnable"
  | `Parked t -> Printf.sprintf "parked(wake@%d)" t
  | `Finished -> "finished"
  | `Crashed -> "crashed"

let stuck_to_string i =
  let b = Buffer.create 256 in
  Printf.bprintf b "Sim.Stuck: %s at t=%d after %d steps\n" i.s_reason i.s_time
    i.s_steps;
  Array.iter
    (fun d ->
      Printf.bprintf b "  pid %d: %-18s clock=%-10d accesses=%-9d last line=%d\n"
        d.d_pid (state_name d.d_state) d.d_clock d.d_accesses d.d_last_line)
    i.s_procs;
  Buffer.contents b

let () =
  Printexc.register_printer (function
    | Stuck i -> Some (stuck_to_string i)
    | _ -> None)

type _ Effect.t +=
  | Yield : int -> unit Effect.t  (* charge this many cycles *)
  | Stall : int -> unit Effect.t  (* park for this many cycles *)

(* What a fiber slice produced when control returned to the scheduler.  The
   continuation to resume later rides along inside the outcome. *)
type outcome =
  | Yielded of int * (unit, outcome) continuation
  | Stalled of int * (unit, outcome) continuation
  | Finished
  | Crash_exit
  | Failed of exn * Printexc.raw_backtrace

type status =
  | Fresh of (unit -> unit)
  | Ready of (unit, outcome) continuation
  | Done
  | Dead

type proc = { pid : int; mutable st : status; mutable wake_at : int }

type core = {
  mutable time : int;
  runq : int Queue.t;
  mutable quantum_left : int;
  mutable switches : int;
  mutable wakes : Pheap.t;
      (* (wake_at, pid) of every Stall on this core, lazily deleted: an
         entry is stale once the process stalled again (its wake_at moved),
         finished, or died.  Gives the all-asleep clock jump its earliest
         wake time in O(log queue) instead of a queue fold. *)
}

let handler : (unit, outcome) Effect.Deep.handler =
  {
    retc = (fun () -> Finished);
    exnc =
      (fun e ->
        match e with
        | Runtime.Ctx.Crashed -> Crash_exit
        | e -> Failed (e, Printexc.get_raw_backtrace ()));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield c ->
            Some (fun (k : (a, outcome) continuation) -> Yielded (c, k))
        | Stall c ->
            Some (fun (k : (a, outcome) continuation) -> Stalled (c, k))
        | _ -> None);
  }

(* A scheduling choice point under [`Systematic]: the runnable hardware
   contexts, with the process at the front of each run queue and the cache
   line of the instrumented access it will perform when resumed (-1 before
   its first access).  The hook records the line *before* performing
   [Yield], so a suspended fiber's pending access is already visible —
   exactly what conflict-driven exploration needs. *)
type candidate = { cand_core : int; cand_pid : int; cand_line : int }

type policy =
  [ `Min_time
  | `Random_walk of int
  | `Systematic of step:int -> candidate array -> int ]

let run ?(machine = Machine.Config.intel_i7_4770) ?(max_steps = 2_000_000_000)
    ?(policy = `Min_time) ?tick group bodies =
  let open Runtime in
  let n = Group.nprocs group in
  assert (Array.length bodies = n);
  let ncores = Machine.Config.contexts machine in
  let cache = Machine.Cache.create machine in
  let cores =
    Array.init ncores (fun _ ->
        {
          time = 0;
          runq = Queue.create ();
          quantum_left = machine.Machine.Config.quantum;
          switches = 0;
          wakes = Pheap.empty;
        })
  in
  let core_of pid = pid mod ncores in
  let procs =
    Array.init n (fun pid -> { pid; st = Fresh bodies.(pid); wake_at = 0 })
  in
  Array.iter (fun p -> Queue.push p.pid cores.(core_of p.pid).runq) procs;
  (* Indexed ready-set: a doubly-linked list (sentinel at index [ncores])
     over the cores with a non-empty run queue, in ascending core order.
     Processes are pinned to [pid mod ncores], so cores only ever *leave*
     the set (when their last process finishes or crashes) — removal is
     O(1) and the ascending/descending iteration orders reproduce the old
     0..ncores-1 / ncores-1..0 scan orders exactly. *)
  let rnext = Array.make (ncores + 1) ncores in
  let rprev = Array.make (ncores + 1) ncores in
  for c = ncores - 1 downto 0 do
    if not (Queue.is_empty cores.(c).runq) then begin
      let s = ncores in
      rnext.(c) <- rnext.(s);
      rprev.(c) <- s;
      rprev.(rnext.(s)) <- c;
      rnext.(s) <- c
    end
  done;
  let ready_remove c =
    rnext.(rprev.(c)) <- rnext.(c);
    rprev.(rnext.(c)) <- rprev.(c)
  in
  (* Install simulator hooks. *)
  let saved_hooks = Array.map (fun c -> c.Ctx.hook) group.Group.ctxs in
  let last_line = Array.make n (-1) in
  let install pid =
    let ctx = Group.ctx group pid in
    let context = core_of pid in
    (* Chain any hook installed before the run (e.g. a sanitizer's) rather
       than overwriting it: it observes the access, then we charge the cache
       model and yield to the scheduler. *)
    let prev = saved_hooks.(pid) in
    ctx.Ctx.hook <-
      (fun c ~line kind ->
        prev c ~line kind;
        last_line.(pid) <- line;
        let cost = Machine.Cache.access cache ~context kind ~line in
        perform (Yield cost));
    ctx.Ctx.now_impl <- (fun () -> cores.(context).time);
    ctx.Ctx.stall_impl <- (fun cycles -> perform (Stall cycles))
  in
  for pid = 0 to n - 1 do
    install pid
  done;
  let live = ref n in
  let steps = ref 0 in
  let crashed = Array.make n false in
  let failure = ref None in
  let diagnose reason =
    let max_time = Array.fold_left (fun acc c -> max acc c.time) 0 cores in
    let procs_diag =
      Array.map
        (fun p ->
          let clock = cores.(core_of p.pid).time in
          let state =
            match p.st with
            | Done -> `Finished
            | Dead -> `Crashed
            | Fresh _ | Ready _ ->
                if p.wake_at > clock then `Parked p.wake_at else `Runnable
          in
          {
            d_pid = p.pid;
            d_state = state;
            d_clock = clock;
            d_accesses =
              Ctx.stats_total_accesses (Group.ctx group p.pid).Ctx.stats;
            d_last_line = last_line.(p.pid);
          })
        procs
    in
    let info =
      { s_reason = reason; s_time = max_time; s_steps = !steps;
        s_procs = procs_diag }
    in
    (* Livelocks are usually fatal to the whole run; print the diagnostic
       even if a harness swallows the exception payload. *)
    prerr_string (stuck_to_string info);
    Stuck info
  in
  (* Rotate the front of a core's run queue to its back, charging a context
     switch when the queue actually holds more than one process. *)
  let rotate core =
    if Queue.length core.runq > 1 then begin
      let pid = Queue.pop core.runq in
      Queue.push pid core.runq;
      core.time <- core.time + machine.Machine.Config.ctx_switch;
      core.switches <- core.switches + 1
    end;
    core.quantum_left <- machine.Machine.Config.quantum
  in
  (* Pick the next core to run: minimal virtual time (faithful parallel
     model), or a seeded uniform choice among non-empty cores (logical
     interleaving exploration). *)
  let walk_rng =
    match policy with
    | `Random_walk seed -> Some (Random.State.make [| seed; 0x51D |])
    | `Min_time | `Systematic _ -> None
  in
  (* Minimum-time selection: a pairing heap keyed (core clock, core index)
     with lazy deletion.  Entries go stale when a core's clock advances or
     its queue empties; the skim discards them at the top.  The invariant —
     every ready core has an entry carrying its current clock — is restored
     after each step by the push in the main loop, and lexicographic order
     reproduces the old linear scan's lowest-index-wins tie-break. *)
  let use_heap = match policy with `Min_time -> true | _ -> false in
  let coreheap = ref Pheap.empty in
  if use_heap then begin
    let c = ref rnext.(ncores) in
    while !c <> ncores do
      coreheap := Pheap.insert 0 !c !coreheap;
      c := rnext.(!c)
    done
  end;
  let rec pick_min_time () =
    match Pheap.find_min !coreheap with
    | None -> -1
    | Some (t, c) ->
        if Queue.is_empty cores.(c).runq || cores.(c).time <> t then begin
          coreheap := Pheap.delete_min !coreheap;
          pick_min_time ()
        end
        else c
  in
  let pick_core () =
    match policy with
    | `Min_time -> pick_min_time ()
    | `Random_walk _ ->
        let rng = Option.get walk_rng in
        (* Ascending ready-set walk consing gives the descending candidate
           list the old 0..ncores-1 loop built. *)
        let candidates = ref [] in
        let len = ref 0 in
        let c = ref rnext.(ncores) in
        while !c <> ncores do
          candidates := !c :: !candidates;
          incr len;
          c := rnext.(!c)
        done;
        (match !candidates with
        | [] -> -1
        | cs -> List.nth cs (Random.State.int rng !len))
    | `Systematic choose ->
        (* The chooser sees every runnable context with its front process'
           pending access and picks one by index; choices are what an
           exploration driver records and replays.  Sleeping fronts are
           still offered — [prepare_front] below handles them exactly as
           under the other policies, and the chooser is simply consulted
           again after any clock jump.  The descending ready-set walk
           conses the same ascending candidate array as the old
           ncores-1..0 scan. *)
        let cands = ref [] in
        let c = ref rprev.(ncores) in
        while !c <> ncores do
          let pid = Queue.peek cores.(!c).runq in
          cands :=
            { cand_core = !c; cand_pid = pid; cand_line = last_line.(pid) }
            :: !cands;
          c := rprev.(!c)
        done;
        let cands = Array.of_list !cands in
        if Array.length cands = 0 then -1
        else begin
          let i = choose ~step:!steps cands in
          if i < 0 || i >= Array.length cands then
            invalid_arg "Sim.run: `Systematic chooser index out of range";
          cands.(i).cand_core
        end
  in
  (* Ensure the front of [core]'s queue is runnable, rotating past sleepers
     or advancing time when everyone on the core sleeps.  Returns [false]
     when the core's clock had to jump forward: the caller must then re-pick
     the minimum-time core instead of running this one, or accesses would
     execute out of virtual-time order (other cores may have work scheduled
     before the jumped-to instant). *)
  let prepare_front core =
    let len = Queue.length core.runq in
    let rec go tried =
      let pid = Queue.peek core.runq in
      let p = procs.(pid) in
      if p.wake_at <= core.time then true
      else if tried < len - 1 then begin
        rotate core;
        go (tried + 1)
      end
      else begin
        (* All processes on this core are sleeping; jump to earliest wake,
           read off the wake heap.  Every sleeper's current wake_at has an
           entry (pushed when it stalled); entries whose process moved on,
           finished or died are discarded at the top.  A valid entry at or
           below the current clock cannot exist here: its process would be
           runnable, contradicting the all-asleep branch. *)
        let rec min_wake () =
          match Pheap.find_min core.wakes with
          | None ->
              (* Defensive fallback; unreachable while the push-on-stall
                 invariant holds. *)
              Queue.fold (fun acc pid -> min acc procs.(pid).wake_at) max_int
                core.runq
          | Some (t, pid) -> (
              let p = procs.(pid) in
              match p.st with
              | (Fresh _ | Ready _) when p.wake_at = t -> t
              | _ ->
                  core.wakes <- Pheap.delete_min core.wakes;
                  min_wake ())
        in
        core.time <- max core.time (min_wake ());
        false
      end
    in
    go 0
  in
  let finish_front core p ~dead =
    ignore (Queue.pop core.runq);
    if Queue.is_empty core.runq then ready_remove (core_of p.pid);
    p.st <- (if dead then Dead else Done);
    if dead then begin
      crashed.(p.pid) <- true;
      (* The OS knows: signals to this pid now fail with ESRCH, and
         crash-aware reclamation paths may skip it. *)
      Group.mark_crashed group p.pid
    end;
    decr live;
    core.quantum_left <- machine.Machine.Config.quantum
  in
  (* Virtual-time tick hook (telemetry sampling).  Under [`Min_time] the
     picked core always has the minimal clock among runnable cores, so its
     time is a monotone global "now": boundaries are fired exactly once, in
     order, with their nominal timestamp.  The callback runs in scheduler
     context, outside every fiber — it must not perform simulated accesses,
     only uninstrumented [peek]s. *)
  let tick_state =
    match tick with
    | None -> None
    | Some (every, f) ->
        if every <= 0 then invalid_arg "Sim.run: tick interval must be > 0";
        Some (every, f, ref every)
  in
  (* Restore hooks so post-run code executes directly — also on a Stuck
     escape, so a caller that catches the diagnostic is left with working
     contexts. *)
  let restore_hooks () =
    Array.iteri
      (fun pid ctx ->
        ctx.Ctx.hook <- saved_hooks.(pid);
        ctx.Ctx.now_impl <- (fun () -> 0);
        ctx.Ctx.stall_impl <- (fun _ -> ()))
      group.Group.ctxs
  in
  (try
     while !live > 0 && !failure = None do
       incr steps;
       if !steps > max_steps then
         raise (diagnose "scheduler step budget exceeded (livelock?)");
       let c = pick_core () in
       if c < 0 then
         raise (diagnose "live processes but empty run queues (internal error)");
       let core = cores.(c) in
       let t0 = core.time in
       (match tick_state with
       | Some (every, f, next) ->
           while !next <= core.time do
             f !next;
             next := !next + every
           done
       | None -> ());
       (if prepare_front core then begin
          let pid = Queue.peek core.runq in
          let p = procs.(pid) in
          let outcome =
            match p.st with
            | Fresh body -> match_with body () handler
            | Ready k -> continue k ()
            | Done | Dead -> raise (diagnose "scheduled a finished process")
          in
          match outcome with
          | Yielded (cost, k) ->
              p.st <- Ready k;
              core.time <- core.time + cost;
              core.quantum_left <- core.quantum_left - cost;
              if core.quantum_left <= 0 then rotate core
          | Stalled (cycles, k) ->
              p.st <- Ready k;
              p.wake_at <- core.time + cycles;
              core.wakes <- Pheap.insert p.wake_at p.pid core.wakes;
              rotate core
          | Finished -> finish_front core p ~dead:false
          | Crash_exit -> finish_front core p ~dead:true
          | Failed (e, bt) ->
              finish_front core p ~dead:true;
              failure := Some (e, bt)
        end);
       (* Restore the heap invariant: the picked core ran (or its clock
          jumped), so if its clock moved and it is still ready, give it a
          fresh entry.  The superseded entry is discarded by a later skim. *)
       if use_heap && core.time <> t0 && not (Queue.is_empty core.runq) then
         coreheap := Pheap.insert core.time c !coreheap
     done
   with e ->
     restore_hooks ();
     raise e);
  restore_hooks ();
  (match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let virtual_time = Array.fold_left (fun acc c -> max acc c.time) 0 cores in
  let context_switches = Array.fold_left (fun acc c -> acc + c.switches) 0 cores in
  { virtual_time; crashed; cache_stats = Machine.Cache.stats cache;
    context_switches; steps = !steps }
