open Effect
open Effect.Deep

type result = {
  virtual_time : int;
  crashed : bool array;
  cache_stats : Machine.Cache.stats;
  context_switches : int;
}

exception Stuck of string

type _ Effect.t +=
  | Yield : int -> unit Effect.t  (* charge this many cycles *)
  | Stall : int -> unit Effect.t  (* park for this many cycles *)

(* What a fiber slice produced when control returned to the scheduler.  The
   continuation to resume later rides along inside the outcome. *)
type outcome =
  | Yielded of int * (unit, outcome) continuation
  | Stalled of int * (unit, outcome) continuation
  | Finished
  | Crash_exit
  | Failed of exn * Printexc.raw_backtrace

type status =
  | Fresh of (unit -> unit)
  | Ready of (unit, outcome) continuation
  | Done
  | Dead

type proc = { pid : int; mutable st : status; mutable wake_at : int }

type core = {
  mutable time : int;
  runq : int Queue.t;
  mutable quantum_left : int;
  mutable switches : int;
}

let handler : (unit, outcome) Effect.Deep.handler =
  {
    retc = (fun () -> Finished);
    exnc =
      (fun e ->
        match e with
        | Runtime.Ctx.Crashed -> Crash_exit
        | e -> Failed (e, Printexc.get_raw_backtrace ()));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield c ->
            Some (fun (k : (a, outcome) continuation) -> Yielded (c, k))
        | Stall c ->
            Some (fun (k : (a, outcome) continuation) -> Stalled (c, k))
        | _ -> None);
  }

type policy = [ `Min_time | `Random_walk of int ]

let run ?(machine = Machine.Config.intel_i7_4770) ?(max_steps = 2_000_000_000)
    ?(policy = `Min_time) ?tick group bodies =
  let open Runtime in
  let n = Group.nprocs group in
  assert (Array.length bodies = n);
  let ncores = Machine.Config.contexts machine in
  let cache = Machine.Cache.create machine in
  let cores =
    Array.init ncores (fun _ ->
        {
          time = 0;
          runq = Queue.create ();
          quantum_left = machine.Machine.Config.quantum;
          switches = 0;
        })
  in
  let core_of pid = pid mod ncores in
  let procs =
    Array.init n (fun pid -> { pid; st = Fresh bodies.(pid); wake_at = 0 })
  in
  Array.iter (fun p -> Queue.push p.pid cores.(core_of p.pid).runq) procs;
  (* Install simulator hooks. *)
  let saved_hooks = Array.map (fun c -> c.Ctx.hook) group.Group.ctxs in
  let install pid =
    let ctx = Group.ctx group pid in
    let context = core_of pid in
    (* Chain any hook installed before the run (e.g. a sanitizer's) rather
       than overwriting it: it observes the access, then we charge the cache
       model and yield to the scheduler. *)
    let prev = saved_hooks.(pid) in
    ctx.Ctx.hook <-
      (fun c ~line kind ->
        prev c ~line kind;
        let cost = Machine.Cache.access cache ~context kind ~line in
        perform (Yield cost));
    ctx.Ctx.now_impl <- (fun () -> cores.(context).time);
    ctx.Ctx.stall_impl <- (fun cycles -> perform (Stall cycles))
  in
  for pid = 0 to n - 1 do
    install pid
  done;
  let live = ref n in
  let steps = ref 0 in
  let crashed = Array.make n false in
  let failure = ref None in
  (* Rotate the front of a core's run queue to its back, charging a context
     switch when the queue actually holds more than one process. *)
  let rotate core =
    if Queue.length core.runq > 1 then begin
      let pid = Queue.pop core.runq in
      Queue.push pid core.runq;
      core.time <- core.time + machine.Machine.Config.ctx_switch;
      core.switches <- core.switches + 1
    end;
    core.quantum_left <- machine.Machine.Config.quantum
  in
  (* Pick the next core to run: minimal virtual time (faithful parallel
     model), or a seeded uniform choice among non-empty cores (logical
     interleaving exploration). *)
  let walk_rng =
    match policy with
    | `Random_walk seed -> Some (Random.State.make [| seed; 0x51D |])
    | `Min_time -> None
  in
  let pick_core () =
    match walk_rng with
    | None ->
        let best = ref (-1) in
        for c = 0 to ncores - 1 do
          if not (Queue.is_empty cores.(c).runq) then
            if !best < 0 || cores.(c).time < cores.(!best).time then best := c
        done;
        !best
    | Some rng ->
        let candidates = ref [] in
        for c = 0 to ncores - 1 do
          if not (Queue.is_empty cores.(c).runq) then candidates := c :: !candidates
        done;
        (match !candidates with
        | [] -> -1
        | cs -> List.nth cs (Random.State.int rng (List.length cs)))
  in
  (* Ensure the front of [core]'s queue is runnable, rotating past sleepers
     or advancing time when everyone on the core sleeps.  Returns [false]
     when the core's clock had to jump forward: the caller must then re-pick
     the minimum-time core instead of running this one, or accesses would
     execute out of virtual-time order (other cores may have work scheduled
     before the jumped-to instant). *)
  let prepare_front core =
    let len = Queue.length core.runq in
    let rec go tried =
      let pid = Queue.peek core.runq in
      let p = procs.(pid) in
      if p.wake_at <= core.time then true
      else if tried < len - 1 then begin
        rotate core;
        go (tried + 1)
      end
      else begin
        (* All processes on this core are sleeping; jump to earliest wake. *)
        let min_wake =
          Queue.fold (fun acc pid -> min acc procs.(pid).wake_at) max_int
            core.runq
        in
        core.time <- max core.time min_wake;
        false
      end
    in
    go 0
  in
  let finish_front core p ~dead =
    ignore (Queue.pop core.runq);
    p.st <- (if dead then Dead else Done);
    if dead then crashed.(p.pid) <- true;
    decr live;
    core.quantum_left <- machine.Machine.Config.quantum
  in
  (* Virtual-time tick hook (telemetry sampling).  Under [`Min_time] the
     picked core always has the minimal clock among runnable cores, so its
     time is a monotone global "now": boundaries are fired exactly once, in
     order, with their nominal timestamp.  The callback runs in scheduler
     context, outside every fiber — it must not perform simulated accesses,
     only uninstrumented [peek]s. *)
  let tick_state =
    match tick with
    | None -> None
    | Some (every, f) ->
        if every <= 0 then invalid_arg "Sim.run: tick interval must be > 0";
        Some (every, f, ref every)
  in
  (while !live > 0 && !failure = None do
     incr steps;
     if !steps > max_steps then raise (Stuck "scheduler step budget exceeded");
     let c = pick_core () in
     if c < 0 then
       raise (Stuck "live processes but empty run queues (internal error)");
     let core = cores.(c) in
     (match tick_state with
     | Some (every, f, next) ->
         while !next <= core.time do
           f !next;
           next := !next + every
         done
     | None -> ());
     if prepare_front core then begin
     let pid = Queue.peek core.runq in
     let p = procs.(pid) in
     let outcome =
       match p.st with
       | Fresh body -> match_with body () handler
       | Ready k -> continue k ()
       | Done | Dead -> raise (Stuck "scheduled a finished process")
     in
     match outcome with
     | Yielded (cost, k) ->
         p.st <- Ready k;
         core.time <- core.time + cost;
         core.quantum_left <- core.quantum_left - cost;
         if core.quantum_left <= 0 then rotate core
     | Stalled (cycles, k) ->
         p.st <- Ready k;
         p.wake_at <- core.time + cycles;
         rotate core
     | Finished -> finish_front core p ~dead:false
     | Crash_exit -> finish_front core p ~dead:true
     | Failed (e, bt) ->
         finish_front core p ~dead:true;
         failure := Some (e, bt)
     end
   done);
  (* Restore hooks so post-run code executes directly. *)
  Array.iteri
    (fun pid ctx ->
      ctx.Ctx.hook <- saved_hooks.(pid);
      ctx.Ctx.now_impl <- (fun () -> 0);
      ctx.Ctx.stall_impl <- (fun _ -> ()))
    group.Group.ctxs;
  (match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let virtual_time = Array.fold_left (fun acc c -> max acc c.time) 0 cores in
  let context_switches = Array.fold_left (fun acc c -> acc + c.switches) 0 cores in
  { virtual_time; crashed; cache_stats = Machine.Cache.stats cache; context_switches }
