type t = E | N of int * int * t list

let empty = E
let is_empty = function E -> true | N _ -> false

let merge a b =
  match (a, b) with
  | E, h | h, E -> h
  | N (ka, va, ca), N (kb, vb, cb) ->
      if ka < kb || (ka = kb && va <= vb) then N (ka, va, b :: ca)
      else N (kb, vb, a :: cb)

let insert k v h = merge (N (k, v, [])) h
let find_min = function E -> None | N (k, v, _) -> Some (k, v)

(* Two-pass pairing: left-to-right pairwise merge, then fold the pairs
   right-to-left.  O(log n) amortized delete-min. *)
let rec merge_pairs = function
  | [] -> E
  | [ h ] -> h
  | a :: b :: rest -> merge (merge a b) (merge_pairs rest)

let delete_min = function E -> E | N (_, _, children) -> merge_pairs children
