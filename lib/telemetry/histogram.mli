(** Log-bucketed latency histograms over non-negative integers
    (HdrHistogram's bucketing scheme, stripped to what virtual-time
    measurement needs).

    Values below [2^sub_bits] get an exact bucket each; above that, each
    power-of-two range is split into [2^sub_bits] linear sub-buckets, so the
    relative quantization error is bounded by [2^-sub_bits] everywhere.
    Recording is two shifts, a subtract and an array increment — cheap
    enough to run on every simulated operation without distorting host-side
    run time (simulated time is never affected; see DESIGN.md §8). *)

type t

val create : ?sub_bits:int -> unit -> t
(** [create ()] uses [sub_bits = 5] (at most ~3% relative error).
    Raises [Invalid_argument] outside [1..16]. *)

val record : t -> int -> unit
(** Record one value.  Negative values clamp to 0. *)

val count : t -> int
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
val mean : t -> float
val total : t -> int
(** Sum of recorded values (as quantized by the buckets). *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0,1]: the smallest representative value [v]
    such that at least [q * count] recorded values are [<= v].  Returns the
    bucket's midpoint, so it can differ from an exact sorted-sample
    quantile by at most the bucket width.  0 when empty. *)

val percentiles : t -> (float * int) list
(** The standard report row: p50, p90, p99, p99.9 as
    [(50.0, v); (90.0, v); ...]. *)

val merge_into : t -> into:t -> unit
(** Add every recorded value of the first histogram into [into].  The two
    must share [sub_bits]; raises [Invalid_argument] otherwise. *)

val clear : t -> unit
