(** Chrome trace-event ("catapult") builder.

    Collects trace events in host memory during a simulated trial and
    renders them as the JSON Object Format
    ([{"traceEvents": [...], ...}]) that [chrome://tracing] and Perfetto
    load directly.  Timestamps are in microseconds of {e virtual} time:
    the simulator's cycle clock divided by the configured cycles-per-µs.

    Event vocabulary used by the telemetry recorder:
    - ["X"] complete events: one span per data-structure operation, on the
      track of the process that ran it;
    - ["i"] instant events: epoch advances, neutralization signals,
      reclamation sweeps;
    - ["M"] metadata events: human-readable track names. *)

type t

val create : ?max_events:int -> cycles_per_us:float -> unit -> t
(** [max_events] (default 1_000_000) caps memory; past the cap events are
    counted but dropped ({!dropped}).  Raises [Invalid_argument] if
    [cycles_per_us <= 0]. *)

val thread_name : t -> pid:int -> string -> unit
(** Emit an ["M"] metadata record naming process [pid]'s track. *)

val complete : t -> pid:int -> name:string -> cat:string -> start:int -> finish:int -> unit
(** A ["X"] span on [pid]'s track; [start]/[finish] in simulated cycles. *)

val instant :
  t -> pid:int -> name:string -> cat:string -> at:int ->
  ?args:(string * Json.t) list -> unit -> unit
(** An ["i"] thread-scoped instant at cycle [at]. *)

val events : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events discarded because [max_events] was reached. *)

val to_json : t -> Json.t
(** The full document, events in emission order.  Includes a
    ["displayTimeUnit": "ns"] hint and, when [dropped > 0], a
    ["telemetryDroppedEvents"] count in the top-level object. *)

val write_file : t -> string -> unit
(** Render {!to_json} to [file] (streaming through a buffer). *)
