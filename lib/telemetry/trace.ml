type event = {
  name : string;
  cat : string;
  ph : char;
  ts : float;  (* µs *)
  dur : float;  (* µs, X only *)
  pid : int;
  args : (string * Json.t) list;
}

type t = {
  cycles_per_us : float;
  max_events : int;
  mutable events : event list;  (* newest first *)
  mutable n : int;
  mutable dropped : int;
}

let create ?(max_events = 1_000_000) ~cycles_per_us () =
  if cycles_per_us <= 0.0 then
    invalid_arg "Trace.create: cycles_per_us must be positive";
  { cycles_per_us; max_events; events = []; n = 0; dropped = 0 }

let us t cycles = float_of_int cycles /. t.cycles_per_us

let push t ev =
  if t.n >= t.max_events then t.dropped <- t.dropped + 1
  else begin
    t.events <- ev :: t.events;
    t.n <- t.n + 1
  end

let thread_name t ~pid name =
  push t
    {
      name = "thread_name";
      cat = "__metadata";
      ph = 'M';
      ts = 0.0;
      dur = 0.0;
      pid;
      args = [ ("name", Json.String name) ];
    }

let complete t ~pid ~name ~cat ~start ~finish =
  let finish = if finish < start then start else finish in
  push t
    {
      name;
      cat;
      ph = 'X';
      ts = us t start;
      dur = us t (finish - start);
      pid;
      args = [];
    }

let instant t ~pid ~name ~cat ~at ?(args = []) () =
  push t { name; cat; ph = 'i'; ts = us t at; dur = 0.0; pid; args }

let events t = t.n
let dropped t = t.dropped

let event_json ev =
  let base =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String ev.cat);
      ("ph", Json.String (String.make 1 ev.ph));
      ("ts", Json.Float ev.ts);
      ("pid", Json.Int 0);
      ("tid", Json.Int ev.pid);
    ]
  in
  let base = if ev.ph = 'X' then base @ [ ("dur", Json.Float ev.dur) ] else base in
  let base = if ev.ph = 'i' then base @ [ ("s", Json.String "t") ] else base in
  let base =
    if ev.args = [] then base else base @ [ ("args", Json.Obj ev.args) ]
  in
  Json.Obj base

let to_json t =
  let evs = List.rev_map event_json t.events in
  let top =
    [
      ("traceEvents", Json.List evs);
      ("displayTimeUnit", Json.String "ns");
    ]
  in
  let top =
    if t.dropped > 0 then
      top @ [ ("telemetryDroppedEvents", Json.Int t.dropped) ]
    else top
  in
  Json.Obj top

let write_file t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf (to_json t);
      Buffer.output_buffer oc buf;
      output_char oc '\n')
