(** A minimal self-contained JSON value type, printer and parser.

    The toolchain available to this repo deliberately excludes third-party
    JSON libraries, and the telemetry subsystem only needs a small,
    predictable subset: objects, arrays, strings, ints, floats and bools —
    enough to write Chrome trace files and metrics dumps, and to parse them
    back in tests.  Numbers are kept split into [Int] and [Float] so that
    virtual-time counters round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Strings are escaped per RFC 8259;
    non-finite floats are rendered as [null] (Chrome's trace viewer rejects
    bare [nan]). *)

val to_buffer : Buffer.t -> t -> unit
(** Same rendering, appended to an existing buffer — used by the trace
    writer to avoid building the whole document as one string list. *)

exception Parse_error of string
(** Raised by {!of_string} with a short description and byte offset. *)

val of_string : string -> t
(** Recursive-descent parser for the same subset.  Accepts any whitespace
    between tokens; numbers with [.], [e] or [E] parse as [Float], all
    others as [Int].  Raises {!Parse_error} on malformed input or trailing
    garbage. *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] if [json] is an object
    containing it. *)
