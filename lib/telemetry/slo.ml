(** Tail-latency SLO verdicts over latency histograms.

    A {!budget} names per-percentile latency ceilings (in the histogram's
    unit, nanoseconds everywhere in this repo); {!judge} compares one
    histogram against it and returns a pass/fail {!verdict} listing every
    breached percentile.  Scoping (per shard, per op kind, per scheme) is
    the caller's business — a verdict just carries the scope label it was
    judged under.

    Budgets parse from a compact spec string so they can ride on a CLI
    flag: ["p99=20000,p999=100000"] caps p99 at 20µs and p999 at 100µs;
    omitted percentiles are unconstrained. *)

type budget = { p50_ns : int option; p99_ns : int option; p999_ns : int option }

let no_budget = { p50_ns = None; p99_ns = None; p999_ns = None }

let budget_of_spec spec =
  if String.trim spec = "" then no_budget
  else
    List.fold_left
      (fun b part ->
        match String.index_opt part '=' with
        | None ->
            invalid_arg
              (Printf.sprintf "Slo.budget_of_spec: %S (want p99=NS,...)" part)
        | Some i -> (
            let key = String.trim (String.sub part 0 i) in
            let v =
              match
                int_of_string_opt
                  (String.trim
                     (String.sub part (i + 1) (String.length part - i - 1)))
              with
              | Some v when v >= 0 -> v
              | _ ->
                  invalid_arg
                    (Printf.sprintf
                       "Slo.budget_of_spec: bad value in %S (want a \
                        non-negative ns integer)"
                       part)
            in
            match key with
            | "p50" -> { b with p50_ns = Some v }
            | "p99" -> { b with p99_ns = Some v }
            | "p999" -> { b with p999_ns = Some v }
            | _ ->
                invalid_arg
                  (Printf.sprintf
                     "Slo.budget_of_spec: unknown percentile %S (want \
                      p50/p99/p999)"
                     key)))
      no_budget
      (String.split_on_char ',' spec)

type breach = { percentile : string; observed_ns : int; budget_ns : int }

(** A percentile whose rank falls beyond the served population when judging
    against demand: an unserved request has no finite latency, so the
    quantile is "infinite" and any budget on it is breached. *)
let unserved_ns = max_int

type verdict = {
  scope : string;  (** e.g. ["shard3"] or ["all"] *)
  kind : string;  (** operation kind, e.g. ["get"] *)
  count : int;  (** requests actually served (histogram population) *)
  demand : int;  (** requests addressed to this scope ([= count] when every
                     request was served; see {!judge_demand}) *)
  p50 : int;
  p99 : int;
  p999 : int;
  breaches : breach list;
  pass : bool;  (** no percentile over budget (vacuously true when empty) *)
}

(* Quantile over the demand population: the [demand - count] unserved
   requests sort above every served latency (they never completed), so
   rank q*demand lands either inside the histogram — at the rescaled
   quantile — or in the unserved tail, where the latency is infinite.
   This is the open-loop accounting fix: a scheme cannot improve its
   percentiles by shedding or timing requests out. *)
let demand_quantile h ~count ~demand q =
  if count <= 0 then if demand > 0 then unserved_ns else 0
  else if demand <= count then Histogram.quantile h q
  else
    let rank = q *. float_of_int demand in
    if rank > float_of_int count then unserved_ns
    else Histogram.quantile h (rank /. float_of_int count)

let judge_demand budget ~scope ~kind ~demand h =
  let count = Histogram.count h in
  let demand = max demand count in
  let q p = demand_quantile h ~count ~demand p in
  let p50 = q 0.50 and p99 = q 0.99 and p999 = q 0.999 in
  let check name observed = function
    | Some cap when demand > 0 && observed > cap ->
        [ { percentile = name; observed_ns = observed; budget_ns = cap } ]
    | _ -> []
  in
  let breaches =
    check "p50" p50 budget.p50_ns
    @ check "p99" p99 budget.p99_ns
    @ check "p999" p999 budget.p999_ns
  in
  { scope; kind; count; demand; p50; p99; p999; breaches; pass = breaches = [] }

let judge budget ~scope ~kind h =
  judge_demand budget ~scope ~kind ~demand:(Histogram.count h) h

let verdict_json v =
  Json.Obj
    [
      ("scope", Json.String v.scope);
      ("kind", Json.String v.kind);
      ("count", Json.Int v.count);
      ("demand", Json.Int v.demand);
      ("p50_ns", Json.Int v.p50);
      ("p99_ns", Json.Int v.p99);
      ("p999_ns", Json.Int v.p999);
      ( "breaches",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("percentile", Json.String b.percentile);
                   ("observed_ns", Json.Int b.observed_ns);
                   ("budget_ns", Json.Int b.budget_ns);
                 ])
             v.breaches) );
      ("pass", Json.Bool v.pass);
    ]

let all_pass vs = List.for_all (fun v -> v.pass) vs
