type gauge = {
  gname : string;
  read : unit -> int array;
  mutable samples : (int * int array) list;  (* newest first *)
}

(* Event-bus counters: a flat record, bumped on the emission fast path when
   telemetry is attached — no hashing, no allocation. *)
type counts = {
  mutable allocs : int;
  mutable frees : int;
  mutable retires : int;
  mutable pool_puts : int;
  mutable pool_takes : int;
  mutable epoch_advances : int;
  mutable signals_sent : int;
  mutable sweeps : int;
  mutable records_swept : int;
}

type t = {
  sub_bits : int;
  sample_every : int;
  max_samples : int;
  cycles_per_ns : float;
  nprocs : int;
  trace : Trace.t option;
  mutable ticks : int;  (* tick calls seen, kept or not *)
  mutable stride : int;  (* keep every [stride]-th tick; doubles on overflow *)
  mutable kept : int;  (* samples currently retained per (full) gauge *)
  mutable gauges : gauge list;  (* registration order *)
  mutable hists : (string * Histogram.t) list;  (* per op kind *)
  counts : counts;
  mutable extra_counters : (string * (unit -> int)) list;
      (* externally registered counter getters (reclamation pressure,
         breaker trips, ...), read at render time; registration order *)
}

let create ?(sub_bits = 5) ?(sample_every = 50_000) ?(max_samples = 512)
    ?trace ~cycles_per_ns ~nprocs () =
  if cycles_per_ns <= 0.0 then
    invalid_arg "Recorder.create: cycles_per_ns must be positive";
  if sample_every <= 0 then
    invalid_arg "Recorder.create: sample_every must be positive";
  if max_samples < 2 then
    invalid_arg "Recorder.create: max_samples must be >= 2";
  (match trace with
  | None -> ()
  | Some tr ->
      for pid = 0 to nprocs - 1 do
        Trace.thread_name tr ~pid (Printf.sprintf "process %d" pid)
      done);
  {
    sub_bits;
    sample_every;
    max_samples;
    cycles_per_ns;
    nprocs;
    trace;
    ticks = 0;
    stride = 1;
    kept = 0;
    gauges = [];
    hists = [];
    counts =
      {
        allocs = 0;
        frees = 0;
        retires = 0;
        pool_puts = 0;
        pool_takes = 0;
        epoch_advances = 0;
        signals_sent = 0;
        sweeps = 0;
        records_swept = 0;
      };
    extra_counters = [];
  }

let sample_every t = t.sample_every
let nprocs t = t.nprocs
let trace t = t.trace

let add_gauge t ~name read =
  t.gauges <- t.gauges @ [ { gname = name; read; samples = [] } ]

let add_counter t ~name read = t.extra_counters <- t.extra_counters @ [ (name, read) ]

(* Keep the samples at even positions counted from the oldest — they sit on
   multiples of the doubled stride, so future kept ticks stay aligned. *)
let thin samples =
  let l = List.length samples in
  List.filteri (fun i _ -> (l - 1 - i) mod 2 = 0) samples

(* Decimating bounded sampler: a skipped tick costs one increment and one
   compare — no gauge reads, no allocation — so the per-tick hook stays
   scale-safe at thousands of contexts.  When [max_samples] samples have
   accumulated, every gauge's series is thinned to every other sample and
   the stride doubles, keeping memory bounded and coverage uniform over the
   whole run regardless of its length. *)
let tick t now =
  let i = t.ticks in
  t.ticks <- i + 1;
  if i mod t.stride = 0 then begin
    List.iter (fun g -> g.samples <- (now, g.read ()) :: g.samples) t.gauges;
    t.kept <- t.kept + 1;
    if t.kept >= t.max_samples then begin
      List.iter (fun g -> g.samples <- thin g.samples) t.gauges;
      t.kept <- (t.kept + 1) / 2;
      t.stride <- t.stride * 2
    end
  end

let ns_of t cycles = int_of_float (float_of_int cycles /. t.cycles_per_ns)

let hist_for t kind =
  match List.assoc_opt kind t.hists with
  | Some h -> h
  | None ->
      let h = Histogram.create ~sub_bits:t.sub_bits () in
      t.hists <- t.hists @ [ (kind, h) ];
      h

let op t ~pid ~kind ~start ~finish =
  Histogram.record (hist_for t kind) (ns_of t (finish - start));
  match t.trace with
  | None -> ()
  | Some tr -> Trace.complete tr ~pid ~name:kind ~cat:"op" ~start ~finish

(* Per-process recording buffers for parallel backends: each domain records
   into its own histogram table with no synchronization, and the tables are
   folded into the shared per-kind histograms once, at flush.  Only trace
   emission — a shared append-only buffer, active only when a trace is
   attached — still serializes, on one mutex shared by all locals. *)

type local = {
  l_pid : int;
  l_owner : t;
  mutable l_hists : (string * Histogram.t) list;
  l_trace_mutex : Mutex.t option;
}

let locals t =
  let tm = match t.trace with None -> None | Some _ -> Some (Mutex.create ()) in
  Array.init t.nprocs (fun pid ->
      { l_pid = pid; l_owner = t; l_hists = []; l_trace_mutex = tm })

let local_hist l kind =
  match List.assoc_opt kind l.l_hists with
  | Some h -> h
  | None ->
      let h = Histogram.create ~sub_bits:l.l_owner.sub_bits () in
      l.l_hists <- l.l_hists @ [ (kind, h) ];
      h

let local_op l ~kind ~start ~finish =
  Histogram.record (local_hist l kind) (ns_of l.l_owner (finish - start));
  match (l.l_owner.trace, l.l_trace_mutex) with
  | Some tr, Some m ->
      Mutex.lock m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock m)
        (fun () ->
          Trace.complete tr ~pid:l.l_pid ~name:kind ~cat:"op" ~start ~finish)
  | _ -> ()

let merge_locals t ls =
  Array.iter
    (fun l ->
      List.iter
        (fun (kind, h) -> Histogram.merge_into h ~into:(hist_for t kind))
        l.l_hists)
    ls

let sink t : Memory.Smr_event.sink =
  let c = t.counts in
  fun ctx ev ->
    match ev with
    | Memory.Smr_event.Alloc _ -> c.allocs <- c.allocs + 1
    | Free _ -> c.frees <- c.frees + 1
    | Retire _ -> c.retires <- c.retires + 1
    | Pool_put _ -> c.pool_puts <- c.pool_puts + 1
    | Pool_take _ -> c.pool_takes <- c.pool_takes + 1
    | Epoch_advance e -> (
        c.epoch_advances <- c.epoch_advances + 1;
        match t.trace with
        | None -> ()
        | Some tr ->
            Trace.instant tr ~pid:ctx.Runtime.Ctx.pid ~name:"epoch_advance"
              ~cat:"smr"
              ~at:(Runtime.Ctx.now ctx)
              ~args:[ ("epoch", Json.Int e) ]
              ())
    | Signal_sent target -> (
        c.signals_sent <- c.signals_sent + 1;
        match t.trace with
        | None -> ()
        | Some tr ->
            Trace.instant tr ~pid:ctx.Runtime.Ctx.pid ~name:"neutralize_signal"
              ~cat:"smr"
              ~at:(Runtime.Ctx.now ctx)
              ~args:[ ("target", Json.Int target) ]
              ())
    | Sweep released -> (
        c.sweeps <- c.sweeps + 1;
        c.records_swept <- c.records_swept + released;
        match t.trace with
        | None -> ()
        | Some tr ->
            Trace.instant tr ~pid:ctx.Runtime.Ctx.pid ~name:"sweep" ~cat:"smr"
              ~at:(Runtime.Ctx.now ctx)
              ~args:[ ("released", Json.Int released) ]
              ())
    | Access _ | Protect _ | Unprotect _ | Unprotect_all | Enter_q | Leave_q
    | Rprotect _ | Runprotect_all ->
        ()

let histogram t kind = List.assoc_opt kind t.hists

let latency_percentiles t =
  List.map (fun (kind, h) -> (kind, Histogram.percentiles h)) t.hists

let series t = List.map (fun g -> (g.gname, List.rev g.samples)) t.gauges

let series_total t name =
  match List.find_opt (fun g -> g.gname = name) t.gauges with
  | None -> []
  | Some g ->
      List.rev_map
        (fun (now, vs) -> (now, Array.fold_left ( + ) 0 vs))
        g.samples

let counters t =
  let c = t.counts in
  [
    ("allocs", c.allocs);
    ("frees", c.frees);
    ("retires", c.retires);
    ("pool_puts", c.pool_puts);
    ("pool_takes", c.pool_takes);
    ("epoch_advances", c.epoch_advances);
    ("signals_sent", c.signals_sent);
    ("sweeps", c.sweeps);
    ("records_swept", c.records_swept);
  ]
  @ List.map (fun (name, read) -> (name, read ())) t.extra_counters

let hist_json h =
  Json.Obj
    ([
       ("count", Json.Int (Histogram.count h));
       ("min", Json.Int (Histogram.min_value h));
       ("max", Json.Int (Histogram.max_value h));
       ("mean", Json.Float (Histogram.mean h));
     ]
    @ List.map
        (fun (p, v) ->
          let key =
            if Float.is_integer p then Printf.sprintf "p%.0f" p
            else "p" ^ String.concat "" (String.split_on_char '.' (Printf.sprintf "%.1f" p))
          in
          (key, Json.Int v))
        (Histogram.percentiles h))

let series_json g =
  let samples = List.rev g.samples in
  Json.Obj
    [
      ("t", Json.List (List.map (fun (now, _) -> Json.Int now) samples));
      ( "values",
        Json.List
          (List.map
             (fun (_, vs) ->
               Json.List (Array.to_list (Array.map (fun v -> Json.Int v) vs)))
             samples) );
    ]

let metrics_json t =
  Json.Obj
    [
      ("sample_every", Json.Int t.sample_every);
      ("nprocs", Json.Int t.nprocs);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ( "latency_ns",
        Json.Obj (List.map (fun (kind, h) -> (kind, hist_json h)) t.hists) );
      ("series", Json.Obj (List.map (fun g -> (g.gname, series_json g)) t.gauges));
    ]

let write_metrics t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf (metrics_json t);
      Buffer.output_buffer oc buf;
      output_char oc '\n')
