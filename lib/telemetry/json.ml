type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.17g round-trips any double but litters the file; 12 significant
           digits is enough for µs timestamps and rates. *)
        let s = Printf.sprintf "%.12g" f in
        Buffer.add_string buf s
      else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = lit then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string"
    else
      let c = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if st.pos >= String.length st.s then fail st "unterminated escape";
          let e = st.s.[st.pos] in
          st.pos <- st.pos + 1;
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if st.pos + 4 > String.length st.s then fail st "short \\u escape";
              let hex = String.sub st.s st.pos 4 in
              st.pos <- st.pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail st "bad \\u escape"
              in
              (* Telemetry files only contain ASCII; anything else keeps its
                 low byte, which is fine for a test-oriented parser. *)
              Buffer.add_char buf (Char.chr (code land 0xff));
              go ()
          | _ -> fail st "bad escape")
      | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  if tok = "" then fail st "expected number";
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail st "bad float"
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        expect st '}';
        Obj []
      end
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              members ((k, v) :: acc)
          | Some '}' ->
              expect st '}';
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        expect st ']';
        List []
      end
      else
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              elements (v :: acc)
          | Some ']' ->
              expect st ']';
              List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        elements []
  | Some '"' -> String (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
