(** The telemetry recorder: one object that a trial threads through the
    simulator tick hook, the SMR event bus and the operation loop, and that
    renders everything it collected as a metrics JSON document and
    (optionally) a Chrome trace.

    Three collection channels, all host-side (recording never costs
    simulated cycles — see DESIGN.md §8):

    - {b Latency histograms.}  {!op} records one completed data-structure
      operation: virtual-cycle duration converted to simulated nanoseconds
      into a per-kind log-bucketed histogram, plus (when tracing) an ["X"]
      span on the process' track.
    - {b Time series.}  {!tick}, driven by [Sim.run ~tick], reads every
      registered gauge and appends one sample per series.  Gauges are
      uninstrumented reads of simulation state (limbo populations, epoch
      lag, pool occupancy, bytes in use) performed in scheduler context.
    - {b Event counters.}  {!sink} attached to the heap's {!Memory.Smr_event}
      bus counts lifecycle traffic (allocs, frees, retires, pool puts and
      takes) and the reclamation control plane (epoch advances,
      neutralization signals, sweeps); control-plane events also become
      trace instants. *)

type t

val create :
  ?sub_bits:int ->
  ?sample_every:int ->
  ?max_samples:int ->
  ?trace:Trace.t ->
  cycles_per_ns:float ->
  nprocs:int ->
  unit ->
  t
(** [sample_every] (default 50_000 cycles) is the gauge sampling period the
    trial should pass to [Sim.run ~tick].  [max_samples] (default 512)
    bounds every gauge's retained series: once that many samples have
    accumulated, the series is thinned to every other sample and the keep
    stride doubles, so memory stays bounded and coverage stays uniform no
    matter how long the run — the scale-safety property 1024-context trials
    rely on.  [trace], when given, receives op spans and control-plane
    instants; process tracks are named at creation.  Raises
    [Invalid_argument] if [cycles_per_ns <= 0], [sample_every <= 0] or
    [max_samples < 2]. *)

val sample_every : t -> int
val nprocs : t -> int
val trace : t -> Trace.t option

val add_gauge : t -> name:string -> (unit -> int array) -> unit
(** Register a per-process gauge (a scalar gauge returns a 1-element
    array).  Sampled on every {!tick}. *)

val add_counter : t -> name:string -> (unit -> int) -> unit
(** Register an external monotone counter (reclamation pressure, breaker
    trips, shed totals).  Not sampled: the getter is read when
    {!counters} / {!metrics_json} render, and the value is appended after
    the event-bus counters in registration order. *)

val tick : t -> int -> unit
(** Sample all gauges at virtual time [now] (cycles).  Only every
    [stride]-th call is kept (the stride starts at 1 and doubles whenever
    [max_samples] is reached); a skipped call costs one increment and one
    compare — no gauge reads, no allocation. *)

val sink : t -> Memory.Smr_event.sink
(** The event-bus sink to attach with [Memory.Heap.add_sink]. *)

val op : t -> pid:int -> kind:string -> start:int -> finish:int -> unit
(** Record one completed operation ([start]/[finish] in virtual cycles). *)

(** {2 Per-process buffers for parallel backends}

    On the domains backend many workers record concurrently; routing them
    all through {!op} would serialize the hot path on one lock.  Instead
    each worker records into its own {!local} buffer with no
    synchronization, and {!merge_locals} folds every buffer into the shared
    per-kind histograms once, after the run.  When a trace is attached,
    trace emission (a shared buffer) still serializes on one mutex shared
    by the locals; histogram recording never does. *)

type local

val locals : t -> local array
(** One buffer per process, indexed by pid. *)

val local_op : local -> kind:string -> start:int -> finish:int -> unit
(** Record one completed operation into this process' buffer. *)

val merge_locals : t -> local array -> unit
(** Fold every buffer's histograms into the recorder's shared table (same
    [sub_bits], so the merge is exact).  Call once, after all recording
    processes have finished. *)

val histogram : t -> string -> Histogram.t option
(** The latency histogram (in simulated ns) for an operation kind. *)

val latency_percentiles : t -> (string * (float * int) list) list
(** Per kind (sorted), the p50/p90/p99/p99.9 row in simulated ns. *)

val series : t -> (string * (int * int array) list) list
(** Per gauge, samples in chronological order as [(now, values)]. *)

val series_total : t -> string -> (int * int) list
(** A gauge's samples summed across processes — the limbo time-series view
    the E-stall experiment plots. *)

val counters : t -> (string * int) list
(** Event-bus counters, fixed order: allocs, frees, retires, pool_puts,
    pool_takes, epoch_advances, signals_sent, sweeps, records_swept —
    followed by any {!add_counter} registrations in registration order. *)

val metrics_json : t -> Json.t
(** Everything above as one JSON object:
    [{ "sample_every": _, "counters": {...},
       "latency_ns": { kind: {count,min,max,mean,p50,p90,p99,p999} },
       "series": { name: {"t": [...], "values": [[per-proc]...]} } }]. *)

val write_metrics : t -> string -> unit
(** Render {!metrics_json} to a file. *)
