(** Tail-latency SLO verdicts: compare a latency histogram against
    per-percentile budgets and report pass/fail with the breached
    percentiles (see the implementation header). *)

type budget = { p50_ns : int option; p99_ns : int option; p999_ns : int option }

val no_budget : budget
(** Every percentile unconstrained: every verdict passes. *)

val budget_of_spec : string -> budget
(** Parse ["p99=20000,p999=100000"]-style specs (values in ns; empty string
    = {!no_budget}).  Raises [Invalid_argument] on malformed input. *)

type breach = { percentile : string; observed_ns : int; budget_ns : int }

type verdict = {
  scope : string;
  kind : string;
  count : int;
  p50 : int;
  p99 : int;
  p999 : int;
  breaches : breach list;
  pass : bool;
}

val judge : budget -> scope:string -> kind:string -> Histogram.t -> verdict
(** Judge one histogram.  An empty histogram passes vacuously. *)

val verdict_json : verdict -> Json.t
val all_pass : verdict list -> bool
