(** Tail-latency SLO verdicts: compare a latency histogram against
    per-percentile budgets and report pass/fail with the breached
    percentiles (see the implementation header). *)

type budget = { p50_ns : int option; p99_ns : int option; p999_ns : int option }

val no_budget : budget
(** Every percentile unconstrained: every verdict passes. *)

val budget_of_spec : string -> budget
(** Parse ["p99=20000,p999=100000"]-style specs (values in ns; empty string
    = {!no_budget}).  Raises [Invalid_argument] on malformed input. *)

type breach = { percentile : string; observed_ns : int; budget_ns : int }

val unserved_ns : int
(** The "latency" of a percentile rank that falls in the unserved tail
    when judging against demand ([max_int]): unserved requests never
    completed, so any budget on that percentile is breached. *)

type verdict = {
  scope : string;
  kind : string;
  count : int;  (** requests served (histogram population) *)
  demand : int;  (** requests addressed to the scope; [> count] when some
                     were shed, rejected or cancelled unserved *)
  p50 : int;
  p99 : int;
  p999 : int;
  breaches : breach list;
  pass : bool;
}

val judge : budget -> scope:string -> kind:string -> Histogram.t -> verdict
(** Judge one histogram.  An empty histogram passes vacuously. *)

val judge_demand :
  budget -> scope:string -> kind:string -> demand:int -> Histogram.t -> verdict
(** Judge against the full demand population: the [demand - count]
    requests missing from the histogram (shed, breaker-rejected, cancelled
    past deadline) sort as infinitely late, so a percentile whose rank
    falls among them reads {!unserved_ns} and breaches any budget.  A
    [demand] below the histogram count is clamped up to it. *)

val verdict_json : verdict -> Json.t
val all_pass : verdict list -> bool
