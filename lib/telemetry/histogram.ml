type t = {
  sub_bits : int;
  mutable counts : int array;  (* grows on demand, bucket-indexed *)
  mutable count : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable total : float;  (* of quantized values; float avoids overflow *)
}

let create ?(sub_bits = 5) () =
  if sub_bits < 1 || sub_bits > 16 then
    invalid_arg "Histogram.create: sub_bits must be in 1..16";
  {
    sub_bits;
    counts = Array.make (4 lsl sub_bits) 0;
    count = 0;
    min_v = max_int;
    max_v = 0;
    total = 0.0;
  }

let floor_log2 v =
  (* v >= 1 *)
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

(* Bucket layout: values < 2^sub_bits map to themselves (one exact bucket
   each); a value v >= 2^sub_bits with m = floor_log2 v sits in the
   power-of-two range [2^m, 2^(m+1)), which contributes 2^sub_bits
   sub-buckets selected by the sub_bits bits below the leading one. *)
let index t v =
  let b = t.sub_bits in
  if v < 1 lsl b then v
  else
    let m = floor_log2 v in
    let shift = m - b in
    (* ranges below 2^b contributed exactly 2^b buckets total *)
    ((shift + 1) lsl b) + ((v lsr shift) - (1 lsl b))

(* Smallest value mapping to bucket [i], and the bucket's width. *)
let bucket_base t i =
  let b = t.sub_bits in
  if i < 1 lsl b then (i, 1)
  else
    let shift = (i lsr b) - 1 in
    let sub = (i land ((1 lsl b) - 1)) + (1 lsl b) in
    (sub lsl shift, 1 lsl shift)

let value_at t i =
  let base, width = bucket_base t i in
  base + ((width - 1) / 2)

let ensure t i =
  if i >= Array.length t.counts then begin
    let n = ref (Array.length t.counts) in
    while i >= !n do
      n := !n * 2
    done;
    let counts = Array.make !n 0 in
    Array.blit t.counts 0 counts 0 (Array.length t.counts);
    t.counts <- counts
  end

let record t v =
  let v = if v < 0 then 0 else v in
  let i = index t v in
  ensure t i;
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  t.total <- t.total +. float_of_int (value_at t i)

let count t = t.count
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let total t = int_of_float t.total
let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count

let quantile t q =
  if t.count = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let target =
      let x = int_of_float (ceil (q *. float_of_int t.count)) in
      if x < 1 then 1 else x
    in
    let acc = ref 0 in
    let result = ref t.max_v in
    (try
       Array.iteri
         (fun i c ->
           if c > 0 then begin
             acc := !acc + c;
             if !acc >= target then begin
               result := value_at t i;
               raise Exit
             end
           end)
         t.counts
     with Exit -> ());
    !result
  end

let percentiles t =
  List.map (fun p -> (p, quantile t (p /. 100.0))) [ 50.0; 90.0; 99.0; 99.9 ]

let merge_into src ~into =
  if src.sub_bits <> into.sub_bits then
    invalid_arg "Histogram.merge_into: sub_bits mismatch";
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        ensure into i;
        into.counts.(i) <- into.counts.(i) + c;
        into.count <- into.count + c;
        into.total <- into.total +. (float_of_int c *. float_of_int (value_at into i))
      end)
    src.counts;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.min_v <- max_int;
  t.max_v <- 0;
  t.total <- 0.0
