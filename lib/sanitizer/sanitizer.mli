(** Shadow-state SMR sanitizer.

    Consumes the {!Memory.Smr_event} stream of one heap and replays it
    against a shadow copy of every record's lifecycle
    (fresh → published → retired → freed → recycled) and of every process'
    protection/quiescence state.  Scheme-specific invariants — what makes a
    free premature, which accesses need a covering hazard — are selected by
    a {!Config.t} derived from the reclaimer's capability flags.

    The sanitizer is a checker, not a scheme: it never blocks a free or an
    access, it only records {!violation}s (de-duplicated per record and
    kind).  Wrap any run in {!with_checks}; call {!leak_check} after the
    final [flush] to reconcile the shadow limbo ledger with the reclaimer's
    own [limbo_size].

    See DESIGN.md §"Sanitizer" for the state machine and the per-scheme
    invariant table. *)

(** What an instrumented field access is checked against.

    - [Lenient]: accesses are not checked (StackTrack: reading reclaimed
      memory is the sanctioned transaction-abort mechanism).
    - [Epoch]: only access to a {e freed} record is a violation — retired
      records remain safe to traverse (EBR/QSBR/DEBRA family, ThreadScan).
    - [Hazard]: additionally, access to a {e retired} record is a violation
      unless the accessing process registered a protection {e before} the
      retire (HP, RC). *)
type access_discipline = Lenient | Epoch | Hazard

(** What a free of a retired record is checked against.

    - [Skip]: frees are not checked ([none] never frees; StackTrack frees
      under other processes' unpublished register pointers by design).
    - [Grace_session]: a free is premature while any process is still inside
      the operation (session) that was open when the record was retired
      (EBR, DEBRA, DEBRA+).
    - [Grace_qpoint]: a free is premature while any process has not passed a
      quiescent point since the retire (QSBR).
    - [Hazard_scan]: a free is premature while any process holds a
      protection registered before the retire (HP, RC, ThreadScan). *)
type free_discipline = Skip | Grace_session | Grace_qpoint | Hazard_scan

module Config : sig
  type t = {
    scheme : string;
    access : access_discipline;
    free : free_discipline;
    track_limbo : bool;
        (** maintain the shadow limbo ledger and check it in {!leak_check};
            off for [none] (leaks by design) and for deliberately broken
            schemes under test *)
  }

  val make :
    ?track_limbo:bool ->
    scheme:string ->
    access:access_discipline ->
    free:free_discipline ->
    unit ->
    t

  (** Derive the discipline from a reclaimer's capability flags (plus
      name-based refinements: ["qsbr"] has quiescent {e points} rather than
      sessions, ["threadscan"] scans roots rather than waiting for grace,
      ["none"] never frees). *)
  val of_flags :
    scheme:string ->
    supports_crash_recovery:bool ->
    allows_retired_traversal:bool ->
    sandboxed:bool ->
    unit ->
    t
end

(** Violation kinds.  Double-retire and free-without-retire are no longer
    checked here: the typestate API ({!Reclaim.Intf.RECORD_MANAGER.Typed})
    makes both unrepresentable — see the "static guarantees" table in the
    README. *)
type kind =
  | Use_after_free  (** access to a freed record *)
  | Unprotected_access
      (** access to a retired record without a covering protection *)
  | Premature_free
      (** free while a grace period was open or a protection held *)
  | Double_free
  | Leak  (** shadow ledger and reclaimer limbo disagree at the end *)

type violation = {
  kind : kind;
  pid : int;  (** process on whose context the offending event fired *)
  time : int;  (** virtual time ({!Runtime.Ctx.now}) at the event *)
  seq : int;  (** global event sequence number *)
  ptr : Memory.Ptr.t;  (** offending record (unmarked); null for [Leak] *)
  detail : string;  (** provenance: allocator/retirer pids and sequences *)
}

type t

val create :
  config:Config.t -> heap:Memory.Heap.t -> group:Runtime.Group.t -> t

(** [with_checks t f] attaches the sanitizer to the heap's event hub and to
    every context's instrumentation hook (composing with — not replacing —
    hooks installed by e.g. the simulator), runs [f], and detaches, even on
    exception.  Nesting is not supported: one sanitizer per heap at a
    time. *)
val with_checks : t -> (unit -> 'a) -> 'a

(** [leak_check t ~limbo_size] reconciles the shadow ledger (records retired
    but never freed) against the reclaimer's reported [limbo_size]; any
    disagreement is recorded as a {!Leak} violation.  Call after quiescing
    and [flush]ing the reclaimer.  No-op when [track_limbo] is off. *)
val leak_check : t -> limbo_size:int -> unit

val violations : t -> violation list
(** chronological order *)

val violation_count : t -> int
val has : t -> kind -> bool

val retired_unfreed : t -> int
(** current shadow limbo ledger *)

val events_seen : t -> int
val accesses_checked : t -> int
(** instrumented accesses observed through the context hook; nonzero proves
    the hook chain is wired *)

val kind_name : kind -> string
val pp_violation : Format.formatter -> violation -> unit

val report : t -> string
(** human-readable summary of all violations (empty string when clean) *)
