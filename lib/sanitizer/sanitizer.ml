(** Shadow-state SMR sanitizer — implementation.

    The shadow state is keyed by unmarked pointer value.  Because the arena
    generation tag is part of the pointer, a recycled slot gets a fresh key
    per incarnation when it goes through the arena ([Alloc]/[Free]); a slot
    recycled through a {e pool} keeps its generation, so [Pool_take] resets
    the existing binding instead.  One deliberate blind spot follows: the
    sanitizer cannot distinguish two pool-reuse incarnations of the same
    record by pointer value alone, which is exactly the ABA the pools
    reintroduce — protections are therefore tracked as per-incarnation
    sequence numbers, not just membership.

    Soundness of the free checks (why real schemes never trip them):
    - [Grace_session]: the retire-time snapshot records every open session,
      including the retirer's own.  An epoch-based scheme frees a record
      only after every process has either announced a later epoch (which it
      can only do from [leave_qstate], i.e. a {e new} session) or declared
      quiescence ([enter_qstate], closing the session) — so by free time no
      snapshotted session is still open.
    - [Grace_qpoint]: QSBR frees a batch once every counter strictly
      exceeds the close-time snapshot, which is ≥ the retire-time snapshot
      replayed here.
    - [Hazard_scan]: only protections registered {e before} the retire
      block a free: a scan may legitimately miss an announcement made after
      it read the announcement array — that is the race the HP validation
      step exists for, and the racing protector's verify is what fails.
    - rprotect announcements block a free regardless of when they were made:
      DEBRA+'s signal handshake (signal, handler rprotects, ack, then scan)
      guarantees the scan sees every recovery announcement. *)

type access_discipline = Lenient | Epoch | Hazard
type free_discipline = Skip | Grace_session | Grace_qpoint | Hazard_scan

module Config = struct
  type t = {
    scheme : string;
    access : access_discipline;
    free : free_discipline;
    track_limbo : bool;
  }

  let make ?(track_limbo = true) ~scheme ~access ~free () =
    { scheme; access; free; track_limbo }

  let of_flags ~scheme ~supports_crash_recovery:_ ~allows_retired_traversal
      ~sandboxed () =
    if sandboxed then
      (* StackTrack: reading reclaimed memory is the abort mechanism, and a
         scan cannot see other processes' unpublished register pointers.
         VBR lands here too: it frees without any grace period and relies on
         version re-validation, so a read of reclaimed memory is its
         checkpoint rollback, not a violation. *)
      make ~scheme ~access:Lenient ~free:Skip ()
    else
      match scheme with
      | "none" -> make ~scheme ~access:Epoch ~free:Skip ~track_limbo:false ()
      | "qsbr" -> make ~scheme ~access:Epoch ~free:Grace_qpoint ()
      | "threadscan" -> make ~scheme ~access:Epoch ~free:Hazard_scan ()
      | "hyaline" ->
          (* batch reference counts: a batch is freed only after every
             session charged at seal time has closed — exactly the
             retire-time session snapshot [Grace_session] replays *)
          make ~scheme ~access:Epoch ~free:Grace_session ()
      | _ ->
          if allows_retired_traversal then
            make ~scheme ~access:Epoch ~free:Grace_session ()
          else make ~scheme ~access:Hazard ~free:Hazard_scan ()
end

(* [Double_retire] and [Free_without_retire] were deleted as checks: the
   typestate surface ({!Reclaim.Intf.RECORD_MANAGER.Typed}) makes both
   unrepresentable — retire consumes a single-use [unlinked] witness, and a
   published record has no [fresh] witness left to [abandon] back to the
   allocator.  See DESIGN.md §12. *)
type kind =
  | Use_after_free
  | Unprotected_access
  | Premature_free
  | Double_free
  | Leak

let kind_name = function
  | Use_after_free -> "use-after-free"
  | Unprotected_access -> "unprotected-access"
  | Premature_free -> "premature-free"
  | Double_free -> "double-free"
  | Leak -> "leak"

type violation = {
  kind : kind;
  pid : int;
  time : int;
  seq : int;
  ptr : Memory.Ptr.t;
  detail : string;
}

(* Shadow record lifecycle.  Fresh records become Published on the first
   access by a non-owner process (the only publication signal that cannot
   alias: packed update-words can look like pointers, so stores are not
   sniffed).  Fresh → Retired without publication is legal (operation
   descriptors, queue dummies). *)
type rstate = Fresh | Published | Retired | Freed

type rinfo = {
  mutable state : rstate;
  mutable owner : int;
  mutable alloc_seq : int;
  mutable retire_seq : int;
  mutable retire_pid : int;
  mutable grace : (int * int) array;  (* open (pid, session) at retire *)
  mutable qsnap : int array;  (* qcount vector at retire *)
}

type pstate = {
  mutable in_session : bool;
  mutable session : int;  (* bumped at every Leave_q *)
  mutable qcount : int;  (* bumped at every Enter_q *)
  hazards : (int, int list ref) Hashtbl.t;  (* key → protect seqs, newest first *)
  rprotects : (int, int list ref) Hashtbl.t;
}

type t = {
  config : Config.t;
  heap : Memory.Heap.t;
  group : Runtime.Group.t;
  records : (int, rinfo) Hashtbl.t;
  procs : pstate array;
  mutable seq : int;
  mutable ledger : int;  (* retired, not yet freed *)
  mutable events : int;
  mutable accesses : int;
  mutable viols : violation list;  (* newest first *)
  mutable nviols : int;
  seen : (kind * int, unit) Hashtbl.t;  (* de-dup per (kind, record) *)
}

let create ~config ~heap ~group =
  {
    config;
    heap;
    group;
    records = Hashtbl.create 4096;
    procs =
      Array.init (Runtime.Group.nprocs group) (fun _ ->
          {
            in_session = false;
            session = 0;
            qcount = 0;
            hazards = Hashtbl.create 16;
            rprotects = Hashtbl.create 16;
          });
    seq = 0;
    ledger = 0;
    events = 0;
    accesses = 0;
    viols = [];
    nviols = 0;
    seen = Hashtbl.create 64;
  }

let flag t ctx kind ~ptr ~detail =
  let dkey = (kind, ptr) in
  if not (Hashtbl.mem t.seen dkey) then begin
    Hashtbl.add t.seen dkey ();
    t.nviols <- t.nviols + 1;
    t.viols <-
      {
        kind;
        pid = ctx.Runtime.Ctx.pid;
        time = Runtime.Ctx.now ctx;
        seq = t.seq;
        ptr;
        detail;
      }
      :: t.viols
  end

let provenance r =
  Printf.sprintf "alloc by pid %d at #%d%s" r.owner r.alloc_seq
    (if r.retire_seq >= 0 then
       Printf.sprintf ", retired by pid %d at #%d" r.retire_pid r.retire_seq
     else "")

let fresh_rinfo ~owner ~seq ~state =
  {
    state;
    owner;
    alloc_seq = seq;
    retire_seq = -1;
    retire_pid = -1;
    grace = [||];
    qsnap = [||];
  }

(* Per-process protection multisets. *)

let push_prot tbl key seq =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := seq :: !l
  | None -> Hashtbl.add tbl key (ref [ seq ])

let pop_prot tbl key =
  match Hashtbl.find_opt tbl key with
  | Some l -> (
      match !l with
      | [] | [ _ ] -> Hashtbl.remove tbl key
      | _ :: rest -> l := rest)
  | None -> ()

let holds_before tbl key ~retire =
  match Hashtbl.find_opt tbl key with
  | Some l -> List.exists (fun s -> s < retire) !l
  | None -> false

let holds_any tbl key = Hashtbl.mem tbl key

(* Free-time grace/hazard checks (the record is Retired).

   Crash-awareness: a process the OS reports as crashed is excluded from
   every blocking condition.  Its shadow session stays open and its hazard
   multiset is frozen forever, but a dead process performs no further
   access, so freeing a record only it could have reached is safe — this is
   precisely the fact DEBRA+ exploits when [pthread_kill] returns [ESRCH].
   Schemes that conservatively keep such records anyway (HP, RC: the dead
   process' announcements persist in shared memory) simply never free them,
   so the relaxation cannot mask a real bug in those schemes. *)
let check_free t ctx r key =
  let ptr = key in
  let dead pid = Runtime.Group.is_crashed t.group pid in
  (match t.config.free with
  | Skip -> ()
  | Grace_session ->
      Array.iter
        (fun (pid, session) ->
          let p = t.procs.(pid) in
          if (not (dead pid)) && p.in_session && p.session = session then
            flag t ctx Premature_free ~ptr
              ~detail:
                (Printf.sprintf
                   "pid %d is still inside the session open at retire (%s)" pid
                   (provenance r)))
        r.grace
  | Grace_qpoint ->
      Array.iteri
        (fun pid snap ->
          if (not (dead pid)) && t.procs.(pid).qcount = snap then
            flag t ctx Premature_free ~ptr
              ~detail:
                (Printf.sprintf
                   "pid %d passed no quiescent point since retire (%s)" pid
                   (provenance r)))
        r.qsnap
  | Hazard_scan ->
      Array.iteri
        (fun pid p ->
          if (not (dead pid)) && holds_before p.hazards key ~retire:r.retire_seq
          then
            flag t ctx Premature_free ~ptr
              ~detail:
                (Printf.sprintf
                   "pid %d holds a protection registered before retire (%s)"
                   pid (provenance r)))
        t.procs);
  if t.config.free <> Skip then
    Array.iteri
      (fun pid p ->
        if (not (dead pid)) && holds_any p.rprotects key then
          flag t ctx Premature_free ~ptr
            ~detail:
              (Printf.sprintf "pid %d holds a recovery announcement (%s)" pid
                 (provenance r)))
      t.procs

(* A record left limbo back to its allocator: Free (through the arena,
   generation bumped) or Pool_put (generation kept). *)
let on_free t ctx key ~via =
  match Hashtbl.find_opt t.records key with
  | None ->
      (* Born before the sanitizer attached; record the death silently. *)
      Hashtbl.replace t.records key (fresh_rinfo ~owner:(-1) ~seq:t.seq ~state:Freed)
  | Some r -> (
      match r.state with
      | Fresh -> r.state <- Freed (* unpublished dealloc, always legal *)
      | Published ->
          (* Freeing a published record without retiring it is untypeable:
             [Typed.abandon] needs the fresh witness that publication spent.
             Record the death without a check. *)
          r.state <- Freed
      | Retired ->
          check_free t ctx r key;
          if t.config.track_limbo then t.ledger <- t.ledger - 1;
          r.state <- Freed
      | Freed ->
          flag t ctx Double_free ~ptr:key
            ~detail:(Printf.sprintf "second %s (%s)" via (provenance r)))

let on_event t ctx (ev : Memory.Smr_event.t) =
  t.seq <- t.seq + 1;
  let pid = ctx.Runtime.Ctx.pid in
  let ps = t.procs.(pid) in
  match ev with
  | Alloc p | Pool_take p ->
      let key = Memory.Ptr.unmark p in
      Hashtbl.replace t.records key
        (fresh_rinfo ~owner:pid ~seq:t.seq ~state:Fresh)
  | Free p -> on_free t ctx (Memory.Ptr.unmark p) ~via:"arena free"
  | Pool_put p -> on_free t ctx (Memory.Ptr.unmark p) ~via:"pool put"
  | Access (p, _) -> (
      t.events <- t.events + 1;
      let key = Memory.Ptr.unmark p in
      match Hashtbl.find_opt t.records key with
      | None ->
          (* Born before attach: assume live and published. *)
          Hashtbl.replace t.records key
            (fresh_rinfo ~owner:(-1) ~seq:t.seq ~state:Published)
      | Some r -> (
          match r.state with
          | Fresh -> if pid <> r.owner then r.state <- Published
          | Published -> ()
          | Retired ->
              if
                t.config.access = Hazard
                && not (holds_before ps.hazards key ~retire:r.retire_seq)
              then
                flag t ctx Unprotected_access ~ptr:key
                  ~detail:
                    (Printf.sprintf
                       "access to retired record without a protection \
                        registered before retire (%s)"
                       (provenance r))
          | Freed ->
              if t.config.access <> Lenient then
                flag t ctx Use_after_free ~ptr:key
                  ~detail:
                    (Printf.sprintf "access to freed record (%s)"
                       (provenance r))))
  | Retire p -> (
      let key = Memory.Ptr.unmark p in
      let r =
        match Hashtbl.find_opt t.records key with
        | Some r -> r
        | None ->
            let r = fresh_rinfo ~owner:(-1) ~seq:t.seq ~state:Published in
            Hashtbl.replace t.records key r;
            r
      in
      match r.state with
      | Retired | Freed ->
          (* A second retire of the same incarnation is untypeable: the
             [unlinked] witness is consumed by the first [Typed.retire].
             Keep the shadow state as-is. *)
          ()
      | Fresh | Published ->
          r.state <- Retired;
          r.retire_seq <- t.seq;
          r.retire_pid <- pid;
          if t.config.track_limbo then t.ledger <- t.ledger + 1;
          (match t.config.free with
          | Grace_session ->
              let open_sessions = ref [] in
              Array.iteri
                (fun i p ->
                  if p.in_session then
                    open_sessions := (i, p.session) :: !open_sessions)
                t.procs;
              r.grace <- Array.of_list !open_sessions
          | Grace_qpoint ->
              r.qsnap <- Array.map (fun p -> p.qcount) t.procs
          | Skip | Hazard_scan -> ()))
  | Protect p -> push_prot ps.hazards (Memory.Ptr.unmark p) t.seq
  | Unprotect p -> pop_prot ps.hazards (Memory.Ptr.unmark p)
  | Unprotect_all -> Hashtbl.reset ps.hazards
  | Rprotect p -> push_prot ps.rprotects (Memory.Ptr.unmark p) t.seq
  | Runprotect_all -> Hashtbl.reset ps.rprotects
  | Leave_q ->
      ps.session <- ps.session + 1;
      ps.in_session <- true
  | Enter_q ->
      ps.in_session <- false;
      ps.qcount <- ps.qcount + 1
  | Epoch_advance _ | Signal_sent _ | Sweep _ ->
      (* Reclamation control-plane events: observability only, no shadow
         state transitions.  Soundness is judged from the lifecycle and
         protection events alone. *)
      ()

let with_checks t f =
  let sub = Memory.Heap.add_sink t.heap (fun ctx ev -> on_event t ctx ev) in
  let restores =
    Array.map
      (fun ctx ->
        Runtime.Ctx.add_hook ctx (fun _ ~line:_ _ ->
            t.accesses <- t.accesses + 1))
      t.group.Runtime.Group.ctxs
  in
  Fun.protect
    ~finally:(fun () ->
      Memory.Heap.remove_sink t.heap sub;
      Array.iter (fun restore -> restore ()) restores)
    f

let leak_check t ~limbo_size =
  if t.config.track_limbo && t.ledger <> limbo_size then begin
    t.seq <- t.seq + 1;
    let dkey = (Leak, Memory.Ptr.null) in
    if not (Hashtbl.mem t.seen dkey) then begin
      Hashtbl.add t.seen dkey ();
      t.nviols <- t.nviols + 1;
      t.viols <-
        {
          kind = Leak;
          pid = 0;
          time = 0;
          seq = t.seq;
          ptr = Memory.Ptr.null;
          detail =
            Printf.sprintf
              "shadow ledger says %d records in limbo, reclaimer reports %d"
              t.ledger limbo_size;
        }
        :: t.viols
    end
  end

let violations t = List.rev t.viols
let violation_count t = t.nviols
let has t kind = List.exists (fun v -> v.kind = kind) t.viols
let retired_unfreed t = t.ledger
let events_seen t = t.seq
let accesses_checked t = t.accesses

let pp_violation fmt v =
  Format.fprintf fmt "[%s] pid %d, t=%d, event #%d, record %s: %s"
    (kind_name v.kind) v.pid v.time v.seq
    (Memory.Ptr.to_string v.ptr)
    v.detail

let report t =
  if t.nviols = 0 then ""
  else
    let buf = Buffer.create 256 in
    let fmt = Format.formatter_of_buffer buf in
    Format.fprintf fmt "%d violation(s) under scheme %s:@." t.nviols
      t.config.scheme;
    List.iter (fun v -> Format.fprintf fmt "  %a@." pp_violation v) (violations t);
    Format.pp_print_flush fmt ();
    Buffer.contents buf
