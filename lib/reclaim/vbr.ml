(** Version-based reclamation (Sheffi, Herlihy & Petrank, VBR; PPoPP'21),
    mapped onto this harness's tagged-pointer arenas.

    VBR attaches a version to every record and to a coarse global clock;
    readers never announce anything.  A dereference is preceded by a
    re-validation of the record's version against the version remembered
    when the pointer was read: if the record was reclaimed (and possibly
    reused) in between, the versions disagree and the operation rolls
    back to a checkpoint.  Retired records are handed back to the
    allocator {e immediately} (per retired block here, to keep the paper's
    amortization) — there is no grace period, no announcement scan, and
    reclamation can never be blocked by a stalled or crashed process.

    The mapping onto this codebase is direct, which is why the ROADMAP
    calls VBR a natural fit: the arena's per-slot {e generation counters}
    are exactly VBR's versions.  A tagged pointer carries the generation
    it was created under; {!Memory.Arena.is_valid} is the version
    re-validation; {!Memory.Arena.release} (reached through
    {!Alloc.Recycle} + {!Pool.Direct}) is the version bump at reclaim
    time.  A stale access that slips past [protect] raises
    {!Memory.Arena.Use_after_free}, which the data structure treats as
    VBR's checkpoint rollback ([sandboxed = true], the same recovery path
    StackTrack's transaction aborts use in [run_op]).

    Pairing: VBR {e must} be assembled as
    [Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Vbr.Make)] — the
    recycling allocator routes every free through the arena so the
    generation (= version) advances on each reuse.  A generation-preserving
    pool ([Pool.Shared]) would reintroduce exactly the ABA the versions
    exist to exclude. *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type local = { bags : Bag.Blockbag.t array (* per arena, retired records *) }

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    version : int Runtime.Svar.t;
        (* coarse global version clock: bumped once per reclaimed batch;
           per-record versions live in the arena generation counters *)
    locals : local array;
  }

  let name = "vbr"
  let supports_crash_recovery = false
  let allows_retired_traversal = false
  let sandboxed = true

  let create env pool =
    let n = Intf.Env.nprocs env in
    {
      env;
      pool;
      version = Runtime.Svar.make 1;
      locals =
        Array.init n (fun pid ->
            {
              bags =
                Array.init Memory.Ptr.max_arenas (fun _ ->
                    Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
            });
    }

  (* Operation boundaries are checkpoints, not announcements: nothing is
     published, so they cost nothing but the event. *)
  let leave_qstate t ctx = Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q
  let enter_qstate t ctx = Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q
  let is_quiescent _t _ctx = false

  (* The heart of VBR: no announcement, no fence — re-validate the version
     carried by the tagged pointer against the record's current one, then
     run the caller's structural check.  A failed validation means the
     record was reclaimed since the pointer was read; the caller restarts
     from its checkpoint. *)
  let protect t ctx p ~verify =
    let p = Memory.Ptr.unmark p in
    (* one version read + compare *)
    Runtime.Ctx.work ctx 2;
    let arena = Memory.Heap.arena_of t.env.Intf.Env.heap p in
    Memory.Arena.is_valid arena p
    && verify ()
    && begin
         Intf.Env.emit t.env ctx (Memory.Smr_event.Protect p);
         true
       end

  let unprotect t ctx p =
    Intf.Env.emit t.env ctx (Memory.Smr_event.Unprotect (Memory.Ptr.unmark p))

  let unprotect_all t ctx =
    Intf.Env.emit t.env ctx Memory.Smr_event.Unprotect_all

  (* Protection is not a state VBR tracks — validity of the version is the
     only meaningful question. *)
  let is_protected t _ctx p =
    let p = Memory.Ptr.unmark p in
    Memory.Arena.is_valid (Memory.Heap.arena_of t.env.Intf.Env.heap p) p

  (* Hand every full block of retired records straight back to the pool:
     with the Recycle/Direct pairing each record passes through the arena,
     which bumps its generation — the version bump that invalidates every
     stale pointer still pointing at the slot. *)
  let reclaim_full_blocks t ctx l =
    let released = ref 0 in
    Array.iter
      (fun bag ->
        released :=
          !released
          + Bag.Blockbag.move_all_full_blocks bag ~into:(fun blk ->
                P.release_block t.pool ctx blk))
      l.bags;
    if !released > 0 then begin
      let v = Runtime.Svar.faa ctx t.version 1 in
      Intf.Env.emit t.env ctx (Memory.Smr_event.Epoch_advance (v + 1));
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released)
    end;
    !released

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Runtime.Ctx.work ctx 2;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let bag = l.bags.(Memory.Ptr.arena_id p) in
    Bag.Blockbag.add bag p;
    (* No grace period: as soon as a block fills, it is reclaimed.  Limbo
       is bounded by n * arenas * (B - 1) regardless of what any other
       process does — VBR is robust by construction.  (The chain counts
       the always-present partial head block; > 1 means a full block sits
       behind it.) *)
    if Bag.Blockbag.size_in_blocks bag > 1 then
      ignore (reclaim_full_blocks t ctx l)

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals

  (* Readers make no announcements, so nothing can lag the version clock. *)
  let epoch_lag t = Array.make (Array.length t.locals) 0

  let flush t ctx =
    Array.iter
      (fun l ->
        Array.iter
          (fun b ->
            ignore
              (Scan_util.flush_bag ctx b
                 ~keep:(fun _ -> false)
                 ~release:(fun ctx p -> P.release t.pool ctx p)
                 ~release_block:(fun blk -> P.release_block t.pool ctx blk)))
          l.bags)
      t.locals

  (* Allocation-failure path: drain our own partial blocks too.  Nothing
     a peer does — stall, crash, stuck signal handler — can make this
     return 0 while we hold any retired record. *)
  let emergency_reclaim t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let released = ref 0 in
    Array.iter
      (fun b ->
        released :=
          !released
          + Scan_util.flush_bag ctx b
              ~keep:(fun _ -> false)
              ~release:(fun ctx p -> P.release t.pool ctx p)
              ~release_block:(fun blk -> P.release_block t.pool ctx blk))
      l.bags;
    if !released > 0 then begin
      let v = Runtime.Svar.faa ctx t.version 1 in
      Intf.Env.emit t.env ctx (Memory.Smr_event.Epoch_advance (v + 1));
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released)
    end;
    !released
end
