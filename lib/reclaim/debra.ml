(** DEBRA: distributed epoch-based reclamation (paper §4, Fig. 4).

    Differences from classical EBR, all implemented here:
    - private per-process limbo bags (blockbags) instead of shared bags, with
      O(1) bulk transfer of full blocks to the pool;
    - announcements are checked {e incrementally}: one other process per
      [CHECK_THRESH] operations, instead of all processes every operation;
    - the epoch is advanced only after [INCR_THRESH] leaveQstate calls;
    - a quiescent bit packed into the announcement word lets processes that
      are between operations be skipped, so a process sleeping outside an
      operation does not block reclamation (partial fault tolerance);
    - per-process announcements are padded to their own cache line.

    Limbo bags are kept per record type (arena), as in the paper's C++
    implementation, so full blocks stay homogeneous and can be handed to the
    pool in O(1).

    Epochs advance in steps of 2; bit 0 of an announcement is the quiescent
    bit. *)

type local = {
  (* bags.(arena).(i): the three limbo bags for that record type *)
  bags : Bag.Blockbag.t array array;
  mutable index : int;  (* which bag triple entry is current *)
  mutable check_next : int;
  mutable ops_since_check : int;
  mutable ann : int;  (* mirror of our announcement word *)
}

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    epoch : int Runtime.Svar.t;
    announce : Runtime.Shared_array.t;
    locals : local array;
  }

  let name = "debra"
  let supports_crash_recovery = false
  let allows_retired_traversal = true
  let sandboxed = false

  let create env pool =
    let n = Intf.Env.nprocs env in
    let arenas = Memory.Ptr.max_arenas in
    let announce =
      Runtime.Shared_array.create
        ~padded:env.Intf.Env.params.Intf.Params.padded_announcements n
    in
    for pid = 0 to n - 1 do
      Runtime.Shared_array.poke announce pid 1 (* epoch 0, quiescent *)
    done;
    {
      env;
      pool;
      epoch = Runtime.Svar.make 2;
      announce;
      locals =
        Array.init n (fun pid ->
            {
              bags =
                Array.init arenas (fun _ ->
                    Array.init 3 (fun _ ->
                        Bag.Blockbag.create env.Intf.Env.block_pools.(pid)));
              index = 0;
              check_next = 0;
              ops_since_check = 0;
              ann = 1;
            });
    }

  let epoch_of ann = ann land lnot 1
  let quiescent_bit ann = ann land 1 = 1

  let current_bag l arena_id = l.bags.(arena_id).(l.index)

  let enter_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let l = t.locals.(pid) in
    l.ann <- l.ann lor 1;
    Runtime.Shared_array.set ctx t.announce pid l.ann;
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q

  let is_quiescent t ctx = quiescent_bit t.locals.(ctx.Runtime.Ctx.pid).ann

  (* Rotate limbo bags: the oldest bag becomes the current bag, and all of
     its full blocks are safe to reuse, so they move to the pool in O(1) per
     block.  Up to B-1 leftover records stay in each partial head block and
     are reclaimed in a later rotation (paper §4, "Block bags").  With
     [complete] (the emergency path) the partial head block leaves whole
     too: O(B) extra, paid only on allocation failure. *)
  let rotate_and_reclaim ?(complete = false) t ctx l =
    l.index <- (l.index + 1) mod 3;
    let released = ref 0 in
    Array.iter
      (fun triple ->
        let bag = triple.(l.index) in
        let into b = P.release_block t.pool ctx b in
        released :=
          !released
          + (if complete then Bag.Blockbag.drain_blocks bag ~into
             else Bag.Blockbag.move_all_full_blocks bag ~into))
      l.bags;
    if !released > 0 then
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released);
    !released

  let leave_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let n = Intf.Env.nprocs t.env in
    let l = t.locals.(pid) in
    let params = t.env.Intf.Env.params in
    Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q;
    let read_epoch = Runtime.Svar.get ctx t.epoch in
    if epoch_of l.ann <> read_epoch then begin
      (* New epoch: restart the incremental scan and reclaim the oldest
         limbo bag. *)
      l.ops_since_check <- 0;
      l.check_next <- 0;
      ignore (rotate_and_reclaim t ctx l)
    end;
    l.ops_since_check <- l.ops_since_check + 1;
    if l.ops_since_check >= params.Intf.Params.check_thresh then begin
      l.ops_since_check <- 0;
      let other = l.check_next mod n in
      let a = Runtime.Shared_array.get ctx t.announce other in
      if epoch_of a = read_epoch || quiescent_bit a then begin
        l.check_next <- l.check_next + 1;
        if
          l.check_next >= n
          && l.check_next >= params.Intf.Params.incr_thresh
          && Runtime.Svar.cas ctx t.epoch ~expect:read_epoch (read_epoch + 2)
        then
          Intf.Env.emit t.env ctx
            (Memory.Smr_event.Epoch_advance (read_epoch + 2))
      end
    end;
    l.ann <- read_epoch;
    Runtime.Shared_array.set ctx t.announce pid read_epoch

  let protect _t _ctx _p ~verify:_ = true
  let unprotect _t _ctx _p = ()
  let unprotect_all _t _ctx = ()
  let is_protected _t _ctx _p = true

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Runtime.Ctx.work ctx 2;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Bag.Blockbag.add (current_bag l (Memory.Ptr.arena_id p)) p

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    Array.fold_left
      (fun acc triple ->
        Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) acc triple)
      0 l.bags

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals

  let epoch_lag t =
    let e = Runtime.Svar.peek t.epoch in
    Array.map
      (fun l ->
        if quiescent_bit l.ann then 0 else max 0 ((e - epoch_of l.ann) / 2))
      t.locals

  let flush t ctx =
    Array.iter
      (fun l ->
        Array.iter
          (fun triple ->
            Array.iter
              (fun b ->
                ignore
                  (Scan_util.flush_bag ctx b
                     ~keep:(fun _ -> false)
                     ~release:(fun ctx p -> P.release t.pool ctx p)
                     ~release_block:(fun blk -> P.release_block t.pool ctx blk)))
              triple)
          l.bags)
      t.locals

  (* Allocation-failure path: abandon the incremental amortization and do
     the reclamation work now, mid-operation.  Sound because rotation only
     frees records retired two observed epoch changes ago, and our own
     (unchanged) announcement limits the epoch to one further advance while
     we are non-quiescent — the same precondition the op-boundary rotation
     relies on.  Only the local announcement {e mirror} is moved to the
     observed epoch so the rotation is not repeated for the same change at
     the next [leave_qstate]; the published announcement keeps its old
     epoch, since advertising a newer one mid-operation would be unsound. *)
  let emergency_reclaim t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let n = Intf.Env.nprocs t.env in
    let l = t.locals.(pid) in
    let freed = ref 0 in
    let observe () =
      let e = Runtime.Svar.get ctx t.epoch in
      if epoch_of l.ann <> e then begin
        l.ann <- e lor (l.ann land 1);
        l.ops_since_check <- 0;
        l.check_next <- 0;
        freed := !freed + rotate_and_reclaim ~complete:true t ctx l
      end;
      e
    in
    let e = observe () in
    (* Full announcement scan now instead of one-per-operation. *)
    let all_ok = ref true in
    for other = 0 to n - 1 do
      let a = Runtime.Shared_array.get ctx t.announce other in
      if not (epoch_of a = e || quiescent_bit a) then all_ok := false
    done;
    if !all_ok && Runtime.Svar.cas ctx t.epoch ~expect:e (e + 2) then begin
      Intf.Env.emit t.env ctx (Memory.Smr_event.Epoch_advance (e + 2));
      ignore (observe ())
    end;
    !freed
end
