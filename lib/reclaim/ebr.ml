(** Classical epoch-based reclamation (Fraser), as described in the paper's
    §3: a single global epoch, shared limbo bags, and a full scan of every
    process' announcement at the start of {e every} operation.

    This is the scheme DEBRA distributes: the per-operation scan and the
    CAS-per-retire on the shared bags are the costs DEBRA's incremental
    checking and private blockbags remove.  Kept as a baseline for the
    ablation benchmarks.  Not fault tolerant: one stalled non-quiescent
    process stops reclamation (and, unlike DEBRA, even a process stalled
    {e between} operations does, unless it entered a quiescent state). *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    epoch : int Runtime.Svar.t;  (* even values; bit 0 of announcements = quiescent *)
    announce : Runtime.Shared_array.t;
    limbo : Bag.Shared_intbag.t array;  (* 3 epoch bags *)
    my_ann : int array;  (* local mirror of own announcement *)
  }

  let name = "ebr"
  let supports_crash_recovery = false
  let allows_retired_traversal = true
  let sandboxed = false

  let create env pool =
    let n = Intf.Env.nprocs env in
    let announce =
      Runtime.Shared_array.create
        ~padded:env.Intf.Env.params.Intf.Params.padded_announcements n
    in
    for pid = 0 to n - 1 do
      Runtime.Shared_array.poke announce pid 1 (* epoch 0, quiescent *)
    done;
    {
      env;
      pool;
      epoch = Runtime.Svar.make 2;
      announce;
      limbo = Array.init 3 (fun _ -> Bag.Shared_intbag.create ());
      my_ann = Array.make n 1;
    }

  let epoch_of ann = ann land lnot 1
  let quiescent_bit ann = ann land 1 = 1
  let bag_of t e = t.limbo.((e / 2) mod 3)

  let enter_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    t.my_ann.(pid) <- t.my_ann.(pid) lor 1;
    Runtime.Shared_array.set ctx t.announce pid t.my_ann.(pid);
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q

  let is_quiescent t ctx = quiescent_bit t.my_ann.(ctx.Runtime.Ctx.pid)

  let leave_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let n = Intf.Env.nprocs t.env in
    Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q;
    let e = Runtime.Svar.get ctx t.epoch in
    t.my_ann.(pid) <- e;
    Runtime.Shared_array.set ctx t.announce pid e;
    (* Scan every announcement, every operation. *)
    let all_ok = ref true in
    for other = 0 to n - 1 do
      let a = Runtime.Shared_array.get ctx t.announce other in
      if not (epoch_of a = e || quiescent_bit a) then all_ok := false
    done;
    if !all_ok && Runtime.Svar.cas ctx t.epoch ~expect:e (e + 2) then begin
      Intf.Env.emit t.env ctx (Memory.Smr_event.Epoch_advance (e + 2));
      (* The new epoch is e+2; records retired in epoch e-2 are now safe. *)
      let safe = bag_of t (e + 4) (* (e+4)/2 mod 3 = (e-2)/2 mod 3 *) in
      let released =
        Bag.Shared_intbag.drain ctx safe (fun p -> P.release t.pool ctx p)
      in
      if released > 0 then
        Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep released)
    end

  let protect _t _ctx _p ~verify:_ = true
  let unprotect _t _ctx _p = ()
  let unprotect_all _t _ctx = ()
  let is_protected _t _ctx _p = true

  (* Retired records are bagged by the *current* epoch, re-read here (an
     extra shared read per retire — an authentic cost of classical EBR).
     Bagging by the announced epoch instead is unsound: a remover whose
     announcement lags the epoch by one would place the record in a bag that
     only needs one more advance before being drained, yet readers that
     announced the current epoch before the removal may still hold pointers.
     With current-epoch bagging, bag e is drained at the advance to e+4
     (epochs move in steps of 2), which cannot happen while the remover is
     still mid-operation, and every process quiesces after the retire before
     the drain. *)
  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let e = Runtime.Svar.get ctx t.epoch in
    Bag.Shared_intbag.push ctx (bag_of t e) p

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let limbo_size t =
    Array.fold_left (fun acc b -> acc + Bag.Shared_intbag.size b) 0 t.limbo

  (* Classical EBR keeps its limbo in shared bags, so the population cannot
     be attributed to the retiring process: report it all on process 0. *)
  let limbo_per_proc t =
    let a = Array.make (Intf.Env.nprocs t.env) 0 in
    a.(0) <- limbo_size t;
    a

  let epoch_lag t =
    let e = Runtime.Svar.peek t.epoch in
    Array.map
      (fun ann -> if quiescent_bit ann then 0 else max 0 ((e - epoch_of ann) / 2))
      t.my_ann

  let flush t ctx =
    (* Safe even when a process crashed mid-operation: a dead process never
       accesses again, so draining the bags cannot produce a use-after-free
       at shutdown. *)
    Array.iter
      (fun b ->
        ignore (Bag.Shared_intbag.drain ctx b (fun p -> P.release t.pool ctx p)))
      t.limbo

  (* Allocation-failure path.  EBR already scans every announcement each
     operation; all that is left to try mid-operation is advancing the epoch
     once more and draining the bag that becomes safe.  Our own announcement
     pins the epoch (we are non-quiescent), so this succeeds at most once —
     and not at all when a stalled or crashed peer lags the epoch, which is
     EBR's honest degradation under faults. *)
  let emergency_reclaim t ctx =
    let n = Intf.Env.nprocs t.env in
    let e = Runtime.Svar.get ctx t.epoch in
    let all_ok = ref true in
    for other = 0 to n - 1 do
      let a = Runtime.Shared_array.get ctx t.announce other in
      if not (epoch_of a = e || quiescent_bit a) then all_ok := false
    done;
    if !all_ok && Runtime.Svar.cas ctx t.epoch ~expect:e (e + 2) then begin
      Intf.Env.emit t.env ctx (Memory.Smr_event.Epoch_advance (e + 2));
      let safe = bag_of t (e + 4) in
      let released =
        Bag.Shared_intbag.drain ctx safe (fun p -> P.release t.pool ctx p)
      in
      if released > 0 then
        Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep released);
      released
    end
    else 0
end
