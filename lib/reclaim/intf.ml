(** Component signatures of the Record Manager abstraction (paper §6).

    A Record Manager is assembled from three interchangeable components:

    - an {b Allocator} decides how records are obtained from and returned to
      the memory system (bump region vs. malloc-style free list);
    - a {b Pool} decides when reclaimed records are handed back to the
      Allocator and whether allocation can bypass it (per-process pool bags
      plus a shared bag of full blocks);
    - a {b Reclaimer} is given retired records and decides when they can
      safely be handed to the Pool (DEBRA, DEBRA+, EBR, HP, ...).

    Components are OCaml functors — the analogue of the paper's C++
    templates: a data structure is written once against
    {!module-type:RECORD_MANAGER} and a scheme is swapped by changing a
    single functor application. *)

module Params = struct
  type t = {
    block_capacity : int;  (** records per block (the paper's B = 256) *)
    check_thresh : int;
        (** leaveQstate calls between announcement checks (CHECK_THRESH) *)
    incr_thresh : int;
        (** min leaveQstate calls before an epoch CAS (INCR_THRESH) *)
    pool_cap_blocks : int;
        (** pool-bag blocks kept locally before spilling to the shared bag *)
    hp_slots : int;  (** hazard pointers per process (k) *)
    hp_retire_factor : int;
        (** HP scan threshold = factor * n * k records (Θ(nk) slack) *)
    suspect_blocks : int;
        (** DEBRA+: limbo blocks before a lagging process is neutralized *)
    scan_blocks_slack : int;
        (** DEBRA+: extra blocks beyond nk records before a scan pays off *)
    ts_buffer_blocks : int;  (** ThreadScan: delete-buffer blocks before a scan *)
    st_segment_accesses : int;
        (** StackTrack: records reached per transactional segment *)
    padded_announcements : bool;  (** pad per-process announcements (NUMA opt) *)
    malloc_cost : int;  (** extra cycles charged per malloc-style (de)alloc *)
  }

  let default =
    {
      block_capacity = 256;
      check_thresh = 1;
      incr_thresh = 100;
      pool_cap_blocks = 32;
      hp_slots = 8;
      hp_retire_factor = 2;
      suspect_blocks = 4;
      scan_blocks_slack = 1;
      ts_buffer_blocks = 4;
      st_segment_accesses = 8;
      padded_announcements = true;
      malloc_cost = 120;
    }
end

(** The witness-level SMR protocol, as seen by a checker sitting {e above}
    the {!Memory.Smr_event} bus.  The bus reports what the reclaimer and
    the arenas physically did (protect slots, retires, frees, field
    accesses); these events report what the data structure {e claimed} when
    it went through the typed Record Manager surface
    ({!RECORD_MANAGER.Typed}): which records are private, which CAS
    published or unlinked what, which sentinels are permanent.  A protocol
    analyzer (lib/protocheck) consumes both streams; production runs attach
    neither hook and pay one option check per witness operation. *)
module Protocol = struct
  type event =
    | Fresh of Memory.Ptr.t
        (** record allocated through the typed surface: private to its owner
            until published *)
    | Publish of Memory.Ptr.t  (** fresh record became reachable *)
    | Abandon of Memory.Ptr.t  (** fresh record deallocated unpublished *)
    | Root of Memory.Ptr.t  (** permanent sentinel: never retired *)
    | Acquire of { p : Memory.Ptr.t; granted : bool; adversary : bool }
        (** a [Typed.acquire] attempt; [adversary] marks a verification the
            oracle forced to fail — a scheme that still [granted] it skipped
            its validation step *)
    | Unlink of Memory.Ptr.t
        (** an unlink witness was issued: the record provably left the
            structure *)

  (** Decision points a branching oracle may steer: every guard acquisition
      and every lifecycle CAS.  [Grant] lets the operation proceed as the
      memory says; [Adversary] simulates a concurrent defeat (a failed
      validation, a lost CAS) without touching memory, so a single-process
      analyzer can drive the structure down both branches of every
      decision. *)
  type point = Acquire_point of Memory.Ptr.t | Cas_point of Memory.Ptr.t

  type decision = Grant | Adversary
  type monitor = Runtime.Ctx.t -> event -> unit
  type oracle = Runtime.Ctx.t -> point -> decision
end

module Env = struct
  (** Shared environment handed to every component: the process group, the
      heap of arenas, and the per-process block pools that all local
      blockbags of a process share (paper §4). *)
  type t = {
    group : Runtime.Group.t;
    heap : Memory.Heap.t;
    block_pools : Bag.Block_pool.t array;
    params : Params.t;
    mutable monitor : Protocol.monitor option;
        (** protocol-event hook for the typed surface; [None] in production *)
    mutable oracle : Protocol.oracle option;
        (** branching oracle for guard/CAS decision points; [None] means
            every decision is [Grant] *)
  }

  let create ?(params = Params.default) group heap =
    let n = Runtime.Group.nprocs group in
    {
      group;
      heap;
      block_pools =
        Array.init n (fun _ ->
            Bag.Block_pool.create ~block_capacity:params.Params.block_capacity ());
      params;
      monitor = None;
      oracle = None;
    }

  let nprocs t = Runtime.Group.nprocs t.group

  (** Publish an SMR protocol event on the heap's event bus (free when no
      sink is attached; see {!Memory.Smr_event}). *)
  let emit t ctx ev = Memory.Heap.emit t.heap ctx ev

  (** Publish a witness-level protocol event (free when no monitor). *)
  let observe t ctx ev =
    match t.monitor with None -> () | Some f -> f ctx ev

  (** Consult the branching oracle; [Grant] when none is attached. *)
  let decide t ctx point =
    match t.oracle with None -> Protocol.Grant | Some f -> f ctx point
end

module type ALLOCATOR = sig
  type t

  val name : string
  val create : Env.t -> t

  (** [allocate t ctx arena] returns a fresh, unpublished record. *)
  val allocate : t -> Runtime.Ctx.t -> Memory.Arena.t -> Memory.Ptr.t

  (** [deallocate t ctx p] returns a safely-freed record to the memory
      system. *)
  val deallocate : t -> Runtime.Ctx.t -> Memory.Ptr.t -> unit
end

module type POOL = sig
  module Alloc : ALLOCATOR

  type t

  val name : string
  val create : Env.t -> Alloc.t -> t
  val allocate : t -> Runtime.Ctx.t -> Memory.Arena.t -> Memory.Ptr.t

  (** [release t ctx p] accepts one record that is now safe to reuse. *)
  val release : t -> Runtime.Ctx.t -> Memory.Ptr.t -> unit

  (** [release_block t ctx b] accepts a full block of safe records, taking
      ownership of the block. *)
  val release_block : t -> Runtime.Ctx.t -> Bag.Block.t -> unit

  (** Records currently parked in the pool awaiting reuse, across all
      processes and the shared bag (uninstrumented telemetry gauge; [Direct]
      pools hold nothing). *)
  val population : t -> int
end

module type MAKE_POOL = functor (A : ALLOCATOR) -> POOL with module Alloc = A

module type RECLAIMER = sig
  module Pool : POOL

  type t

  val name : string
  val create : Env.t -> Pool.t -> t

  (** Statically [true] only for schemes with neutralization-based recovery
      (DEBRA+); lets data structures skip recovery bookkeeping for the
      others, as the paper's [supportsCrashRecovery] template predicate
      does. *)
  val supports_crash_recovery : bool

  (** [true] when a search may follow a pointer out of a retired record into
      another retired record (epoch-style schemes).  HP-style schemes return
      [false] and rely on [protect]'s verification. *)
  val allows_retired_traversal : bool

  (** [true] for schemes that sandbox accesses to reclaimed memory
      (StackTrack's HTM, Optimistic Access): the data structure must treat
      {!Memory.Arena.Use_after_free} as a transaction abort and retry,
      instead of a fatal error. *)
  val sandboxed : bool

  val leave_qstate : t -> Runtime.Ctx.t -> unit
  val enter_qstate : t -> Runtime.Ctx.t -> unit
  val is_quiescent : t -> Runtime.Ctx.t -> bool

  (** [protect t ctx p ~verify] must be called before accessing fields of
      [p].  Epoch-style schemes return [true] immediately; HP-style schemes
      announce [p], fence, and run [verify] to check that [p] is still not
      retired, releasing the announcement when it fails. *)
  val protect :
    t -> Runtime.Ctx.t -> Memory.Ptr.t -> verify:(unit -> bool) -> bool

  val unprotect : t -> Runtime.Ctx.t -> Memory.Ptr.t -> unit

  (** [unprotect_all t ctx] releases every protection of this process; used
      by operations that restart from scratch. *)
  val unprotect_all : t -> Runtime.Ctx.t -> unit

  val is_protected : t -> Runtime.Ctx.t -> Memory.Ptr.t -> bool

  (** [retire t ctx p] is invoked each time a record is removed from the
      data structure. *)
  val retire : t -> Runtime.Ctx.t -> Memory.Ptr.t -> unit

  (** Recovery-support announcements (DEBRA+ §5); no-ops elsewhere. *)

  val rprotect : t -> Runtime.Ctx.t -> Memory.Ptr.t -> unit
  val runprotect_all : t -> Runtime.Ctx.t -> unit
  val is_rprotected : t -> Runtime.Ctx.t -> Memory.Ptr.t -> bool

  (** Records retired but not yet handed to the pool, across all processes
      (uninstrumented; used by the memory experiments and bound tests). *)
  val limbo_size : t -> int

  (** Telemetry gauges: uninstrumented snapshots with no simulated cost,
      safe to call from the simulator's tick callback while a run is in
      flight.

      [limbo_per_proc] attributes records awaiting reclamation to the
      process whose container holds them; schemes with shared limbo
      containers (classical EBR) attribute the whole population to
      process 0.

      [epoch_lag] is how many advance steps each process' announcement
      trails the global reclamation clock (the epoch for EBR/DEBRA/DEBRA+,
      the most advanced quiescent counter for QSBR); quiescent processes
      and schemes without a global clock report 0. *)

  val limbo_per_proc : t -> int array
  val epoch_lag : t -> int array

  (** [flush t ctx] drains every limbo container whose records are no longer
      protected, handing them to the pool.  The quiescent-shutdown API: the
      caller asserts that all {e surviving} processes are quiescent (no
      operation in flight, no recovery pending).  Crashed processes are
      permanently non-quiescent: records they left protected (hazard
      pointers, rprotect rows, ThreadScan roots) are {e kept} in limbo
      rather than freed or waited for — they are accounted as
      crash-leaked, and [limbo_size] may be non-zero after [flush] when a
      process died mid-operation.  It may touch other processes' containers
      and must only be called when no operation is concurrently running. *)
  val flush : t -> Runtime.Ctx.t -> unit

  (** [emergency_reclaim t ctx] is the allocation-failure path (graceful
      degradation under {!Memory.Arena.Out_of_memory} /
      {!Memory.Arena.Arena_full}): do reclamation work {e now}, mid-
      operation, abandoning the scheme's usual amortization — a full
      announcement scan, an epoch advance attempt, a forced drain of every
      limbo record that is provably safe.  Returns the number of records
      handed back to the pool; [0] means the scheme cannot free anything
      (for [none], always; for epoch schemes, when a stalled or crashed
      peer pins the epoch) and the caller must surface the failure.  Must
      be safe to call while the calling process is non-quiescent. *)
  val emergency_reclaim : t -> Runtime.Ctx.t -> int
end

module type MAKE_RECLAIMER = functor (P : POOL) -> RECLAIMER with module Pool = P

(** Reclamation-pressure counters, bumped by the assembled Record
    Manager's allocation path (never by the components): how often
    [alloc] had to fall back to emergency reclamation, how many patience
    retries it burned, and what the emergency passes freed.  Host-side
    state — reading or bumping them costs no simulated cycles — so a
    watermark controller or a degradation report can watch allocation
    distress live, the way {!RECLAIMER.limbo_size} exposes limbo. *)
module Pressure = struct
  type t = {
    mutable alloc_retries : int;
        (** fruitless [alloc] passes: an emergency pass freed nothing and
            the patience loop spun once more *)
    mutable emergency_reclaims : int;
        (** [emergency_reclaim] invocations (both the [alloc] fallback and
            explicit escalation calls) *)
    mutable emergency_freed : int;
        (** records those invocations handed back to the pool *)
  }

  let create () =
    { alloc_retries = 0; emergency_reclaims = 0; emergency_freed = 0 }

  let snapshot t =
    {
      alloc_retries = t.alloc_retries;
      emergency_reclaims = t.emergency_reclaims;
      emergency_freed = t.emergency_freed;
    }
end

(** The assembled interface a data structure programs against. *)
module type RECORD_MANAGER = sig
  module Alloc : ALLOCATOR
  module Pool : POOL with module Alloc = Alloc
  module Reclaimer : RECLAIMER with module Pool = Pool

  type t

  val scheme_name : string
  val create : Env.t -> t
  val env : t -> Env.t

  val alloc : t -> Runtime.Ctx.t -> Memory.Arena.t -> Memory.Ptr.t

  (** [dealloc t ctx p] returns a record that was allocated but {e never
      published} in the data structure (e.g. an insert that lost its race)
      straight to the pool: no grace period is needed because no other
      process can have seen it. *)
  val dealloc : t -> Runtime.Ctx.t -> Memory.Ptr.t -> unit

  val supports_crash_recovery : bool
  val allows_retired_traversal : bool
  val sandboxed : bool
  val leave_qstate : t -> Runtime.Ctx.t -> unit
  val enter_qstate : t -> Runtime.Ctx.t -> unit
  val is_quiescent : t -> Runtime.Ctx.t -> bool

  val protect :
    t -> Runtime.Ctx.t -> Memory.Ptr.t -> verify:(unit -> bool) -> bool

  val unprotect : t -> Runtime.Ctx.t -> Memory.Ptr.t -> unit
  val unprotect_all : t -> Runtime.Ctx.t -> unit
  val is_protected : t -> Runtime.Ctx.t -> Memory.Ptr.t -> bool
  val retire : t -> Runtime.Ctx.t -> Memory.Ptr.t -> unit
  val rprotect : t -> Runtime.Ctx.t -> Memory.Ptr.t -> unit
  val runprotect_all : t -> Runtime.Ctx.t -> unit
  val is_rprotected : t -> Runtime.Ctx.t -> Memory.Ptr.t -> bool
  val limbo_size : t -> int

  (** See {!RECLAIMER.limbo_per_proc} / {!RECLAIMER.epoch_lag} /
      {!POOL.population}: uninstrumented telemetry gauges. *)

  val limbo_per_proc : t -> int array
  val epoch_lag : t -> int array
  val pool_population : t -> int

  (** See {!RECLAIMER.flush}: drain limbo under full quiescence. *)
  val flush : t -> Runtime.Ctx.t -> unit

  (** See {!RECLAIMER.emergency_reclaim}: forced drain on allocation
      failure.  [alloc] calls it automatically and retries once before
      letting the failure escape. *)
  val emergency_reclaim : t -> Runtime.Ctx.t -> int

  (** Live reclamation-pressure counters (see {!Pressure}): the returned
      record is the manager's own mutable state, updated as [alloc] and
      [emergency_reclaim] run; callers wanting a fixed point in time take
      {!Pressure.snapshot}. *)
  val pressure : t -> Pressure.t

  (** [run_op t ctx ~recover body] executes one data structure operation
      with neutralization recovery (paper Fig. 5): when [body] is aborted by
      {!Runtime.Ctx.Neutralized} — or, under a sandboxed scheme, by
      {!Memory.Arena.Use_after_free}, the simulated transaction abort —
      [recover] runs in a quiescent state and either finishes the operation
      ([Some v]) or asks for a restart ([None]). *)
  val run_op :
    t -> Runtime.Ctx.t -> recover:(unit -> 'a option) -> (unit -> 'a) -> 'a

  (** The typestate-hardened face of the Record Manager (nim-debra's
      phantom-typed guards, rendered with abstract witness types).  Misuse
      the runtime sanitizer used to catch dynamically becomes unrepresentable
      for code written against this surface:

      - a mid-operation dereference needs a {!Typed.guard}, and the only
        ways to obtain one are a successful, verified {!Typed.acquire}
        (which needs a {!Typed.session}, issued only by {!Typed.run_op}) or
        a declared-permanent sentinel;
      - {!Typed.retire} consumes a one-shot {!Typed.unlinked} witness, and
        the only issuers are the lifecycle CASes / lock-held unlink
        declarations — retiring a record that was never unlinked, or
        retiring it twice, has no well-typed spelling;
      - {!Typed.abandon} (the only deallocation that skips the grace
        period) consumes a {!Typed.fresh} witness, which every publishing
        CAS spends — freeing a reachable record without retire has no
        well-typed spelling either.

      Every wrapper delegates to exactly the untyped call it names, so a
      converted structure performs the identical instrumented access
      sequence; the additional {!Protocol} events flow only to an attached
      monitor.  The untyped surface above remains for harnesses, drains and
      scheme tests. *)
  module Typed : sig
    type session
    (** Evidence of being inside one operation attempt under the Fig. 5
        recovery shell; issued only by {!run_op}. *)

    type guard
    (** Evidence that one record may be dereferenced right now. *)

    type fresh
    (** Evidence that a record is allocated but still private: no other
        process can reach it.  Spent by publication or {!abandon}. *)

    type unlinked
    (** One-shot evidence that a record has been removed from the
        structure; the only currency {!retire} accepts. *)

    val run_op :
      t -> Runtime.Ctx.t -> recover:(unit -> 'a option) -> (session -> 'a) -> 'a

    (** Quiescence transitions, tied to the operation that owns them. *)

    val leave : t -> Runtime.Ctx.t -> session -> unit
    val enter : t -> Runtime.Ctx.t -> session -> unit

    (** Allocation lifecycle. *)

    val alloc : t -> Runtime.Ctx.t -> Memory.Arena.t -> fresh
    val fresh_ptr : fresh -> Memory.Ptr.t

    val init : t -> Runtime.Ctx.t -> Memory.Arena.t -> fresh -> int -> int -> unit
    (** Initialize a mutable field of a private record. *)

    val init_const :
      t -> Runtime.Ctx.t -> Memory.Arena.t -> fresh -> int -> int -> unit

    val sentinel : t -> Runtime.Ctx.t -> fresh -> Memory.Ptr.t
    (** Spend a fresh witness declaring a permanent, never-retired record
        (list head, skiplist sentinels). *)

    val expose : t -> Runtime.Ctx.t -> fresh -> Memory.Ptr.t
    (** Spend a fresh witness publishing a record outside any CAS — initial
        structure construction only (e.g. the MS queue's first dummy). *)

    val abandon : t -> Runtime.Ctx.t -> fresh -> unit
    (** Deallocate a never-published record (an insert that lost its race);
        the typed face of [dealloc]. *)

    (** Guards. *)

    val acquire :
      t ->
      Runtime.Ctx.t ->
      session ->
      Memory.Ptr.t ->
      verify:(unit -> bool) ->
      guard option
    (** [protect] with its validation step, as a witness issuer: [None]
        means the record could not be secured and the traversal must
        restart. *)

    val root_guard : t -> session -> Memory.Ptr.t -> guard
    (** Guard for a record declared via {!sentinel}: permanent records need
        no announcement. *)

    val covered : t -> session -> Memory.Ptr.t -> guard
    (** Epoch-style blanket coverage: under a scheme that
        [allows_retired_traversal] (or sandboxes accesses), being inside
        the session {e is} the protection.  Rejected ([Invalid_argument])
        under hazard-style schemes, where per-record acquisition is the
        only sound guard. *)

    val ptr : guard -> Memory.Ptr.t
    val release : t -> Runtime.Ctx.t -> guard -> unit
    val release_all : t -> Runtime.Ctx.t -> unit

    (** Guarded dereference: the only typed spellings of a field access. *)

    val read : t -> Runtime.Ctx.t -> Memory.Arena.t -> guard -> int -> int
    val write : t -> Runtime.Ctx.t -> Memory.Arena.t -> guard -> int -> int -> unit
    val get_const : t -> Runtime.Ctx.t -> Memory.Arena.t -> guard -> int -> int

    val cas :
      t -> Runtime.Ctx.t -> Memory.Arena.t -> guard -> int -> expect:int ->
      int -> bool
    (** Plain guarded CAS with no lifecycle effect (e.g. the logical-delete
        mark bit).  An oracle decision point. *)

    (** Lifecycle CASes.  Every one is an oracle decision point: under an
        [Adversary] decision the CAS reports failure {e without} touching
        memory, steering the structure down its retry/helping path. *)

    val cas_at :
      t ->
      Runtime.Ctx.t ->
      Memory.Arena.t ->
      Memory.Ptr.t ->
      int ->
      expect:int ->
      int ->
      publishes:fresh list ->
      unlinks:Memory.Ptr.t list ->
      unlinked list option
    (** The general primitive: one CAS that publishes [publishes] (their
        fresh witnesses are spent) and removes [unlinks] (one witness per
        record, in order) when it succeeds.  The container is a raw
        pointer: structures whose containers are validated by other means
        (a held lock, a packed-word identity check) use this directly;
        fully-guarded structures use the sugar below. *)

    val publish_cas :
      t -> Runtime.Ctx.t -> Memory.Arena.t -> guard -> int -> expect:int ->
      fresh -> bool
    (** Publish one fresh record by CASing its pointer into a guarded
        container. *)

    val cas_unlink :
      t ->
      Runtime.Ctx.t ->
      Memory.Arena.t ->
      guard ->
      int ->
      expect:int ->
      int ->
      unlinks:Memory.Ptr.t list ->
      unlinked list option
    (** Unlink via a CAS on a guarded container. *)

    val svar_cas_unlink :
      t ->
      Runtime.Ctx.t ->
      int Runtime.Svar.t ->
      expect:int ->
      int ->
      unlinks:Memory.Ptr.t list ->
      unlinked list option
    (** Unlink via a CAS on a shared variable outside any arena (the MS
        queue's head swing). *)

    val publish_locked : t -> Runtime.Ctx.t -> session -> fresh -> Memory.Ptr.t
    (** Publication by plain writes under held locks (lazy skiplist):
        spends the fresh witness at the linearization point. *)

    val unlink_locked : t -> Runtime.Ctx.t -> session -> Memory.Ptr.t -> unlinked
    (** Unlink by plain writes under held locks: the caller asserts every
        incoming pointer was overwritten while the predecessors were
        locked. *)

    val unlinked_ptr : unlinked -> Memory.Ptr.t

    val retire : t -> Runtime.Ctx.t -> unlinked -> unit
    (** Spend an unlink witness, handing the record to the reclaimer.
        Raises [Invalid_argument] on a witness already spent — the typed
        face of the deleted double-retire sanitizer check. *)
  end
end
