(** Assembling a Record Manager from its three components (paper §6).

    [Make (Alloc) (Pool) (Reclaimer)] is the OCaml rendering of the paper's
    template instantiation: the resulting module satisfies
    {!Intf.RECORD_MANAGER}, and a data structure functorized over that
    signature switches reclamation scheme, pooling policy or allocator by
    changing this single line. *)

module Make
    (A : Intf.ALLOCATOR)
    (MP : Intf.MAKE_POOL)
    (MR : Intf.MAKE_RECLAIMER) : Intf.RECORD_MANAGER = struct
  module Alloc = A
  module Pool = MP (A)
  module Reclaimer = MR (Pool)

  type t = {
    env : Intf.Env.t;
    pool : Pool.t;
    reclaimer : Reclaimer.t;
    pressure : Intf.Pressure.t;
  }

  let scheme_name =
    Printf.sprintf "%s(%s,%s)" Reclaimer.name Pool.name Alloc.name

  let create env =
    let alloc = A.create env in
    let pool = Pool.create env alloc in
    {
      env;
      pool;
      reclaimer = Reclaimer.create env pool;
      pressure = Intf.Pressure.create ();
    }

  let env t = t.env
  let pressure t = t.pressure

  let emergency_reclaim t ctx =
    let freed = Reclaimer.emergency_reclaim t.reclaimer ctx in
    t.pressure.Intf.Pressure.emergency_reclaims <-
      t.pressure.Intf.Pressure.emergency_reclaims + 1;
    t.pressure.Intf.Pressure.emergency_freed <-
      t.pressure.Intf.Pressure.emergency_freed + freed;
    freed

  (* Allocation with graceful degradation: when the arena (or the heap's
     record budget) is exhausted, force reclamation work that the scheme
     would normally amortize — emergency announcement scan plus limbo
     drain — and retry.  A pass that frees something retries immediately
     (it may have freed a different epoch's bag, or a different arena's
     records, than the one we need).  A pass that frees {e nothing} is not
     yet defeat: under a hard budget several processes reach this path
     together, each mid-operation and hence pinning the epoch for the
     others.  The pass itself performs instrumented accesses, so spinning
     here lets the scheduler run the other processes to their operation
     boundaries, after which the epoch moves and the next pass frees.
     Only after [patience] consecutive fruitless passes does the failure
     surface to the data structure. *)
  let patience = 64

  let alloc t ctx arena =
    let rec attempt fruitless =
      try Pool.allocate t.pool ctx arena
      with (Memory.Arena.Out_of_memory _ | Memory.Arena.Arena_full _) as e ->
        if emergency_reclaim t ctx > 0 then attempt 0
        else begin
          t.pressure.Intf.Pressure.alloc_retries <-
            t.pressure.Intf.Pressure.alloc_retries + 1;
          if fruitless + 1 >= patience then raise e else attempt (fruitless + 1)
        end
    in
    attempt 0
  let dealloc t ctx p = Pool.release t.pool ctx p
  let supports_crash_recovery = Reclaimer.supports_crash_recovery
  let allows_retired_traversal = Reclaimer.allows_retired_traversal
  let sandboxed = Reclaimer.sandboxed
  let leave_qstate t ctx = Reclaimer.leave_qstate t.reclaimer ctx
  let enter_qstate t ctx = Reclaimer.enter_qstate t.reclaimer ctx
  let is_quiescent t ctx = Reclaimer.is_quiescent t.reclaimer ctx
  let protect t ctx p ~verify = Reclaimer.protect t.reclaimer ctx p ~verify
  let unprotect t ctx p = Reclaimer.unprotect t.reclaimer ctx p
  let unprotect_all t ctx = Reclaimer.unprotect_all t.reclaimer ctx
  let is_protected t ctx p = Reclaimer.is_protected t.reclaimer ctx p
  let retire t ctx p = Reclaimer.retire t.reclaimer ctx p
  let rprotect t ctx p = Reclaimer.rprotect t.reclaimer ctx p
  let runprotect_all t ctx = Reclaimer.runprotect_all t.reclaimer ctx
  let is_rprotected t ctx p = Reclaimer.is_rprotected t.reclaimer ctx p
  let limbo_size t = Reclaimer.limbo_size t.reclaimer
  let limbo_per_proc t = Reclaimer.limbo_per_proc t.reclaimer
  let epoch_lag t = Reclaimer.epoch_lag t.reclaimer
  let pool_population t = Pool.population t.pool
  let flush t ctx = Reclaimer.flush t.reclaimer ctx

  (* The operation wrapper of Fig. 5: catch neutralization, run recovery in
     a quiescent state, restart when recovery asks for it.  Under a
     sandboxed scheme (StackTrack), an access to reclaimed memory raises
     {!Memory.Arena.Use_after_free} instead of segfaulting; that is the
     simulated transaction abort, and it is recovered from exactly like a
     neutralization: the recover closure either finishes the operation from
     its published descriptor or asks for a restart. *)
  let run_op t ctx ~recover body =
    let rec attempt () =
      match body () with
      | v -> v
      | exception Runtime.Ctx.Neutralized -> (
          match recover () with Some v -> v | None -> attempt ())
      | exception Memory.Arena.Use_after_free _ when Reclaimer.sandboxed -> (
          (* The aborted segment's register file is discarded with it. *)
          Reclaimer.unprotect_all t.reclaimer ctx;
          match recover () with
          | Some v -> v
          | None -> attempt ()
          | exception Memory.Arena.Use_after_free _ -> attempt ())
    in
    attempt ()

  (* Alias the untyped surface the typed wrappers delegate to, before the
     submodule shadows the names. *)
  let untyped_alloc = alloc
  let untyped_run_op = run_op

  (* The typestate facade.  Every wrapper performs exactly the instrumented
     calls of the untyped spelling it replaces — witness bookkeeping is
     plain OCaml state and the protocol hooks are a single option check
     when no monitor/oracle is attached — so converting a data structure
     to this surface changes no schedule and no golden trace. *)
  module Typed = struct
    type session = S
    type guard = { gp : Memory.Ptr.t }
    type fresh = { fp : Memory.Ptr.t; mutable spent : bool }
    type unlinked = { up : Memory.Ptr.t; mutable consumed : bool }

    let observe t ctx ev = Intf.Env.observe t.env ctx ev
    let decide t ctx point = Intf.Env.decide t.env ctx point

    let run_op t ctx ~recover body =
      untyped_run_op t ctx ~recover (fun () -> body S)

    let leave t ctx (_ : session) = Reclaimer.leave_qstate t.reclaimer ctx
    let enter t ctx (_ : session) = Reclaimer.enter_qstate t.reclaimer ctx

    let alloc t ctx arena =
      let p = untyped_alloc t ctx arena in
      observe t ctx (Intf.Protocol.Fresh p);
      { fp = p; spent = false }

    let fresh_ptr f = f.fp

    let spend f ~by =
      if f.spent then
        invalid_arg ("Typed." ^ by ^ ": fresh witness already spent");
      f.spent <- true

    let init t ctx arena f field v =
      ignore t;
      Memory.Arena.write ctx arena f.fp field v

    let init_const t ctx arena f field v =
      ignore t;
      Memory.Arena.set_const ctx arena f.fp field v

    let sentinel t ctx f =
      spend f ~by:"sentinel";
      observe t ctx (Intf.Protocol.Root f.fp);
      f.fp

    let expose t ctx f =
      spend f ~by:"expose";
      observe t ctx (Intf.Protocol.Publish f.fp);
      f.fp

    let abandon t ctx f =
      spend f ~by:"abandon";
      observe t ctx (Intf.Protocol.Abandon f.fp);
      Pool.release t.pool ctx f.fp

    let acquire t ctx (_ : session) p ~verify =
      match decide t ctx (Intf.Protocol.Acquire_point p) with
      | Intf.Protocol.Grant ->
          let granted = Reclaimer.protect t.reclaimer ctx p ~verify in
          observe t ctx
            (Intf.Protocol.Acquire { p; granted; adversary = false });
          if granted then Some { gp = p } else None
      | Intf.Protocol.Adversary ->
          (* Simulate a concurrent removal between announce and validate:
             the verification fails.  A scheme that needs no validation
             (epoch-style) legitimately grants; a hazard-style scheme that
             grants anyway skipped its validation step, which the monitor
             will flag.  Either way the caller is steered down its restart
             branch. *)
          let granted =
            Reclaimer.protect t.reclaimer ctx p ~verify:(fun () -> false)
          in
          observe t ctx (Intf.Protocol.Acquire { p; granted; adversary = true });
          if granted then Reclaimer.unprotect t.reclaimer ctx p;
          None

    let root_guard _t (_ : session) p = { gp = p }

    let covered _t (_ : session) p =
      if not (Reclaimer.allows_retired_traversal || Reclaimer.sandboxed) then
        invalid_arg
          (Printf.sprintf
             "Typed.covered: %s protects per record, not per session"
             Reclaimer.name);
      { gp = p }

    let ptr g = g.gp
    let release t ctx g = Reclaimer.unprotect t.reclaimer ctx g.gp
    let release_all t ctx = Reclaimer.unprotect_all t.reclaimer ctx
    let read _t ctx arena g field = Memory.Arena.read ctx arena g.gp field
    let write _t ctx arena g field v = Memory.Arena.write ctx arena g.gp field v

    let get_const _t ctx arena g field =
      Memory.Arena.get_const ctx arena g.gp field

    let cas_at t ctx arena container field ~expect word ~publishes ~unlinks =
      match decide t ctx (Intf.Protocol.Cas_point container) with
      | Intf.Protocol.Adversary -> None
      | Intf.Protocol.Grant ->
          if Memory.Arena.cas ctx arena container field ~expect word then begin
            List.iter
              (fun f ->
                spend f ~by:"cas_at";
                observe t ctx (Intf.Protocol.Publish f.fp))
              publishes;
            Some
              (List.map
                 (fun p ->
                   observe t ctx (Intf.Protocol.Unlink p);
                   { up = p; consumed = false })
                 unlinks)
          end
          else None

    let cas t ctx arena g field ~expect word =
      match
        cas_at t ctx arena g.gp field ~expect word ~publishes:[] ~unlinks:[]
      with
      | Some _ -> true
      | None -> false

    let publish_cas t ctx arena g field ~expect f =
      match
        cas_at t ctx arena g.gp field ~expect
          (f.fp : Memory.Ptr.t)
          ~publishes:[ f ] ~unlinks:[]
      with
      | Some _ -> true
      | None -> false

    let cas_unlink t ctx arena g field ~expect word ~unlinks =
      cas_at t ctx arena g.gp field ~expect word ~publishes:[] ~unlinks

    let svar_cas_unlink t ctx sv ~expect word ~unlinks =
      match decide t ctx (Intf.Protocol.Cas_point expect) with
      | Intf.Protocol.Adversary -> None
      | Intf.Protocol.Grant ->
          if Runtime.Svar.cas ctx sv ~expect word then
            Some
              (List.map
                 (fun p ->
                   observe t ctx (Intf.Protocol.Unlink p);
                   { up = p; consumed = false })
                 unlinks)
          else None

    let publish_locked t ctx (_ : session) f =
      spend f ~by:"publish_locked";
      observe t ctx (Intf.Protocol.Publish f.fp);
      f.fp

    let unlink_locked t ctx (_ : session) p =
      observe t ctx (Intf.Protocol.Unlink p);
      { up = p; consumed = false }

    let unlinked_ptr w = w.up

    let retire t ctx w =
      if w.consumed then
        invalid_arg "Typed.retire: unlinked witness already consumed";
      (* Consume only once the reclaimer call returns: a neutralization
         raised inside retire (before the limbo insertion) leaves the
         witness live for the recovery path to retire exactly once. *)
      Reclaimer.retire t.reclaimer ctx w.up;
      w.consumed <- true
  end
end
