(** Assembling a Record Manager from its three components (paper §6).

    [Make (Alloc) (Pool) (Reclaimer)] is the OCaml rendering of the paper's
    template instantiation: the resulting module satisfies
    {!Intf.RECORD_MANAGER}, and a data structure functorized over that
    signature switches reclamation scheme, pooling policy or allocator by
    changing this single line. *)

module Make
    (A : Intf.ALLOCATOR)
    (MP : Intf.MAKE_POOL)
    (MR : Intf.MAKE_RECLAIMER) : Intf.RECORD_MANAGER = struct
  module Alloc = A
  module Pool = MP (A)
  module Reclaimer = MR (Pool)

  type t = {
    env : Intf.Env.t;
    pool : Pool.t;
    reclaimer : Reclaimer.t;
  }

  let scheme_name =
    Printf.sprintf "%s(%s,%s)" Reclaimer.name Pool.name Alloc.name

  let create env =
    let alloc = A.create env in
    let pool = Pool.create env alloc in
    { env; pool; reclaimer = Reclaimer.create env pool }

  let env t = t.env
  let emergency_reclaim t ctx = Reclaimer.emergency_reclaim t.reclaimer ctx

  (* Allocation with graceful degradation: when the arena (or the heap's
     record budget) is exhausted, force reclamation work that the scheme
     would normally amortize — emergency announcement scan plus limbo
     drain — and retry.  A pass that frees something retries immediately
     (it may have freed a different epoch's bag, or a different arena's
     records, than the one we need).  A pass that frees {e nothing} is not
     yet defeat: under a hard budget several processes reach this path
     together, each mid-operation and hence pinning the epoch for the
     others.  The pass itself performs instrumented accesses, so spinning
     here lets the scheduler run the other processes to their operation
     boundaries, after which the epoch moves and the next pass frees.
     Only after [patience] consecutive fruitless passes does the failure
     surface to the data structure. *)
  let patience = 64

  let alloc t ctx arena =
    let rec attempt fruitless =
      try Pool.allocate t.pool ctx arena
      with (Memory.Arena.Out_of_memory _ | Memory.Arena.Arena_full _) as e ->
        if emergency_reclaim t ctx > 0 then attempt 0
        else if fruitless + 1 >= patience then raise e
        else attempt (fruitless + 1)
    in
    attempt 0
  let dealloc t ctx p = Pool.release t.pool ctx p
  let supports_crash_recovery = Reclaimer.supports_crash_recovery
  let allows_retired_traversal = Reclaimer.allows_retired_traversal
  let sandboxed = Reclaimer.sandboxed
  let leave_qstate t ctx = Reclaimer.leave_qstate t.reclaimer ctx
  let enter_qstate t ctx = Reclaimer.enter_qstate t.reclaimer ctx
  let is_quiescent t ctx = Reclaimer.is_quiescent t.reclaimer ctx
  let protect t ctx p ~verify = Reclaimer.protect t.reclaimer ctx p ~verify
  let unprotect t ctx p = Reclaimer.unprotect t.reclaimer ctx p
  let unprotect_all t ctx = Reclaimer.unprotect_all t.reclaimer ctx
  let is_protected t ctx p = Reclaimer.is_protected t.reclaimer ctx p
  let retire t ctx p = Reclaimer.retire t.reclaimer ctx p
  let rprotect t ctx p = Reclaimer.rprotect t.reclaimer ctx p
  let runprotect_all t ctx = Reclaimer.runprotect_all t.reclaimer ctx
  let is_rprotected t ctx p = Reclaimer.is_rprotected t.reclaimer ctx p
  let limbo_size t = Reclaimer.limbo_size t.reclaimer
  let limbo_per_proc t = Reclaimer.limbo_per_proc t.reclaimer
  let epoch_lag t = Reclaimer.epoch_lag t.reclaimer
  let pool_population t = Pool.population t.pool
  let flush t ctx = Reclaimer.flush t.reclaimer ctx

  (* The operation wrapper of Fig. 5: catch neutralization, run recovery in
     a quiescent state, restart when recovery asks for it.  Under a
     sandboxed scheme (StackTrack), an access to reclaimed memory raises
     {!Memory.Arena.Use_after_free} instead of segfaulting; that is the
     simulated transaction abort, and it is recovered from exactly like a
     neutralization: the recover closure either finishes the operation from
     its published descriptor or asks for a restart. *)
  let run_op t ctx ~recover body =
    let rec attempt () =
      match body () with
      | v -> v
      | exception Runtime.Ctx.Neutralized -> (
          match recover () with Some v -> v | None -> attempt ())
      | exception Memory.Arena.Use_after_free _ when Reclaimer.sandboxed -> (
          (* The aborted segment's register file is discarded with it. *)
          Reclaimer.unprotect_all t.reclaimer ctx;
          match recover () with
          | Some v -> v
          | None -> attempt ()
          | exception Memory.Arena.Use_after_free _ -> attempt ())
    in
    attempt ()
end
