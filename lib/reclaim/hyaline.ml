(** Hyaline-style reclamation (Nikolaev & Ravindran, SPAA'19 / PLDI'21):
    snapshot-free distributed reference counting over retire {e batches}.

    Where epoch schemes decide safety by comparing clocks and QSBR by
    vector-counter snapshots, Hyaline hands each sealed batch of retired
    records to the processes that might still reach it and lets them count
    themselves out: the batch carries one reference per charged process,
    every charged process drops its reference at its next operation
    boundary, and whoever drops the last reference frees the whole batch.
    No process ever scans another's announcements on the hot path, and
    retiring is O(1) amortized.

    Adaptation to this harness:

    - each announcement slot holds the {e birth era} of its process'
      current session (the global era clock value read when the session
      opened; 0 = quiescent).  The era clock advances once per sealed
      batch;
    - [retire] stamps the open batch with the era it observed — the
      batch's retire-era watermark;
    - sealing a batch charges exactly the processes whose slot is active
      {e and} whose session birth era does not exceed the batch's
      watermark.  A session born after every retire in the batch cannot
      reach its records (they were unlinked before the session opened, and
      the monotone era clock orders the two), so it is skipped — this
      per-slot era comparison is what keeps charging snapshot-free;
    - crashed processes are never charged, and [emergency_reclaim] revokes
      the references of processes that crashed while charged — the same
      dead-process discounting the crash-aware sanitizer applies — so a
      crash pins nothing;
    - references are dropped at both ends of the operation boundary
      ([enter_qstate]/[leave_qstate]); the physical free happens strictly
      outside the dropper's own session.

    Shared with the other epoch-style schemes: [allows_retired_traversal]
    (searches may cross retired records), blanket session protection, and
    pairing with [Alloc.Bump] + [Pool.Shared].

    The per-batch bookkeeping (reference counts, charge flags, pending
    lists) is host-side state guarded by one uninstrumented mutex so the
    domains backend can run the handoff from real parallel domains; its
    simulated cost is charged explicitly ([Runtime.Ctx.work]) where the
    protocol touches shared memory.  No instrumented operation runs while
    the mutex is held (the simulator may only switch processes at
    instrumented points, so a yield inside the critical section could
    self-deadlock). *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type batch = {
    bags : Bag.Blockbag.t array;  (* per arena *)
    mutable size : int;  (* records; final once sealed *)
    mutable max_era : int;  (* retire-era watermark *)
    charges : bool array;  (* per-pid outstanding reference *)
    mutable rc : int;  (* outstanding references; set at seal *)
    mutable freed : bool;  (* claimed by exactly one freer *)
  }

  type local = {
    mutable open_batch : batch;
    mutable pending : batch list;  (* batches charged to this process *)
    mutable sealed : batch list;  (* batches this process sealed, unfreed *)
  }

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    era : int Runtime.Svar.t;  (* advances once per sealed batch *)
    slots : Runtime.Shared_array.t;  (* session birth era; 0 = quiescent *)
    my_slot : int array;  (* local mirror of own slot *)
    locals : local array;
    batch_records : int;
    lock : Mutex.t;  (* host-side guard for rc/charges/pending/freed *)
  }

  let name = "hyaline"
  let supports_crash_recovery = false
  let allows_retired_traversal = true
  let sandboxed = false

  let fresh_batch env n pid =
    {
      bags =
        Array.init Memory.Ptr.max_arenas (fun _ ->
            Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
      size = 0;
      max_era = 0;
      charges = Array.make n false;
      rc = 0;
      freed = false;
    }

  let create env pool =
    let n = Intf.Env.nprocs env in
    {
      env;
      pool;
      era = Runtime.Svar.make 1;
      slots =
        Runtime.Shared_array.create
          ~padded:env.Intf.Env.params.Intf.Params.padded_announcements n;
      my_slot = Array.make n 0;
      locals =
        Array.init n (fun pid ->
            { open_batch = fresh_batch env n pid; pending = []; sealed = [] });
      batch_records = env.Intf.Env.params.Intf.Params.block_capacity;
      lock = Mutex.create ();
    }

  (* Empty a sealed batch's bags without ever touching the owner's block
     pool (the owner may be using it concurrently on the domains backend):
     full blocks leave whole, the partial head is popped in place. *)
  let free_batch t ctx b =
    Array.iter
      (fun bag ->
        ignore
          (Bag.Blockbag.move_all_full_blocks bag ~into:(fun blk ->
               P.release_block t.pool ctx blk));
        let rec go () =
          match Bag.Blockbag.pop bag with
          | Some p ->
              P.release t.pool ctx p;
              go ()
          | None -> ()
        in
        go ())
      b.bags;
    if b.size > 0 then Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep b.size)

  (* Drop this process' reference on every batch handed to it; returns the
     batches whose last reference we dropped (we own their freeing).  Host
     mutations under the lock, simulated cost charged after. *)
  let drop_references t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let l = t.locals.(pid) in
    if l.pending == [] then []
    else begin
      Mutex.lock t.lock;
      let mine = l.pending in
      l.pending <- [];
      let freeable =
        List.filter_map
          (fun b ->
            if b.charges.(pid) then begin
              b.charges.(pid) <- false;
              b.rc <- b.rc - 1;
              if b.rc = 0 && not b.freed then begin
                b.freed <- true;
                Some b
              end
              else None
            end
            else None)
          mine
      in
      Mutex.unlock t.lock;
      (* one shared decrement per handed-over batch *)
      Runtime.Ctx.work ctx (2 * List.length mine);
      freeable
    end

  (* Boundary order matters for the handoff to stay premature-free-safe:

     - on [leave_qstate] the slot is published {e before} the session-open
       event, so a session that is open is always visible to a sealer;
     - on [enter_qstate] the session-close event precedes the slot write,
       so a process that looks quiescent has really closed its session;
     - on [enter_qstate] the session-close event also precedes the
       reference drop: the drop yields (its simulated cost), and if another
       process consumed the now-last reference during that yield it would
       free the batch while this session still looks open;
     - a physical free only ever runs between the freer's own sessions. *)
  let leave_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let freeable = drop_references t ctx in
    List.iter (free_batch t ctx) freeable;
    let e = Runtime.Svar.get ctx t.era in
    t.my_slot.(pid) <- e;
    Runtime.Shared_array.set ctx t.slots pid e;
    Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q

  let enter_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q;
    let freeable = drop_references t ctx in
    t.my_slot.(pid) <- 0;
    Runtime.Shared_array.set ctx t.slots pid 0;
    List.iter (free_batch t ctx) freeable

  let is_quiescent t ctx = t.my_slot.(ctx.Runtime.Ctx.pid) = 0

  (* Being inside the session is the protection, as for every
     retired-traversal scheme. *)
  let protect _t _ctx _p ~verify:_ = true
  let unprotect _t _ctx _p = ()
  let unprotect_all _t _ctx = ()
  let is_protected _t _ctx _p = true

  (* Seal the open batch: advance the era, snapshot the active slots, and
     hand the batch one reference per charged process.  A process is
     charged when its session was born no later than the batch's last
     retire (slot era <= watermark) — later sessions provably cannot reach
     the batch — and crashed processes are never charged. *)
  let seal t ctx l =
    let b = l.open_batch in
    if b.size > 0 then begin
      let n = Intf.Env.nprocs t.env in
      l.open_batch <- fresh_batch t.env n ctx.Runtime.Ctx.pid;
      let e = Runtime.Svar.get ctx t.era in
      ignore (Runtime.Svar.cas ctx t.era ~expect:e (e + 1));
      Intf.Env.emit t.env ctx (Memory.Smr_event.Epoch_advance (e + 1));
      let charged = ref 0 in
      for pid = 0 to n - 1 do
        let a = Runtime.Shared_array.get ctx t.slots pid in
        if
          a > 0 && a <= b.max_era
          && not (Runtime.Group.is_crashed t.env.Intf.Env.group pid)
        then begin
          b.charges.(pid) <- true;
          incr charged
        end
      done;
      Mutex.lock t.lock;
      b.rc <- !charged;
      if b.rc = 0 then b.freed <- true
      else
        Array.iteri
          (fun pid c ->
            if c then begin
              let lp = t.locals.(pid) in
              lp.pending <- b :: lp.pending
            end)
          b.charges;
      Mutex.unlock t.lock;
      if b.freed then free_batch t ctx b
      else
        l.sealed <- b :: List.filter (fun x -> not x.freed) l.sealed
    end

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Runtime.Ctx.work ctx 2;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let b = l.open_batch in
    (* stamp the watermark: one shared era read per retire *)
    let e = Runtime.Svar.get ctx t.era in
    if e > b.max_era then b.max_era <- e;
    Bag.Blockbag.add b.bags.(Memory.Ptr.arena_id p) p;
    b.size <- b.size + 1;
    if b.size >= t.batch_records then seal t ctx l

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    List.fold_left
      (fun acc b -> if b.freed then acc else acc + b.size)
      l.open_batch.size l.sealed

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals

  (* A session's lag is how far the era clock moved since it opened. *)
  let epoch_lag t =
    let e = Runtime.Svar.peek t.era in
    Array.map (fun a -> if a = 0 then 0 else max 0 (e - a)) t.my_slot

  (* Quiescent shutdown.  Every surviving process has closed its session
     (and with it dropped its references); remaining references belong to
     crashed processes, which never access again — as for EBR, draining at
     shutdown cannot produce a use-after-free. *)
  let flush t ctx =
    Array.iter
      (fun l ->
        List.iter
          (fun b ->
            if not b.freed then begin
              b.freed <- true;
              b.rc <- 0;
              free_batch t ctx b
            end)
          l.sealed;
        l.sealed <- [];
        l.pending <- [];
        free_batch t ctx l.open_batch;
        l.open_batch.size <- 0)
      t.locals

  (* Allocation-failure path: seal our open batch so its countdown starts
     now, then revoke the references of crashed processes everywhere — a
     batch pinned only by the dead is freed on the spot.  References held
     by live sessions are honored: dropping them here would be a premature
     free.  Our own charge keeps our sealed batches pinned until our next
     boundary, so under no faults this can honestly return 0. *)
  let emergency_reclaim t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    if l.open_batch.size > 0 then seal t ctx l;
    let group = t.env.Intf.Env.group in
    let n = Intf.Env.nprocs t.env in
    if not (Runtime.Group.any_crashed group) then 0
    else begin
      Mutex.lock t.lock;
      let freeable = ref [] in
      Array.iter
        (fun lo ->
          List.iter
            (fun b ->
              if not b.freed then begin
                for pid = 0 to n - 1 do
                  if b.charges.(pid) && Runtime.Group.is_crashed group pid
                  then begin
                    b.charges.(pid) <- false;
                    b.rc <- b.rc - 1
                  end
                done;
                if b.rc = 0 then begin
                  b.freed <- true;
                  freeable := b :: !freeable
                end
              end)
            lo.sealed)
        t.locals;
      Mutex.unlock t.lock;
      let released =
        List.fold_left (fun acc b -> acc + b.size) 0 !freeable
      in
      List.iter (free_batch t ctx) !freeable;
      released
    end
end
