(** The "no reclamation" baseline (the paper's [None]): retired records are
    simply leaked.  Fastest possible scheme per operation, unbounded memory
    footprint — the yardstick every other scheme's overhead is measured
    against. *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type t = Intf.Env.t

  let name = "none"
  let create env _pool = env
  let supports_crash_recovery = false
  let allows_retired_traversal = true
  let sandboxed = false
  let leave_qstate t ctx = Intf.Env.emit t ctx Memory.Smr_event.Leave_q
  let enter_qstate t ctx = Intf.Env.emit t ctx Memory.Smr_event.Enter_q
  let is_quiescent _t _ctx = true
  let protect _t _ctx _p ~verify:_ = true
  let unprotect _t _ctx _p = ()
  let unprotect_all _t _ctx = ()
  let is_protected _t _ctx _p = true

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Intf.Env.emit t ctx (Memory.Smr_event.Retire (Memory.Ptr.unmark p))

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false
  let limbo_size _t = 0
  let limbo_per_proc t = Array.make (Intf.Env.nprocs t) 0
  let epoch_lag t = Array.make (Intf.Env.nprocs t) 0
  let flush _t _ctx = ()

  (* Leaked records are gone: under a bounded heap the only honest answer
     is clean exhaustion. *)
  let emergency_reclaim _t _ctx = 0
end
