(** Hazard pointers (Michael), tuned for throughput as in the paper's
    evaluation: each process keeps k announcement slots and a private bag of
    retired records, scanning all announcements only once the bag exceeds
    nk + Θ(nk) records so the amortized cost per retire is O(1).

    The per-access cost is the scheme's weakness: [protect] must announce
    the pointer, issue a full memory barrier so scanners cannot miss the
    announcement, and then verify that the record is still in the data
    structure.  When verification cannot be done reliably — which is the
    case for every data structure whose searches traverse retired records —
    the operation restarts, which is how the paper's evaluation applies HP
    (at the cost of the data structure's lock-freedom; see §3). *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type local = {
    slots_mirror : int array;  (* local view of our announcement row *)
    bags : Bag.Blockbag.t array;  (* retired records, per arena *)
  }

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    rows : Runtime.Shared_array.t array;  (* announcements, [pid] *)
    locals : local array;
    scanning : Bag.Hash_set.t array;
    retire_threshold : int;  (* records *)
    k : int;
  }

  let name = "hp"
  let supports_crash_recovery = false
  let allows_retired_traversal = false
  let sandboxed = false

  let create env pool =
    let n = Intf.Env.nprocs env in
    let params = env.Intf.Env.params in
    let k = params.Intf.Params.hp_slots in
    let arenas = Memory.Ptr.max_arenas in
    {
      env;
      pool;
      rows = Array.init n (fun _ -> Runtime.Shared_array.create k);
      locals =
        Array.init n (fun pid ->
            {
              slots_mirror = Array.make k 0;
              bags =
                Array.init arenas (fun _ ->
                    Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
            });
      scanning = Array.init n (fun _ -> Bag.Hash_set.create ~expected:(n * k));
      (* At least two blocks, so every scan frees at least one full block
         and the amortized cost per retire stays O(1). *)
      retire_threshold =
        max
          (2 * params.Intf.Params.block_capacity)
          (params.Intf.Params.hp_retire_factor * n * k);
      k;
    }

  let leave_qstate t ctx = Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q

  (* Protection events bracket the window in which the announcement is
     visible to scanners: [Protect] is emitted after the announcing write,
     [Unprotect] before the retracting one.  A shadow checker's hazard set
     is then always a subset of what a concurrent scan can observe. *)

  let unprotect_all t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let l = t.locals.(pid) in
    Intf.Env.emit t.env ctx Memory.Smr_event.Unprotect_all;
    for i = 0 to t.k - 1 do
      if l.slots_mirror.(i) <> 0 then begin
        l.slots_mirror.(i) <- 0;
        Runtime.Shared_array.set ctx t.rows.(pid) i 0
      end
    done

  (* Leaving an operation releases every hazard pointer. *)
  let enter_qstate t ctx =
    unprotect_all t ctx;
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q

  let is_quiescent _t _ctx = false

  let protect t ctx p ~verify =
    let pid = ctx.Runtime.Ctx.pid in
    let l = t.locals.(pid) in
    let p = Memory.Ptr.unmark p in
    let rec free_slot i =
      if i >= t.k then
        invalid_arg "Hp.protect: out of hazard-pointer slots (raise hp_slots)"
      else if l.slots_mirror.(i) = 0 then i
      else free_slot (i + 1)
    in
    let i = free_slot 0 in
    l.slots_mirror.(i) <- p;
    Runtime.Shared_array.set ctx t.rows.(pid) i p;
    Intf.Env.emit t.env ctx (Memory.Smr_event.Protect p);
    (* The barrier that makes the announcement visible before the record is
       re-verified — the cost HP pays on every newly reached record. *)
    Runtime.Ctx.fence ctx;
    if verify () then true
    else begin
      Intf.Env.emit t.env ctx (Memory.Smr_event.Unprotect p);
      l.slots_mirror.(i) <- 0;
      Runtime.Shared_array.set ctx t.rows.(pid) i 0;
      false
    end

  let unprotect t ctx p =
    let pid = ctx.Runtime.Ctx.pid in
    let l = t.locals.(pid) in
    let p = Memory.Ptr.unmark p in
    let rec go i =
      if i < t.k then
        if l.slots_mirror.(i) = p then begin
          Intf.Env.emit t.env ctx (Memory.Smr_event.Unprotect p);
          l.slots_mirror.(i) <- 0;
          Runtime.Shared_array.set ctx t.rows.(pid) i 0
        end
        else go (i + 1)
    in
    go 0

  let is_protected t ctx p =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    Array.exists (fun s -> s = p) l.slots_mirror

  let scan t ctx l =
    let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
    Scan_util.collect_announcements ctx ~into:scanning
      ~nprocs:(Intf.Env.nprocs t.env)
      ~row:(fun other -> t.rows.(other))
      ~count:(fun _ _ -> t.k);
    let released = ref 0 in
    Array.iter
      (fun bag ->
        released :=
          !released
          + Scan_util.partition_and_release ctx bag ~protected:scanning
              ~release_block:(fun b -> P.release_block t.pool ctx b))
      l.bags;
    if !released > 0 then
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released)

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Runtime.Ctx.work ctx 2;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Bag.Blockbag.add l.bags.(Memory.Ptr.arena_id p) p;
    let total = Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags in
    if total >= t.retire_threshold then scan t ctx l

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals
  let epoch_lag t = Array.make (Array.length t.locals) 0

  let flush t ctx =
    let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
    Scan_util.collect_announcements ctx ~into:scanning
      ~nprocs:(Intf.Env.nprocs t.env)
      ~row:(fun other -> t.rows.(other))
      ~count:(fun _ _ -> t.k);
    Array.iter
      (fun l ->
        Array.iter
          (fun b ->
            ignore
              (Scan_util.flush_bag ctx b
                 ~keep:(fun p -> Bag.Hash_set.mem scanning p)
                 ~release:(fun ctx p -> P.release t.pool ctx p)
                 ~release_block:(fun blk -> P.release_block t.pool ctx blk)))
          l.bags)
      t.locals

  (* Allocation-failure path: scan immediately, below the amortization
     threshold, and drain even the partial blocks of our own retired bags —
     everything not currently covered by a hazard pointer is freed.  HP's
     bound does not depend on other processes making progress, so this frees
     all but O(nk) records even under crashes and stalls. *)
  let emergency_reclaim t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
    Scan_util.collect_announcements ctx ~into:scanning
      ~nprocs:(Intf.Env.nprocs t.env)
      ~row:(fun other -> t.rows.(other))
      ~count:(fun _ _ -> t.k);
    let released = ref 0 in
    Array.iter
      (fun b ->
        released :=
          !released
          + Scan_util.flush_bag ctx b
              ~keep:(fun p -> Bag.Hash_set.mem scanning p)
              ~release:(fun ctx p -> P.release t.pool ctx p)
              ~release_block:(fun blk -> P.release_block t.pool ctx blk))
      l.bags;
    if !released > 0 then
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released);
    !released
end
