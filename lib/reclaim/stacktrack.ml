(** StackTrack-style reclamation (Alistarh, Eugster, Herlihy, Matveev,
    Shavit, EuroSys'14), over the simulated best-effort transactions of
    [Htm.Stm] semantics (paper §3).

    The original splits every operation into short hardware transactions
    ("segments"); pointers live in registers during a segment and are
    announced as hazard pointers only when a segment commits, so the
    per-record fences of HP are replaced by a per-segment commit.  A
    transaction that touches memory reclaimed mid-segment simply aborts and
    the segment retries.

    In this reproduction, segments are driven by [protect] calls: every
    [st_segment_accesses]-th newly-reached record closes a segment — the
    process pays the transaction begin/commit cost and publishes its live
    pointer set to its announcement row.  Between segment boundaries the
    pointers are unpublished, exactly like register-resident pointers inside
    a hardware transaction; if a scan frees one of them, the subsequent
    access raises {!Memory.Arena.Use_after_free}, which the data structure
    treats as the transaction abort ([sandboxed = true]) and retries.  This
    preserves StackTrack's cost profile (a few transactions per operation,
    announcements batched per segment, aborts on concurrent reclamation) and
    its documented inapplicability to structures that traverse
    retired-to-retired pointers.

    Reclamation is ScanAndFree: a private buffer of retired records,
    scanned against all announcement rows past a threshold. *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type local = {
    mirror : int array;  (* live pointer set (register file of the segment) *)
    announced : int array;  (* what our row currently publishes *)
    bags : Bag.Blockbag.t array;
    mutable seg_fill : int;  (* records reached in the current segment *)
  }

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    rows : Runtime.Shared_array.t array;
    locals : local array;
    scanning : Bag.Hash_set.t array;
    retire_threshold : int;
    segment_accesses : int;
    k : int;
    mutable segments : int;  (* committed segments, for reporting *)
  }

  let name = "stacktrack"
  let supports_crash_recovery = false
  let allows_retired_traversal = false
  let sandboxed = true

  let create env pool =
    let n = Intf.Env.nprocs env in
    let params = env.Intf.Env.params in
    let k = params.Intf.Params.hp_slots in
    let arenas = Memory.Ptr.max_arenas in
    {
      env;
      pool;
      rows = Array.init n (fun _ -> Runtime.Shared_array.create k);
      locals =
        Array.init n (fun pid ->
            {
              mirror = Array.make k 0;
              announced = Array.make k 0;
              bags =
                Array.init arenas (fun _ ->
                    Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
              seg_fill = 0;
            });
      scanning = Array.init n (fun _ -> Bag.Hash_set.create ~expected:(n * k));
      retire_threshold =
        max
          (2 * params.Intf.Params.block_capacity)
          (params.Intf.Params.hp_retire_factor * n * k);
      segment_accesses = params.Intf.Params.st_segment_accesses;
      k;
      segments = 0;
    }

  (* Close the current segment: pay the transaction boundary — commit of
     the old segment, begin of the next, and the checkpointing of local
     state (registers/stack) the original performs so the next segment can
     resume or fall back — then publish the live pointer set (only slots
     that changed are written).  The 440-cycle figure is calibrated so the
     measured DEBRA-vs-ST gap lands in the band the paper reports
     (RTM begin+commit plus the checkpoint copy); see EXPERIMENTS.md. *)
  let commit_segment t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Runtime.Ctx.work ctx 440;
    for i = 0 to t.k - 1 do
      if l.announced.(i) <> l.mirror.(i) then begin
        l.announced.(i) <- l.mirror.(i);
        Runtime.Shared_array.set ctx t.rows.(ctx.Runtime.Ctx.pid) i l.mirror.(i)
      end
    done;
    l.seg_fill <- 0;
    t.segments <- t.segments + 1

  let leave_qstate t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    l.seg_fill <- 0;
    Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q;
    Runtime.Ctx.work ctx 120 (* first segment begin + checkpoint *)

  let unprotect_all t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Intf.Env.emit t.env ctx Memory.Smr_event.Unprotect_all;
    Array.fill l.mirror 0 t.k 0

  let enter_qstate t ctx =
    (* Operation done: clear the register file and the published row. *)
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Intf.Env.emit t.env ctx Memory.Smr_event.Unprotect_all;
    Array.fill l.mirror 0 t.k 0;
    commit_segment t ctx;
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q

  let is_quiescent _t _ctx = false

  let protect t ctx p ~verify:_ =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    let rec free_slot i =
      if i >= t.k then
        invalid_arg "Stacktrack.protect: out of pointer slots (raise hp_slots)"
      else if l.mirror.(i) = 0 then i
      else free_slot (i + 1)
    in
    l.mirror.(free_slot 0) <- p;
    Intf.Env.emit t.env ctx (Memory.Smr_event.Protect p);
    l.seg_fill <- l.seg_fill + 1;
    (* the runtime check deciding whether to start a new transaction *)
    Runtime.Ctx.work ctx 12;
    if l.seg_fill >= t.segment_accesses then commit_segment t ctx;
    true

  let unprotect t ctx p =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    let rec go i =
      if i < t.k then
        if l.mirror.(i) = p then begin
          Intf.Env.emit t.env ctx (Memory.Smr_event.Unprotect p);
          l.mirror.(i) <- 0
        end
        else go (i + 1)
    in
    go 0

  let is_protected t ctx p =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    Array.exists (fun s -> s = p) l.mirror

  (* ScanAndFree. *)
  let scan t ctx l =
    let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
    Scan_util.collect_announcements ctx ~into:scanning
      ~nprocs:(Intf.Env.nprocs t.env)
      ~row:(fun other -> t.rows.(other))
      ~count:(fun _ _ -> t.k);
    (* Our own live pointers may be unpublished mid-segment: include them. *)
    Array.iter (fun r -> if r <> 0 then Bag.Hash_set.insert scanning r) l.mirror;
    let released = ref 0 in
    Array.iter
      (fun bag ->
        released :=
          !released
          + Scan_util.partition_and_release ctx bag ~protected:scanning
              ~release_block:(fun b -> P.release_block t.pool ctx b))
      l.bags;
    if !released > 0 then
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released)

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Runtime.Ctx.work ctx 2;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Bag.Blockbag.add l.bags.(Memory.Ptr.arena_id p) p;
    let total =
      Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags
    in
    if total >= t.retire_threshold then scan t ctx l

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals
  let epoch_lag t = Array.make (Array.length t.locals) 0

  let flush t ctx =
    let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
    Bag.Hash_set.clear scanning;
    Array.iteri
      (fun pid l ->
        Array.iter (fun r -> if r <> 0 then Bag.Hash_set.insert scanning r) l.mirror;
        for i = 0 to t.k - 1 do
          let r = Runtime.Shared_array.peek t.rows.(pid) i in
          if r <> 0 then Bag.Hash_set.insert scanning r
        done)
      t.locals;
    Array.iter
      (fun l ->
        Array.iter
          (fun b ->
            ignore
              (Scan_util.flush_bag ctx b
                 ~keep:(fun p -> Bag.Hash_set.mem scanning p)
                 ~release:(fun ctx p -> P.release t.pool ctx p)
                 ~release_block:(fun blk -> P.release_block t.pool ctx blk)))
          l.bags)
      t.locals

  (* Allocation-failure path: ScanAndFree immediately, below the threshold,
     draining partial blocks of our own buffer.  Announcement rows are only
     updated at segment commits, so a crashed process keeps at most k
     records pinned — StackTrack degrades gracefully under both crashes and
     memory pressure. *)
  let emergency_reclaim t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
    Scan_util.collect_announcements ctx ~into:scanning
      ~nprocs:(Intf.Env.nprocs t.env)
      ~row:(fun other -> t.rows.(other))
      ~count:(fun _ _ -> t.k);
    Array.iter (fun r -> if r <> 0 then Bag.Hash_set.insert scanning r) l.mirror;
    let released = ref 0 in
    Array.iter
      (fun b ->
        released :=
          !released
          + Scan_util.flush_bag ctx b
              ~keep:(fun p -> Bag.Hash_set.mem scanning p)
              ~release:(fun ctx p -> P.release t.pool ctx p)
              ~release_block:(fun blk -> P.release_block t.pool ctx blk))
      l.bags;
    if !released > 0 then
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released);
    !released
end
