(** Pools (paper §4 "Object pool", §7).

    [Direct]: no pooling — reclaimed records go straight back to the
    Allocator, and allocation always hits the Allocator.  Experiment 1 uses
    this together with [Alloc.Bump], so reclaimed records are leaked and the
    data structure pays for reclamation without enjoying reuse.

    [Shared]: the paper's pool — a pool bag per process plus one shared bag;
    full blocks spill to the shared bag when the local bag exceeds its cap,
    and allocation prefers local records, then shared blocks, then the
    Allocator. *)

module Direct (A : Intf.ALLOCATOR) : Intf.POOL with module Alloc = A = struct
  module Alloc = A

  type t = { alloc : A.t; env : Intf.Env.t }

  let name = "direct"
  let create env alloc = { alloc; env }
  let allocate t ctx arena = A.allocate t.alloc ctx arena
  let release t ctx p = A.deallocate t.alloc ctx p

  let release_block t ctx b =
    for i = 0 to b.Bag.Block.count - 1 do
      A.deallocate t.alloc ctx b.Bag.Block.data.(i)
    done;
    b.Bag.Block.count <- 0;
    Bag.Block_pool.put t.env.Intf.Env.block_pools.(ctx.Runtime.Ctx.pid) b

  let population _t = 0
end

module Shared (A : Intf.ALLOCATOR) : Intf.POOL with module Alloc = A = struct
  module Alloc = A

  (* One pool bag per arena per process: records of different types must not
     be mixed when they are reused. *)
  type t = {
    alloc : A.t;
    env : Intf.Env.t;
    local : Bag.Blockbag.t array array;  (* [arena][pid] *)
    shared : Bag.Shared_bag.t array;  (* [arena] *)
  }

  let name = "pool"

  let create env alloc =
    let n = Intf.Env.nprocs env in
    let arenas = Memory.Ptr.max_arenas in
    {
      alloc;
      env;
      local =
        Array.init arenas (fun _ ->
            Array.init n (fun pid ->
                Bag.Blockbag.create env.Intf.Env.block_pools.(pid)));
      shared = Array.init arenas (fun _ -> Bag.Shared_bag.create ());
    }

  let spill_if_needed t ctx bag aid =
    if
      Bag.Blockbag.size_in_blocks bag
      > t.env.Intf.Env.params.Intf.Params.pool_cap_blocks
    then
      ignore
        (Bag.Blockbag.move_all_full_blocks bag ~into:(fun b ->
             Bag.Shared_bag.push ctx t.shared.(aid) b))

  (* Pooled records keep their generation: they will be handed out again
     without passing through the arena, so put/take events are the only
     trace of their reuse a shadow checker can see. *)
  let emit_put t ctx p = Intf.Env.emit t.env ctx (Memory.Smr_event.Pool_put p)

  let release t ctx p =
    let aid = Memory.Ptr.arena_id p in
    let bag = t.local.(aid).(ctx.Runtime.Ctx.pid) in
    Runtime.Ctx.work ctx 2;
    emit_put t ctx p;
    Bag.Blockbag.add bag p;
    spill_if_needed t ctx bag aid

  let release_block t ctx b =
    (* Whole blocks go to the local bag; surplus spills in bulk. *)
    if Bag.Block.is_full b then begin
      let aid = Memory.Ptr.arena_id b.Bag.Block.data.(0) in
      let bag = t.local.(aid).(ctx.Runtime.Ctx.pid) in
      Runtime.Ctx.work ctx 2;
      for i = 0 to b.Bag.Block.count - 1 do
        emit_put t ctx b.Bag.Block.data.(i)
      done;
      Bag.Blockbag.add_block bag b;
      spill_if_needed t ctx bag aid
    end
    else begin
      for i = 0 to b.Bag.Block.count - 1 do
        release t ctx b.Bag.Block.data.(i)
      done;
      b.Bag.Block.count <- 0;
      Bag.Block_pool.put t.env.Intf.Env.block_pools.(ctx.Runtime.Ctx.pid) b
    end

  let allocate t ctx arena =
    let aid = Memory.Arena.heap_id arena in
    let bag = t.local.(aid).(ctx.Runtime.Ctx.pid) in
    Runtime.Ctx.work ctx 2;
    let took p = Intf.Env.emit t.env ctx (Memory.Smr_event.Pool_take p) in
    match Bag.Blockbag.pop bag with
    | Some p ->
        took p;
        p
    | None -> (
        match Bag.Shared_bag.pop ctx t.shared.(aid) with
        | Some b ->
            Bag.Blockbag.add_block bag b;
            (match Bag.Blockbag.pop bag with
            | Some p ->
                took p;
                p
            | None -> A.allocate t.alloc ctx arena)
        | None -> A.allocate t.alloc ctx arena)

  (* Shared bags hold full blocks only, so their record population is exact
     at B records per block. *)
  let population t =
    let b = t.env.Intf.Env.params.Intf.Params.block_capacity in
    Array.fold_left
      (fun acc per_pid ->
        Array.fold_left (fun acc bag -> acc + Bag.Blockbag.size bag) acc per_pid)
      0 t.local
    + b
      * Array.fold_left
          (fun acc sh -> acc + Bag.Shared_bag.size_in_blocks sh)
          0 t.shared
end
