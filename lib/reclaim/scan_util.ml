(** The partition step shared by DEBRA+'s [rotateAndReclaim] and HP's scan
    (paper §5 "Complexity"): records pointed to by hazard pointers are
    swapped to the front of a limbo bag, then every full block behind the
    partition point — which by construction holds only unprotected records —
    is transferred to the pool in O(1) per block. *)

(* [partition_and_release ctx bag ~protected ~release_block] returns the
   number of records released. *)
let partition_and_release ctx bag ~protected ~release_block =
  Runtime.Ctx.work ctx (2 * Bag.Blockbag.size bag);
  let it1 = Bag.Blockbag.cursor bag in
  let it2 = Bag.Blockbag.cursor bag in
  while not (Bag.Blockbag.at_end it1) do
    if Bag.Hash_set.mem protected (Bag.Blockbag.get it1) then begin
      Bag.Blockbag.swap it1 it2;
      Bag.Blockbag.advance it2
    end;
    Bag.Blockbag.advance it1
  done;
  Bag.Blockbag.move_full_blocks_after bag it2 ~into:release_block

(* [flush_bag ctx bag ~keep ~release ~release_block] empties [bag] of every
   record not satisfying [keep] and returns how many it released.  Records
   satisfying [keep] stay in the bag (still limbo).  The building block of
   each reclaimer's quiescent-shutdown [flush] and allocation-failure
   emergency path: under full quiescence [keep] never holds and the bag
   drains to empty.

   Same partition discipline as [partition_and_release]: kept records are
   swapped to the front, every full block behind the partition point leaves
   whole through [release_block] — O(1) per block — and only the bounded
   remainder (the kept prefix plus at most one partial block) drains
   record-by-record through [release].  [keep] may be consulted twice for
   records in that remainder. *)
let flush_bag ctx bag ~keep ~release ~release_block =
  let it1 = Bag.Blockbag.cursor bag in
  let it2 = Bag.Blockbag.cursor bag in
  while not (Bag.Blockbag.at_end it1) do
    if keep (Bag.Blockbag.get it1) then begin
      Bag.Blockbag.swap it1 it2;
      Bag.Blockbag.advance it2
    end;
    Bag.Blockbag.advance it1
  done;
  let released =
    ref (Bag.Blockbag.move_full_blocks_after bag it2 ~into:release_block)
  in
  let kept = ref [] in
  let rec drain () =
    match Bag.Blockbag.pop bag with
    | None -> ()
    | Some p ->
        if keep p then kept := p :: !kept
        else begin
          incr released;
          release ctx p
        end;
        drain ()
  in
  drain ();
  List.iter (Bag.Blockbag.add bag) !kept;
  !released

(* [collect_announcements ctx ~into ~nprocs ~row ~count] hashes every
   announced pointer of every process: [count pid] bounds the live prefix of
   [row pid]. *)
let collect_announcements ctx ~into ~nprocs ~row ~count =
  Bag.Hash_set.clear into;
  for other = 0 to nprocs - 1 do
    let r : Runtime.Shared_array.t = row other in
    let c = min (count ctx other) (Runtime.Shared_array.length r) in
    for i = 0 to c - 1 do
      let hp = Runtime.Shared_array.get ctx r i in
      if not (Memory.Ptr.is_null hp) then Bag.Hash_set.insert into hp
    done
  done
