(** Reference counting (paper §3, "RC").

    The paper surveys lock-free reference counting (Detlefs et al.'s LFRC,
    Herlihy et al.'s SLFRC) and concludes that updating counters on every
    pointer traversal makes RC the slowest of the practical schemes.  This
    implementation reproduces exactly that cost profile: [protect] and
    [unprotect] perform a fetch-and-add on a shared per-record counter, so
    every node reached by a traversal costs two read-modify-writes plus
    their coherence traffic.

    Scope: the counter tracks references held by {e processes} (like the
    hazard-pointer-backed SLFRC, or Pass-the-Buck's guards), not pointers
    stored in other records — which sidesteps the cycle-collection problem
    the paper describes but keeps the measured per-access overhead faithful.
    A retired record is freed when its process-reference count is zero.

    Like HP, RC cannot traverse from retired records to retired records:
    the data structure must verify each protection and restart on
    suspicion.

    Counter safety on reused slots: [protect] increments first and
    validates the pointer's generation afterwards; an increment that landed
    on a slot that was re-allocated in the meantime is immediately undone,
    and can only delay (never cause) a reclamation — the transient +1 makes
    the scheme conservative, mirroring how SLFRC tolerates stale counter
    touches under its hazard-pointer umbrella. *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type local = {
    bags : Bag.Blockbag.t array;  (* retired, per arena *)
    mutable held : Memory.Ptr.t list;  (* our outstanding increments *)
  }

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    counts : Runtime.Shared_array.t option array;  (* per arena id, lazy *)
    locals : local array;
    scan_threshold : int;
  }

  let name = "rc"
  let supports_crash_recovery = false
  let allows_retired_traversal = false
  let sandboxed = false

  let create env pool =
    let n = Intf.Env.nprocs env in
    {
      env;
      pool;
      counts = Array.make Memory.Ptr.max_arenas None;
      locals =
        Array.init n (fun pid ->
            {
              bags =
                Array.init Memory.Ptr.max_arenas (fun _ ->
                    Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
              held = [];
            });
      scan_threshold = 2 * env.Intf.Env.params.Intf.Params.block_capacity;
    }

  let counts_of t heap_id =
    match t.counts.(heap_id) with
    | Some c -> c
    | None ->
        let arena =
          List.find
            (fun a -> Memory.Arena.heap_id a = heap_id)
            (Memory.Heap.arenas t.env.Intf.Env.heap)
        in
        let c = Runtime.Shared_array.create (Memory.Arena.capacity arena) in
        t.counts.(heap_id) <- Some c;
        c

  let leave_qstate t ctx = Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q
  let is_quiescent _t _ctx = false

  let protect t ctx p ~verify =
    let p = Memory.Ptr.unmark p in
    let c = counts_of t (Memory.Ptr.arena_id p) in
    let slot = Memory.Ptr.slot p in
    ignore (Runtime.Shared_array.faa ctx c slot 1);
    (* The increment is visible: the shadow hazard window opens here and is
       closed (Unprotect) before the undo decrement on failure. *)
    Intf.Env.emit t.env ctx (Memory.Smr_event.Protect p);
    let arena = Memory.Heap.arena_of t.env.Intf.Env.heap p in
    if Memory.Arena.is_valid arena p && verify () then begin
      t.locals.(ctx.Runtime.Ctx.pid).held <-
        p :: t.locals.(ctx.Runtime.Ctx.pid).held;
      true
    end
    else begin
      Intf.Env.emit t.env ctx (Memory.Smr_event.Unprotect p);
      ignore (Runtime.Shared_array.faa ctx c slot (-1));
      false
    end

  let decrement t ctx p =
    let c = counts_of t (Memory.Ptr.arena_id p) in
    ignore (Runtime.Shared_array.faa ctx c (Memory.Ptr.slot p) (-1))

  let unprotect t ctx p =
    let p = Memory.Ptr.unmark p in
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let rec remove_first = function
      | [] -> None
      | x :: rest when x = p -> Some rest
      | x :: rest -> Option.map (fun r -> x :: r) (remove_first rest)
    in
    match remove_first l.held with
    | Some held ->
        Intf.Env.emit t.env ctx (Memory.Smr_event.Unprotect p);
        l.held <- held;
        decrement t ctx p
    | None -> ()

  (* The per-process ledger of outstanding increments lets a restarting
     operation drop everything it holds in one call. *)
  let unprotect_all t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Intf.Env.emit t.env ctx Memory.Smr_event.Unprotect_all;
    List.iter (decrement t ctx) l.held;
    l.held <- []

  (* Finishing an operation releases every reference it still holds. *)
  let enter_qstate t ctx =
    unprotect_all t ctx;
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q

  let is_protected t ctx p =
    let p = Memory.Ptr.unmark p in
    Runtime.Shared_array.get ctx (counts_of t (Memory.Ptr.arena_id p))
      (Memory.Ptr.slot p)
    > 0

  let scan t ctx l =
    let released = ref 0 in
    Array.iteri
      (fun aid bag ->
        if not (Bag.Blockbag.is_empty bag) then begin
          let c = counts_of t aid in
          Runtime.Ctx.work ctx (Bag.Blockbag.size bag);
          let it1 = Bag.Blockbag.cursor bag in
          let it2 = Bag.Blockbag.cursor bag in
          while not (Bag.Blockbag.at_end it1) do
            let r = Bag.Blockbag.get it1 in
            if Runtime.Shared_array.get ctx c (Memory.Ptr.slot r) > 0 then begin
              Bag.Blockbag.swap it1 it2;
              Bag.Blockbag.advance it2
            end;
            Bag.Blockbag.advance it1
          done;
          released :=
            !released
            + Bag.Blockbag.move_full_blocks_after bag it2 ~into:(fun b ->
                  P.release_block t.pool ctx b)
        end)
      l.bags;
    if !released > 0 then
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released)

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Runtime.Ctx.work ctx 2;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Bag.Blockbag.add l.bags.(Memory.Ptr.arena_id p) p;
    let total =
      Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags
    in
    if total >= t.scan_threshold then scan t ctx l

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals
  let epoch_lag t = Array.make (Array.length t.locals) 0

  let flush t ctx =
    Array.iter
      (fun l ->
        Array.iteri
          (fun aid bag ->
            if not (Bag.Blockbag.is_empty bag) then
              let c = counts_of t aid in
              ignore
                (Scan_util.flush_bag ctx bag
                   ~keep:(fun p ->
                     Runtime.Shared_array.peek c (Memory.Ptr.slot p) > 0)
                   ~release:(fun ctx p -> P.release t.pool ctx p)
                   ~release_block:(fun b -> P.release_block t.pool ctx b)))
          l.bags)
      t.locals

  (* Allocation-failure path: drain our own retired bags completely,
     freeing every record whose process-reference count is zero.  Like HP,
     independent of other processes' progress — only records actually held
     by a (possibly crashed) process stay in limbo. *)
  let emergency_reclaim t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let released = ref 0 in
    Array.iteri
      (fun aid bag ->
        if not (Bag.Blockbag.is_empty bag) then begin
          let c = counts_of t aid in
          released :=
            !released
            + Scan_util.flush_bag ctx bag
                ~keep:(fun p ->
                  Runtime.Shared_array.get ctx c (Memory.Ptr.slot p) > 0)
                ~release:(fun ctx p -> P.release t.pool ctx p)
                ~release_block:(fun b -> P.release_block t.pool ctx b)
        end)
      l.bags;
    if !released > 0 then
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released);
    !released
end
