(** ThreadScan (Alistarh, Leiserson, Matveev, Shavit, SPAA'15) — the other
    signal-based scheme, developed concurrently with DEBRA+ (paper §3).

    Shape of the algorithm: processes register the pointers held in their
    private memory (here: an explicit root registry updated by [protect] /
    [unprotect] with plain writes — no fences, which is TS's selling point
    over HP).  When a process' delete buffer grows past a threshold it
    becomes the collector: it takes a global lock, signals every other
    process, and each signal handler pushes the handler's current roots into
    a shared mark bag and acknowledges.  The collector waits for the
    acknowledgments, then frees every record of its own buffer that no
    process had marked.

    Two deviations from the original, both documented here:
    - the original scans the thread's stack and registers; OCaml offers no
      raw stack scanning, so roots are explicit (DESIGN.md §2);
    - the collector skips processes that are quiescent (between operations,
      hence with empty root sets), where the original waits for everyone;
      without this, a process that terminates would block collection
      forever.  The blocking behaviour the paper criticizes is preserved for
      any process that stalls {e inside} an operation.

    The paper's deeper criticism — that TS is unsafe for data structures
    where a traversal can cross from one retired record to another — is
    reproduced verbatim by [test_threadscan.ml]'s use-after-free scenario.
    TS is therefore kept out of the BST/list benchmarks, as in the paper. *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type local = {
    mirror : int array;  (* our registered roots *)
    bags : Bag.Blockbag.t array;  (* delete buffers, per arena *)
  }

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    locals : local array;
    quiescent : Runtime.Shared_array.t;  (* 1 = between operations *)
    acked : Runtime.Shared_array.t;
    glock : int Runtime.Svar.t;
    mark_bag : Bag.Shared_intbag.t ref;
    scanning : Bag.Hash_set.t array;
    threshold : int;  (* records *)
    k : int;
  }

  let name = "threadscan"
  let supports_crash_recovery = false
  let allows_retired_traversal = true
  let sandboxed = false

  let create env pool =
    let n = Intf.Env.nprocs env in
    let params = env.Intf.Env.params in
    let k = params.Intf.Params.hp_slots in
    let arenas = Memory.Ptr.max_arenas in
    let t =
      {
        env;
        pool;
        locals =
          Array.init n (fun pid ->
              {
                mirror = Array.make k 0;
                bags =
                  Array.init arenas (fun _ ->
                      Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
              });
        quiescent = Runtime.Shared_array.create ~padded:true n;
        acked = Runtime.Shared_array.create ~padded:true n;
        glock = Runtime.Svar.make 0;
        mark_bag = ref (Bag.Shared_intbag.create ());
        scanning = Array.init n (fun _ -> Bag.Hash_set.create ~expected:(n * k));
        threshold =
          params.Intf.Params.ts_buffer_blocks * params.Intf.Params.block_capacity;
        k;
      }
    in
    for pid = 0 to n - 1 do
      Runtime.Shared_array.poke t.quiescent pid 1
    done;
    (* The scan handler: report current roots, then acknowledge.  Unlike
       DEBRA+'s handler it never aborts the interrupted operation. *)
    Array.iter
      (fun ctx ->
        ctx.Runtime.Ctx.handler <-
          (fun ctx ->
            let pid = ctx.Runtime.Ctx.pid in
            let bag = !(t.mark_bag) in
            Array.iter
              (fun r -> if r <> 0 then Bag.Shared_intbag.push ctx bag r)
              t.locals.(pid).mirror;
            Runtime.Shared_array.set ctx t.acked pid 1))
      env.Intf.Env.group.Runtime.Group.ctxs;
    t

  let leave_qstate t ctx =
    Runtime.Shared_array.set ctx t.quiescent ctx.Runtime.Ctx.pid 0;
    Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q

  let unprotect_all t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Intf.Env.emit t.env ctx Memory.Smr_event.Unprotect_all;
    Array.fill l.mirror 0 t.k 0

  let enter_qstate t ctx =
    unprotect_all t ctx;
    Runtime.Shared_array.set ctx t.quiescent ctx.Runtime.Ctx.pid 1;
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q

  let is_quiescent t ctx =
    Runtime.Shared_array.peek t.quiescent ctx.Runtime.Ctx.pid = 1

  (* Root registration: one plain write, no fence — the signal round makes
     announcements visible instead. *)
  let protect t ctx p ~verify:_ =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    let rec free_slot i =
      if i >= t.k then
        invalid_arg "Threadscan.protect: out of root slots (raise hp_slots)"
      else if l.mirror.(i) = 0 then i
      else free_slot (i + 1)
    in
    l.mirror.(free_slot 0) <- p;
    Intf.Env.emit t.env ctx (Memory.Smr_event.Protect p);
    Runtime.Ctx.work ctx 1;
    true

  let unprotect t ctx p =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    let rec go i =
      if i < t.k then
        if l.mirror.(i) = p then begin
          Intf.Env.emit t.env ctx (Memory.Smr_event.Unprotect p);
          l.mirror.(i) <- 0
        end
        else go (i + 1)
    in
    go 0;
    Runtime.Ctx.work ctx 1

  let is_protected t ctx p =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    Array.exists (fun s -> s = p) l.mirror

  let collect ?(complete = false) t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let n = Intf.Env.nprocs t.env in
    let group = t.env.Intf.Env.group in
    (* Global collector lock (blocking — the paper's progress critique).
       The holder's pid+1 is stored so that waiters can detect a collector
       that crashed inside the collection and break the lock instead of
       spinning forever. *)
    let rec acquire () =
      if not (Runtime.Svar.cas ctx t.glock ~expect:0 (pid + 1)) then begin
        let h = Runtime.Svar.get ctx t.glock in
        if h > 0 && Runtime.Group.is_crashed group (h - 1) then
          ignore (Runtime.Svar.cas ctx t.glock ~expect:h 0)
        else Runtime.Ctx.work ctx 1;
        acquire ()
      end
    in
    acquire ();
    t.mark_bag := Bag.Shared_intbag.create ();
    for other = 0 to n - 1 do
      if other <> pid then begin
        Runtime.Shared_array.set ctx t.acked other 0;
        if
          not
            (Runtime.Group.send_signal t.env.Intf.Env.group ~from:ctx
               ~target:other)
        then
          (* ESRCH: the target crashed.  Its roots died with it — a dead
             process never dereferences again — so it is acked vacuously. *)
          Runtime.Shared_array.set ctx t.acked other 1
      end
    done;
    (* Wait for every non-quiescent surviving process to report its roots.
       A process that crashes after the signal was sent is skipped the same
       way; one that stalls non-quiescent blocks the collection — the
       progress failure the paper criticizes, preserved faithfully. *)
    let rec wait_for other =
      if other < n then
        if
          other = pid
          || Runtime.Shared_array.get ctx t.acked other = 1
          || Runtime.Shared_array.get ctx t.quiescent other = 1
          || Runtime.Group.is_crashed group other
        then wait_for (other + 1)
        else begin
          Runtime.Ctx.work ctx 1;
          wait_for other
        end
    in
    wait_for 0;
    let scanning = t.scanning.(pid) in
    Bag.Hash_set.clear scanning;
    ignore
      (Bag.Shared_intbag.drain ctx !(t.mark_bag) (fun r ->
           Bag.Hash_set.insert scanning r));
    Array.iter
      (fun r -> if r <> 0 then Bag.Hash_set.insert scanning r)
      t.locals.(pid).mirror;
    let released = ref 0 in
    Array.iter
      (fun bag ->
        released :=
          !released
          + Scan_util.partition_and_release ctx bag ~protected:scanning
              ~release_block:(fun b -> P.release_block t.pool ctx b);
        if complete then
          released :=
            !released
            + Scan_util.flush_bag ctx bag
                ~keep:(fun p -> Bag.Hash_set.mem scanning p)
                ~release:(fun ctx p -> P.release t.pool ctx p)
                ~release_block:(fun b -> P.release_block t.pool ctx b))
      t.locals.(pid).bags;
    if !released > 0 then
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released);
    Runtime.Svar.set ctx t.glock 0;
    !released

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Runtime.Ctx.work ctx 2;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Bag.Blockbag.add l.bags.(Memory.Ptr.arena_id p) p;
    let total =
      Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags
    in
    if total >= t.threshold then ignore (collect t ctx)

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals
  let epoch_lag t = Array.make (Array.length t.locals) 0

  let flush t ctx =
    let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
    Bag.Hash_set.clear scanning;
    Array.iter
      (fun l ->
        Array.iter (fun r -> if r <> 0 then Bag.Hash_set.insert scanning r) l.mirror)
      t.locals;
    Array.iter
      (fun l ->
        Array.iter
          (fun b ->
            ignore
              (Scan_util.flush_bag ctx b
                 ~keep:(fun p -> Bag.Hash_set.mem scanning p)
                 ~release:(fun ctx p -> P.release t.pool ctx p)
                 ~release_block:(fun blk -> P.release_block t.pool ctx blk)))
          l.bags)
      t.locals

  (* Allocation-failure path: run a full collection below the threshold,
     draining partial blocks too.  Degradation caveat, documented rather
     than papered over: the collection {e blocks} on any process stalled
     non-quiescent (and, under dropped signals, on any process whose signal
     never lands) — ThreadScan under memory pressure inherits the scheme's
     progress failure.  Crashed processes are skipped (see [collect]). *)
  let emergency_reclaim t ctx = collect ~complete:true t ctx
end
