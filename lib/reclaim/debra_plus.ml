(** DEBRA+: fault-tolerant distributed epoch-based reclamation (paper §5,
    Fig. 6).

    DEBRA+ extends DEBRA with {e neutralizing}: a process that lags the
    epoch while its peers' limbo bags grow is sent a (simulated POSIX)
    signal.  Its handler — installed on the process context at [create] —
    checks the quiescent bit: a quiescent process ignores the signal, a
    non-quiescent one enters a quiescent state and aborts its operation by
    raising {!Runtime.Ctx.Neutralized} (the [siglongjmp]).  The operation
    wrapper then runs recovery code (see {!Record_manager}).

    Because recovery must still access the operation's descriptor (and the
    records its help routine touches), DEBRA+ adds a limited form of hazard
    pointers: [rprotect]ed records are excluded from reclamation by swapping
    them to the front of the limbo bag before the full blocks behind them
    are transferred to the pool — expected amortized O(1) per record.

    The number of records waiting to be freed is O(n(nm + c)): once a
    process' current bag exceeds the suspect threshold it neutralizes every
    laggard, so the epoch keeps advancing even across crashes. *)

type local = {
  bags : Bag.Blockbag.t array array;  (* [arena][epoch slot] *)
  mutable index : int;
  mutable check_next : int;
  mutable ops_since_check : int;
  mutable ann : int;
  sig_attempts : int array;  (* per-target resends since last ack *)
  sig_last : int array;  (* per-target virtual time of last resend *)
}

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    epoch : int Runtime.Svar.t;
    announce : Runtime.Shared_array.t;
    locals : local array;
    rp_rows : Runtime.Shared_array.t array;  (* RProtected[pid] *)
    rp_count : Runtime.Shared_array.t;  (* published row sizes, padded *)
    scanning : Bag.Hash_set.t array;  (* per-process scratch for scans *)
    scan_threshold : int;  (* blocks *)
  }

  let name = "debra+"
  let supports_crash_recovery = true
  let allows_retired_traversal = true
  let sandboxed = false

  let epoch_of ann = ann land lnot 1
  let quiescent_bit ann = ann land 1 = 1
  let is_quiescent t ctx = quiescent_bit t.locals.(ctx.Runtime.Ctx.pid).ann

  let enter_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let l = t.locals.(pid) in
    l.ann <- l.ann lor 1;
    Runtime.Shared_array.set ctx t.announce pid l.ann;
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q

  let create env pool =
    let n = Intf.Env.nprocs env in
    let params = env.Intf.Env.params in
    let arenas = Memory.Ptr.max_arenas in
    let k = params.Intf.Params.hp_slots in
    let b = params.Intf.Params.block_capacity in
    let announce =
      Runtime.Shared_array.create ~padded:params.Intf.Params.padded_announcements
        n
    in
    for pid = 0 to n - 1 do
      Runtime.Shared_array.poke announce pid 1
    done;
    let t =
      {
        env;
        pool;
        epoch = Runtime.Svar.make 2;
        announce;
        locals =
          Array.init n (fun pid ->
              {
                bags =
                  Array.init arenas (fun _ ->
                      Array.init 3 (fun _ ->
                          Bag.Blockbag.create env.Intf.Env.block_pools.(pid)));
                index = 0;
                check_next = 0;
                ops_since_check = 0;
                ann = 1;
                sig_attempts = Array.make n 0;
                sig_last = Array.make n 0;
              });
        rp_rows = Array.init n (fun _ -> Runtime.Shared_array.create k);
        rp_count = Runtime.Shared_array.create ~padded:true n;
        scanning = Array.init n (fun _ -> Bag.Hash_set.create ~expected:(n * k));
        scan_threshold =
          ((n * k) + b - 1) / b + params.Intf.Params.scan_blocks_slack;
      }
    in
    (* Install the signal handler on every process context. *)
    Array.iter
      (fun ctx ->
        ctx.Runtime.Ctx.handler <-
          (fun ctx ->
            if is_quiescent t ctx then
              ctx.Runtime.Ctx.stats.Runtime.Ctx.signals_ignored <-
                ctx.Runtime.Ctx.stats.Runtime.Ctx.signals_ignored + 1
            else begin
              enter_qstate t ctx;
              ctx.Runtime.Ctx.stats.Runtime.Ctx.neutralized <-
                ctx.Runtime.Ctx.stats.Runtime.Ctx.neutralized + 1;
              raise Runtime.Ctx.Neutralized
            end))
      env.Intf.Env.group.Runtime.Group.ctxs;
    t

  let current_blocks l =
    Array.fold_left
      (fun acc triple -> acc + Bag.Blockbag.size_in_blocks triple.(l.index))
      0 l.bags

  (* Limited hazard pointers for recovery (single-writer rows). *)

  let rprotect t ctx p =
    let pid = ctx.Runtime.Ctx.pid in
    let c = Runtime.Shared_array.peek t.rp_count pid in
    if c >= Runtime.Shared_array.length t.rp_rows.(pid) then
      invalid_arg "Debra_plus.rprotect: out of RProtect slots (raise hp_slots)";
    Runtime.Shared_array.set ctx t.rp_rows.(pid) c (Memory.Ptr.unmark p);
    Runtime.Shared_array.set ctx t.rp_count pid (c + 1);
    Runtime.Ctx.fence ctx;
    (* After the count write: the announcement is now visible to scans. *)
    Intf.Env.emit t.env ctx (Memory.Smr_event.Rprotect (Memory.Ptr.unmark p))

  let runprotect_all t ctx =
    (* Before the count write: the announcements are still visible. *)
    Intf.Env.emit t.env ctx Memory.Smr_event.Runprotect_all;
    Runtime.Shared_array.set ctx t.rp_count ctx.Runtime.Ctx.pid 0

  let is_rprotected t ctx p =
    let pid = ctx.Runtime.Ctx.pid in
    let c = Runtime.Shared_array.get ctx t.rp_count pid in
    let p = Memory.Ptr.unmark p in
    let rec go i =
      if i >= c then false
      else if Runtime.Shared_array.get ctx t.rp_rows.(pid) i = p then true
      else go (i + 1)
    in
    go 0

  (* Rotate limbo bags; when the freshly-rotated current bag is big enough
     to amortize a full RProtect scan, partition out the protected records
     and bulk-transfer the full blocks behind them.  With [complete] (the
     allocation-failure path) the scan runs regardless of the threshold and
     the partial head blocks are drained record-by-record too, still keeping
     every rprotected record in limbo. *)
  let rotate_and_reclaim ?(complete = false) t ctx l =
    l.index <- (l.index + 1) mod 3;
    let released = ref 0 in
    if complete || current_blocks l >= t.scan_threshold then begin
      let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
      Scan_util.collect_announcements ctx ~into:scanning
        ~nprocs:(Intf.Env.nprocs t.env)
        ~row:(fun other -> t.rp_rows.(other))
        ~count:(fun ctx other -> Runtime.Shared_array.get ctx t.rp_count other);
      Array.iter
        (fun triple ->
          let bag = triple.(l.index) in
          released :=
            !released
            + Scan_util.partition_and_release ctx bag ~protected:scanning
                ~release_block:(fun b -> P.release_block t.pool ctx b);
          if complete then
            released :=
              !released
              + Scan_util.flush_bag ctx bag
                  ~keep:(fun p -> Bag.Hash_set.mem scanning p)
                  ~release:(fun ctx p -> P.release t.pool ctx p)
                  ~release_block:(fun b -> P.release_block t.pool ctx b))
        l.bags;
      if !released > 0 then
        Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep !released)
    end;
    !released

  (* Neutralize a laggard.  Under reliable delivery one signal suffices:
     once it lands, the target quiesces before its next shared access, so
     the sender may immediately count it as passed (paper §5).  Two
     fault-campaign extensions: a send failing with ESRCH means the target
     crashed — it can never access again, so it counts as permanently
     quiescent instead of wedging the epoch; and when the group's signal
     delivery is marked unreliable, a send proves nothing — the sender
     resends with exponential backoff and only the target's announcement
     (quiescent bit or current epoch, observed by the caller on a later
     check) acknowledges neutralization. *)
  let suspect_neutralized t ctx l other =
    current_blocks l >= t.env.Intf.Env.params.Intf.Params.suspect_blocks
    && begin
         let g = t.env.Intf.Env.group in
         if not g.Runtime.Group.signals_unreliable then
           match Runtime.Group.send_signal g ~from:ctx ~target:other with
           | true ->
               Intf.Env.emit t.env ctx (Memory.Smr_event.Signal_sent other);
               true
           | false -> true (* ESRCH: crashed, permanently quiescent *)
         else begin
           let now = Runtime.Ctx.now ctx in
           let a = l.sig_attempts.(other) in
           if a = 0 || now - l.sig_last.(other) >= 64 * (1 lsl min a 10) then
             (match Runtime.Group.send_signal g ~from:ctx ~target:other with
             | true ->
                 Intf.Env.emit t.env ctx (Memory.Smr_event.Signal_sent other);
                 l.sig_attempts.(other) <- a + 1;
                 l.sig_last.(other) <- now;
                 false
             | false -> true)
           else false
         end
       end

  let leave_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let n = Intf.Env.nprocs t.env in
    let l = t.locals.(pid) in
    let params = t.env.Intf.Env.params in
    Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q;
    let read_epoch = Runtime.Svar.get ctx t.epoch in
    if epoch_of l.ann <> read_epoch then begin
      l.ops_since_check <- 0;
      l.check_next <- 0;
      ignore (rotate_and_reclaim t ctx l)
    end;
    l.ops_since_check <- l.ops_since_check + 1;
    if l.ops_since_check >= params.Intf.Params.check_thresh then begin
      l.ops_since_check <- 0;
      let other = l.check_next mod n in
      let a = Runtime.Shared_array.get ctx t.announce other in
      let passed =
        if epoch_of a = read_epoch || quiescent_bit a then begin
          (* Any pending neutralization of [other] is acknowledged. *)
          l.sig_attempts.(other) <- 0;
          true
        end
        else other <> pid && suspect_neutralized t ctx l other
      in
      if passed then begin
        l.check_next <- l.check_next + 1;
        if
          l.check_next >= n
          && l.check_next >= params.Intf.Params.incr_thresh
          && Runtime.Svar.cas ctx t.epoch ~expect:read_epoch (read_epoch + 2)
        then
          Intf.Env.emit t.env ctx
            (Memory.Smr_event.Epoch_advance (read_epoch + 2))
      end
    end;
    l.ann <- read_epoch;
    Runtime.Shared_array.set ctx t.announce pid read_epoch

  let protect _t _ctx _p ~verify:_ = true
  let unprotect _t _ctx _p = ()
  let unprotect_all _t _ctx = ()
  let is_protected _t _ctx _p = true

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Runtime.Ctx.work ctx 2;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Bag.Blockbag.add l.bags.(Memory.Ptr.arena_id p).(l.index) p

  let local_limbo l =
    Array.fold_left
      (fun acc triple ->
        Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) acc triple)
      0 l.bags

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals

  let epoch_lag t =
    let e = Runtime.Svar.peek t.epoch in
    Array.map
      (fun l ->
        if quiescent_bit l.ann then 0 else max 0 ((e - epoch_of l.ann) / 2))
      t.locals

  let flush t ctx =
    (* Records rprotected by an unfinished recovery stay in limbo; under the
       quiescent-shutdown contract all rp rows of {e surviving} processes
       are empty and the bags drain completely.  A process that crashed
       mid-recovery is permanently non-quiescent: its rp row is still
       published, so the records it announced are kept in limbo rather than
       freed — the crash-leak accounting the leak ledger reports as
       remaining limbo, bounded by hp_slots per crashed process. *)
    let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
    Scan_util.collect_announcements ctx ~into:scanning
      ~nprocs:(Intf.Env.nprocs t.env)
      ~row:(fun other -> t.rp_rows.(other))
      ~count:(fun ctx other -> Runtime.Shared_array.get ctx t.rp_count other);
    Array.iter
      (fun l ->
        Array.iter
          (fun triple ->
            Array.iter
              (fun b ->
                ignore
                  (Scan_util.flush_bag ctx b
                     ~keep:(fun p -> Bag.Hash_set.mem scanning p)
                     ~release:(fun ctx p -> P.release t.pool ctx p)
                     ~release_block:(fun blk -> P.release_block t.pool ctx blk)))
              triple)
          l.bags)
      t.locals

  (* Allocation-failure path with neutralization: rotate-and-drain like
     DEBRA, then force an epoch advance by signalling every laggard instead
     of waiting for the amortized one-per-operation check to reach it.  A
     crashed laggard (ESRCH) counts as permanently quiescent.  Under
     reliable signals one send per laggard suffices — the epoch may advance
     immediately, exactly the paper's fault-tolerance argument.  Under
     unreliable delivery the scan re-runs for a bounded number of rounds,
     resending and yielding in between so handlers can land; if the
     laggard's announcement never acknowledges, we degrade to whatever the
     rotations freed. *)
  let emergency_reclaim t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let n = Intf.Env.nprocs t.env in
    let g = t.env.Intf.Env.group in
    let l = t.locals.(pid) in
    let freed = ref 0 in
    let observe () =
      let e = Runtime.Svar.get ctx t.epoch in
      if epoch_of l.ann <> e then begin
        (* Move only the local mirror: publishing a newer epoch while
           mid-operation would be unsound (see Debra.emergency_reclaim). *)
        l.ann <- e lor (l.ann land 1);
        l.ops_since_check <- 0;
        l.check_next <- 0;
        freed := !freed + rotate_and_reclaim ~complete:true t ctx l
      end;
      e
    in
    let e = observe () in
    let self = Runtime.Shared_array.get ctx t.announce pid in
    if epoch_of self = e || quiescent_bit self then begin
      let reliable = not g.Runtime.Group.signals_unreliable in
      let rounds = ref (if reliable then 1 else (2 * n) + 8) in
      let advanced = ref false in
      while (not !advanced) && !rounds > 0 do
        decr rounds;
        let all_ok = ref true in
        for other = 0 to n - 1 do
          if other <> pid then begin
            let a = Runtime.Shared_array.get ctx t.announce other in
            if not (epoch_of a = e || quiescent_bit a) then
              match Runtime.Group.send_signal g ~from:ctx ~target:other with
              | false -> () (* ESRCH: crashed, permanently quiescent *)
              | true ->
                  Intf.Env.emit t.env ctx (Memory.Smr_event.Signal_sent other);
                  if not reliable then all_ok := false
          end
        done;
        if !all_ok then begin
          advanced := true;
          if Runtime.Svar.cas ctx t.epoch ~expect:e (e + 2) then begin
            Intf.Env.emit t.env ctx (Memory.Smr_event.Epoch_advance (e + 2));
            ignore (observe ())
          end
        end
        else Runtime.Ctx.work ctx 64 (* yield so pending handlers can run *)
      done
    end;
    !freed
end
