(** Quiescent-state-based reclamation (McKenney & Slingwine; paper §3).

    QSBR generalizes EBR: instead of assuming every operation boundary is a
    quiescent state, the {e application} declares quiescent points by
    calling [enter_qstate] wherever it holds no pointers — which may be
    once per operation, once per batch, or at arbitrary program points.
    That makes QSBR applicable to code that caches pointers across
    operations (the application just declares its quiescent points less
    often), at the price of manual placement.

    This implementation keeps a per-process counter of passed quiescent
    states and a per-process limbo list; a retired record is freed once
    every process has passed through a quiescent state after the retire.
    Concretely: each process publishes a monotone quiescent counter;
    [retire] snapshots the vector clock of all counters, and a record is
    freed when every process has advanced past its snapshot entry.  To keep
    the per-retire cost O(1), snapshots are taken per {e batch} of retires
    (one limbo bag per batch, paper-style amortization).

    Like EBR and DEBRA it is not fault tolerant: a process that stops
    declaring quiescent states blocks reclamation forever — but unlike
    EBR/DEBRA there is no notion of "between operations": only explicit
    declarations count. *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type batch = {
    bags : Bag.Blockbag.t array;  (* per arena *)
    snapshot : int array;  (* counter vector at batch close; [||] while open *)
  }

  type local = {
    mutable open_batch : batch;
    mutable closed : batch list;  (* oldest last *)
    mutable since_check : int;
  }

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    counters : Runtime.Shared_array.t;  (* per-process quiescent counters *)
    locals : local array;
    batch_records : int;  (* close the open batch after this many retires *)
  }

  let name = "qsbr"
  let supports_crash_recovery = false
  let allows_retired_traversal = true
  let sandboxed = false

  let fresh_batch env pid =
    {
      bags =
        Array.init Memory.Ptr.max_arenas (fun _ ->
            Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
      snapshot = [||];
    }

  let create env pool =
    let n = Intf.Env.nprocs env in
    {
      env;
      pool;
      counters =
        Runtime.Shared_array.create
          ~padded:env.Intf.Env.params.Intf.Params.padded_announcements n;
      locals =
        Array.init n (fun pid ->
            { open_batch = fresh_batch env pid; closed = []; since_check = 0 });
      batch_records = env.Intf.Env.params.Intf.Params.block_capacity;
    }

  let batch_size b =
    Array.fold_left (fun acc bag -> acc + Bag.Blockbag.size bag) 0 b.bags

  (* A closed batch is safe once every process' counter exceeds the
     snapshot: each has passed a quiescent point after the batch closed. *)
  let batch_safe t ctx b =
    let n = Intf.Env.nprocs t.env in
    let rec go i =
      i >= n
      || Runtime.Shared_array.get ctx t.counters i > b.snapshot.(i)
         && go (i + 1)
    in
    Array.length b.snapshot > 0 && go 0

  (* Whole blocks only: the grace period covered the entire batch, so even
     the partial head block leaves in bulk. *)
  let free_batch t ctx b =
    Array.iter
      (fun bag ->
        ignore
          (Bag.Blockbag.drain_blocks bag ~into:(fun blk ->
               P.release_block t.pool ctx blk)))
      b.bags

  (* Declaring a quiescent state is one shared counter increment; reclaim
     checks are amortized here. *)
  let enter_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let l = t.locals.(pid) in
    Runtime.Shared_array.set ctx t.counters pid
      (Runtime.Shared_array.peek t.counters pid + 1);
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q;
    l.since_check <- l.since_check + 1;
    if l.since_check >= t.env.Intf.Env.params.Intf.Params.check_thresh then begin
      l.since_check <- 0;
      match List.rev l.closed with
      | [] -> ()
      | oldest :: _ ->
          if batch_safe t ctx oldest then begin
            let released = batch_size oldest in
            free_batch t ctx oldest;
            if released > 0 then
              Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep released);
            l.closed <-
              List.filter (fun b -> not (b == oldest)) l.closed
          end
    end

  let leave_qstate _t _ctx = ()

  let is_quiescent _t _ctx =
    (* QSBR has no instantaneous quiescent bit: quiescence is a point event
       (passing through [enter_qstate]), not a state. *)
    false

  let protect _t _ctx _p ~verify:_ = true
  let unprotect _t _ctx _p = ()
  let unprotect_all _t _ctx = ()
  let is_protected _t _ctx _p = true

  let close_batch t ctx l =
    let n = Intf.Env.nprocs t.env in
    let snapshot =
      Array.init n (fun i -> Runtime.Shared_array.get ctx t.counters i)
    in
    l.closed <- { l.open_batch with snapshot } :: l.closed;
    l.open_batch <- fresh_batch t.env ctx.Runtime.Ctx.pid

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    Runtime.Ctx.work ctx 2;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Bag.Blockbag.add l.open_batch.bags.(Memory.Ptr.arena_id p) p;
    if batch_size l.open_batch >= t.batch_records then close_batch t ctx l

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    List.fold_left
      (fun acc b -> acc + batch_size b)
      (batch_size l.open_batch) l.closed

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals

  (* QSBR's reclamation clock is the quiescent-counter vector: a process'
     lag is how far its counter trails the most advanced one. *)
  let epoch_lag t =
    let n = Intf.Env.nprocs t.env in
    let counters =
      Array.init n (fun i -> Runtime.Shared_array.peek t.counters i)
    in
    let mx = Array.fold_left max 0 counters in
    Array.map (fun c -> mx - c) counters

  let flush t ctx =
    Array.iter
      (fun l ->
        List.iter (fun b -> free_batch t ctx b) l.closed;
        l.closed <- [];
        free_batch t ctx l.open_batch)
      t.locals

  (* Allocation-failure path: close the open batch so its grace period
     starts now, then free {e every} closed batch of this process whose
     snapshot every counter has passed — not just the amortized oldest-first
     one.  A process that stopped declaring quiescent states (stalled or
     crashed) pins every snapshot taken after its last declaration, so under
     such a fault this frees nothing: QSBR's honest degradation. *)
  let emergency_reclaim t ctx =
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    if batch_size l.open_batch > 0 then close_batch t ctx l;
    let safe, blocked = List.partition (batch_safe t ctx) l.closed in
    let released =
      List.fold_left (fun acc b -> acc + batch_size b) 0 safe
    in
    List.iter (free_batch t ctx) safe;
    l.closed <- blocked;
    if released > 0 then
      Intf.Env.emit t.env ctx (Memory.Smr_event.Sweep released);
    released
end
