(** Sharded KV/session store over the SET-face structures, one record
    manager per shard (see the implementation header for the layout, the
    read/write protocols, TTL expiry, and the multi-RM signal-delivery
    argument). *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) : sig
  type t

  val structure_names : string list
  (** Index structures [create] accepts (SET-face names). *)

  val create :
    ?structure:string ->
    ?params:Reclaim.Intf.Params.t ->
    ?payload_words:int ->
    shards:int ->
    capacity_per_shard:int ->
    group:Runtime.Group.t ->
    unit ->
    t
  (** Build a store of [shards] independent record managers (default
      structure ["skiplist"], default [payload_words] 10 — 70 bytes of
      key+value per entry).  Must be called from a quiescent context
      before workers start.  Raises [Invalid_argument] on an unknown
      structure or non-positive sizes. *)

  val nshards : t -> int

  val shard_of_key : t -> string -> int
  (** Deterministic key→shard routing (mix then range partition). *)

  val put : ?ttl:int -> t -> Runtime.Ctx.t -> key:string -> value:string -> unit
  (** Upsert.  [ttl] is a relative deadline in backend cycles; absent
      means the entry never expires.  Raises [Invalid_argument] when the
      key is empty or key+value exceed the payload capacity. *)

  val get : t -> Runtime.Ctx.t -> string -> string option
  (** Lookup; an entry past its deadline reads as a miss and is lazily
      removed (its payload retired) by the reader that finds it. *)

  val delete : t -> Runtime.Ctx.t -> string -> bool
  (** Remove and retire; true if this call won the removal. *)

  (** Uninstrumented inspection — quiescent callers only. *)

  val size : t -> int
  val shard_sizes : t -> int array

  val heaps : t -> Memory.Heap.t array
  (** Per-shard heaps, for attaching sanitizers or telemetry sinks. *)

  val limbo : t -> int
  val bytes_claimed : t -> int
  val check_invariants : t -> unit

  val flush : t -> Runtime.Ctx.t -> unit
  (** Drain every shard's limbo as far as its scheme allows. *)
end
