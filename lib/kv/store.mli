(** Sharded KV/session store over the SET-face structures, one record
    manager per shard (see the implementation header for the layout, the
    read/write protocols, TTL expiry, and the multi-RM signal-delivery
    argument). *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) : sig
  type t

  val structure_names : string list
  (** Index structures [create] accepts (SET-face names). *)

  val create :
    ?structure:string ->
    ?params:Reclaim.Intf.Params.t ->
    ?payload_words:int ->
    shards:int ->
    capacity_per_shard:int ->
    group:Runtime.Group.t ->
    unit ->
    t
  (** Build a store of [shards] independent record managers (default
      structure ["skiplist"], default [payload_words] 10 — 70 bytes of
      key+value per entry).  Must be called from a quiescent context
      before workers start.  Raises [Invalid_argument] on an unknown
      structure or non-positive sizes. *)

  val nshards : t -> int

  val shard_of_key : t -> string -> int
  (** Deterministic key→shard routing (mix then range partition). *)

  val put : ?ttl:int -> t -> Runtime.Ctx.t -> key:string -> value:string -> unit
  (** Upsert.  [ttl] is a relative deadline in backend cycles; absent
      means the entry never expires.  Raises [Invalid_argument] when the
      key is empty or key+value exceed the payload capacity. *)

  val get : t -> Runtime.Ctx.t -> string -> string option
  (** Lookup; an entry past its deadline reads as a miss and is lazily
      removed (its payload retired) by the reader that finds it. *)

  val delete : t -> Runtime.Ctx.t -> string -> bool
  (** Remove and retire; true if this call won the removal. *)

  (** Uninstrumented inspection — quiescent callers only. *)

  val size : t -> int
  val shard_sizes : t -> int array

  val heaps : t -> Memory.Heap.t array
  (** Per-shard heaps, for attaching sanitizers or telemetry sinks. *)

  val limbo : t -> int

  val shard_limbo : t -> int -> int
  (** One shard's records awaiting reclamation (uninstrumented gauge). *)

  val shard_pool : t -> int -> int
  (** One shard's pool population (records parked for reuse). *)

  val shard_pressure : t -> int -> Reclaim.Intf.Pressure.t
  (** One shard's live reclamation-pressure counters. *)

  val pressure : t -> Reclaim.Intf.Pressure.t
  (** Pressure summed over all shards (a fresh snapshot). *)

  val supports_crash_recovery : bool
  (** The scheme's neutralization predicate, re-exported for drivers. *)

  val emergency_reclaim : t -> Runtime.Ctx.t -> shard:int -> int
  (** Force reclamation work on one shard now (watermark escalation):
      the scheme's allocation-failure path, invoked before any failure.
      Returns records freed.  Performs instrumented accesses. *)

  val in_operation : t -> Runtime.Ctx.t -> bool
  (** True while this process is mid-operation on any shard — the
      [in_op] predicate for chaos' [In_operation] crash trigger. *)

  val shard_pinned_by_crash : t -> int -> bool
  (** A process died mid-operation on this shard and its announcement
      still reads non-quiescent. *)

  val shard_wedged : t -> int -> bool
  (** {!shard_pinned_by_crash} and the scheme can never advance past the
      corpse (epoch-style without neutralization): reclamation on this
      shard is permanently pinned — a circuit-breaker health input. *)

  val hold_shard : t -> Runtime.Ctx.t -> shard:int -> cycles:int -> unit
  (** Park mid-operation on one shard for [cycles] (the E-stall straggler
      scoped to a single shard), absorbing any neutralization on wake. *)

  val bytes_claimed : t -> int
  val check_invariants : t -> unit

  val flush : t -> Runtime.Ctx.t -> unit
  (** Drain every shard's limbo as far as its scheme allows. *)
end
