(** String key/value codec over the tagged-pointer arenas.

    The arenas store integer words, so the KV layer needs two encodings:

    - {b Index keys.}  The SET-face structures key on a single int.
      {!encode_key} maps a string to one: a key of at most 7 bytes packs
      losslessly (length and bytes fit a 63-bit OCaml int with a tag bit),
      so short keys are injective; a longer key hashes to 56 bits
      (FNV-1a-style fold), with the full key stored in the payload record
      and re-verified on every read.  The two ranges are disjoint (the tag
      bit), and every encoded key stays strictly inside the sentinel keys
      of all structures (positive, below {!Ds.Efrb_bst.Make.inf1}).

    - {b Payload records.}  A session's key and value are packed 7 bytes
      per word (a 63-bit int carries 7 full bytes) into the const fields
      of one payload record: [c_expiry] (absolute deadline in backend
      cycles, [max_int] = no TTL), [c_meta] (packed key/value lengths),
      then [ceil ((klen+vlen)/7)] data words.

    Hash collisions between two long keys are possible (~2^-56 per pair);
    the store verifies the decoded key against the requested one on every
    read, so a collision reads as a miss, and a colliding put overwrites —
    documented last-writer-wins, see DESIGN.md §13. *)

let word_bytes = 7

(* Payload-record const field indices. *)
let c_expiry = 0
let c_meta = 1
let c_data = 2

let short_bit = 1 lsl 59
let hash_mask = (1 lsl 56) - 1

let encode_key s =
  let n = String.length s in
  if n <= word_bytes then begin
    let acc = ref 0 in
    String.iter (fun c -> acc := (!acc lsl 8) lor Char.code c) s;
    short_bit lor (n lsl 56) lor !acc
  end
  else begin
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c -> h := (!h lxor Char.code c) * 0x100000001b3 land hash_mask)
      s;
    !h
  end

let meta ~klen ~vlen = (klen lsl 24) lor vlen
let klen_of meta = meta lsr 24
let vlen_of meta = meta land 0xFFFFFF
let words_needed ~klen ~vlen = (klen + vlen + word_bytes - 1) / word_bytes

(* Big-endian byte packing, key then value, 7 bytes per word; the last
   word is packed flush (no padding bits above the leading byte). *)
let data_words ~key ~value =
  let s = key ^ value in
  let n = String.length s in
  Array.init (words_needed ~klen:(String.length key) ~vlen:(String.length value))
    (fun w ->
      let acc = ref 0 in
      for i = w * word_bytes to min n ((w + 1) * word_bytes) - 1 do
        acc := (!acc lsl 8) lor Char.code s.[i]
      done;
      !acc)

let decode ~meta ~read =
  let klen = klen_of meta and vlen = vlen_of meta in
  let n = klen + vlen in
  let b = Bytes.create n in
  let nwords = (n + word_bytes - 1) / word_bytes in
  for w = 0 to nwords - 1 do
    let len = min word_bytes (n - (w * word_bytes)) in
    let word = read w in
    for j = 0 to len - 1 do
      Bytes.set b
        ((w * word_bytes) + j)
        (Char.chr ((word lsr (8 * (len - 1 - j))) land 0xFF))
    done
  done;
  (Bytes.sub_string b 0 klen, Bytes.sub_string b klen vlen)
