(** String key/value codec over the arenas' integer words (see the
    implementation header for the encodings and the collision policy). *)

val word_bytes : int
(** Payload bytes carried per arena word (7: a 63-bit int's full bytes). *)

(** Payload-record const field indices. *)

val c_expiry : int
(** Absolute expiry deadline in backend cycles; [max_int] = no TTL. *)

val c_meta : int
val c_data : int

val encode_key : string -> int
(** Injective for keys of at most 7 bytes; a 56-bit hash above that (the
    store re-verifies the stored key on read).  Always positive and
    strictly inside every structure's sentinel keys. *)

val meta : klen:int -> vlen:int -> int
val klen_of : int -> int
val vlen_of : int -> int

val words_needed : klen:int -> vlen:int -> int
(** Data words required for a key/value pair. *)

val data_words : key:string -> value:string -> int array
(** The packed data words, key bytes then value bytes. *)

val decode : meta:int -> read:(int -> int) -> string * string
(** [(key, value)] back from the packed words; [read i] must return data
    word [i]. *)
