(** Sharded in-memory KV/session store over the SET-face structures — the
    Record Manager's first out-of-harness embedding (ROADMAP: "a real
    service on top"), written entirely against the typestate API
    ({!Reclaim.Intf.RECORD_MANAGER.Typed}): payload records are allocated
    through [fresh] witnesses, read under [guard] witnesses chained off the
    index structure's still-open session, and retired only through the
    [unlinked] witness their unique remover mints.

    {b Layout.}  Each shard is an independent Record Manager: its own
    {!Memory.Heap}, {!Reclaim.Intf.Env} and [RM.t], an index structure
    (any SET-face structure, selected by name — skip list, EFRB BST,
    Harris-Michael list or the lock-free hash set) mapping encoded keys
    ({!Codec.encode_key}) to payload pointers, and one payload arena
    holding the string key/value bytes plus the TTL deadline in const
    fields.  Per-shard heaps are forced by the 4-bit arena id in the
    tagged pointers (at most 16 arenas per heap) and are exactly the
    "key-range sharding across record managers" shape: reclamation
    pressure on one shard never scans another's announcements.

    {b Routing} is a fixed Fibonacci-style mix of the encoded key followed
    by a range partition of the mixed space: shard boundaries are fixed
    fractions of [0, max_int], so the key→shard map is deterministic and
    rebalance-free.

    {b Read protocol.}  [get] runs inside the index structure's session via
    [fold_entry]: while the index node is guarded, the payload pointer
    stored in its value is protected with [T.acquire ~verify:live], where
    [live] is the structure's "this node is not yet logically deleted"
    check.  Epoch schemes grant for free (anything observed in-window
    outlives the window); hazard-style schemes are sound because a payload
    is retired strictly {e after} its index entry's delete linearizes, so
    an announcement validated by [live] happens-before the remover's scan.

    {b Write protocol.}  [put] allocates and initializes the payload in a
    quiescent preamble, [expose]s the fresh witness (the index insert's
    publishing CAS is the physical publication), then upserts: insert, or
    remove-the-old-entry-and-retry.  The remover of an index entry is
    unique (the structures' value-returning [remove]), owns the old
    payload, and retires it in a standalone typed operation whose
    unlink-and-retire window is masked so it happens exactly once under
    neutralization.

    {b TTL expiry} is lazy, memcached-style: a read that finds the
    deadline passed removes the entry and retires the payload (driving
    retire traffic through the unlink witness).  A concurrent re-put can
    race the expiring reader's remove and lose its fresh entry — the
    documented lazy-expiry race (the reader still owns whatever it
    removed, so memory safety is unaffected).

    {b Signals.}  With several RMs on one group, each reclaimer's
    [create] overwrites the contexts' signal handler slot, so [make_shard]
    {e chains} them: after creating a shard's RM it composes the newly
    installed handler with whatever was there before, and one delivered
    signal runs every shard's handler in creation order.  A handler that
    aborts the interrupted operation ({!Runtime.Ctx.Neutralized} — DEBRA+
    on the one shard where this process is mid-operation) does not
    silence its siblings: the abort is caught, the remaining handlers
    run, and it is re-raised at the end of the chain.  Without the chain,
    a collector whose handler lives in an earlier slot (ThreadScan
    waiting for ack writes, DEBRA+ polling an announcement) waits on a
    handler that never runs — a cross-shard wedge.

    Under reliable delivery DEBRA+ counts one successful send as a
    completed neutralization — unsound if the handler consults the wrong
    RM's quiescent bit — so [create] also switches the group to
    acknowledgement-based (unreliable) delivery whenever the scheme can
    neutralize, exactly as the lazy skip list does for its masked lock
    windows (which the retire window here also needs). *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module T = RM.Typed
  module Face = Workload.Set_adapter.Face (RM)

  type shard = {
    rm : RM.t;
    heap : Memory.Heap.t;
    payload : Memory.Arena.t;
    insert : Runtime.Ctx.t -> key:int -> value:int -> bool;
    remove : Runtime.Ctx.t -> int -> int option;
    fold :
      'a.
      Runtime.Ctx.t ->
      int ->
      f:(T.session -> value:int -> live:(unit -> bool) -> 'a) ->
      'a option;
    size : unit -> int;
    check : unit -> unit;
  }

  type t = {
    shards : shard array;
    group : Runtime.Group.t;
    structure : string;
    payload_words : int;
    max_bytes : int;  (* key + value bytes a payload record can carry *)
  }

  let default_params structure =
    let base = Reclaim.Intf.Params.default in
    (* Worst-case protection footprint plus one slot for the chained
       payload guard. *)
    let slots =
      match structure with
      | "skiplist" -> (2 * Ds.Skiplist.max_level) + 10
      | _ -> max base.Reclaim.Intf.Params.hp_slots 10
    in
    { base with Reclaim.Intf.Params.hp_slots = slots }

  let make_shard (module S : Face.SET) ~params ~group ~capacity ~payload_words
      =
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create ~params group heap in
    (* Chain signal handlers across shards (see the header): every RM
       overwrites the per-context handler slot, so compose the handler
       this RM installs with whatever was installed before it.  An abort
       raised by one shard's handler is deferred until the whole chain has
       run, so no shard's collector starves on a sibling's raise. *)
    let prev =
      Array.map (fun c -> c.Runtime.Ctx.handler) group.Runtime.Group.ctxs
    in
    let rm = RM.create env in
    Array.iteri
      (fun i c ->
        let installed = c.Runtime.Ctx.handler in
        if installed != prev.(i) then
          c.Runtime.Ctx.handler <-
            (fun c' ->
              let aborted = ref false in
              (try prev.(i) c' with Runtime.Ctx.Neutralized -> aborted := true);
              (try installed c' with Runtime.Ctx.Neutralized -> aborted := true);
              if !aborted then raise Runtime.Ctx.Neutralized))
      group.Runtime.Group.ctxs;
    (* Headroom above the live set: retired payloads sit in limbo until
       their scheme frees them, and allocation failure falls back to the
       record manager's emergency reclamation. *)
    let payload =
      Memory.Heap.new_arena heap ~name:"kv.payload" ~mut_fields:0
        ~const_fields:(Codec.c_data + payload_words)
        ~capacity:(capacity + max 1024 (capacity / 2))
    in
    let s = S.create rm ~capacity in
    {
      rm;
      heap;
      payload;
      insert = (fun ctx ~key ~value -> S.insert s ctx ~key ~value);
      remove = (fun ctx k -> S.remove s ctx k);
      fold = (fun ctx k ~f -> S.fold_entry s ctx k ~f);
      size = (fun () -> S.size s);
      check = (fun () -> S.check_invariants s);
    }

  let structure_names = Face.names

  let create ?(structure = "skiplist") ?params ?(payload_words = 10)
      ~shards ~capacity_per_shard ~group () =
    if shards < 1 then invalid_arg "Store.create: shards must be >= 1";
    if payload_words < 1 then
      invalid_arg "Store.create: payload_words must be >= 1";
    let face =
      match Face.by_name structure with
      | Some m -> m
      | None ->
          invalid_arg
            (Printf.sprintf "Store.create: unknown structure %S (want %s)"
               structure
               (String.concat "|" Face.names))
    in
    let params =
      match params with Some p -> p | None -> default_params structure
    in
    (* See the header: multiple RMs share this group's single signal
       handler slot, and the retire window below is masked — both require
       acknowledgement-based delivery when the scheme can neutralize. *)
    if RM.supports_crash_recovery then
      group.Runtime.Group.signals_unreliable <- true;
    {
      shards =
        Array.init shards (fun _ ->
            make_shard face ~params ~group ~capacity:capacity_per_shard
              ~payload_words);
      group;
      structure;
      payload_words;
      max_bytes = payload_words * Codec.word_bytes;
    }

  let nshards t = Array.length t.shards

  (* Fibonacci mix, then a range partition of the mixed space. *)
  let mix k = k * 0x2545F4914F6CDD1D land max_int
  let shard_index t ek = mix ek / ((max_int / Array.length t.shards) + 1)
  let shard_of_key t key = shard_index t (Codec.encode_key key)

  (* Retire an index-removed payload: a standalone typed operation.  The
     caller is the unique winner of the index remove, so it owns [p]; the
     declaration-style [unlink_locked] mints the witness.  The window is
     masked so a neutralization cannot land between the witness mint and
     the retire (the witness would be lost); quiescence is entered before
     unmasking, so a deferred signal is then legitimately ignored. *)
  let retire_payload sh ctx p =
    T.run_op sh.rm ctx
      ~recover:(fun () ->
        T.release_all sh.rm ctx;
        None)
      (fun s ->
        T.leave sh.rm ctx s;
        Runtime.Ctx.mask ctx;
        let w = T.unlink_locked sh.rm ctx s p in
        T.retire sh.rm ctx w;
        T.enter sh.rm ctx s;
        Runtime.Ctx.unmask ctx)

  (* Remove [ek]'s index entry and retire its payload.  True if this
     process won the removal. *)
  let drop sh ctx ek =
    match sh.remove ctx ek with
    | Some pw ->
        retire_payload sh ctx pw;
        true
    | None -> false

  let put ?ttl t ctx ~key ~value =
    let klen = String.length key and vlen = String.length value in
    if klen = 0 then invalid_arg "Store.put: empty key";
    if klen + vlen > t.max_bytes then
      invalid_arg
        (Printf.sprintf
           "Store.put: key+value is %d bytes, payload records carry %d"
           (klen + vlen) t.max_bytes);
    let ek = Codec.encode_key key in
    let sh = t.shards.(shard_index t ek) in
    (* Quiescent preamble: allocate and fill the payload record. *)
    let f = T.alloc sh.rm ctx sh.payload in
    let deadline =
      match ttl with
      | None -> max_int
      | Some cycles -> Runtime.Ctx.now ctx + cycles
    in
    T.init_const sh.rm ctx sh.payload f Codec.c_expiry deadline;
    T.init_const sh.rm ctx sh.payload f Codec.c_meta (Codec.meta ~klen ~vlen);
    Array.iteri
      (fun i w -> T.init_const sh.rm ctx sh.payload f (Codec.c_data + i) w)
      (Codec.data_words ~key ~value);
    (* The index insert's publishing CAS is the physical publication of
       this record; the witness is spent here, where the handoff to the
       index layer happens. *)
    let p = T.expose sh.rm ctx f in
    (* Upsert: insert wins on a fresh key; otherwise remove the old entry
       (retiring its payload) and retry.  Not atomic as a replacement — a
       concurrent reader can observe the gap — documented in DESIGN.md. *)
    let rec link () =
      if sh.insert ctx ~key:ek ~value:p then ()
      else begin
        ignore (drop sh ctx ek);
        link ()
      end
    in
    link ()

  type 'a lookup = Retry | Expired | Miss | Hit of 'a

  let lookup_once sh ctx ek ~now_ =
    match
      sh.fold ctx ek ~f:(fun s ~value ~live ->
          (* Chain the payload guard off the index node's liveness. *)
          match T.acquire sh.rm ctx s value ~verify:live with
          | None -> Retry
          | Some g ->
              let deadline =
                T.get_const sh.rm ctx sh.payload g Codec.c_expiry
              in
              if now_ >= deadline then Expired
              else begin
                let meta = T.get_const sh.rm ctx sh.payload g Codec.c_meta in
                let kv =
                  Codec.decode ~meta
                    ~read:(fun i ->
                      T.get_const sh.rm ctx sh.payload g (Codec.c_data + i))
                in
                Hit kv
              end)
    with
    | None -> Miss
    | Some r -> r

  let rec get t ctx key =
    let ek = Codec.encode_key key in
    let sh = t.shards.(shard_index t ek) in
    match lookup_once sh ctx ek ~now_:(Runtime.Ctx.now ctx) with
    | Miss -> None
    | Retry ->
        (* The index entry died between the guard and the payload acquire:
           a remover is concurrently making progress.  Retry the lookup. *)
        get t ctx key
    | Expired ->
        (* Lazy expiry: the reader that finds a dead session removes it and
           retires the payload, then reports a miss. *)
        ignore (drop sh ctx ek);
        None
    | Hit (k, v) ->
        (* Long keys are stored by 56-bit hash: verify and treat a
           collision as a miss (see Codec). *)
        if String.equal k key then Some v else None

  let delete t ctx key =
    let ek = Codec.encode_key key in
    let sh = t.shards.(shard_index t ek) in
    drop sh ctx ek

  (* Uninstrumented inspection (quiescent callers only). *)

  let size t = Array.fold_left (fun acc sh -> acc + sh.size ()) 0 t.shards
  let check_invariants t = Array.iter (fun sh -> sh.check ()) t.shards
  let limbo t = Array.fold_left (fun a sh -> a + RM.limbo_size sh.rm) 0 t.shards
  let shard_limbo t k = RM.limbo_size t.shards.(k).rm
  let shard_pool t k = RM.pool_population t.shards.(k).rm
  let shard_pressure t k = RM.pressure t.shards.(k).rm

  let pressure t =
    let acc = Reclaim.Intf.Pressure.create () in
    Array.iter
      (fun sh ->
        let p = RM.pressure sh.rm in
        acc.Reclaim.Intf.Pressure.alloc_retries <-
          acc.Reclaim.Intf.Pressure.alloc_retries
          + p.Reclaim.Intf.Pressure.alloc_retries;
        acc.Reclaim.Intf.Pressure.emergency_reclaims <-
          acc.Reclaim.Intf.Pressure.emergency_reclaims
          + p.Reclaim.Intf.Pressure.emergency_reclaims;
        acc.Reclaim.Intf.Pressure.emergency_freed <-
          acc.Reclaim.Intf.Pressure.emergency_freed
          + p.Reclaim.Intf.Pressure.emergency_freed)
      t.shards;
    acc

  let supports_crash_recovery = RM.supports_crash_recovery

  (* Watermark escalation entry point: force reclamation work on one
     shard now, mid-traffic, without waiting for an allocation failure. *)
  let emergency_reclaim t ctx ~shard = RM.emergency_reclaim t.shards.(shard).rm ctx

  (* True while [ctx]'s process is mid-operation on any shard — the
     [in_op] predicate chaos' [In_operation] crash trigger wants. *)
  let in_operation t ctx =
    Array.exists (fun sh -> not (RM.is_quiescent sh.rm ctx)) t.shards

  (* A crashed process that died mid-operation on this shard pins its
     epoch-style reclamation: the announcement can never be withdrawn.
     Schemes with neutralization recover (ESRCH reads as permanently
     quiescent); per-record schemes never pinned anything.  [shard_wedged]
     is therefore the health signal a breaker may act on: permanently
     pinned and the scheme cannot recover. *)
  let shard_pinned_by_crash t k =
    let sh = t.shards.(k) in
    let n = Runtime.Group.nprocs t.group in
    let rec scan pid =
      pid < n
      && ((Runtime.Group.is_crashed t.group pid
           && not (RM.is_quiescent sh.rm (Runtime.Group.ctx t.group pid)))
         || scan (pid + 1))
    in
    scan 0

  let shard_wedged t k =
    RM.allows_retired_traversal
    && (not RM.supports_crash_recovery)
    && shard_pinned_by_crash t k

  (* Straggler primitive for the overload campaign: park mid-operation on
     one shard for [cycles], pinning that shard's epoch for the duration
     (the E-stall scenario scoped to a single record manager).  On wake
     the first instrumented access delivers any pending neutralization —
     [run_op]'s recovery shell absorbs the abort. *)
  let hold_shard t ctx ~shard ~cycles =
    let sh = t.shards.(shard) in
    T.run_op sh.rm ctx
      ~recover:(fun () ->
        T.release_all sh.rm ctx;
        Some ())
      (fun s ->
        T.leave sh.rm ctx s;
        Runtime.Ctx.stall ctx cycles;
        Runtime.Ctx.work ctx 1;
        T.enter sh.rm ctx s)

  let bytes_claimed t =
    Array.fold_left (fun a sh -> a + Memory.Heap.bytes_claimed sh.heap) 0
      t.shards

  let shard_sizes t = Array.map (fun sh -> sh.size ()) t.shards
  let heaps t = Array.map (fun sh -> sh.heap) t.shards

  (* Quiescent shutdown helper: drain what every shard's scheme will part
     with (bounded leave/enter rounds then a flush per shard). *)
  let flush t ctx =
    Array.iter
      (fun sh ->
        for _ = 1 to 4 do
          RM.leave_qstate sh.rm ctx;
          RM.enter_qstate sh.rm ctx
        done;
        RM.flush sh.rm ctx)
      t.shards
end
