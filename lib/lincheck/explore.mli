(** Systematic schedule exploration: CHESS-style bounded-preemption DFS over
    the simulator's [`Systematic] policy, with sleep-set pruning.

    One {e schedule} is the sequence of scheduling choices of a run.  The
    explorer's default rule is run-to-block with a fairness quantum; a
    {e preemption} is any deviation from that rule.  Schedules are
    enumerated depth-first with at most [budget] preemptions each, so a
    schedule is fully described by its (scheduler step, core) preemption
    pairs — the replayable counterexample printed on rejection.

    Two prunings keep the search inside the interesting subspace:
    conflict-driven branching (a preemption is only scheduled at accesses
    to the same cache line, DPOR-flavoured; disable with [~wide:true]) and
    classic sleep sets.  See the implementation header for the full
    argument. *)

type stats = {
  runs : int;  (** schedules executed *)
  truncated : bool;  (** hit [max_runs]: coverage is partial *)
  branch_points : int;  (** choice points that offered an alternative *)
}

type 'a verdict =
  | Pass of stats
  | Fail of {
      stats : stats;
      schedule : (int * int) list;
          (** (step, core) preemptions reproducing the failure *)
      reason : string;
      witness : 'a option;  (** the failing run's result, when it returned *)
    }

val schedule_to_string : (int * int) list -> string

val policy_of_schedule : (int * int) list -> Sim.policy
(** Replay policy for a recorded schedule: forced (step, core) picks over
    the explorer's default rule.  With the same program under test this
    reproduces the explored run exactly. *)

val explore :
  ?budget:int ->
  ?max_runs:int ->
  ?wide:bool ->
  ?log:(string -> unit) ->
  ?domains:int ->
  run_one:(Sim.policy -> 'a) ->
  check:('a -> string option) ->
  unit ->
  'a verdict
(** [explore ~run_one ~check ()] enumerates schedules; [run_one] must build
    a {e fresh} program instance per call (group, heap, structure) so every
    recorded schedule replays bit-for-bit; [check] returns a failure reason
    for a run's result, or [None] when it passed.  Defaults: [budget] 2
    preemptions, [max_runs] 2000, narrow (conflict-driven) branching.

    [domains > 1] fans replay jobs out across that many worker domains via
    {!Exec.Pool}; results commit in depth-first pre-order, so run counts,
    branch points, truncation and verdicts (including the choice of failing
    schedule) are bit-identical to the serial explorer. *)
