(** Sequential specifications for the linearizability checker.

    A spec is a deterministic state machine in canonical form: the state is
    a plain [int list] whose representation is unique for a given abstract
    value (sorted for sets, top-first for stacks, front-first for queues),
    so states compare and hash structurally — which is what the checker's
    memoization keys on. *)

type t = {
  name : string;
  init : int list;  (** canonical empty state *)
  apply : int list -> History.op -> History.res -> int list option;
      (** [apply st op res] is the successor state when [res] is a legal
          result of running [op] in [st], and [None] when the recorded
          result contradicts the spec (the pair can then not linearize at
          this point). *)
}

val set : t
(** sorted-list set: [Add]/[Remove]/[Mem] *)

val stack : t
(** top-first stack: [Push]/[Pop] *)

val queue : t
(** front-first queue: [Enq]/[Deq] *)

val by_name : string -> t option
(** ["set"] / ["stack"] / ["queue"] *)
