(** Wing–Gong / WGL linearizability checker with memoized state hashing.

    The search explores linearization orders directly: at every step the
    candidates are the not-yet-linearized operations whose invocation
    precedes every other pending response (no completed operation that
    really finished earlier may be ordered after them), and a candidate is
    taken only when the sequential spec accepts its recorded result in the
    current abstract state.  Visited configurations are memoized on the pair
    (set of linearized operations, canonical spec state) — the WGL
    refinement that turns the factorial search into one over distinct
    configurations, which for the small bounded-exploration histories this
    repo checks is what makes the matrix tractable.

    Pending operations (no recorded response — a process died or was
    stopped mid-operation) may linearize with any spec-legal result, or not
    at all.

    On rejection the checker reports the {e minimal non-linearizable
    prefix}: histories are truncated at successive response events (later
    responses become pending) until the shortest prefix that already fails
    is found — the counterexample a human debugs, and the one the golden
    corpus pins. *)

exception Gave_up of int
(** The search exceeded its node budget without a verdict. *)

type verdict =
  | Linearizable
  | Non_linearizable of History.t
      (** minimal non-linearizable prefix of the input history *)

(* Results a pending operation could legally return, given the op and the
   current canonical state (head of the list is a stack's top / a queue's
   front).  [Spec.apply] filters the illegal ones; listing a superset here
   is fine. *)
let candidate_results st (op : History.op) =
  match op with
  | History.Add _ | History.Remove _ | History.Mem _ ->
      [ History.RBool true; History.RBool false ]
  | History.Push _ | History.Enq _ -> [ History.RUnit ]
  | History.Pop | History.Deq -> (
      History.RVal None
      :: (match st with x :: _ -> [ History.RVal (Some x) ] | [] -> []))

let state_key st = String.concat "," (List.map string_of_int st)

let linearizable ?(max_nodes = 5_000_000) (spec : Spec.t) (h : History.t) =
  let n = Array.length h in
  let completed = ref 0 in
  Array.iter (fun e -> if not (History.is_pending e) then incr completed) h;
  let total_completed = !completed in
  let linearized = Bytes.make n '\000' in
  let is_lin i = Bytes.get linearized i <> '\000' in
  let set_lin i v = Bytes.set linearized i (if v then '\001' else '\000') in
  (* Failed configurations only: a success unwinds the whole search. *)
  let failed = Hashtbl.create 4096 in
  let nodes = ref 0 in
  let rec search done_completed st =
    if done_completed = total_completed then true
    else begin
      incr nodes;
      if !nodes > max_nodes then raise (Gave_up !nodes);
      let key = Bytes.to_string linearized ^ "|" ^ state_key st in
      if Hashtbl.mem failed key then false
      else begin
        (* Earliest response among un-linearized completed ops: anything
           invoked after it must wait its turn. *)
        let min_ret = ref max_int in
        for i = 0 to n - 1 do
          if (not (is_lin i)) && not (History.is_pending h.(i)) then
            if h.(i).History.e_ret < !min_ret then min_ret := h.(i).History.e_ret
        done;
        let ok = ref false in
        let i = ref 0 in
        while (not !ok) && !i < n do
          let e = h.(!i) in
          if (not (is_lin !i)) && e.History.e_inv < !min_ret then begin
            let results =
              match e.History.e_res with
              | Some r -> [ r ]
              | None -> candidate_results st e.History.e_op
            in
            List.iter
              (fun r ->
                if not !ok then
                  match spec.Spec.apply st e.History.e_op r with
                  | None -> ()
                  | Some st' ->
                      set_lin !i true;
                      let done' =
                        if History.is_pending e then done_completed
                        else done_completed + 1
                      in
                      if search done' st' then ok := true
                      else set_lin !i false)
              results
          end;
          incr i
        done;
        if not !ok then Hashtbl.add failed key ();
        !ok
      end
    end
  in
  search 0 spec.Spec.init

(* Truncate [h] at global sequence number [t]: events invoked after [t]
   disappear, responses after [t] become pending. *)
let prefix_at (h : History.t) t =
  Array.of_list
    (List.filter_map
       (fun e ->
         if e.History.e_inv > t then None
         else if e.History.e_ret > t then
           Some
             { e with History.e_res = None; e_ret = max_int; e_ret_time = max_int }
         else Some e)
       (Array.to_list h))

let check ?max_nodes (spec : Spec.t) (h : History.t) =
  if linearizable ?max_nodes spec h then Linearizable
  else begin
    (* Minimal counterexample: the shortest prefix (by successive response
       events) that is already non-linearizable.  The full history is the
       last prefix tried, so the loop always finds one. *)
    let rets =
      Array.to_list h
      |> List.filter_map (fun e ->
             if History.is_pending e then None else Some e.History.e_ret)
      |> List.sort compare
    in
    let rec first_bad = function
      | [] -> Non_linearizable h (* unreachable: full history already failed *)
      | t :: rest ->
          let p = prefix_at h t in
          if not (linearizable ?max_nodes spec p) then Non_linearizable p
          else first_bad rest
    in
    first_bad rets
  end

let verdict_to_string = function
  | Linearizable -> "linearizable"
  | Non_linearizable p ->
      Printf.sprintf
        "NON-LINEARIZABLE: minimal counterexample prefix (%d events):\n%s"
        (Array.length p) (History.to_string p)
