(** Systematic schedule exploration: CHESS-style bounded-preemption DFS over
    the simulator's [`Systematic] policy, with sleep-set pruning.

    One {e schedule} is the sequence of scheduling choices of a run.  The
    explorer's default rule is run-to-block: keep running the core that ran
    last while it stays runnable, else fall to the lowest-numbered runnable
    core.  A {e preemption} is any deviation from that rule; schedules are
    enumerated depth-first with at most [budget] preemptions each, so a
    schedule is fully described by its (scheduler step, core) preemption
    pairs — the replayable counterexample printed on rejection (see
    {!policy_of_schedule}).

    Two prunings keep the search inside the interesting subspace:

    - {b conflict-driven branching} (DPOR-flavoured): a preemption to
      another core is only scheduled when that core's pending instrumented
      access targets the {e same cache line} as the access about to run —
      commuting adjacent accesses to different lines cannot change what any
      process observes, so a preemption there is equivalent to one deferred
      to the next conflict.  A fiber that has not run yet has no recorded
      pending access and is always branchable.  [~wide:true] disables this
      reduction (useful
      when hunting bugs in the signal plumbing itself, where the heuristic's
      commutation argument is weaker).
    - {b sleep sets}: after the subtree that ran process [p] first at a
      choice point is fully explored, [p] is put to sleep along the sibling
      branches and not branched to again until an access conflicting with
      [p]'s pending access (or [p] itself) executes — the classic
      redundant-interleaving filter.

    Every run executes a {e fresh} instance of the program under test
    ([run_one] must build a new group/heap/structure each call), so the
    exploration is stateless and each recorded schedule replays
    bit-for-bit. *)

type frame = {
  f_step : int;  (* scheduler step of this choice point *)
  f_choice : int;  (* core chosen *)
  f_pid : int;  (* chosen candidate's process *)
  f_line : int;  (* ... and its pending access line *)
  f_preempt : bool;  (* the choice deviated from the default rule *)
  f_alts : Sim.candidate list;  (* siblings not yet explored *)
  f_sleep : (int * int) list;  (* sleep set on entry: (pid, line) *)
}

type stats = {
  runs : int;  (** schedules executed *)
  truncated : bool;  (** hit [max_runs]: coverage is partial *)
  branch_points : int;  (** choice points that offered an alternative *)
}

type 'a verdict =
  | Pass of stats
  | Fail of {
      stats : stats;
      schedule : (int * int) list;
          (** (step, core) preemptions reproducing the failure *)
      reason : string;
      witness : 'a option;  (** the failing run's result, when it returned *)
    }

let schedule_to_string = function
  | [] -> "(default schedule, no preemptions)"
  | s ->
      String.concat ","
        (List.map (fun (step, core) -> Printf.sprintf "%d:%d" step core) s)

(* The default rule is run-to-block with a fairness quantum: keep running
   the core that ran last, but after [fair_quantum] consecutive steps
   rotate to the next runnable core.  Pure run-to-block livelocks: a fiber
   spinning on a lock (or a pool slot) held by a suspended fiber never
   blocks, so the holder would never be rescheduled.  The rotation is
   deterministic state of the rule itself, identical during exploration
   and replay, so schedules stay replayable.  Legitimate bursts in the
   harness's tiny workloads are far shorter than the quantum; only
   waiting-on-a-suspended-fiber spins reach it. *)
let fair_quantum = 5_000

type drule = { mutable dr_last : int; mutable dr_run : int }

let new_drule () = { dr_last = -1; dr_run = 0 }

(* Record the core actually chosen this step (forced, branched, or
   default), maintaining the rule's state. *)
let note dr core =
  if core = dr.dr_last then dr.dr_run <- dr.dr_run + 1
  else begin
    dr.dr_last <- core;
    dr.dr_run <- 1
  end

let default_index dr (cands : Sim.candidate array) =
  let n = Array.length cands in
  let rec find core i =
    if i >= n then -1 else if cands.(i).Sim.cand_core = core then i
    else find core (i + 1)
  in
  let li = find dr.dr_last 0 in
  if li < 0 then 0
  else if dr.dr_run >= fair_quantum && n > 1 then (li + 1) mod n
  else li

let index_of_core cands core =
  let n = Array.length cands in
  let rec go i =
    if i >= n then
      invalid_arg
        (Printf.sprintf
           "Lincheck.Explore: forced core %d not runnable on replay \
            (non-deterministic program under test?)"
           core)
    else if cands.(i).Sim.cand_core = core then i
    else go (i + 1)
  in
  go 0

(* Waking rule: an executed access wakes every sleeper it conflicts with,
   and a sleeping process that runs wakes itself (its recorded pending
   access is stale). *)
let wake sleep (c : Sim.candidate) =
  List.filter
    (fun (pid, line) -> pid <> c.Sim.cand_pid && line <> c.Sim.cand_line)
    sleep

(** Replay policy for a recorded schedule: forced (step, core) picks over
    the explorer's default rule.  With the same program under test this
    reproduces the explored run exactly. *)
let policy_of_schedule schedule : Sim.policy =
  let dr = new_drule () in
  `Systematic
    (fun ~step cands ->
      let i =
        match List.assoc_opt step schedule with
        | Some core -> index_of_core cands core
        | None -> default_index dr cands
      in
      note dr cands.(i).Sim.cand_core;
      i)

let count_preempts forced =
  List.fold_left (fun acc f -> if f.f_preempt then acc + 1 else acc) 0 forced

let schedule_of stack =
  List.filter_map
    (fun f -> if f.f_preempt then Some (f.f_step, f.f_choice) else None)
    stack

(* One completed replay job: the run's verdict, its full choice stack
   (forced prefix plus fresh extension, shallowest first), and how many
   fresh choice points offered at least one alternative. *)
type 'a run_res = {
  r_outcome : ('a, string * 'a option) result;
  r_stack : frame list;
  r_branches : int;
}

(* Execute one schedule: replay the [forced] choices (shallowest first),
   then extend with default choices, recording alternatives at every fresh
   choice point.  Pure per call — safe to run concurrently as long as
   [run_one]/[check] build fresh program instances. *)
let run_job ~budget ~wide ~(run_one : Sim.policy -> 'a)
    ~(check : 'a -> string option) (forced : frame list) : 'a run_res =
  let forced_arr = Array.of_list forced in
  let nforced = Array.length forced_arr in
  let preempts0 = count_preempts forced in
  let branches = ref 0 in
  let fresh = ref [] in
  (* Sleep set at the deepest replayed node; choices before it already
     folded their wakes into that node's [f_sleep] when it was created. *)
  let live_sleep =
    ref (if nforced = 0 then [] else forced_arr.(nforced - 1).f_sleep)
  in
  let d = ref 0 in
  let dr = new_drule () in
  let chooser ~step cands =
    let di = !d in
    incr d;
    if di < nforced then begin
      let f = forced_arr.(di) in
      let i = index_of_core cands f.f_choice in
      note dr f.f_choice;
      if di = nforced - 1 then live_sleep := wake !live_sleep cands.(i);
      i
    end
    else begin
      let xi = default_index dr cands in
      let x = cands.(xi) in
      let alts =
        if preempts0 >= budget then []
        else
          Array.to_list cands
          |> List.filter (fun c ->
                 c.Sim.cand_core <> x.Sim.cand_core
                 && (wide
                    (* a fiber that has not run yet has no recorded
                       pending access (line -1): always branchable *)
                    || c.Sim.cand_line < 0
                    || c.Sim.cand_line = x.Sim.cand_line)
                 && not
                      (List.mem (c.Sim.cand_pid, c.Sim.cand_line)
                         !live_sleep))
      in
      if alts <> [] then incr branches;
      fresh :=
        {
          f_step = step;
          f_choice = x.Sim.cand_core;
          f_pid = x.Sim.cand_pid;
          f_line = x.Sim.cand_line;
          f_preempt = false;
          f_alts = alts;
          f_sleep = !live_sleep;
        }
        :: !fresh;
      note dr x.Sim.cand_core;
      live_sleep := wake !live_sleep x;
      xi
    end
  in
  let outcome =
    match run_one (`Systematic chooser) with
    | v -> ( match check v with None -> Ok v | Some r -> Error (r, Some v))
    | exception e -> Error (Printexc.to_string e, None)
  in
  { r_outcome = outcome; r_stack = forced @ List.rev !fresh;
    r_branches = !branches }

(* Sibling jobs of a completed run, in exactly the order serial depth-first
   backtracking would reach them: deepest fresh frame first, alternatives
   in recorded order.  Each child replays the shallower prefix (its own
   alternatives cleared — the parent expands all of them eagerly, so a
   child re-expanding would duplicate subtrees) plus the branched frame,
   whose sleep set accumulates the previously-explored siblings:
   the j-th alternative sleeps the chosen branch and alternatives 1..j-1,
   exactly as the serial explorer's backtrack/attempt pair builds it. *)
let siblings (stack : frame list) : frame list list =
  let rec per_frame rev_stack =
    match rev_stack with
    | [] -> []
    | f :: shallower ->
        let prefix = List.rev_map (fun g -> { g with f_alts = [] }) shallower in
        let rec alts sleep = function
          | [] -> []
          | (a : Sim.candidate) :: more ->
              let f' =
                {
                  f_step = f.f_step;
                  f_choice = a.Sim.cand_core;
                  f_pid = a.Sim.cand_pid;
                  f_line = a.Sim.cand_line;
                  f_preempt = true;
                  f_alts = [];
                  f_sleep = sleep;
                }
              in
              (prefix @ [ f' ])
              :: alts ((a.Sim.cand_pid, a.Sim.cand_line) :: sleep) more
        in
        alts ((f.f_pid, f.f_line) :: f.f_sleep) f.f_alts @ per_frame shallower
  in
  per_frame (List.rev stack)

let truncation_msg runs =
  Printf.sprintf
    "exploration truncated at %d runs (unexplored branches remain; raise \
     max_runs for full coverage)"
    runs

(* Serial depth-first exploration, the reference semantics. *)
let explore_serial ~budget ~max_runs ~wide ~log ~run_one ~check : 'a verdict =
  let runs = ref 0 in
  let branch_points = ref 0 in
  let stats truncated =
    { runs = !runs; truncated; branch_points = !branch_points }
  in
  let rec attempt forced =
    if !runs >= max_runs then begin
      log (truncation_msg !runs);
      Pass (stats true)
    end
    else begin
      incr runs;
      let r = run_job ~budget ~wide ~run_one ~check forced in
      branch_points := !branch_points + r.r_branches;
      match r.r_outcome with
      | Error (reason, witness) ->
          Fail { stats = stats false; schedule = schedule_of r.r_stack;
                 reason; witness }
      | Ok _ -> backtrack (List.rev r.r_stack)
    end
  (* Deepest-first: find the deepest choice point with an unexplored
     sibling, switch to it (a preemption), and put the branch just explored
     to sleep along the new one. *)
  and backtrack rev_stack =
    match rev_stack with
    | [] -> Pass (stats false)
    | f :: rest -> (
        match f.f_alts with
        | [] -> backtrack rest
        | a :: more ->
            let f' =
              {
                f_step = f.f_step;
                f_choice = a.Sim.cand_core;
                f_pid = a.Sim.cand_pid;
                f_line = a.Sim.cand_line;
                f_preempt = true;
                f_alts = more;
                f_sleep = (f.f_pid, f.f_line) :: f.f_sleep;
              }
            in
            attempt (List.rev (f' :: rest)))
  in
  attempt []

(* Parallel exploration: each schedule is an independent deterministic
   replay job fanned out across domains by {!Exec.Pool}, whose commit
   discipline (depth-first pre-order, children spliced behind the parent)
   makes the statistics, the truncation point and the choice of failing
   schedule bit-identical to {!explore_serial} — including on truncated
   searches, where only the first [max_runs] runs in serial order count.

   The correctness argument for identical *coverage* is that the
   exploration tree itself is schedule-order independent: a job is fully
   determined by its forced prefix (choices plus sleep sets), every cache
   line id is globally unique across runs (Runtime.Addr allocates from one
   shared counter), so a child derived eagerly from a completed run is
   exactly the job serial backtracking would eventually construct. *)
let explore_parallel ~budget ~max_runs ~wide ~log ~domains ~run_one ~check :
    'a verdict =
  let runs = ref 0 in
  let branch_points = ref 0 in
  let verdict = ref None in
  let commit _job r =
    if !runs >= max_runs then begin
      log (truncation_msg !runs);
      verdict :=
        Some
          (Pass { runs = !runs; truncated = true;
                  branch_points = !branch_points });
      None
    end
    else begin
      incr runs;
      branch_points := !branch_points + r.r_branches;
      match r.r_outcome with
      | Error (reason, witness) ->
          verdict :=
            Some
              (Fail
                 {
                   stats =
                     { runs = !runs; truncated = false;
                       branch_points = !branch_points };
                   schedule = schedule_of r.r_stack;
                   reason;
                   witness;
                 });
          None
      | Ok _ -> Some (siblings r.r_stack)
    end
  in
  Exec.Pool.run ~domains
    ~exec:(fun forced -> run_job ~budget ~wide ~run_one ~check forced)
    ~commit ~roots:[ [] ];
  match !verdict with
  | Some v -> v
  | None ->
      Pass { runs = !runs; truncated = false; branch_points = !branch_points }

let explore ?(budget = 2) ?(max_runs = 2000) ?(wide = false)
    ?(log = fun (_ : string) -> ()) ?(domains = 1)
    ~(run_one : Sim.policy -> 'a) ~(check : 'a -> string option) () :
    'a verdict =
  if domains <= 1 then explore_serial ~budget ~max_runs ~wide ~log ~run_one ~check
  else
    explore_parallel ~budget ~max_runs ~wide ~log ~domains ~run_one ~check
