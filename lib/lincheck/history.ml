(** Concurrent operation histories: the recorder half of the linearizability
    checker.

    A history is the sequence of invocation/response events one execution
    produced.  The recorder taps the operation seams (the trial runner's op
    loop, or a purpose-built exploration body) and logs each event with two
    clocks: a {e global sequence number} — an atomic counter bumped at the
    moment the event is recorded, which is the real-time precedence order
    the checker uses — and the backend's virtual timestamp, kept for human
    display only (under [`Random_walk]/[`Systematic] scheduling per-core
    virtual clocks are not globally ordered, so they cannot serve as the
    precedence order).

    The sequence numbers are sound on both backends: an operation's
    invocation is recorded before its first shared access and its response
    after its last, so [ret_seq a < inv_seq b] implies operation [a] really
    completed before [b] began. *)

type op =
  | Add of int  (** set insert; result {!RBool} *)
  | Remove of int  (** set delete; result {!RBool} *)
  | Mem of int  (** set contains; result {!RBool} *)
  | Push of int  (** stack push; result {!RUnit} *)
  | Pop  (** stack pop; result {!RVal} *)
  | Enq of int  (** queue enqueue; result {!RUnit} *)
  | Deq  (** queue dequeue; result {!RVal} *)

type res = RBool of bool | RVal of int option | RUnit

type entry = {
  e_pid : int;
  e_op : op;
  e_res : res option;  (** [None] = pending: no response was recorded *)
  e_inv : int;  (** global sequence number of the invocation *)
  e_ret : int;  (** global sequence number of the response; [max_int] pending *)
  e_inv_time : int;  (** virtual timestamp at invocation (display only) *)
  e_ret_time : int;  (** virtual timestamp at response (display only) *)
}

type t = entry array
(** sorted by [e_inv] *)

(* ------------------------------------------------------------------ *)
(* Recording *)

type token = { t_pid : int; t_op : op; t_inv : int; t_inv_time : int }

type recorder = {
  seq : int Atomic.t;
  completed : entry list ref array;  (* per-pid, newest first *)
  open_op : token option array;  (* at most one op in flight per pid *)
}

let recorder ~nprocs =
  {
    seq = Atomic.make 0;
    completed = Array.init nprocs (fun _ -> ref []);
    open_op = Array.make nprocs None;
  }

let invoke r ~pid ~time op =
  let tok = { t_pid = pid; t_op = op; t_inv = Atomic.fetch_and_add r.seq 1;
              t_inv_time = time }
  in
  r.open_op.(pid) <- Some tok;
  tok

let return_ r tok ~time res =
  let e =
    {
      e_pid = tok.t_pid;
      e_op = tok.t_op;
      e_res = Some res;
      e_inv = tok.t_inv;
      e_ret = Atomic.fetch_and_add r.seq 1;
      e_inv_time = tok.t_inv_time;
      e_ret_time = time;
    }
  in
  r.open_op.(tok.t_pid) <- None;
  let cell = r.completed.(tok.t_pid) in
  cell := e :: !cell

(** The history recorded so far: completed operations plus one pending entry
    per process that died (or was stopped) mid-operation. *)
let snapshot r : t =
  let pending =
    Array.to_list r.open_op
    |> List.filter_map
         (Option.map (fun tok ->
              {
                e_pid = tok.t_pid;
                e_op = tok.t_op;
                e_res = None;
                e_inv = tok.t_inv;
                e_ret = max_int;
                e_inv_time = tok.t_inv_time;
                e_ret_time = max_int;
              }))
  in
  let all =
    Array.fold_left (fun acc cell -> List.rev_append !cell acc) pending
      r.completed
  in
  let a = Array.of_list all in
  Array.sort (fun a b -> compare a.e_inv b.e_inv) a;
  a

let ops (h : t) = Array.length h
let is_pending e = e.e_res = None

(* ------------------------------------------------------------------ *)
(* Display *)

let op_to_string = function
  | Add k -> Printf.sprintf "add(%d)" k
  | Remove k -> Printf.sprintf "remove(%d)" k
  | Mem k -> Printf.sprintf "mem(%d)" k
  | Push v -> Printf.sprintf "push(%d)" v
  | Pop -> "pop()"
  | Enq v -> Printf.sprintf "enq(%d)" v
  | Deq -> "deq()"

let res_to_string = function
  | RBool b -> string_of_bool b
  | RVal None -> "empty"
  | RVal (Some v) -> string_of_int v
  | RUnit -> "()"

let entry_to_string e =
  match e.e_res with
  | Some r ->
      Printf.sprintf "[%3d,%3d] p%d %s -> %s" e.e_inv e.e_ret e.e_pid
        (op_to_string e.e_op) (res_to_string r)
  | None ->
      Printf.sprintf "[%3d,  ∞] p%d %s -> (pending)" e.e_inv e.e_pid
        (op_to_string e.e_op)

let to_string (h : t) =
  String.concat "\n" (Array.to_list (Array.map entry_to_string h))

(* ------------------------------------------------------------------ *)
(* JSON round-trip (golden history corpus) *)

module J = Telemetry.Json

let op_to_json = function
  | Add k -> J.Obj [ ("kind", J.String "add"); ("arg", J.Int k) ]
  | Remove k -> J.Obj [ ("kind", J.String "remove"); ("arg", J.Int k) ]
  | Mem k -> J.Obj [ ("kind", J.String "mem"); ("arg", J.Int k) ]
  | Push v -> J.Obj [ ("kind", J.String "push"); ("arg", J.Int v) ]
  | Pop -> J.Obj [ ("kind", J.String "pop") ]
  | Enq v -> J.Obj [ ("kind", J.String "enq"); ("arg", J.Int v) ]
  | Deq -> J.Obj [ ("kind", J.String "deq") ]

let res_to_json = function
  | RBool b -> J.Obj [ ("kind", J.String "bool"); ("v", J.Bool b) ]
  | RVal None -> J.Obj [ ("kind", J.String "val"); ("v", J.Null) ]
  | RVal (Some v) -> J.Obj [ ("kind", J.String "val"); ("v", J.Int v) ]
  | RUnit -> J.Obj [ ("kind", J.String "unit") ]

let entry_to_json e =
  J.Obj
    ([
       ("pid", J.Int e.e_pid);
       ("op", op_to_json e.e_op);
       ("inv", J.Int e.e_inv);
       ("inv_time", J.Int e.e_inv_time);
     ]
    @
    match e.e_res with
    | None -> []
    | Some r ->
        [ ("res", res_to_json r); ("ret", J.Int e.e_ret);
          ("ret_time", J.Int e.e_ret_time) ])

let to_json (h : t) =
  J.Obj [ ("events", J.List (Array.to_list (Array.map entry_to_json h))) ]

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let get key j =
  match J.member key j with Some v -> v | None -> fail "missing key %S" key

let get_int key j =
  match get key j with J.Int i -> i | _ -> fail "key %S: expected int" key

let op_of_json j =
  let arg () = get_int "arg" j in
  match get "kind" j with
  | J.String "add" -> Add (arg ())
  | J.String "remove" -> Remove (arg ())
  | J.String "mem" -> Mem (arg ())
  | J.String "push" -> Push (arg ())
  | J.String "pop" -> Pop
  | J.String "enq" -> Enq (arg ())
  | J.String "deq" -> Deq
  | _ -> fail "unknown op kind"

let res_of_json j =
  match get "kind" j with
  | J.String "bool" -> (
      match get "v" j with
      | J.Bool b -> RBool b
      | _ -> fail "bool result: expected bool v")
  | J.String "val" -> (
      match get "v" j with
      | J.Null -> RVal None
      | J.Int v -> RVal (Some v)
      | _ -> fail "val result: expected int or null v")
  | J.String "unit" -> RUnit
  | _ -> fail "unknown res kind"

let entry_of_json j =
  let res = Option.map res_of_json (J.member "res" j) in
  {
    e_pid = get_int "pid" j;
    e_op = op_of_json (get "op" j);
    e_res = res;
    e_inv = get_int "inv" j;
    e_ret = (if res = None then max_int else get_int "ret" j);
    e_inv_time = get_int "inv_time" j;
    e_ret_time = (if res = None then max_int else get_int "ret_time" j);
  }

let of_json j : t =
  match get "events" j with
  | J.List evs ->
      let a = Array.of_list (List.map entry_of_json evs) in
      Array.sort (fun a b -> compare a.e_inv b.e_inv) a;
      a
  | _ -> fail "events: expected list"

let save h path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string (to_json h)))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (J.of_string (In_channel.input_all ic)))
