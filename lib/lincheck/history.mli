(** Concurrent operation histories: the recorder half of the linearizability
    checker.

    A history is the sequence of invocation/response events one execution
    produced.  The recorder taps the operation seams (the trial runner's op
    loop, or a purpose-built exploration body) and logs each event with two
    clocks: a {e global sequence number} — an atomic counter bumped at the
    moment the event is recorded, which is the real-time precedence order
    the checker uses — and the backend's virtual timestamp, kept for human
    display only (under [`Random_walk]/[`Systematic] scheduling per-core
    virtual clocks are not globally ordered, so they cannot serve as the
    precedence order).

    The sequence numbers are sound on both backends: an operation's
    invocation is recorded before its first shared access and its response
    after its last, so [ret_seq a < inv_seq b] implies operation [a] really
    completed before [b] began. *)

type op =
  | Add of int  (** set insert; result {!RBool} *)
  | Remove of int  (** set delete; result {!RBool} *)
  | Mem of int  (** set contains; result {!RBool} *)
  | Push of int  (** stack push; result {!RUnit} *)
  | Pop  (** stack pop; result {!RVal} *)
  | Enq of int  (** queue enqueue; result {!RUnit} *)
  | Deq  (** queue dequeue; result {!RVal} *)

type res = RBool of bool | RVal of int option | RUnit

type entry = {
  e_pid : int;
  e_op : op;
  e_res : res option;  (** [None] = pending: no response was recorded *)
  e_inv : int;  (** global sequence number of the invocation *)
  e_ret : int;  (** global sequence number of the response; [max_int] pending *)
  e_inv_time : int;  (** virtual timestamp at invocation (display only) *)
  e_ret_time : int;  (** virtual timestamp at response (display only) *)
}

type t = entry array
(** sorted by [e_inv] *)

(** {1 Recording} *)

type token
(** an in-flight operation, returned by {!invoke}, settled by {!return_} *)

type recorder

val recorder : nprocs:int -> recorder

val invoke : recorder -> pid:int -> time:int -> op -> token
(** record an invocation; at most one operation may be open per process *)

val return_ : recorder -> token -> time:int -> res -> unit

val snapshot : recorder -> t
(** The history recorded so far: completed operations plus one pending
    entry per process that died (or was stopped) mid-operation. *)

val ops : t -> int
val is_pending : entry -> bool

(** {1 Display} *)

val op_to_string : op -> string
val res_to_string : res -> string
val entry_to_string : entry -> string
val to_string : t -> string

(** {1 JSON round-trip (golden history corpus)} *)

exception Malformed of string
(** raised by {!of_json}/{!load} on a history that does not parse *)

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> t
val save : t -> string -> unit
val load : string -> t
