(** Wing–Gong / WGL linearizability checker with memoized state hashing.

    The search explores linearization orders directly: at every step the
    candidates are the not-yet-linearized operations whose invocation
    precedes every other pending response, and a candidate is taken only
    when the sequential spec accepts its recorded result in the current
    abstract state.  Visited configurations are memoized on the pair (set
    of linearized operations, canonical spec state) — the WGL refinement
    that turns the factorial search into one over distinct configurations.

    Pending operations (no recorded response — a process died or was
    stopped mid-operation) may linearize with any spec-legal result, or
    not at all. *)

exception Gave_up of int
(** The search exceeded its node budget without a verdict. *)

type verdict =
  | Linearizable
  | Non_linearizable of History.t
      (** minimal non-linearizable prefix of the input history *)

val linearizable : ?max_nodes:int -> Spec.t -> History.t -> bool
(** One search, no counterexample minimization.
    @raise Gave_up when more than [max_nodes] (default 5,000,000) search
    nodes are visited. *)

val check : ?max_nodes:int -> Spec.t -> History.t -> verdict
(** {!linearizable}, plus minimal-counterexample search on rejection:
    histories are truncated at successive response events (later responses
    become pending) until the shortest prefix that already fails is found —
    the counterexample a human debugs, and the one the golden corpus
    pins. *)

val verdict_to_string : verdict -> string
