(** Sequential specifications for the linearizability checker.

    A spec is a deterministic state machine in canonical form: the state is
    a plain [int list] whose representation is unique for a given abstract
    value (sorted for sets, top-first for stacks, front-first for queues),
    so states compare and hash structurally — which is what the checker's
    memoization keys on.  [apply st op res] returns the successor state when
    [res] is a legal result of running [op] in [st], and [None] when the
    recorded result contradicts the spec (the pair can then not linearize at
    this point). *)

type t = {
  name : string;
  init : int list;
  apply : int list -> History.op -> History.res -> int list option;
}

let set =
  let rec mem k = function
    | [] -> false
    | x :: tl -> if x = k then true else if x > k then false else mem k tl
  in
  let rec insert k = function
    | [] -> [ k ]
    | x :: tl as l -> if k < x then k :: l else x :: insert k tl
  in
  let rec remove k = function
    | [] -> []
    | x :: tl -> if x = k then tl else x :: remove k tl
  in
  {
    name = "set";
    init = [];
    apply =
      (fun st op res ->
        match (op, res) with
        | History.Add k, History.RBool b ->
            if b = not (mem k st) then Some (if b then insert k st else st)
            else None
        | History.Remove k, History.RBool b ->
            if b = mem k st then Some (if b then remove k st else st) else None
        | History.Mem k, History.RBool b ->
            if b = mem k st then Some st else None
        | _ -> None);
  }

let stack =
  {
    name = "stack";
    init = [];
    apply =
      (fun st op res ->
        match (op, res) with
        | History.Push v, History.RUnit -> Some (v :: st)
        | History.Pop, History.RVal None -> if st = [] then Some st else None
        | History.Pop, History.RVal (Some v) -> (
            match st with
            | top :: rest when top = v -> Some rest
            | _ -> None)
        | _ -> None);
  }

let queue =
  {
    name = "queue";
    init = [];
    apply =
      (fun st op res ->
        match (op, res) with
        | History.Enq v, History.RUnit -> Some (st @ [ v ])
        | History.Deq, History.RVal None -> if st = [] then Some st else None
        | History.Deq, History.RVal (Some v) -> (
            match st with
            | front :: rest when front = v -> Some rest
            | _ -> None)
        | _ -> None);
  }

let by_name = function
  | "set" -> Some set
  | "stack" -> Some stack
  | "queue" -> Some queue
  | _ -> None
