(** Deterministic fan-out of a dynamically-growing job tree across domains.

    Jobs execute concurrently on worker domains, but results {e commit}
    strictly in depth-first pre-order: [commit job result] is called under
    the pool lock, serially, with the children it returns spliced into the
    commit queue directly behind their parent.  Every observable decision —
    accumulated statistics, early termination, which node counts as the
    first failure — is therefore identical to a serial depth-first
    traversal, regardless of domain count or host scheduling.

    [exec] must not share unsynchronized mutable state across concurrent
    calls; [commit] may freely update closure state.  [commit] returning
    [None] stops the pool: pending and in-flight work is discarded.  An
    exception raised by [exec] is re-raised from [run] when the failed node
    reaches its commit position. *)

val run :
  domains:int ->
  exec:('job -> 'res) ->
  commit:('job -> 'res -> 'job list option) ->
  roots:'job list ->
  unit
