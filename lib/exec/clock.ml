(** The single source of truth for time scales.

    Every execution backend reports elapsed time as an integer number of
    {e cycles}, but what a cycle means differs per backend:

    - the deterministic simulator prices accesses on a modelled ~3 GHz
      part (the paper's i7-4770 testbed), so one virtual cycle is 1/3 ns
      and [sim.cycles_per_second = 3.0e9];
    - the real-parallelism domains backend scales wall-clock time so that
      one cycle is exactly 1 ns ([wall.cycles_per_second = 1.0e9]).

    Before this module existed the two constants lived in
    [Workload.Trial] and [Runtime.Domain_runner] respectively, with
    drifting comments; every conversion (Mops/s, simulated-ns latency,
    trace microseconds, sampling periods) now goes through a [Clock.t] so
    a backend's numbers are always internally consistent. *)

type t = {
  name : string;
  cycles_per_second : float;  (** cycle frequency of this time base *)
}

let sim = { name = "sim"; cycles_per_second = 3.0e9 }
let wall = { name = "wall"; cycles_per_second = 1.0e9 }

let cycles_per_ns t = t.cycles_per_second /. 1.0e9
let cycles_per_us t = t.cycles_per_second /. 1.0e6
let seconds_of_cycles t c = float_of_int c /. t.cycles_per_second
let ns_of_cycles t c = float_of_int c /. cycles_per_ns t
let cycles_of_seconds t s = int_of_float (s *. t.cycles_per_second)

(** Deadline/backoff arithmetic for the resilience layer: durations named
    in wall units convert to whole cycles of this time base (at least 1
    cycle for any positive duration, so a tiny budget still means
    something on a coarse clock). *)
let cycles_of_ns t ns =
  if ns <= 0 then 0 else max 1 (int_of_float (float_of_int ns *. cycles_per_ns t))

let cycles_of_us t us = cycles_of_ns t (us * 1_000)
let cycles_of_ms t ms = cycles_of_ns t (ms * 1_000_000)

(** [mops t ~ops ~cycles] is throughput in million operations per second
    of this clock's time base ([ops = 0] or [cycles = 0] reports 0). *)
let mops t ~ops ~cycles =
  if cycles = 0 then 0.
  else float_of_int ops /. seconds_of_cycles t cycles /. 1.0e6
