(** {!Intf.RUNNER} on real OCaml 5 domains — the first-class promotion of
    {!Runtime.Domain_runner}.

    One domain per group member plus (when sampling) one sampler domain;
    [Ctx.now] is wall-clock time scaled to {!Clock.wall} cycles (1 cycle =
    1 ns).  Crash bookkeeping is live: a body dying with
    {!Runtime.Ctx.Crashed} is marked in the group from its own domain, so
    fault-tolerant reclaimers observe ESRCH mid-run exactly as they do
    under the simulator.

    What degrades relative to {!Sim_exec} is spelled out in [limitations]
    (and DESIGN.md §10): no cache model, approximate signal delivery and
    sampling cadence, no livelock diagnosis, and none of the
    deterministic-replay machinery that the sanitizer and the sim-only
    chaos triggers rely on. *)

let limitations =
  [
    "signal delivery is approximate: one in-flight access may complete \
     after the flag is set";
    "no cache model: cache_stats and context_switches are not reported";
    "sampling cadence and tick timestamps are approximate (wall-clock \
     sleeps, not exact boundaries)";
    "no livelock diagnosis: a wedged run hangs instead of raising Stuck";
    "not deterministic: sanitizer, event-bus telemetry sinks and chaos \
     triggers that need a global order (handler/neutralizer crashes, \
     signal drop/delay windows) are unavailable";
  ]

let make ?(clock = Clock.wall) () : (module Intf.RUNNER) =
  (module struct
    let name = "domains"
    let clock = clock
    let deterministic = false
    let limitations = limitations

    let run ?tick group bodies =
      let elapsed, _outcomes =
        Runtime.Domain_runner.run
          ~cycles_per_second:clock.Clock.cycles_per_second ?tick group bodies
      in
      {
        Intf.elapsed_cycles = Clock.cycles_of_seconds clock elapsed;
        wall_seconds = elapsed;
        cache_stats = None;
        context_switches = 0;
      }
  end)
