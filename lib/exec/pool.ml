(** Deterministic fan-out of a dynamically-growing job tree across domains.

    The pool executes jobs on [domains] worker domains but *commits* their
    results strictly in depth-first pre-order: the commit queue starts as
    [roots], and when the node at its head has completed, [commit] is
    called and the children it returns are spliced in directly behind the
    parent.  Workers may finish jobs in any wall-clock order — a result
    computed "too early" simply waits in the queue until everything before
    it has committed — so every observable decision ([commit]'s view of
    accumulated state, early termination, which node is "the first"
    failure) is identical to a serial depth-first traversal, run after run,
    regardless of domain count or host scheduling.

    This is what {!Lincheck.Explore} fans its preemption-branch replay jobs
    out with: each job is an independent deterministic replay, and the
    commit order makes run counts, branch-point counts, truncation points
    and failing-schedule choices bit-identical to the serial explorer.

    [exec] runs on worker domains, concurrently: it must not share
    unsynchronized mutable state across calls.  [commit] runs under the
    pool lock, serially and in order: it may freely update accumulator
    state captured in its closure; returning [None] stops the pool (pending
    and in-flight work is discarded).  Worker exceptions from [exec] are
    re-raised from [run] at the failed node's commit position. *)

type ('j, 'r) node = {
  job : 'j;
  mutable state : [ `Pending | `Running | `Done of 'r | `Raised of exn ];
}

let run (type j r) ~domains ~(exec : j -> r)
    ~(commit : j -> r -> j list option) ~(roots : j list) : unit =
  if domains < 1 then invalid_arg "Pool.run: domains must be >= 1";
  let m = Mutex.create () in
  let cv = Condition.create () in
  let queue = ref (List.map (fun j -> { job = j; state = `Pending }) roots) in
  let stopped = ref false in
  let failure = ref None in
  (* Commit every leading completed node; called with [m] held. *)
  let rec drain () =
    match !queue with
    | { job; state = `Done r } :: rest -> (
        match commit job r with
        | Some children ->
            queue :=
              List.map (fun j -> { job = j; state = `Pending }) children
              @ rest;
            drain ()
        | None ->
            stopped := true;
            queue := []
        | exception e ->
            if !failure = None then failure := Some e;
            stopped := true;
            queue := [])
    | { state = `Raised e; _ } :: _ ->
        if !failure = None then failure := Some e;
        stopped := true;
        queue := []
    | _ -> ()
  in
  let rec take_pending = function
    | [] -> None
    | n :: rest -> (
        match n.state with `Pending -> Some n | _ -> take_pending rest)
  in
  let worker () =
    Mutex.lock m;
    let rec loop () =
      if !stopped || !queue = [] then Mutex.unlock m
      else
        match take_pending !queue with
        | Some n ->
            n.state <- `Running;
            Mutex.unlock m;
            let st =
              match exec n.job with r -> `Done r | exception e -> `Raised e
            in
            Mutex.lock m;
            n.state <- st;
            drain ();
            Condition.broadcast cv;
            loop ()
        | None ->
            (* Results still in flight may commit into new children. *)
            Condition.wait cv m;
            loop ()
    in
    loop ()
  in
  Mutex.lock m;
  drain ();
  Mutex.unlock m;
  if not !stopped then begin
    let workers = List.init domains (fun _ -> Domain.spawn worker) in
    List.iter Domain.join workers
  end;
  match !failure with None -> () | Some e -> raise e
