(** Backend selection for command-line drivers: the [--backend sim|domains]
    flag parses to a {!t}, and {!runner} resolves it (plus the simulator's
    per-trial knobs) into a packed {!Intf.RUNNER}. *)

type t = [ `Sim | `Domains ]

let all : t list = [ `Sim; `Domains ]
let to_string = function `Sim -> "sim" | `Domains -> "domains"

let of_string = function
  | "sim" -> Ok `Sim
  | "domains" -> Ok `Domains
  | s ->
      Error
        (Printf.sprintf "unknown backend %S (expected %s)" s
           (String.concat "|" (List.map to_string all)))

let clock = function `Sim -> Clock.sim | `Domains -> Clock.wall

(** [runner ?machine ?max_steps ?policy t] packs the backend.  The three
    options parameterize the simulator and are ignored (with no effect, not
    an error) by the domains backend, which has no machine model. *)
let runner ?machine ?max_steps ?policy : t -> (module Intf.RUNNER) = function
  | `Sim -> Sim_exec.make ?machine ?max_steps ?policy ()
  | `Domains -> Domain_exec.make ()
