(** The execution-backend abstraction.

    The Record Manager thesis is "write the data structure once, swap the
    reclamation scheme by changing one line"; a {!RUNNER} extends the same
    courtesy to {e execution}: the trial pipeline (workload bodies,
    telemetry sampling, chaos installation, crash accounting) is written
    once against this signature and runs unchanged on the deterministic
    virtual-time simulator ({!Sim_exec}) or on real OCaml 5 domains
    ({!Domain_exec}).

    A backend's obligations:

    - {b spawn}: run every group body to completion and install the
      context's [now_impl]/[stall_impl] for the duration of the run;
    - {b signals}: preserve the {!Runtime.Ctx} guarantee that a signalled
      process runs its handler before its next instrumented access (the
      simulator delivers exactly; domains deliver at the next flag poll,
      an approximation documented in DESIGN.md §2);
    - {b time}: report elapsed time in {!Clock.t} cycles of its own time
      base, plus real wall-clock seconds;
    - {b sampling}: drive the [tick] callback approximately once per
      interval of its time base, never from inside a workload fiber;
    - {b crash reporting}: a body that terminates via {!Runtime.Ctx.Crashed}
      must be marked dead in the group ({!Runtime.Group.mark_crashed})
      {e at death}, so fault-tolerant reclaimers observe ESRCH while the
      run is still in flight;
    - {b stuck reporting}: a backend that can prove the run is wedged
      raises its own diagnostic (the simulator's {!Sim.Stuck}); backends
      that cannot say so in [limitations]. *)

type result = {
  elapsed_cycles : int;
      (** end-to-end run time in cycles of the backend's {!Clock.t}
          (virtual time under the simulator, scaled wall-clock under
          domains) *)
  wall_seconds : float;  (** real time the run took on the host *)
  cache_stats : Machine.Cache.stats option;
      (** simulator cache-model counters; [None] on real hardware *)
  context_switches : int;  (** simulated context switches; 0 on domains *)
}

module type RUNNER = sig
  val name : string

  val clock : Clock.t

  (** [true] when identical inputs replay the identical interleaving:
      virtual-time tick boundaries are exact, chaos plans fire at fixed
      points, and host-side recording cannot race.  [false] on real
      parallelism: the trial pipeline then degrades the sim-only features
      (sanitizer, non-per-process chaos triggers, event-bus telemetry)
      instead of racing on them. *)
  val deterministic : bool

  (** Human-readable notes on what this backend cannot provide, printed
      by drivers when a degraded feature was requested.  Empty for the
      simulator. *)
  val limitations : string list

  (** [run ?tick group bodies] runs [bodies.(pid)] for every pid to
      completion and returns the outcome.  [?tick:(interval, f)] fires
      [f now] about once per [interval] cycles with a monotone [now]; [f]
      must only perform uninstrumented reads (telemetry gauges).
      Exceptions other than {!Runtime.Ctx.Crashed} escaping a body are
      re-raised after the run winds down. *)
  val run :
    ?tick:int * (int -> unit) ->
    Runtime.Group.t ->
    (unit -> unit) array ->
    result
end
