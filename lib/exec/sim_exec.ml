(** {!Intf.RUNNER} over the deterministic virtual-time simulator.

    A thin adapter: {!Sim.run} already provides exact signal delivery,
    exact tick boundaries, crash bookkeeping and {!Sim.Stuck} livelock
    diagnosis; this module fixes the machine model, step budget and
    scheduling policy at construction so the trial pipeline sees one
    uniform [run]. *)

let make ?(machine = Machine.Config.intel_i7_4770) ?max_steps ?policy () :
    (module Intf.RUNNER) =
  (module struct
    let name = "sim"
    let clock = Clock.sim
    let deterministic = true
    let limitations = []

    let run ?tick group bodies =
      let started = Unix.gettimeofday () in
      let r = Sim.run ~machine ?max_steps ?policy ?tick group bodies in
      {
        Intf.elapsed_cycles = r.Sim.virtual_time;
        wall_seconds = Unix.gettimeofday () -. started;
        cache_stats = Some r.Sim.cache_stats;
        context_switches = r.Sim.context_switches;
      }
  end)
