(** Typed record arenas: the library's substitute for [malloc]/[free].

    An arena holds fixed-shape records made of [mut_fields] atomic words
    (pointers, state words — anything CASed) and [const_fields] plain words
    (keys, values — written once between allocation and publication).  Both
    kinds are mapped to virtual cache lines so the machine model prices them.

    The arena implements the record lifecycle of the paper's Figure 1:
    slots are {e unallocated} until claimed, {e allocated} until freed, and
    freeing bumps the slot's generation so that any access through a stale
    pointer raises {!Use_after_free} — the testable analogue of a segfault.
    "Retired" is a reclamation-scheme notion and is not tracked here.

    Allocation is split into [claim_fresh] (bump allocation of a never-used
    slot) and [claim_recycled] (pop of the free list), so that Allocators can
    implement the paper's Bump and malloc-style policies.  [release] frees a
    slot; with [~recycle:false] the slot is leaked, which is what the bump
    allocator's [deallocate] does in Experiment 1. *)

exception Use_after_free of string
exception Double_free of string
exception Arena_full of string

(** Raised by allocation when the heap's live-record budget is exhausted —
    the simulated analogue of [malloc] returning [NULL] under a bounded
    heap.  Unlike {!Arena_full} (the arena's backing region ran out), the
    budget is shared across all arenas of a heap and is freed again by
    [release]: a reclaimer that drains limbo can make a retried allocation
    succeed.  See {!Heap.set_record_budget}. *)
exception Out_of_memory of string

type t

(** A live-record budget shared by the arenas of one heap.  [limit < 0]
    (the default) means unlimited; the live counter is maintained either
    way so a limit can be installed mid-run. *)
type budget = { mutable limit : int; b_live : int Atomic.t }

val budget_unlimited : unit -> budget

(** [create ?events ?budget …] builds an arena.  When [events] is given,
    lifecycle and access events are published on that hub (see
    {!Smr_event}); arenas of one heap share the heap's hub, and likewise its
    record [budget]. *)
val create :
  ?events:Smr_event.hub ->
  ?budget:budget ->
  heap_id:int ->
  name:string ->
  mut_fields:int ->
  const_fields:int ->
  capacity:int ->
  unit ->
  t

val name : t -> string
val heap_id : t -> int

(** The arena's event hub and a shorthand for publishing on it. *)

val events : t -> Smr_event.hub
val emit : t -> Runtime.Ctx.t -> Smr_event.t -> unit
val capacity : t -> int
val record_bytes : t -> int

(** Enable/disable generation+state validation on every access (on by
    default).  Benchmarks can disable it to measure pure scheme costs. *)
val set_checking : t -> bool -> unit

(** [claim_fresh ctx t] bump-allocates a never-used slot.
    @raise Arena_full when the arena is exhausted.
    @raise Out_of_memory when the heap's record budget is exhausted. *)
val claim_fresh : Runtime.Ctx.t -> t -> Ptr.t

(** [claim_recycled ctx t] pops a freed slot from the lock-free free list;
    [None] when it is empty.
    @raise Out_of_memory when the heap's record budget is exhausted (the
    slot is returned to the free list first). *)
val claim_recycled : Runtime.Ctx.t -> t -> Ptr.t option

val budget : t -> budget

(** [release ctx t p ~recycle] frees the record.  Its generation is bumped;
    with [recycle] the slot joins the free list for [claim_recycled].
    @raise Double_free on freeing a non-allocated slot or stale pointer. *)
val release : Runtime.Ctx.t -> t -> Ptr.t -> recycle:bool -> unit

(** [validate t p] checks that [p] points to a currently-allocated record of
    the right generation.  @raise Use_after_free otherwise. *)
val validate : t -> Ptr.t -> unit

(** [is_valid t p] is [validate] as a predicate. *)
val is_valid : t -> Ptr.t -> bool

(** Instrumented accesses to mutable (atomic) fields. *)

val read : Runtime.Ctx.t -> t -> Ptr.t -> int -> int

(** [read_opt ctx t p f] is [read] but returns [None] instead of raising on
    a freed or stale pointer — the hook for transactional layers that must
    treat use-after-free as an abort rather than a crash (HTM semantics). *)
val read_opt : Runtime.Ctx.t -> t -> Ptr.t -> int -> int option
val write : Runtime.Ctx.t -> t -> Ptr.t -> int -> int -> unit
val cas : Runtime.Ctx.t -> t -> Ptr.t -> int -> expect:int -> int -> bool

(** Instrumented accesses to constant (plain) fields. *)

val get_const : Runtime.Ctx.t -> t -> Ptr.t -> int -> int
val set_const : Runtime.Ctx.t -> t -> Ptr.t -> int -> int -> unit

(** Uninstrumented accessors for setup and test assertions. *)

val peek : t -> Ptr.t -> int -> int
val poke : t -> Ptr.t -> int -> int -> unit
val peek_const : t -> Ptr.t -> int -> int

(** Statistics (concurrent-safe counters). *)

val live_records : t -> int
val peak_live : t -> int
val fresh_claims : t -> int
val total_allocs : t -> int
val total_frees : t -> int

(** Bytes of backing memory ever claimed from the bump region — the paper's
    "total amount of memory allocated for records" metric (Fig. 9 right). *)
val bytes_claimed : t -> int

(** Peak simultaneously-live bytes. *)
val bytes_peak : t -> int
