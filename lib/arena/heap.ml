type t = {
  mutable arenas : Arena.t array;
  events : Smr_event.hub;
  budget : Arena.budget;  (* live-record budget shared by all arenas *)
}

let create () =
  { arenas = [||]; events = Smr_event.hub (); budget = Arena.budget_unlimited () }
let events t = t.events
let emit t ctx ev = Smr_event.emit t.events ctx ev
let add_sink t sink = Smr_event.add_sink t.events sink
let remove_sink t sub = Smr_event.remove_sink t.events sub

let new_arena t ~name ~mut_fields ~const_fields ~capacity =
  let id = Array.length t.arenas in
  if id >= Ptr.max_arenas then
    invalid_arg "Heap.new_arena: too many arenas in one heap";
  let a =
    Arena.create ~events:t.events ~budget:t.budget ~heap_id:id ~name
      ~mut_fields ~const_fields ~capacity ()
  in
  t.arenas <- Array.append t.arenas [| a |];
  a

let arena_of t p = t.arenas.(Ptr.arena_id p)
let arenas t = Array.to_list t.arenas
let release t ctx p ~recycle = Arena.release ctx (arena_of t p) p ~recycle
let set_checking t b = Array.iter (fun a -> Arena.set_checking a b) t.arenas

let set_record_budget t limit = t.budget.Arena.limit <- limit
let record_budget t = t.budget.Arena.limit
let budget_live t = Atomic.get t.budget.Arena.b_live

let sum f t = Array.fold_left (fun acc a -> acc + f a) 0 t.arenas
let live_records t = sum Arena.live_records t
let bytes_claimed t = sum Arena.bytes_claimed t
let bytes_peak t = sum Arena.bytes_peak t
let total_allocs t = sum Arena.total_allocs t
let total_frees t = sum Arena.total_frees t
