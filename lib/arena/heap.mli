(** A heap groups the arenas of one data structure instance so that
    reclamation code can dispatch on a pointer's arena id.  Create one heap
    per experiment/trial. *)

type t

val create : unit -> t

(** Every arena of a heap shares one event hub (see {!Smr_event}).
    [add_sink] attaches a consumer (a shadow checker, a telemetry recorder —
    several may be attached at once) and returns the subscription that
    [remove_sink] cancels; [emit] lets reclamation code publish protocol
    events (retire, protect, quiescence) on the same bus as the arenas'
    lifecycle events. *)

val events : t -> Smr_event.hub
val emit : t -> Runtime.Ctx.t -> Smr_event.t -> unit
val add_sink : t -> Smr_event.sink -> Smr_event.subscription
val remove_sink : t -> Smr_event.subscription -> unit

(** [new_arena t ~name ~mut_fields ~const_fields ~capacity] creates an arena
    registered in this heap (at most {!Ptr.max_arenas}). *)
val new_arena :
  t -> name:string -> mut_fields:int -> const_fields:int -> capacity:int -> Arena.t

val arena_of : t -> Ptr.t -> Arena.t
val arenas : t -> Arena.t list

(** [release t ctx p ~recycle] frees [p] in its owning arena. *)
val release : t -> Runtime.Ctx.t -> Ptr.t -> recycle:bool -> unit

val set_checking : t -> bool -> unit

(** Bounded-memory mode.  [set_record_budget t k] caps the number of
    simultaneously-live records across {e all} arenas of this heap at [k];
    further allocations raise {!Arena.Out_of_memory} until records are
    released.  [k < 0] (the default) removes the cap.  [budget_live] is the
    current charge against the budget. *)

val set_record_budget : t -> int -> unit
val record_budget : t -> int
val budget_live : t -> int

(** Aggregated statistics over all arenas. *)

val live_records : t -> int
val bytes_claimed : t -> int
val bytes_peak : t -> int
val total_allocs : t -> int
val total_frees : t -> int
