(** The SMR event bus: lifecycle and protection events emitted by arenas,
    pools and reclaimers, consumed by shadow-state checkers (lib/sanitizer)
    and by the telemetry recorder (lib/telemetry).

    A hub is owned by a {!Heap} and shared by every arena in it; reclamation
    components reach it through their environment.  Emission is a single
    option check when no sink is attached, so instrumented code pays nothing
    in normal runs.

    Multiple sinks may be attached at once ({!add_sink} returns a
    subscription that {!remove_sink} cancels); the fast path stays a single
    branch because the attached sinks are composed into one closure at
    (un)subscription time, never at emission time.

    Events describe the {e record lifecycle} (alloc, retire, free, pool
    put/take), the {e protection protocol} (protect/unprotect, rprotect),
    the {e quiescence protocol} (leave/enter), and the {e reclamation
    control plane} (epoch advances, neutralization signals, sweeps) —
    the last group exists for observability: checkers may ignore it.
    Emission points are placed so that a shadow checker sees every
    transition before the arena's own generation check can raise: [Free]
    and [Access] fire before validation, protection events fire strictly
    inside the window in which the announcement is visible to concurrent
    scanners (after the announce write, before the retract write). *)

type access = Read | Write | Cas

type t =
  | Alloc of Ptr.t  (** record claimed from its arena *)
  | Free of Ptr.t  (** record released to its arena (generation bumped) *)
  | Access of Ptr.t * access  (** instrumented field access *)
  | Pool_put of Ptr.t
      (** record entered a reuse pool {e without} passing through the arena:
          it may be handed out again with the same generation *)
  | Pool_take of Ptr.t  (** record left a reuse pool to be reused *)
  | Retire of Ptr.t  (** record handed to a reclaimer *)
  | Protect of Ptr.t  (** announcement visible (HP slot, RC count, TS root) *)
  | Unprotect of Ptr.t  (** announcement about to be retracted *)
  | Unprotect_all  (** all of this process' announcements retracted *)
  | Enter_q  (** process entered a quiescent state / passed a q-point *)
  | Leave_q  (** process left its quiescent state (operation begins) *)
  | Rprotect of Ptr.t  (** DEBRA+ recovery announcement visible *)
  | Runprotect_all  (** all recovery announcements retracted *)
  | Epoch_advance of int
      (** this process' CAS moved the global epoch/clock to the payload *)
  | Signal_sent of int  (** neutralization signal sent to process [target] *)
  | Sweep of int
      (** a reclamation sweep (rotation, scan, batch drain) handed the
          payload's worth of records to the pool *)

type sink = Runtime.Ctx.t -> t -> unit
type subscription = int

type hub = {
  mutable sink : sink option;  (** composed fan-out; [None] = fast path *)
  mutable sinks : (subscription * sink) list;  (** newest first *)
  mutable next_id : int;
}

let hub () = { sink = None; sinks = []; next_id = 0 }

(* Rebuild the composed closure.  Sinks run in subscription order, so a
   checker attached before a recorder observes each event first. *)
let recompose hub =
  hub.sink <-
    (match List.rev hub.sinks with
    | [] -> None
    | [ (_, f) ] -> Some f
    | subs ->
        let fs = Array.of_list (List.map snd subs) in
        Some (fun ctx ev -> Array.iter (fun f -> f ctx ev) fs))

let add_sink hub f =
  let id = hub.next_id in
  hub.next_id <- id + 1;
  hub.sinks <- (id, f) :: hub.sinks;
  recompose hub;
  id

let remove_sink hub id =
  hub.sinks <- List.filter (fun (i, _) -> i <> id) hub.sinks;
  recompose hub

let sink_count hub = List.length hub.sinks

let emit hub ctx ev =
  match hub.sink with None -> () | Some f -> f ctx ev
