(** The SMR event bus: lifecycle and protection events emitted by arenas,
    pools and reclaimers, consumed by shadow-state checkers (lib/sanitizer).

    A hub is owned by a {!Heap} and shared by every arena in it; reclamation
    components reach it through their environment.  Emission is a single
    option check when no sink is attached, so instrumented code pays nothing
    in normal runs.

    Events describe the {e record lifecycle} (alloc, retire, free, pool
    put/take), the {e protection protocol} (protect/unprotect, rprotect),
    and the {e quiescence protocol} (leave/enter).  Emission points are
    placed so that a shadow checker sees every transition before the arena's
    own generation check can raise: [Free] and [Access] fire before
    validation, protection events fire strictly inside the window in which
    the announcement is visible to concurrent scanners (after the announce
    write, before the retract write). *)

type access = Read | Write | Cas

type t =
  | Alloc of Ptr.t  (** record claimed from its arena *)
  | Free of Ptr.t  (** record released to its arena (generation bumped) *)
  | Access of Ptr.t * access  (** instrumented field access *)
  | Pool_put of Ptr.t
      (** record entered a reuse pool {e without} passing through the arena:
          it may be handed out again with the same generation *)
  | Pool_take of Ptr.t  (** record left a reuse pool to be reused *)
  | Retire of Ptr.t  (** record handed to a reclaimer *)
  | Protect of Ptr.t  (** announcement visible (HP slot, RC count, TS root) *)
  | Unprotect of Ptr.t  (** announcement about to be retracted *)
  | Unprotect_all  (** all of this process' announcements retracted *)
  | Enter_q  (** process entered a quiescent state / passed a q-point *)
  | Leave_q  (** process left its quiescent state (operation begins) *)
  | Rprotect of Ptr.t  (** DEBRA+ recovery announcement visible *)
  | Runprotect_all  (** all recovery announcements retracted *)

type sink = Runtime.Ctx.t -> t -> unit
type hub = { mutable sink : sink option }

let hub () = { sink = None }
let set_sink hub sink = hub.sink <- sink

let emit hub ctx ev =
  match hub.sink with None -> () | Some f -> f ctx ev
