exception Use_after_free of string
exception Double_free of string
exception Arena_full of string
exception Out_of_memory of string

(* A live-record budget shared by every arena of one heap: the simulated
   analogue of running the process under a bounded heap (ulimit -v).  A
   negative limit means unlimited; the counter still tracks so the limit can
   be installed mid-run. *)
type budget = { mutable limit : int; b_live : int Atomic.t }

let budget_unlimited () = { limit = -1; b_live = Atomic.make 0 }

let state_unallocated = 0
let state_allocated = 1

type t = {
  heap_id : int;
  name : string;
  mut_fields : int;
  const_fields : int;
  capacity : int;
  data_mut : int Atomic.t array;  (* capacity * mut_fields *)
  data_const : int array;  (* capacity * const_fields *)
  state : int array;  (* per slot *)
  gen : int array;  (* per slot, monotonically increasing *)
  free_next : int array;  (* per slot: Treiber-stack link *)
  free_head : int Atomic.t;  (* top slot of the free list, -1 = empty *)
  bump : int Atomic.t;  (* next never-used slot *)
  base_line : int;
  words_per_record : int;
  mutable checking : bool;
  budget : budget;
  events : Smr_event.hub;
  live : int Atomic.t;
  peak : int Atomic.t;
  allocs : int Atomic.t;
  frees : int Atomic.t;
}

let create ?events ?budget ~heap_id ~name ~mut_fields ~const_fields ~capacity
    () =
  assert (capacity > 0 && mut_fields >= 0 && const_fields >= 0);
  let events = match events with Some h -> h | None -> Smr_event.hub () in
  let budget = match budget with Some b -> b | None -> budget_unlimited () in
  let words_per_record = mut_fields + const_fields in
  {
    heap_id;
    name;
    mut_fields;
    const_fields;
    capacity;
    data_mut = Array.init (capacity * mut_fields) (fun _ -> Atomic.make 0);
    data_const = Array.make (max 1 (capacity * const_fields)) 0;
    state = Array.make capacity state_unallocated;
    gen = Array.make capacity 0;
    free_next = Array.make capacity (-1);
    free_head = Atomic.make (-1);
    bump = Atomic.make 0;
    base_line = Runtime.Addr.reserve_words (capacity * max 1 words_per_record);
    words_per_record;
    checking = true;
    budget;
    events;
    live = Atomic.make 0;
    peak = Atomic.make 0;
    allocs = Atomic.make 0;
    frees = Atomic.make 0;
  }

let name t = t.name
let heap_id t = t.heap_id
let events t = t.events
let emit t ctx ev = Smr_event.emit t.events ctx ev
let capacity t = t.capacity
let record_bytes t = 8 * (t.words_per_record + 1) (* +1: header word *)
let set_checking t b = t.checking <- b

let line_of t slot word =
  Runtime.Addr.line_of ~base_line:t.base_line ((slot * t.words_per_record) + word)

let describe t p =
  Printf.sprintf "%s: ptr %s (slot state=%d gen=%d)" t.name (Ptr.to_string p)
    t.state.(Ptr.slot p)
    t.gen.(Ptr.slot p)

let validate t p =
  let slot = Ptr.slot p in
  if
    slot < 0 || slot >= t.capacity
    || t.state.(slot) <> state_allocated
    || t.gen.(slot) land Ptr.gen_mask <> Ptr.gen p
  then raise (Use_after_free (describe t p))

let is_valid t p =
  let slot = Ptr.slot p in
  slot >= 0 && slot < t.capacity
  && t.state.(slot) = state_allocated
  && t.gen.(slot) land Ptr.gen_mask = Ptr.gen p

let note_alloc t ctx =
  ctx.Runtime.Ctx.stats.Runtime.Ctx.allocs <-
    ctx.Runtime.Ctx.stats.Runtime.Ctx.allocs + 1;
  ignore (Atomic.fetch_and_add t.allocs 1);
  let l = 1 + Atomic.fetch_and_add t.live 1 in
  let rec bump_peak () =
    let p = Atomic.get t.peak in
    if l > p && not (Atomic.compare_and_set t.peak p l) then bump_peak ()
  in
  bump_peak ()

(* Optimistically reserve one budget unit; roll back and raise when over the
   limit so a failed allocation leaves the counter exact. *)
let charge_budget t =
  let b = t.budget in
  let l = 1 + Atomic.fetch_and_add b.b_live 1 in
  if b.limit >= 0 && l > b.limit then begin
    ignore (Atomic.fetch_and_add b.b_live (-1));
    raise
      (Out_of_memory
         (Printf.sprintf "%s: %d live records exceed heap budget of %d" t.name
            l b.limit))
  end

let uncharge_budget t = ignore (Atomic.fetch_and_add t.budget.b_live (-1))

let claim_fresh ctx t =
  Runtime.Ctx.work ctx 2;
  charge_budget t;
  let slot = Atomic.fetch_and_add t.bump 1 in
  if slot >= t.capacity then begin
    uncharge_budget t;
    raise (Arena_full t.name)
  end;
  t.state.(slot) <- state_allocated;
  note_alloc t ctx;
  let p = Ptr.make ~arena:t.heap_id ~slot ~gen:t.gen.(slot) in
  emit t ctx (Smr_event.Alloc p);
  p

let claim_recycled ctx t =
  Runtime.Ctx.work ctx 2;
  let rec pop () =
    let head = Atomic.get t.free_head in
    if head < 0 then None
    else
      let next = t.free_next.(head) in
      if Atomic.compare_and_set t.free_head head next then Some head
      else pop ()
  in
  match pop () with
  | None -> None
  | Some slot ->
      (match charge_budget t with
      | () -> ()
      | exception e ->
          (* Put the slot back before surfacing the failure. *)
          let rec push () =
            let head = Atomic.get t.free_head in
            t.free_next.(slot) <- head;
            if not (Atomic.compare_and_set t.free_head head slot) then push ()
          in
          push ();
          raise e);
      t.state.(slot) <- state_allocated;
      note_alloc t ctx;
      let p = Ptr.make ~arena:t.heap_id ~slot ~gen:t.gen.(slot) in
      emit t ctx (Smr_event.Alloc p);
      Some p

let release ctx t p ~recycle =
  Runtime.Ctx.work ctx 2;
  (* Emitted before validation so a shadow checker can classify the free
     (double free, premature free) even when the arena itself raises. *)
  emit t ctx (Smr_event.Free p);
  let slot = Ptr.slot p in
  if
    slot < 0 || slot >= t.capacity
    || t.state.(slot) <> state_allocated
    || t.gen.(slot) land Ptr.gen_mask <> Ptr.gen p
  then raise (Double_free (describe t p));
  t.gen.(slot) <- t.gen.(slot) + 1;
  t.state.(slot) <- state_unallocated;
  ctx.Runtime.Ctx.stats.Runtime.Ctx.frees <-
    ctx.Runtime.Ctx.stats.Runtime.Ctx.frees + 1;
  ignore (Atomic.fetch_and_add t.frees 1);
  ignore (Atomic.fetch_and_add t.live (-1));
  uncharge_budget t;
  if recycle then begin
    let rec push () =
      let head = Atomic.get t.free_head in
      t.free_next.(slot) <- head;
      if not (Atomic.compare_and_set t.free_head head slot) then push ()
    in
    push ()
  end

let check t p = if t.checking then validate t p

let mut_index t p f =
  assert (f >= 0 && f < t.mut_fields);
  (Ptr.slot p * t.mut_fields) + f

let const_index t p f =
  assert (f >= 0 && f < t.const_fields);
  (Ptr.slot p * t.const_fields) + f

let read ctx t p f =
  Runtime.Ctx.access ctx ~line:(line_of t (Ptr.slot p) f) Runtime.Ctx.Read;
  emit t ctx (Smr_event.Access (p, Smr_event.Read));
  check t p;
  Atomic.get t.data_mut.(mut_index t p f)

let read_opt ctx t p f =
  Runtime.Ctx.access ctx ~line:(line_of t (Ptr.slot p) f) Runtime.Ctx.Read;
  if is_valid t p then Some (Atomic.get t.data_mut.(mut_index t p f)) else None

let write ctx t p f v =
  Runtime.Ctx.access ctx ~line:(line_of t (Ptr.slot p) f) Runtime.Ctx.Write;
  emit t ctx (Smr_event.Access (p, Smr_event.Write));
  check t p;
  Atomic.set t.data_mut.(mut_index t p f) v

let cas ctx t p f ~expect v =
  Runtime.Ctx.access ctx ~line:(line_of t (Ptr.slot p) f) Runtime.Ctx.Cas;
  emit t ctx (Smr_event.Access (p, Smr_event.Cas));
  check t p;
  Atomic.compare_and_set t.data_mut.(mut_index t p f) expect v

let get_const ctx t p f =
  Runtime.Ctx.access ctx
    ~line:(line_of t (Ptr.slot p) (t.mut_fields + f))
    Runtime.Ctx.Read;
  emit t ctx (Smr_event.Access (p, Smr_event.Read));
  check t p;
  t.data_const.(const_index t p f)

let set_const ctx t p f v =
  Runtime.Ctx.access ctx
    ~line:(line_of t (Ptr.slot p) (t.mut_fields + f))
    Runtime.Ctx.Write;
  emit t ctx (Smr_event.Access (p, Smr_event.Write));
  check t p;
  t.data_const.(const_index t p f) <- v

let peek t p f = Atomic.get t.data_mut.(mut_index t p f)
let poke t p f v = Atomic.set t.data_mut.(mut_index t p f) v
let peek_const t p f = t.data_const.(const_index t p f)

let budget t = t.budget
let live_records t = Atomic.get t.live
let peak_live t = Atomic.get t.peak
let fresh_claims t = Atomic.get t.bump
let total_allocs t = Atomic.get t.allocs
let total_frees t = Atomic.get t.frees
let bytes_claimed t = fresh_claims t * record_bytes t
let bytes_peak t = peak_live t * record_bytes t
