type t = {
  name : string;
  sockets : int;
  contexts_per_socket : int;
  l1_lines : int;
  llc_lines : int;
  l1_hit : int;
  llc_hit : int;
  mem_access : int;
  invalidation : int;
  cas_extra : int;
  fence : int;
  ctx_switch : int;
  quantum : int;
}

let contexts t = t.sockets * t.contexts_per_socket
let socket_of_context t c = c / t.contexts_per_socket

let intel_i7_4770 =
  {
    name = "Intel i7-4770 (4 cores, 8 threads, 1 socket)";
    sockets = 1;
    contexts_per_socket = 8;
    l1_lines = 512 (* 32 KB *);
    llc_lines = 131_072 (* 8 MB *);
    l1_hit = 4;
    llc_hit = 35;
    mem_access = 200;
    invalidation = 40;
    cas_extra = 15;
    fence = 50;
    ctx_switch = 4_000;
    quantum = 400_000;
  }

let oracle_t4_1 =
  {
    name = "Oracle T4-1 (64 hardware contexts, modelled as 8 sockets x 8)";
    sockets = 8;
    contexts_per_socket = 8;
    l1_lines = 256;
    llc_lines = 16_384;
    l1_hit = 5;
    llc_hit = 45;
    mem_access = 350;
    invalidation = 80;
    cas_extra = 25;
    fence = 60;
    ctx_switch = 6_000;
    quantum = 400_000;
  }

(* Scaled-out T4 family for the E-scale campaign: every per-context cost
   parameter is inherited from [oracle_t4_1] so runs at different scales
   differ only in context count and socket topology — 64 contexts is
   exactly the T4-1, larger members add whole sockets of 8. *)
let scale ~contexts:n =
  if n < 8 || n mod 8 <> 0 then
    invalid_arg "Config.scale: contexts must be a positive multiple of 8";
  {
    oracle_t4_1 with
    name = Printf.sprintf "scale-%d (%d sockets x 8, T4 cost model)" n (n / 8);
    sockets = n / 8;
    contexts_per_socket = 8;
  }

let tiny ?(contexts = 2) () =
  {
    name = Printf.sprintf "tiny-%d" contexts;
    sockets = 1;
    contexts_per_socket = contexts;
    l1_lines = 16;
    llc_lines = 64;
    l1_hit = 1;
    llc_hit = 10;
    mem_access = 100;
    invalidation = 20;
    cas_extra = 5;
    fence = 30;
    ctx_switch = 500;
    quantum = 10_000;
  }
