(** Machine descriptions for the simulator.

    The cost parameters implement the Model section of the paper: a MESI-like
    protocol where reads load lines in shared mode, writes load in exclusive
    mode and invalidate other caches, processes on one socket share a
    last-level cache, and a write by a process does not invalidate the LLC
    copy of processes on the same socket. *)

type t = {
  name : string;
  sockets : int;
  contexts_per_socket : int;  (** hardware threads per socket *)
  l1_lines : int;  (** private cache capacity, in lines, per context *)
  llc_lines : int;  (** last-level cache capacity, in lines, per socket *)
  l1_hit : int;  (** cycles for a private-cache hit *)
  llc_hit : int;  (** cycles for a last-level-cache hit *)
  mem_access : int;  (** cycles for a main-memory access *)
  invalidation : int;  (** extra cycles when a write invalidates remote copies *)
  cas_extra : int;  (** extra cycles for a read-modify-write *)
  fence : int;  (** cycles for a full memory barrier *)
  ctx_switch : int;  (** cycles charged when the scheduler switches processes *)
  quantum : int;  (** scheduling quantum, in cycles *)
}

val contexts : t -> int
val socket_of_context : t -> int -> int

(** The paper's primary machine: Intel i7-4770, 4 cores / 8 hardware threads,
    one socket, 8 MB LLC. *)
val intel_i7_4770 : t

(** The paper's NUMA machine: Oracle T4-1, 64 hardware contexts.  Modelled as
    8 sockets of 8 contexts to exercise the cross-socket invalidation costs
    the paper discusses. *)
val oracle_t4_1 : t

(** Scaled-out member of the T4 family for the E-scale campaign: [n / 8]
    sockets of 8 contexts with [oracle_t4_1]'s cost parameters, so sweeps
    over 64 / 256 / 1024 contexts vary only scale, not the cost model.
    Raises [Invalid_argument] unless [contexts] is a positive multiple
    of 8. *)
val scale : contexts:int -> t

(** A small deterministic machine for unit tests. *)
val tiny : ?contexts:int -> unit -> t
