(* Fault-injection tests: crash during neutralization, signals to dead
   processes, crashed ThreadScan collectors, queue linearizability under
   crashes (via the FIFO oracle), bounded-memory emergency reclamation, and
   determinism of the chaos engine itself. *)

let params =
  {
    Reclaim.Intf.Params.default with
    Reclaim.Intf.Params.block_capacity = 16;
    incr_thresh = 4;
    pool_cap_blocks = 2;
  }

let or_wedged f =
  try f ()
  with Sim.Stuck i ->
    Alcotest.failf "simulation wedged: %s (after %d steps)" i.Sim.s_reason
      i.Sim.s_steps

(* ------------------------------------------------------------------ *)
(* Crash during neutralization: a DEBRA+ process dies mid-operation, so
   the epoch stops advancing until the survivors suspect it and try to
   neutralize — and every signal to the corpse comes back ESRCH.  The
   trial must complete (no wedge), the sanitizer must see no double
   frees, the final structure must pass its invariant walk, and limbo
   must stay within the paper's bound. *)

module BP = Workload.Schemes.B2_debra_plus

let crash_mid_op ~policy ~seed () =
  let n = 6 in
  let plan =
    Chaos.
      { seed; faults = [ Crash { pid = 2; at = 3_000; kind = In_operation } ] }
  in
  let o =
    or_wedged (fun () ->
        BP.R.trial
          (module BP.T)
          ~params ~duration:400_000 ~sanitize:true ~chaos:plan
          ~max_steps:20_000_000 ~policy ~n ~range:512 ~ins:50 ~del:50 ~seed ())
  in
  Alcotest.(check int) "one process crashed" 1 o.Workload.Trial.crashed;
  Alcotest.(check (option int)) "sanitizer silent" (Some 0)
    o.Workload.Trial.violations;
  Alcotest.(check (option string)) "invariants hold" None
    o.Workload.Trial.invariant_failure;
  let bound = 3 * n * n * params.Reclaim.Intf.Params.block_capacity in
  if o.Workload.Trial.limbo > bound then
    Alcotest.failf "limbo %d exceeds bound %d: neutralization failed"
      o.Workload.Trial.limbo bound;
  if o.Workload.Trial.ops = 0 then Alcotest.fail "survivors performed no ops"

let crash_cases =
  Alcotest.test_case "min-time schedule" `Quick
    (crash_mid_op ~policy:`Min_time ~seed:11)
  :: List.map
       (fun seed ->
         Alcotest.test_case
           (Printf.sprintf "random-walk seed %d" seed)
           `Quick
           (crash_mid_op ~policy:(`Random_walk seed) ~seed))
       [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* Die inside the signal handler itself: the corpse was neutralized and
   never ran its recovery; survivors must still finish and reclaim. *)
let crash_in_handler () =
  let seed = 23 in
  let plan =
    Chaos.{ seed; faults = [ Crash { pid = -1; at = 1; kind = In_handler } ] }
  in
  let o =
    or_wedged (fun () ->
        BP.R.trial
          (module BP.T)
          ~params ~duration:400_000 ~sanitize:true ~chaos:plan
          ~max_steps:20_000_000 ~n:6 ~range:512 ~ins:50 ~del:50 ~seed ())
  in
  Alcotest.(check (option int)) "sanitizer silent" (Some 0)
    o.Workload.Trial.violations;
  (match o.Workload.Trial.chaos with
  | Some s when s.Chaos.handler_crashes = 1 -> ()
  | Some s ->
      Alcotest.failf "expected 1 handler crash, engine reports %d"
        s.Chaos.handler_crashes
  | None -> Alcotest.fail "no chaos summary on a faulted trial");
  Alcotest.(check (option string)) "invariants hold" None
    o.Workload.Trial.invariant_failure

(* ------------------------------------------------------------------ *)
(* The next-generation reclaimers under the same crash: VBR reclaims with
   no grace period at all, so a corpse cannot pin its limbo; Hyaline only
   keeps batches charged to sessions the corpse opened before dying (its
   seal skips crashed processes), so limbo stays within the same bound. *)

module BV = Workload.Schemes.B2_vbr
module BH = Workload.Schemes.B2_hyaline

let crash_mid_op_vbr ~policy ~seed () =
  let n = 6 in
  let plan =
    Chaos.
      { seed; faults = [ Crash { pid = 2; at = 3_000; kind = In_operation } ] }
  in
  let o =
    or_wedged (fun () ->
        BV.R.trial
          (module BV.T)
          ~params ~duration:400_000 ~sanitize:true ~chaos:plan
          ~max_steps:20_000_000 ~policy ~n ~range:512 ~ins:50 ~del:50 ~seed ())
  in
  Alcotest.(check int) "one process crashed" 1 o.Workload.Trial.crashed;
  Alcotest.(check (option int)) "sanitizer silent" (Some 0)
    o.Workload.Trial.violations;
  Alcotest.(check (option string)) "invariants hold" None
    o.Workload.Trial.invariant_failure;
  let bound = 3 * n * n * params.Reclaim.Intf.Params.block_capacity in
  if o.Workload.Trial.limbo > bound then
    Alcotest.failf "limbo %d exceeds bound %d: VBR robustness failed"
      o.Workload.Trial.limbo bound;
  if o.Workload.Trial.ops = 0 then Alcotest.fail "survivors performed no ops"

let crash_mid_op_hyaline ~policy ~seed () =
  let n = 6 in
  let plan =
    Chaos.
      { seed; faults = [ Crash { pid = 2; at = 3_000; kind = In_operation } ] }
  in
  let o =
    or_wedged (fun () ->
        BH.R.trial
          (module BH.T)
          ~params ~duration:400_000 ~sanitize:true ~chaos:plan
          ~max_steps:20_000_000 ~policy ~n ~range:512 ~ins:50 ~del:50 ~seed ())
  in
  Alcotest.(check int) "one process crashed" 1 o.Workload.Trial.crashed;
  Alcotest.(check (option int)) "sanitizer silent" (Some 0)
    o.Workload.Trial.violations;
  Alcotest.(check (option string)) "invariants hold" None
    o.Workload.Trial.invariant_failure;
  let bound = 3 * n * n * params.Reclaim.Intf.Params.block_capacity in
  if o.Workload.Trial.limbo > bound then
    Alcotest.failf "limbo %d exceeds bound %d: crashed-pid discounting failed"
      o.Workload.Trial.limbo bound;
  if o.Workload.Trial.ops = 0 then Alcotest.fail "survivors performed no ops"

(* ------------------------------------------------------------------ *)
(* ThreadScan regression: a crashed process holding the collector role
   (the global scan lock) must not wedge the others — survivors steal
   the lock and treat the corpse's missing ack as vacuous. *)

module BT = Workload.Schemes.B2_ts

let threadscan_crashed_collector ~seed () =
  let plan =
    Chaos.{ seed; faults = [ Crash { pid = 1; at = 5_000; kind = Anywhere } ] }
  in
  let o =
    or_wedged (fun () ->
        BT.R.trial
          (module BT.T)
          ~params ~duration:300_000 ~sanitize:true ~chaos:plan
          ~max_steps:20_000_000 ~n:4 ~range:512 ~ins:50 ~del:50 ~seed ())
  in
  Alcotest.(check int) "one process crashed" 1 o.Workload.Trial.crashed;
  Alcotest.(check (option int)) "sanitizer silent" (Some 0)
    o.Workload.Trial.violations;
  Alcotest.(check (option string)) "invariants hold" None
    o.Workload.Trial.invariant_failure

(* ------------------------------------------------------------------ *)
(* Queue linearizability under crashes: producers mint values from the
   FIFO oracle, two of the four processes die mid-run, and the oracle
   then checks conservation (nothing duplicated, nothing from thin air)
   and per-producer FIFO order over everything dequeued or drained. *)

module RM_q =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)

let queue_crash_fifo ~seed () =
  let n = 4 in
  let ops = 400 in
  let group = Runtime.Group.create ~seed n in
  let heap = Memory.Heap.create () in
  let env = Reclaim.Intf.Env.create ~params group heap in
  let rm = RM_q.create env in
  let module Q = Ds.Ms_queue.Make (RM_q) in
  let q = Q.create rm ~capacity:((n * ops) + 2) in
  let oracle = Chaos.Fifo_oracle.create ~nprocs:n in
  let plan =
    Chaos.
      {
        seed;
        faults =
          [
            Crash { pid = 1; at = 2_000; kind = Anywhere };
            Crash { pid = 3; at = 2_500; kind = Anywhere };
          ];
      }
  in
  let engine = Chaos.install plan ~group ~heap in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    if pid < 2 then
      for _ = 1 to ops do
        Q.enqueue q ctx (Chaos.Fifo_oracle.next_value oracle ~pid)
      done
    else
      for _ = 1 to ops do
        (match Q.dequeue q ctx with
        | Some v -> Chaos.Fifo_oracle.dequeued oracle ~pid v
        | None -> ());
        Runtime.Ctx.work ctx 3
      done
  in
  or_wedged (fun () ->
      ignore
        (Sim.run
           ~machine:(Machine.Config.tiny ~contexts:4 ())
           ~max_steps:20_000_000 group (Array.init n body)));
  Alcotest.(check int) "both crashes fired" 2 (Chaos.summary engine).Chaos.crashes;
  Chaos.uninstall engine;
  (* Drain the survivors' leftovers through pid 0 (alive: it finished). *)
  let ctx0 = Runtime.Group.ctx group 0 in
  let drained = ref [] in
  let rec drain () =
    match Q.dequeue q ctx0 with
    | Some v ->
        drained := v :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  match Chaos.Fifo_oracle.check oracle ~drained:!drained with
  | None -> ()
  | Some msg -> Alcotest.failf "queue oracle: %s" msg

(* ------------------------------------------------------------------ *)
(* Bounded memory: with tight allocation headroom above the prefill, a
   scheme with a working emergency-reclamation path completes, while
   [none] (which never frees) must exhaust the budget and report it. *)

module BN = Workload.Schemes.B1_none

let oom_emergency_drain () =
  let seed = 31 in
  let headroom = 6 * 6 * params.Reclaim.Intf.Params.block_capacity in
  let o =
    or_wedged (fun () ->
        BP.R.trial
          (module BP.T)
          ~params ~duration:400_000 ~sanitize:true ~budget:headroom
          ~max_steps:20_000_000 ~n:6 ~range:512 ~ins:50 ~del:50 ~seed ())
  in
  Alcotest.(check bool) "debra+ completes within the budget" false
    o.Workload.Trial.oom;
  Alcotest.(check (option int)) "sanitizer silent" (Some 0)
    o.Workload.Trial.violations;
  let o_none =
    or_wedged (fun () ->
        BN.R.trial
          (module BN.T)
          ~params ~duration:400_000 ~budget:headroom ~max_steps:20_000_000
          ~n:6 ~range:512 ~ins:50 ~del:50 ~seed ())
  in
  Alcotest.(check bool) "none reports exhaustion" true o_none.Workload.Trial.oom

(* The same tight headroom for the new schemes: VBR frees blocks at retire
   time and Hyaline frees batches at every operation boundary, so neither
   needs the emergency path to stay inside the budget. *)
let oom_vbr_hyaline () =
  let seed = 31 in
  let headroom = 6 * 6 * params.Reclaim.Intf.Params.block_capacity in
  let o_vbr =
    or_wedged (fun () ->
        BV.R.trial
          (module BV.T)
          ~params ~duration:400_000 ~sanitize:true ~budget:headroom
          ~max_steps:20_000_000 ~n:6 ~range:512 ~ins:50 ~del:50 ~seed ())
  in
  Alcotest.(check bool) "vbr completes within the budget" false
    o_vbr.Workload.Trial.oom;
  Alcotest.(check (option int)) "vbr sanitizer silent" (Some 0)
    o_vbr.Workload.Trial.violations;
  let o_hyaline =
    or_wedged (fun () ->
        BH.R.trial
          (module BH.T)
          ~params ~duration:400_000 ~sanitize:true ~budget:headroom
          ~max_steps:20_000_000 ~n:6 ~range:512 ~ins:50 ~del:50 ~seed ())
  in
  Alcotest.(check bool) "hyaline completes within the budget" false
    o_hyaline.Workload.Trial.oom;
  Alcotest.(check (option int)) "hyaline sanitizer silent" (Some 0)
    o_hyaline.Workload.Trial.violations

(* ------------------------------------------------------------------ *)
(* Determinism: the same plan under the same schedule fires the same
   faults at the same points and yields an identical outcome. *)

let determinism ~policy () =
  let seed = 47 in
  let run () =
    let plan =
      Chaos.random_plan ~seed ~nprocs:6 [ `Crash; `Drop ]
    in
    or_wedged (fun () ->
        BP.R.trial
          (module BP.T)
          ~params ~duration:300_000 ~sanitize:true ~chaos:plan
          ~max_steps:20_000_000 ~policy ~n:6 ~range:512 ~ins:50 ~del:50 ~seed
          ())
  in
  let a = run () and b = run () in
  Alcotest.(check int) "ops equal" a.Workload.Trial.ops b.Workload.Trial.ops;
  Alcotest.(check int) "limbo equal" a.Workload.Trial.limbo
    b.Workload.Trial.limbo;
  Alcotest.(check int) "crashed equal" a.Workload.Trial.crashed
    b.Workload.Trial.crashed;
  match (a.Workload.Trial.chaos, b.Workload.Trial.chaos) with
  | Some sa, Some sb ->
      Alcotest.(check bool) "chaos summaries equal" true (sa = sb)
  | _ -> Alcotest.fail "missing chaos summary"

let () =
  Alcotest.run "chaos"
    [
      ("crash mid-op (debra+)", crash_cases);
      ( "crash mid-op (vbr)",
        [
          Alcotest.test_case "min-time schedule" `Quick
            (crash_mid_op_vbr ~policy:`Min_time ~seed:11);
          Alcotest.test_case "random-walk seed 3" `Quick
            (crash_mid_op_vbr ~policy:(`Random_walk 3) ~seed:3);
        ] );
      ( "crash mid-op (hyaline)",
        [
          Alcotest.test_case "min-time schedule" `Quick
            (crash_mid_op_hyaline ~policy:`Min_time ~seed:11);
          Alcotest.test_case "random-walk seed 3" `Quick
            (crash_mid_op_hyaline ~policy:(`Random_walk 3) ~seed:3);
        ] );
      ( "crash in handler",
        [ Alcotest.test_case "group-wide nth handler" `Quick crash_in_handler ]
      );
      ( "threadscan collector crash",
        [
          Alcotest.test_case "seed 5" `Quick
            (threadscan_crashed_collector ~seed:5);
          Alcotest.test_case "seed 6" `Quick
            (threadscan_crashed_collector ~seed:6);
        ] );
      ( "queue fifo oracle",
        [
          Alcotest.test_case "crash 2 of 4 procs" `Quick
            (queue_crash_fifo ~seed:13);
        ] );
      ( "bounded memory",
        [
          Alcotest.test_case "emergency drain" `Quick oom_emergency_drain;
          Alcotest.test_case "vbr and hyaline within budget" `Quick
            oom_vbr_hyaline;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "min-time" `Quick (determinism ~policy:`Min_time);
          Alcotest.test_case "random-walk" `Quick
            (determinism ~policy:(`Random_walk 9));
        ] );
    ]
