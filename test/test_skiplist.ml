(* Concurrent correctness of the lazy skip list (lock-based updates,
   lock-free searches) under the paper's reclamation schemes — including
   DEBRA+, which the lock-held-window masking in the implementation makes
   safe (the paper instead forbids the pairing): see the "debra+" section,
   which mirrors test_neutralize.ml's laggard/seed-sweep patterns. *)

let params =
  {
    Reclaim.Intf.Params.default with
    Reclaim.Intf.Params.block_capacity = 32;
    hp_slots = 48;
  }

module Harness (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module S = Ds.Skiplist.Make (RM)

  let setup ~n ~seed =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create ~params group heap in
    let rm = RM.create env in
    (group, heap, rm)

  let run_random ?(machine = Machine.Config.tiny ~contexts:4 ()) ~n ~ops
      ~range ~seed () =
    let group, _heap, rm = setup ~n ~seed in
    let s = S.create rm ~capacity:((n * ops) + range + 4) in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid; 123 |] in
      for _ = 1 to ops do
        let key = 1 + Random.State.int rng range in
        match Random.State.int rng 3 with
        | 0 ->
            if S.insert s ctx ~key ~value:(key * 3) then
              net.(pid) <- net.(pid) + 1
        | 1 -> if S.delete s ctx key then net.(pid) <- net.(pid) - 1
        | _ -> ignore (S.contains s ctx key)
      done
    in
    let _ = Sim.run ~machine group (Array.init n body) in
    S.check_invariants s;
    (Array.fold_left ( + ) 0 net, S.size s)

  let test_random ~n ~ops ~range ~seed () =
    let expect, got = run_random ~n ~ops ~range ~seed () in
    Alcotest.(check int) "net size" expect got

  let test_sequential () =
    let group, _heap, rm = setup ~n:1 ~seed:3 in
    let s = S.create rm ~capacity:4096 in
    let ctx = Runtime.Group.ctx group 0 in
    Alcotest.(check bool) "ins 10" true (S.insert s ctx ~key:10 ~value:1);
    Alcotest.(check bool) "ins 20" true (S.insert s ctx ~key:20 ~value:2);
    Alcotest.(check bool) "ins 15" true (S.insert s ctx ~key:15 ~value:3);
    Alcotest.(check bool) "dup" false (S.insert s ctx ~key:15 ~value:4);
    Alcotest.(check (list int)) "sorted" [ 10; 15; 20 ] (S.to_list s);
    Alcotest.(check (option int)) "get" (Some 3) (S.get s ctx 15);
    Alcotest.(check bool) "del" true (S.delete s ctx 15);
    Alcotest.(check bool) "del again" false (S.delete s ctx 15);
    Alcotest.(check bool) "contains" true (S.contains s ctx 20);
    S.check_invariants s;
    Alcotest.(check (list int)) "final" [ 10; 20 ] (S.to_list s)

  let test_churn () =
    let group, _heap, rm = setup ~n:1 ~seed:4 in
    let s = S.create rm ~capacity:100_000 in
    let ctx = Runtime.Group.ctx group 0 in
    for round = 1 to 100 do
      for key = 1 to 25 do
        ignore (S.insert s ctx ~key ~value:round)
      done;
      for key = 1 to 25 do
        Alcotest.(check bool) "delete" true (S.delete s ctx key)
      done
    done;
    Alcotest.(check int) "empty" 0 (S.size s);
    S.check_invariants s

  let cases name =
    [
      Alcotest.test_case (name ^ " sequential") `Quick test_sequential;
      Alcotest.test_case (name ^ " churn") `Quick test_churn;
      Alcotest.test_case (name ^ " 2p small") `Quick
        (test_random ~n:2 ~ops:300 ~range:16 ~seed:1);
      Alcotest.test_case (name ^ " 4p contended") `Quick
        (test_random ~n:4 ~ops:300 ~range:8 ~seed:2);
      Alcotest.test_case (name ^ " 4p wide") `Quick
        (test_random ~n:4 ~ops:300 ~range:512 ~seed:3);
      Alcotest.test_case (name ^ " 6p oversubscribed") `Quick
        (test_random ~n:6 ~ops:200 ~range:32 ~seed:4);
    ]
end

module RM_none =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Direct)
    (Reclaim.None_reclaimer.Make)
module RM_ebr =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Ebr.Make)
module RM_debra =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_hp =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hp.Make)
module RM_malloc =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Malloc) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
(* StackTrack's sandboxing needs arena-visible frees (generation bumps)
   to detect reclaimed-memory accesses, so it pairs with Recycle+Direct. *)
module RM_st =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Recycle) (Reclaim.Pool.Direct)
    (Reclaim.Stacktrack.Make)
module RM_ts =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Threadscan.Make)

module RM_dplus =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)

module H_none = Harness (RM_none)
module H_ebr = Harness (RM_ebr)
module H_debra = Harness (RM_debra)
module H_hp = Harness (RM_hp)
module H_malloc = Harness (RM_malloc)
module H_st = Harness (RM_st)
module H_ts = Harness (RM_ts)

(* DEBRA+ neutralization coverage.  Aggressive thresholds so signals
   actually fire; [S.create] flips the group to unreliable ack-based
   delivery itself (required by the masking protocol). *)
module Neutralize = struct
  module S = Ds.Skiplist.Make (RM_dplus)

  let nparams =
    {
      Reclaim.Intf.Params.default with
      Reclaim.Intf.Params.block_capacity = 16;
      incr_thresh = 1;
      suspect_blocks = 1;
    }

  let setup ~n ~seed =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create ~params:nparams group heap in
    let rm = RM_dplus.create env in
    (group, rm)

  (* One process stalls mid-operation often enough to draw signals; the
     run must actually neutralize, stay linearizable (net-size), and keep
     limbo bounded. *)
  let test_neutralized_under_stalls () =
    let n = 4 in
    let ops = 500 in
    let group, rm = setup ~n ~seed:57 in
    let s = S.create rm ~capacity:(8 * n * ops) in
    Alcotest.(check bool)
      "create switched the group to unreliable delivery" true
      group.Runtime.Group.signals_unreliable;
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| 23; pid |] in
      for i = 1 to ops do
        let key = 1 + Random.State.int rng 32 in
        (if Random.State.bool rng then (
           if S.insert s ctx ~key ~value:key then net.(pid) <- net.(pid) + 1)
         else if S.delete s ctx key then net.(pid) <- net.(pid) - 1);
        (* The laggard dawdles mid-stream, leaving an operation open (no
           lock held: masked windows defer the signal, so the open
           traversal is what draws it). *)
        if pid = 0 && i mod 5 = 0 then begin
          RM_dplus.leave_qstate rm ctx;
          ignore (Memory.Arena.read ctx s.S.arena s.S.head (S.f_next 0));
          Runtime.Ctx.stall ctx 50_000;
          (try ignore (Memory.Arena.read ctx s.S.arena s.S.head (S.f_next 0))
           with Runtime.Ctx.Neutralized -> ());
          RM_dplus.enter_qstate rm ctx
        end
      done
    in
    ignore
      (Sim.run ~machine:(Machine.Config.tiny ~contexts:2 ()) group
         (Array.init n body));
    S.check_invariants s;
    Alcotest.(check int) "net size" (Array.fold_left ( + ) 0 net) (S.size s);
    let neutralized =
      Runtime.Group.sum_stats group (fun st -> st.Runtime.Ctx.neutralized)
    in
    Alcotest.(check bool)
      (Printf.sprintf "neutralizations happened (%d)" neutralized)
      true (neutralized > 0);
    Alcotest.(check bool)
      (Printf.sprintf "limbo bounded (%d)" (RM_dplus.limbo_size rm))
      true
      (RM_dplus.limbo_size rm < 4 * n * 16 * 8)

  (* Many seeds, small scale: each seed is a distinct interleaving. *)
  let test_seed_sweep () =
    for seed = 40 to 52 do
      let n = 3 in
      let group, rm = setup ~n ~seed in
      let s = S.create rm ~capacity:30_000 in
      let net = Array.make n 0 in
      let body pid () =
        let ctx = Runtime.Group.ctx group pid in
        let rng = Random.State.make [| seed; pid; 9 |] in
        for _ = 1 to 150 do
          let key = 1 + Random.State.int rng 8 in
          if Random.State.bool rng then (
            if S.insert s ctx ~key ~value:key then net.(pid) <- net.(pid) + 1)
          else if S.delete s ctx key then net.(pid) <- net.(pid) - 1
        done
      in
      ignore
        (Sim.run ~machine:(Machine.Config.tiny ~contexts:2 ()) group
           (Array.init n body));
      S.check_invariants s;
      Alcotest.(check int)
        (Printf.sprintf "seed %d net size" seed)
        (Array.fold_left ( + ) 0 net)
        (S.size s)
    done

  let test_random_walk () =
    for seed = 1 to 12 do
      let n = 3 in
      let group, rm = setup ~n ~seed in
      let s = S.create rm ~capacity:30_000 in
      let net = Array.make n 0 in
      let body pid () =
        let ctx = Runtime.Group.ctx group pid in
        let rng = Random.State.make [| seed; pid; 11 |] in
        for _ = 1 to 120 do
          let key = 1 + Random.State.int rng 6 in
          if Random.State.bool rng then (
            if S.insert s ctx ~key ~value:key then net.(pid) <- net.(pid) + 1)
          else if S.delete s ctx key then net.(pid) <- net.(pid) - 1
        done
      in
      ignore
        (Sim.run
           ~machine:(Machine.Config.tiny ~contexts:3 ())
           ~policy:(`Random_walk (seed * 41))
           group (Array.init n body));
      S.check_invariants s;
      Alcotest.(check int)
        (Printf.sprintf "random-walk seed %d net size" seed)
        (Array.fold_left ( + ) 0 net)
        (S.size s)
    done

  let cases =
    [
      Alcotest.test_case "debra+ neutralized under stalls" `Quick
        test_neutralized_under_stalls;
      Alcotest.test_case "debra+ 13-seed interleaving sweep" `Quick
        test_seed_sweep;
      Alcotest.test_case "debra+ 12-seed random-walk schedules" `Quick
        test_random_walk;
    ]
end

let () =
  Alcotest.run "skiplist"
    [
      ("none", H_none.cases "none");
      ("ebr", H_ebr.cases "ebr");
      ("debra", H_debra.cases "debra");
      ("hp", H_hp.cases "hp");
      ("malloc+debra", H_malloc.cases "malloc");
      ("stacktrack", H_st.cases "stacktrack");
      ("threadscan", H_ts.cases "threadscan");
      ("debra+", Neutralize.cases);
    ]
