(* Unit and property tests for the bag substrate: blocks, blockbags, block
   pools, hash sets, and the shared bags. *)

let ctx () = Runtime.Ctx.make ~pid:0 ~nprocs:1 ~seed:1

let pool () = Bag.Block_pool.create ~block_capacity:8 ()

let test_block_basics () =
  let b = Bag.Block.create 4 in
  Alcotest.(check bool) "empty" true (Bag.Block.is_empty b);
  Bag.Block.push b 1;
  Bag.Block.push b 2;
  Alcotest.(check int) "pop lifo" 2 (Bag.Block.pop b);
  Alcotest.(check int) "pop lifo" 1 (Bag.Block.pop b);
  Alcotest.(check bool) "nil chain" true (Bag.Block.is_nil Bag.Block.nil)

let test_blockbag_add_pop () =
  let bag = Bag.Blockbag.create (pool ()) in
  for i = 1 to 100 do
    Bag.Blockbag.add bag i
  done;
  Alcotest.(check int) "size" 100 (Bag.Blockbag.size bag);
  let seen = ref 0 in
  let rec drain () =
    match Bag.Blockbag.pop bag with
    | Some _ ->
        incr seen;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "drained" 100 !seen;
  Alcotest.(check bool) "empty" true (Bag.Blockbag.is_empty bag)

let test_blockbag_move_full () =
  let bag = Bag.Blockbag.create (pool ()) in
  for i = 1 to 30 do
    Bag.Blockbag.add bag i
  done;
  (* capacity 8: 30 records = partial head (6) + 3 full blocks *)
  let moved_blocks = ref 0 in
  let moved = Bag.Blockbag.move_all_full_blocks bag ~into:(fun _ -> incr moved_blocks) in
  Alcotest.(check int) "records moved" 24 moved;
  Alcotest.(check int) "blocks moved" 3 !moved_blocks;
  Alcotest.(check int) "leftover" 6 (Bag.Blockbag.size bag)

let test_blockbag_invariant_after_block_splice () =
  let p = pool () in
  let bag = Bag.Blockbag.create p in
  let b = Bag.Block.create 8 in
  for i = 1 to 8 do
    Bag.Block.push b i
  done;
  Bag.Blockbag.add_block bag b;
  Bag.Blockbag.add bag 99;
  Alcotest.(check int) "size" 9 (Bag.Blockbag.size bag);
  let total = ref 0 in
  Bag.Blockbag.iter bag (fun _ -> incr total);
  Alcotest.(check int) "iter covers all" 9 !total

let test_cursor_partition () =
  (* Swap even records to the front, move full blocks after the partition
     point: exactly the DEBRA+ scan step. *)
  let bag = Bag.Blockbag.create (pool ()) in
  for i = 1 to 40 do
    Bag.Blockbag.add bag i
  done;
  let protected = Bag.Hash_set.create ~expected:8 in
  List.iter (fun k -> Bag.Hash_set.insert protected k) [ 2; 4; 6; 8 ];
  let it1 = Bag.Blockbag.cursor bag in
  let it2 = Bag.Blockbag.cursor bag in
  while not (Bag.Blockbag.at_end it1) do
    if Bag.Hash_set.mem protected (Bag.Blockbag.get it1) then begin
      Bag.Blockbag.swap it1 it2;
      Bag.Blockbag.advance it2
    end;
    Bag.Blockbag.advance it1
  done;
  let freed = ref [] in
  let moved =
    Bag.Blockbag.move_full_blocks_after bag it2 ~into:(fun b ->
        for i = 0 to b.Bag.Block.count - 1 do
          freed := b.Bag.Block.data.(i) :: !freed
        done)
  in
  Alcotest.(check bool) "moved some" true (moved > 0);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "protected %d not freed" k)
        false
        (List.mem k !freed))
    [ 2; 4; 6; 8 ];
  (* Every protected record must still be in the bag. *)
  let remaining = ref [] in
  Bag.Blockbag.iter bag (fun x -> remaining := x :: !remaining);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "protected %d still in bag" k)
        true
        (List.mem k !remaining))
    [ 2; 4; 6; 8 ];
  Alcotest.(check int) "nothing lost" 40 (moved + List.length !remaining)

let test_blockbag_drain_blocks () =
  let bag = Bag.Blockbag.create (pool ()) in
  for i = 1 to 30 do
    Bag.Blockbag.add bag i
  done;
  (* capacity 8: 30 records = partial head (6) + 3 full blocks *)
  let blocks = ref [] in
  let moved = Bag.Blockbag.drain_blocks bag ~into:(fun b -> blocks := b :: !blocks) in
  Alcotest.(check int) "records moved" 30 moved;
  Alcotest.(check int) "blocks handed out" 4 (List.length !blocks);
  Alcotest.(check bool) "bag empty" true (Bag.Blockbag.is_empty bag);
  Alcotest.(check int) "size zero" 0 (Bag.Blockbag.size bag);
  (* No empty block is ever handed out. *)
  List.iter
    (fun b ->
      Alcotest.(check bool) "handed block non-empty" false
        (Bag.Block.is_empty b))
    !blocks

(* The aliasing regression for the bulk retire paths: after [drain_blocks]
   the handed-out blocks and the bag share no physical block, the multiset
   of records is preserved exactly, and the bag remains usable — adds after
   the drain must not resurface in blocks the callee now owns. *)
let prop_blockbag_drain_no_aliasing =
  QCheck.Test.make
    ~name:"blockbag drain_blocks: exact multiset, no aliasing, bag reusable"
    ~count:300
    QCheck.(list small_nat)
    (fun xs ->
      let xs = List.map (fun x -> x + 1) xs in
      let bag = Bag.Blockbag.create (pool ()) in
      List.iter (Bag.Blockbag.add bag) xs;
      let handed = ref [] in
      let moved = Bag.Blockbag.drain_blocks bag ~into:(fun b -> handed := b :: !handed) in
      let drained = ref [] in
      List.iter
        (fun b ->
          for i = 0 to b.Bag.Block.count - 1 do
            drained := b.Bag.Block.data.(i) :: !drained
          done)
        !handed;
      moved = List.length xs
      && Bag.Blockbag.is_empty bag
      && List.sort compare xs = List.sort compare !drained
      && List.for_all
           (fun b -> not (List.memq b (Bag.Blockbag.blocks bag)))
           !handed
      && begin
           (* refill past one block: new records must stay in the bag, not
              leak into blocks the callee owns *)
           for i = 1 to 12 do
             Bag.Blockbag.add bag (1_000_000 + i)
           done;
           let refilled = ref [] in
           Bag.Blockbag.iter bag (fun x -> refilled := x :: !refilled);
           Bag.Blockbag.size bag = 12
           && List.length !refilled = 12
           && List.for_all (fun x -> x > 1_000_000) !refilled
           && List.for_all
                (fun b ->
                  List.for_all
                    (fun b' -> not (b == b'))
                    (Bag.Blockbag.blocks bag))
                !handed
         end)

let test_block_pool_recycles () =
  let p = pool () in
  let b1 = Bag.Block_pool.get p in
  Bag.Block_pool.put p b1;
  let b2 = Bag.Block_pool.get p in
  Alcotest.(check bool) "same block recycled" true (b1 == b2);
  Alcotest.(check int) "allocated once" 1 (Bag.Block_pool.allocated p);
  Alcotest.(check int) "recycled once" 1 (Bag.Block_pool.recycled p)

let test_shared_bag () =
  let c = ctx () in
  let sb = Bag.Shared_bag.create () in
  let b = Bag.Block.create 4 in
  for i = 1 to 4 do
    Bag.Block.push b i
  done;
  Bag.Shared_bag.push c sb b;
  Alcotest.(check int) "one block" 1 (Bag.Shared_bag.size_in_blocks sb);
  (match Bag.Shared_bag.pop c sb with
  | Some b' -> Alcotest.(check bool) "same block" true (b == b')
  | None -> Alcotest.fail "pop returned None");
  Alcotest.(check (option reject)) "empty" None
    (Option.map ignore (Bag.Shared_bag.pop c sb))

let test_shared_intbag () =
  let c = ctx () in
  let b = Bag.Shared_intbag.create () in
  for i = 1 to 50 do
    Bag.Shared_intbag.push c b i
  done;
  Alcotest.(check int) "size" 50 (Bag.Shared_intbag.size b);
  let sum = ref 0 in
  let n = Bag.Shared_intbag.drain c b (fun x -> sum := !sum + x) in
  Alcotest.(check int) "drained" 50 n;
  Alcotest.(check int) "sum" (50 * 51 / 2) !sum

(* qcheck properties *)

let prop_hashset =
  QCheck.Test.make ~name:"hash_set agrees with a reference set" ~count:200
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let hs = Bag.Hash_set.create ~expected:4 in
      let module IS = Set.Make (Int) in
      let reference =
        List.fold_left
          (fun acc k ->
            Bag.Hash_set.insert hs (k + 1);
            IS.add (k + 1) acc)
          IS.empty keys
      in
      IS.cardinal reference = Bag.Hash_set.population hs
      && IS.for_all (fun k -> Bag.Hash_set.mem hs k) reference
      && not (Bag.Hash_set.mem hs 2000))

let prop_hashset_clear =
  QCheck.Test.make ~name:"hash_set clear really clears" ~count:100
    QCheck.(list (int_bound 100))
    (fun keys ->
      let hs = Bag.Hash_set.create ~expected:4 in
      List.iter (fun k -> Bag.Hash_set.insert hs (k + 1)) keys;
      Bag.Hash_set.clear hs;
      List.for_all (fun k -> not (Bag.Hash_set.mem hs (k + 1))) keys)

let prop_blockbag_multiset =
  QCheck.Test.make ~name:"blockbag preserves the multiset of records"
    ~count:200
    QCheck.(list small_nat)
    (fun xs ->
      let xs = List.map (fun x -> x + 1) xs in
      let bag = Bag.Blockbag.create (pool ()) in
      List.iter (Bag.Blockbag.add bag) xs;
      let out = ref [] in
      Bag.Blockbag.iter bag (fun x -> out := x :: !out);
      List.sort compare xs = List.sort compare !out)

(* O(1) bulk transfer: source emptied, destination counts the sum, the
   multiset of records is the union, no block aliased between the bags,
   and the everything-after-head-is-full invariant survives on both. *)
let prop_blockbag_transfer =
  QCheck.Test.make ~name:"blockbag transfer: empty src, summed dst, no aliasing"
    ~count:300
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (xs, ys) ->
      let xs = List.map (fun x -> x + 1) xs
      and ys = List.map (fun y -> y + 1_000_000) ys in
      let p = pool () in
      let src = Bag.Blockbag.create p and dst = Bag.Blockbag.create p in
      List.iter (Bag.Blockbag.add src) xs;
      List.iter (Bag.Blockbag.add dst) ys;
      Bag.Blockbag.transfer src ~into:dst;
      let full_after_head b =
        match Bag.Blockbag.blocks b with
        | [] -> false (* a bag always owns its head block *)
        | _head :: rest -> List.for_all Bag.Block.is_full rest
      in
      let out = ref [] in
      Bag.Blockbag.iter dst (fun x -> out := x :: !out);
      Bag.Blockbag.is_empty src
      && Bag.Blockbag.size src = 0
      && Bag.Blockbag.size dst = List.length xs + List.length ys
      && List.sort compare (xs @ ys) = List.sort compare !out
      && List.for_all
           (fun b ->
             not (List.memq b (Bag.Blockbag.blocks dst)))
           (Bag.Blockbag.blocks src)
      && full_after_head src && full_after_head dst
      (* src stays usable: refill and drain without disturbing dst *)
      && begin
           Bag.Blockbag.add src 7;
           Bag.Blockbag.pop src = Some 7
           && Bag.Blockbag.size dst = List.length xs + List.length ys
         end)

let () =
  Alcotest.run "bag"
    [
      ( "block",
        [
          Alcotest.test_case "basics" `Quick test_block_basics;
          Alcotest.test_case "pool recycles" `Quick test_block_pool_recycles;
        ] );
      ( "blockbag",
        [
          Alcotest.test_case "add/pop" `Quick test_blockbag_add_pop;
          Alcotest.test_case "move full blocks" `Quick test_blockbag_move_full;
          Alcotest.test_case "splice block" `Quick
            test_blockbag_invariant_after_block_splice;
          Alcotest.test_case "cursor partition" `Quick test_cursor_partition;
          Alcotest.test_case "drain blocks" `Quick test_blockbag_drain_blocks;
          QCheck_alcotest.to_alcotest prop_blockbag_multiset;
          QCheck_alcotest.to_alcotest prop_blockbag_drain_no_aliasing;
          QCheck_alcotest.to_alcotest prop_blockbag_transfer;
        ] );
      ( "shared",
        [
          Alcotest.test_case "shared bag" `Quick test_shared_bag;
          Alcotest.test_case "shared intbag" `Quick test_shared_intbag;
        ] );
      ( "hash_set",
        [
          QCheck_alcotest.to_alcotest prop_hashset;
          QCheck_alcotest.to_alcotest prop_hashset_clear;
        ] );
    ]
