(* The execution-backend layer (lib/exec):

   - Exec.Clock unit conversions round-trip, and the Mops/s computation
     matches its definition on both clock scales;
   - the domains backend runs every reclamation scheme on real OCaml 5
     domains through the same RUNNER face the trial pipeline uses, with
     post-run invariant checks and a flush-then-count pass over the leak
     ledger;
   - a crashing domain is marked in the group (ESRCH semantics) while its
     survivors finish;
   - the Sim_exec refactor left the deterministic schedule bit-for-bit
     unchanged: full trials through Workload.Schemes reproduce outcomes
     captured on the pre-refactor tree (same ops, virtual time, limbo,
     neutralization and signal counts). *)

(* ------------------------------------------------------------------ *)
(* Exec.Clock                                                          *)

let feq = Alcotest.float 1e-9

let test_clock_scales () =
  Alcotest.(check feq) "sim cycles/s" 3.0e9 Exec.Clock.sim.cycles_per_second;
  Alcotest.(check feq) "wall cycles/s" 1.0e9 Exec.Clock.wall.cycles_per_second;
  (* One simulated cycle is 1/3 ns; one wall cycle is exactly 1 ns. *)
  Alcotest.(check feq) "sim 3 cycles = 1 ns" 1.0
    (Exec.Clock.ns_of_cycles Exec.Clock.sim 3);
  Alcotest.(check feq) "wall 1 cycle = 1 ns" 1.0
    (Exec.Clock.ns_of_cycles Exec.Clock.wall 1)

let test_clock_round_trip () =
  List.iter
    (fun clock ->
      List.iter
        (fun s ->
          Alcotest.(check feq)
            (Printf.sprintf "%s: %g s round-trips" clock.Exec.Clock.name s)
            s
            (Exec.Clock.seconds_of_cycles clock
               (Exec.Clock.cycles_of_seconds clock s)))
        [ 0.001; 0.5; 2.0 ])
    [ Exec.Clock.sim; Exec.Clock.wall ]

let test_clock_mops () =
  (* 2M ops in one simulated second (3e9 cycles) is 2 Mops/s; the same op
     count over the same cycle count on the wall clock is 3 seconds'
     worth, so a third of the rate.  This is the constant/comment mismatch
     the old Trial.cycles_per_second invited: the conversion now lives
     with the clock that defines it. *)
  Alcotest.(check feq) "sim" 2.0
    (Exec.Clock.mops Exec.Clock.sim ~ops:2_000_000 ~cycles:3_000_000_000);
  Alcotest.(check feq) "wall" (2.0 /. 3.0)
    (Exec.Clock.mops Exec.Clock.wall ~ops:2_000_000 ~cycles:3_000_000_000);
  Alcotest.(check feq) "zero cycles" 0.0
    (Exec.Clock.mops Exec.Clock.sim ~ops:5 ~cycles:0);
  (* Mops/s round-trips back to the op count on both scales. *)
  List.iter
    (fun clock ->
      let ops = 123_457 and cycles = 987_654_321 in
      let mops = Exec.Clock.mops clock ~ops ~cycles in
      Alcotest.(check feq)
        (clock.Exec.Clock.name ^ ": ops recovered")
        (float_of_int ops)
        (mops *. 1.0e6 *. Exec.Clock.seconds_of_cycles clock cycles))
    [ Exec.Clock.sim; Exec.Clock.wall ]

(* ------------------------------------------------------------------ *)
(* Domains smoke: every scheme on real domains through the RUNNER face *)

(* Small hosts: clamp domain counts to the runtime's recommendation, and
   skip (with a printed reason) the tests whose point is real parallelism
   when even two domains are not recommended. *)
let avail = Domain.recommended_domain_count ()
let clamp n = min n (max 1 avail)

let par_case name speed f =
  Alcotest.test_case name speed (fun () ->
      if avail < 2 then begin
        Printf.printf
          "SKIP %s: Domain.recommended_domain_count () = %d (< 2), no real \
           parallelism on this host\n%!"
          name avail;
        Alcotest.skip ()
      end
      else f ())

module RM_debra =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_dplus =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)
module RM_hp =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hp.Make)

(* VBR recycles through the arena so every free bumps the slot's
   generation (the version); Hyaline batches retires behind shared
   per-batch reference counters. *)
module RM_vbr =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Recycle) (Reclaim.Pool.Direct)
    (Reclaim.Vbr.Make)
module RM_hyaline =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hyaline.Make)

(* Quiescent shutdown, then flush: every grace period expires, so the
   epoch-based schemes must drain limbo to exactly zero — any remainder is
   a leaked record.  HP frees whatever no hazard slot still covers. *)
let flush_and_count (type rm) (module RM : Reclaim.Intf.RECORD_MANAGER
                               with type t = rm) (rm : rm) group ~strict =
  for _ = 1 to 30 do
    Array.iter
      (fun ctx ->
        RM.leave_qstate rm ctx;
        RM.enter_qstate rm ctx)
      group.Runtime.Group.ctxs
  done;
  RM.flush rm (Runtime.Group.ctx group 0);
  if strict then
    Alcotest.(check int) "limbo drained by flush" 0 (RM.limbo_size rm)
  else begin
    (* HP-style: at most one record per hazard slot may be pinned. *)
    let bound =
      Array.length group.Runtime.Group.ctxs
      * Reclaim.Intf.Params.default.Reclaim.Intf.Params.hp_slots
    in
    Alcotest.(check bool)
      (Printf.sprintf "limbo residue within hazard bound (%d <= %d)"
         (RM.limbo_size rm) bound)
      true
      (RM.limbo_size rm <= bound)
  end

module Domains_smoke (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module Stack = Ds.Treiber_stack.Make (RM)
  module List_s = Ds.Hm_list.Make (RM)

  let exec () = Exec.Domain_exec.make ()

  (* Treiber stack: pushes minus successful pops must equal the final
     size (conservation — no lost or duplicated nodes). *)
  let test_stack ~n ~ops ~seed ~strict () =
    let (module E) = exec () in
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let rm = RM.create (Reclaim.Intf.Env.create group heap) in
    let s = Stack.create rm ~capacity:((n * ops) + 2) in
    let pushed = Array.make n 0 and popped = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid |] in
      for i = 1 to ops do
        if Random.State.bool rng then begin
          Stack.push s ctx ((pid * 1_000_000) + i);
          pushed.(pid) <- pushed.(pid) + 1
        end
        else if Option.is_some (Stack.pop s ctx) then
          popped.(pid) <- popped.(pid) + 1
      done
    in
    let r = E.run group (Array.init n body) in
    Alcotest.(check bool) "wall time advanced" true (r.Exec.Intf.wall_seconds > 0.);
    let total a = Array.fold_left ( + ) 0 a in
    Alcotest.(check int) "nodes conserved"
      (total pushed - total popped)
      (Stack.size s);
    flush_and_count (module RM) rm group ~strict

  (* HM list: structural invariants hold and the net insert/delete balance
     matches the final size. *)
  let test_list ~n ~ops ~range ~seed ~strict () =
    let (module E) = exec () in
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let rm = RM.create (Reclaim.Intf.Env.create group heap) in
    let l = List_s.create rm ~capacity:(range + (n * ops) + 2) in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid |] in
      for _ = 1 to ops do
        let key = Random.State.int rng range in
        match Random.State.int rng 3 with
        | 0 ->
            if List_s.insert l ctx ~key ~value:key then
              net.(pid) <- net.(pid) + 1
        | 1 -> if List_s.delete l ctx key then net.(pid) <- net.(pid) - 1
        | _ -> ignore (List_s.contains l ctx key)
      done
    in
    ignore (E.run group (Array.init n body));
    List_s.check_invariants l;
    Alcotest.(check int) "net size" (Array.fold_left ( + ) 0 net)
      (List_s.size l);
    flush_and_count (module RM) rm group ~strict
end

module D_debra = Domains_smoke (RM_debra)
module D_dplus = Domains_smoke (RM_dplus)
module D_hp = Domains_smoke (RM_hp)
module D_vbr = Domains_smoke (RM_vbr)
module D_hyaline = Domains_smoke (RM_hyaline)

(* A domain that dies mid-run is marked crashed in the group while its
   survivors run to completion — the ESRCH wiring Domain_exec promotes
   from the simulator. *)
let test_domain_crash_marked () =
  let (module E) = Exec.Domain_exec.make () in
  let n = 3 in
  let group = Runtime.Group.create ~seed:13 n in
  let finished = Array.make n false in
  let body pid () =
    if pid = 1 then raise Runtime.Ctx.Crashed
    else begin
      (* Outlive the victim so survivors observe the mark mid-run. *)
      Unix.sleepf 0.02;
      finished.(pid) <- Runtime.Group.is_crashed group 1
    end
  in
  ignore (E.run group (Array.init n body));
  Alcotest.(check bool) "victim marked" true (Runtime.Group.is_crashed group 1);
  Alcotest.(check bool) "survivors saw ESRCH" true (finished.(0) && finished.(2));
  Alcotest.(check bool) "survivors alive" true
    (not (Runtime.Group.is_crashed group 0 || Runtime.Group.is_crashed group 2))

(* The backend advertises what it cannot do — the trial pipeline keys its
   graceful degradation off these. *)
let test_backend_contract () =
  let (module D) = Exec.Domain_exec.make () in
  Alcotest.(check bool) "domains non-deterministic" false D.deterministic;
  Alcotest.(check bool) "domains declares limits" true (D.limitations <> []);
  Alcotest.(check string) "domains clock" "wall" D.clock.Exec.Clock.name;
  let (module S) = Exec.Sim_exec.make () in
  Alcotest.(check bool) "sim deterministic" true S.deterministic;
  Alcotest.(check (list string)) "sim unrestricted" [] S.limitations;
  Alcotest.(check string) "sim clock" "sim" S.clock.Exec.Clock.name;
  (match Exec.Backend.of_string "domains" with
  | Ok `Domains -> ()
  | _ -> Alcotest.fail "parse domains");
  (match Exec.Backend.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bogus backend")

(* ------------------------------------------------------------------ *)
(* Sim equivalence: the refactored pipeline reproduces pre-refactor     *)
(* outcomes exactly                                                     *)

let sim_cfg ~duration ~n ~range ~seed =
  {
    Workload.Schemes.backend = `Sim;
    machine = Machine.Config.intel_i7_4770;
    params = Reclaim.Intf.Params.default;
    duration;
    n;
    range;
    ins = 50;
    del = 50;
    seed;
    capacity = range + 400_000;
    sanitize = false;
    telemetry = None;
    stall = None;
    chaos = None;
    budget = -1;
    max_steps = None;
    history = None;
  }

let golden ~ds ~scheme ~cfg ~ops ~virtual_time ~limbo ?neutralized
    ?signals_sent ?allocs () =
  let r =
    match Workload.Schemes.find_runner ~ds ~variant:"exp2" ~scheme with
    | Some r -> r
    | None -> Alcotest.failf "no runner for %s/%s" ds scheme
  in
  let o = r.Workload.Schemes.run cfg in
  let tag what = Printf.sprintf "%s/%s %s" ds scheme what in
  Alcotest.(check string) (tag "backend") "sim" o.Workload.Trial.backend;
  Alcotest.(check int) (tag "ops") ops o.Workload.Trial.ops;
  Alcotest.(check int) (tag "virtual_time") virtual_time
    o.Workload.Trial.virtual_time;
  Alcotest.(check int) (tag "limbo") limbo o.Workload.Trial.limbo;
  Option.iter
    (fun v ->
      Alcotest.(check int) (tag "neutralized") v o.Workload.Trial.neutralized)
    neutralized;
  Option.iter
    (fun v ->
      Alcotest.(check int) (tag "signals_sent") v
        o.Workload.Trial.signals_sent)
    signals_sent;
  Option.iter
    (fun v -> Alcotest.(check int) (tag "allocs") v o.Workload.Trial.allocs)
    allocs

(* The expected values were captured by running these exact configurations
   on the pre-refactor tree (direct Sim.run inside Trial).  If any drifts,
   the executor refactor changed the deterministic schedule. *)
let test_sim_golden_debra_plus () =
  golden ~ds:"bst" ~scheme:"debra+"
    ~cfg:(sim_cfg ~duration:300_000 ~n:4 ~range:2_000 ~seed:11)
    ~ops:1470 ~virtual_time:300_739 ~limbo:1838 ~neutralized:3
    ~signals_sent:4 ~allocs:1466 ()

let test_sim_golden_hp () =
  golden ~ds:"bst" ~scheme:"hp"
    ~cfg:(sim_cfg ~duration:300_000 ~n:4 ~range:2_000 ~seed:11)
    ~ops:719 ~virtual_time:301_253 ~limbo:795 ~neutralized:0 ~signals_sent:0
    ~allocs:691 ()

let test_sim_golden_debra_list () =
  golden ~ds:"list" ~scheme:"debra"
    ~cfg:(sim_cfg ~duration:200_000 ~n:3 ~range:200 ~seed:5)
    ~ops:894 ~virtual_time:200_307 ~limbo:224 ()

(* Same cfg twice through the executor: outcomes identical field-for-field
   where determinism promises it. *)
let test_sim_repeatable () =
  let run () =
    let r =
      Option.get
        (Workload.Schemes.find_runner ~ds:"bst" ~variant:"exp2"
           ~scheme:"debra")
    in
    r.Workload.Schemes.run (sim_cfg ~duration:250_000 ~n:4 ~range:512 ~seed:3)
  in
  let a = run () and b = run () in
  let open Workload.Trial in
  Alcotest.(check int) "ops" a.ops b.ops;
  Alcotest.(check int) "virtual_time" a.virtual_time b.virtual_time;
  Alcotest.(check int) "limbo" a.limbo b.limbo;
  Alcotest.(check int) "allocs" a.allocs b.allocs;
  Alcotest.(check int) "frees" a.frees b.frees;
  Alcotest.(check int) "bytes_claimed" a.bytes_claimed b.bytes_claimed

let () =
  Alcotest.run "exec"
    [
      ( "clock",
        [
          Alcotest.test_case "scales" `Quick test_clock_scales;
          Alcotest.test_case "round trip" `Quick test_clock_round_trip;
          Alcotest.test_case "mops" `Quick test_clock_mops;
        ] );
      ( "domains-smoke",
        [
          par_case "debra stack, 4 domains" `Quick
            (D_debra.test_stack ~n:(clamp 4) ~ops:2000 ~seed:21 ~strict:true);
          par_case "debra list, 3 domains" `Quick
            (D_debra.test_list ~n:(clamp 3) ~ops:1500 ~range:64 ~seed:22
               ~strict:true);
          par_case "debra+ stack, 3 domains" `Quick
            (D_dplus.test_stack ~n:(clamp 3) ~ops:2000 ~seed:23 ~strict:true);
          par_case "debra+ list, 4 domains" `Quick
            (D_dplus.test_list ~n:(clamp 4) ~ops:1500 ~range:32 ~seed:24
               ~strict:true);
          par_case "hp stack, 4 domains" `Quick
            (D_hp.test_stack ~n:(clamp 4) ~ops:2000 ~seed:25 ~strict:false);
          par_case "hp list, 2 domains" `Quick
            (D_hp.test_list ~n:(clamp 2) ~ops:1500 ~range:64 ~seed:26
               ~strict:false);
          par_case "vbr stack, 4 domains" `Quick
            (D_vbr.test_stack ~n:(clamp 4) ~ops:2000 ~seed:27 ~strict:true);
          par_case "vbr list, 3 domains" `Quick
            (D_vbr.test_list ~n:(clamp 3) ~ops:1500 ~range:64 ~seed:28
               ~strict:true);
          par_case "hyaline stack, 3 domains" `Quick
            (D_hyaline.test_stack ~n:(clamp 3) ~ops:2000 ~seed:29 ~strict:true);
          par_case "hyaline list, 4 domains" `Quick
            (D_hyaline.test_list ~n:(clamp 4) ~ops:1500 ~range:32 ~seed:30
               ~strict:true);
        ] );
      ( "runner",
        [
          Alcotest.test_case "crash marked in group" `Quick
            test_domain_crash_marked;
          Alcotest.test_case "backend contracts" `Quick test_backend_contract;
        ] );
      ( "sim-equivalence",
        [
          Alcotest.test_case "bst debra+ golden" `Quick
            test_sim_golden_debra_plus;
          Alcotest.test_case "bst hp golden" `Quick test_sim_golden_hp;
          Alcotest.test_case "list debra golden" `Quick
            test_sim_golden_debra_list;
          Alcotest.test_case "repeatable" `Quick test_sim_repeatable;
        ] );
    ]
