(* Unit tests for the reclamation schemes themselves: epoch mechanics,
   limbo-bag rotation, HP scanning, pool recycling, allocator behaviour —
   plus the reproduction of the paper's §3 ThreadScan unsoundness scenario
   and the grace-period guarantee tests. *)

open Reclaim

let params_tiny =
  { Intf.Params.default with Intf.Params.block_capacity = 4; incr_thresh = 1 }

module RM_debra = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra.Make)
(* Protection-survival tests use the Direct pool: the bump allocator bumps
   the slot generation on deallocate, so [Arena.is_valid] is a faithful
   "was it freed?" oracle.  (The Shared pool reuses records without freeing
   them, which is correct but undetectable through generations.) *)
module RM_debra_plus =
  Record_manager.Make (Alloc.Bump) (Pool.Direct) (Debra_plus.Make)
module RM_hp = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Hp.Make)
module RM_ebr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Ebr.Make)
module RM_ts = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Threadscan.Make)
module RM_qsbr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Qsbr.Make)
module RM_rc = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Rc.Make)

module Setup (RM : Intf.RECORD_MANAGER) = struct
  let make ?(params = params_tiny) ?(n = 2) ?(seed = 1) () =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Intf.Env.create ~params group heap in
    let rm = RM.create env in
    let arena =
      Memory.Heap.new_arena heap ~name:"u" ~mut_fields:1 ~const_fields:1
        ~capacity:65536
    in
    (group, heap, env, rm, arena)
end

module S_debra = Setup (RM_debra)
module S_debra_plus = Setup (RM_debra_plus)
module S_hp = Setup (RM_hp)
module S_ebr = Setup (RM_ebr)
module S_ts = Setup (RM_ts)
module S_qsbr = Setup (RM_qsbr)
module S_rc = Setup (RM_rc)

(* DEBRA: a retired record is not reused until the epoch has advanced twice
   past its retire epoch, and is reused afterwards. *)
let test_debra_grace_period () =
  let group, heap, _env, rm, arena = S_debra.make () in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  (* Retire enough records to fill blocks. *)
  RM_debra.leave_qstate rm ctx;
  let retired =
    List.init 8 (fun i ->
        let p = RM_debra.alloc rm ctx arena in
        Memory.Arena.set_const ctx arena p 0 i;
        RM_debra.retire rm ctx p;
        p)
  in
  RM_debra.enter_qstate rm ctx;
  Alcotest.(check int) "all in limbo" 8 (RM_debra.limbo_size rm);
  (* All retired records are still valid (allocated). *)
  List.iter (fun p -> Memory.Arena.validate arena p) retired;
  (* Drive both processes through ops so the epoch advances several times. *)
  for _ = 1 to 40 do
    RM_debra.leave_qstate rm ctx;
    RM_debra.enter_qstate rm ctx;
    RM_debra.leave_qstate rm ctx1;
    RM_debra.enter_qstate rm ctx1
  done;
  ignore heap;
  Alcotest.(check bool)
    (Printf.sprintf "limbo drained after epochs (got %d)"
       (RM_debra.limbo_size rm))
    true
    (RM_debra.limbo_size rm < 8)

(* DEBRA partial fault tolerance: a process that is QUIESCENT but never
   running again does not stop reclamation. *)
let test_debra_quiescent_idler_harmless () =
  let group, _heap, _env, rm, arena = S_debra.make ~n:3 () in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  (* Process 2 never does anything (initially quiescent). *)
  RM_debra.leave_qstate rm ctx;
  for i = 1 to 8 do
    let p = RM_debra.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_debra.retire rm ctx p
  done;
  RM_debra.enter_qstate rm ctx;
  for _ = 1 to 40 do
    RM_debra.leave_qstate rm ctx;
    RM_debra.enter_qstate rm ctx;
    RM_debra.leave_qstate rm ctx1;
    RM_debra.enter_qstate rm ctx1
  done;
  Alcotest.(check bool) "reclaimed despite idler" true
    (RM_debra.limbo_size rm < 8)

(* ...but a process stalled NON-quiescent stops DEBRA's reclamation. *)
let test_debra_nonquiescent_blocks () =
  let group, _heap, _env, rm, arena = S_debra.make ~n:2 () in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  RM_debra.leave_qstate rm ctx1;
  (* ctx1 now stays non-quiescent forever *)
  RM_debra.leave_qstate rm ctx;
  for i = 1 to 8 do
    let p = RM_debra.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_debra.retire rm ctx p
  done;
  RM_debra.enter_qstate rm ctx;
  for _ = 1 to 60 do
    RM_debra.leave_qstate rm ctx;
    RM_debra.enter_qstate rm ctx
  done;
  Alcotest.(check int) "nothing reclaimed" 8 (RM_debra.limbo_size rm)

(* DEBRA+ in the same situation neutralizes the laggard (here: the stalled
   process would handle the signal at its next access; since it never runs,
   the epoch simply advances past it). *)
let test_debra_plus_neutralizes_laggard () =
  let params = { params_tiny with Intf.Params.suspect_blocks = 1 } in
  let group, _heap, _env, rm, arena = S_debra_plus.make ~params ~n:2 () in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  RM_debra_plus.leave_qstate rm ctx1;
  RM_debra_plus.leave_qstate rm ctx;
  for i = 1 to 16 do
    let p = RM_debra_plus.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_debra_plus.retire rm ctx p
  done;
  RM_debra_plus.enter_qstate rm ctx;
  for _ = 1 to 60 do
    RM_debra_plus.leave_qstate rm ctx;
    RM_debra_plus.enter_qstate rm ctx
  done;
  Alcotest.(check bool)
    (Printf.sprintf "reclaimed past the laggard (limbo %d)"
       (RM_debra_plus.limbo_size rm))
    true
    (RM_debra_plus.limbo_size rm < 16);
  Alcotest.(check bool) "signals were sent" true
    (ctx.Runtime.Ctx.stats.Runtime.Ctx.signals_sent > 0)

(* DEBRA+ RProtected records survive reclamation scans. *)
let test_debra_plus_rprotect_survives () =
  let params = { params_tiny with Intf.Params.suspect_blocks = 1 } in
  let group, _heap, _env, rm, arena = S_debra_plus.make ~params ~n:2 () in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  RM_debra_plus.leave_qstate rm ctx;
  let victim = RM_debra_plus.alloc rm ctx arena in
  Memory.Arena.set_const ctx arena victim 0 99;
  RM_debra_plus.rprotect rm ctx victim;
  Alcotest.(check bool) "is_rprotected" true
    (RM_debra_plus.is_rprotected rm ctx victim);
  RM_debra_plus.retire rm ctx victim;
  for i = 1 to 32 do
    let p = RM_debra_plus.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_debra_plus.retire rm ctx p
  done;
  RM_debra_plus.enter_qstate rm ctx;
  for _ = 1 to 80 do
    RM_debra_plus.leave_qstate rm ctx;
    RM_debra_plus.enter_qstate rm ctx;
    RM_debra_plus.leave_qstate rm ctx1;
    RM_debra_plus.enter_qstate rm ctx1
  done;
  (* The protected record must still be allocated. *)
  Memory.Arena.validate arena victim;
  RM_debra_plus.runprotect_all rm ctx;
  Alcotest.(check bool) "no longer rprotected" false
    (RM_debra_plus.is_rprotected rm ctx victim)

(* HP: a protected record survives a scan; unprotected retired records are
   reclaimed once the retire threshold is crossed. *)
let test_hp_scan_respects_announcements () =
  let params = { params_tiny with Intf.Params.hp_retire_factor = 1; block_capacity = 4 } in
  let group, _heap, _env, rm, arena = S_hp.make ~params ~n:1 () in
  let ctx = Runtime.Group.ctx group 0 in
  RM_hp.leave_qstate rm ctx;
  let victim = RM_hp.alloc rm ctx arena in
  Memory.Arena.set_const ctx arena victim 0 1;
  Alcotest.(check bool) "protect" true
    (RM_hp.protect rm ctx victim ~verify:(fun () -> true));
  RM_hp.retire rm ctx victim;
  (* Push way past the scan threshold. *)
  for i = 1 to 64 do
    let p = RM_hp.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_hp.retire rm ctx p
  done;
  (* victim still protected -> still allocated *)
  Memory.Arena.validate arena victim;
  Alcotest.(check bool) "scan freed the rest" true (RM_hp.limbo_size rm < 65);
  (* Release and push again: now it must eventually be reclaimed. *)
  RM_hp.unprotect rm ctx victim;
  for i = 1 to 64 do
    let p = RM_hp.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_hp.retire rm ctx p
  done;
  Alcotest.(check bool) "victim reclaimed after unprotect" false
    (Memory.Arena.is_valid arena victim)

(* EBR reclaims across a grace period. *)
let test_ebr_reclaims () =
  let group, _heap, _env, rm, arena = S_ebr.make ~n:2 () in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  RM_ebr.leave_qstate rm ctx;
  for i = 1 to 8 do
    let p = RM_ebr.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_ebr.retire rm ctx p
  done;
  RM_ebr.enter_qstate rm ctx;
  for _ = 1 to 20 do
    RM_ebr.leave_qstate rm ctx;
    RM_ebr.enter_qstate rm ctx;
    RM_ebr.leave_qstate rm ctx1;
    RM_ebr.enter_qstate rm ctx1
  done;
  Alcotest.(check int) "all reclaimed" 0 (RM_ebr.limbo_size rm)

(* Paper §4: "allowing each process to keep up to 16 blocks in its block
   pool reduces the number of blocks allocated by more than 99.9%".  Drive
   heavy retire/reclaim churn and check the recycle ratio dominates. *)
let test_block_pool_recycle_ratio () =
  let params = { Intf.Params.default with Intf.Params.block_capacity = 8; incr_thresh = 1 } in
  let group = Runtime.Group.create ~seed:3 2 in
  let heap = Memory.Heap.create () in
  let env = Intf.Env.create ~params group heap in
  let rm = RM_debra.create env in
  let arena =
    Memory.Heap.new_arena heap ~name:"churn" ~mut_fields:1 ~const_fields:1
      ~capacity:300_000
  in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  let churn rounds =
    for i = 1 to rounds do
      RM_debra.leave_qstate rm ctx;
      let p = RM_debra.alloc rm ctx arena in
      Memory.Arena.set_const ctx arena p 0 i;
      RM_debra.retire rm ctx p;
      RM_debra.enter_qstate rm ctx;
      RM_debra.leave_qstate rm ctx1;
      RM_debra.enter_qstate rm ctx1
    done
  in
  let totals () =
    Array.fold_left
      (fun (a, r) bp ->
        (a + Bag.Block_pool.allocated bp, r + Bag.Block_pool.recycled bp))
      (0, 0) env.Intf.Env.block_pools
  in
  (* Warm up past the one-off bag-creation allocations, then measure. *)
  churn 2_000;
  let fresh0, _ = totals () in
  churn 20_000;
  let fresh1, recycled1 = totals () in
  let steady_fresh = fresh1 - fresh0 in
  Alcotest.(check bool)
    (Printf.sprintf
       "steady state allocates almost no blocks (%d fresh vs %d recycled)"
       steady_fresh recycled1)
    true
    (steady_fresh * 1000 < recycled1)

(* QSBR frees a batch only after every process has passed a quiescent
   point following the batch's close. *)
let test_qsbr_waits_for_quiescent_points () =
  let params = { params_tiny with Intf.Params.check_thresh = 1 } in
  let group, _heap, _env, rm, arena = S_qsbr.make ~params ~n:2 () in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  RM_qsbr.leave_qstate rm ctx;
  for i = 1 to 8 do
    let p = RM_qsbr.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_qsbr.retire rm ctx p
  done;
  (* Only process 0 declares quiescent points: nothing may be freed. *)
  for _ = 1 to 30 do
    RM_qsbr.enter_qstate rm ctx
  done;
  Alcotest.(check int) "blocked on process 1" 8 (RM_qsbr.limbo_size rm);
  (* Process 1 passes a quiescent point: the batch becomes safe. *)
  RM_qsbr.enter_qstate rm ctx1;
  for _ = 1 to 5 do
    RM_qsbr.enter_qstate rm ctx
  done;
  Alcotest.(check int) "freed after grace" 0 (RM_qsbr.limbo_size rm)

(* RC: a held reference pins the record; releasing it lets a scan free
   it. *)
let test_rc_reference_pins () =
  let group, _heap, _env, rm, arena = S_rc.make ~n:1 () in
  let ctx = Runtime.Group.ctx group 0 in
  RM_rc.leave_qstate rm ctx;
  let victim = RM_rc.alloc rm ctx arena in
  Memory.Arena.set_const ctx arena victim 0 1;
  Alcotest.(check bool) "protect" true
    (RM_rc.protect rm ctx victim ~verify:(fun () -> true));
  Alcotest.(check bool) "counted" true (RM_rc.is_protected rm ctx victim);
  RM_rc.retire rm ctx victim;
  for i = 1 to 32 do
    let p = RM_rc.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_rc.retire rm ctx p
  done;
  Memory.Arena.validate arena victim;
  RM_rc.unprotect rm ctx victim;
  Alcotest.(check bool) "released" false (RM_rc.is_protected rm ctx victim);
  for i = 1 to 32 do
    let p = RM_rc.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_rc.retire rm ctx p
  done;
  Alcotest.(check bool) "victim reclaimed after release" false
    (Memory.Arena.is_valid arena victim)

(* The paper's §3 "Applicability of TS" scenario, reproduced on the
   simulator: process p holds a private pointer to retired record u, which
   points to retired record u'; a collection happens while p has only u
   registered; u' is freed; p then follows u's pointer into u' and performs
   an illegal access, which the arena detects. *)
let test_threadscan_unsound_retired_chain () =
  let params = { params_tiny with Intf.Params.ts_buffer_blocks = 2 } in
  let group, _heap, _env, rm, arena = S_ts.make ~params ~n:2 ~seed:9 () in
  let uaf = ref false in
  let u_holder = ref Memory.Ptr.null in
  let u'_holder = ref Memory.Ptr.null in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    if pid = 0 then begin
      (* p: start an operation, register u as a root, read u.next = u',
         then go to sleep before registering u'. *)
      RM_ts.leave_qstate rm ctx;
      while Memory.Ptr.is_null !u_holder do
        Runtime.Ctx.work ctx 1
      done;
      let u = !u_holder in
      ignore (RM_ts.protect rm ctx u ~verify:(fun () -> true));
      (* p is about to read u.next, but sleeps first; q's collection signal
         arrives meanwhile.  The handler runs at the first access after the
         wake-up (reporting only u as a root), p naps again while the
         collector frees u' — and then follows the pointer from retired u
         into freed u': the paper's illegal access. *)
      Runtime.Ctx.stall ctx 3_000_000;
      Runtime.Ctx.work ctx 1 (* signal handler fires here: roots = {u} *);
      Runtime.Ctx.stall ctx 200_000 (* let the collector finish freeing *);
      let u' = Memory.Arena.read ctx arena u 0 in
      (match Memory.Arena.read ctx arena u' 0 with
      | _ -> ()
      | exception Memory.Arena.Use_after_free _ -> uaf := true);
      RM_ts.enter_qstate rm ctx
    end
    else begin
      let ctx = Runtime.Group.ctx group pid in
      RM_ts.leave_qstate rm ctx;
      (* q: build u -> u', publish them, then retire both and flood the
         delete buffer to force a collection while p sleeps. *)
      let u' = RM_ts.alloc rm ctx arena in
      Memory.Arena.write ctx arena u' 0 0;
      let u = RM_ts.alloc rm ctx arena in
      Memory.Arena.write ctx arena u 0 u';
      u'_holder := u';
      u_holder := u;
      Runtime.Ctx.work ctx 50_000;
      (* Remove both from the (conceptual) structure and retire them. *)
      RM_ts.retire rm ctx u;
      RM_ts.retire rm ctx u';
      (* Exactly one collection: 6 more retires reach the 8-record
         threshold while u and u' sit in the oldest (full) block. *)
      for i = 1 to 6 do
        let p = RM_ts.alloc rm ctx arena in
        Memory.Arena.set_const ctx arena p 0 i;
        RM_ts.retire rm ctx p
      done;
      RM_ts.enter_qstate rm ctx
    end
  in
  ignore
    (Sim.run ~machine:(Machine.Config.tiny ~contexts:2 ()) group
       (Array.init 2 body));
  Alcotest.(check bool)
    "ThreadScan frees a record reachable from a registered retired record"
    true !uaf

module RM_st =
  Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Stacktrack.Make)
module RM_none =
  Record_manager.Make (Alloc.Bump) (Pool.Direct) (None_reclaimer.Make)

(* VBR rides the recycling allocator: frees route through the arena and
   bump the slot generation, which IS the version [protect] re-checks. *)
module RM_vbr = Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Vbr.Make)
module RM_hyaline =
  Record_manager.Make (Alloc.Bump) (Pool.Shared) (Hyaline.Make)
(* Direct pool for the gating test: frees bump the generation, so
   [Arena.is_valid] is a faithful freed-oracle (same trick as RM_debra_plus
   above). *)
module RM_hyaline_direct =
  Record_manager.Make (Alloc.Bump) (Pool.Direct) (Hyaline.Make)

module S_vbr = Setup (RM_vbr)
module S_hyaline_direct = Setup (RM_hyaline_direct)

(* VBR is robust: it reclaims full blocks at retire time with no grace
   period, regardless of what any other process is doing — here process 1
   parks NON-quiescent forever, which wedges DEBRA
   (test_debra_nonquiescent_blocks) but cannot hold VBR's limbo above one
   partial block per arena. *)
let test_vbr_reclaims_despite_stalled_reader () =
  let group, _heap, _env, rm, arena = S_vbr.make ~n:2 () in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  RM_vbr.leave_qstate rm ctx1;
  (* ctx1 now stays non-quiescent forever. *)
  RM_vbr.leave_qstate rm ctx;
  let first = ref Memory.Ptr.null in
  for i = 1 to 9 do
    let p = RM_vbr.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    if i = 1 then first := p;
    RM_vbr.retire rm ctx p
  done;
  RM_vbr.enter_qstate rm ctx;
  (* Two full blocks (capacity 4) were reclaimed in place; only the partial
     head block is left in limbo. *)
  Alcotest.(check int) "limbo bounded by one partial block" 1
    (RM_vbr.limbo_size rm);
  Alcotest.(check bool)
    "first retired record really freed (version bumped)" false
    (Memory.Arena.is_valid arena !first)

(* VBR's protect is version re-validation: it succeeds on a live record and
   fails — instead of protecting — once the record's slot generation moved
   past the version the pointer carries. *)
let test_vbr_protect_revalidates_version () =
  let group, _heap, _env, rm, arena = S_vbr.make ~n:1 () in
  let ctx = Runtime.Group.ctx group 0 in
  RM_vbr.leave_qstate rm ctx;
  let victim = RM_vbr.alloc rm ctx arena in
  Memory.Arena.set_const ctx arena victim 0 1;
  Alcotest.(check bool) "live record validates" true
    (RM_vbr.protect rm ctx victim ~verify:(fun () -> true));
  (* The caller-side verify is part of the validation chain. *)
  Alcotest.(check bool) "verify failure rejects" false
    (RM_vbr.protect rm ctx victim ~verify:(fun () -> false));
  RM_vbr.retire rm ctx victim;
  (* Fill the block so the retire-side reclaim frees the victim. *)
  for i = 2 to 9 do
    let p = RM_vbr.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    RM_vbr.retire rm ctx p
  done;
  Alcotest.(check bool) "victim reclaimed" false
    (Memory.Arena.is_valid arena victim);
  Alcotest.(check bool) "stale version rejected" false
    (RM_vbr.protect rm ctx victim ~verify:(fun () -> true));
  RM_vbr.enter_qstate rm ctx

(* Hyaline frees a sealed batch exactly when its last charged session
   closes: the retiring process dropping its own reference is not enough
   while a slower reader is still inside the session the seal charged. *)
let test_hyaline_batch_refcount_gates () =
  let group, _heap, _env, rm, arena = S_hyaline_direct.make ~n:2 () in
  let ctx = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  (* Reader opens a session and parks there. *)
  RM_hyaline_direct.leave_qstate rm ctx1;
  RM_hyaline_direct.leave_qstate rm ctx;
  let first = ref Memory.Ptr.null in
  (* block_capacity retires fill and seal the batch; the seal charges both
     open sessions. *)
  for i = 1 to 4 do
    let p = RM_hyaline_direct.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena p 0 i;
    if i = 1 then first := p;
    RM_hyaline_direct.retire rm ctx p
  done;
  Alcotest.(check int) "batch sealed, nothing freed" 4
    (RM_hyaline_direct.limbo_size rm);
  (* The retirer's own boundary drops one reference — the reader's charge
     still pins the batch, across any number of retirer boundaries. *)
  for _ = 1 to 5 do
    RM_hyaline_direct.enter_qstate rm ctx;
    RM_hyaline_direct.leave_qstate rm ctx
  done;
  RM_hyaline_direct.enter_qstate rm ctx;
  Alcotest.(check int) "reader's charge pins the batch" 4
    (RM_hyaline_direct.limbo_size rm);
  Memory.Arena.validate arena !first;
  (* The reader closes the charged session: its boundary drops the last
     reference and frees the whole batch. *)
  RM_hyaline_direct.enter_qstate rm ctx1;
  Alcotest.(check int) "batch freed at last reference" 0
    (RM_hyaline_direct.limbo_size rm);
  Alcotest.(check bool) "records really freed" false
    (Memory.Arena.is_valid arena !first)

(* Limbo must drain to exactly zero after a quiescent shutdown ([flush]),
   for every scheme — cross-checked against the sanitizer's shadow ledger,
   which counts every Retire and Free on the event bus independently of the
   reclaimer's own bookkeeping. *)
module Drain (RM : Intf.RECORD_MANAGER) = struct
  let run ~scheme () =
    let group = Runtime.Group.create ~seed:7 2 in
    let heap = Memory.Heap.create () in
    let env = Intf.Env.create ~params:params_tiny group heap in
    let rm = RM.create env in
    let arena =
      Memory.Heap.new_arena heap ~name:"d" ~mut_fields:1 ~const_fields:1
        ~capacity:4096
    in
    let config =
      Sanitizer.Config.of_flags ~scheme
        ~supports_crash_recovery:RM.supports_crash_recovery
        ~allows_retired_traversal:RM.allows_retired_traversal
        ~sandboxed:RM.sandboxed ()
    in
    let san = Sanitizer.create ~config ~heap ~group in
    let ctx0 = Runtime.Group.ctx group 0 in
    let ctx1 = Runtime.Group.ctx group 1 in
    Sanitizer.with_checks san (fun () ->
        (* Two processes allocate and retire across interleaved sessions. *)
        for round = 1 to 10 do
          List.iter
            (fun ctx ->
              RM.leave_qstate rm ctx;
              for i = 1 to 6 do
                let p = RM.alloc rm ctx arena in
                Memory.Arena.set_const ctx arena p 0 (round + i);
                RM.retire rm ctx p
              done;
              RM.enter_qstate rm ctx)
            [ ctx0; ctx1 ]
        done;
        if config.Sanitizer.Config.track_limbo then
          Alcotest.(check int) "mid-run: shadow ledger mirrors limbo"
            (RM.limbo_size rm)
            (Sanitizer.retired_unfreed san);
        (* Quiescent shutdown: expire every grace period, then flush. *)
        for _ = 1 to 30 do
          List.iter
            (fun ctx ->
              RM.leave_qstate rm ctx;
              RM.enter_qstate rm ctx)
            [ ctx0; ctx1 ]
        done;
        RM.flush rm ctx0;
        Sanitizer.leak_check san ~limbo_size:(RM.limbo_size rm));
    Alcotest.(check string) "no violations" "" (Sanitizer.report san);
    Alcotest.(check int) "limbo empty after flush" 0 (RM.limbo_size rm);
    if config.Sanitizer.Config.track_limbo then
      Alcotest.(check int) "shadow ledger empty" 0
        (Sanitizer.retired_unfreed san)
end

module D_ebr = Drain (RM_ebr)
module D_qsbr = Drain (RM_qsbr)
module D_debra = Drain (RM_debra)
module D_debra_plus = Drain (RM_debra_plus)
module D_hp = Drain (RM_hp)
module D_rc = Drain (RM_rc)
module D_ts = Drain (RM_ts)
module D_st = Drain (RM_st)
module D_none = Drain (RM_none)
module D_vbr = Drain (RM_vbr)
module D_hyaline = Drain (RM_hyaline)

let () =
  Alcotest.run "reclaim"
    [
      ( "limbo-drains",
        [
          Alcotest.test_case "ebr" `Quick (D_ebr.run ~scheme:"ebr");
          Alcotest.test_case "qsbr" `Quick (D_qsbr.run ~scheme:"qsbr");
          Alcotest.test_case "debra" `Quick (D_debra.run ~scheme:"debra");
          Alcotest.test_case "debra+" `Quick
            (D_debra_plus.run ~scheme:"debra+");
          Alcotest.test_case "hp" `Quick (D_hp.run ~scheme:"hp");
          Alcotest.test_case "rc" `Quick (D_rc.run ~scheme:"rc");
          Alcotest.test_case "threadscan" `Quick (D_ts.run ~scheme:"threadscan");
          Alcotest.test_case "stacktrack" `Quick (D_st.run ~scheme:"stacktrack");
          Alcotest.test_case "none" `Quick (D_none.run ~scheme:"none");
          Alcotest.test_case "vbr" `Quick (D_vbr.run ~scheme:"vbr");
          Alcotest.test_case "hyaline" `Quick (D_hyaline.run ~scheme:"hyaline");
        ] );
      ( "vbr",
        [
          Alcotest.test_case "reclaims despite stalled reader" `Quick
            test_vbr_reclaims_despite_stalled_reader;
          Alcotest.test_case "protect re-validates version" `Quick
            test_vbr_protect_revalidates_version;
        ] );
      ( "hyaline",
        [
          Alcotest.test_case "batch refcount gates frees" `Quick
            test_hyaline_batch_refcount_gates;
        ] );
      ( "debra",
        [
          Alcotest.test_case "grace period" `Quick test_debra_grace_period;
          Alcotest.test_case "quiescent idler harmless" `Quick
            test_debra_quiescent_idler_harmless;
          Alcotest.test_case "non-quiescent laggard blocks" `Quick
            test_debra_nonquiescent_blocks;
        ] );
      ( "debra+",
        [
          Alcotest.test_case "neutralizes laggard" `Quick
            test_debra_plus_neutralizes_laggard;
          Alcotest.test_case "rprotect survives scan" `Quick
            test_debra_plus_rprotect_survives;
        ] );
      ( "hp",
        [
          Alcotest.test_case "scan respects announcements" `Quick
            test_hp_scan_respects_announcements;
        ] );
      ("ebr", [ Alcotest.test_case "reclaims" `Quick test_ebr_reclaims ]);
      ( "block-pool",
        [
          Alcotest.test_case "recycle ratio (paper: >99.9%)" `Quick
            test_block_pool_recycle_ratio;
        ] );
      ( "qsbr",
        [
          Alcotest.test_case "waits for quiescent points" `Quick
            test_qsbr_waits_for_quiescent_points;
        ] );
      ( "rc",
        [ Alcotest.test_case "reference pins record" `Quick test_rc_reference_pins ] );
      ( "threadscan",
        [
          Alcotest.test_case "paper §3: retired-to-retired is unsound" `Quick
            test_threadscan_unsound_retired_chain;
        ] );
    ]
