(* Full exploration matrix: every reclamation scheme x every structure under
   bounded-preemption systematic exploration, every explored schedule's
   history checked against the sequential spec.

   Heavyweight (hundreds of simulator runs per cell): lives behind the
   @lincheck-matrix alias, not in tier-1.  Exits non-zero on the first
   rejected cell, printing the replayable preemption schedule. *)

module Explore = Lincheck.Explore
module Lh = Workload.Lin_harness

let budget = try int_of_string (Sys.getenv "LINCHECK_BUDGET") with Not_found -> 2

let max_runs =
  try int_of_string (Sys.getenv "LINCHECK_MAX_RUNS") with Not_found -> 300

let workers =
  try int_of_string (Sys.getenv "LINCHECK_DOMAINS") with Not_found -> 1

let () =
  let cfg = { Lh.default_config with nprocs = 2; ops_per_proc = 3; key_range = 2; prefill = 1 } in
  let failures = ref 0 in
  let cells = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun ds ->
      List.iter
        (fun scheme ->
          incr cells;
          let v = Lh.explore ~budget ~max_runs ~workers ~ds ~scheme cfg in
          (match v with Explore.Fail _ -> incr failures | Explore.Pass _ -> ());
          Printf.printf "%-9s x %-11s %s\n%!" ds scheme (Lh.verdict_summary v))
        Lh.scheme_names)
    Lh.ds_names;
  Printf.printf "\n%d cells, %d failures, budget=%d, max_runs=%d, %.1fs\n"
    !cells !failures budget max_runs
    (Unix.gettimeofday () -. t0);
  if workers > 1 then Printf.printf "(explored on %d domains)\n" workers;
  exit (if !failures > 0 then 1 else 0)
