(* Seeded linearizability mutant of the Michael-Scott queue: dequeue's
   linearizing compare-and-swap on [head] is replaced by a plain
   read-then-write — the "missing dequeue re-validation" bug.  Two
   dequeuers that both observe the same head before either updates it both
   return the same value, so one preemption placed between the value read
   and the head update yields a duplicated dequeue that the FIFO spec
   rejects (values are unique per enqueue in the harness workloads).

   Run it under the `none` scheme: retire is then a no-op, so the double
   retire of the shared dummy cannot trip the arena's double-free trap
   first and the rejection is the checker's alone.  Everything except the
   seeded bug is copied from lib/ds/ms_queue.ml. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  let f_next = 0
  let c_value = 0

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    head : int Runtime.Svar.t;
    tail : int Runtime.Svar.t;
  }

  let create rm ~capacity =
    let env = RM.env rm in
    let arena =
      Memory.Heap.new_arena env.Reclaim.Intf.Env.heap ~name:"mutant_queue.node"
        ~mut_fields:1 ~const_fields:1 ~capacity:(capacity + 1)
    in
    let ctx = Runtime.Group.ctx env.Reclaim.Intf.Env.group 0 in
    let dummy = RM.alloc rm ctx arena in
    Memory.Arena.write ctx arena dummy f_next Memory.Ptr.null;
    { rm; arena; head = Runtime.Svar.make dummy; tail = Runtime.Svar.make dummy }

  let finish_op _t ctx =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1

  let enqueue t ctx value =
    let node = RM.alloc t.rm ctx t.arena in
    Memory.Arena.set_const ctx t.arena node c_value value;
    Memory.Arena.write ctx t.arena node f_next Memory.Ptr.null;
    let linearized = ref false in
    RM.run_op t.rm ctx
      ~recover:(fun () ->
        RM.unprotect_all t.rm ctx;
        if !linearized then Some () else None)
      (fun () ->
        RM.leave_qstate t.rm ctx;
        let rec attempt () =
          let tail = Runtime.Svar.get ctx t.tail in
          if
            not
              (RM.protect t.rm ctx tail ~verify:(fun () ->
                   Runtime.Svar.get ctx t.tail = tail))
          then attempt ()
          else begin
            let next = Memory.Arena.read ctx t.arena tail f_next in
            if not (Memory.Ptr.is_null next) then begin
              ignore (Runtime.Svar.cas ctx t.tail ~expect:tail next);
              RM.unprotect t.rm ctx tail;
              attempt ()
            end
            else if
              Memory.Arena.cas ctx t.arena tail f_next ~expect:Memory.Ptr.null
                node
            then begin
              linearized := true;
              ignore (Runtime.Svar.cas ctx t.tail ~expect:tail node);
              RM.unprotect t.rm ctx tail
            end
            else begin
              RM.unprotect t.rm ctx tail;
              attempt ()
            end
          end
        in
        attempt ();
        RM.enter_qstate t.rm ctx);
    finish_op t ctx

  let dequeue t ctx =
    let taken = ref None in
    let r =
      RM.run_op t.rm ctx
        ~recover:(fun () ->
          RM.unprotect_all t.rm ctx;
          match !taken with
          | Some (node, v) ->
              RM.retire t.rm ctx node;
              Some (Some v)
          | None -> None)
        (fun () ->
          RM.leave_qstate t.rm ctx;
          let rec attempt () =
            let head = Runtime.Svar.get ctx t.head in
            if
              not
                (RM.protect t.rm ctx head ~verify:(fun () ->
                     Runtime.Svar.get ctx t.head = head))
            then attempt ()
            else begin
              let tail = Runtime.Svar.get ctx t.tail in
              let next = Memory.Arena.read ctx t.arena head f_next in
              if Memory.Ptr.is_null next then begin
                RM.unprotect t.rm ctx head;
                None
              end
              else if
                not
                  (RM.protect t.rm ctx next ~verify:(fun () ->
                       Runtime.Svar.get ctx t.head = head))
              then begin
                RM.unprotect t.rm ctx head;
                attempt ()
              end
              else if head = tail then begin
                ignore (Runtime.Svar.cas ctx t.tail ~expect:tail next);
                RM.unprotect_all t.rm ctx;
                attempt ()
              end
              else begin
                let v = Memory.Arena.get_const ctx t.arena next c_value in
                (* THE SEEDED BUG: the linearizing CAS is replaced by a
                   blind write — no re-validation that [head] is still the
                   head.  A dequeuer preempted here loses the race but
                   still claims the value. *)
                Runtime.Svar.set ctx t.head next;
                taken := Some (head, v);
                RM.retire t.rm ctx head;
                RM.unprotect_all t.rm ctx;
                Some v
              end
            end
          in
          let r = attempt () in
          RM.enter_qstate t.rm ctx;
          r)
    in
    finish_op t ctx;
    r
end
