(* A deliberately protocol-violating external BST, used to prove the
   protocheck analyzer sharp (test_protocheck.ml).

   The structure bypasses the typestate surface entirely:
   - it allocates and links nodes through the raw Record Manager API, so
     no [Fresh]/[Publish]/[Root] protocol events are ever emitted;
   - traversals dereference shared nodes without ever acquiring a guard
     (no protect, no validation) — the classic unprotected-deref bug that
     hazard-class schemes exist to prevent;
   - delete retires the unlinked leaf with the raw [RM.retire], so no
     unlink witness precedes the retire.

   Under a hazard-class configuration with the strict access rule the
   analyzer must reject it with [Unprotected_access] (traversal) and
   [Retire_without_unlink] (raw retire). *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  let f_left = 0
  let f_right = 1
  let c_key = 0

  type t = { rm : RM.t; arena : Memory.Arena.t; root : Memory.Ptr.t }

  let create rm ~capacity =
    let env = RM.env rm in
    let ctx = Runtime.Group.ctx env.Reclaim.Intf.Env.group 0 in
    let arena =
      Memory.Heap.new_arena env.Reclaim.Intf.Env.heap ~name:"mutant_bst.node"
        ~mut_fields:2 ~const_fields:1 ~capacity
    in
    (* Raw allocation: no [Root] event, the analyzer sees an ordinary
       shared record. *)
    let root = RM.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena root c_key min_int;
    Memory.Arena.write ctx arena root f_left Memory.Ptr.null;
    Memory.Arena.write ctx arena root f_right
      Memory.Ptr.null;
    { rm; arena; root }

  let key_of t ctx p = Memory.Arena.get_const ctx t.arena p c_key

  let child t ctx p ~key =
    let f = if key < key_of t ctx p then f_left else f_right in
    (f, Memory.Arena.read ctx t.arena p f)

  (* Unprotected walk: returns the parent of the first null child slot on
     [key]'s search path, or the node holding [key]. *)
  let rec locate t ctx p ~key =
    let f, c = child t ctx p ~key in
    if Memory.Ptr.is_null c then `Slot (p, f)
    else if key_of t ctx c = key then `Found (p, c)
    else locate t ctx c ~key

  let insert t ctx ~key =
    RM.leave_qstate t.rm ctx;
    let result =
      match locate t ctx t.root ~key with
      | `Found _ -> false
      | `Slot (parent, f) ->
          let node = RM.alloc t.rm ctx t.arena in
          Memory.Arena.set_const ctx t.arena node c_key key;
          Memory.Arena.write ctx t.arena node f_left
            Memory.Ptr.null;
          Memory.Arena.write ctx t.arena node f_right
            Memory.Ptr.null;
          Memory.Arena.cas ctx t.arena parent f
            ~expect:Memory.Ptr.null
            node
    in
    RM.enter_qstate t.rm ctx;
    result

  let contains t ctx key =
    RM.leave_qstate t.rm ctx;
    let result =
      match locate t ctx t.root ~key with `Found _ -> true | `Slot _ -> false
    in
    RM.enter_qstate t.rm ctx;
    result

  (* Leaf-only delete: unlink with a raw CAS, then the protocol hole — a
     raw retire with no unlink witness. *)
  let delete t ctx key =
    RM.leave_qstate t.rm ctx;
    let result =
      match locate t ctx t.root ~key with
      | `Slot _ -> false
      | `Found (parent, node) ->
          let left = Memory.Arena.read ctx t.arena node f_left in
          let right = Memory.Arena.read ctx t.arena node f_right in
          if
            Memory.Ptr.is_null left && Memory.Ptr.is_null right
          then begin
            let f =
              if key < key_of t ctx parent then f_left else f_right
            in
            if
              Memory.Arena.cas ctx t.arena parent f
                ~expect:node
                Memory.Ptr.null
            then begin
              RM.retire t.rm ctx node;
              true
            end
            else false
          end
          else false
    in
    RM.enter_qstate t.rm ctx;
    result
end
