(** Telemetry subsystem tests: histogram quantiles against an exact
    sorted-sample reference, event-hub fan-out, JSON codec round-trips,
    Chrome-trace well-formedness on a real traced trial, telemetry under
    the sanitizer, and the E-stall limbo-bound regression. *)

let seeded n = Random.State.make [| 0x7e1e; n |]

(* ------------------------------------------------------------------ *)
(* Histogram: quantiles vs exact reference                             *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let rank = if rank < 1 then 1 else rank in
  sorted.(rank - 1)

let check_quantiles ~name ~sub_bits values =
  let h = Telemetry.Histogram.create ~sub_bits () in
  Array.iter (Telemetry.Histogram.record h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  Alcotest.(check int) (name ^ ": count") (Array.length values)
    (Telemetry.Histogram.count h);
  List.iter
    (fun q ->
      let e = exact_quantile sorted q in
      let v = Telemetry.Histogram.quantile h q in
      (* The histogram returns the midpoint of the bucket holding the
         exact quantile, so the error is at most one bucket width:
         relative 2^-sub_bits, absolute 1 for the tiny exact buckets. *)
      let tol =
        max 1 (int_of_float (float_of_int e /. float_of_int (1 lsl sub_bits)))
      in
      if abs (v - e) > tol then
        Alcotest.failf "%s: q=%.3f histogram %d vs exact %d (tol %d)" name q
          v e tol)
    [ 0.5; 0.9; 0.99; 0.999; 1.0 ]

let test_histogram_quantiles () =
  let rng = seeded 1 in
  (* Uniform small values: exact buckets. *)
  check_quantiles ~name:"uniform small" ~sub_bits:5
    (Array.init 10_000 (fun _ -> Random.State.int rng 30));
  (* Uniform large. *)
  check_quantiles ~name:"uniform large" ~sub_bits:5
    (Array.init 10_000 (fun _ -> Random.State.int rng 5_000_000));
  (* Long-tailed: exponential-ish via multiplication. *)
  check_quantiles ~name:"long tail" ~sub_bits:5
    (Array.init 10_000 (fun _ ->
         int_of_float (exp (Random.State.float rng 14.0))));
  (* Coarser buckets, looser tolerance. *)
  check_quantiles ~name:"sub_bits=2" ~sub_bits:2
    (Array.init 2_000 (fun _ -> Random.State.int rng 100_000));
  (* Finer buckets. *)
  check_quantiles ~name:"sub_bits=8" ~sub_bits:8
    (Array.init 2_000 (fun _ -> Random.State.int rng 100_000))

let test_histogram_stats () =
  let h = Telemetry.Histogram.create () in
  Alcotest.(check int) "empty quantile" 0 (Telemetry.Histogram.quantile h 0.5);
  Alcotest.(check int) "empty min" 0 (Telemetry.Histogram.min_value h);
  List.iter (Telemetry.Histogram.record h) [ 5; 10; 15 ];
  Alcotest.(check int) "min" 5 (Telemetry.Histogram.min_value h);
  Alcotest.(check int) "max" 15 (Telemetry.Histogram.max_value h);
  Alcotest.(check int) "count" 3 (Telemetry.Histogram.count h);
  Alcotest.(check (float 0.01)) "mean" 10.0 (Telemetry.Histogram.mean h);
  let h2 = Telemetry.Histogram.create () in
  Telemetry.Histogram.record h2 1_000_000;
  Telemetry.Histogram.merge_into h2 ~into:h;
  Alcotest.(check int) "merged count" 4 (Telemetry.Histogram.count h);
  let m = Telemetry.Histogram.max_value h in
  Alcotest.(check bool) "merged max" true (m >= 1_000_000 * 31 / 32)

(* ------------------------------------------------------------------ *)
(* Event hub: multi-sink fan-out                                       *)

let test_hub_fanout () =
  let group = Runtime.Group.create ~seed:1 1 in
  let ctx = Runtime.Group.ctx group 0 in
  let hub = Memory.Smr_event.hub () in
  let a = ref 0 and b = ref 0 in
  Memory.Smr_event.emit hub ctx Memory.Smr_event.Enter_q;
  Alcotest.(check int) "no sinks: no delivery" 0 !a;
  let sa = Memory.Smr_event.add_sink hub (fun _ _ -> incr a) in
  let sb = Memory.Smr_event.add_sink hub (fun _ _ -> incr b) in
  Alcotest.(check int) "two sinks" 2 (Memory.Smr_event.sink_count hub);
  Memory.Smr_event.emit hub ctx Memory.Smr_event.Enter_q;
  Alcotest.(check int) "fan-out a" 1 !a;
  Alcotest.(check int) "fan-out b" 1 !b;
  Memory.Smr_event.remove_sink hub sa;
  Memory.Smr_event.emit hub ctx Memory.Smr_event.Leave_q;
  Alcotest.(check int) "removed sink silent" 1 !a;
  Alcotest.(check int) "remaining sink live" 2 !b;
  Memory.Smr_event.remove_sink hub sb;
  Alcotest.(check int) "all removed" 0 (Memory.Smr_event.sink_count hub);
  Memory.Smr_event.emit hub ctx Memory.Smr_event.Enter_q;
  Alcotest.(check int) "fast path restored" 2 !b

(* ------------------------------------------------------------------ *)
(* JSON codec round-trip                                               *)

let test_json_roundtrip () =
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("s", String "he\"llo\n\tworld\\");
        ("i", Int (-42));
        ("f", Float 3.25);
        ("b", Bool true);
        ("n", Null);
        ("l", List [ Int 1; Int 2; Obj [ ("x", Int 3) ] ]);
        ("empty_l", List []);
        ("empty_o", Obj []);
      ]
  in
  let parsed = of_string (to_string doc) in
  Alcotest.(check bool) "round-trip" true (parsed = doc);
  Alcotest.(check bool) "member" true (member "i" parsed = Some (Int (-42)));
  (match of_string "  [1, 2.5, \"x\", null, true] " with
  | List [ Int 1; Float 2.5; String "x"; Null; Bool true ] -> ()
  | _ -> Alcotest.fail "whitespace/mixed list parse");
  List.iter
    (fun bad ->
      match of_string bad with
      | exception Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" bad)
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Traced trial: Chrome trace parses back and is well-formed           *)

let small_cfg ?telemetry ?stall ?(duration = 300_000) ?(n = 4) () =
  {
    Workload.Schemes.backend = `Sim;
    machine = Machine.Config.intel_i7_4770;
    params = Reclaim.Intf.Params.default;
    duration;
    n;
    range = 2_000;
    ins = 50;
    del = 50;
    seed = 11;
    capacity = 200_000;
    sanitize = false;
    telemetry;
    stall;
  chaos = None;
    budget = -1;
    max_steps = None;
    history = None;
  }

let test_trace_well_formed () =
  let trace = Telemetry.Trace.create ~cycles_per_us:3000.0 () in
  let rec_ =
    Telemetry.Recorder.create ~sample_every:30_000 ~trace ~cycles_per_ns:3.0
      ~nprocs:4 ()
  in
  let r = Workload.Schemes.B2_debra_plus.runner "debra+" in
  let o = r.Workload.Schemes.run (small_cfg ~telemetry:rec_ ()) in
  Alcotest.(check bool) "trial ran" true (o.Workload.Trial.ops > 0);
  Alcotest.(check bool) "latency collected" true
    (o.Workload.Trial.latency <> []);
  let open Telemetry.Json in
  let doc = of_string (to_string (Telemetry.Trace.to_json trace)) in
  let events =
    match member "traceEvents" doc with
    | Some (List evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check bool) "trace non-empty" true (List.length events > 0);
  let phases = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let str k =
        match member k ev with
        | Some (String s) -> s
        | _ -> Alcotest.failf "event missing string %S" k
      in
      let num k =
        match member k ev with
        | Some (Int _ | Float _) -> ()
        | _ -> Alcotest.failf "event missing number %S" k
      in
      Alcotest.(check bool) "name non-empty" true (str "name" <> "");
      num "ts";
      num "pid";
      num "tid";
      let ph = str "ph" in
      if ph = "X" then num "dur";
      Hashtbl.replace phases ph ())
    events;
  (* The run must have produced op spans and track metadata at least. *)
  Alcotest.(check bool) "has op spans" true (Hashtbl.mem phases "X");
  Alcotest.(check bool) "has metadata" true (Hashtbl.mem phases "M");
  (* Sampled series have the tick cadence. *)
  let series = Telemetry.Recorder.series rec_ in
  let limbo = List.assoc "limbo" series in
  Alcotest.(check bool) "series sampled" true (List.length limbo > 2);
  ignore
    (List.fold_left
       (fun prev (t, vs) ->
         Alcotest.(check int) "per-proc width" 4 (Array.length vs);
         Alcotest.(check bool) "ticks increase" true (t > prev);
         t)
       (-1) limbo)

let test_metrics_json () =
  let rec_ =
    Telemetry.Recorder.create ~sample_every:30_000 ~cycles_per_ns:3.0
      ~nprocs:4 ()
  in
  let r = Workload.Schemes.B2_debra.runner "debra" in
  let _o = r.Workload.Schemes.run (small_cfg ~telemetry:rec_ ()) in
  let open Telemetry.Json in
  let doc = of_string (to_string (Telemetry.Recorder.metrics_json rec_)) in
  (match member "counters" doc with
  | Some (Obj kvs) ->
      Alcotest.(check bool) "counts retires" true
        (match List.assoc_opt "retires" kvs with
        | Some (Int n) -> n > 0
        | _ -> false)
  | _ -> Alcotest.fail "counters missing");
  match member "latency_ns" doc with
  | Some (Obj kvs) ->
      Alcotest.(check bool) "has insert histogram" true
        (List.mem_assoc "insert" kvs)
  | _ -> Alcotest.fail "latency_ns missing"

(* ------------------------------------------------------------------ *)
(* Decimating bounded gauge sampler                                    *)

let test_gauge_decimation () =
  let max_samples = 16 in
  let reads = ref 0 in
  let rec_ =
    Telemetry.Recorder.create ~sample_every:1 ~max_samples ~cycles_per_ns:1.0
      ~nprocs:1 ()
  in
  Telemetry.Recorder.add_gauge rec_ ~name:"g" (fun () ->
      incr reads;
      [| !reads |]);
  let nticks = 10_000 in
  for i = 0 to nticks - 1 do
    Telemetry.Recorder.tick rec_ i
  done;
  let samples = List.assoc "g" (Telemetry.Recorder.series rec_) in
  (* Bounded: never more than max_samples rows retained. *)
  Alcotest.(check bool) "series bounded"
    true
    (List.length samples <= max_samples);
  Alcotest.(check bool) "series non-trivial" true (List.length samples >= 8);
  (* Scale-safe: skipped ticks never call the gauge read function — total
     reads are O(max_samples * log nticks), far below one per tick. *)
  Alcotest.(check bool) "reads bounded" true (!reads <= 8 * max_samples);
  (* Uniform coverage: retained ticks sit on one stride, starting at 0. *)
  (match samples with
  | (t0, _) :: (t1, _) :: _ ->
      let stride = t1 - t0 in
      Alcotest.(check int) "first tick kept" 0 t0;
      Alcotest.(check bool) "stride is a power of two" true
        (stride land (stride - 1) = 0);
      ignore
        (List.fold_left
           (fun prev (t, _) ->
             Alcotest.(check int) "evenly spaced" stride (t - prev);
             t)
           (t0 - stride) samples);
      Alcotest.(check bool) "covers the whole run" true
        (fst (List.nth samples (List.length samples - 1))
        >= nticks - (2 * stride))
  | _ -> Alcotest.fail "expected at least two samples");
  (* A recorder that never overflows keeps every tick (legacy behavior). *)
  let rec2 =
    Telemetry.Recorder.create ~sample_every:1 ~cycles_per_ns:1.0 ~nprocs:1 ()
  in
  Telemetry.Recorder.add_gauge rec2 ~name:"g" (fun () -> [| 0 |]);
  for i = 0 to 99 do
    Telemetry.Recorder.tick rec2 i
  done;
  Alcotest.(check int) "under the bound every tick is kept" 100
    (List.length (List.assoc "g" (Telemetry.Recorder.series rec2)))

(* ------------------------------------------------------------------ *)
(* Telemetry and sanitizer share the bus                               *)

let test_telemetry_with_sanitizer () =
  let trace = Telemetry.Trace.create ~cycles_per_us:3000.0 () in
  let rec_ =
    Telemetry.Recorder.create ~sample_every:30_000 ~trace ~cycles_per_ns:3.0
      ~nprocs:4 ()
  in
  let r = Workload.Schemes.B2_debra_plus.runner "debra+" in
  let cfg = small_cfg ~telemetry:rec_ () in
  let o = r.Workload.Schemes.run { cfg with Workload.Schemes.sanitize = true } in
  Alcotest.(check (option int)) "no violations" (Some 0)
    o.Workload.Trial.violations;
  Alcotest.(check bool) "trace collected alongside sanitizer" true
    (Telemetry.Trace.events trace > 0);
  Alcotest.(check bool) "percentiles collected alongside sanitizer" true
    (o.Workload.Trial.latency <> [])

(* ------------------------------------------------------------------ *)
(* E-stall regression: DEBRA+ bounded, DEBRA unbounded                 *)

let test_estall_bound () =
  (* Mirrors bench/stall.ml at reduced duration: one process parks
     non-quiescent at t=duration/5; DEBRA's epoch freezes and its limbo
     grows for the rest of the trial, DEBRA+ neutralizes the victim and
     stays under the paper's O(mn^2) bound. *)
  let n = 8 in
  let duration = 2_400_000 in
  let stall_at = duration / 5 in
  let block_capacity = 64 in
  let bound = 3 * n * n * block_capacity in
  let params =
    {
      Reclaim.Intf.Params.default with
      Reclaim.Intf.Params.block_capacity;
      incr_thresh = n;
    }
  in
  let run (r : Workload.Schemes.runner) =
    let rec_ =
      Telemetry.Recorder.create ~sample_every:(duration / 100)
        ~cycles_per_ns:3.0 ~nprocs:n ()
    in
    let cfg =
      {
        (small_cfg ~telemetry:rec_ ~stall:(stall_at, duration - stall_at)
           ~duration ~n ())
        with
        Workload.Schemes.params;
        range = 10_000;
      }
    in
    let o = r.Workload.Schemes.run cfg in
    Alcotest.(check bool) (r.Workload.Schemes.rname ^ " ran") true
      (o.Workload.Trial.ops > 0);
    Telemetry.Recorder.series_total rec_ "limbo"
  in
  let peak s = List.fold_left (fun acc (_, v) -> max acc v) 0 s in
  let final s = match List.rev s with (_, v) :: _ -> v | [] -> 0 in
  let at_stall s =
    List.fold_left (fun acc (t, v) -> if t <= stall_at then v else acc) 0 s
  in
  let dplus = run (Workload.Schemes.B2_debra_plus.runner "debra+") in
  let debra = run (Workload.Schemes.B2_debra.runner "debra") in
  let ebr = run (Workload.Schemes.B2_ebr.runner "ebr") in
  (* DEBRA+ neutralizes the stalled process: bounded plateau. *)
  Alcotest.(check bool)
    (Printf.sprintf "debra+ peak %d under bound %d" (peak dplus) bound)
    true
    (peak dplus <= bound);
  (* DEBRA's frozen epoch: limbo grows past the bound by trial end. *)
  Alcotest.(check bool)
    (Printf.sprintf "stalled debra final %d exceeds bound %d" (final debra)
       bound)
    true
    (final debra > bound);
  (* EBR also freezes: monotone growth after the stall. *)
  Alcotest.(check bool)
    (Printf.sprintf "stalled ebr grows (%d -> %d)" (at_stall ebr) (final ebr))
    true
    (final ebr > 2 * max 1 (at_stall ebr) && final ebr > peak dplus)

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "quantiles vs exact reference" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "stats and merge" `Quick test_histogram_stats;
        ] );
      ( "event hub",
        [ Alcotest.test_case "multi-sink fan-out" `Quick test_hub_fanout ] );
      ( "json",
        [ Alcotest.test_case "codec round-trip" `Quick test_json_roundtrip ] );
      ( "trace",
        [
          Alcotest.test_case "traced trial is well-formed catapult JSON"
            `Quick test_trace_well_formed;
          Alcotest.test_case "metrics document shape" `Quick test_metrics_json;
          Alcotest.test_case "gauge sampler decimates, stays bounded" `Quick
            test_gauge_decimation;
        ] );
      ( "integration",
        [
          Alcotest.test_case "telemetry under the sanitizer" `Quick
            test_telemetry_with_sanitizer;
          Alcotest.test_case "E-stall limbo bound" `Slow test_estall_bound;
        ] );
    ]
