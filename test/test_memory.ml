(* Property and unit tests for the memory substrate: pointer packing, the
   arena lifecycle (Fig. 1 of the paper), generation-based use-after-free
   detection, and the virtual address space. *)

let ctx () = Runtime.Ctx.make ~pid:0 ~nprocs:1 ~seed:1

(* Pointer packing roundtrips. *)
let prop_ptr_roundtrip =
  QCheck.Test.make ~name:"ptr pack/unpack roundtrip" ~count:500
    QCheck.(
      quad (int_bound (Memory.Ptr.max_arenas - 1)) (int_bound 1_000_000)
        (int_bound Memory.Ptr.gen_mask) bool)
    (fun (arena, slot, gen, marked) ->
      let p = Memory.Ptr.make ~arena ~slot ~gen in
      let p = if marked then Memory.Ptr.mark p else p in
      Memory.Ptr.arena_id p = arena
      && Memory.Ptr.slot p = slot
      && Memory.Ptr.gen p = gen
      && Memory.Ptr.is_marked p = marked
      && (not (Memory.Ptr.is_null p))
      && Memory.Ptr.unmark (Memory.Ptr.mark p) = Memory.Ptr.unmark p)

let prop_ptr_distinct =
  QCheck.Test.make ~name:"distinct (slot,gen) make distinct pointers" ~count:200
    QCheck.(pair (pair small_nat small_nat) (pair small_nat small_nat))
    (fun ((s1, g1), (s2, g2)) ->
      let p1 = Memory.Ptr.make ~arena:0 ~slot:s1 ~gen:g1 in
      let p2 = Memory.Ptr.make ~arena:0 ~slot:s2 ~gen:g2 in
      (s1 = s2 && g1 = g2) = (p1 = p2))

let test_null () =
  Alcotest.(check bool) "null is null" true (Memory.Ptr.is_null Memory.Ptr.null);
  Alcotest.(check bool) "marked null is null" true
    (Memory.Ptr.is_null (Memory.Ptr.mark Memory.Ptr.null));
  Alcotest.(check bool) "real ptr is not null" false
    (Memory.Ptr.is_null (Memory.Ptr.make ~arena:0 ~slot:0 ~gen:0))

(* Arena lifecycle *)

let mk_arena () =
  Memory.Arena.create ~heap_id:0 ~name:"t" ~mut_fields:2 ~const_fields:1
    ~capacity:64 ()

let test_lifecycle () =
  let c = ctx () in
  let a = mk_arena () in
  let p = Memory.Arena.claim_fresh c a in
  Memory.Arena.write c a p 0 42;
  Memory.Arena.set_const c a p 0 9;
  Alcotest.(check int) "read" 42 (Memory.Arena.read c a p 0);
  Alcotest.(check int) "const" 9 (Memory.Arena.get_const c a p 0);
  Alcotest.(check bool) "cas ok" true
    (Memory.Arena.cas c a p 0 ~expect:42 43);
  Alcotest.(check bool) "cas fail" false
    (Memory.Arena.cas c a p 0 ~expect:42 44);
  Alcotest.(check int) "live" 1 (Memory.Arena.live_records a);
  Memory.Arena.release c a p ~recycle:true;
  Alcotest.(check int) "live after free" 0 (Memory.Arena.live_records a);
  (* Any access through the stale pointer must raise. *)
  Alcotest.check_raises "read after free"
    (Memory.Arena.Use_after_free
       (Printf.sprintf "t: ptr %s (slot state=%d gen=%d)"
          (Memory.Ptr.to_string p) 0 1))
    (fun () -> ignore (Memory.Arena.read c a p 0));
  (* Double free must raise. *)
  (match Memory.Arena.release c a p ~recycle:true with
  | () -> Alcotest.fail "double free not detected"
  | exception Memory.Arena.Double_free _ -> ());
  (* Recycling hands out the same slot with a new generation. *)
  match Memory.Arena.claim_recycled c a with
  | None -> Alcotest.fail "free list empty"
  | Some p' ->
      Alcotest.(check int) "same slot" (Memory.Ptr.slot p) (Memory.Ptr.slot p');
      Alcotest.(check bool) "new generation" true
        (Memory.Ptr.gen p' <> Memory.Ptr.gen p)

let test_stale_cas_fails () =
  (* The ABA guard: a CAS through a stale pointer raises rather than
     corrupting the reused record. *)
  let c = ctx () in
  let a = mk_arena () in
  let p = Memory.Arena.claim_fresh c a in
  Memory.Arena.write c a p 0 7;
  Memory.Arena.release c a p ~recycle:true;
  let p' = Option.get (Memory.Arena.claim_recycled c a) in
  Memory.Arena.write c a p' 0 7;
  (match Memory.Arena.cas c a p 0 ~expect:7 8 with
  | _ -> Alcotest.fail "stale CAS not detected"
  | exception Memory.Arena.Use_after_free _ -> ());
  Alcotest.(check int) "value untouched" 7 (Memory.Arena.read c a p' 0)

let test_capacity () =
  let c = ctx () in
  let a =
    Memory.Arena.create ~heap_id:0 ~name:"small" ~mut_fields:1 ~const_fields:0
      ~capacity:2 ()
  in
  ignore (Memory.Arena.claim_fresh c a);
  ignore (Memory.Arena.claim_fresh c a);
  match Memory.Arena.claim_fresh c a with
  | _ -> Alcotest.fail "expected Arena_full"
  | exception Memory.Arena.Arena_full _ -> ()

(* Random alloc/free traffic agrees with a reference model. *)
let prop_arena_model =
  QCheck.Test.make ~name:"arena agrees with reference model" ~count:100
    QCheck.(list (pair bool (int_bound 100)))
    (fun script ->
      let c = ctx () in
      let a =
        Memory.Arena.create ~heap_id:1 ~name:"m" ~mut_fields:1 ~const_fields:0
          ~capacity:512 ()
      in
      let live = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (alloc, v) ->
          if alloc || Hashtbl.length live = 0 then begin
            let p =
              match Memory.Arena.claim_recycled c a with
              | Some p -> p
              | None -> Memory.Arena.claim_fresh c a
            in
            if Hashtbl.mem live p then ok := false;
            Memory.Arena.write c a p 0 v;
            Hashtbl.replace live p v
          end
          else begin
            let n = Random.int (Hashtbl.length live) in
            let p, v' =
              List.nth (Hashtbl.fold (fun k v acc -> (k, v) :: acc) live []) n
            in
            if Memory.Arena.read c a p 0 <> v' then ok := false;
            Memory.Arena.release c a p ~recycle:true;
            Hashtbl.remove live p
          end)
        script;
      !ok
      && Memory.Arena.live_records a = Hashtbl.length live
      && Hashtbl.fold
           (fun p v acc -> acc && Memory.Arena.read c a p 0 = v)
           live true)

(* Heap dispatch *)
let test_heap_dispatch () =
  let c = ctx () in
  let heap = Memory.Heap.create () in
  let a0 = Memory.Heap.new_arena heap ~name:"a0" ~mut_fields:1 ~const_fields:0 ~capacity:8 in
  let a1 = Memory.Heap.new_arena heap ~name:"a1" ~mut_fields:1 ~const_fields:0 ~capacity:8 in
  let p0 = Memory.Arena.claim_fresh c a0 in
  let p1 = Memory.Arena.claim_fresh c a1 in
  Alcotest.(check string) "dispatch a0" "a0"
    (Memory.Arena.name (Memory.Heap.arena_of heap p0));
  Alcotest.(check string) "dispatch a1" "a1"
    (Memory.Arena.name (Memory.Heap.arena_of heap p1));
  Memory.Heap.release heap c p0 ~recycle:false;
  Alcotest.(check int) "live" 1 (Memory.Heap.live_records heap)

(* Address space *)
let test_addr () =
  let base = Runtime.Addr.reserve_words 20 in
  Alcotest.(check int) "same line"
    (Runtime.Addr.line_of ~base_line:base 0)
    (Runtime.Addr.line_of ~base_line:base 7);
  Alcotest.(check bool) "next line" true
    (Runtime.Addr.line_of ~base_line:base 8
    > Runtime.Addr.line_of ~base_line:base 7)

let () =
  Alcotest.run "memory"
    [
      ( "ptr",
        [
          QCheck_alcotest.to_alcotest prop_ptr_roundtrip;
          QCheck_alcotest.to_alcotest prop_ptr_distinct;
          Alcotest.test_case "null" `Quick test_null;
        ] );
      ( "arena",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "stale CAS detected" `Quick test_stale_cas_fails;
          Alcotest.test_case "capacity" `Quick test_capacity;
          QCheck_alcotest.to_alcotest prop_arena_model;
        ] );
      ( "heap",
        [
          Alcotest.test_case "dispatch" `Quick test_heap_dispatch;
          Alcotest.test_case "addr lines" `Quick test_addr;
        ] );
    ]
