(* Golden schedule-equivalence tests for the scheduler core (lib/sim).

   The PR 9 refactor replaced the per-step linear scans with an indexed
   ready-set and pairing-heap timer/min-time queues; these scenarios pin the
   *pre-refactor* schedules bit-for-bit.  Each one stresses a code path the
   refactor touched:

   - rotation of multi-process cores and sleeper skipping (ready-set),
   - the all-asleep clock jump (timer heap),
   - minimum-time core selection with frequent ties (lexicographic heap
     order must match the old lowest-index-wins linear scan),
   - candidate enumeration order under [`Random_walk] and [`Systematic]
     (the indexed ready-set must enumerate non-empty cores in exactly the
     old loop order),
   - run-queue removal on finish and crash,
   - tick-hook firing times.

   Outputs are schedule-sensitive on purpose: fetch-and-add return values
   depend on the global interleaving, so any deviation in scheduling order
   shows up as a different accumulator, not just a different clock.

   Re-capture (only legitimate after an intentional schedule change):
   SIM_SCHED_CAPTURE=1 dune exec test/test_sim_sched.exe *)

let capture = Sys.getenv_opt "SIM_SCHED_CAPTURE" <> None

type observed = {
  o_vt : int;  (* final virtual time *)
  o_switches : int;  (* context switches charged *)
  o_acc : int;  (* interleaving-sensitive accumulator *)
  o_ticks : int;  (* tick-hook firings (0 when no tick attached) *)
  o_tick_hash : int;  (* hash of the tick timestamps *)
}

let pp_observed name o =
  Printf.printf
    "%s: { o_vt = %d; o_switches = %d; o_acc = %d; o_ticks = %d; o_tick_hash \
     = %d }\n\
     %!"
    name o.o_vt o.o_switches o.o_acc o.o_ticks o.o_tick_hash

let check_observed name expected actual =
  if capture then pp_observed name actual
  else begin
    Alcotest.(check int) (name ^ " virtual_time") expected.o_vt actual.o_vt;
    Alcotest.(check int)
      (name ^ " context_switches")
      expected.o_switches actual.o_switches;
    Alcotest.(check int) (name ^ " accumulator") expected.o_acc actual.o_acc;
    Alcotest.(check int) (name ^ " ticks") expected.o_ticks actual.o_ticks;
    Alcotest.(check int) (name ^ " tick hash") expected.o_tick_hash
      actual.o_tick_hash
  end

(* A small mixed workload: contended fetch-and-adds (their return values
   record the interleaving), local work, and periodic stalls with
   pid-dependent durations (sleeper rotation + clock jumps). *)
let run_scenario ?tick_every ~policy ~contexts ~n ~iters ~crash_pid () =
  let group = Runtime.Group.create ~seed:9 n in
  let arr = Runtime.Shared_array.create 16 in
  let machine = Machine.Config.tiny ~contexts () in
  let acc = Array.make n 0 in
  let ticks = ref 0 in
  let tick_hash = ref 0 in
  let tick =
    Option.map
      (fun every ->
        ( every,
          fun now ->
            incr ticks;
            tick_hash := (!tick_hash * 31) + now ))
      tick_every
  in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    for i = 1 to iters pid do
      if crash_pid = pid && i = 5 then Runtime.Ctx.crash ctx;
      let slot = ((pid * 3) + i) mod 16 in
      acc.(pid) <- acc.(pid) + Runtime.Shared_array.faa ctx arr slot 1;
      if i mod 5 = 0 then Runtime.Ctx.stall ctx (50 + (37 * pid));
      Runtime.Ctx.work ctx 7
    done
  in
  let r = Sim.run ~machine ~policy ?tick group (Array.init n body) in
  {
    o_vt = r.Sim.virtual_time;
    o_switches = r.Sim.context_switches;
    o_acc = Array.fold_left (fun h v -> (h * 131) + v) 0 acc;
    o_ticks = !ticks;
    o_tick_hash = !tick_hash land 0x3FFFFFFF;
  }

let no_crash = -1

(* Seven processes on three contexts: multi-process run queues, rotation
   past sleepers, quantum preemption, plus the tick hook. *)
let scenario_rotation () =
  run_scenario ~tick_every:1_000 ~policy:`Min_time ~contexts:3 ~n:7
    ~iters:(fun pid -> 40 + (3 * pid))
    ~crash_pid:no_crash ()

(* One context, everyone stalls: the scheduler repeatedly finds the whole
   run queue asleep and must jump the clock to the earliest wake time. *)
let scenario_clock_jump () =
  run_scenario ~policy:`Min_time ~contexts:1 ~n:3
    ~iters:(fun _ -> 30)
    ~crash_pid:no_crash ()

(* One process per context running identical code: core clocks tie
   constantly, so min-time selection exercises the lowest-index tie-break
   every step. *)
let scenario_ties () =
  run_scenario ~tick_every:500 ~policy:`Min_time ~contexts:4 ~n:4
    ~iters:(fun _ -> 50)
    ~crash_pid:no_crash ()

(* Uneven finish times and a crash: cores drop out of the ready set one by
   one (including via the crash path). *)
let scenario_finish_crash () =
  run_scenario ~policy:`Min_time ~contexts:5 ~n:5
    ~iters:(fun pid -> 10 + (7 * pid))
    ~crash_pid:2 ()

(* Seeded random walk over the non-empty cores: the candidate list the RNG
   indexes into must enumerate cores in exactly the pre-refactor order. *)
let scenario_random_walk () =
  run_scenario
    ~policy:(`Random_walk 42)
    ~contexts:3 ~n:6
    ~iters:(fun pid -> 35 + (2 * pid))
    ~crash_pid:no_crash ()

(* Systematic chooser: hashes every candidate array it is shown (length,
   core, pid, pending line) before picking step mod length — pins both the
   enumeration order and the last-line plumbing. *)
let scenario_systematic () =
  let group = Runtime.Group.create ~seed:9 5 in
  let arr = Runtime.Shared_array.create 8 in
  let machine = Machine.Config.tiny ~contexts:5 () in
  let acc = Array.make 5 0 in
  let chooser_hash = ref 0 in
  let chooser_calls = ref 0 in
  let choose ~step (cands : Sim.candidate array) =
    incr chooser_calls;
    let i = step mod Array.length cands in
    let c = cands.(i) in
    chooser_hash :=
      (!chooser_hash * 131)
      + (step land 0xFFFF)
      + (7 * Array.length cands)
      + (13 * c.Sim.cand_core)
      + (17 * c.Sim.cand_pid)
      + (19 * (c.Sim.cand_line land 0xFF));
    i
  in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    for i = 1 to 25 do
      let slot = ((pid * 5) + i) mod 8 in
      acc.(pid) <- acc.(pid) + Runtime.Shared_array.faa ctx arr slot 1;
      if i mod 6 = 0 then Runtime.Ctx.stall ctx (40 + (11 * pid))
    done
  in
  let r = Sim.run ~machine ~policy:(`Systematic choose) group (Array.init 5 body) in
  {
    o_vt = r.Sim.virtual_time;
    o_switches = r.Sim.context_switches;
    o_acc =
      Array.fold_left (fun h v -> (h * 131) + v) (!chooser_hash land 0x3FFFFFFF) acc;
    o_ticks = !chooser_calls;
    o_tick_hash = 0;
  }

(* Pre-refactor goldens, captured with SIM_SCHED_CAPTURE=1 on the linear-scan
   scheduler this PR replaced. *)
let goldens =
  [
    ( "rotation",
      scenario_rotation,
      {
        o_vt = 16714;
        o_switches = 60;
        o_acc = 1857597858254579;
        o_ticks = 16;
        o_tick_hash = 801015616;
      } );
    ( "clock-jump",
      scenario_clock_jump,
      { o_vt = 10368; o_switches = 18; o_acc = 1244830; o_ticks = 0;
        o_tick_hash = 0 } );
    ( "ties",
      scenario_ties,
      {
        o_vt = 3374;
        o_switches = 0;
        o_acc = 499579972;
        o_ticks = 6;
        o_tick_hash = 252399964;
      } );
    ( "finish-crash",
      scenario_finish_crash,
      { o_vt = 2431; o_switches = 0; o_acc = 3594727376; o_ticks = 0;
        o_tick_hash = 0 } );
    ( "random-walk",
      scenario_random_walk,
      { o_vt = 10024; o_switches = 42; o_acc = 7857836671223; o_ticks = 0;
        o_tick_hash = 0 } );
    ( "systematic",
      scenario_systematic,
      {
        o_vt = 1211;
        o_switches = 0;
        o_acc = 1863914838932959648;
        o_ticks = 170;
        o_tick_hash = 0;
      } );
  ]

let () =
  if capture then
    List.iter (fun (name, f, _) -> pp_observed name (f ())) goldens
  else
    Alcotest.run "sim-sched"
      [
        ( "golden-schedules",
          List.map
            (fun (name, f, expected) ->
              Alcotest.test_case name `Quick (fun () ->
                  check_observed name expected (f ())))
            goldens );
      ]
