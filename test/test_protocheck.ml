(* The symbolic SMR protocol analyzer (lib/protocheck), both directions:

   - completeness: the full 4-structure x 11-scheme matrix is clean on
     every explored path (the typed structures obey protect-before-deref,
     no-access-after-retire, retire-only-after-unlink under every scheme);
   - sharpness: the seeded mutants are rejected with concrete
     counterexample paths — the grace-skipping EBR (premature-free on the
     all-grant path), the validation-skipping HP (skipped-validation, which
     needs an adversarial acquire decision to surface), and a raw-API BST
     that never protects and retires without an unlink witness;
   - the typestate surface itself: a second retire of the same unlinked
     witness is rejected at the API boundary, which is why the runtime
     sanitizer no longer carries a double-retire check. *)

open Protocheck

module CE = Cell.Make (Broken_schemes.RM_broken_ebr)
module CH = Cell.Make (Broken_schemes.RM_broken_hp)
module MB = Mutant_bst.Make (Matrix.RM_hp)

let has_kind k (ce : Report.counterexample) =
  List.exists (fun v -> v.Engine.kind = k) ce.violations

let find_kind k (ce : Report.counterexample) =
  List.find (fun v -> v.Engine.kind = k) ce.violations

(* Every cell of the real matrix must be clean on every explored path.
   Diverged paths (a structure that stops making progress under
   adversarial decisions, e.g. HP on the helping BST) are recorded but are
   a progress property, not a safety violation. *)
let test_clean_matrix () =
  let cells = Matrix.all () in
  Alcotest.(check int) "matrix size" 44 (List.length cells);
  List.iter
    (fun c ->
      if not (Report.clean c) then
        Alcotest.failf "cell %s is not clean" (Report.summary c))
    cells

let test_broken_ebr_rejected () =
  let c = CE.check ~scheme:"broken-ebr" Report.List in
  Alcotest.(check bool) "rejected" false (Report.clean c);
  match c.Report.counterexample with
  | None -> Alcotest.fail "no counterexample path recorded"
  | Some ce ->
      Alcotest.(check bool) "premature-free" true
        (has_kind Engine.Premature_free ce);
      let v = find_kind Engine.Premature_free ce in
      Alcotest.(check bool) "counterexample trace present" true
        (v.Engine.trace <> [])

let test_broken_hp_rejected () =
  let c = CH.check ~scheme:"broken-hp" Report.List in
  Alcotest.(check bool) "rejected" false (Report.clean c);
  match c.Report.counterexample with
  | None -> Alcotest.fail "no counterexample path recorded"
  | Some ce ->
      Alcotest.(check bool) "skipped-validation" true
        (has_kind Engine.Skipped_validation ce);
      (* the bug only surfaces when a validation is forced to fail *)
      Alcotest.(check bool) "needs an adversarial decision" true
        (ce.Report.deny <> []);
      let v = find_kind Engine.Skipped_validation ce in
      Alcotest.(check bool) "counterexample trace present" true
        (v.Engine.trace <> [])

(* The raw-API BST under a strict hazard configuration: unprotected
   traversal and witness-less retire, both on the all-grant path. *)
let test_mutant_bst_rejected () =
  let group = Runtime.Group.create ~seed:7 1 in
  let heap = Memory.Heap.create () in
  let env = Reclaim.Intf.Env.create ~params:Cell.params group heap in
  let rm = Matrix.RM_hp.create env in
  let config =
    Engine.config_of_flags ~scheme:"hp" ~allows_retired_traversal:false
      ~sandboxed:false ~strict:true ()
  in
  let eng = Engine.create ~config ~nprocs:1 () in
  let detach = Engine.attach eng env in
  let ctx = Runtime.Group.ctx group 0 in
  let t = MB.create rm ~capacity:64 in
  ignore (MB.insert t ctx ~key:5);
  ignore (MB.insert t ctx ~key:3);
  ignore (MB.insert t ctx ~key:8);
  ignore (MB.contains t ctx 3);
  ignore (MB.delete t ctx 8);
  detach ();
  Alcotest.(check bool) "retire-without-unlink" true
    (Engine.has eng Engine.Retire_without_unlink);
  Alcotest.(check bool) "unprotected-access" true
    (Engine.has eng Engine.Unprotected_access);
  let v =
    List.find
      (fun v -> v.Engine.kind = Engine.Retire_without_unlink)
      (Engine.violations eng)
  in
  Alcotest.(check bool) "counterexample trace present" true
    (v.Engine.trace <> [])

(* The deleted sanitizer checks are subsumed by the witness API: a second
   retire of the same unlinked witness is an [Invalid_argument] at the API
   boundary, before any reclaimer state is touched. *)
let test_typed_double_retire_rejected () =
  let module RM = Matrix.RM_ebr in
  let module T = RM.Typed in
  let group = Runtime.Group.create ~seed:3 1 in
  let heap = Memory.Heap.create () in
  let env = Reclaim.Intf.Env.create group heap in
  let rm = RM.create env in
  let ctx = Runtime.Group.ctx group 0 in
  let arena =
    Memory.Heap.new_arena heap ~name:"double_retire" ~mut_fields:1
      ~const_fields:0 ~capacity:8
  in
  let raised =
    T.run_op rm ctx
      ~recover:(fun () -> None)
      (fun s ->
        T.leave rm ctx s;
        let f = T.alloc rm ctx arena in
        T.init rm ctx arena f 0 0;
        let p = T.publish_locked rm ctx s f in
        let w = T.unlink_locked rm ctx s p in
        T.retire rm ctx w;
        let r =
          try
            T.retire rm ctx w;
            false
          with Invalid_argument _ -> true
        in
        T.enter rm ctx s;
        r)
  in
  Alcotest.(check bool) "second retire rejected" true raised

let () =
  Alcotest.run "protocheck"
    [
      ( "matrix",
        [ Alcotest.test_case "all 44 cells clean" `Slow test_clean_matrix ] );
      ( "mutants",
        [
          Alcotest.test_case "broken ebr: premature free" `Quick
            test_broken_ebr_rejected;
          Alcotest.test_case "broken hp: skipped validation" `Quick
            test_broken_hp_rejected;
          Alcotest.test_case "raw-api bst: unprotected deref + raw retire"
            `Quick test_mutant_bst_rejected;
        ] );
      ( "typestate",
        [
          Alcotest.test_case "double retire is unrepresentable" `Quick
            test_typed_double_retire_rejected;
        ] );
    ]
