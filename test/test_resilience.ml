(* The overload-resilience layer (lib/resilience): deterministic
   full-jitter backoff, retry-budget token accounting, the circuit
   breaker's state machine driven by explicit timestamps, watermark
   hysteresis, degradation-report verdicts, a shed-under-pressure trial
   under the shadow-state sanitizer, and sim determinism for one
   service-wrapped overload cell. *)

module R = Resilience

(* ---------- backoff: seeded determinism and bounds ---------- *)

let backoff_deterministic () =
  let draws seed =
    let b = R.Backoff.create ~base:100 ~cap:10_000 ~seed () in
    List.init 12 (fun _ -> R.Backoff.next b)
  in
  Alcotest.(check (list int)) "same seed, same delays" (draws 7) (draws 7);
  Alcotest.(check bool) "seeds decorrelate" true (draws 7 <> draws 8);
  (* Attempt k draws from [0, min (cap, base * 2^k)). *)
  let b = R.Backoff.create ~base:100 ~cap:10_000 ~seed:3 () in
  List.iteri
    (fun k d ->
      let ceiling = min 10_000 (100 * (1 lsl k)) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [0,%d)" k ceiling)
        true
        (0 <= d && d < ceiling))
    (List.init 10 (fun _ -> R.Backoff.next b));
  Alcotest.(check int) "attempts counted" 10 (R.Backoff.attempt b);
  R.Backoff.reset b;
  Alcotest.(check int) "reset rewinds" 0 (R.Backoff.attempt b);
  Alcotest.(check bool) "post-reset ceiling is base" true
    (R.Backoff.next b < 100)

(* ---------- retry budget: token-bucket arithmetic ---------- *)

let retry_budget () =
  let t = R.Retry_budget.create ~ratio_pct:10 ~burst:3 () in
  Alcotest.(check int) "starts holding the burst" 3 (R.Retry_budget.balance t);
  (* Spend the burst dry. *)
  for i = 1 to 3 do
    Alcotest.(check bool) (Printf.sprintf "burst token %d" i) true
      (R.Retry_budget.try_spend t)
  done;
  Alcotest.(check bool) "dry" false (R.Retry_budget.try_spend t);
  Alcotest.(check int) "denied counted" 1 (R.Retry_budget.denied t);
  (* 10% ratio: 10 first attempts earn exactly one retry token. *)
  for _ = 1 to 9 do
    R.Retry_budget.deposit t
  done;
  Alcotest.(check bool) "9 deposits: still dry" false (R.Retry_budget.try_spend t);
  R.Retry_budget.deposit t;
  Alcotest.(check bool) "10th deposit earns a token" true
    (R.Retry_budget.try_spend t);
  Alcotest.(check int) "deposits" 10 (R.Retry_budget.deposits t);
  Alcotest.(check int) "spent" 4 (R.Retry_budget.spent t)

(* ---------- circuit breaker: state machine, explicit clock ---------- *)

let breaker_cfg =
  {
    R.Breaker.window = 1_000;
    min_requests = 4;
    failure_pct = 50;
    cooldown = 500;
    probes = 2;
  }

let breaker_trip_recover () =
  let b = R.Breaker.create ~config:breaker_cfg () in
  Alcotest.(check bool) "closed admits" true (R.Breaker.admit b ~now:0);
  (* Below min_requests the ratio is not meaningful: 3 failures, no trip. *)
  for i = 1 to 3 do
    R.Breaker.record b ~now:(i * 10) ~ok:false
  done;
  Alcotest.(check bool) "under min_requests stays closed" true
    (R.Breaker.state b = R.Breaker.Closed);
  (* The 4th outcome reaches min_requests at 100% failure: trip. *)
  R.Breaker.record b ~now:40 ~ok:false;
  Alcotest.(check bool) "tripped open" true (R.Breaker.state b = R.Breaker.Open);
  Alcotest.(check int) "one trip" 1 (R.Breaker.trips b);
  Alcotest.(check bool) "open rejects" false (R.Breaker.admit b ~now:100);
  Alcotest.(check int) "rejection counted" 1 (R.Breaker.rejected b);
  (* Cooldown elapses at the admit call: half-open, [probes] admissions. *)
  Alcotest.(check bool) "half-open probe 1" true (R.Breaker.admit b ~now:600);
  Alcotest.(check bool) "half-open state" true
    (R.Breaker.state b = R.Breaker.Half_open);
  Alcotest.(check bool) "half-open probe 2" true (R.Breaker.admit b ~now:610);
  Alcotest.(check bool) "probe budget spent" false (R.Breaker.admit b ~now:620);
  (* Both probes succeed: closed again. *)
  R.Breaker.record b ~now:630 ~ok:true;
  R.Breaker.record b ~now:640 ~ok:true;
  Alcotest.(check bool) "probes close it" true
    (R.Breaker.state b = R.Breaker.Closed)

let breaker_probe_failure_reopens () =
  let b = R.Breaker.create ~config:breaker_cfg () in
  for i = 1 to 4 do
    R.Breaker.record b ~now:i ~ok:false
  done;
  Alcotest.(check bool) "open" true (R.Breaker.state b = R.Breaker.Open);
  Alcotest.(check bool) "half-open after cooldown" true
    (R.Breaker.admit b ~now:1_000);
  R.Breaker.record b ~now:1_010 ~ok:false;
  Alcotest.(check bool) "failed probe reopens" true
    (R.Breaker.state b = R.Breaker.Open);
  Alcotest.(check bool) "reopened rejects" false (R.Breaker.admit b ~now:1_020)

let breaker_force_open () =
  let b = R.Breaker.create ~config:breaker_cfg () in
  R.Breaker.force_open b ~now:0;
  Alcotest.(check bool) "forced open" true (R.Breaker.state b = R.Breaker.Open);
  Alcotest.(check int) "forced trip counted" 1 (R.Breaker.trips b);
  R.Breaker.force_open b ~now:10;
  Alcotest.(check int) "no-op when already open" 1 (R.Breaker.trips b)

(* ---------- watermark hysteresis ---------- *)

let watermark_hysteresis () =
  let w = R.Watermark.create (R.Watermark.config ~elevated:100 ~brownout:400) in
  Alcotest.(check bool) "starts normal" true
    (R.Watermark.observe w 50 = R.Watermark.Normal);
  Alcotest.(check bool) "crosses elevated" true
    (R.Watermark.observe w 100 = R.Watermark.Elevated);
  (* Hysteresis: exits at 3/4 of entry, so 80 stays elevated. *)
  Alcotest.(check bool) "above lo stays elevated" true
    (R.Watermark.observe w 80 = R.Watermark.Elevated);
  Alcotest.(check bool) "below lo re-normalizes" true
    (R.Watermark.observe w 74 = R.Watermark.Normal);
  Alcotest.(check bool) "spike to brownout" true
    (R.Watermark.observe w 400 = R.Watermark.Brownout);
  Alcotest.(check bool) "brownout holds above its lo" true
    (R.Watermark.observe w 320 = R.Watermark.Brownout);
  Alcotest.(check bool) "drops back to elevated" true
    (R.Watermark.observe w 250 = R.Watermark.Elevated);
  Alcotest.(check int) "escalations counted" 2 (R.Watermark.escalations w);
  Alcotest.(check int) "brownouts counted" 1 (R.Watermark.brownouts w)

(* ---------- degradation report: verdict arithmetic ---------- *)

let degradation_verdicts () =
  let mk () =
    R.Degradation.create ~burst_start:1_000 ~burst_end:2_000
      ~end_of_schedule:4_000 ~bucket_cycles:100
  in
  (* Healthy cell: uniform served rate, one stray post-burst timeout
     (under the 2-bad bucket floor: noise, not "unrecovered"). *)
  let d = mk () in
  for due = 0 to 399 do
    R.Degradation.account d ~due:(due * 10)
      (if due = 250 then Loadgen.Timed_out else Loadgen.Served)
  done;
  R.Degradation.observe_limbo d 64;
  Alcotest.(check int) "stray timeout ignored" 0 (R.Degradation.recovery_cycles d);
  let v =
    R.Degradation.judge d ~limbo_bound:100 ~floor_pct:50.0 ~recovery_budget:500
  in
  Alcotest.(check bool) "healthy passes" true v.R.Degradation.passed;
  (* Wedged cell: after the burst, half of everything is rejected to the
     end of the schedule — the bad rate never drops under tolerance, so
     recovery lands at the schedule's end and blows the budget. *)
  let d = mk () in
  for due = 0 to 399 do
    R.Degradation.account d ~due:(due * 10)
      (if due * 10 >= 2_000 && due mod 2 = 0 then Loadgen.Rejected
       else Loadgen.Served)
  done;
  Alcotest.(check int) "wedged never recovers" 2_000
    (R.Degradation.recovery_cycles d);
  let v =
    R.Degradation.judge d ~limbo_bound:100 ~floor_pct:50.0 ~recovery_budget:500
  in
  Alcotest.(check bool) "recovery verdict fails" false v.R.Degradation.recovery_ok;
  Alcotest.(check bool) "cell fails" false v.R.Degradation.passed;
  (* Limbo bound is judged on the max sample. *)
  let d = mk () in
  R.Degradation.account d ~due:10 Loadgen.Served;
  R.Degradation.observe_limbo d 101;
  let v =
    R.Degradation.judge d ~limbo_bound:100 ~floor_pct:0.0 ~recovery_budget:500
  in
  Alcotest.(check bool) "limbo over bound fails" false v.R.Degradation.limbo_ok

let degradation_merge () =
  let mk () =
    R.Degradation.create ~burst_start:1_000 ~burst_end:2_000
      ~end_of_schedule:4_000 ~bucket_cycles:100
  in
  let a = mk () and b = mk () in
  R.Degradation.account a ~due:500 Loadgen.Served;
  R.Degradation.account b ~due:600 Loadgen.Shed;
  R.Degradation.account b ~due:1_500 Loadgen.Served;
  R.Degradation.observe_limbo a 10;
  R.Degradation.observe_limbo b 30;
  R.Degradation.merge a b;
  let pre = R.Degradation.tally a R.Degradation.Pre in
  Alcotest.(check int) "merged demand" 2 pre.R.Degradation.demand;
  Alcotest.(check int) "merged shed" 1 pre.R.Degradation.shed;
  Alcotest.(check int) "limbo is max" 30 (R.Degradation.max_limbo a);
  let odd =
    R.Degradation.create ~burst_start:999 ~burst_end:2_000
      ~end_of_schedule:4_000 ~bucket_cycles:100
  in
  Alcotest.check_raises "boundary mismatch rejected"
    (Invalid_argument "Degradation.merge: phase boundaries differ") (fun () ->
      R.Degradation.merge a odd)

(* ---------- shed under allocation pressure, sanitized ---------- *)

module Schemes = Workload.Schemes
module Store = Kv.Store.Make (Schemes.RM2_debra_plus)

let shed_under_pressure () =
  let n = 3 in
  let group = Runtime.Group.create ~seed:21 n in
  let store =
    Store.create ~structure:"hm_list" ~shards:1 ~capacity_per_shard:2048 ~group
      ()
  in
  let heap = (Store.heaps store).(0) in
  let san =
    Sanitizer.create
      ~config:
        (Sanitizer.Config.of_flags ~scheme:"debra+" ~supports_crash_recovery:true
           ~allows_retired_traversal:true ~sandboxed:false ())
      ~heap ~group
  in
  (* A brownout watermark of 1 retired block: any retire pressure at all
     puts the shard in brownout, so low-priority calls shed. *)
  let cfg =
    {
      R.Service.default_config with
      R.Service.deadline = 1_000_000;
      elevated = 1;
      brownout = 2;
    }
  in
  let hooks =
    [|
      {
        R.Service.limbo = (fun () -> Store.shard_limbo store 0);
        pool = (fun () -> Store.shard_pool store 0);
        wedged = (fun () -> Store.shard_wedged store 0);
        escalate = (fun ctx -> Store.emergency_reclaim store ctx ~shard:0);
      };
    |]
  in
  let svc = R.Service.create ~config:cfg ~pids:n ~seed:21 hooks in
  let retryable = function
    | Memory.Arena.Out_of_memory _ | Memory.Arena.Arena_full _ -> true
    | _ -> false
  in
  Sanitizer.with_checks san (fun () ->
      let body pid () =
        let ctx = Runtime.Group.ctx group pid in
        for i = 1 to 120 do
          let key = Printf.sprintf "k%d" ((i + (pid * 7)) mod 48) in
          let due = Runtime.Ctx.now ctx in
          let priority =
            if i mod 4 = 0 then R.Service.Low else R.Service.High
          in
          let work () =
            match i mod 3 with
            | 0 -> Store.put store ctx ~key ~value:"v"
            | 1 -> ignore (Store.get store ctx key)
            | _ -> ignore (Store.delete store ctx key)
          in
          ignore
            (R.Service.call svc ctx ~pid ~shard:0 ~priority ~due ~retryable
               work)
        done
      in
      ignore
        (Sim.run
           ~machine:(Machine.Config.tiny ~contexts:4 ())
           group
           (Array.init n body));
      let ctx0 = Runtime.Group.ctx group 0 in
      Store.check_invariants store;
      Store.flush store ctx0;
      Sanitizer.leak_check san ~limbo_size:(Store.limbo store));
  Alcotest.(check string) "sanitizer clean" "" (Sanitizer.report san);
  let s = R.Service.stats svc in
  Alcotest.(check bool) "work was served" true (s.R.Service.served > 0);
  Alcotest.(check bool) "low-priority work was shed" true (s.R.Service.shed > 0);
  Alcotest.(check bool) "watermark escalated" true
    (R.Service.escalations svc 0 > 0);
  (* The service's counters surface through the telemetry recorder. *)
  let rec_ = Telemetry.Recorder.create ~cycles_per_ns:1.0 ~nprocs:n () in
  R.Service.register svc rec_;
  let counters = Telemetry.Recorder.counters rec_ in
  Alcotest.(check (option int))
    "resilience_shed counter"
    (Some s.R.Service.shed)
    (List.assoc_opt "resilience_shed" counters);
  Alcotest.(check (option int))
    "resilience_escalations counter"
    (Some (R.Service.escalations svc 0))
    (List.assoc_opt "resilience_escalations" counters)

(* ---------- sim determinism: one service-wrapped overload cell ---------- *)

let overload_cell () =
  let module E = (val Exec.Backend.runner `Sim) in
  let nprocs = 2 in
  let group = Runtime.Group.create ~seed:33 nprocs in
  let store =
    Store.create ~structure:"skiplist" ~shards:2 ~capacity_per_shard:4096
      ~group ()
  in
  let ctx0 = Runtime.Group.ctx group 0 in
  let key_of r = Printf.sprintf "k%03d" r in
  for r = 0 to 63 do
    Store.put store ctx0 ~key:(key_of r) ~value:"seed"
  done;
  let clock = E.clock in
  let arrivals =
    Loadgen.Arrivals.Spike
      { base = 200_000.0; peak = 1_200_000.0; start_s = 0.002; len_s = 0.001 }
  in
  let plan =
    Loadgen.generate ~n:800 ~nkeys:64
      ~dist:(Loadgen.Dist.Zipfian 0.99)
      ~mix:{ Loadgen.get = 50; put = 25; delete = 5; scan = 20 }
      ~arrivals ~clock ~seed:17
  in
  let hooks =
    Array.init 2 (fun k ->
        {
          R.Service.limbo = (fun () -> Store.shard_limbo store k);
          pool = (fun () -> Store.shard_pool store k);
          wedged = (fun () -> Store.shard_wedged store k);
          escalate = (fun ctx -> Store.emergency_reclaim store ctx ~shard:k);
        })
  in
  let cfg =
    {
      R.Service.default_config with
      R.Service.deadline = Exec.Clock.cycles_of_us clock 200;
      backoff_base = Exec.Clock.cycles_of_us clock 1;
      backoff_cap = Exec.Clock.cycles_of_us clock 20;
      (* Watermarks scaled to this tiny cell so the burst actually
         reaches brownout and sheds scans. *)
      elevated = 4;
      brownout = 16;
    }
  in
  let svc = R.Service.create ~config:cfg ~pids:nprocs ~seed:33 hooks in
  let retryable = function
    | Memory.Arena.Out_of_memory _ | Memory.Arena.Arena_full _ -> true
    | _ -> false
  in
  let log = ref [] in
  let exec_op ctx ~due op =
    let pid = ctx.Runtime.Ctx.pid in
    let key, priority, work =
      match op with
      | Loadgen.Get r ->
          ( key_of r,
            R.Service.High,
            fun () -> ignore (Store.get store ctx (key_of r)) )
      | Loadgen.Put r ->
          ( key_of r,
            R.Service.High,
            fun () -> Store.put store ctx ~key:(key_of r) ~value:"w" )
      | Loadgen.Delete r ->
          ( key_of r,
            R.Service.High,
            fun () -> ignore (Store.delete store ctx (key_of r)) )
      | Loadgen.Scan (s, len) ->
          ( key_of s,
            R.Service.Low,
            fun () ->
              for i = s to s + len - 1 do
                ignore (Store.get store ctx (key_of (i mod 64)))
              done )
    in
    let shard = Store.shard_of_key store key in
    (shard, R.Service.call svc ctx ~pid ~shard ~priority ~due ~retryable work)
  in
  let record ~pid ~op ~shard ~outcome ~start ~finish =
    log := (pid, Loadgen.op_kind op, shard, outcome, start, finish) :: !log
  in
  let bodies = Loadgen.bodies plan ~group ~record ~exec_op in
  ignore (E.run group bodies);
  Store.check_invariants store;
  let s = R.Service.stats svc in
  (List.sort compare !log, s.R.Service.served, s.R.Service.shed)

let overload_cell_deterministic () =
  let log1, served1, shed1 = overload_cell () in
  let log2, served2, shed2 = overload_cell () in
  Alcotest.(check int) "all requests accounted" 800 (List.length log1);
  Alcotest.(check bool) "identical outcome log" true (log1 = log2);
  Alcotest.(check int) "served replays" served1 served2;
  Alcotest.(check int) "shed replays" shed1 shed2;
  Alcotest.(check bool) "burst sheds scans" true (shed1 > 0)

let () =
  Alcotest.run "resilience"
    [
      ("backoff", [ Alcotest.test_case "jitter" `Quick backoff_deterministic ]);
      ("retry-budget", [ Alcotest.test_case "tokens" `Quick retry_budget ]);
      ( "breaker",
        [
          Alcotest.test_case "trip and recover" `Quick breaker_trip_recover;
          Alcotest.test_case "probe failure reopens" `Quick
            breaker_probe_failure_reopens;
          Alcotest.test_case "force open" `Quick breaker_force_open;
        ] );
      ( "watermark",
        [ Alcotest.test_case "hysteresis" `Quick watermark_hysteresis ] );
      ( "degradation",
        [
          Alcotest.test_case "verdicts" `Quick degradation_verdicts;
          Alcotest.test_case "merge" `Quick degradation_merge;
        ] );
      ( "service",
        [
          Alcotest.test_case "shed under pressure, sanitized" `Quick
            shed_under_pressure;
          Alcotest.test_case "overload cell determinism" `Quick
            overload_cell_deterministic;
        ] );
    ]
