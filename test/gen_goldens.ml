(* Regenerates the golden history corpus under test/histories/.

   Usage: dune exec test/gen_goldens.exe -- test/histories

   Files are named <spec>__<label>__<ok|bad>.json; test_lincheck.ml's
   "golden corpus" test re-checks each against the verdict in its name.
   The ok histories are recorded from real harness runs on the default
   (no-preemption) schedule; the bad ones are hand-built violations. *)

module H = Lincheck.History
module Explore = Lincheck.Explore
module Lh = Workload.Lin_harness

let e ?(pid = 0) op res inv ret =
  {
    H.e_pid = pid;
    e_op = op;
    e_res = Some res;
    e_inv = inv;
    e_ret = ret;
    e_inv_time = inv;
    e_ret_time = ret;
  }

let pend ?(pid = 0) op inv =
  {
    H.e_pid = pid;
    e_op = op;
    e_res = None;
    e_inv = inv;
    e_ret = max_int;
    e_inv_time = inv;
    e_ret_time = max_int;
  }

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/histories" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let put name h =
    let path = Filename.concat dir name in
    H.save h path;
    Printf.printf "wrote %s (%d events)\n" path (H.ops h)
  in
  let cfg = { Lh.default_config with nprocs = 2; ops_per_proc = 4 } in
  let rec_cell ds scheme =
    Lh.run_once ~ds ~scheme cfg (Explore.policy_of_schedule [])
  in
  (* Recorded clean runs. *)
  put "set__list-debra__ok.json" (rec_cell "list" "debra");
  put "set__bst-hp__ok.json" (rec_cell "bst" "hp");
  put "set__skiplist-debra-plus__ok.json" (rec_cell "skiplist" "debra+");
  put "queue__ms-debra__ok.json" (rec_cell "queue" "debra");
  (* Hand-built: legal overlap with a pending op. *)
  put "set__pending-add__ok.json"
    [| pend ~pid:0 (H.Add 1) 0; e ~pid:1 (H.Mem 1) (H.RBool true) 1 2 |];
  (* Hand-built violations. *)
  put "set__stale-mem__bad.json"
    [|
      e ~pid:0 (H.Add 1) (H.RBool true) 0 1;
      e ~pid:1 (H.Mem 1) (H.RBool false) 2 3;
    |];
  put "queue__dup-deq__bad.json"
    [|
      e ~pid:0 (H.Enq 1) H.RUnit 0 1;
      e ~pid:0 (H.Enq 2) H.RUnit 2 3;
      e ~pid:1 H.Deq (H.RVal (Some 1)) 4 5;
      e ~pid:2 H.Deq (H.RVal (Some 1)) 6 7;
    |];
  put "stack__fifo-pop__bad.json"
    [|
      e ~pid:0 (H.Push 1) H.RUnit 0 1;
      e ~pid:0 (H.Push 2) H.RUnit 2 3;
      e ~pid:1 H.Pop (H.RVal (Some 1)) 4 5;
    |]
