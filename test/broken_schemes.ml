(* Deliberately broken reclamation schemes, shared by the sanitizer fuzz
   (test_sanitizer.ml) and the linearizability / exploration suite
   (test_lincheck.ml).  Both suites must reject these mutants — the
   sanitizer by classifying the violation, the explorer by finding a
   schedule whose run trips the arena's use-after-free / double-free traps
   and printing it for replay. *)

open Reclaim

(* EBR with the grace period deleted: retire frees immediately.  Every
   retire happens inside the retirer's own session, so the very first free
   is flagged premature against the retire-time session snapshot. *)
module Broken_ebr (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P =
struct
  module Pool = P

  type t = { env : Intf.Env.t; pool : P.t }

  let name = "broken-ebr"
  let create env pool = { env; pool }
  let supports_crash_recovery = false
  let allows_retired_traversal = true
  let sandboxed = false
  let leave_qstate t ctx = Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q
  let enter_qstate t ctx = Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q
  let is_quiescent _t _ctx = false
  let protect _t _ctx _p ~verify:_ = true
  let unprotect _t _ctx _p = ()
  let unprotect_all _t _ctx = ()
  let is_protected _t _ctx _p = true

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    (* The bug: no grace period. *)
    P.release t.pool ctx p

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false
  let limbo_size _t = 0
  let limbo_per_proc t = Array.make (Intf.Env.nprocs t.env) 0
  let epoch_lag t = Array.make (Intf.Env.nprocs t.env) 0
  let flush _t _ctx = ()
  let emergency_reclaim _t _ctx = 0
end

(* HP with the post-announce validation deleted: announce, skip the fence
   and the verify, trust the pointer.  The scan itself is honest (it keeps
   every announced record) — the only bug is the protect/scan race the
   validation step exists to close, which surfaces as an access to a
   retired (or already freed) record under a too-late hazard. *)
module Broken_hp (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P =
struct
  module Pool = P

  type local = { bags : Bag.Blockbag.t array }

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    rows : Runtime.Shared_array.t array;
    locals : local array;
    scanning : Bag.Hash_set.t array;
    threshold : int;
    k : int;
  }

  let name = "broken-hp"
  let supports_crash_recovery = false
  let allows_retired_traversal = false
  let sandboxed = false

  let create env pool =
    let n = Intf.Env.nprocs env in
    let params = env.Intf.Env.params in
    let k = params.Intf.Params.hp_slots in
    {
      env;
      pool;
      rows = Array.init n (fun _ -> Runtime.Shared_array.create k);
      locals =
        Array.init n (fun pid ->
            {
              bags =
                Array.init Memory.Ptr.max_arenas (fun _ ->
                    Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
            });
      scanning = Array.init n (fun _ -> Bag.Hash_set.create ~expected:(n * k));
      threshold = max 8 (params.Intf.Params.hp_retire_factor * n * k);
      k;
    }

  let leave_qstate t ctx = Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q

  let unprotect_all t ctx =
    Intf.Env.emit t.env ctx Memory.Smr_event.Unprotect_all;
    let row = t.rows.(ctx.Runtime.Ctx.pid) in
    for i = 0 to t.k - 1 do
      if Runtime.Shared_array.peek row i <> 0 then
        Runtime.Shared_array.set ctx row i 0
    done

  let enter_qstate t ctx =
    unprotect_all t ctx;
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q

  let is_quiescent _t _ctx = false

  let protect t ctx p ~verify:_ =
    let row = t.rows.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    let rec free_slot i =
      if i >= t.k then invalid_arg "Broken_hp.protect: out of slots"
      else if Runtime.Shared_array.peek row i = 0 then i
      else free_slot (i + 1)
    in
    Runtime.Shared_array.set ctx row (free_slot 0) p;
    Intf.Env.emit t.env ctx (Memory.Smr_event.Protect p);
    (* The bug: no fence, no verify — the announcement may already be too
       late, and nobody checks. *)
    true

  let unprotect t ctx p =
    let row = t.rows.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    let rec go i =
      if i < t.k then
        if Runtime.Shared_array.peek row i = p then begin
          Intf.Env.emit t.env ctx (Memory.Smr_event.Unprotect p);
          Runtime.Shared_array.set ctx row i 0
        end
        else go (i + 1)
    in
    go 0

  let is_protected t ctx p =
    let row = t.rows.(ctx.Runtime.Ctx.pid) in
    let p = Memory.Ptr.unmark p in
    let rec go i =
      i < t.k
      && (Runtime.Shared_array.peek row i = p || go (i + 1))
    in
    go 0

  let scan t ctx l =
    let scanning = t.scanning.(ctx.Runtime.Ctx.pid) in
    Scan_util.collect_announcements ctx ~into:scanning
      ~nprocs:(Intf.Env.nprocs t.env)
      ~row:(fun other -> t.rows.(other))
      ~count:(fun _ _ -> t.k);
    Array.iter
      (fun bag ->
        ignore
          (Scan_util.partition_and_release ctx bag ~protected:scanning
             ~release_block:(fun b -> P.release_block t.pool ctx b)))
      l.bags

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    Bag.Blockbag.add l.bags.(Memory.Ptr.arena_id p) p;
    let total =
      Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags
    in
    if total >= t.threshold then scan t ctx l

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let limbo_size t =
    Array.fold_left
      (fun acc l ->
        Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) acc l.bags)
      0 t.locals

  let limbo_per_proc t =
    Array.map
      (fun l -> Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags)
      t.locals

  let epoch_lag t = Array.make (Array.length t.locals) 0

  let flush t ctx =
    Array.iter
      (fun l ->
        Array.iter
          (fun b ->
            ignore
              (Scan_util.flush_bag ctx b
                 ~keep:(fun _ -> false)
                 ~release:(fun ctx p -> P.release t.pool ctx p)
                 ~release_block:(fun blk -> P.release_block t.pool ctx blk)))
          l.bags)
      t.locals

  let emergency_reclaim _t _ctx = 0
end

(* VBR with the version re-validation deleted: retire still reclaims full
   blocks immediately (that is VBR's whole point — no grace period), but
   [protect] trusts the pointer instead of re-checking the arena
   generation, and the scheme does not declare itself sandboxed, so the
   access-to-reclaimed-memory that real VBR turns into a checkpoint
   rollback is a fatal use-after-free here.  The first traversal that
   crosses a reclaimed block trips the arena's generation trap. *)
module Broken_vbr (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P =
struct
  module Pool = P

  type local = { bags : Bag.Blockbag.t array }

  type t = { env : Intf.Env.t; pool : P.t; locals : local array }

  let name = "broken-vbr"
  let supports_crash_recovery = false
  let allows_retired_traversal = false

  (* The bug, half one: no sandbox — stale accesses are not rolled back. *)
  let sandboxed = false

  let create env pool =
    {
      env;
      pool;
      locals =
        Array.init (Intf.Env.nprocs env) (fun pid ->
            {
              bags =
                Array.init Memory.Ptr.max_arenas (fun _ ->
                    Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
            });
    }

  let leave_qstate t ctx = Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q
  let enter_qstate t ctx = Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q
  let is_quiescent _t _ctx = false

  (* The bug, half two: no version re-validation before the dereference. *)
  let protect _t _ctx _p ~verify:_ = true
  let unprotect _t _ctx _p = ()
  let unprotect_all _t _ctx = ()
  let is_protected _t _ctx _p = true

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let bag = l.bags.(Memory.Ptr.arena_id p) in
    Bag.Blockbag.add bag p;
    if Bag.Blockbag.size_in_blocks bag > 1 then
      ignore
        (Bag.Blockbag.move_all_full_blocks bag ~into:(fun blk ->
             P.release_block t.pool ctx blk))

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    Array.fold_left (fun acc b -> acc + Bag.Blockbag.size b) 0 l.bags

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals
  let epoch_lag t = Array.make (Array.length t.locals) 0

  let flush t ctx =
    Array.iter
      (fun l ->
        Array.iter
          (fun b ->
            ignore
              (Scan_util.flush_bag ctx b
                 ~keep:(fun _ -> false)
                 ~release:(fun ctx p -> P.release t.pool ctx p)
                 ~release_block:(fun blk -> P.release_block t.pool ctx blk)))
          l.bags)
      t.locals

  let emergency_reclaim _t _ctx = 0
end

(* Hyaline with a batch-refcount accounting error: the seal initializes the
   reference count one short of the charged-session count (the classic lost
   reference).  With N in-flight readers charged, the count hits zero after
   only N-1 of them close their sessions, so the batch is freed while the
   last snapshotted session — often the retirer's own — is still open: a
   premature free, and a use-after-free for whoever is still traversing. *)
module Broken_hyaline (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P =
struct
  module Pool = P

  type batch = {
    bags : Bag.Blockbag.t array;
    mutable size : int;
    mutable max_era : int;
    charges : bool array;
    mutable rc : int;
    mutable freed : bool;
  }

  type local = {
    mutable open_batch : batch;
    mutable pending : batch list;
    mutable sealed : batch list;
  }

  type t = {
    env : Intf.Env.t;
    pool : P.t;
    era : int Runtime.Svar.t;
    slots : Runtime.Shared_array.t;
    my_slot : int array;
    locals : local array;
    batch_records : int;
  }

  let name = "broken-hyaline"
  let supports_crash_recovery = false
  let allows_retired_traversal = true
  let sandboxed = false

  let fresh_batch env n pid =
    {
      bags =
        Array.init Memory.Ptr.max_arenas (fun _ ->
            Bag.Blockbag.create env.Intf.Env.block_pools.(pid));
      size = 0;
      max_era = 0;
      charges = Array.make n false;
      rc = 0;
      freed = false;
    }

  let create env pool =
    let n = Intf.Env.nprocs env in
    {
      env;
      pool;
      era = Runtime.Svar.make 1;
      slots = Runtime.Shared_array.create n;
      my_slot = Array.make n 0;
      locals =
        Array.init n (fun pid ->
            { open_batch = fresh_batch env n pid; pending = []; sealed = [] });
      batch_records = env.Intf.Env.params.Intf.Params.block_capacity;
    }

  let free_batch t ctx b =
    Array.iter
      (fun bag ->
        ignore
          (Bag.Blockbag.move_all_full_blocks bag ~into:(fun blk ->
               P.release_block t.pool ctx blk));
        let rec go () =
          match Bag.Blockbag.pop bag with
          | Some p ->
              P.release t.pool ctx p;
              go ()
          | None -> ()
        in
        go ())
      b.bags

  let drop_references t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let l = t.locals.(pid) in
    let mine = l.pending in
    l.pending <- [];
    List.filter_map
      (fun b ->
        if b.charges.(pid) then begin
          b.charges.(pid) <- false;
          b.rc <- b.rc - 1;
          if b.rc <= 0 && not b.freed then begin
            b.freed <- true;
            Some b
          end
          else None
        end
        else None)
      mine

  let leave_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    let freeable = drop_references t ctx in
    List.iter (free_batch t ctx) freeable;
    let e = Runtime.Svar.get ctx t.era in
    t.my_slot.(pid) <- e;
    Runtime.Shared_array.set ctx t.slots pid e;
    Intf.Env.emit t.env ctx Memory.Smr_event.Leave_q

  let enter_qstate t ctx =
    let pid = ctx.Runtime.Ctx.pid in
    Intf.Env.emit t.env ctx Memory.Smr_event.Enter_q;
    let freeable = drop_references t ctx in
    t.my_slot.(pid) <- 0;
    Runtime.Shared_array.set ctx t.slots pid 0;
    List.iter (free_batch t ctx) freeable

  let is_quiescent t ctx = t.my_slot.(ctx.Runtime.Ctx.pid) = 0
  let protect _t _ctx _p ~verify:_ = true
  let unprotect _t _ctx _p = ()
  let unprotect_all _t _ctx = ()
  let is_protected _t _ctx _p = true

  let seal t ctx l =
    let b = l.open_batch in
    if b.size > 0 then begin
      let n = Intf.Env.nprocs t.env in
      l.open_batch <- fresh_batch t.env n ctx.Runtime.Ctx.pid;
      let e = Runtime.Svar.get ctx t.era in
      ignore (Runtime.Svar.cas ctx t.era ~expect:e (e + 1));
      let charged = ref 0 in
      for pid = 0 to n - 1 do
        let a = Runtime.Shared_array.get ctx t.slots pid in
        if a > 0 && a <= b.max_era then begin
          b.charges.(pid) <- true;
          incr charged
        end
      done;
      (* The bug: one reference is lost — [!charged - 1] instead of
         [!charged]. *)
      b.rc <- max 0 (!charged - 1);
      if b.rc = 0 then begin
        b.freed <- true;
        free_batch t ctx b
      end
      else begin
        Array.iteri
          (fun pid c ->
            if c then begin
              let lp = t.locals.(pid) in
              lp.pending <- b :: lp.pending
            end)
          b.charges;
        l.sealed <- b :: List.filter (fun x -> not x.freed) l.sealed
      end
    end

  let retire t ctx p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1;
    let p = Memory.Ptr.unmark p in
    Intf.Env.emit t.env ctx (Memory.Smr_event.Retire p);
    let l = t.locals.(ctx.Runtime.Ctx.pid) in
    let b = l.open_batch in
    let e = Runtime.Svar.get ctx t.era in
    if e > b.max_era then b.max_era <- e;
    Bag.Blockbag.add b.bags.(Memory.Ptr.arena_id p) p;
    b.size <- b.size + 1;
    if b.size >= t.batch_records then seal t ctx l

  let rprotect _t _ctx _p = ()
  let runprotect_all _t _ctx = ()
  let is_rprotected _t _ctx _p = false

  let local_limbo l =
    List.fold_left
      (fun acc b -> if b.freed then acc else acc + b.size)
      l.open_batch.size l.sealed

  let limbo_per_proc t = Array.map local_limbo t.locals
  let limbo_size t = Array.fold_left (fun acc l -> acc + local_limbo l) 0 t.locals
  let epoch_lag t = Array.make (Array.length t.locals) 0

  let flush t ctx =
    Array.iter
      (fun l ->
        List.iter
          (fun b ->
            if not b.freed then begin
              b.freed <- true;
              b.rc <- 0;
              free_batch t ctx b
            end)
          l.sealed;
        l.sealed <- [];
        l.pending <- [];
        free_batch t ctx l.open_batch;
        l.open_batch.size <- 0)
      t.locals

  let emergency_reclaim _t _ctx = 0
end

module RM_broken_ebr =
  Record_manager.Make (Alloc.Bump) (Pool.Direct) (Broken_ebr)
module RM_broken_hp = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Broken_hp)
module RM_broken_vbr =
  Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Broken_vbr)
module RM_broken_hyaline =
  Record_manager.Make (Alloc.Bump) (Pool.Direct) (Broken_hyaline)
