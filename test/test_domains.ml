(* Real-parallelism smoke tests: the same data structures and reclaimers
   run on OCaml domains (no simulator, hooks disabled, true preemption).
   On a single hardware core the domains timeslice, which still exercises
   atomicity and publication; on multicore machines this runs genuinely in
   parallel. *)

(* Small hosts: clamp domain counts to the runtime's recommendation, and
   skip (with a printed reason) the tests whose point is real parallelism
   when even two domains are not recommended. *)
let avail = Domain.recommended_domain_count ()
let clamp n = min n (max 1 avail)

let par_case name speed f =
  Alcotest.test_case name speed (fun () ->
      if avail < 2 then begin
        Printf.printf
          "SKIP %s: Domain.recommended_domain_count () = %d (< 2), no real \
           parallelism on this host\n%!"
          name avail;
        Alcotest.skip ()
      end
      else f ())

module RM_debra =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_hp =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hp.Make)

module H (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module L = Ds.Hm_list.Make (RM)

  let test_list ~n ~ops ~range ~seed () =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create group heap in
    let rm = RM.create env in
    let t = L.create rm ~capacity:(range + (n * ops) + 2) in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid |] in
      for _ = 1 to ops do
        let key = Random.State.int rng range in
        match Random.State.int rng 3 with
        | 0 -> if L.insert t ctx ~key ~value:key then net.(pid) <- net.(pid) + 1
        | 1 -> if L.delete t ctx key then net.(pid) <- net.(pid) - 1
        | _ -> ignore (L.contains t ctx key)
      done
    in
    let _elapsed, outcomes = Runtime.Domain_runner.run group (Array.init n body) in
    Array.iter
      (function
        | Runtime.Domain_runner.Finished -> ()
        | Crashed _ -> Alcotest.fail "unexpected crash")
      outcomes;
    L.check_invariants t;
    Alcotest.(check int) "net size" (Array.fold_left ( + ) 0 net) (L.size t)

  module Q = Ds.Ms_queue.Make (RM)

  let test_queue ~n ~ops ~seed () =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create group heap in
    let rm = RM.create env in
    let q = Q.create rm ~capacity:((n * ops) + 2) in
    let enq = Array.make n 0 and deq = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid |] in
      for i = 1 to ops do
        if Random.State.bool rng then begin
          Q.enqueue q ctx i;
          enq.(pid) <- enq.(pid) + 1
        end
        else if Option.is_some (Q.dequeue q ctx) then deq.(pid) <- deq.(pid) + 1
      done
    in
    ignore (Runtime.Domain_runner.run group (Array.init n body));
    let total a = Array.fold_left ( + ) 0 a in
    Alcotest.(check int) "conserved" (total enq) (total deq + Q.size q)
end

module RM_dplus =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)

module H_debra = H (RM_debra)
module H_hp = H (RM_hp)
module H_dplus = H (RM_dplus)

(* The arena's lock-free free list under real contention: domains hammer
   claim/release cycles; the live count and the no-double-free guarantee
   must survive. *)
let test_arena_freelist_parallel () =
  let n = clamp 4 in
  let arena =
    Memory.Arena.create ~heap_id:0 ~name:"par" ~mut_fields:1 ~const_fields:0
      ~capacity:4096 ()
  in
  let group = Runtime.Group.create ~seed:9 n in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    let rng = Random.State.make [| pid; 77 |] in
    let held = ref [] in
    for _ = 1 to 3000 do
      if Random.State.bool rng || !held = [] then begin
        let p =
          match Memory.Arena.claim_recycled ctx arena with
          | Some p -> p
          | None -> Memory.Arena.claim_fresh ctx arena
        in
        Memory.Arena.write ctx arena p 0 pid;
        held := p :: !held
      end
      else
        match !held with
        | p :: rest ->
            (* our own records: field must still hold our pid *)
            Alcotest.(check int) "no cross-corruption" pid
              (Memory.Arena.read ctx arena p 0);
            Memory.Arena.release ctx arena p ~recycle:true;
            held := rest
        | [] -> ()
    done;
    List.iter (fun p -> Memory.Arena.release ctx arena p ~recycle:true) !held
  in
  ignore (Runtime.Domain_runner.run group (Array.init n body));
  Alcotest.(check int) "all released" 0 (Memory.Arena.live_records arena);
  Alcotest.(check int) "allocs = frees" (Memory.Arena.total_allocs arena)
    (Memory.Arena.total_frees arena)

(* The lock-free shared bag under real contention: blocks are conserved
   and never duplicated across concurrent push/pop traffic. *)
let test_shared_bag_parallel () =
  let n = clamp 4 in
  let per_proc = 500 in
  let bag = Bag.Shared_bag.create () in
  let group = Runtime.Group.create ~seed:3 n in
  let popped = Array.make n 0 in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    let rng = Random.State.make [| pid; 31 |] in
    for i = 1 to per_proc do
      let b = Bag.Block.create 4 in
      for _ = 1 to 4 do
        Bag.Block.push b ((pid * 1_000_000) + i)
      done;
      Bag.Shared_bag.push ctx bag b;
      if Random.State.bool rng then
        match Bag.Shared_bag.pop ctx bag with
        | Some b' ->
            Alcotest.(check int) "block intact" 4 b'.Bag.Block.count;
            popped.(pid) <- popped.(pid) + 1
        | None -> ()
    done
  in
  ignore (Runtime.Domain_runner.run group (Array.init n body));
  let total_popped = Array.fold_left ( + ) 0 popped in
  Alcotest.(check int) "blocks conserved"
    ((n * per_proc) - total_popped)
    (Bag.Shared_bag.size_in_blocks bag)

(* Real cache-line padding: [~padded:true] must allocate each cell as an
   oversized heap block — so neighbouring announcement/epoch slots share no
   hardware line when trials run on this backend — without changing atomic
   behavior.  [Obj.reachable_words] counts headers, so n padded cells cost
   at least n * (pad_words - 1) words more than n plain [Atomic.make]. *)
let test_padding_is_real () =
  let n = 64 in
  let words a = Obj.reachable_words (Obj.repr a) in
  let padded = Runtime.Shared_array.create ~padded:true n in
  let unpadded = Runtime.Shared_array.create n in
  Alcotest.(check bool) "padded cells are oversized blocks" true
    (words padded - words unpadded >= n * 14);
  let ctx = Runtime.Ctx.make ~pid:0 ~nprocs:1 ~seed:7 in
  Runtime.Shared_array.set ctx padded 3 41;
  Alcotest.(check int) "set/get" 41 (Runtime.Shared_array.get ctx padded 3);
  Alcotest.(check int) "faa returns old" 41
    (Runtime.Shared_array.faa ctx padded 3 1);
  Alcotest.(check bool) "cas succeeds" true
    (Runtime.Shared_array.cas ctx padded 3 ~expect:42 43);
  Alcotest.(check bool) "cas fails on mismatch" false
    (Runtime.Shared_array.cas ctx padded 3 ~expect:42 44);
  Alcotest.(check int) "final value" 43 (Runtime.Shared_array.peek padded 3);
  Alcotest.(check int) "neighbours untouched" 0
    (Runtime.Shared_array.get ctx padded 2);
  Alcotest.(check int) "neighbours untouched" 0
    (Runtime.Shared_array.get ctx padded 4)

let () =
  Alcotest.run "domains"
    [
      ( "list",
        [
          par_case "debra 4 domains" `Quick
            (H_debra.test_list ~n:(clamp 4) ~ops:2000 ~range:64 ~seed:1);
          par_case "hp 4 domains" `Quick
            (H_hp.test_list ~n:(clamp 4) ~ops:2000 ~range:64 ~seed:2);
        ] );
      ( "queue",
        [
          par_case "debra 4 domains" `Quick
            (H_debra.test_queue ~n:(clamp 4) ~ops:2000 ~seed:3);
        ] );
      ( "debra+",
        [
          par_case "list under real domains" `Quick
            (H_dplus.test_list ~n:(clamp 4) ~ops:1500 ~range:32 ~seed:4);
        ] );
      ( "arena",
        [
          par_case "parallel freelist" `Quick
            test_arena_freelist_parallel;
        ] );
      ( "shared-bag",
        [
          par_case "parallel block transfer" `Quick
            test_shared_bag_parallel;
        ] );
      ( "padding",
        [
          (* no parallelism needed: checks the allocation shape itself *)
          Alcotest.test_case "padded cells get real hardware lines" `Quick
            test_padding_is_real;
        ] );
    ]
