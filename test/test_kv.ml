(* The sharded KV/session store (lib/kv) and the open-loop load generator
   (lib/loadgen): codec round-trips, deterministic shard routing, sequential
   store semantics on every index structure, the TTL-expiry retire path
   under the shadow-state sanitizer, and sim-backend determinism for one
   loadgen seed. *)

module Schemes = Workload.Schemes

(* ---------- codec ---------- *)

let roundtrip key value =
  let words = Kv.Codec.data_words ~key ~value in
  let meta = Kv.Codec.meta ~klen:(String.length key) ~vlen:(String.length value) in
  let k', v' = Kv.Codec.decode ~meta ~read:(fun i -> words.(i)) in
  Alcotest.(check string) "key" key k';
  Alcotest.(check string) "value" value v'

let codec_roundtrip () =
  roundtrip "a" "";
  roundtrip "abc" "hello";
  roundtrip "exactly" "seven77";
  (* 7 bytes *)
  roundtrip "eight-by" "boundary-crossing value";
  roundtrip "session:00001234" (String.make 40 'x');
  roundtrip (String.make 20 'k') (String.make 30 '\000');
  roundtrip "bin" "\x00\x7f\xff\x01"

let codec_keys () =
  (* Short keys (<= 7 bytes) are injective: pairwise distinct encodings,
     including length-distinguished prefixes. *)
  let shorts = [ "a"; "b"; "ab"; "ba"; "a\000"; "\000a"; "abcdefg"; "" ] in
  List.iteri
    (fun i ki ->
      List.iteri
        (fun j kj ->
          if i <> j then
            Alcotest.(check bool)
              (Printf.sprintf "distinct %S %S" ki kj)
              true
              (Kv.Codec.encode_key ki <> Kv.Codec.encode_key kj))
        shorts)
    shorts;
  (* Long keys hash into a range disjoint from short packs. *)
  let long = Kv.Codec.encode_key (String.make 64 'q') in
  Alcotest.(check bool) "long below short range" true (long < 1 lsl 59);
  Alcotest.(check bool) "long positive" true (long >= 0);
  (* Deterministic. *)
  Alcotest.(check int) "stable"
    (Kv.Codec.encode_key "session:42")
    (Kv.Codec.encode_key "session:42");
  (* Meta packs/unpacks. *)
  let m = Kv.Codec.meta ~klen:123 ~vlen:4567 in
  Alcotest.(check int) "klen" 123 (Kv.Codec.klen_of m);
  Alcotest.(check int) "vlen" 4567 (Kv.Codec.vlen_of m)

(* ---------- shard routing ---------- *)

module Store = Kv.Store.Make (Schemes.RM2_debra)

let fresh_store ?(structure = "hm_list") ?(shards = 8) () =
  let group = Runtime.Group.create ~seed:11 2 in
  ( Store.create ~structure ~shards ~capacity_per_shard:4096 ~group (),
    Runtime.Group.ctx group 0 )

let routing () =
  let t, _ = fresh_store () in
  let t2, _ = fresh_store () in
  let hits = Array.make (Store.nshards t) 0 in
  for i = 0 to 999 do
    let key = Printf.sprintf "session:%06d" i in
    let s = Store.shard_of_key t key in
    Alcotest.(check bool) "in range" true (s >= 0 && s < Store.nshards t);
    (* Same key, same shard, in any store with the same shard count. *)
    Alcotest.(check int) "deterministic" s (Store.shard_of_key t2 key);
    Alcotest.(check int) "stable" s (Store.shard_of_key t key);
    hits.(s) <- hits.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool) (Printf.sprintf "shard %d used" i) true (n > 0))
    hits

(* ---------- sequential semantics, every structure ---------- *)

let sequential structure () =
  let t, ctx = fresh_store ~structure ~shards:4 () in
  for i = 0 to 199 do
    Store.put t ctx
      ~key:(Printf.sprintf "k%04d" i)
      ~value:(Printf.sprintf "v%d" i)
  done;
  Alcotest.(check int) "size" 200 (Store.size t);
  Alcotest.(check (option string)) "hit" (Some "v7")
    (Store.get t ctx "k0007");
  Alcotest.(check (option string)) "miss" None (Store.get t ctx "k9999");
  (* Upsert replaces. *)
  Store.put t ctx ~key:"k0007" ~value:"fresh";
  Alcotest.(check (option string)) "upsert" (Some "fresh")
    (Store.get t ctx "k0007");
  Alcotest.(check int) "upsert keeps size" 200 (Store.size t);
  (* Long (hashed) keys verify on read. *)
  let long = "session:" ^ String.make 24 'z' in
  Store.put t ctx ~key:long ~value:"zzz";
  Alcotest.(check (option string)) "long key" (Some "zzz")
    (Store.get t ctx long);
  Alcotest.(check bool) "delete wins" true (Store.delete t ctx long);
  Alcotest.(check bool) "delete idempotent" false (Store.delete t ctx long);
  for i = 0 to 99 do
    ignore (Store.delete t ctx (Printf.sprintf "k%04d" i))
  done;
  Alcotest.(check int) "half left" 100 (Store.size t);
  Store.check_invariants t

(* ---------- TTL expiry retire path, sanitized, concurrent ---------- *)

module Ttl_harness (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module S = Kv.Store.Make (RM)

  let base_scheme =
    match String.index_opt RM.scheme_name '(' with
    | Some i -> String.sub RM.scheme_name 0 i
    | None -> RM.scheme_name

  let run () =
    let n = 3 in
    let group = Runtime.Group.create ~seed:5 n in
    let t =
      S.create ~structure:"hm_list" ~shards:1 ~capacity_per_shard:2048 ~group
        ()
    in
    let heap = (S.heaps t).(0) in
    let san =
      Sanitizer.create
        ~config:
          (Sanitizer.Config.of_flags ~scheme:base_scheme
             ~supports_crash_recovery:RM.supports_crash_recovery
             ~allows_retired_traversal:RM.allows_retired_traversal
             ~sandboxed:RM.sandboxed ())
        ~heap ~group
    in
    let retires = ref 0 in
    let sub =
      Memory.Heap.add_sink heap (fun _ctx ev ->
          match ev with Memory.Smr_event.Retire _ -> incr retires | _ -> ())
    in
    let expired_misses = ref 0 in
    Sanitizer.with_checks san (fun () ->
        let body pid () =
          let ctx = Runtime.Group.ctx group pid in
          let rng = Random.State.make [| 5; pid |] in
          for i = 1 to 150 do
            let key = Printf.sprintf "s%d" (Random.State.int rng 24) in
            match i mod 3 with
            | 0 ->
                (* Short-lived session: expires after 3k cycles. *)
                S.put ~ttl:3_000 t ctx ~key ~value:(Printf.sprintf "p%d" pid)
            | 1 ->
                (* Let sessions age past their deadline. *)
                Runtime.Ctx.work ctx 2_000;
                if S.get t ctx key = None then incr expired_misses
            | _ -> ignore (S.delete t ctx key)
          done
        in
        ignore
          (Sim.run
             ~machine:(Machine.Config.tiny ~contexts:4 ())
             group
             (Array.init n body));
        let ctx0 = Runtime.Group.ctx group 0 in
        S.check_invariants t;
        S.flush t ctx0;
        Sanitizer.leak_check san ~limbo_size:(S.limbo t));
    Memory.Heap.remove_sink heap sub;
    Alcotest.(check string) (base_scheme ^ ": sanitizer clean") ""
      (Sanitizer.report san);
    Alcotest.(check bool) (base_scheme ^ ": retires flowed") true (!retires > 0);
    Alcotest.(check bool)
      (base_scheme ^ ": expiry observed")
      true (!expired_misses > 0)
end

module Ttl_debra = Ttl_harness (Schemes.RM2_debra)
module Ttl_debra_plus = Ttl_harness (Schemes.RM2_debra_plus)
module Ttl_hp = Ttl_harness (Schemes.RM2_hp)

(* ---------- sim determinism for one loadgen seed ---------- *)

let loadgen_plan () =
  let clock = Exec.Clock.sim in
  let mk () =
    Loadgen.generate ~n:500 ~nkeys:64
      ~dist:(Loadgen.Dist.Zipfian 0.99)
      ~mix:{ Loadgen.get = 60; put = 25; delete = 10; scan = 5 }
      ~arrivals:(Loadgen.Arrivals.Poisson 1_000_000.0)
      ~clock ~seed:42
  in
  let a = mk () and b = mk () in
  Alcotest.(check (array int)) "arrivals replay" a.Loadgen.arrivals b.Loadgen.arrivals;
  Alcotest.(check bool) "ops replay" true (a.Loadgen.ops = b.Loadgen.ops);
  (* Arrivals are monotone. *)
  Array.iteri
    (fun i c ->
      if i > 0 then
        Alcotest.(check bool) "monotone" true (c >= a.Loadgen.arrivals.(i - 1)))
    a.Loadgen.arrivals

let open_loop_run () =
  let module E = (val Exec.Backend.runner `Sim) in
  let group = Runtime.Group.create ~seed:9 2 in
  let t =
    Store.create ~structure:"skiplist" ~shards:2 ~capacity_per_shard:4096
      ~group ()
  in
  let ctx0 = Runtime.Group.ctx group 0 in
  for r = 0 to 63 do
    Store.put t ctx0 ~key:(Printf.sprintf "k%03d" r) ~value:"seed"
  done;
  let plan =
    Loadgen.generate ~n:400 ~nkeys:64
      ~dist:(Loadgen.Dist.Zipfian 0.99)
      ~mix:{ Loadgen.get = 70; put = 20; delete = 10; scan = 0 }
      ~arrivals:(Loadgen.Arrivals.Poisson 2_000_000.0)
      ~clock:E.clock ~seed:13
  in
  let key_of r = Printf.sprintf "k%03d" r in
  (* No admission-control layer here: every request is served. *)
  let exec_op ctx ~due:_ op =
    let shard =
      match op with
      | Loadgen.Get r ->
          ignore (Store.get t ctx (key_of r));
          Store.shard_of_key t (key_of r)
      | Loadgen.Put r ->
          Store.put t ctx ~key:(key_of r) ~value:"w";
          Store.shard_of_key t (key_of r)
      | Loadgen.Delete r ->
          ignore (Store.delete t ctx (key_of r));
          Store.shard_of_key t (key_of r)
      | Loadgen.Scan (s, len) ->
          for i = s to s + len - 1 do
            ignore (Store.get t ctx (key_of (i mod 64)))
          done;
          Store.shard_of_key t (key_of s)
    in
    (shard, Loadgen.Served)
  in
  let log = ref [] in
  let record ~pid ~op ~shard ~outcome ~start ~finish =
    Alcotest.(check bool) "served" true (outcome = Loadgen.Served);
    log := (pid, Loadgen.op_kind op, shard, start, finish) :: !log
  in
  let bodies = Loadgen.bodies plan ~group ~record ~exec_op in
  ignore (E.run group bodies);
  Store.check_invariants t;
  (List.length !log, List.sort compare !log, Store.size t)

let open_loop_deterministic () =
  let n1, log1, size1 = open_loop_run () in
  let n2, log2, size2 = open_loop_run () in
  Alcotest.(check int) "all requests served" 400 n1;
  Alcotest.(check int) "same count" n1 n2;
  Alcotest.(check int) "same final size" size1 size2;
  Alcotest.(check bool) "identical request log" true (log1 = log2);
  (* Open-loop accounting: latency runs from the scheduled arrival, so
     finish >= start for every request. *)
  List.iter
    (fun (_, _, _, start, finish) ->
      Alcotest.(check bool) "finish after arrival" true (finish >= start))
    log1

let () =
  Alcotest.run "kv"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick codec_roundtrip;
          Alcotest.test_case "keys" `Quick codec_keys;
        ] );
      ("routing", [ Alcotest.test_case "shards" `Quick routing ]);
      ( "sequential",
        List.map
          (fun s -> Alcotest.test_case s `Quick (sequential s))
          [ "hm_list"; "skiplist"; "bst"; "hash" ] );
      ( "ttl-retire-sanitized",
        [
          Alcotest.test_case "debra" `Quick Ttl_debra.run;
          Alcotest.test_case "debra+" `Quick Ttl_debra_plus.run;
          Alcotest.test_case "hp" `Quick Ttl_hp.run;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "plan replay" `Quick loadgen_plan;
          Alcotest.test_case "open-loop determinism" `Quick
            open_loop_deterministic;
        ] );
    ]
