(* Interleaving fuzz for the shadow-state SMR sanitizer (lib/sanitizer).

   Two directions of evidence:
   - every real scheme, on every structure, across a sweep of `Random_walk
     schedules, produces ZERO violations and drains its limbo to zero after
     a quiescent shutdown (the shadow ledger agrees with the reclaimer's own
     limbo_size);
   - two deliberately broken reclaimers are caught and correctly
     classified: an EBR that skips the grace period (premature-free) and an
     HP that skips the post-announce validation (unprotected-access).

   ThreadScan runs with a delete-buffer threshold its workload never
   reaches, so all collection happens in the final flush: TS's signal-scan
   is genuinely unsound for structures whose traversals cross retired
   records (paper §3, reproduced by test_threadscan.ml), and the sanitizer
   would — correctly — flag it.  See DESIGN.md §"Sanitizer". *)

open Reclaim

let seeds = [ 11; 23; 37; 41; 59; 101; 211; 307 ]

let fuzz_params =
  {
    Intf.Params.default with
    Intf.Params.block_capacity = 4;
    check_thresh = 1;
    incr_thresh = 1;
    pool_cap_blocks = 2;
    hp_slots = 24;
    hp_retire_factor = 1;
    suspect_blocks = 1;
    st_segment_accesses = 4;
    (* never reached: ThreadScan collects only in the final flush *)
    ts_buffer_blocks = 1000;
  }

let machine = Machine.Config.tiny ~contexts:4 ()
let nprocs = 3
let ops_per_proc = 60
let key_range = 16
let capacity = 4096

(* The real matrix: shared pool behind the epoch schemes, direct pool for
   the HP family (generation checks then give a faithful freed-oracle),
   recycling allocator for StackTrack, as in the benchmark matrix. *)
module RM_ebr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Ebr.Make)
module RM_qsbr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Qsbr.Make)
module RM_debra = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra.Make)
module RM_debra_plus =
  Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra_plus.Make)
module RM_hp = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Hp.Make)
module RM_rc = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Rc.Make)
module RM_ts = Record_manager.Make (Alloc.Bump) (Pool.Direct) (Threadscan.Make)
module RM_st =
  Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Stacktrack.Make)
module RM_none =
  Record_manager.Make (Alloc.Bump) (Pool.Direct) (None_reclaimer.Make)

(* VBR must ride the recycling allocator: its versions ARE the arena
   generation counters, so every free has to route through the arena and
   bump the slot generation.  Hyaline pairs like the other epoch schemes. *)
module RM_vbr = Record_manager.Make (Alloc.Recycle) (Pool.Direct) (Vbr.Make)
module RM_hyaline =
  Record_manager.Make (Alloc.Bump) (Pool.Shared) (Hyaline.Make)

module Fuzz (RM : Intf.RECORD_MANAGER) = struct
  module L = Ds.Hm_list.Make (RM)
  module B = Ds.Efrb_bst.Make (RM)
  module Q = Ds.Ms_queue.Make (RM)

  let config ~scheme =
    Sanitizer.Config.of_flags ~scheme
      ~supports_crash_recovery:RM.supports_crash_recovery
      ~allows_retired_traversal:RM.allows_retired_traversal
      ~sandboxed:RM.sandboxed ()

  (* Quiescent shutdown: cycle every process through enough operation
     boundaries that every grace period expires and every announcement is
     retracted, then flush whatever is still in limbo. *)
  let drain group rm =
    for _ = 1 to 30 do
      Array.iter
        (fun ctx ->
          RM.leave_qstate rm ctx;
          RM.enter_qstate rm ctx)
        group.Runtime.Group.ctxs
    done;
    RM.flush rm (Runtime.Group.ctx group 0)

  (* Build the structure, run one `Random_walk schedule, shut down
     quiescently, reconcile the leak ledger — all under the sanitizer. *)
  let exercise ?config:cfg ~scheme ~seed build =
    let group = Runtime.Group.create ~seed nprocs in
    let heap = Memory.Heap.create () in
    let env = Intf.Env.create ~params:fuzz_params group heap in
    let rm = RM.create env in
    let config =
      match cfg with Some c -> c | None -> config ~scheme
    in
    let san = Sanitizer.create ~config ~heap ~group in
    let crashed = ref false in
    (try
       Sanitizer.with_checks san (fun () ->
           let bodies = build group rm in
           ignore
             (Sim.run ~machine ~policy:(`Random_walk seed) group bodies);
           drain group rm;
           Sanitizer.leak_check san ~limbo_size:(RM.limbo_size rm))
     with
    | Memory.Arena.Use_after_free _ | Memory.Arena.Double_free _ | Sim.Stuck _
      ->
        (* Only the deliberately broken schemes get here: the arena's own
           generation check fired after the sanitizer already recorded the
           violation.  The clean-matrix assertions reject any crash. *)
        crashed := true);
    (san, rm, !crashed)

  let build_list group rm =
    let t = L.create rm ~capacity in
    Array.init nprocs (fun pid () ->
        let ctx = Runtime.Group.ctx group pid in
        let rng = Random.State.make [| 0xda7a; pid |] in
        for _ = 1 to ops_per_proc do
          let key = Random.State.int rng key_range in
          match Random.State.int rng 3 with
          | 0 -> ignore (L.insert t ctx ~key ~value:(key * 2))
          | 1 -> ignore (L.delete t ctx key)
          | _ -> ignore (L.contains t ctx key)
        done)

  let build_bst group rm =
    let t = B.create rm ~capacity in
    Array.init nprocs (fun pid () ->
        let ctx = Runtime.Group.ctx group pid in
        let rng = Random.State.make [| 0xb57; pid |] in
        for _ = 1 to ops_per_proc do
          let key = Random.State.int rng key_range in
          match Random.State.int rng 3 with
          | 0 -> ignore (B.insert t ctx ~key ~value:(key * 2))
          | 1 -> ignore (B.delete t ctx key)
          | _ -> ignore (B.contains t ctx key)
        done)

  let build_queue group rm =
    let t = Q.create rm ~capacity in
    Array.init nprocs (fun pid () ->
        let ctx = Runtime.Group.ctx group pid in
        let rng = Random.State.make [| 0xc0ffee; pid |] in
        for _ = 1 to ops_per_proc do
          if Random.State.int rng 5 < 3 then
            Q.enqueue t ctx (Random.State.int rng 1000)
          else ignore (Q.dequeue t ctx)
        done)

  let assert_clean ~name (san, rm, crashed) =
    Alcotest.(check bool) (name ^ ": no crash") false crashed;
    Alcotest.(check string) (name ^ ": violations") "" (Sanitizer.report san);
    Alcotest.(check int) (name ^ ": limbo drained") 0 (RM.limbo_size rm);
    Alcotest.(check int)
      (name ^ ": shadow ledger drained")
      0
      (Sanitizer.retired_unfreed san);
    Alcotest.(check bool)
      (name ^ ": hook chain wired")
      true
      (Sanitizer.accesses_checked san > 0)

  let clean ~scheme build_name build () =
    List.iter
      (fun seed ->
        let name = Printf.sprintf "%s/%s/seed=%d" scheme build_name seed in
        assert_clean ~name (exercise ~scheme ~seed build))
      seeds

  let tests ~scheme =
    [
      Alcotest.test_case
        (Printf.sprintf "%s list clean" scheme)
        `Quick
        (clean ~scheme "hm_list" build_list);
      Alcotest.test_case
        (Printf.sprintf "%s bst clean" scheme)
        `Quick
        (clean ~scheme "efrb_bst" build_bst);
      Alcotest.test_case
        (Printf.sprintf "%s queue clean" scheme)
        `Quick
        (clean ~scheme "ms_queue" build_queue);
    ]
end

module F_ebr = Fuzz (RM_ebr)
module F_qsbr = Fuzz (RM_qsbr)
module F_debra = Fuzz (RM_debra)
module F_debra_plus = Fuzz (RM_debra_plus)
module F_hp = Fuzz (RM_hp)
module F_rc = Fuzz (RM_rc)
module F_ts = Fuzz (RM_ts)
module F_st = Fuzz (RM_st)
module F_none = Fuzz (RM_none)
module F_vbr = Fuzz (RM_vbr)
module F_hyaline = Fuzz (RM_hyaline)

(* ------------------------------------------------------------------ *)
(* Deliberately broken schemes: the sanitizer must catch and classify. *)

(* The broken reclaimers themselves live in broken_schemes.ml, shared with
   the linearizability/exploration suite (test_lincheck.ml). *)
module F_broken_ebr = Fuzz (Broken_schemes.RM_broken_ebr)
module F_broken_hp = Fuzz (Broken_schemes.RM_broken_hp)
module F_broken_vbr = Fuzz (Broken_schemes.RM_broken_vbr)
module F_broken_hyaline = Fuzz (Broken_schemes.RM_broken_hyaline)

(* The broken runs are expected to crash the arena sooner or later; the
   shadow ledger is meaningless for them.  What matters is the
   classification: premature-free for the missing grace period,
   unprotected-access for the missing validation. *)
let broken_config ~scheme ~access ~free =
  Sanitizer.Config.make ~track_limbo:false ~scheme ~access ~free ()

let test_broken_ebr () =
  let caught =
    List.exists
      (fun seed ->
        let san, _rm, _crashed =
          F_broken_ebr.exercise
            ~config:
              (broken_config ~scheme:"broken-ebr" ~access:Sanitizer.Epoch
                 ~free:Sanitizer.Grace_session)
            ~scheme:"broken-ebr" ~seed F_broken_ebr.build_list
        in
        Sanitizer.has san Sanitizer.Premature_free)
      seeds
  in
  Alcotest.(check bool) "premature-free caught" true caught

let test_broken_ebr_classification () =
  (* Single-seed determinism: the first concurrent retire is already
     premature (the retirer itself is still inside its session). *)
  let san, _rm, _crashed =
    F_broken_ebr.exercise
      ~config:
        (broken_config ~scheme:"broken-ebr" ~access:Sanitizer.Epoch
           ~free:Sanitizer.Grace_session)
      ~scheme:"broken-ebr" ~seed:11 F_broken_ebr.build_list
  in
  Alcotest.(check bool)
    "at least one violation" true
    (Sanitizer.violation_count san > 0);
  List.iter
    (fun v ->
      match v.Sanitizer.kind with
      | Sanitizer.Premature_free | Sanitizer.Use_after_free
      | Sanitizer.Double_free ->
          ()
      | k ->
          Alcotest.failf "unexpected violation kind %s"
            (Sanitizer.kind_name k))
    (Sanitizer.violations san)

let test_broken_hp () =
  let caught =
    List.exists
      (fun seed ->
        let san, _rm, _crashed =
          F_broken_hp.exercise
            ~config:
              (broken_config ~scheme:"broken-hp" ~access:Sanitizer.Hazard
                 ~free:Sanitizer.Hazard_scan)
            ~scheme:"broken-hp" ~seed F_broken_hp.build_list
        in
        Sanitizer.has san Sanitizer.Unprotected_access)
      seeds
  in
  Alcotest.(check bool) "unprotected-access caught" true caught

(* Broken VBR frees eagerly (as real VBR does) but dereferences without
   re-validating the version, and without the sandbox that turns a stale
   access into a rollback.  Real VBR earns the lenient/skip discipline
   precisely because of that validation; a VBR that stops validating is
   just an epoch scheme with no grace period, so it is held to the
   epoch/grace-session discipline — under which its in-session block
   frees are premature (the retirer itself is still inside the session
   open at the triggering retire), and any traversal that does cross a
   reclaimed record is a use-after-free or an arena generation trap.

   The workload churns per-pid disjoint keys so every delete succeeds:
   broken VBR only frees once a whole block of retires accumulates at one
   process, so the random mixed workload (where a process may win only a
   handful of deletes) can legitimately end the run with every bag still
   below a full block. *)
let build_list_churn group rm =
  let t = F_broken_vbr.L.create rm ~capacity in
  Array.init nprocs (fun pid () ->
      let ctx = Runtime.Group.ctx group pid in
      for i = 1 to 100 do
        let key = (pid * 64) + (i mod 48) in
        ignore (F_broken_vbr.L.insert t ctx ~key ~value:1);
        ignore (F_broken_vbr.L.delete t ctx key)
      done)

let test_broken_vbr () =
  let caught =
    List.exists
      (fun seed ->
        let san, _rm, crashed =
          F_broken_vbr.exercise
            ~config:
              (broken_config ~scheme:"broken-vbr" ~access:Sanitizer.Epoch
                 ~free:Sanitizer.Grace_session)
            ~scheme:"broken-vbr" ~seed build_list_churn
        in
        Sanitizer.has san Sanitizer.Premature_free
        || Sanitizer.has san Sanitizer.Use_after_free
        || crashed)
      seeds
  in
  Alcotest.(check bool) "missing validation caught" true caught

(* Broken Hyaline loses one batch reference at seal time, so the batch is
   freed while the last charged session is still open: under the
   grace-session free discipline that is a premature free, classified
   exactly like the broken EBR's missing grace period. *)
let test_broken_hyaline () =
  let caught =
    List.exists
      (fun seed ->
        let san, _rm, _crashed =
          F_broken_hyaline.exercise
            ~config:
              (broken_config ~scheme:"broken-hyaline" ~access:Sanitizer.Epoch
                 ~free:Sanitizer.Grace_session)
            ~scheme:"broken-hyaline" ~seed F_broken_hyaline.build_list
        in
        Sanitizer.has san Sanitizer.Premature_free)
      seeds
  in
  Alcotest.(check bool) "premature-free caught" true caught

let test_broken_hyaline_classification () =
  let san, _rm, _crashed =
    F_broken_hyaline.exercise
      ~config:
        (broken_config ~scheme:"broken-hyaline" ~access:Sanitizer.Epoch
           ~free:Sanitizer.Grace_session)
      ~scheme:"broken-hyaline" ~seed:11 F_broken_hyaline.build_list
  in
  Alcotest.(check bool)
    "at least one violation" true
    (Sanitizer.violation_count san > 0);
  List.iter
    (fun v ->
      match v.Sanitizer.kind with
      | Sanitizer.Premature_free | Sanitizer.Use_after_free
      | Sanitizer.Double_free ->
          ()
      | k ->
          Alcotest.failf "unexpected violation kind %s" (Sanitizer.kind_name k))
    (Sanitizer.violations san)

(* The sanitizer's own state machine, exercised directly (no simulator):
   premature free and access-after-free on a half-instrumented toy.  A
   second Retire of the same incarnation is deliberately emitted and must
   be {e ignored} (not flagged, not double-counted in the limbo ledger):
   the double-retire check moved into the type system — [Typed.retire]
   consumes its witness — so the sanitizer treats the event as a no-op. *)
let test_state_machine_direct () =
  let group = Runtime.Group.create ~seed:1 2 in
  let heap = Memory.Heap.create () in
  let arena =
    Memory.Heap.new_arena heap ~name:"toy" ~mut_fields:1 ~const_fields:0
      ~capacity:64
  in
  let ctx0 = Runtime.Group.ctx group 0 in
  let ctx1 = Runtime.Group.ctx group 1 in
  let config =
    Sanitizer.Config.make ~scheme:"toy" ~access:Sanitizer.Epoch
      ~free:Sanitizer.Grace_session ()
  in
  let san = Sanitizer.create ~config ~heap ~group in
  Sanitizer.with_checks san (fun () ->
      let p = Memory.Arena.claim_fresh ctx0 arena in
      Memory.Arena.write ctx0 arena p 0 1;
      (* publication: a non-owner access *)
      ignore (Memory.Arena.read ctx1 arena p 0);
      Memory.Heap.emit heap ctx1 Memory.Smr_event.Leave_q;
      Memory.Heap.emit heap ctx0 (Memory.Smr_event.Retire p);
      Memory.Heap.emit heap ctx0 (Memory.Smr_event.Retire p);
      (* freeing while pid 1 is still in the session open at retire *)
      Memory.Arena.release ctx0 arena p ~recycle:true;
      (* the record is freed now: any instrumented access is flagged *)
      (try ignore (Memory.Arena.read ctx1 arena p 0)
       with Memory.Arena.Use_after_free _ -> ());
      Sanitizer.leak_check san ~limbo_size:0);
  Alcotest.(check bool) "premature free" true
    (Sanitizer.has san Sanitizer.Premature_free);
  Alcotest.(check bool) "use after free" true
    (Sanitizer.has san Sanitizer.Use_after_free);
  Alcotest.(check bool) "no leak flagged" false
    (Sanitizer.has san Sanitizer.Leak)

let () =
  Alcotest.run "sanitizer"
    [
      ("state-machine", [ Alcotest.test_case "direct" `Quick test_state_machine_direct ]);
      ("ebr", F_ebr.tests ~scheme:"ebr");
      ("qsbr", F_qsbr.tests ~scheme:"qsbr");
      ("debra", F_debra.tests ~scheme:"debra");
      ("debra+", F_debra_plus.tests ~scheme:"debra+");
      ("hp", F_hp.tests ~scheme:"hp");
      ("rc", F_rc.tests ~scheme:"rc");
      ("threadscan", F_ts.tests ~scheme:"threadscan");
      ("stacktrack", F_st.tests ~scheme:"stacktrack");
      ("none", F_none.tests ~scheme:"none");
      ("vbr", F_vbr.tests ~scheme:"vbr");
      ("hyaline", F_hyaline.tests ~scheme:"hyaline");
      ( "broken",
        [
          Alcotest.test_case "broken ebr caught" `Quick test_broken_ebr;
          Alcotest.test_case "broken ebr classified" `Quick
            test_broken_ebr_classification;
          Alcotest.test_case "broken hp caught" `Quick test_broken_hp;
          Alcotest.test_case "broken vbr caught" `Quick test_broken_vbr;
          Alcotest.test_case "broken hyaline caught" `Quick test_broken_hyaline;
          Alcotest.test_case "broken hyaline classified" `Quick
            test_broken_hyaline_classification;
        ] );
    ]
