(* Linearizability checker + systematic exploration (lib/lincheck).

   Four directions of evidence:
   - the WGL checker gives the right verdict on hand-written histories
     (overlap legality, real-time precedence, FIFO/LIFO order, pending
     operations, minimal counterexample prefixes);
   - histories round-trip through JSON, and the golden corpus under
     test/histories/ re-checks to the verdict encoded in each file name;
   - bounded-preemption exploration of correct scheme x structure cells
     passes while actually exploring (several schedules, real branch
     points), and recorded schedules replay deterministically;
   - the apparatus has teeth: the broken-EBR and broken-HP reclaimers from
     broken_schemes.ml and the seeded mutant_queue.ml (dequeue missing its
     head re-validation CAS) are each rejected with a replayable schedule.

   The heavyweight 9-schemes x 4-structures matrix lives in
   lincheck_matrix.ml behind the @lincheck-matrix alias, not in tier-1. *)

module H = Lincheck.History
module Spec = Lincheck.Spec
module Checker = Lincheck.Checker
module Explore = Lincheck.Explore
module Lh = Workload.Lin_harness

(* ------------------------------------------------------------------ *)
(* Hand-written histories *)

let e ?(pid = 0) op res inv ret =
  {
    H.e_pid = pid;
    e_op = op;
    e_res = Some res;
    e_inv = inv;
    e_ret = ret;
    e_inv_time = inv;
    e_ret_time = ret;
  }

let pend ?(pid = 0) op inv =
  {
    H.e_pid = pid;
    e_op = op;
    e_res = None;
    e_inv = inv;
    e_ret = max_int;
    e_inv_time = inv;
    e_ret_time = max_int;
  }

let is_lin spec h =
  match Checker.check spec h with
  | Checker.Linearizable -> true
  | Checker.Non_linearizable _ -> false

let test_set_overlap () =
  (* mem(1) runs concurrently with add(1): both answers are legal. *)
  let base b =
    [|
      e ~pid:0 (H.Add 1) (H.RBool true) 0 3;
      e ~pid:1 (H.Mem 1) (H.RBool b) 1 2;
    |]
  in
  Alcotest.(check bool) "concurrent mem=true" true (is_lin Spec.set (base true));
  Alcotest.(check bool)
    "concurrent mem=false" true
    (is_lin Spec.set (base false))

let test_set_precedence () =
  (* add(1) completed strictly before mem(1): only true is legal now. *)
  let h b =
    [|
      e ~pid:0 (H.Add 1) (H.RBool true) 0 1;
      e ~pid:1 (H.Mem 1) (H.RBool b) 2 3;
    |]
  in
  Alcotest.(check bool) "later mem=true ok" true (is_lin Spec.set (h true));
  Alcotest.(check bool)
    "stale mem=false rejected" false
    (is_lin Spec.set (h false));
  (* ... and a mem(1)=true with no add anywhere cannot linearize. *)
  Alcotest.(check bool)
    "mem=true from thin air rejected" false
    (is_lin Spec.set [| e (H.Mem 1) (H.RBool true) 0 1 |])

let test_set_minimal_prefix () =
  (* The violation is complete once the stale mem returns: the minimal
     prefix must stop there and drop the trailing unrelated op. *)
  let h =
    [|
      e ~pid:0 (H.Add 1) (H.RBool true) 0 1;
      e ~pid:1 (H.Mem 1) (H.RBool false) 2 3;
      e ~pid:0 (H.Add 2) (H.RBool true) 4 5;
    |]
  in
  match Checker.check Spec.set h with
  | Checker.Linearizable -> Alcotest.fail "expected non-linearizable"
  | Checker.Non_linearizable p ->
      Alcotest.(check int) "minimal prefix has 2 events" 2 (H.ops p)

let test_queue_fifo () =
  let enq v i = e ~pid:0 (H.Enq v) H.RUnit i (i + 1) in
  let deq ?(pid = 1) v i = e ~pid H.Deq (H.RVal (Some v)) i (i + 1) in
  Alcotest.(check bool)
    "fifo order ok" true
    (is_lin Spec.queue [| enq 1 0; enq 2 2; deq 1 4; deq 2 6 |]);
  Alcotest.(check bool)
    "lifo order rejected" false
    (is_lin Spec.queue [| enq 1 0; enq 2 2; deq 2 4; deq 1 6 |]);
  Alcotest.(check bool)
    "duplicate dequeue rejected" false
    (is_lin Spec.queue
       [| enq 1 0; enq 2 2; deq 1 4; deq ~pid:2 1 6 |]);
  Alcotest.(check bool)
    "empty dequeue while nonempty rejected" false
    (is_lin Spec.queue [| enq 1 0; e ~pid:1 H.Deq (H.RVal None) 2 3 |])

let test_stack_lifo () =
  let push v i = e ~pid:0 (H.Push v) H.RUnit i (i + 1) in
  let pop v i = e ~pid:1 H.Pop (H.RVal (Some v)) i (i + 1) in
  Alcotest.(check bool)
    "lifo ok" true
    (is_lin Spec.stack [| push 1 0; push 2 2; pop 2 4; pop 1 6 |]);
  Alcotest.(check bool)
    "fifo rejected" false
    (is_lin Spec.stack [| push 1 0; push 2 2; pop 1 4; pop 2 6 |])

let test_pending () =
  (* A pending add may (but need not) linearize: both observations of the
     set are legal while it is in flight. *)
  let h b =
    [| pend ~pid:0 (H.Add 1) 0; e ~pid:1 (H.Mem 1) (H.RBool b) 1 2 |]
  in
  Alcotest.(check bool) "pending add seen" true (is_lin Spec.set (h true));
  Alcotest.(check bool) "pending add unseen" true (is_lin Spec.set (h false));
  (* A pending dequeue cannot excuse a duplicate completed dequeue. *)
  Alcotest.(check bool)
    "pending op cannot fix duplicate" false
    (is_lin Spec.queue
       [|
         e ~pid:0 (H.Enq 1) H.RUnit 0 1;
         e ~pid:1 H.Deq (H.RVal (Some 1)) 2 3;
         e ~pid:2 H.Deq (H.RVal (Some 1)) 4 5;
         pend ~pid:0 (H.Enq 2) 6;
       |])

(* ------------------------------------------------------------------ *)
(* JSON round-trip + golden corpus *)

let history = Alcotest.testable (fun fmt h -> Format.pp_print_string fmt (H.to_string h)) ( = )

let test_json_roundtrip () =
  let cfg = { Lh.default_config with nprocs = 2; ops_per_proc = 4 } in
  let h = Lh.run_once ~ds:"list" ~scheme:"debra" cfg (Explore.policy_of_schedule []) in
  Alcotest.(check bool) "recorded something" true (H.ops h > 4);
  let h' = H.of_json (H.to_json h) in
  Alcotest.check history "to_json/of_json round-trips" h h';
  let tmp = Filename.temp_file "lincheck" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      H.save h tmp;
      Alcotest.check history "save/load round-trips" h (H.load tmp));
  (* malformed input is a clean error, not a crash *)
  Alcotest.check_raises "malformed rejected" (H.Malformed "missing key \"events\"")
    (fun () -> ignore (H.of_json (Telemetry.Json.Obj [])))

(* Golden corpus: test/histories/<spec>__<label>__<ok|bad>.json.  Each file
   must parse and re-check to the verdict its name encodes. *)
let test_golden_corpus () =
  (* dune runtest runs in the stanza dir (where the glob_files deps land);
     dune exec from the repo root sees the source tree instead *)
  let dir = if Sys.file_exists "histories" then "histories" else "test/histories" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "corpus non-empty (%d files)" (List.length files))
    true
    (List.length files >= 6);
  List.iter
    (fun f ->
      match String.split_on_char '_' (Filename.remove_extension f) with
      | spec_name :: _ ->
          let spec =
            match Spec.by_name spec_name with
            | Some s -> s
            | None -> Alcotest.fail (f ^ ": unknown spec prefix")
          in
          let expect_ok =
            Filename.check_suffix (Filename.remove_extension f) "ok"
          in
          let h = H.load (Filename.concat dir f) in
          Alcotest.(check bool) f expect_ok (is_lin spec h)
      | [] -> Alcotest.fail (f ^ ": bad name"))
    files

(* ------------------------------------------------------------------ *)
(* Exploration: clean cells pass (while really exploring), and schedules
   replay deterministically. *)

let smoke_cfg =
  { Lh.default_config with nprocs = 2; ops_per_proc = 3; key_range = 2; prefill = 1 }

let test_explore_clean () =
  List.iter
    (fun (ds, scheme) ->
      match Lh.explore ~budget:2 ~max_runs:400 ~ds ~scheme smoke_cfg with
      | Explore.Pass st ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s explored >1 schedule" ds scheme)
            true (st.Explore.runs > 1);
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s found branch points" ds scheme)
            true
            (st.Explore.branch_points > 0)
      | Explore.Fail { reason; schedule; _ } ->
          Alcotest.fail
            (Printf.sprintf "%s/%s rejected: %s\nschedule: %s" ds scheme reason
               (Explore.schedule_to_string schedule)))
    [ ("list", "debra"); ("queue", "debra+"); ("bst", "hp") ]

let test_replay_deterministic () =
  let policy () = Explore.policy_of_schedule [] in
  let h1 = Lh.run_once ~ds:"list" ~scheme:"ebr" smoke_cfg (policy ()) in
  let h2 = Lh.run_once ~ds:"list" ~scheme:"ebr" smoke_cfg (policy ()) in
  Alcotest.check history "same schedule, same history" h1 h2

(* ------------------------------------------------------------------ *)
(* Teeth: the mutants are rejected with replayable schedules. *)

(* Seeded MS-queue mutant under `none` (so the arena cannot trip first and
   the rejection is the checker's): two one-shot dequeuers over a two
   element queue; the missing head re-validation lets both claim the same
   value under one well-placed preemption. *)
module MN = Lh.Mk (Workload.Schemes.RM1_none)
module MQ = Mutant_queue.Make (Workload.Schemes.RM1_none)

let run_mutant_queue policy =
  let cfg = { smoke_cfg with nprocs = 2 } in
  let group, rm = MN.fresh cfg in
  let q = MQ.create rm ~capacity:64 in
  let rec_ = H.recorder ~nprocs:2 in
  let ctx0 = Runtime.Group.ctx group 0 in
  List.iter
    (fun v ->
      MN.record rec_ ctx0 (H.Enq v) (fun () -> MQ.enqueue q ctx0 v) (fun () -> H.RUnit))
    [ 901; 902 ];
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    MN.record rec_ ctx H.Deq (fun () -> MQ.dequeue q ctx) (fun r -> H.RVal r)
  in
  ignore
    (Sim.run ~machine:(MN.machine_for cfg) ~max_steps:200_000 ~policy group
       (Array.init 2 body));
  H.snapshot rec_

let check_queue h =
  match Checker.check Spec.queue h with
  | Checker.Linearizable -> None
  | v -> Some (Checker.verdict_to_string v)

let test_mutant_queue_rejected () =
  match
    Explore.explore ~budget:2 ~max_runs:500 ~run_one:run_mutant_queue
      ~check:check_queue ()
  with
  | Explore.Pass _ -> Alcotest.fail "mutant queue slipped past exploration"
  | Explore.Fail { schedule; reason; stats; _ } ->
      Printf.printf
        "mutant queue rejected after %d schedules\n  schedule: %s\n  %s\n"
        stats.Explore.runs
        (Explore.schedule_to_string schedule)
        reason;
      Alcotest.(check bool)
        "rejected by the checker, not a trap" true
        (String.length reason >= 16
        && String.sub reason 0 16 = "NON-LINEARIZABLE");
      (* The printed schedule is a real counterexample: replaying it alone
         reproduces the violation. *)
      let h = run_mutant_queue (Explore.policy_of_schedule schedule) in
      Alcotest.(check bool)
        "schedule replays to the same violation" true
        (check_queue h <> None)

(* ------------------------------------------------------------------ *)
(* Parallel exploration: fanning replay jobs across worker domains must be
   observationally identical to the serial explorer — same run count,
   branch points, truncation flag, and on rejection the same failing
   schedule (depth-first pre-order commits make the job order immaterial).
   Covers all three verdict shapes: exhausted, truncated, and failing.
   On a single-core host the parallel runs are slower than serial — the
   speedup claim is CI's scale-smoke job's concern — so the cells here are
   small; equivalence must hold anywhere. *)

let stats_of = function
  | Explore.Pass st -> st
  | Explore.Fail { stats; _ } -> stats

let check_equiv name serial par =
  (match (serial, par) with
  | Explore.Pass _, Explore.Pass _ | Explore.Fail _, Explore.Fail _ -> ()
  | Explore.Pass _, Explore.Fail { reason; _ } ->
      Alcotest.failf "%s: serial passed but parallel failed: %s" name reason
  | Explore.Fail { reason; _ }, Explore.Pass _ ->
      Alcotest.failf "%s: serial failed (%s) but parallel passed" name reason);
  let s = stats_of serial and p = stats_of par in
  Alcotest.(check int) (name ^ " runs") s.Explore.runs p.Explore.runs;
  Alcotest.(check int)
    (name ^ " branch points")
    s.Explore.branch_points p.Explore.branch_points;
  Alcotest.(check bool) (name ^ " truncated") s.Explore.truncated p.Explore.truncated;
  match (serial, par) with
  | Explore.Fail f1, Explore.Fail f2 ->
      Alcotest.(check (list (pair int int)))
        (name ^ " failing schedule")
        f1.schedule f2.schedule;
      Alcotest.(check string) (name ^ " reason") f1.reason f2.reason
  | _ -> ()

let test_parallel_explore_equivalent () =
  let tiny = { smoke_cfg with ops_per_proc = 2 } in
  List.iter
    (fun (name, cfg, max_runs, ds, scheme) ->
      let serial = Lh.explore ~budget:2 ~max_runs ~ds ~scheme cfg in
      let par = Lh.explore ~budget:2 ~max_runs ~workers:2 ~ds ~scheme cfg in
      check_equiv name serial par)
    [
      ("list/debra exhausted", tiny, 400, "list", "debra");
      ("list/ebr truncated", smoke_cfg, 25, "list", "ebr");
    ];
  let serial =
    Explore.explore ~budget:2 ~max_runs:500 ~run_one:run_mutant_queue
      ~check:check_queue ()
  in
  let par =
    Explore.explore ~budget:2 ~max_runs:500 ~domains:2
      ~run_one:run_mutant_queue ~check:check_queue ()
  in
  check_equiv "mutant queue" serial par

(* Broken EBR (no grace period): a reader suspended mid-traversal resumes
   into a record the deleter has already freed — the arena traps it on some
   explored schedule, and that schedule replays. *)
module MBE = Lh.Mk (Broken_schemes.RM_broken_ebr)

let run_broken_ebr policy =
  let cfg = { smoke_cfg with nprocs = 2 } in
  let group, rm = MBE.fresh cfg in
  let (module S) = MBE.Face.hm_list in
  let s = S.create rm ~capacity:cfg.capacity in
  let rec_ = H.recorder ~nprocs:2 in
  let ctx0 = Runtime.Group.ctx group 0 in
  for k = 1 to 4 do
    MBE.record rec_ ctx0 (H.Add k)
      (fun () -> S.insert s ctx0 ~key:k ~value:k)
      (fun b -> H.RBool b)
  done;
  let bodies =
    [|
      (fun () ->
        (* deleter: frees every node immediately on retire *)
        let ctx = Runtime.Group.ctx group 0 in
        for k = 1 to 4 do
          MBE.record rec_ ctx (H.Remove k)
            (fun () -> S.delete s ctx k)
            (fun b -> H.RBool b)
        done);
      (fun () ->
        (* reader: traverses across the nodes being freed *)
        let ctx = Runtime.Group.ctx group 1 in
        for _ = 1 to 2 do
          MBE.record rec_ ctx (H.Mem 4)
            (fun () -> S.contains s ctx 4)
            (fun b -> H.RBool b)
        done);
    |]
  in
  ignore
    (Sim.run ~machine:(MBE.machine_for cfg) ~max_steps:200_000 ~policy group
       bodies);
  H.snapshot rec_

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_broken_ebr_rejected () =
  match
    Explore.explore ~budget:2 ~max_runs:800 ~run_one:run_broken_ebr
      ~check:(fun h ->
        match Checker.check Spec.set h with
        | Checker.Linearizable -> None
        | v -> Some (Checker.verdict_to_string v))
      ()
  with
  | Explore.Pass _ -> Alcotest.fail "broken EBR slipped past exploration"
  | Explore.Fail { schedule; reason; stats; _ } ->
      Printf.printf
        "broken EBR rejected after %d schedules\n  schedule: %s\n  reason: %s\n"
        stats.Explore.runs
        (Explore.schedule_to_string schedule)
        reason;
      Alcotest.(check bool)
        "trapped as use-after-free" true
        (contains_sub ~sub:"Use_after_free" reason);
      let replay_trapped =
        match run_broken_ebr (Explore.policy_of_schedule schedule) with
        | (_ : H.t) -> false
        | exception Memory.Arena.Use_after_free _ -> true
      in
      Alcotest.(check bool) "schedule replays to the same trap" true
        replay_trapped

(* Broken HP (no post-announce validation): the deleter accumulates enough
   retires to scan and free; a reader that announced too late resumes into
   a freed record. *)
module MBH = Lh.Mk (Broken_schemes.RM_broken_hp)

let broken_hp_cfg =
  {
    smoke_cfg with
    nprocs = 2;
    params =
      {
        Lh.explore_params with
        Reclaim.Intf.Params.hp_slots = 8;
        (* threshold floor: scan after 8 retires *)
        hp_retire_factor = 0;
      };
  }

let run_broken_hp policy =
  let cfg = broken_hp_cfg in
  let group, rm = MBH.fresh cfg in
  let (module S) = MBH.Face.hm_list in
  let s = S.create rm ~capacity:cfg.capacity in
  let rec_ = H.recorder ~nprocs:2 in
  let ctx0 = Runtime.Group.ctx group 0 in
  for k = 1 to 9 do
    MBH.record rec_ ctx0 (H.Add k)
      (fun () -> S.insert s ctx0 ~key:k ~value:k)
      (fun b -> H.RBool b)
  done;
  let bodies =
    [|
      (fun () ->
        (* deleter: the 8th retire crosses the scan threshold and frees
           everything not (validly) announced *)
        let ctx = Runtime.Group.ctx group 0 in
        for k = 1 to 9 do
          MBH.record rec_ ctx (H.Remove k)
            (fun () -> S.delete s ctx k)
            (fun b -> H.RBool b)
        done);
      (fun () ->
        (* reader: one long traversal through the doomed prefix *)
        let ctx = Runtime.Group.ctx group 1 in
        MBH.record rec_ ctx (H.Mem 9)
          (fun () -> S.contains s ctx 9)
          (fun b -> H.RBool b));
    |]
  in
  ignore
    (Sim.run ~machine:(MBH.machine_for cfg) ~max_steps:400_000 ~policy group
       bodies);
  H.snapshot rec_

let test_broken_hp_rejected () =
  match
    Explore.explore ~budget:2 ~max_runs:1500 ~run_one:run_broken_hp
      ~check:(fun h ->
        match Checker.check Spec.set h with
        | Checker.Linearizable -> None
        | v -> Some (Checker.verdict_to_string v))
      ()
  with
  | Explore.Pass _ -> Alcotest.fail "broken HP slipped past exploration"
  | Explore.Fail { schedule; reason; stats; _ } ->
      Printf.printf
        "broken HP rejected after %d schedules\n  schedule: %s\n  reason: %s\n"
        stats.Explore.runs
        (Explore.schedule_to_string schedule)
        reason;
      Alcotest.(check bool)
        "trapped as use-after-free" true
        (contains_sub ~sub:"Use_after_free" reason)

(* Broken VBR (no version re-validation, no sandbox): retire reclaims full
   blocks immediately — correct VBR behaviour — but a reader suspended
   mid-traversal resumes into a reclaimed record without re-checking the
   version, and the recycling arena's generation trap fires. *)
module MBV = Lh.Mk (Broken_schemes.RM_broken_vbr)

let run_broken_vbr policy =
  let cfg = { smoke_cfg with nprocs = 2 } in
  let group, rm = MBV.fresh cfg in
  let (module S) = MBV.Face.hm_list in
  let s = S.create rm ~capacity:cfg.capacity in
  let rec_ = H.recorder ~nprocs:2 in
  let ctx0 = Runtime.Group.ctx group 0 in
  for k = 1 to 8 do
    MBV.record rec_ ctx0 (H.Add k)
      (fun () -> S.insert s ctx0 ~key:k ~value:k)
      (fun b -> H.RBool b)
  done;
  let bodies =
    [|
      (fun () ->
        (* deleter: the 5th retire fills a block and frees it in place *)
        let ctx = Runtime.Group.ctx group 0 in
        for k = 1 to 8 do
          MBV.record rec_ ctx (H.Remove k)
            (fun () -> S.delete s ctx k)
            (fun b -> H.RBool b)
        done);
      (fun () ->
        (* reader: traverses across the blocks being reclaimed *)
        let ctx = Runtime.Group.ctx group 1 in
        for _ = 1 to 2 do
          MBV.record rec_ ctx (H.Mem 8)
            (fun () -> S.contains s ctx 8)
            (fun b -> H.RBool b)
        done);
    |]
  in
  ignore
    (Sim.run ~machine:(MBV.machine_for cfg) ~max_steps:400_000 ~policy group
       bodies);
  H.snapshot rec_

let test_broken_vbr_rejected () =
  match
    Explore.explore ~budget:2 ~max_runs:1500 ~run_one:run_broken_vbr
      ~check:(fun h ->
        match Checker.check Spec.set h with
        | Checker.Linearizable -> None
        | v -> Some (Checker.verdict_to_string v))
      ()
  with
  | Explore.Pass _ -> Alcotest.fail "broken VBR slipped past exploration"
  | Explore.Fail { schedule; reason; stats; _ } ->
      Printf.printf
        "broken VBR rejected after %d schedules\n  schedule: %s\n  reason: %s\n"
        stats.Explore.runs
        (Explore.schedule_to_string schedule)
        reason;
      Alcotest.(check bool)
        "trapped as use-after-free" true
        (contains_sub ~sub:"Use_after_free" reason);
      let replay_trapped =
        match run_broken_vbr (Explore.policy_of_schedule schedule) with
        | (_ : H.t) -> false
        | exception Memory.Arena.Use_after_free _ -> true
      in
      Alcotest.(check bool) "schedule replays to the same trap" true
        replay_trapped

(* Broken Hyaline (lost batch reference): the seal initializes the batch
   refcount one short, so the batch frees while the last charged session —
   a reader suspended mid-traversal — is still open; the reader resumes
   into a freed record. *)
module MBY = Lh.Mk (Broken_schemes.RM_broken_hyaline)

let run_broken_hyaline policy =
  let cfg = { smoke_cfg with nprocs = 2 } in
  let group, rm = MBY.fresh cfg in
  let (module S) = MBY.Face.hm_list in
  let s = S.create rm ~capacity:cfg.capacity in
  let rec_ = H.recorder ~nprocs:2 in
  let ctx0 = Runtime.Group.ctx group 0 in
  for k = 1 to 8 do
    MBY.record rec_ ctx0 (H.Add k)
      (fun () -> S.insert s ctx0 ~key:k ~value:k)
      (fun b -> H.RBool b)
  done;
  let bodies =
    [|
      (fun () ->
        (* deleter: the 4th retire seals the batch with the short count;
           its next operation boundary drops the last counted reference *)
        let ctx = Runtime.Group.ctx group 0 in
        for k = 1 to 8 do
          MBY.record rec_ ctx (H.Remove k)
            (fun () -> S.delete s ctx k)
            (fun b -> H.RBool b)
        done);
      (fun () ->
        (* reader: charged at seal, but the lost reference means the batch
           frees before this session closes *)
        let ctx = Runtime.Group.ctx group 1 in
        for _ = 1 to 2 do
          MBY.record rec_ ctx (H.Mem 8)
            (fun () -> S.contains s ctx 8)
            (fun b -> H.RBool b)
        done);
    |]
  in
  ignore
    (Sim.run ~machine:(MBY.machine_for cfg) ~max_steps:400_000 ~policy group
       bodies);
  H.snapshot rec_

let test_broken_hyaline_rejected () =
  match
    Explore.explore ~budget:2 ~max_runs:1500 ~run_one:run_broken_hyaline
      ~check:(fun h ->
        match Checker.check Spec.set h with
        | Checker.Linearizable -> None
        | v -> Some (Checker.verdict_to_string v))
      ()
  with
  | Explore.Pass _ -> Alcotest.fail "broken Hyaline slipped past exploration"
  | Explore.Fail { schedule; reason; stats; _ } ->
      Printf.printf
        "broken Hyaline rejected after %d schedules\n\
        \  schedule: %s\n\
        \  reason: %s\n"
        stats.Explore.runs
        (Explore.schedule_to_string schedule)
        reason;
      Alcotest.(check bool)
        "trapped as use-after-free" true
        (contains_sub ~sub:"Use_after_free" reason);
      let replay_trapped =
        match run_broken_hyaline (Explore.policy_of_schedule schedule) with
        | (_ : H.t) -> false
        | exception Memory.Arena.Use_after_free _ -> true
      in
      Alcotest.(check bool) "schedule replays to the same trap" true
        replay_trapped

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lincheck"
    [
      ( "checker",
        [
          Alcotest.test_case "set overlap" `Quick test_set_overlap;
          Alcotest.test_case "set precedence" `Quick test_set_precedence;
          Alcotest.test_case "minimal prefix" `Quick test_set_minimal_prefix;
          Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
          Alcotest.test_case "stack lifo" `Quick test_stack_lifo;
          Alcotest.test_case "pending ops" `Quick test_pending;
        ] );
      ( "history",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "golden corpus" `Quick test_golden_corpus;
        ] );
      ( "explore",
        [
          Alcotest.test_case "clean cells pass" `Quick test_explore_clean;
          Alcotest.test_case "parallel explore equivalent" `Slow
            test_parallel_explore_equivalent;
          Alcotest.test_case "replay deterministic" `Quick
            test_replay_deterministic;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "mutant queue rejected" `Quick
            test_mutant_queue_rejected;
          Alcotest.test_case "broken ebr rejected" `Quick
            test_broken_ebr_rejected;
          Alcotest.test_case "broken hp rejected" `Quick
            test_broken_hp_rejected;
          Alcotest.test_case "broken vbr rejected" `Quick
            test_broken_vbr_rejected;
          Alcotest.test_case "broken hyaline rejected" `Quick
            test_broken_hyaline_rejected;
        ] );
    ]
