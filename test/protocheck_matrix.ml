(* Symbolic SMR protocol check: every scheme x structure cell, both
   branches of every guard/CAS within the deny budget.  Writes
   PROTOCHECK_REPORT.json next to the cwd and exits nonzero if any cell
   has a protocol violation or a crash.  Run with: dune build @protocheck *)

let () =
  let t0 = Unix.gettimeofday () in
  let cells = Protocheck.Matrix.all () in
  List.iter (fun c -> print_endline (Protocheck.Report.summary c)) cells;
  Protocheck.Report.write ~path:"PROTOCHECK_REPORT.json" cells;
  let dirty = List.filter (fun c -> not (Protocheck.Report.clean c)) cells in
  Printf.printf
    "\nprotocheck: %d cells, %d paths, %d violating cell(s) (%.1fs)\n"
    (List.length cells)
    (List.fold_left (fun a c -> a + c.Protocheck.Report.paths) 0 cells)
    (List.length dirty)
    (Unix.gettimeofday () -. t0);
  List.iter
    (fun c ->
      Printf.printf "VIOLATING CELL: %s\n" (Protocheck.Report.summary c);
      match c.Protocheck.Report.counterexample with
      | None -> ()
      | Some ce ->
          Printf.printf "  deny set: [%s]\n"
            (String.concat "; " (List.map string_of_int ce.deny));
          List.iter
            (fun v ->
              Format.printf "  %a@." Protocheck.Engine.pp_violation v;
              List.iter (fun line -> Printf.printf "    %s\n" line)
                v.Protocheck.Engine.trace)
            ce.violations)
    dirty;
  if dirty <> [] then exit 1
