(* The paper's fifth motivation for the Record Manager (§1): "if several
   instances of a data structure are used for very different purposes (e.g.,
   many small trees with strict memory footprint requirements and one large
   tree with no such requirement), then it may be appropriate to use
   different memory reclamation schemes for the different instances."

   Here: one program holds
   - a large BST under DEBRA (throughput-oriented; roomy limbo bags), and
   - a small hash set under HP (strict footprint: at most nk + O(nk)
     unreclaimed records, at the cost of a fence per node reached),
   each with its own Record Manager, running on the same simulated machine.

   Run with: dune exec examples/mixed_instances.exe *)

module RM_throughput =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_footprint =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hp.Make)

module Big_tree = Ds.Efrb_bst.Make (RM_throughput)
module Small_set = Ds.Hash_set_lf.Make (RM_footprint)

let () =
  let nprocs = 4 in
  let group = Runtime.Group.create ~seed:5 nprocs in
  (* Each instance gets its own heap and environment. *)
  let heap_tree = Memory.Heap.create () in
  let heap_set = Memory.Heap.create () in
  let params_strict =
    (* Small buffers: reclaim eagerly, keep the footprint tight. *)
    { Reclaim.Intf.Params.default with Reclaim.Intf.Params.block_capacity = 16; hp_retire_factor = 1 }
  in
  let rm_tree =
    RM_throughput.create (Reclaim.Intf.Env.create group heap_tree)
  in
  let rm_set =
    RM_footprint.create
      (Reclaim.Intf.Env.create ~params:params_strict group heap_set)
  in
  let tree = Big_tree.create rm_tree ~capacity:200_000 in
  let set = Small_set.create rm_set ~buckets:16 ~capacity:20_000 in
  let ctx0 = Runtime.Group.ctx group 0 in
  let rng0 = Random.State.make [| 1 |] in
  for _ = 1 to 5_000 do
    ignore
      (Big_tree.insert tree ctx0 ~key:(1 + Random.State.int rng0 20_000) ~value:1)
  done;
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    let rng = Random.State.make [| 9; pid |] in
    for _ = 1 to 4_000 do
      (* 80% of traffic goes to the big tree, 20% churns the small set. *)
      if Random.State.int rng 5 > 0 then begin
        let key = 1 + Random.State.int rng 20_000 in
        if Random.State.bool rng then
          ignore (Big_tree.insert tree ctx ~key ~value:key)
        else ignore (Big_tree.delete tree ctx key)
      end
      else begin
        let key = Random.State.int rng 64 in
        if Random.State.bool rng then
          ignore (Small_set.insert set ctx ~key ~value:key)
        else ignore (Small_set.delete set ctx key)
      end
    done
  in
  let result = Sim.run group (Array.init nprocs body) in
  Big_tree.check_invariants tree;
  Small_set.check_invariants set;
  let ops = Runtime.Group.sum_stats group (fun s -> s.Runtime.Ctx.ops) in
  Printf.printf "%d operations in %d cycles (%.2f Mops/s)\n" ops
    result.Sim.virtual_time
    (Exec.Clock.mops Exec.Clock.sim ~ops ~cycles:result.Sim.virtual_time);
  Printf.printf
    "big tree  (%s):%7d keys,%7d records unreclaimed (roomy: throughput first)\n"
    RM_throughput.scheme_name (Big_tree.size tree)
    (RM_throughput.limbo_size rm_tree);
  Printf.printf
    "small set (%s):%7d keys,%7d records unreclaimed (tight: footprint first)\n"
    RM_footprint.scheme_name (Small_set.size set)
    (RM_footprint.limbo_size rm_set)
