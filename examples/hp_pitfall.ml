(* Why hazard pointers and the EFRB tree don't mix (paper §3).

   Searches in the tree can traverse pointers out of retired nodes, so a
   process cannot reliably tell whether a node it wants to protect is still
   in the tree.  The evaluation's workaround — restart the whole operation
   whenever a traversal meets a node whose parent is flagged or marked —
   keeps HP safe but forfeits lock-freedom, and the restarts plus the
   fence-per-node protocol cost roughly half the throughput.

   This demo measures the same contended update-heavy workload under DEBRA
   and under HP, and reports the fence count (one per newly reached node
   under HP, none under epochs) alongside throughput.

   Run with: dune exec examples/hp_pitfall.exe *)

open Reclaim

module Demo (RM : Intf.RECORD_MANAGER) = struct
  module Tree = Ds.Efrb_bst.Make (RM)

  let run () =
    let nprocs = 8 in
    let group = Runtime.Group.create ~seed:3 nprocs in
    let heap = Memory.Heap.create () in
    let env = Intf.Env.create group heap in
    let rm = RM.create env in
    let tree = Tree.create rm ~capacity:400_000 in
    let ctx0 = Runtime.Group.ctx group 0 in
    (* Small, hot tree: updates constantly flag nodes near the root. *)
    for key = 1 to 32 do
      ignore (Tree.insert tree ctx0 ~key ~value:key)
    done;
    Array.iter Runtime.Ctx.reset_stats group.Runtime.Group.ctxs;
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| 13; pid |] in
      for _ = 1 to 3_000 do
        let key = 1 + Random.State.int rng 32 in
        if Random.State.bool rng then
          ignore (Tree.insert tree ctx ~key ~value:key)
        else ignore (Tree.delete tree ctx key)
      done
    in
    let result = Sim.run group (Array.init nprocs body) in
    Tree.check_invariants tree;
    let ops = Runtime.Group.sum_stats group (fun s -> s.Runtime.Ctx.ops) in
    let fences = Runtime.Group.sum_stats group (fun s -> s.Runtime.Ctx.fences) in
    Printf.printf
      "%-8s lock-free helping: %-3s  %8.2f Mops/s   %7d fences  (%.1f fences/op)\n"
      RM.Reclaimer.name
      (if RM.allows_retired_traversal then "yes" else "NO")
      (Exec.Clock.mops Exec.Clock.sim ~ops ~cycles:result.Sim.virtual_time)
      fences
      (float_of_int fences /. float_of_int (max 1 ops))
end

module RM_debra = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra.Make)
module RM_hp = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Hp.Make)
module D_debra = Demo (RM_debra)
module D_hp = Demo (RM_hp)

let () =
  print_endline
    "Contended EFRB tree (32 keys, 8 processes, 100% updates): under HP,\n\
     operations restart whenever they meet a flagged node and pay a fence\n\
     per node reached; under DEBRA they help and sail through retired nodes.";
  D_debra.run ();
  D_hp.run ()
