(* The Record Manager's party trick (paper §6): the same data structure
   code runs under every reclamation scheme — switching scheme, pool or
   allocator is one functor application.

   Run with: dune exec examples/swap_reclaimer.exe *)

open Reclaim

(* The single line you change: *)
module RM_none = Record_manager.Make (Alloc.Bump) (Pool.Direct) (None_reclaimer.Make)
module RM_ebr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Ebr.Make)
module RM_debra = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra.Make)
module RM_debra_plus = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra_plus.Make)
module RM_hp = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Hp.Make)
module RM_malloc = Record_manager.Make (Alloc.Malloc) (Pool.Shared) (Debra.Make)
module RM_qsbr = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Qsbr.Make)
module RM_rc = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Rc.Make)

(* Everything below is generic in the Record Manager. *)
module Demo (RM : Intf.RECORD_MANAGER) = struct
  module List_set = Ds.Hm_list.Make (RM)

  let run () =
    let nprocs = 4 in
    let group = Runtime.Group.create ~seed:11 nprocs in
    let heap = Memory.Heap.create () in
    let env = Intf.Env.create group heap in
    let rm = RM.create env in
    let set = List_set.create rm ~capacity:50_000 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| 3; pid |] in
      for _ = 1 to 2_000 do
        let key = Random.State.int rng 64 in
        if Random.State.bool rng then ignore (List_set.insert set ctx ~key ~value:key)
        else ignore (List_set.delete set ctx key)
      done
    in
    let result = Sim.run group (Array.init nprocs body) in
    List_set.check_invariants set;
    let ops = Runtime.Group.sum_stats group (fun s -> s.Runtime.Ctx.ops) in
    Printf.printf "%-24s %8.2f Mops/s   %6d records still in limbo\n"
      RM.scheme_name
      (Exec.Clock.mops Exec.Clock.sim ~ops ~cycles:result.Sim.virtual_time)
      (RM.limbo_size rm)
end

module D_none = Demo (RM_none)
module D_ebr = Demo (RM_ebr)
module D_debra = Demo (RM_debra)
module D_debra_plus = Demo (RM_debra_plus)
module D_hp = Demo (RM_hp)
module D_malloc = Demo (RM_malloc)
module D_qsbr = Demo (RM_qsbr)
module D_rc = Demo (RM_rc)

let () =
  print_endline
    "Same Harris-Michael list, eight Record Managers (4 simulated processes):";
  D_none.run ();
  D_ebr.run ();
  D_debra.run ();
  D_debra_plus.run ();
  D_hp.run ();
  D_malloc.run ();
  D_qsbr.run ();
  D_rc.run ()
