(* Quickstart: a lock-free BST set with DEBRA reclamation, exercised by four
   simulated processes.

   The recipe:
   1. pick a Record Manager   = allocator + pool + reclaimer (one line);
   2. instantiate a structure = functor application over the Record Manager;
   3. create a process group, an arena heap, and the shared environment;
   4. run process bodies — under the deterministic machine simulator here,
      or on real domains with Runtime.Domain_runner.

   Run with: dune exec examples/quickstart.exe *)

module RM =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)

module Tree = Ds.Efrb_bst.Make (RM)

let () =
  let nprocs = 4 in
  let group = Runtime.Group.create ~seed:42 nprocs in
  let heap = Memory.Heap.create () in
  let env = Reclaim.Intf.Env.create group heap in
  let rm = RM.create env in
  let tree = Tree.create rm ~capacity:100_000 in

  (* Sequential warm-up from process 0's context.  Keys are inserted in
     shuffled order: the tree is unbalanced, so sorted insertion would
     degenerate it into a list. *)
  let ctx0 = Runtime.Group.ctx group 0 in
  let keys = Array.init 1000 (fun i -> i + 1) in
  let rng = Random.State.make [| 99 |] in
  for i = 999 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  Array.iter (fun key -> ignore (Tree.insert tree ctx0 ~key ~value:(key * key))) keys;
  Printf.printf "prefilled: %d keys; get 25 -> %s\n" (Tree.size tree)
    (match Tree.get tree ctx0 25 with
    | Some v -> string_of_int v
    | None -> "absent");

  (* Concurrent phase: every process hammers the same key range. *)
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    let rng = Random.State.make [| 7; pid |] in
    for _ = 1 to 5_000 do
      let key = 1 + Random.State.int rng 2000 in
      match Random.State.int rng 3 with
      | 0 -> ignore (Tree.insert tree ctx ~key ~value:key)
      | 1 -> ignore (Tree.delete tree ctx key)
      | _ -> ignore (Tree.contains tree ctx key)
    done
  in
  let result = Sim.run group (Array.init nprocs body) in
  Tree.check_invariants tree;
  let ops = Runtime.Group.sum_stats group (fun s -> s.Runtime.Ctx.ops) in
  Printf.printf
    "ran %d operations over %d simulated cycles (%.2f Mops/s at 3 GHz)\n" ops
    result.Sim.virtual_time
    (Exec.Clock.mops Exec.Clock.sim ~ops ~cycles:result.Sim.virtual_time);
  Printf.printf "final size: %d keys, %d records live, %d awaiting reclamation\n"
    (Tree.size tree)
    (Memory.Heap.live_records heap)
    (RM.limbo_size rm);
  Printf.printf "scheme: %s\n" RM.scheme_name
