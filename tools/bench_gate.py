#!/usr/bin/env python3
"""Bench-regression gate for the E-kv campaign.

Compares a freshly generated BENCH_KV.json against the checked-in
baseline and fails (exit 1) when any matching (scheme, structure,
backend) row regresses by more than the tolerance in either:

  - throughput_mops (lower is worse), or
  - any SLO verdict's p99_ns, matched by verdict kind (higher is worse).

Both runs use the deterministic simulator, so in practice any drift is a
code change, not noise; the 15% tolerance exists so deliberate
trade-offs (e.g. heavier instrumentation) need only a baseline refresh
(`dune exec bench/main.exe -- kv --json`, commit BENCH_KV.json) rather
than a tuning dance.

Usage: bench_gate.py BASELINE.json FRESH.json [--tolerance-pct 15]
"""

import argparse
import json
import sys


def rows_by_key(doc):
    out = {}
    for row in doc["results"]:
        key = (row["scheme"], row["structure"], row["backend"])
        if key in out:
            raise SystemExit(f"duplicate bench row for {key}")
        out[key] = row
    return out


def p99s(row):
    return {v["kind"]: v["p99_ns"] for v in row.get("verdicts", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance-pct", type=float, default=15.0)
    args = ap.parse_args()

    with open(args.baseline) as fh:
        base = rows_by_key(json.load(fh))
    with open(args.fresh) as fh:
        fresh = rows_by_key(json.load(fh))

    tol = args.tolerance_pct / 100.0
    failures = []
    compared = 0

    for key, brow in sorted(base.items()):
        frow = fresh.get(key)
        if frow is None:
            failures.append(f"{key}: row missing from fresh run")
            continue
        compared += 1
        name = "/".join(key)

        bt, ft = brow["throughput_mops"], frow["throughput_mops"]
        if ft < bt * (1.0 - tol):
            failures.append(
                f"{name}: throughput {ft:.3f} Mops/s is "
                f"{100.0 * (bt - ft) / bt:.1f}% below baseline {bt:.3f}"
            )

        bp, fp = p99s(brow), p99s(frow)
        for kind, b99 in sorted(bp.items()):
            f99 = fp.get(kind)
            if f99 is None:
                failures.append(f"{name}: verdict '{kind}' missing from fresh run")
            elif f99 > b99 * (1.0 + tol):
                failures.append(
                    f"{name}: {kind} p99 {f99} ns is "
                    f"{100.0 * (f99 - b99) / b99:.1f}% above baseline {b99} ns"
                )

    if compared == 0:
        failures.append("no comparable rows between baseline and fresh run")

    for f in failures:
        print(f"FAIL {f}")
    print(
        f"bench gate: {compared} rows compared, {len(failures)} regressions "
        f"(tolerance {args.tolerance_pct:.0f}%)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
