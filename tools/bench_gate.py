#!/usr/bin/env python3
"""Bench-regression gate for the checked-in benchmark baselines.

Compares freshly generated BENCH_*.json files against their checked-in
baselines and fails (exit 1) on any regression beyond tolerance.  One
invocation gates any number of files:

  bench_gate.py BASELINE.json FRESH.json            # single pair
  bench_gate.py --pair BENCH_KV.json fresh_kv.json \\
                --pair BENCH_SIM.json fresh_sim.json

Two row schemas are understood, detected per row:

  - KV rows (the E-kv campaign): keyed (scheme, structure, backend);
    gated on throughput_mops (lower is worse) and every SLO verdict's
    p99_ns matched by kind (higher is worse).
  - SIM rows (the E-scale campaign, and any row carrying a "kind"
    field): keyed by kind plus whichever of structure / scheme /
    contexts / cell / domains are present; gated by a per-metric
    direction table (cycles_per_op and mops are deterministic virtual-
    time metrics and use the normal tolerance; steps_per_sec and
    runs_per_sec are wall-clock and use the far looser
    --wall-tolerance-pct, since runner hardware varies).

Deterministic metrics drift only when the code changes; the 15% default
tolerance exists so deliberate trade-offs (e.g. heavier
instrumentation) need only a baseline refresh (`dune exec
bench/main.exe -- kv e-scale --json`, commit the BENCH_*.json) rather
than a tuning dance.
"""

import argparse
import json
import sys

# SIM-schema metric directions.  Anything not listed is informational.
LOWER_IS_WORSE = {"mops", "steps_per_sec", "runs_per_sec"}
HIGHER_IS_WORSE = {"cycles_per_op"}
WALL_CLOCK = {"steps_per_sec", "runs_per_sec"}

KEY_FIELDS = ("kind", "structure", "scheme", "contexts", "cell", "domains")


def row_key(row):
    if "kind" in row:
        return tuple((f, row[f]) for f in KEY_FIELDS if f in row)
    return (row["scheme"], row["structure"], row["backend"])


def rows_by_key(doc, path):
    out = {}
    for row in doc["results"]:
        key = row_key(row)
        if key in out:
            raise SystemExit(f"{path}: duplicate bench row for {key}")
        out[key] = row
    return out


def p99s(row):
    return {v["kind"]: v["p99_ns"] for v in row.get("verdicts", [])}


def key_name(key):
    if key and isinstance(key[0], tuple):
        return "/".join(str(v) for _, v in key)
    return "/".join(str(v) for v in key)


def check_kv_row(name, brow, frow, tol, failures):
    bt, ft = brow["throughput_mops"], frow["throughput_mops"]
    if ft < bt * (1.0 - tol):
        failures.append(
            f"{name}: throughput {ft:.3f} Mops/s is "
            f"{100.0 * (bt - ft) / bt:.1f}% below baseline {bt:.3f}"
        )
    bp, fp = p99s(brow), p99s(frow)
    for kind, b99 in sorted(bp.items()):
        f99 = fp.get(kind)
        if f99 is None:
            failures.append(f"{name}: verdict '{kind}' missing from fresh run")
        elif f99 > b99 * (1.0 + tol):
            failures.append(
                f"{name}: {kind} p99 {f99} ns is "
                f"{100.0 * (f99 - b99) / b99:.1f}% above baseline {b99} ns"
            )


def check_sim_row(name, brow, frow, tol, wall_tol, failures):
    for metric, bval in sorted(brow.items()):
        if metric not in LOWER_IS_WORSE and metric not in HIGHER_IS_WORSE:
            continue
        fval = frow.get(metric)
        if fval is None:
            failures.append(f"{name}: metric '{metric}' missing from fresh run")
            continue
        if not bval:
            continue
        t = wall_tol if metric in WALL_CLOCK else tol
        if metric in LOWER_IS_WORSE and fval < bval * (1.0 - t):
            failures.append(
                f"{name}: {metric} {fval:.3f} is "
                f"{100.0 * (bval - fval) / bval:.1f}% below baseline {bval:.3f}"
            )
        elif metric in HIGHER_IS_WORSE and fval > bval * (1.0 + t):
            failures.append(
                f"{name}: {metric} {fval:.3f} is "
                f"{100.0 * (fval - bval) / bval:.1f}% above baseline {bval:.3f}"
            )


def check_pair(baseline_path, fresh_path, tol, wall_tol, failures):
    with open(baseline_path) as fh:
        base = rows_by_key(json.load(fh), baseline_path)
    with open(fresh_path) as fh:
        fresh = rows_by_key(json.load(fh), fresh_path)

    compared = 0
    for key, brow in sorted(base.items(), key=lambda kv: repr(kv[0])):
        frow = fresh.get(key)
        name = f"{baseline_path}:{key_name(key)}"
        if frow is None:
            failures.append(f"{name}: row missing from fresh run")
            continue
        compared += 1
        if "kind" in brow:
            check_sim_row(name, brow, frow, tol, wall_tol, failures)
        else:
            check_kv_row(name, brow, frow, tol, failures)

    if compared == 0:
        failures.append(
            f"{baseline_path} vs {fresh_path}: no comparable rows"
        )
    return compared


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("fresh", nargs="?")
    ap.add_argument(
        "--pair",
        nargs=2,
        action="append",
        default=[],
        metavar=("BASELINE", "FRESH"),
        help="baseline/fresh file pair to gate; repeatable",
    )
    ap.add_argument("--tolerance-pct", type=float, default=15.0)
    ap.add_argument(
        "--wall-tolerance-pct",
        type=float,
        default=75.0,
        help="tolerance for wall-clock metrics (steps/sec, runs/sec), which "
        "vary with runner hardware",
    )
    args = ap.parse_args()

    pairs = list(args.pair)
    if args.baseline or args.fresh:
        if not (args.baseline and args.fresh):
            ap.error("positional usage needs both BASELINE and FRESH")
        pairs.append([args.baseline, args.fresh])
    if not pairs:
        ap.error("nothing to gate: give BASELINE FRESH or --pair")

    tol = args.tolerance_pct / 100.0
    wall_tol = args.wall_tolerance_pct / 100.0
    failures = []
    compared = 0
    for baseline_path, fresh_path in pairs:
        compared += check_pair(baseline_path, fresh_path, tol, wall_tol, failures)

    for f in failures:
        print(f"FAIL {f}")
    print(
        f"bench gate: {len(pairs)} file pair(s), {compared} rows compared, "
        f"{len(failures)} regressions (tolerance {args.tolerance_pct:.0f}%, "
        f"wall-clock {args.wall_tolerance_pct:.0f}%)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
