(* The experiment matrix lives in the workload library so both this harness
   and the bin/ CLI can use it; see Workload.Schemes. *)
include Workload.Schemes
