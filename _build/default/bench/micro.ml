(** Bechamel microbenchmarks of the Record Manager primitives, run directly
    (no simulator, hooks disabled): the real OCaml-level cost of
    leaveQstate/enterQstate, retire, and protect for each scheme.  These are
    the per-operation and per-record costs whose asymmetry (O(1) per op for
    epochs vs work-per-record for HP) drives every throughput figure. *)

open Bechamel
open Toolkit

module Prim (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  let make_env () =
    let group = Runtime.Group.create 4 in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create group heap in
    let arena =
      Memory.Heap.new_arena heap ~name:"micro" ~mut_fields:2 ~const_fields:1
        ~capacity:(1 lsl 16)
    in
    let rm = RM.create env in
    (Runtime.Group.ctx group 0, arena, rm)

  let tests name =
    let ctx, arena, rm = make_env () in
    let quiesce =
      Test.make
        ~name:(name ^ "/leave+enter_qstate")
        (Staged.stage (fun () ->
             RM.leave_qstate rm ctx;
             RM.enter_qstate rm ctx))
    in
    let retire_cycle =
      Test.make
        ~name:(name ^ "/alloc+retire")
        (Staged.stage (fun () ->
             RM.leave_qstate rm ctx;
             let p = RM.alloc rm ctx arena in
             RM.retire rm ctx p;
             RM.enter_qstate rm ctx))
    in
    let ctx2, arena2, rm2 = make_env () in
    let target = RM.alloc rm2 ctx2 arena2 in
    let protect =
      Test.make
        ~name:(name ^ "/protect+unprotect")
        (Staged.stage (fun () ->
             ignore (RM.protect rm2 ctx2 target ~verify:(fun () -> true));
             RM.unprotect rm2 ctx2 target))
    in
    [ quiesce; retire_cycle; protect ]
end

module P_debra = Prim (Common.RM2_debra)
module P_debra_plus = Prim (Common.RM2_debra_plus)
module P_hp = Prim (Common.RM2_hp)
module P_ebr = Prim (Common.RM2_ebr)
module P_none = Prim (Common.RM1_none)

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw_results =
    Benchmark.all cfg instances (Test.make_grouped ~name:"rm" tests)
  in
  Analyze.all ols Instance.monotonic_clock raw_results

let run () =
  Printf.printf
    "\n===== Microbenchmarks (Bechamel, real execution, ns/op) =====\n%!";
  let tests =
    P_none.tests "none" @ P_ebr.tests "ebr" @ P_debra.tests "debra"
    @ P_debra_plus.tests "debra+" @ P_hp.tests "hp"
  in
  let results = benchmark tests in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> Printf.sprintf "%.1f" x
        | _ -> "n/a"
      in
      rows := [ name; ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Workload.Report.table ~title:"Record Manager primitives"
    ~header:[ "operation"; "ns/op" ] ~rows
