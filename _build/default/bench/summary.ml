(** Paper-vs-measured summary of the scalar claims in §7 / §8 (E7 in
    DESIGN.md).  Runs a focused grid and prints each claim next to what this
    reproduction measures. *)

open Common

type agg = { mutable sum : float; mutable count : int; mutable worst : float; mutable best : float }

let agg () = { sum = 0.; count = 0; worst = neg_infinity; best = infinity }

let add a v =
  a.sum <- a.sum +. v;
  a.count <- a.count + 1;
  if v > a.worst then a.worst <- v;
  if v < a.best then a.best <- v

let avg a = if a.count = 0 then 0. else a.sum /. float_of_int a.count

(* Overhead of [x] relative to [base]: positive = slower. *)
let overhead ~base x = if base = 0. then 0. else (base -. x) /. base *. 100.

(* Speedup of [x] over [y]: positive = x faster. *)
let speedup ~over x = if over = 0. then 0. else (x -. over) /. over *. 100.

let run ~scale =
  Printf.printf "\n===== Summary: paper-reported vs measured (§7/§8) =====\n";
  Printf.printf "(grid: BST %d and %d keys, 50i-50d and 25i-25d-50s, %s procs)\n%!"
    scale.Experiments.big_range scale.Experiments.small_range
    (String.concat "," (List.map string_of_int scale.Experiments.threads));
  let grid runners =
    (* (scheme -> outcome) per cell *)
    List.concat_map
      (fun (ins, del) ->
        List.concat_map
          (fun range ->
            List.map
              (fun n ->
                let cfg =
                  Experiments.base_cfg ~scale ~range ~ins ~del n
                in
                List.map (fun r -> (r.rname, r.run cfg)) runners)
              scale.Experiments.threads)
          [ scale.Experiments.big_range; scale.Experiments.small_range ])
      [ (50, 50); (25, 25) ]
  in
  let mops cell name = (List.assoc name cell).Workload.Trial.mops in
  let summarize cells =
    let o_debra = agg ()
    and o_debra_plus = agg ()
    and s_debra_hp = agg ()
    and s_dplus_hp = agg () in
    List.iter
      (fun cell ->
        let none = mops cell "none"
        and debra = mops cell "debra"
        and dplus = mops cell "debra+"
        and hp = mops cell "hp" in
        add o_debra (overhead ~base:none debra);
        add o_debra_plus (overhead ~base:none dplus);
        add s_debra_hp (speedup ~over:hp debra);
        add s_dplus_hp (speedup ~over:hp dplus))
      cells;
    (o_debra, o_debra_plus, s_debra_hp, s_dplus_hp)
  in
  let e1 = summarize (grid bst_runners_exp1) in
  let e2 = summarize (grid bst_runners_exp2) in
  (* Memory/neutralization at maximum oversubscription — same long-stall
     machine and trial length as the memory figure (Fig. 9 right). *)
  let mem_cfg =
    let machine =
      { Machine.Config.intel_i7_4770 with Machine.Config.quantum = 2_500_000 }
    in
    let scale =
      { scale with Experiments.duration = max scale.Experiments.duration 10_000_000 }
    in
    Experiments.base_cfg ~machine ~scale ~range:scale.Experiments.small_range
      ~ins:50 ~del:50 16
  in
  let debra_mem = (List.nth bst_runners_exp2 1).run mem_cfg in
  let dplus_mem = (List.nth bst_runners_exp2 2).run mem_cfg in
  let mem_reduction =
    let d = float_of_int debra_mem.Workload.Trial.bytes_claimed_trial in
    let p = float_of_int dplus_mem.Workload.Trial.bytes_claimed_trial in
    if d = 0. then 0. else (d -. p) /. d *. 100.
  in
  let o1d, o1p, s1dh, s1ph = e1 in
  let o2d, o2p, s2dh, s2ph = e2 in
  let rows =
    [
      [ "Exp1: DEBRA overhead vs none (avg)"; "12%"; Printf.sprintf "%.0f%%" (avg o1d) ];
      [ "Exp1: DEBRA overhead vs none (worst)"; "22%"; Printf.sprintf "%.0f%%" o1d.worst ];
      [ "Exp1: DEBRA+ overhead vs none (avg)"; "17%"; Printf.sprintf "%.0f%%" (avg o1p) ];
      [ "Exp1: DEBRA+ overhead vs none (worst)"; "28%"; Printf.sprintf "%.0f%%" o1p.worst ];
      [ "Exp1: DEBRA vs HP (avg speedup)"; "+94%"; Printf.sprintf "%+.0f%%" (avg s1dh) ];
      [ "Exp1: DEBRA+ vs HP (avg speedup)"; "+83%"; Printf.sprintf "%+.0f%%" (avg s1ph) ];
      [ "Exp2: DEBRA overhead vs none (avg)"; "8%"; Printf.sprintf "%.0f%%" (avg o2d) ];
      [ "Exp2: DEBRA best case vs none"; "-12% (faster)"; Printf.sprintf "%.0f%%" o2d.best ];
      [ "Exp2: DEBRA+ overhead vs none (avg)"; "10%"; Printf.sprintf "%.0f%%" (avg o2p) ];
      [ "Exp2: DEBRA+ overhead vs none (worst)"; "25%"; Printf.sprintf "%.0f%%" o2p.worst ];
      [ "Exp2: DEBRA vs HP (avg speedup)"; "+80%"; Printf.sprintf "%+.0f%%" (avg s2dh) ];
      [ "Exp2: DEBRA+ vs HP (avg speedup)"; "+76%"; Printf.sprintf "%+.0f%%" (avg s2ph) ];
      [
        "16 procs: DEBRA+ memory reduction vs DEBRA";
        "94%";
        Printf.sprintf "%.0f%% (%s vs %s)" mem_reduction
          (Workload.Report.fmt_bytes
             dplus_mem.Workload.Trial.bytes_claimed_trial)
          (Workload.Report.fmt_bytes
             debra_mem.Workload.Trial.bytes_claimed_trial);
      ];
      [
        "16 procs: neutralizations per trial";
        "~935";
        string_of_int dplus_mem.Workload.Trial.neutralized;
      ];
    ]
  in
  Workload.Report.table ~title:"Scalar claims"
    ~header:[ "claim"; "paper"; "measured" ]
    ~rows
