bench/summary.ml: Common Experiments List Machine Printf String Workload
