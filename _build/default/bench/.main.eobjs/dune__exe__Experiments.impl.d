bench/experiments.ml: B1_none B2_debra B2_debra_plus B2_ebr Common List Machine Printf Reclaim Workload
