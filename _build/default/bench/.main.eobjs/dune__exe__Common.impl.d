bench/common.ml: Workload
