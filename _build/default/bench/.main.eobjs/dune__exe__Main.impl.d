bench/main.ml: Arg Cmd Cmdliner Experiments Fig2 List Machine Micro Printf String Summary Term
