bench/main.mli:
