bench/micro.ml: Analyze Bechamel Benchmark Common Hashtbl Instance List Measure Memory Printf Reclaim Runtime Staged Test Time Toolkit Workload
