bench/fig2.ml: List Workload
