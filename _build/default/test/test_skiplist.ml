(* Concurrent correctness of the lazy skip list (lock-based updates,
   lock-free searches) under the reclamation schemes the paper pairs with
   lock-based structures (no DEBRA+: neutralizing a lock holder is unsafe,
   as the paper notes). *)

let params =
  {
    Reclaim.Intf.Params.default with
    Reclaim.Intf.Params.block_capacity = 32;
    hp_slots = 48;
  }

module Harness (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module S = Ds.Skiplist.Make (RM)

  let setup ~n ~seed =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create ~params group heap in
    let rm = RM.create env in
    (group, heap, rm)

  let run_random ?(machine = Machine.Config.tiny ~contexts:4 ()) ~n ~ops
      ~range ~seed () =
    let group, _heap, rm = setup ~n ~seed in
    let s = S.create rm ~capacity:((n * ops) + range + 4) in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid; 123 |] in
      for _ = 1 to ops do
        let key = 1 + Random.State.int rng range in
        match Random.State.int rng 3 with
        | 0 ->
            if S.insert s ctx ~key ~value:(key * 3) then
              net.(pid) <- net.(pid) + 1
        | 1 -> if S.delete s ctx key then net.(pid) <- net.(pid) - 1
        | _ -> ignore (S.contains s ctx key)
      done
    in
    let _ = Sim.run ~machine group (Array.init n body) in
    S.check_invariants s;
    (Array.fold_left ( + ) 0 net, S.size s)

  let test_random ~n ~ops ~range ~seed () =
    let expect, got = run_random ~n ~ops ~range ~seed () in
    Alcotest.(check int) "net size" expect got

  let test_sequential () =
    let group, _heap, rm = setup ~n:1 ~seed:3 in
    let s = S.create rm ~capacity:4096 in
    let ctx = Runtime.Group.ctx group 0 in
    Alcotest.(check bool) "ins 10" true (S.insert s ctx ~key:10 ~value:1);
    Alcotest.(check bool) "ins 20" true (S.insert s ctx ~key:20 ~value:2);
    Alcotest.(check bool) "ins 15" true (S.insert s ctx ~key:15 ~value:3);
    Alcotest.(check bool) "dup" false (S.insert s ctx ~key:15 ~value:4);
    Alcotest.(check (list int)) "sorted" [ 10; 15; 20 ] (S.to_list s);
    Alcotest.(check (option int)) "get" (Some 3) (S.get s ctx 15);
    Alcotest.(check bool) "del" true (S.delete s ctx 15);
    Alcotest.(check bool) "del again" false (S.delete s ctx 15);
    Alcotest.(check bool) "contains" true (S.contains s ctx 20);
    S.check_invariants s;
    Alcotest.(check (list int)) "final" [ 10; 20 ] (S.to_list s)

  let test_churn () =
    let group, _heap, rm = setup ~n:1 ~seed:4 in
    let s = S.create rm ~capacity:100_000 in
    let ctx = Runtime.Group.ctx group 0 in
    for round = 1 to 100 do
      for key = 1 to 25 do
        ignore (S.insert s ctx ~key ~value:round)
      done;
      for key = 1 to 25 do
        Alcotest.(check bool) "delete" true (S.delete s ctx key)
      done
    done;
    Alcotest.(check int) "empty" 0 (S.size s);
    S.check_invariants s

  let cases name =
    [
      Alcotest.test_case (name ^ " sequential") `Quick test_sequential;
      Alcotest.test_case (name ^ " churn") `Quick test_churn;
      Alcotest.test_case (name ^ " 2p small") `Quick
        (test_random ~n:2 ~ops:300 ~range:16 ~seed:1);
      Alcotest.test_case (name ^ " 4p contended") `Quick
        (test_random ~n:4 ~ops:300 ~range:8 ~seed:2);
      Alcotest.test_case (name ^ " 4p wide") `Quick
        (test_random ~n:4 ~ops:300 ~range:512 ~seed:3);
      Alcotest.test_case (name ^ " 6p oversubscribed") `Quick
        (test_random ~n:6 ~ops:200 ~range:32 ~seed:4);
    ]
end

module RM_none =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Direct)
    (Reclaim.None_reclaimer.Make)
module RM_ebr =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Ebr.Make)
module RM_debra =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_hp =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hp.Make)
module RM_malloc =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Malloc) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
(* StackTrack's sandboxing needs arena-visible frees (generation bumps)
   to detect reclaimed-memory accesses, so it pairs with Recycle+Direct. *)
module RM_st =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Recycle) (Reclaim.Pool.Direct)
    (Reclaim.Stacktrack.Make)
module RM_ts =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Threadscan.Make)

module H_none = Harness (RM_none)
module H_ebr = Harness (RM_ebr)
module H_debra = Harness (RM_debra)
module H_hp = Harness (RM_hp)
module H_malloc = Harness (RM_malloc)
module H_st = Harness (RM_st)
module H_ts = Harness (RM_ts)

let () =
  Alcotest.run "skiplist"
    [
      ("none", H_none.cases "none");
      ("ebr", H_ebr.cases "ebr");
      ("debra", H_debra.cases "debra");
      ("hp", H_hp.cases "hp");
      ("malloc+debra", H_malloc.cases "malloc");
      ("stacktrack", H_st.cases "stacktrack");
      ("threadscan", H_ts.cases "threadscan");
    ]
