test/test_domains.ml: Alcotest Array Bag Ds List Memory Option Random Reclaim Runtime
