test/test_smoke.ml: Alcotest Array Runtime Sim
