test/test_stack_queue.mli:
