test/test_neutralize.mli:
