test/test_hash_set.ml: Alcotest Array Ds List Machine Memory Random Reclaim Runtime Sim
