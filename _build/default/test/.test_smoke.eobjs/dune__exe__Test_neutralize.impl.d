test/test_neutralize.ml: Alcotest Array Ds Machine Memory Printf Random Reclaim Runtime Sim
