test/test_bag.ml: Alcotest Array Bag Int List Option Printf QCheck QCheck_alcotest Runtime Set
