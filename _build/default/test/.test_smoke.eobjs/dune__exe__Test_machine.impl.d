test/test_machine.ml: Alcotest Array Int List Machine Printf QCheck QCheck_alcotest Random Runtime Set Sim
