test/test_skiplist.ml: Alcotest Array Ds Machine Memory Random Reclaim Runtime Sim
