test/test_stack_queue.ml: Alcotest Array Ds List Machine Memory Random Reclaim Runtime Sim
