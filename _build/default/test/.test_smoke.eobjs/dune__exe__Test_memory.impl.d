test/test_memory.ml: Alcotest Hashtbl List Memory Option Printf QCheck QCheck_alcotest Random Runtime
