test/test_hash_set.mli:
