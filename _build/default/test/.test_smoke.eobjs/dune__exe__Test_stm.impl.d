test/test_stm.ml: Alcotest Array Htm Machine Memory Random Runtime Sim
