test/test_list.ml: Alcotest Array Ds Machine Memory Printf Random Reclaim Runtime Sim
