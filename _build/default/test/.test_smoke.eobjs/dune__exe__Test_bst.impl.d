test/test_bst.ml: Alcotest Array Ds List Machine Memory Printf Random Reclaim Runtime Sim
