test/test_reclaim.ml: Alcotest Alloc Array Bag Debra Debra_plus Ebr Hp Intf List Machine Memory Pool Printf Qsbr Rc Reclaim Record_manager Runtime Sim Threadscan
