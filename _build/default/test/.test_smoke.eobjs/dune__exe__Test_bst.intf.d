test/test_bst.mli:
