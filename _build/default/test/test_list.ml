(* Concurrent correctness of the Harris-Michael list under every reclamation
   scheme, executed on the deterministic simulator.  The final set size must
   equal the net number of successful inserts minus deletes, the list must
   stay sorted and cycle-free, and no access may ever hit a freed record
   (the arena would raise Use_after_free). *)

let block_32 =
  { Reclaim.Intf.Params.default with Reclaim.Intf.Params.block_capacity = 32 }

module Harness (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module L = Ds.Hm_list.Make (RM)

  let setup ~n ~seed ~params =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create ~params group heap in
    let rm = RM.create env in
    (group, heap, rm)

  (* Each process performs [ops] random operations; the final size must be
     the net number of successful updates. *)
  let run_random ?(machine = Machine.Config.tiny ~contexts:4 ())
      ?(params = block_32) ~n ~ops ~range ~seed () =
    let group, heap, rm = setup ~n ~seed ~params in
    let t = L.create rm ~capacity:(range + (n * ops) + 2) in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid; 7 |] in
      for _ = 1 to ops do
        let key = Random.State.int rng range in
        match Random.State.int rng 3 with
        | 0 ->
            if L.insert t ctx ~key ~value:(key * 2) then
              net.(pid) <- net.(pid) + 1
        | 1 -> if L.delete t ctx key then net.(pid) <- net.(pid) - 1
        | _ -> ignore (L.contains t ctx key)
      done
    in
    let _res = Sim.run ~machine group (Array.init n body) in
    L.check_invariants t;
    let expect = Array.fold_left ( + ) 0 net in
    (expect, L.size t, heap, rm, t)

  let test_random ~n ~ops ~range ~seed () =
    let expect, got, _, _, _ = run_random ~n ~ops ~range ~seed () in
    Alcotest.(check int) "net size" expect got

  let test_get () =
    let group, _heap, rm = setup ~n:2 ~seed:5 ~params:block_32 in
    let t = L.create rm ~capacity:4096 in
    let ctx = Runtime.Group.ctx group 0 in
    Alcotest.(check bool) "insert" true (L.insert t ctx ~key:7 ~value:49);
    Alcotest.(check bool) "no dup" false (L.insert t ctx ~key:7 ~value:50);
    Alcotest.(check (option int)) "get" (Some 49) (L.get t ctx 7);
    Alcotest.(check bool) "delete" true (L.delete t ctx 7);
    Alcotest.(check bool) "no double delete" false (L.delete t ctx 7);
    Alcotest.(check (option int)) "gone" None (L.get t ctx 7)

  (* Fault injection: pid 0 crashes while non-quiescent; the others keep
     operating.  Returns the limbo population at the end. *)
  let crash_limbo ~ops () =
    let n = 4 in
    let params = { block_32 with Reclaim.Intf.Params.incr_thresh = 1 } in
    let group, _heap, rm = setup ~n ~seed:11 ~params in
    let t = L.create rm ~capacity:(64 + (n * ops) + 2) in
    let ctx0 = Runtime.Group.ctx group 0 in
    for key = 0 to 31 do
      ignore (L.insert t ctx0 ~key ~value:key)
    done;
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      if pid = 0 then begin
        (* Enter an operation and crash inside it, leaving a non-quiescent
           announcement behind. *)
        RM.leave_qstate rm ctx;
        ignore (Memory.Arena.read ctx (L.arena t) t.L.head 0);
        Runtime.Ctx.crash ctx
      end
      else
        let rng = Random.State.make [| 13; pid |] in
        for _ = 1 to ops do
          let key = Random.State.int rng 32 in
          if Random.State.bool rng then ignore (L.insert t ctx ~key ~value:key)
          else ignore (L.delete t ctx key)
        done
    in
    let res =
      Sim.run
        ~machine:(Machine.Config.tiny ~contexts:4 ())
        group (Array.init n body)
    in
    Alcotest.(check bool) "pid 0 crashed" true res.Sim.crashed.(0);
    L.check_invariants t;
    RM.limbo_size rm

  let cases name =
    [
      Alcotest.test_case (name ^ " get/insert/delete") `Quick test_get;
      Alcotest.test_case (name ^ " 2p small") `Quick
        (test_random ~n:2 ~ops:400 ~range:16 ~seed:1);
      Alcotest.test_case (name ^ " 4p contended") `Quick
        (test_random ~n:4 ~ops:500 ~range:8 ~seed:2);
      Alcotest.test_case (name ^ " 4p wide") `Quick
        (test_random ~n:4 ~ops:400 ~range:256 ~seed:3);
      Alcotest.test_case (name ^ " 6p oversubscribed") `Quick
        (test_random ~n:6 ~ops:300 ~range:32 ~seed:4);
    ]
end

module RM_none =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Direct)
    (Reclaim.None_reclaimer.Make)
module RM_ebr =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Ebr.Make)
module RM_debra =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_debra_plus =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)
module RM_hp =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hp.Make)
module RM_malloc_debra =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Malloc) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_qsbr =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Qsbr.Make)
module RM_rc =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Rc.Make)

module H_none = Harness (RM_none)
module H_ebr = Harness (RM_ebr)
module H_debra = Harness (RM_debra)
module H_debra_plus = Harness (RM_debra_plus)
module H_hp = Harness (RM_hp)
module H_malloc = Harness (RM_malloc_debra)
module H_qsbr = Harness (RM_qsbr)
module H_rc = Harness (RM_rc)

let test_crash_debra_grows () =
  let limbo = H_debra.crash_limbo ~ops:3000 () in
  Alcotest.(check bool)
    (Printf.sprintf "debra limbo grows unboundedly (got %d)" limbo)
    true (limbo > 1500)

let test_crash_debra_plus_bounded () =
  let limbo = H_debra_plus.crash_limbo ~ops:3000 () in
  Alcotest.(check bool)
    (Printf.sprintf "debra+ limbo bounded (got %d)" limbo)
    true (limbo < 1500)

let () =
  Alcotest.run "hm_list"
    [
      ("none", H_none.cases "none");
      ("ebr", H_ebr.cases "ebr");
      ("debra", H_debra.cases "debra");
      ("debra+", H_debra_plus.cases "debra+");
      ("hp", H_hp.cases "hp");
      ("malloc+debra", H_malloc.cases "malloc");
      ("qsbr", H_qsbr.cases "qsbr");
      ("rc", H_rc.cases "rc");
      ( "fault-tolerance",
        [
          Alcotest.test_case "crashed process blocks DEBRA" `Quick
            test_crash_debra_grows;
          Alcotest.test_case "DEBRA+ stays bounded across crash" `Quick
            test_crash_debra_plus_bounded;
        ] );
    ]
