let test_sim_counter () =
  let group = Runtime.Group.create 4 in
  let v = Runtime.Svar.make 0 in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    for _ = 1 to 100 do
      let rec incr () =
        let x = Runtime.Svar.get ctx v in
        if not (Runtime.Svar.cas ctx v ~expect:x (x + 1)) then incr ()
      in
      incr ()
    done
  in
  let r = Sim.run group (Array.init 4 body) in
  Alcotest.(check int) "counter" 400 (Runtime.Svar.peek v);
  Alcotest.(check bool) "time advanced" true (r.Sim.virtual_time > 0)

let () =
  Alcotest.run "smoke"
    [ ("sim", [ Alcotest.test_case "atomic counter" `Quick test_sim_counter ]) ]
