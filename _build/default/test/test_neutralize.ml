(* Neutralization under fire: a process that repeatedly stalls mid-operation
   gets signalled by peers whose limbo bags grow.  The run must (a) actually
   neutralize (the recovery paths in the BST/list are exercised, not just
   compiled), (b) keep the structure linearizable (net-size accounting), and
   (c) keep reclaiming (limbo bounded).

   Also sweeps many seeds at small scale: each seed is a different
   deterministic interleaving of the same contended workload. *)

module RM_dplus =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)

module T = Ds.Efrb_bst.Make (RM_dplus)
module L = Ds.Hm_list.Make (RM_dplus)

let params =
  {
    Reclaim.Intf.Params.default with
    Reclaim.Intf.Params.block_capacity = 16;
    incr_thresh = 1;
    suspect_blocks = 1;
  }

let setup ~n ~seed =
  let group = Runtime.Group.create ~seed n in
  let heap = Memory.Heap.create () in
  let env = Reclaim.Intf.Env.create ~params group heap in
  let rm = RM_dplus.create env in
  (group, rm)

(* One process stalls 2000 cycles between every operation pair while staying
   non-quiescent mid-operation often enough to draw signals. *)
let test_bst_neutralized_under_stalls () =
  let n = 4 in
  let ops = 600 in
  let group, rm = setup ~n ~seed:31 in
  let t = T.create rm ~capacity:(8 * n * ops) in
  let net = Array.make n 0 in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    let rng = Random.State.make [| 17; pid |] in
    for i = 1 to ops do
      let key = 1 + Random.State.int rng 32 in
      (if Random.State.bool rng then (
         if T.insert t ctx ~key ~value:key then net.(pid) <- net.(pid) + 1)
       else if T.delete t ctx key then net.(pid) <- net.(pid) - 1);
      (* The laggard dawdles mid-stream: it leaves an operation open by
         stalling inside the next one's search. *)
      if pid = 0 && i mod 5 = 0 then begin
        RM_dplus.leave_qstate rm ctx;
        ignore (Memory.Arena.read ctx t.T.internal t.T.root 0);
        Runtime.Ctx.stall ctx 50_000;
        (* Either it was neutralized while asleep (the next access runs the
           handler) or it finishes the op normally. *)
        (try ignore (Memory.Arena.read ctx t.T.internal t.T.root 0)
         with Runtime.Ctx.Neutralized -> ());
        RM_dplus.enter_qstate rm ctx
      end
    done
  in
  ignore
    (Sim.run ~machine:(Machine.Config.tiny ~contexts:2 ()) group
       (Array.init n body));
  T.check_invariants t;
  Alcotest.(check int) "net size" (Array.fold_left ( + ) 0 net) (T.size t);
  let neutralized =
    Runtime.Group.sum_stats group (fun s -> s.Runtime.Ctx.neutralized)
  in
  Alcotest.(check bool)
    (Printf.sprintf "neutralizations happened (%d)" neutralized)
    true (neutralized > 0);
  Alcotest.(check bool)
    (Printf.sprintf "limbo bounded (%d)" (RM_dplus.limbo_size rm))
    true
    (RM_dplus.limbo_size rm < 4 * n * 16 * 8)

(* Many seeds, small scale: every seed is a distinct interleaving. *)
let test_bst_seed_sweep () =
  for seed = 1 to 12 do
    let n = 3 in
    let group, rm = setup ~n ~seed in
    let t = T.create rm ~capacity:30_000 in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid |] in
      for _ = 1 to 150 do
        let key = 1 + Random.State.int rng 8 in
        if Random.State.bool rng then (
          if T.insert t ctx ~key ~value:key then net.(pid) <- net.(pid) + 1)
        else if T.delete t ctx key then net.(pid) <- net.(pid) - 1
      done
    in
    ignore
      (Sim.run ~machine:(Machine.Config.tiny ~contexts:2 ()) group
         (Array.init n body));
    T.check_invariants t;
    Alcotest.(check int)
      (Printf.sprintf "seed %d net size" seed)
      (Array.fold_left ( + ) 0 net)
      (T.size t)
  done

let test_list_seed_sweep () =
  for seed = 20 to 32 do
    let n = 3 in
    let group, rm = setup ~n ~seed in
    let t = L.create rm ~capacity:30_000 in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid |] in
      for _ = 1 to 150 do
        let key = Random.State.int rng 8 in
        if Random.State.bool rng then (
          if L.insert t ctx ~key ~value:key then net.(pid) <- net.(pid) + 1)
        else if L.delete t ctx key then net.(pid) <- net.(pid) - 1
      done
    in
    ignore
      (Sim.run ~machine:(Machine.Config.tiny ~contexts:2 ()) group
         (Array.init n body));
    L.check_invariants t;
    Alcotest.(check int)
      (Printf.sprintf "seed %d net size" seed)
      (Array.fold_left ( + ) 0 net)
      (L.size t)
  done

(* Random-walk scheduling: each seed is a different logical interleaving,
   far from the min-time schedule the benchmarks use. *)
let test_random_walk_interleavings () =
  for seed = 1 to 15 do
    let n = 3 in
    let group, rm = setup ~n ~seed in
    let t = T.create rm ~capacity:30_000 in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid; 3 |] in
      for _ = 1 to 120 do
        let key = 1 + Random.State.int rng 6 in
        if Random.State.bool rng then (
          if T.insert t ctx ~key ~value:key then net.(pid) <- net.(pid) + 1)
        else if T.delete t ctx key then net.(pid) <- net.(pid) - 1
      done
    in
    ignore
      (Sim.run
         ~machine:(Machine.Config.tiny ~contexts:3 ())
         ~policy:(`Random_walk (seed * 37))
         group (Array.init n body));
    T.check_invariants t;
    Alcotest.(check int)
      (Printf.sprintf "random-walk seed %d net size" seed)
      (Array.fold_left ( + ) 0 net)
      (T.size t)
  done

let () =
  Alcotest.run "neutralize"
    [
      ( "debra+",
        [
          Alcotest.test_case "bst neutralized under stalls" `Quick
            test_bst_neutralized_under_stalls;
          Alcotest.test_case "bst 12-seed interleaving sweep" `Quick
            test_bst_seed_sweep;
          Alcotest.test_case "list 13-seed interleaving sweep" `Quick
            test_list_seed_sweep;
          Alcotest.test_case "bst 15-seed random-walk schedules" `Quick
            test_random_walk_interleavings;
        ] );
    ]
