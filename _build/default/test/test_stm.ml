(* Tests for the simulated best-effort transactions (Htm.Stm): isolation
   under the simulator, conflict/capacity/freed aborts, and buffered
   write-read consistency. *)

let mk () =
  let heap = Memory.Heap.create () in
  let arena =
    Memory.Heap.new_arena heap ~name:"acct" ~mut_fields:2 ~const_fields:0
      ~capacity:1024
  in
  let stm = Htm.Stm.create heap in
  (heap, arena, stm)

let test_commit_and_read () =
  let _, arena, stm = mk () in
  let ctx = Runtime.Ctx.make ~pid:0 ~nprocs:1 ~seed:1 in
  let p = Memory.Arena.claim_fresh ctx arena in
  (match
     Htm.Stm.attempt stm ctx (fun txn ->
         Htm.Stm.write txn arena p 0 41;
         Htm.Stm.write txn arena p 0 42;
         (* read-your-own-write *)
         Alcotest.(check int) "buffered" 42 (Htm.Stm.read txn arena p 0);
         Htm.Stm.write txn arena p 1 7)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "commit failed");
  Alcotest.(check int) "field 0" 42 (Memory.Arena.peek arena p 0);
  Alcotest.(check int) "field 1" 7 (Memory.Arena.peek arena p 1);
  Alcotest.(check int) "commits" 1 (Htm.Stm.stats stm).Htm.Stm.commits

let test_freed_abort () =
  let heap, arena, stm = mk () in
  let ctx = Runtime.Ctx.make ~pid:0 ~nprocs:1 ~seed:1 in
  let p = Memory.Arena.claim_fresh ctx arena in
  Memory.Heap.release heap ctx p ~recycle:false;
  (match Htm.Stm.attempt stm ctx (fun txn -> Htm.Stm.read txn arena p 0) with
  | Ok _ -> Alcotest.fail "read of freed record must abort"
  | Error `Freed -> ()
  | Error _ -> Alcotest.fail "wrong abort reason");
  Alcotest.(check int) "freed aborts" 1 (Htm.Stm.stats stm).Htm.Stm.aborts_freed

let test_capacity_abort () =
  let heap, arena, _ = mk () in
  let stm = Htm.Stm.create ~max_read_set:4 ~max_write_set:64 heap in
  let ctx = Runtime.Ctx.make ~pid:0 ~nprocs:1 ~seed:1 in
  let ps = Array.init 8 (fun _ -> Memory.Arena.claim_fresh ctx arena) in
  (match
     Htm.Stm.attempt stm ctx (fun txn ->
         Array.iter (fun p -> ignore (Htm.Stm.read txn arena p 0)) ps)
   with
  | Ok _ -> Alcotest.fail "must abort on capacity"
  | Error `Capacity -> ()
  | Error _ -> Alcotest.fail "wrong abort reason")

(* Two processes transfer value between two accounts transactionally; the
   total must be conserved, and no transaction may observe a torn state. *)
let test_bank_transfer () =
  let _, arena, stm = mk () in
  let group = Runtime.Group.create 4 in
  let ctx0 = Runtime.Group.ctx group 0 in
  let a = Memory.Arena.claim_fresh ctx0 arena in
  let b = Memory.Arena.claim_fresh ctx0 arena in
  Memory.Arena.poke arena a 0 1000;
  Memory.Arena.poke arena b 0 1000;
  let torn = ref 0 in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    let rng = Random.State.make [| pid; 5 |] in
    for _ = 1 to 200 do
      let amount = Random.State.int rng 10 in
      let rec retry () =
        match
          Htm.Stm.attempt stm ctx (fun txn ->
              let va = Htm.Stm.read txn arena a 0 in
              let vb = Htm.Stm.read txn arena b 0 in
              if va + vb <> 2000 then incr torn;
              Htm.Stm.write txn arena a 0 (va - amount);
              Htm.Stm.write txn arena b 0 (vb + amount))
        with
        | Ok () -> ()
        | Error _ -> retry ()
      in
      retry ()
    done
  in
  ignore
    (Sim.run ~machine:(Machine.Config.tiny ~contexts:4 ()) group
       (Array.init 4 body));
  Alcotest.(check int) "no torn reads" 0 !torn;
  Alcotest.(check int) "conserved" 2000
    (Memory.Arena.peek arena a 0 + Memory.Arena.peek arena b 0);
  Alcotest.(check bool) "some commits" true
    ((Htm.Stm.stats stm).Htm.Stm.commits >= 800)

let () =
  Alcotest.run "stm"
    [
      ( "stm",
        [
          Alcotest.test_case "commit and read" `Quick test_commit_and_read;
          Alcotest.test_case "freed abort" `Quick test_freed_abort;
          Alcotest.test_case "capacity abort" `Quick test_capacity_abort;
          Alcotest.test_case "bank transfer isolation" `Quick
            test_bank_transfer;
        ] );
    ]
