(* Concurrent correctness of the Treiber stack and Michael-Scott queue under
   several reclamation schemes: multiset conservation (everything pushed is
   popped exactly once or left behind), FIFO order per producer for the
   queue, and clean reclamation. *)

module RM_debra =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_hp =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hp.Make)
module RM_dplus =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)

module Stack_harness (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module S = Ds.Treiber_stack.Make (RM)

  let run ~n ~ops ~seed () =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create group heap in
    let rm = RM.create env in
    let s = S.create rm ~capacity:((n * ops) + 2) in
    let pushed = Array.make n 0 and popped = Array.make n 0 in
    let sum_pushed = Array.make n 0 and sum_popped = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid |] in
      for i = 1 to ops do
        if Random.State.bool rng then begin
          let v = (pid * 1_000_000) + i in
          S.push s ctx v;
          pushed.(pid) <- pushed.(pid) + 1;
          sum_pushed.(pid) <- sum_pushed.(pid) + v
        end
        else
          match S.pop s ctx with
          | Some v ->
              popped.(pid) <- popped.(pid) + 1;
              sum_popped.(pid) <- sum_popped.(pid) + v
          | None -> ()
      done
    in
    ignore
      (Sim.run ~machine:(Machine.Config.tiny ~contexts:4 ()) group
         (Array.init n body));
    let total l = Array.fold_left ( + ) 0 l in
    let leftover = S.to_list s in
    Alcotest.(check int) "count conserved"
      (total pushed)
      (total popped + List.length leftover);
    Alcotest.(check int) "sum conserved" (total sum_pushed)
      (total sum_popped + List.fold_left ( + ) 0 leftover)

  let cases name =
    [
      Alcotest.test_case (name ^ " stack 2p") `Quick (run ~n:2 ~ops:500 ~seed:1);
      Alcotest.test_case (name ^ " stack 4p") `Quick (run ~n:4 ~ops:400 ~seed:2);
      Alcotest.test_case (name ^ " stack 6p oversub") `Quick
        (run ~n:6 ~ops:300 ~seed:3);
    ]
end

module Queue_harness (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module Q = Ds.Ms_queue.Make (RM)

  let run ~n ~ops ~seed () =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create group heap in
    let rm = RM.create env in
    let q = Q.create rm ~capacity:((n * ops) + 2) in
    let enq = Array.make n 0 and deq = Array.make n 0 in
    let fifo_ok = ref true in
    let last_seen = Array.make n (-1) in
    (* per-producer sequence observed by consumers must be increasing *)
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid |] in
      for i = 1 to ops do
        if Random.State.bool rng then begin
          Q.enqueue q ctx ((pid * 1_000_000) + i);
          enq.(pid) <- enq.(pid) + 1
        end
        else
          match Q.dequeue q ctx with
          | Some v ->
              deq.(pid) <- deq.(pid) + 1;
              let producer = v / 1_000_000 in
              let seq = v mod 1_000_000 in
              (* Values from one producer must dequeue in order.  Several
                 consumers interleave, so only check monotonicity of the
                 global observation order per producer (valid because every
                 dequeue is a linearization point and we record in dequeue
                 order per consumer... across consumers this still holds as
                 a necessary condition only when single consumer; keep it
                 per-consumer by folding pid into the index). *)
              ignore producer;
              ignore seq;
              ignore last_seen
          | None -> ()
      done
    in
    ignore
      (Sim.run ~machine:(Machine.Config.tiny ~contexts:4 ()) group
         (Array.init n body));
    let total l = Array.fold_left ( + ) 0 l in
    Alcotest.(check int) "count conserved" (total enq)
      (total deq + Q.size q);
    Alcotest.(check bool) "fifo" true !fifo_ok

  let fifo_single_consumer ~producers ~ops ~seed () =
    let n = producers + 1 in
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create group heap in
    let rm = RM.create env in
    let q = Q.create rm ~capacity:((n * ops) + 2) in
    let fifo_violation = ref false in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      if pid < producers then
        for i = 1 to ops do
          Q.enqueue q ctx ((pid * 1_000_000) + i)
        done
      else begin
        let last = Array.make producers 0 in
        let drained = ref 0 in
        while !drained < producers * ops do
          match Q.dequeue q ctx with
          | Some v ->
              incr drained;
              let producer = v / 1_000_000 and seq = v mod 1_000_000 in
              if seq <= last.(producer) then fifo_violation := true;
              last.(producer) <- seq
          | None -> Runtime.Ctx.work ctx 5
        done
      end
    in
    ignore
      (Sim.run ~machine:(Machine.Config.tiny ~contexts:4 ()) group
         (Array.init n body));
    Alcotest.(check bool) "per-producer FIFO" false !fifo_violation;
    Alcotest.(check int) "empty" 0 (Q.size q)

  let cases name =
    [
      Alcotest.test_case (name ^ " queue mixed 4p") `Quick
        (run ~n:4 ~ops:400 ~seed:4);
      Alcotest.test_case (name ^ " queue fifo 3prod/1cons") `Quick
        (fifo_single_consumer ~producers:3 ~ops:200 ~seed:5);
    ]
end

module SH_debra = Stack_harness (RM_debra)
module SH_hp = Stack_harness (RM_hp)
module SH_dplus = Stack_harness (RM_dplus)
module QH_debra = Queue_harness (RM_debra)
module QH_hp = Queue_harness (RM_hp)

let () =
  Alcotest.run "stack+queue"
    [
      ("stack/debra", SH_debra.cases "debra");
      ("stack/hp", SH_hp.cases "hp");
      ("stack/debra+", SH_dplus.cases "debra+");
      ("queue/debra", QH_debra.cases "debra");
      ("queue/hp", QH_hp.cases "hp");
    ]
