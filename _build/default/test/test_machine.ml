(* Tests for the MESI/NUMA cache model: hit/miss costs, invalidation on
   write, the same-socket LLC rule from the paper's Model section, LRU
   eviction, and the simulator's scheduling/oversubscription behaviour. *)

let cfg2s =
  (* 2 sockets x 2 contexts, tiny caches *)
  {
    (Machine.Config.tiny ~contexts:2 ()) with
    Machine.Config.name = "2x2";
    sockets = 2;
    contexts_per_socket = 2;
  }

let test_read_costs () =
  let c = Machine.Cache.create cfg2s in
  let cost k = Machine.Cache.access c ~context:0 k ~line:42 in
  Alcotest.(check int) "cold read = memory" cfg2s.Machine.Config.mem_access
    (cost Runtime.Ctx.Read);
  Alcotest.(check int) "hot read = l1" cfg2s.Machine.Config.l1_hit
    (cost Runtime.Ctx.Read)

let test_llc_shared_within_socket () =
  let c = Machine.Cache.create cfg2s in
  ignore (Machine.Cache.access c ~context:0 Runtime.Ctx.Read ~line:7);
  (* context 1 shares socket 0's LLC *)
  Alcotest.(check int) "same-socket read = llc hit"
    cfg2s.Machine.Config.llc_hit
    (Machine.Cache.access c ~context:1 Runtime.Ctx.Read ~line:7);
  (* context 2 is on socket 1: full miss *)
  Alcotest.(check int) "cross-socket read = memory"
    cfg2s.Machine.Config.mem_access
    (Machine.Cache.access c ~context:2 Runtime.Ctx.Read ~line:7)

let test_write_invalidation () =
  let c = Machine.Cache.create cfg2s in
  (* Both sockets load the line. *)
  ignore (Machine.Cache.access c ~context:0 Runtime.Ctx.Read ~line:9);
  ignore (Machine.Cache.access c ~context:2 Runtime.Ctx.Read ~line:9);
  (* Write by context 0 invalidates socket 1's copies. *)
  ignore (Machine.Cache.access c ~context:0 Runtime.Ctx.Write ~line:9);
  Alcotest.(check int) "remote socket pays memory again"
    cfg2s.Machine.Config.mem_access
    (Machine.Cache.access c ~context:2 Runtime.Ctx.Read ~line:9)

let test_same_socket_llc_survives_write () =
  (* The paper's NUMA rule: a write invalidates other contexts' private
     caches but leaves the writer's socket's LLC copy valid. *)
  let c = Machine.Cache.create cfg2s in
  ignore (Machine.Cache.access c ~context:1 Runtime.Ctx.Read ~line:5);
  ignore (Machine.Cache.access c ~context:0 Runtime.Ctx.Write ~line:5);
  Alcotest.(check int) "same-socket reader pays only LLC"
    cfg2s.Machine.Config.llc_hit
    (Machine.Cache.access c ~context:1 Runtime.Ctx.Read ~line:5)

let test_lru_eviction () =
  let evicted = ref [] in
  let lru = Machine.Lru.create ~cap:2 ~on_evict:(fun l -> evicted := l :: !evicted) in
  Machine.Lru.touch lru 1;
  Machine.Lru.touch lru 2;
  Machine.Lru.touch lru 1;
  (* refresh 1 *)
  Machine.Lru.touch lru 3;
  (* evicts 2 *)
  Alcotest.(check (list int)) "evicted LRU" [ 2 ] !evicted;
  Alcotest.(check bool) "1 kept" true (Machine.Lru.mem lru 1);
  Alcotest.(check bool) "3 kept" true (Machine.Lru.mem lru 3)

let test_l1_capacity_evicts () =
  let c = Machine.Cache.create cfg2s in
  (* Fill L1 (16 lines in tiny config) then exceed it. *)
  for line = 0 to cfg2s.Machine.Config.l1_lines do
    ignore (Machine.Cache.access c ~context:0 Runtime.Ctx.Read ~line)
  done;
  (* line 0 must have been evicted from L1 but still be in the LLC *)
  Alcotest.(check int) "evicted to LLC" cfg2s.Machine.Config.llc_hit
    (Machine.Cache.access c ~context:0 Runtime.Ctx.Read ~line:0)

let prop_bitset =
  QCheck.Test.make ~name:"bitset agrees with reference set" ~count:300
    QCheck.(list (int_bound 62))
    (fun xs ->
      let bs = Machine.Bitset.create 63 in
      let module IS = Set.Make (Int) in
      let reference = List.fold_left (fun acc x -> IS.add x acc) IS.empty xs in
      List.iter (Machine.Bitset.set bs) xs;
      let collected = ref IS.empty in
      Machine.Bitset.iter (fun i -> collected := IS.add i !collected) bs;
      IS.equal reference !collected
      && Machine.Bitset.cardinal bs = IS.cardinal reference)

let prop_costs_bounded =
  QCheck.Test.make ~name:"access costs stay within model bounds" ~count:100
    QCheck.(list (pair (int_bound 3) (pair (int_bound 3) (int_bound 15))))
    (fun script ->
      let c = Machine.Cache.create cfg2s in
      List.for_all
        (fun (ctx, (kind, line)) ->
          let kind =
            match kind with
            | 0 -> Runtime.Ctx.Read
            | 1 -> Runtime.Ctx.Write
            | 2 -> Runtime.Ctx.Cas
            | _ -> Runtime.Ctx.Fence
          in
          let cost = Machine.Cache.access c ~context:ctx kind ~line in
          let open Machine.Config in
          cost >= min cfg2s.l1_hit cfg2s.fence
          && cost
             <= cfg2s.mem_access + cfg2s.invalidation + cfg2s.cas_extra)
        script)

let prop_repeat_read_is_l1 =
  QCheck.Test.make ~name:"repeating a read hits the private cache" ~count:100
    QCheck.(list (int_bound 30))
    (fun lines ->
      let c = Machine.Cache.create cfg2s in
      List.for_all
        (fun line ->
          ignore (Machine.Cache.access c ~context:0 Runtime.Ctx.Read ~line);
          Machine.Cache.access c ~context:0 Runtime.Ctx.Read ~line
          = cfg2s.Machine.Config.l1_hit)
        (List.filter (fun l -> l < cfg2s.Machine.Config.l1_lines) lines))

(* Simulator scheduling *)

let test_parallel_speedup () =
  (* Two independent processes on two contexts should finish in about the
     time of one, not the sum. *)
  let work ctx = for _ = 1 to 1000 do Runtime.Ctx.work ctx 100 done in
  let run contexts n =
    let group = Runtime.Group.create n in
    let r =
      Sim.run ~machine:(Machine.Config.tiny ~contexts ()) group
        (Array.init n (fun pid () -> work (Runtime.Group.ctx group pid)))
    in
    r.Sim.virtual_time
  in
  let t1 = run 2 1 and t2 = run 2 2 in
  Alcotest.(check bool)
    (Printf.sprintf "2 procs on 2 cores take the same time (%d vs %d)" t1 t2)
    true (t2 < t1 + (t1 / 4))

let test_oversubscription_slowdown () =
  let work ctx = for _ = 1 to 1000 do Runtime.Ctx.work ctx 100 done in
  let run n =
    let group = Runtime.Group.create n in
    let r =
      Sim.run ~machine:(Machine.Config.tiny ~contexts:2 ()) group
        (Array.init n (fun pid () -> work (Runtime.Group.ctx group pid)))
    in
    r.Sim.virtual_time
  in
  let t2 = run 2 and t4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 procs on 2 cores take ~2x (%d vs %d)" t2 t4)
    true
    (t4 > (3 * t2) / 2)

let test_stall_parks_process () =
  let group = Runtime.Group.create 2 in
  let order = ref [] in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    if pid = 0 then Runtime.Ctx.stall ctx 1_000_000;
    Runtime.Ctx.work ctx 10;
    order := pid :: !order
  in
  ignore
    (Sim.run ~machine:(Machine.Config.tiny ~contexts:1 ()) group
       (Array.init 2 body));
  Alcotest.(check (list int)) "stalled process finishes last" [ 0; 1 ] !order

let test_crash_reported () =
  let group = Runtime.Group.create 2 in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    Runtime.Ctx.work ctx 10;
    if pid = 1 then Runtime.Ctx.crash ctx
  in
  let r =
    Sim.run ~machine:(Machine.Config.tiny ()) group (Array.init 2 body)
  in
  Alcotest.(check (array bool)) "crash flags" [| false; true |] r.Sim.crashed

(* Determinism: identical runs produce identical traces. *)
let test_sim_deterministic () =
  let run () =
    let group = Runtime.Group.create ~seed:5 3 in
    let v = Runtime.Svar.make 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| pid |] in
      for _ = 1 to 200 do
        if Random.State.bool rng then ignore (Runtime.Svar.faa ctx v 1)
        else ignore (Runtime.Svar.get ctx v)
      done
    in
    let r =
      Sim.run ~machine:(Machine.Config.tiny ~contexts:2 ()) group
        (Array.init 3 body)
    in
    (r.Sim.virtual_time, Runtime.Svar.peek v, r.Sim.context_switches)
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "identical outcomes" a b

let test_signal_delivery_before_next_access () =
  let group = Runtime.Group.create 2 in
  let hits = ref 0 in
  let c1 = Runtime.Group.ctx group 1 in
  c1.Runtime.Ctx.handler <- (fun _ -> incr hits);
  let v = Runtime.Svar.make 0 in
  let body pid () =
    let ctx = Runtime.Group.ctx group pid in
    if pid = 0 then
      ignore (Runtime.Group.send_signal group ~from:ctx ~target:1)
    else begin
      (* Wait until the signal flag is set, then one more access runs the
         handler first. *)
      Runtime.Ctx.work ctx 1000;
      ignore (Runtime.Svar.get ctx v)
    end
  in
  ignore (Sim.run ~machine:(Machine.Config.tiny ()) group (Array.init 2 body));
  Alcotest.(check int) "handler ran exactly once" 1 !hits

let () =
  Alcotest.run "machine+sim"
    [
      ( "cache",
        [
          Alcotest.test_case "read costs" `Quick test_read_costs;
          Alcotest.test_case "llc shared within socket" `Quick
            test_llc_shared_within_socket;
          Alcotest.test_case "write invalidation" `Quick test_write_invalidation;
          Alcotest.test_case "same-socket llc survives write" `Quick
            test_same_socket_llc_survives_write;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "l1 capacity" `Quick test_l1_capacity_evicts;
          QCheck_alcotest.to_alcotest prop_bitset;
        ] );
      ( "sim",
        [
          Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
          Alcotest.test_case "oversubscription" `Quick
            test_oversubscription_slowdown;
          Alcotest.test_case "stall parks" `Quick test_stall_parks_process;
          Alcotest.test_case "crash reported" `Quick test_crash_reported;
          Alcotest.test_case "signal before next access" `Quick
            test_signal_delivery_before_next_access;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          QCheck_alcotest.to_alcotest prop_costs_bounded;
          QCheck_alcotest.to_alcotest prop_repeat_read_is_l1;
        ] );
    ]
