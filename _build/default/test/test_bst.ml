(* Concurrent correctness of the EFRB-style external BST under every
   reclamation scheme, on the deterministic simulator.  Checks: net size
   accounting, BST ordering invariants, no reachable freed node, no
   double-free of descriptors (the arena would raise), and the DEBRA/DEBRA+
   fault-tolerance contrast. *)

let params_small =
  {
    Reclaim.Intf.Params.default with
    Reclaim.Intf.Params.block_capacity = 32;
    incr_thresh = 4;
  }

module Harness (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module T = Ds.Efrb_bst.Make (RM)

  let setup ~n ~seed ~params =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create ~params group heap in
    let rm = RM.create env in
    (group, heap, rm)

  let run_random ?(machine = Machine.Config.tiny ~contexts:4 ())
      ?(params = params_small) ~n ~ops ~range ~seed () =
    let group, heap, rm = setup ~n ~seed ~params in
    let t = T.create rm ~capacity:(2 * ((n * ops) + range + 4)) in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid; 99 |] in
      for _ = 1 to ops do
        let key = 1 + Random.State.int rng range in
        match Random.State.int rng 3 with
        | 0 ->
            if T.insert t ctx ~key ~value:(key * 3) then
              net.(pid) <- net.(pid) + 1
        | 1 -> if T.delete t ctx key then net.(pid) <- net.(pid) - 1
        | _ -> ignore (T.contains t ctx key)
      done
    in
    let _ = Sim.run ~machine group (Array.init n body) in
    T.check_invariants t;
    let expect = Array.fold_left ( + ) 0 net in
    (expect, T.size t, heap, rm, t)

  let test_random ~n ~ops ~range ~seed () =
    let expect, got, _, _, _ = run_random ~n ~ops ~range ~seed () in
    Alcotest.(check int) "net size" expect got

  let test_sequential () =
    let group, _heap, rm = setup ~n:1 ~seed:3 ~params:params_small in
    let t = T.create rm ~capacity:4096 in
    let ctx = Runtime.Group.ctx group 0 in
    Alcotest.(check bool) "insert 5" true (T.insert t ctx ~key:5 ~value:50);
    Alcotest.(check bool) "insert 3" true (T.insert t ctx ~key:3 ~value:30);
    Alcotest.(check bool) "insert 8" true (T.insert t ctx ~key:8 ~value:80);
    Alcotest.(check bool) "dup 5" false (T.insert t ctx ~key:5 ~value:51);
    Alcotest.(check (option int)) "get 3" (Some 30) (T.get t ctx 3);
    Alcotest.(check (option int)) "get 9" None (T.get t ctx 9);
    Alcotest.(check (list int)) "sorted" [ 3; 5; 8 ] (T.to_list t);
    Alcotest.(check bool) "delete 3" true (T.delete t ctx 3);
    Alcotest.(check bool) "delete 3 again" false (T.delete t ctx 3);
    Alcotest.(check bool) "contains 5" true (T.contains t ctx 5);
    Alcotest.(check bool) "contains 3" false (T.contains t ctx 3);
    T.check_invariants t;
    Alcotest.(check (list int)) "final" [ 5; 8 ] (T.to_list t)

  let test_delete_reinsert_cycles () =
    (* Exercises descriptor reclamation heavily: the same keys churn, so
       update words are overwritten and descriptors retired over and over. *)
    let group, _heap, rm = setup ~n:1 ~seed:4 ~params:params_small in
    let t = T.create rm ~capacity:300_000 in
    let ctx = Runtime.Group.ctx group 0 in
    for round = 1 to 200 do
      for key = 1 to 20 do
        ignore (T.insert t ctx ~key ~value:round)
      done;
      for key = 1 to 20 do
        Alcotest.(check bool) "delete" true (T.delete t ctx key)
      done
    done;
    Alcotest.(check int) "empty" 0 (T.size t);
    T.check_invariants t

  let crash_limbo ~ops () =
    let n = 4 in
    let params = { params_small with Reclaim.Intf.Params.incr_thresh = 1 } in
    let group, _heap, rm = setup ~n ~seed:11 ~params in
    let t = T.create rm ~capacity:(2 * ((n * ops) + 64)) in
    let ctx0 = Runtime.Group.ctx group 0 in
    for key = 1 to 32 do
      ignore (T.insert t ctx0 ~key ~value:key)
    done;
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      if pid = 0 then begin
        RM.leave_qstate rm ctx;
        ignore (Memory.Arena.read ctx t.T.internal t.T.root 0);
        Runtime.Ctx.crash ctx
      end
      else
        let rng = Random.State.make [| 13; pid |] in
        for _ = 1 to ops do
          let key = 1 + Random.State.int rng 32 in
          if Random.State.bool rng then ignore (T.insert t ctx ~key ~value:key)
          else ignore (T.delete t ctx key)
        done
    in
    let res =
      Sim.run
        ~machine:(Machine.Config.tiny ~contexts:4 ())
        group (Array.init n body)
    in
    Alcotest.(check bool) "pid 0 crashed" true res.Sim.crashed.(0);
    T.check_invariants t;
    RM.limbo_size rm

  let cases name =
    [
      Alcotest.test_case (name ^ " sequential") `Quick test_sequential;
      Alcotest.test_case (name ^ " churn") `Quick test_delete_reinsert_cycles;
      Alcotest.test_case (name ^ " 2p small") `Quick
        (test_random ~n:2 ~ops:400 ~range:16 ~seed:1);
      Alcotest.test_case (name ^ " 4p contended") `Quick
        (test_random ~n:4 ~ops:400 ~range:8 ~seed:2);
      Alcotest.test_case (name ^ " 4p wide") `Quick
        (test_random ~n:4 ~ops:400 ~range:512 ~seed:3);
      Alcotest.test_case (name ^ " 6p oversubscribed") `Quick
        (test_random ~n:6 ~ops:300 ~range:32 ~seed:4);
    ]
end

module RM_none =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Direct)
    (Reclaim.None_reclaimer.Make)
module RM_ebr =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Ebr.Make)
module RM_debra =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_debra_plus =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)
module RM_hp =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hp.Make)
module RM_malloc_dplus =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Malloc) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)
module RM_qsbr =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Qsbr.Make)
module RM_rc =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Rc.Make)

module H_none = Harness (RM_none)
module H_ebr = Harness (RM_ebr)
module H_debra = Harness (RM_debra)
module H_debra_plus = Harness (RM_debra_plus)
module H_hp = Harness (RM_hp)
module H_malloc = Harness (RM_malloc_dplus)
module H_qsbr = Harness (RM_qsbr)
module H_rc = Harness (RM_rc)

let test_crash_debra_grows () =
  let limbo = H_debra.crash_limbo ~ops:2000 () in
  Alcotest.(check bool)
    (Printf.sprintf "debra limbo grows (got %d)" limbo)
    true (limbo > 1500)

let test_crash_debra_plus_bounded () =
  let limbo = H_debra_plus.crash_limbo ~ops:2000 () in
  Alcotest.(check bool)
    (Printf.sprintf "debra+ limbo bounded (got %d)" limbo)
    true (limbo < 1500)

(* The update word packs (state, descriptor slot, descriptor generation)
   into one CASable integer; roundtrip it over the descriptor arena. *)
let test_update_word_packing () =
  let group, _heap, rm = H_debra.setup ~n:1 ~seed:2 ~params:params_small in
  let module T = H_debra.T in
  let t = T.create rm ~capacity:1024 in
  let ctx = Runtime.Group.ctx group 0 in
  Alcotest.(check int) "clean-null" 0 (T.pack t ~state:T.clean ~info:Memory.Ptr.null);
  for _ = 1 to 50 do
    let info = RM_debra.alloc rm ctx t.T.info in
    List.iter
      (fun state ->
        let w = T.pack t ~state ~info in
        Alcotest.(check int) "state" state (T.state_of w);
        Alcotest.(check int) "info" info (T.info_of t w))
      [ T.clean; T.iflag; T.dflag; T.mark ];
    (* words with distinct generations differ *)
    RM_debra.dealloc rm ctx info
  done

let () =
  Alcotest.run "efrb_bst"
    [
      ("none", H_none.cases "none");
      ("ebr", H_ebr.cases "ebr");
      ("debra", H_debra.cases "debra");
      ("debra+", H_debra_plus.cases "debra+");
      ("hp", H_hp.cases "hp");
      ("malloc+debra+", H_malloc.cases "malloc");
      ("qsbr", H_qsbr.cases "qsbr");
      ("rc", H_rc.cases "rc");
      ( "fault-tolerance",
        [
          Alcotest.test_case "crashed process blocks DEBRA" `Quick
            test_crash_debra_grows;
          Alcotest.test_case "DEBRA+ stays bounded across crash" `Quick
            test_crash_debra_plus_bounded;
        ] );
      ( "descriptors",
        [
          Alcotest.test_case "update word packing" `Quick
            test_update_word_packing;
        ] );
    ]
