(* Concurrent correctness of the lock-free hash set (bucketed Harris-Michael
   lists sharing one arena and Record Manager). *)

module Harness (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module H = Ds.Hash_set_lf.Make (RM)

  let run ~n ~ops ~range ~seed () =
    let group = Runtime.Group.create ~seed n in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create group heap in
    let rm = RM.create env in
    let h = H.create rm ~buckets:32 ~capacity:(range + (n * ops)) in
    let net = Array.make n 0 in
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      let rng = Random.State.make [| seed; pid |] in
      for _ = 1 to ops do
        let key = Random.State.int rng range in
        match Random.State.int rng 3 with
        | 0 -> if H.insert h ctx ~key ~value:key then net.(pid) <- net.(pid) + 1
        | 1 -> if H.delete h ctx key then net.(pid) <- net.(pid) - 1
        | _ -> ignore (H.contains h ctx key)
      done
    in
    ignore
      (Sim.run ~machine:(Machine.Config.tiny ~contexts:4 ()) group
         (Array.init n body));
    H.check_invariants h;
    Alcotest.(check int) "net size" (Array.fold_left ( + ) 0 net) (H.size h)

  let sequential () =
    let group = Runtime.Group.create ~seed:1 1 in
    let heap = Memory.Heap.create () in
    let env = Reclaim.Intf.Env.create group heap in
    let rm = RM.create env in
    let h = H.create rm ~buckets:8 ~capacity:4096 in
    let ctx = Runtime.Group.ctx group 0 in
    for key = 0 to 99 do
      Alcotest.(check bool) "insert" true (H.insert h ctx ~key ~value:(2 * key))
    done;
    Alcotest.(check int) "size" 100 (H.size h);
    Alcotest.(check (option int)) "get" (Some 84) (H.get h ctx 42);
    Alcotest.(check bool) "dup" false (H.insert h ctx ~key:42 ~value:0);
    for key = 0 to 99 do
      if key mod 2 = 0 then
        Alcotest.(check bool) "delete" true (H.delete h ctx key)
    done;
    Alcotest.(check int) "half left" 50 (H.size h);
    Alcotest.(check (list int)) "odds"
      (List.init 50 (fun i -> (2 * i) + 1))
      (H.to_list h);
    H.check_invariants h

  let cases name =
    [
      Alcotest.test_case (name ^ " sequential") `Quick sequential;
      Alcotest.test_case (name ^ " 4p") `Quick (run ~n:4 ~ops:400 ~range:64 ~seed:2);
      Alcotest.test_case (name ^ " 6p oversub") `Quick
        (run ~n:6 ~ops:300 ~range:256 ~seed:3);
    ]
end

module RM_debra =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra.Make)
module RM_dplus =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Debra_plus.Make)
module RM_hp =
  Reclaim.Record_manager.Make (Reclaim.Alloc.Bump) (Reclaim.Pool.Shared)
    (Reclaim.Hp.Make)

module H_debra = Harness (RM_debra)
module H_dplus = Harness (RM_dplus)
module H_hp = Harness (RM_hp)

let () =
  Alcotest.run "hash_set"
    [
      ("debra", H_debra.cases "debra");
      ("debra+", H_dplus.cases "debra+");
      ("hp", H_hp.cases "hp");
    ]
