examples/mixed_instances.mli:
