examples/swap_reclaimer.mli:
