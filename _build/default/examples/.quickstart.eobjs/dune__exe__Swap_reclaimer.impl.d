examples/swap_reclaimer.ml: Alloc Array Debra Debra_plus Ds Ebr Hp Intf Memory None_reclaimer Pool Printf Qsbr Random Rc Reclaim Record_manager Runtime Sim Workload
