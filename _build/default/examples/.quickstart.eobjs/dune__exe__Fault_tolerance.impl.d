examples/fault_tolerance.ml: Alloc Array Debra Debra_plus Ds Intf List Memory Pool Printf Random Reclaim Record_manager Runtime Sim
