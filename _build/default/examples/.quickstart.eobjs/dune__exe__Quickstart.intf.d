examples/quickstart.mli:
