examples/mixed_instances.ml: Array Ds Memory Printf Random Reclaim Runtime Sim Workload
