examples/hp_pitfall.mli:
