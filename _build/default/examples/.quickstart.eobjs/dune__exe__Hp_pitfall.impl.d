examples/hp_pitfall.ml: Alloc Array Debra Ds Hp Intf Memory Pool Printf Random Reclaim Record_manager Runtime Sim Workload
