examples/quickstart.ml: Array Ds Memory Printf Random Reclaim Runtime Sim Workload
