(* The paper's headline fault-tolerance story, as a runnable demo:

   A process crashes in the middle of an operation (non-quiescent).  Under
   DEBRA, every other process keeps retiring records but none can be
   reclaimed — the limbo population grows with the workload.  Under DEBRA+,
   the survivors notice their limbo bags growing, neutralize the dead
   process with a (simulated) signal, and reclamation continues: limbo
   stays bounded by O(n(nm+c)).

   Run with: dune exec examples/fault_tolerance.exe *)

open Reclaim

module Demo (RM : Intf.RECORD_MANAGER) = struct
  module Tree = Ds.Efrb_bst.Make (RM)

  let run ~ops () =
    let nprocs = 4 in
    let params =
      { Intf.Params.default with Intf.Params.block_capacity = 32; incr_thresh = 1 }
    in
    let group = Runtime.Group.create ~seed:21 nprocs in
    let heap = Memory.Heap.create () in
    let env = Intf.Env.create ~params group heap in
    let rm = RM.create env in
    let tree = Tree.create rm ~capacity:(8 * ops * nprocs) in
    let ctx0 = Runtime.Group.ctx group 0 in
    for key = 1 to 64 do
      ignore (Tree.insert tree ctx0 ~key ~value:key)
    done;
    let body pid () =
      let ctx = Runtime.Group.ctx group pid in
      if pid = 0 then begin
        (* Enter an operation, touch the structure, and die non-quiescent. *)
        RM.leave_qstate rm ctx;
        ignore (Memory.Arena.read ctx tree.Tree.internal tree.Tree.root 0);
        Runtime.Ctx.crash ctx
      end
      else
        let rng = Random.State.make [| 5; pid |] in
        for _ = 1 to ops do
          let key = 1 + Random.State.int rng 64 in
          if Random.State.bool rng then
            ignore (Tree.insert tree ctx ~key ~value:key)
          else ignore (Tree.delete tree ctx key)
        done
    in
    ignore (Sim.run group (Array.init nprocs body));
    Tree.check_invariants tree;
    let signals = Runtime.Group.sum_stats group (fun s -> s.Runtime.Ctx.signals_sent) in
    Printf.printf
      "%-10s after %5d ops/process: limbo = %6d records, signals sent = %d\n"
      RM.Reclaimer.name ops (RM.limbo_size rm) signals
end

module RM_debra = Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra.Make)
module RM_debra_plus =
  Record_manager.Make (Alloc.Bump) (Pool.Shared) (Debra_plus.Make)
module D_debra = Demo (RM_debra)
module D_debra_plus = Demo (RM_debra_plus)

let () =
  print_endline "Process 0 crashes mid-operation; 3 survivors keep working.";
  print_endline "- DEBRA: the crashed process pins the epoch; limbo grows:";
  List.iter (fun ops -> D_debra.run ~ops ()) [ 1000; 2000; 4000 ];
  print_endline
    "- DEBRA+: survivors neutralize the corpse; limbo stays bounded:";
  List.iter (fun ops -> D_debra_plus.run ~ops ()) [ 1000; 2000; 4000 ]
