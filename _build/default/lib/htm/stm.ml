type reason = [ `Conflict | `Capacity | `Freed ]

type stats = {
  mutable commits : int;
  mutable aborts_conflict : int;
  mutable aborts_capacity : int;
  mutable aborts_freed : int;
}

exception Aborted of reason

type t = {
  heap : Memory.Heap.t;
  clock : int Runtime.Svar.t;  (* even values *)
  locks : Runtime.Shared_array.t option array;  (* per arena id, lazy *)
  max_read_set : int;
  max_write_set : int;
  st : stats;
}

(* A read-set entry remembers the lock word observed before the data read;
   a write-set entry buffers the value to apply at commit. *)
type rentry = { r_aid : int; r_slot : int; r_lock : int }
type wentry = { w_arena : Memory.Arena.t; w_ptr : Memory.Ptr.t; w_field : int; w_value : int }

type txn = {
  owner : t;
  ctx : Runtime.Ctx.t;
  rv : int;  (* read version *)
  mutable rset : rentry list;
  mutable rsize : int;
  mutable wset : wentry list;
  mutable wsize : int;
}

let create ?(max_read_set = 512) ?(max_write_set = 128) heap =
  {
    heap;
    clock = Runtime.Svar.make 0;
    locks = Array.make Memory.Ptr.max_arenas None;
    max_read_set;
    max_write_set;
    st = { commits = 0; aborts_conflict = 0; aborts_capacity = 0; aborts_freed = 0 };
  }

let stats t = t.st
let abort reason = raise (Aborted reason)

let locks_of t aid =
  match t.locks.(aid) with
  | Some l -> l
  | None ->
      let arenas = Memory.Heap.arenas t.heap in
      let arena =
        List.find (fun a -> Memory.Arena.heap_id a = aid) arenas
      in
      let l = Runtime.Shared_array.create (Memory.Arena.capacity arena) in
      t.locks.(aid) <- Some l;
      l

let is_locked l = l land 1 = 1
let version_of l = l asr 1

(* Transactional read: lock word, data, lock word again; validate against
   the transaction's read version (TL2 invisible reads). *)
let read txn arena p f =
  let v_buffered =
    List.find_opt
      (fun w -> w.w_arena == arena && w.w_ptr = p && w.w_field = f)
      txn.wset
  in
  match v_buffered with
  | Some w -> w.w_value
  | None ->
      let t = txn.owner in
      let aid = Memory.Arena.heap_id arena in
      let locks = locks_of t aid in
      let slot = Memory.Ptr.slot p in
      let l1 = Runtime.Shared_array.get txn.ctx locks slot in
      if is_locked l1 || version_of l1 > txn.rv then abort `Conflict;
      let value =
        match Memory.Arena.read_opt txn.ctx arena p f with
        | Some v -> v
        | None -> abort `Freed
      in
      let l2 = Runtime.Shared_array.get txn.ctx locks slot in
      if l2 <> l1 then abort `Conflict;
      if txn.rsize >= t.max_read_set then abort `Capacity;
      txn.rset <- { r_aid = aid; r_slot = slot; r_lock = l1 } :: txn.rset;
      txn.rsize <- txn.rsize + 1;
      value

let read_const txn arena p f =
  match
    (Memory.Arena.is_valid arena p, Memory.Arena.get_const txn.ctx arena p f)
  with
  | true, v -> v
  | false, _ | (exception Memory.Arena.Use_after_free _) -> abort `Freed

let write txn arena p f v =
  let t = txn.owner in
  if txn.wsize >= t.max_write_set then abort `Capacity;
  txn.wset <-
    { w_arena = arena; w_ptr = p; w_field = f; w_value = v }
    :: List.filter
         (fun w -> not (w.w_arena == arena && w.w_ptr = p && w.w_field = f))
         txn.wset;
  txn.wsize <- txn.wsize + 1

(* Commit: lock every written slot, validate the read set, apply, release
   with the new version. *)
let commit txn =
  let t = txn.owner in
  let ctx = txn.ctx in
  let wslots =
    List.sort_uniq compare
      (List.map
         (fun w -> (Memory.Arena.heap_id w.w_arena, Memory.Ptr.slot w.w_ptr))
         txn.wset)
  in
  let locked = ref [] in
  let release_locked () =
    List.iter
      (fun (aid, slot, old) ->
        Runtime.Shared_array.set ctx (locks_of t aid) slot old)
      !locked
  in
  let try_lock (aid, slot) =
    let locks = locks_of t aid in
    let l = Runtime.Shared_array.get ctx locks slot in
    if is_locked l || not (Runtime.Shared_array.cas ctx locks slot ~expect:l (l lor 1))
    then begin
      release_locked ();
      abort `Conflict
    end
    else locked := (aid, slot, l) :: !locked
  in
  List.iter try_lock wslots;
  (* Validate writes target live records. *)
  List.iter
    (fun w ->
      if not (Memory.Arena.is_valid w.w_arena w.w_ptr) then begin
        release_locked ();
        abort `Freed
      end)
    txn.wset;
  (* Validate the read set: still the observed version, or locked by us. *)
  let own (aid, slot) = List.exists (fun (a, s, _) -> a = aid && s = slot) !locked in
  List.iter
    (fun r ->
      let cur = Runtime.Shared_array.get ctx (locks_of t r.r_aid) r.r_slot in
      let ok = cur = r.r_lock || (cur = r.r_lock lor 1 && own (r.r_aid, r.r_slot)) in
      if not ok then begin
        release_locked ();
        abort `Conflict
      end)
    txn.rset;
  let wv = 2 + Runtime.Svar.faa ctx t.clock 2 in
  (* Apply buffered writes (oldest first so later writes win).  A target can
     in principle be freed between validation and this write by a process
     that ignores our slot locks; skip such writes — the record is gone and
     nothing can observe the missing store. *)
  List.iter
    (fun w ->
      try Memory.Arena.write ctx w.w_arena w.w_ptr w.w_field w.w_value
      with Memory.Arena.Use_after_free _ -> ())
    (List.rev txn.wset);
  List.iter
    (fun (aid, slot, _) ->
      Runtime.Shared_array.set ctx (locks_of t aid) slot wv)
    !locked

let attempt t ctx body =
  Runtime.Ctx.work ctx 30 (* transaction begin, as priced for HTM *);
  let txn =
    { owner = t; ctx; rv = Runtime.Svar.get ctx t.clock; rset = []; rsize = 0; wset = []; wsize = 0 }
  in
  match
    let v = body txn in
    commit txn;
    v
  with
  | v ->
      Runtime.Ctx.work ctx 30 (* commit *);
      t.st.commits <- t.st.commits + 1;
      Ok v
  | exception Aborted r ->
      (match r with
      | `Conflict -> t.st.aborts_conflict <- t.st.aborts_conflict + 1
      | `Capacity -> t.st.aborts_capacity <- t.st.aborts_capacity + 1
      | `Freed -> t.st.aborts_freed <- t.st.aborts_freed + 1);
      Error r
