(** Best-effort software transactions over arena records: the stand-in for
    the hardware transactional memory that StackTrack relies on (DESIGN.md
    §2).

    The implementation is TL2-flavoured: a global version clock, one
    versioned lock word per record slot, invisible reads validated against
    the clock, buffered writes applied under per-slot locks at commit.

    Like best-effort HTM, transactions give no progress guarantee: they
    abort on conflict, on capacity (bounded read/write sets), and — the
    property StackTrack exploits — whenever they touch a record that has
    been freed ([`Freed]), instead of crashing.  Callers must provide a
    fallback path. *)

type reason = [ `Conflict | `Capacity | `Freed ]

type stats = {
  mutable commits : int;
  mutable aborts_conflict : int;
  mutable aborts_capacity : int;
  mutable aborts_freed : int;
}

type t

val create : ?max_read_set:int -> ?max_write_set:int -> Memory.Heap.t -> t
val stats : t -> stats

type txn

(** [attempt t ctx body] runs [body] as one transaction attempt; [Error r]
    means it aborted (already rolled back) for reason [r].  Transactions do
    not nest. *)
val attempt : t -> Runtime.Ctx.t -> (txn -> 'a) -> ('a, reason) result

(** [read txn arena p f] reads a mutable field transactionally.
    [read_const] reads an immutable field (validated, not tracked). *)

val read : txn -> Memory.Arena.t -> Memory.Ptr.t -> int -> int
val read_const : txn -> Memory.Arena.t -> Memory.Ptr.t -> int -> int
val write : txn -> Memory.Arena.t -> Memory.Ptr.t -> int -> int -> unit

(** [abort reason] aborts the current transaction explicitly. *)
val abort : reason -> 'a
