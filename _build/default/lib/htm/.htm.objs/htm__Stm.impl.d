lib/htm/stm.ml: Array List Memory Runtime
