lib/htm/stm.mli: Memory Runtime
