lib/reclaim/debra_plus.ml: Array Bag Intf Memory Runtime Scan_util
