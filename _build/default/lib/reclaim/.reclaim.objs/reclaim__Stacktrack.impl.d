lib/reclaim/stacktrack.ml: Array Bag Intf Memory Runtime Scan_util
