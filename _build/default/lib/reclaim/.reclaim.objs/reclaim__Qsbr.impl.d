lib/reclaim/qsbr.ml: Array Bag Intf List Memory Runtime
