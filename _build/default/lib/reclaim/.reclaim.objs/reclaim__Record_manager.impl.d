lib/reclaim/record_manager.ml: Intf Printf Runtime
