lib/reclaim/pool.ml: Array Bag Intf Memory Runtime
