lib/reclaim/intf.ml: Array Bag Memory Runtime
