lib/reclaim/alloc.ml: Intf Memory Runtime
