lib/reclaim/debra.ml: Array Bag Intf Memory Runtime
