lib/reclaim/none_reclaimer.ml: Intf Runtime
