lib/reclaim/hp.ml: Array Bag Intf Memory Runtime Scan_util
