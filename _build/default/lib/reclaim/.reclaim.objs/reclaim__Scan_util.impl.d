lib/reclaim/scan_util.ml: Bag Memory Runtime
