lib/reclaim/threadscan.ml: Array Bag Intf Memory Runtime Scan_util
