lib/reclaim/rc.ml: Array Bag Intf List Memory Option Runtime
