lib/reclaim/ebr.ml: Array Bag Intf Memory Runtime
