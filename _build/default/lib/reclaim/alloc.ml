(** Allocators (paper §7).

    [Bump]: each process carves records out of a preallocated region; freed
    records are never handed back (Experiments 1 and 2).  In the arena model
    this is [claim_fresh] + leak-on-deallocate, so the bump cursor measures
    exactly the paper's "total memory allocated for records".

    [Malloc]: a free-list allocator standing in for the system allocator of
    Experiment 3; each call pays an extra configurable cycle cost, modelling
    malloc being uniformly slower than bump allocation. *)

module Bump : Intf.ALLOCATOR = struct
  type t = Intf.Env.t

  let name = "bump"
  let create env = env
  let allocate _ ctx arena = Memory.Arena.claim_fresh ctx arena

  let deallocate env ctx p =
    Memory.Heap.release env.Intf.Env.heap ctx p ~recycle:false
end

(** [Recycle]: a free-list allocator with no extra cost, but — unlike the
    pool's direct reuse — every reclaimed record passes through the arena,
    bumping its slot generation.  StackTrack must be paired with this (via
    [Pool.Direct]): its sandboxing detects accesses to reclaimed memory
    through generation mismatches, which play the role of the HTM conflict
    a re-user's write would cause.  Other schemes never read reclaimed
    records, so they may use the cheaper direct-reuse pool. *)
module Recycle : Intf.ALLOCATOR = struct
  type t = Intf.Env.t

  let name = "recycle"
  let create env = env

  let allocate _ ctx arena =
    match Memory.Arena.claim_recycled ctx arena with
    | Some p -> p
    | None -> Memory.Arena.claim_fresh ctx arena

  let deallocate env ctx p =
    Memory.Heap.release env.Intf.Env.heap ctx p ~recycle:true
end

module Malloc : Intf.ALLOCATOR = struct
  type t = Intf.Env.t

  let name = "malloc"
  let create env = env

  let allocate env ctx arena =
    Runtime.Ctx.work ctx env.Intf.Env.params.Intf.Params.malloc_cost;
    match Memory.Arena.claim_recycled ctx arena with
    | Some p -> p
    | None -> Memory.Arena.claim_fresh ctx arena

  let deallocate env ctx p =
    Runtime.Ctx.work ctx env.Intf.Env.params.Intf.Params.malloc_cost;
    Memory.Heap.release env.Intf.Env.heap ctx p ~recycle:true
end
