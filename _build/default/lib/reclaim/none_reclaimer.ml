(** The "no reclamation" baseline (the paper's [None]): retired records are
    simply leaked.  Fastest possible scheme per operation, unbounded memory
    footprint — the yardstick every other scheme's overhead is measured
    against. *)

module Make (P : Intf.POOL) : Intf.RECLAIMER with module Pool = P = struct
  module Pool = P

  type t = unit

  let name = "none"
  let create _env _pool = ()
  let supports_crash_recovery = false
  let allows_retired_traversal = true
  let sandboxed = false
  let leave_qstate () _ctx = ()
  let enter_qstate () _ctx = ()
  let is_quiescent () _ctx = true
  let protect () _ctx _p ~verify:_ = true
  let unprotect () _ctx _p = ()
  let unprotect_all () _ctx = ()
  let is_protected () _ctx _p = true

  let retire () ctx _p =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.retires <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.retires + 1

  let rprotect () _ctx _p = ()
  let runprotect_all () _ctx = ()
  let is_rprotected () _ctx _p = false
  let limbo_size () = 0
end
