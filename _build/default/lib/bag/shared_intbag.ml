type node = Nil | Cons of int * node
type t = { head : node Runtime.Svar.t }

let create () = { head = Runtime.Svar.make Nil }

let rec push ctx t x =
  let old = Runtime.Svar.get ctx t.head in
  if not (Runtime.Svar.cas ctx t.head ~expect:old (Cons (x, old))) then
    push ctx t x

let rec pop ctx t =
  match Runtime.Svar.get ctx t.head with
  | Nil -> None
  | Cons (x, rest) as old ->
      if Runtime.Svar.cas ctx t.head ~expect:old rest then Some x
      else pop ctx t

let drain ctx t f =
  let rec go n = match pop ctx t with None -> n | Some x -> f x; go (n + 1) in
  go 0

let size t =
  let rec go n acc = match n with Nil -> acc | Cons (_, r) -> go r (acc + 1) in
  go (Runtime.Svar.peek t.head) 0
