(** Fixed-capacity blocks of record pointers: the unit of bulk transfer
    between limbo bags, the object pool and the shared bag (paper §4,
    "Block bags"). *)

type t = {
  data : int array;
  mutable count : int;
  mutable next : t;  (** [nil] terminates chains *)
}

(** Distinguished sentinel terminating block chains. *)
val nil : t

val is_nil : t -> bool
val create : int -> t
val capacity : t -> int
val is_full : t -> bool
val is_empty : t -> bool
val push : t -> int -> unit
val pop : t -> int

(** [chain_length b] counts blocks from [b] to [nil]. *)
val chain_length : t -> int
