lib/bag/block.ml: Array
