lib/bag/block.mli:
