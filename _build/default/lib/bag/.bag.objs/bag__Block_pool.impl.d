lib/bag/block_pool.ml: Block
