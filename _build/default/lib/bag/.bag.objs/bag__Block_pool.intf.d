lib/bag/block_pool.mli: Block
