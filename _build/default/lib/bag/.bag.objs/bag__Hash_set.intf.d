lib/bag/hash_set.mli:
