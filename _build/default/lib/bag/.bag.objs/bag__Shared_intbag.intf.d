lib/bag/shared_intbag.mli: Runtime
