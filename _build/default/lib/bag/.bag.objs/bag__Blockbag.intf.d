lib/bag/blockbag.mli: Block Block_pool
