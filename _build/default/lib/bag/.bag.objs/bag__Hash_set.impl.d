lib/bag/hash_set.ml: Array
