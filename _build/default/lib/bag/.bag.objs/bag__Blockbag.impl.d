lib/bag/blockbag.ml: Array Block Block_pool
