lib/bag/shared_intbag.ml: Runtime
