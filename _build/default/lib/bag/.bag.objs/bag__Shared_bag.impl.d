lib/bag/shared_bag.ml: Block Runtime
