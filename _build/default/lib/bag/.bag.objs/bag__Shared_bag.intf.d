lib/bag/shared_bag.mli: Block Runtime
