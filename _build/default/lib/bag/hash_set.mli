(** Process-local open-addressing hash set of pointers, used to scan hazard
    pointers in expected O(1) per lookup (paper §3/§5).  [clear] is O(1)
    via generation stamping, so one set can be reused across scans. *)

type t

val create : expected:int -> t
val insert : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit
val population : t -> int
