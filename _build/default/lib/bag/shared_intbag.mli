(** A lock-free shared bag of individual record pointers (a Treiber stack of
    cons cells).  Classical EBR uses one of these per epoch as its shared
    limbo bag — which is exactly the per-retire synchronization cost DEBRA's
    private bags eliminate. *)

type t

val create : unit -> t
val push : Runtime.Ctx.t -> t -> int -> unit
val pop : Runtime.Ctx.t -> t -> int option

(** [drain ctx t f] pops until empty, applying [f]; returns the count. *)
val drain : Runtime.Ctx.t -> t -> (int -> unit) -> int

(** Uninstrumented size, O(n); for tests and memory accounting. *)
val size : t -> int
