type t = {
  bound : int;
  block_capacity : int;
  mutable spare : Block.t;  (* chain of spare blocks *)
  mutable nspare : int;
  mutable allocated : int;
  mutable recycled : int;
}

let create ?(bound = 16) ~block_capacity () =
  { bound; block_capacity; spare = Block.nil; nspare = 0; allocated = 0; recycled = 0 }

let get t =
  if Block.is_nil t.spare then begin
    t.allocated <- t.allocated + 1;
    Block.create t.block_capacity
  end
  else begin
    let b = t.spare in
    t.spare <- b.Block.next;
    t.nspare <- t.nspare - 1;
    t.recycled <- t.recycled + 1;
    b.Block.next <- Block.nil;
    b
  end

let put t b =
  if t.nspare < t.bound then begin
    b.Block.count <- 0;
    b.Block.next <- t.spare;
    t.spare <- b;
    t.nspare <- t.nspare + 1
  end

let allocated t = t.allocated
let recycled t = t.recycled
