(** A bounded per-process pool of spare blocks.

    Instead of deallocating a block, a process returns it here; instead of
    allocating, it takes one from here.  The paper reports that a pool of 16
    blocks per process eliminates more than 99.9% of block allocations; the
    [allocated]/[recycled] counters let the benchmarks verify that. *)

type t

val create : ?bound:int -> block_capacity:int -> unit -> t

(** [get t] returns an empty block, reusing a pooled one when possible. *)
val get : t -> Block.t

(** [put t b] returns [b] (reset) to the pool, or drops it when full. *)
val put : t -> Block.t -> unit

val allocated : t -> int
val recycled : t -> int
