type t = {
  mutable keys : int array;
  mutable stamp : int array;
  mutable mask : int;
  mutable epoch : int;
  mutable population : int;
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~expected =
  let cap = pow2 (max 8 (4 * expected)) 8 in
  {
    keys = Array.make cap 0;
    stamp = Array.make cap 0;
    mask = cap - 1;
    epoch = 1;
    population = 0;
  }

(* Fibonacci hashing of the pointer bits. *)
let hash t k = (k * 0x2545F4914F6CDD1D) land max_int land t.mask

let grow t =
  let old_keys = t.keys and old_stamp = t.stamp and old_epoch = t.epoch in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap 0;
  t.stamp <- Array.make cap 0;
  t.mask <- cap - 1;
  t.epoch <- 1;
  t.population <- 0;
  Array.iteri
    (fun i s ->
      if s = old_epoch then
        let rec put j =
          if t.stamp.(j) = t.epoch then put ((j + 1) land t.mask)
          else begin
            t.keys.(j) <- old_keys.(i);
            t.stamp.(j) <- t.epoch;
            t.population <- t.population + 1
          end
        in
        put (hash t old_keys.(i)))
    old_stamp

let insert t k =
  if 2 * (t.population + 1) > t.mask then grow t;
  let rec go i =
    if t.stamp.(i) <> t.epoch then begin
      t.keys.(i) <- k;
      t.stamp.(i) <- t.epoch;
      t.population <- t.population + 1
    end
    else if t.keys.(i) <> k then go ((i + 1) land t.mask)
  in
  go (hash t k)

let mem t k =
  let rec go i =
    if t.stamp.(i) <> t.epoch then false
    else if t.keys.(i) = k then true
    else go ((i + 1) land t.mask)
  in
  go (hash t k)

let clear t =
  t.epoch <- t.epoch + 1;
  t.population <- 0

let population t = t.population
