type node = Nil | Cons of Block.t * node
type t = { head : node Runtime.Svar.t }

let create () = { head = Runtime.Svar.make Nil }

let rec push ctx t b =
  let old = Runtime.Svar.get ctx t.head in
  if not (Runtime.Svar.cas ctx t.head ~expect:old (Cons (b, old))) then
    push ctx t b

let rec pop ctx t =
  match Runtime.Svar.get ctx t.head with
  | Nil -> None
  | Cons (b, rest) as old ->
      if Runtime.Svar.cas ctx t.head ~expect:old rest then Some b
      else pop ctx t

let size_in_blocks t =
  let rec go n acc = match n with Nil -> acc | Cons (_, r) -> go r (acc + 1) in
  go (Runtime.Svar.peek t.head) 0
