type t = { data : int array; mutable count : int; mutable next : t }

let rec nil = { data = [||]; count = 0; next = nil }
let is_nil b = b == nil

let create cap =
  assert (cap > 0);
  { data = Array.make cap 0; count = 0; next = nil }

let capacity b = Array.length b.data
let is_full b = b.count = Array.length b.data
let is_empty b = b.count = 0

let push b x =
  assert (not (is_full b));
  b.data.(b.count) <- x;
  b.count <- b.count + 1

let pop b =
  assert (not (is_empty b));
  b.count <- b.count - 1;
  b.data.(b.count)

let chain_length b =
  let rec go b acc = if is_nil b then acc else go b.next (acc + 1) in
  go b 0
