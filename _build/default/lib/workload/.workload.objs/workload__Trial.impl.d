lib/workload/trial.ml: Array Machine Memory Random Reclaim Runtime Sim
