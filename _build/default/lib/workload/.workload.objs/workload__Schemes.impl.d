lib/workload/schemes.ml: Alloc Debra Debra_plus Ds Ebr Hp Intf List Machine None_reclaimer Pool Printf Qsbr Rc Reclaim Record_manager Report Stacktrack Threadscan Trial
