lib/workload/report.ml: Array Buffer List Printf String
