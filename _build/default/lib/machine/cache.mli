(** The MESI/NUMA cost model from the paper's Model section.

    Reads load a line in shared mode: many private caches may hold it.
    Writes load in exclusive mode: they invalidate the line in all other
    contexts' private caches and in the last-level caches of {e other}
    sockets, but only update (without invalidating) the shared LLC copy of
    the writer's own socket.  A context that lost its copy pays a last-level
    or memory miss on its next access. *)

type stats = {
  mutable l1_hits : int;
  mutable llc_hits : int;
  mutable mem_accesses : int;
  mutable invalidations : int;
}

type t

val create : Config.t -> t
val stats : t -> stats

(** [access t ~context kind ~line] simulates one access by hardware context
    [context] and returns its cost in cycles.  [Work]/[Fence] kinds are
    priced directly from the configuration. *)
val access : t -> context:int -> Runtime.Ctx.access_kind -> line:int -> int
