(** Small fixed-capacity bit sets used to track which caches hold a line. *)

type t

val create : int -> t
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val cardinal : t -> int

(** [iter f t] applies [f] to each member in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [any_other t i] is [true] iff some member other than [i] is set. *)
val any_other : t -> int -> bool
