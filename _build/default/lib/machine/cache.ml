type stats = {
  mutable l1_hits : int;
  mutable llc_hits : int;
  mutable mem_accesses : int;
  mutable invalidations : int;
}

type entry = { l1h : Bitset.t; llch : Bitset.t }

type t = {
  cfg : Config.t;
  l1 : Lru.t array;  (* indexed by hardware context *)
  llc : Lru.t array;  (* indexed by socket *)
  dir : (int, entry) Hashtbl.t;
  st : stats;
}

let stats t = t.st

let entry t line =
  match Hashtbl.find_opt t.dir line with
  | Some e -> e
  | None ->
      let e =
        {
          l1h = Bitset.create (Config.contexts t.cfg);
          llch = Bitset.create t.cfg.Config.sockets;
        }
      in
      Hashtbl.add t.dir line e;
      e

let create cfg =
  let n = Config.contexts cfg in
  let t =
    {
      cfg;
      l1 = Array.make n (Lru.create ~cap:1 ~on_evict:ignore);
      llc = Array.make cfg.Config.sockets (Lru.create ~cap:1 ~on_evict:ignore);
      dir = Hashtbl.create 4096;
      st = { l1_hits = 0; llc_hits = 0; mem_accesses = 0; invalidations = 0 };
    }
  in
  for c = 0 to n - 1 do
    t.l1.(c) <-
      Lru.create ~cap:cfg.Config.l1_lines ~on_evict:(fun line ->
          Bitset.clear (entry t line).l1h c)
  done;
  for s = 0 to cfg.Config.sockets - 1 do
    t.llc.(s) <-
      Lru.create ~cap:cfg.Config.llc_lines ~on_evict:(fun line ->
          Bitset.clear (entry t line).llch s)
  done;
  t

(* Bring [line] into context [c]'s caches and return the load cost. *)
let load t c line =
  let s = Config.socket_of_context t.cfg c in
  let e = entry t line in
  if Lru.mem t.l1.(c) line then begin
    Lru.touch t.l1.(c) line;
    t.st.l1_hits <- t.st.l1_hits + 1;
    t.cfg.Config.l1_hit
  end
  else if Lru.mem t.llc.(s) line then begin
    Lru.touch t.llc.(s) line;
    Lru.touch t.l1.(c) line;
    Bitset.set e.l1h c;
    t.st.llc_hits <- t.st.llc_hits + 1;
    t.cfg.Config.llc_hit
  end
  else begin
    Lru.touch t.llc.(s) line;
    Bitset.set e.llch s;
    Lru.touch t.l1.(c) line;
    Bitset.set e.l1h c;
    t.st.mem_accesses <- t.st.mem_accesses + 1;
    t.cfg.Config.mem_access
  end

let read t c line = load t c line

let write t c line =
  let s = Config.socket_of_context t.cfg c in
  let e = entry t line in
  (* Invalidate every other private copy, and the LLC copies of other
     sockets.  The writer's own socket's LLC copy is updated in place. *)
  let invalidated = ref false in
  Bitset.iter
    (fun c' ->
      if c' <> c then begin
        Lru.remove t.l1.(c') line;
        invalidated := true
      end)
    e.l1h;
  Bitset.iter (fun c' -> if c' <> c then Bitset.clear e.l1h c') e.l1h;
  Bitset.iter
    (fun s' ->
      if s' <> s then begin
        Lru.remove t.llc.(s') line;
        invalidated := true
      end)
    e.llch;
  Bitset.iter (fun s' -> if s' <> s then Bitset.clear e.llch s') e.llch;
  let base = load t c line in
  if !invalidated then begin
    t.st.invalidations <- t.st.invalidations + 1;
    base + t.cfg.Config.invalidation
  end
  else base

let access t ~context kind ~line =
  match (kind : Runtime.Ctx.access_kind) with
  | Read -> read t context line
  | Write -> write t context line
  | Cas -> write t context line + t.cfg.Config.cas_extra
  | Fence -> t.cfg.Config.fence
  | Work c -> c
