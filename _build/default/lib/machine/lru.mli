(** Fixed-capacity fully-associative LRU cache of line ids, with an eviction
    callback so the coherence directory stays consistent. *)

type t

val create : cap:int -> on_evict:(int -> unit) -> t
val mem : t -> int -> bool

(** [touch t line] inserts [line] (evicting the least recently used line if
    at capacity) or refreshes its recency. *)
val touch : t -> int -> unit

(** [remove t line] drops [line] without invoking the eviction callback
    (used for coherence invalidations, which update the directory
    themselves). *)
val remove : t -> int -> unit

val size : t -> int
val clear : t -> unit
