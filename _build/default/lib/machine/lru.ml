(* Intrusive doubly-linked list threaded through a hash table: O(1) touch,
   remove and eviction. *)

type node = { line : int; mutable prev : node option; mutable next : node option }

type t = {
  cap : int;
  on_evict : int -> unit;
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
}

let create ~cap ~on_evict =
  assert (cap > 0);
  { cap; on_evict; table = Hashtbl.create (2 * cap); head = None; tail = None }

let mem t line = Hashtbl.mem t.table line
let size t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.line;
      t.on_evict n.line

let touch t line =
  match Hashtbl.find_opt t.table line with
  | Some n ->
      unlink t n;
      push_front t n
  | None ->
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      let n = { line; prev = None; next = None } in
      Hashtbl.add t.table line n;
      push_front t n

let remove t line =
  match Hashtbl.find_opt t.table line with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table line

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
