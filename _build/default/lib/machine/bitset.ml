type t = { words : int array; capacity : int }

let bits_per_word = Sys.int_size

let create capacity =
  { words = Array.make ((capacity + bits_per_word - 1) / bits_per_word) 0; capacity }

let check t i = assert (i >= 0 && i < t.capacity)

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let any_other t i =
  let found = ref false in
  iter (fun j -> if j <> i then found := true) t;
  !found
