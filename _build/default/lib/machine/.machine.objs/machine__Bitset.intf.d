lib/machine/bitset.mli:
