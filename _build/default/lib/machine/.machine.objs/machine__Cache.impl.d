lib/machine/cache.ml: Array Bitset Config Hashtbl Lru Runtime
