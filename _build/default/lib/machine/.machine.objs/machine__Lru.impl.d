lib/machine/lru.ml: Hashtbl
