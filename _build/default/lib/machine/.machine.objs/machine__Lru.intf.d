lib/machine/lru.mli:
