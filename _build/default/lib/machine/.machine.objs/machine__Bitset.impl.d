lib/machine/bitset.ml: Array Sys
