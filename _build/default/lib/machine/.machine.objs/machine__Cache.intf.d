lib/machine/cache.mli: Config Runtime
