lib/machine/config.ml: Printf
