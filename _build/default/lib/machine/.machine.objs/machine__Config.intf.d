lib/machine/config.mli:
