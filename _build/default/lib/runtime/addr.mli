(** Virtual cache-line address space shared by all simulated memory.

    Every shared location (arena field, standalone shared variable) is mapped
    to a virtual cache line so the machine model in [Machine.Cache] can track
    coherence state.  Lines are 8 words wide, mirroring 64-byte lines of
    8-byte words on the paper's machines. *)

val words_per_line : int

(** [reserve_lines n] reserves [n] fresh cache lines and returns the id of the
    first one.  Thread-safe. *)
val reserve_lines : int -> int

(** [reserve_words n] reserves enough whole lines to hold [n] words and
    returns the id of the first line. *)
val reserve_words : int -> int

(** [line_of ~base_line word] is the line holding word index [word] of a
    region whose first word starts [base_line]. *)
val line_of : base_line:int -> int -> int
