type outcome = Finished | Crashed of exn

let cycles_per_second = 1_000_000_000.

let run group bodies =
  let n = Group.nprocs group in
  assert (Array.length bodies = n);
  let start = Unix.gettimeofday () in
  let install ctx =
    ctx.Ctx.now_impl <-
      (fun () ->
        int_of_float ((Unix.gettimeofday () -. start) *. cycles_per_second));
    (* A stalled process simply sleeps; this keeps it non-quiescent, which is
       the pathology DEBRA+ exists to neutralize. *)
    ctx.Ctx.stall_impl <-
      (fun cycles -> Unix.sleepf (float_of_int cycles /. cycles_per_second))
  in
  Array.iter install group.Group.ctxs;
  let outcomes = Array.make n Finished in
  let domains =
    Array.init n (fun pid ->
        Domain.spawn (fun () ->
            match bodies.(pid) () with
            | () -> Finished
            | exception Ctx.Crashed -> Crashed Ctx.Crashed
            | exception e -> Crashed e))
  in
  Array.iteri (fun pid d -> outcomes.(pid) <- Domain.join d) domains;
  let elapsed = Unix.gettimeofday () -. start in
  (* Re-raise real failures (but not simulated crashes). *)
  Array.iter
    (function
      | Crashed Ctx.Crashed | Finished -> ()
      | Crashed e -> raise e)
    outcomes;
  (elapsed, outcomes)
