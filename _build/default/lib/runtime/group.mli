(** A group of [n] process contexts sharing one data structure instance.

    The group is the unit over which reclamation schemes operate: signals are
    sent between members of a group, and announcement arrays are indexed by
    group pid. *)

type t = { ctxs : Ctx.t array; seed : int }

val create : ?seed:int -> int -> t
val nprocs : t -> int
val ctx : t -> int -> Ctx.t

(** [send_signal t ~from ~target] delivers a simulated POSIX signal: sets
    [target]'s pending flag.  The handler runs before [target]'s next
    instrumented access (see {!Ctx}).  Returns [true], mirroring a successful
    [pthread_kill]. *)
val send_signal : t -> from:Ctx.t -> target:int -> bool

(** Sum of a per-process statistic over the group. *)
val sum_stats : t -> (Ctx.stats -> int) -> int
