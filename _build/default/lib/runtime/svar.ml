type 'a t = { v : 'a Atomic.t; line : int }

let make x = { v = Atomic.make x; line = Addr.reserve_lines 1 }
let line t = t.line

let get ctx t =
  Ctx.access ctx ~line:t.line Ctx.Read;
  Atomic.get t.v

let set ctx t x =
  Ctx.access ctx ~line:t.line Ctx.Write;
  Atomic.set t.v x

let cas ctx t ~expect x =
  Ctx.access ctx ~line:t.line Ctx.Cas;
  Atomic.compare_and_set t.v expect x

let faa ctx t d =
  Ctx.access ctx ~line:t.line Ctx.Cas;
  Atomic.fetch_and_add t.v d

let peek t = Atomic.get t.v
let poke t x = Atomic.set t.v x
