type t = { cells : int Atomic.t array; base_line : int; padded : bool }

let create ?(padded = false) n =
  let base_line =
    if padded then Addr.reserve_lines n else Addr.reserve_words n
  in
  { cells = Array.init n (fun _ -> Atomic.make 0); base_line; padded }

let length t = Array.length t.cells

let line t i =
  if t.padded then t.base_line + i else Addr.line_of ~base_line:t.base_line i

let get ctx t i =
  Ctx.access ctx ~line:(line t i) Ctx.Read;
  Atomic.get t.cells.(i)

let set ctx t i v =
  Ctx.access ctx ~line:(line t i) Ctx.Write;
  Atomic.set t.cells.(i) v

let cas ctx t i ~expect v =
  Ctx.access ctx ~line:(line t i) Ctx.Cas;
  Atomic.compare_and_set t.cells.(i) expect v

let faa ctx t i d =
  Ctx.access ctx ~line:(line t i) Ctx.Cas;
  Atomic.fetch_and_add t.cells.(i) d

let peek t i = Atomic.get t.cells.(i)
let poke t i v = Atomic.set t.cells.(i) v
