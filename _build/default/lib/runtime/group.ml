type t = { ctxs : Ctx.t array; seed : int }

let create ?(seed = 42) n =
  assert (n > 0);
  { ctxs = Array.init n (fun pid -> Ctx.make ~pid ~nprocs:n ~seed); seed }

let nprocs t = Array.length t.ctxs
let ctx t pid = t.ctxs.(pid)

let send_signal t ~from ~target =
  let open Ctx in
  from.stats.signals_sent <- from.stats.signals_sent + 1;
  Atomic.set t.ctxs.(target).sig_pending true;
  true

let sum_stats t f = Array.fold_left (fun acc c -> acc + f c.Ctx.stats) 0 t.ctxs
