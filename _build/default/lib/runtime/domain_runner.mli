(** Run a group's process bodies on real OCaml domains.

    This is the "real parallelism" execution mode: hooks stay no-ops (so an
    instrumented access costs one atomic flag poll), and [Ctx.now] reports
    scaled wall-clock time in nominal cycles (1 cycle = 1 ns).

    Under this runner the signal-delivery guarantee is approximate: a process
    that has passed its flag poll may complete one in-flight access after
    being signalled (see DESIGN.md §2); the deterministic simulator provides
    the exact guarantee. *)

type outcome = Finished | Crashed of exn

(** [run group bodies] runs [bodies.(pid)] for every pid on its own domain
    and waits for all of them.  A body terminating with an exception other
    than [Ctx.Crashed] is re-raised after all domains join.  Returns the
    wall-clock seconds elapsed and each body's outcome. *)
val run : Group.t -> (unit -> unit) array -> float * outcome array
