(** Instrumented shared variables.

    An ['a Svar.t] is an atomic cell occupying its own virtual cache line, so
    the machine model can account for coherence traffic on it.  All shared
    scalar state of the reclamation schemes (the global epoch, announcement
    entries, shared-bag heads, locks) lives in [Svar]s. *)

type 'a t

val make : 'a -> 'a t
val line : 'a t -> int

val get : Ctx.t -> 'a t -> 'a
val set : Ctx.t -> 'a t -> 'a -> unit
val cas : Ctx.t -> 'a t -> expect:'a -> 'a -> bool
val faa : Ctx.t -> int t -> int -> int

(** Uninstrumented accessors for setup/teardown code running outside a
    simulated process. *)
val peek : 'a t -> 'a
val poke : 'a t -> 'a -> unit
