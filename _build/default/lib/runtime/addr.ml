let words_per_line = 8

let counter = Atomic.make 1

let reserve_lines n =
  assert (n >= 0);
  Atomic.fetch_and_add counter n

let reserve_words n = reserve_lines ((n + words_per_line - 1) / words_per_line)

let line_of ~base_line word = base_line + (word / words_per_line)
