lib/runtime/svar.mli: Ctx
