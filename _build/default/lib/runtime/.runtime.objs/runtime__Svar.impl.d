lib/runtime/svar.ml: Addr Atomic Ctx
