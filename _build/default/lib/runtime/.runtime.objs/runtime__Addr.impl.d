lib/runtime/addr.ml: Atomic
