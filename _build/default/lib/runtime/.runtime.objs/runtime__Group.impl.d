lib/runtime/group.ml: Array Atomic Ctx
