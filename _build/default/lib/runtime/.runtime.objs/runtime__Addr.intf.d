lib/runtime/addr.mli:
