lib/runtime/ctx.mli: Atomic Random
