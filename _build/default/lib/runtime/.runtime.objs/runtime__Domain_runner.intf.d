lib/runtime/domain_runner.mli: Group
