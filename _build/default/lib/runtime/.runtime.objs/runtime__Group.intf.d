lib/runtime/group.mli: Ctx
