lib/runtime/domain_runner.ml: Array Ctx Domain Group Unix
