lib/runtime/shared_array.mli: Ctx
